package kv

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/stm"
)

// BenchmarkStoreOps measures the store's singleton operations and the
// EXEC-shaped two-key transfer, parallel across pooled sessions — the
// per-operation cost floor under the striped commit protocol (keys are
// pre-spread so contention is the occasional bucket collision, as in
// the disjoint regime of the figures).
func BenchmarkStoreOps(b *testing.B) {
	const keySpace = 1024
	newStore := func() (*Store, []string) {
		s := stm.New(stm.WithManagerFactory(core.MustFactory("greedy")))
		st := New(s, WithShards(16), WithBuckets(keySpace/16/2))
		keys := make([]string, keySpace)
		for i := range keys {
			keys[i] = fmt.Sprintf("key:%06d", i)
			if err := st.Set(keys[i], strconv.Itoa(i)); err != nil {
				b.Fatal(err)
			}
		}
		return st, keys
	}
	b.Run("get", func(b *testing.B) {
		st, keys := newStore()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, _, err := st.Get(keys[i%keySpace]); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	})
	b.Run("set", func(b *testing.B) {
		st, keys := newStore()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if err := st.Set(keys[i%keySpace], "v"); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	})
	b.Run("transfer", func(b *testing.B) {
		st, keys := newStore()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				from, to := keys[i%keySpace], keys[(i+7)%keySpace]
				err := st.Atomically(func(tx *stm.Tx, now int64) error {
					if _, err := st.IncrTx(tx, now, from, -1); err != nil {
						return err
					}
					_, err := st.IncrTx(tx, now, to, 1)
					return err
				})
				if err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	})
}
