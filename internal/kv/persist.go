package kv

// Durability plumbing: the store's bridge to internal/wal.
//
// Capture. When a WAL is attached, Store.Atomically parks a
// writeCapture in the transaction's local slot; putTx and DelTx
// append each mutation to it as an absolute wal.Op (value or
// tombstone, with the expiry deadline). If the transaction ends up
// writing anything, a commit hook enqueues the capture while the
// commit still holds its write set's commit stripes — so the WAL
// queue order equals the per-key commit order (see Tx.OnCommit and
// DESIGN.md §Durability) — and the durability wait happens after the
// stripes are released, back in Store.Atomically.
//
// Restore. Recovery applies the snapshot and log through Apply,
// which replays write sets without capture (the WAL is attached only
// after recovery, and Apply goes through the raw STM surface), so
// replayed history is not re-logged.

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/stm"
	"repro/internal/wal"
)

// ErrNoWAL is returned by durability operations on a store without
// an attached log.
var ErrNoWAL = errors.New("kv: no wal attached")

// writeCapture accumulates one transaction's write set for logging.
type writeCapture struct {
	ops []wal.Op
}

// AttachWAL makes every subsequent write through the store durable:
// committed write sets are group-committed to l, and Save snapshots
// through it. Attach before serving traffic (after recovery); the
// store does not synchronize attachment against in-flight
// transactions. The caller keeps ownership of l's lifecycle and
// closes it after the store quiesces.
func (st *Store) AttachWAL(l *wal.Log) { st.log = l }

// WAL returns the attached log, or nil.
func (st *Store) WAL() *wal.Log { return st.log }

// Durable reports whether a WAL is attached.
func (st *Store) Durable() bool { return st.log != nil }

// capture appends op to the transaction's write capture, if one is
// armed. Mutating operations call it after their bucket write
// succeeds; transactions without a capture (recovery replay, stores
// without a WAL, read paths) log nothing.
func capture(tx *stm.Tx, op wal.Op) {
	if c, ok := tx.Local().(*writeCapture); ok {
		c.ops = append(c.ops, op)
	}
}

// ArmLog arms write-set capture on a transaction driven by an
// external Atomically loop (the benchmark harness drives the *Tx
// forms directly). Call it at the top of the transactional function —
// attempts do not inherit the previous attempt's capture — and pair
// it with SealLogAsync after the last mutation. No-op without a WAL.
func (st *Store) ArmLog(tx *stm.Tx) {
	if st.log == nil {
		return
	}
	if c, ok := tx.Local().(*writeCapture); ok {
		c.ops = c.ops[:0]
		return
	}
	tx.SetLocal(&writeCapture{})
}

// SealLogAsync registers a commit hook that logs the captured write
// set without a durability ack: the record reaches disk with the
// next group commit, but the caller does not wait for it. This is
// the harness's mode — it measures logging overhead, not fsync
// latency; the server path waits via Store.Atomically instead.
func (st *Store) SealLogAsync(tx *stm.Tx) {
	if st.log == nil {
		return
	}
	c, ok := tx.Local().(*writeCapture)
	if !ok || len(c.ops) == 0 {
		return
	}
	ops := c.ops
	tx.SetLocal(nil) // the ops slice is handed over; don't reuse it
	tx.OnCommit(func() { st.log.AppendAsync(ops) })
}

// SnapshotOps dumps every live entry as a canonical absolute op
// sequence, cut in one consistent transaction across all shards —
// the checkpoint Save hands to wal.Log.Snapshot. Dead entries are
// excluded: a snapshot is also a compaction. Per kind: strings are
// one set-op carrying the deadline; hashes emit field sets sorted by
// name (so two stores with the same logical hash — whatever their
// table seeds — snapshot identically); lists emit back-pushes front
// to back; zsets emit member sets in (score, member) order; container
// entries with a TTL append one touch op. Replay through Apply runs
// the same typed code paths the live store did.
func (st *Store) SnapshotOps() ([]wal.Op, error) {
	now := st.now()
	var out []wal.Op
	err := st.s.Atomically(func(tx *stm.Tx) error {
		out = out[:0]
		for _, sh := range st.shards {
			b, err := sh.Buckets(tx)
			if err != nil {
				return err
			}
			for i := 0; i < b.Len(); i++ {
				head, err := stm.Read(tx, b.At(i))
				if err != nil {
					return err
				}
				for e := head; e != nil; e = e.next {
					if e.dead(now) {
						continue
					}
					if out, err = appendEntryOps(tx, out, e); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// appendEntryOps appends e's canonical op sequence to out.
func appendEntryOps(tx *stm.Tx, out []wal.Op, e *entry) ([]wal.Op, error) {
	switch e.kind {
	case kindString:
		return append(out, wal.Op{Key: e.key, Val: e.val, ExpireAt: e.expireAt}), nil
	case kindHash:
		pairs, err := sortedFields(tx, e.hash)
		if err != nil {
			return nil, err
		}
		for _, p := range pairs {
			out = append(out, wal.Op{Kind: wal.KindHash, Key: e.key, Field: p.K, Val: p.V})
		}
	case kindList:
		items, err := e.list.Items(tx)
		if err != nil {
			return nil, err
		}
		for _, v := range items {
			out = append(out, wal.Op{Kind: wal.KindList, Key: e.key, Val: v})
		}
	case kindZSet:
		keys, err := e.zset.byScore.Keys(tx)
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			score, member := zkeyDecode(k)
			out = append(out, wal.Op{Kind: wal.KindZSet, Key: e.key, Field: member, Val: formatScore(score)})
		}
	}
	if e.expireAt != 0 {
		out = append(out, wal.Op{Key: e.key, Touch: true, ExpireAt: e.expireAt})
	}
	return out, nil
}

// Save cuts a point-in-time snapshot and truncates the log: the
// BGSAVE/SAVE implementation. Single-flight; see wal.Log.Snapshot
// for the rotate → cut → rename → reap choreography. The cut is one
// read-only transaction over the whole store, so under a sustained
// write hammer it may retry for a while before finding a stable
// serialization point — snapshots are for quiet(er) moments, as with
// most single-node stores.
func (st *Store) Save() error {
	if st.log == nil {
		return ErrNoWAL
	}
	return st.log.Snapshot(st.SnapshotOps)
}

// Apply replays one recovered write set (or snapshot batch) in a
// single transaction, in record order. It bypasses capture — wire it
// to wal.Recover before AttachWAL — and carries absolute values, so
// replay over a snapshot is idempotent. Entries already past their
// deadline load as dead and read as absent, preserving TTL semantics
// across a restart as long as the store clock survives one (the
// server anchors it to the unix epoch when running durable).
func (st *Store) Apply(ops []wal.Op) error {
	now := st.now()
	err := st.s.Atomically(func(tx *stm.Tx) error {
		for _, op := range ops {
			if err := st.applyOp(tx, now, op); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("kv: apply: %w", err)
	}
	_ = st.Groom()
	return nil
}

// applyOp replays one op through the same typed mutation the live
// store ran. A kind mismatch (a hash op against a list key, say)
// surfaces as ErrWrongType: a log the store wrote cannot contain one,
// so hitting it means the log is lying and replay must not guess.
func (st *Store) applyOp(tx *stm.Tx, now int64, op wal.Op) error {
	var err error
	switch {
	case op.Touch:
		_, err = st.touchTx(tx, now, op.Key, op.ExpireAt)
	case op.Kind == wal.KindHash:
		if op.Del {
			_, err = st.HDelTx(tx, now, op.Key, op.Field)
		} else {
			_, err = st.HSetTx(tx, now, op.Key, op.Field, op.Val)
		}
	case op.Kind == wal.KindList:
		if op.Del {
			_, _, err = st.popTx(tx, now, op.Key, op.Front)
		} else {
			_, err = st.pushTx(tx, now, op.Key, op.Front, []string{op.Val})
		}
	case op.Kind == wal.KindZSet:
		if op.Del {
			_, err = st.ZRemTx(tx, now, op.Key, op.Field)
		} else {
			var score float64
			score, err = strconv.ParseFloat(op.Val, 64)
			if err != nil {
				return fmt.Errorf("zset op score %q: %w", op.Val, err)
			}
			_, err = st.ZAddTx(tx, now, op.Key, op.Field, score)
		}
	case op.Del:
		_, err = st.DelTx(tx, now, op.Key)
	default:
		err = st.putTx(tx, now, op.Key, op.Val, op.ExpireAt)
	}
	return err
}

// capturePool recycles the server path's write captures; the ops
// slice is safe to reuse once the ticket is acked (the logger has
// encoded it by then).
var capturePool = sync.Pool{New: func() any { return &writeCapture{} }}
