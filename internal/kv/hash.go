package kv

import (
	"errors"
	"hash/maphash"
	"sort"
	"strconv"

	"repro/internal/container"
	"repro/internal/stm"
	"repro/internal/wal"
)

// field is one name→value binding in an immutable bucket chain — the
// element of the per-key tables behind hashes and zset member
// indexes. Same construction discipline as entry: writers rebuild the
// changed chain, nothing mutable is shared.
type field struct {
	name string
	val  string
	next *field
}

// fieldTableBuckets is a per-key table's initial size. Small: most
// hashes hold a handful of fields; over-long chains grow the table
// from inside the mutating transaction (Table.GrowTx), so no advisory
// signal or out-of-band groomer is needed at this level.
const fieldTableBuckets = 4

func newFieldTable() *container.Table[*field] {
	return newNamedFieldTable("")
}

// newNamedFieldTable is newFieldTable with a flight-recorder label on
// the table's variables, so conflict attribution names the owning key
// ("hash(user:1)") instead of an anonymous stripe.
func newNamedFieldTable(name string) *container.Table[*field] {
	return container.NewNamedTable[*field](name, fieldTableBuckets)
}

// fieldBucket resolves a field name's bucket variable under the array
// version b.
func fieldBucket(t *container.Table[*field], b container.Buckets[*field], name string) *stm.Var[*field] {
	return b.At(int(maphash.String(t.Seed(), name) % uint64(b.Len())))
}

// fieldGet reads name's value in t.
func fieldGet(tx *stm.Tx, t *container.Table[*field], name string) (string, bool, error) {
	b, err := t.Buckets(tx)
	if err != nil {
		return "", false, err
	}
	head, err := stm.Read(tx, fieldBucket(t, b, name))
	if err != nil {
		return "", false, err
	}
	for f := head; f != nil; f = f.next {
		if f.name == name {
			return f.val, true, nil
		}
	}
	return "", false, nil
}

// fieldSet writes name=val in t, reporting whether the field was
// created (vs overwritten). A chain left over-long by a create grows
// the table inside the same transaction.
func fieldSet(tx *stm.Tx, t *container.Table[*field], name, val string) (bool, error) {
	b, err := t.Buckets(tx)
	if err != nil {
		return false, err
	}
	bv := fieldBucket(t, b, name)
	head, err := stm.Read(tx, bv)
	if err != nil {
		return false, err
	}
	rebuilt := &field{name: name, val: val}
	created := true
	chain := 1
	for f := head; f != nil; f = f.next {
		if f.name == name {
			created = false
			continue
		}
		rebuilt = &field{name: f.name, val: f.val, next: rebuilt}
		chain++
	}
	if err := stm.Write(tx, bv, rebuilt); err != nil {
		return false, err
	}
	if created && chain > container.GrowChain {
		if _, err := t.GrowTx(tx, countFields, rehashFields(t)); err != nil {
			return false, err
		}
	}
	return created, nil
}

// fieldDel removes name from t, reporting whether it was present.
func fieldDel(tx *stm.Tx, t *container.Table[*field], name string) (bool, error) {
	b, err := t.Buckets(tx)
	if err != nil {
		return false, err
	}
	bv := fieldBucket(t, b, name)
	head, err := stm.Read(tx, bv)
	if err != nil {
		return false, err
	}
	found := false
	var rebuilt *field
	for f := head; f != nil; f = f.next {
		if f.name == name {
			found = true
			continue
		}
		rebuilt = &field{name: f.name, val: f.val, next: rebuilt}
	}
	if !found {
		return false, nil // absent: stay read-only on the bucket
	}
	return true, stm.Write(tx, bv, rebuilt)
}

// fieldAll collects every binding in t, in no particular order.
func fieldAll(tx *stm.Tx, t *container.Table[*field]) ([]KV, error) {
	b, err := t.Buckets(tx)
	if err != nil {
		return nil, err
	}
	var out []KV
	for i := 0; i < b.Len(); i++ {
		head, err := stm.Read(tx, b.At(i))
		if err != nil {
			return nil, err
		}
		for f := head; f != nil; f = f.next {
			out = append(out, KV{K: f.name, V: f.val})
		}
	}
	return out, nil
}

// countFields tallies t's bindings — the count callback for grows and
// the scan under HLen/ZCard (per-key tables are small; a consistent
// scan beats a contended size counter).
func countFields(tx *stm.Tx, b container.Buckets[*field]) (int, error) {
	total := 0
	for i := 0; i < b.Len(); i++ {
		head, err := stm.Read(tx, b.At(i))
		if err != nil {
			return 0, err
		}
		for f := head; f != nil; f = f.next {
			total++
		}
	}
	return total, nil
}

// rehashFields builds the resize callback for a per-key table,
// mirroring the store's rehashFor at the field level.
func rehashFields(t *container.Table[*field]) func(tx *stm.Tx, old, neu container.Buckets[*field]) error {
	return func(tx *stm.Tx, old, neu container.Buckets[*field]) error {
		heads := make([]*field, neu.Len())
		for i := 0; i < old.Len(); i++ {
			head, err := stm.Read(tx, old.At(i))
			if err != nil {
				return err
			}
			for f := head; f != nil; f = f.next {
				j := int(maphash.String(t.Seed(), f.name) % uint64(neu.Len()))
				heads[j] = &field{name: f.name, val: f.val, next: heads[j]}
			}
		}
		for j, head := range heads {
			if head == nil {
				continue
			}
			if err := stm.Write(tx, neu.At(j), head); err != nil {
				return err
			}
		}
		return nil
	}
}

// checkFieldTable verifies placement and uniqueness of every binding
// in t, returning the count — the invariant walk shared by hash and
// zset-index audits.
func checkFieldTable(tx *stm.Tx, t *container.Table[*field]) (int, error) {
	b, err := t.Buckets(tx)
	if err != nil {
		return 0, err
	}
	seen := make(map[string]bool)
	for i := 0; i < b.Len(); i++ {
		head, err := stm.Read(tx, b.At(i))
		if err != nil {
			return 0, err
		}
		for f := head; f != nil; f = f.next {
			if fieldBucket(t, b, f.name) != b.At(i) {
				return 0, errors.New("field in wrong bucket")
			}
			if seen[f.name] {
				return 0, errors.New("field duplicated")
			}
			seen[f.name] = true
		}
	}
	return len(seen), nil
}

// sortedFields returns t's bindings sorted by field name — the
// deterministic order SnapshotOps emits, so two stores holding the
// same hash snapshot identically whatever their table seeds.
func sortedFields(tx *stm.Tx, t *container.Table[*field]) ([]KV, error) {
	pairs, err := fieldAll(tx, t)
	if err != nil {
		return nil, err
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].K < pairs[j].K })
	return pairs, nil
}

// HSetTx writes field name=val in the hash at key, creating the hash
// if the key is absent, and reports whether the field was created.
func (st *Store) HSetTx(tx *stm.Tx, now int64, key, name, val string) (bool, error) {
	e, err := st.containerEntry(tx, now, key, kindHash)
	if err != nil {
		return false, err
	}
	created, err := fieldSet(tx, e.hash, name, val)
	if err != nil {
		return false, err
	}
	capture(tx, wal.Op{Kind: wal.KindHash, Key: key, Field: name, Val: val})
	return created, nil
}

// HGetTx reads field name of the hash at key.
func (st *Store) HGetTx(tx *stm.Tx, now int64, key, name string) (string, bool, error) {
	e, err := st.typedEntry(tx, now, key, kindHash)
	if err != nil || e == nil {
		return "", false, err
	}
	return fieldGet(tx, e.hash, name)
}

// HDelTx removes the named fields from the hash at key, returning how
// many were present. Removing the last field deletes the key.
func (st *Store) HDelTx(tx *stm.Tx, now int64, key string, names ...string) (int, error) {
	e, err := st.typedEntry(tx, now, key, kindHash)
	if err != nil || e == nil {
		return 0, err
	}
	removed := 0
	for _, name := range names {
		ok, err := fieldDel(tx, e.hash, name)
		if err != nil {
			return 0, err
		}
		if !ok {
			continue
		}
		removed++
		capture(tx, wal.Op{Kind: wal.KindHash, Key: key, Field: name, Del: true})
	}
	if removed > 0 {
		b, err := e.hash.Buckets(tx)
		if err != nil {
			return 0, err
		}
		n, err := countFields(tx, b)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			if err := st.removeKeyTx(tx, now, key); err != nil {
				return 0, err
			}
		}
	}
	return removed, nil
}

// HGetAllTx reads every field of the hash at key, in no particular
// order (Redis hashes are unordered).
func (st *Store) HGetAllTx(tx *stm.Tx, now int64, key string) ([]KV, error) {
	e, err := st.typedEntry(tx, now, key, kindHash)
	if err != nil || e == nil {
		return nil, err
	}
	return fieldAll(tx, e.hash)
}

// HLenTx counts the fields of the hash at key.
func (st *Store) HLenTx(tx *stm.Tx, now int64, key string) (int, error) {
	e, err := st.typedEntry(tx, now, key, kindHash)
	if err != nil || e == nil {
		return 0, err
	}
	b, err := e.hash.Buckets(tx)
	if err != nil {
		return 0, err
	}
	return countFields(tx, b)
}

// HIncrTx adds delta to the integer at field name of the hash at key,
// creating hash and field as needed, and returns the new value. A
// non-integer field yields ErrNotInteger.
func (st *Store) HIncrTx(tx *stm.Tx, now int64, key, name string, delta int64) (int64, error) {
	e, err := st.containerEntry(tx, now, key, kindHash)
	if err != nil {
		return 0, err
	}
	cur, ok, err := fieldGet(tx, e.hash, name)
	if err != nil {
		return 0, err
	}
	n := int64(0)
	if ok {
		n, err = strconv.ParseInt(cur, 10, 64)
		if err != nil {
			return 0, ErrNotInteger
		}
	}
	n += delta
	val := strconv.FormatInt(n, 10)
	if _, err := fieldSet(tx, e.hash, name, val); err != nil {
		return 0, err
	}
	capture(tx, wal.Op{Kind: wal.KindHash, Key: key, Field: name, Val: val})
	return n, nil
}

// HSet writes field name=val in one atomic transaction (see HSetTx).
func (st *Store) HSet(key, name, val string) (bool, error) {
	var created bool
	err := st.Atomically(func(tx *stm.Tx, now int64) error {
		var err error
		created, err = st.HSetTx(tx, now, key, name, val)
		return err
	})
	return created, err
}

// HGet reads field name in one atomic transaction (see HGetTx).
func (st *Store) HGet(key, name string) (string, bool, error) {
	now := st.now()
	return stm.Atomic2(st.s, func(tx *stm.Tx) (string, bool, error) {
		return st.HGetTx(tx, now, key, name)
	})
}

// HDel removes fields in one atomic transaction (see HDelTx).
func (st *Store) HDel(key string, names ...string) (int, error) {
	var removed int
	err := st.Atomically(func(tx *stm.Tx, now int64) error {
		var err error
		removed, err = st.HDelTx(tx, now, key, names...)
		return err
	})
	return removed, err
}

// HGetAll reads the whole hash in one atomic transaction.
func (st *Store) HGetAll(key string) ([]KV, error) {
	now := st.now()
	return stm.Atomic(st.s, func(tx *stm.Tx) ([]KV, error) {
		return st.HGetAllTx(tx, now, key)
	})
}

// HLen counts fields in one atomic transaction.
func (st *Store) HLen(key string) (int, error) {
	now := st.now()
	return stm.Atomic(st.s, func(tx *stm.Tx) (int, error) {
		return st.HLenTx(tx, now, key)
	})
}

// HIncr adds delta to a hash field in one atomic transaction (see
// HIncrTx).
func (st *Store) HIncr(key, name string, delta int64) (int64, error) {
	var n int64
	err := st.Atomically(func(tx *stm.Tx, now int64) error {
		var err error
		n, err = st.HIncrTx(tx, now, key, name, delta)
		return err
	})
	return n, err
}
