package kv

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resp"
	"repro/internal/stm"
)

// startServer brings up a server on an ephemeral port and returns its
// address and a shutdown func.
func startServer(t *testing.T, st *Store) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stop := func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned: %v", err)
		}
	}
	return ln.Addr().String(), stop
}

// client is a minimal test client over the resp package.
type client struct {
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
}

func dialClient(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &client{conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}
}

func (c *client) close() { c.conn.Close() }

// do sends one command as an array frame and reads one reply.
func (c *client) do(args ...string) (resp.Value, error) {
	c.w.Array(len(args))
	for _, a := range args {
		c.w.Bulk(a)
	}
	if err := c.w.Flush(); err != nil {
		return resp.Value{}, err
	}
	return c.r.ReadReply()
}

// mustDo fails the test on transport errors or unexpected error
// replies.
func (c *client) mustDo(t *testing.T, args ...string) resp.Value {
	t.Helper()
	v, err := c.do(args...)
	if err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	if v.IsError() {
		t.Fatalf("%v: error reply %q", args, v.Str)
	}
	return v
}

// TestServerProtocol drives the full command surface over real TCP:
// every verb, null replies, error replies, inline commands, and the
// MULTI/EXEC/DISCARD state machine including the poisoned-queue path.
func TestServerProtocol(t *testing.T) {
	var clk fakeClock
	st := New(stm.New(), WithClock(clk.now))
	addr, stop := startServer(t, st)
	defer stop()
	c := dialClient(t, addr)
	defer c.close()

	if v := c.mustDo(t, "PING"); v.Kind != '+' || v.Str != "PONG" {
		t.Fatalf("PING = %+v", v)
	}
	if v := c.mustDo(t, "PING", "hello"); v.Kind != '$' || v.Str != "hello" {
		t.Fatalf("PING hello = %+v", v)
	}
	if v := c.mustDo(t, "SET", "k", "v"); v.Str != "OK" {
		t.Fatalf("SET = %+v", v)
	}
	if v := c.mustDo(t, "GET", "k"); v.Str != "v" {
		t.Fatalf("GET = %+v", v)
	}
	if v := c.mustDo(t, "GET", "missing"); !v.Null {
		t.Fatalf("GET missing = %+v, want null", v)
	}
	if v := c.mustDo(t, "INCR", "n"); v.Int != 1 {
		t.Fatalf("INCR = %+v", v)
	}
	if v := c.mustDo(t, "INCRBY", "n", "41"); v.Int != 42 {
		t.Fatalf("INCRBY = %+v", v)
	}
	if v, err := c.do("INCR", "k"); err != nil || !v.IsError() || !strings.Contains(v.Str, "not an integer") {
		t.Fatalf("INCR on text = %+v, %v", v, err)
	}
	if v := c.mustDo(t, "MSET", "a", "1", "b", "2"); v.Str != "OK" {
		t.Fatalf("MSET = %+v", v)
	}
	v := c.mustDo(t, "MGET", "a", "nope", "b")
	if len(v.Elems) != 3 || v.Elems[0].Str != "1" || !v.Elems[1].Null || v.Elems[2].Str != "2" {
		t.Fatalf("MGET = %+v", v)
	}
	if v := c.mustDo(t, "DEL", "a", "nope"); v.Int != 1 {
		t.Fatalf("DEL = %+v", v)
	}
	if v := c.mustDo(t, "DBSIZE"); v.Int != 3 { // k, n, b
		t.Fatalf("DBSIZE = %+v", v)
	}

	// Expiry over the wire, against the injected clock.
	if v := c.mustDo(t, "SET", "tmp", "x", "PX", "500"); v.Str != "OK" {
		t.Fatalf("SET PX = %+v", v)
	}
	if v := c.mustDo(t, "PTTL", "tmp"); v.Int != 500 {
		t.Fatalf("PTTL = %+v", v)
	}
	if v := c.mustDo(t, "TTL", "tmp"); v.Int != 1 { // 500ms rounds up
		t.Fatalf("TTL = %+v", v)
	}
	if v := c.mustDo(t, "TTL", "k"); v.Int != -1 {
		t.Fatalf("TTL no-expiry = %+v", v)
	}
	if v := c.mustDo(t, "TTL", "ghost"); v.Int != -2 {
		t.Fatalf("TTL missing = %+v", v)
	}
	clk.advance(600 * time.Millisecond)
	if v := c.mustDo(t, "GET", "tmp"); !v.Null {
		t.Fatalf("GET after expiry = %+v", v)
	}
	if v := c.mustDo(t, "EXPIRE", "k", "100"); v.Int != 1 {
		t.Fatalf("EXPIRE = %+v", v)
	}
	if v := c.mustDo(t, "EXPIRE", "ghost", "100"); v.Int != 0 {
		t.Fatalf("EXPIRE ghost = %+v", v)
	}

	// TTL arguments that would overflow time.Duration are rejected, not
	// silently turned into deletes; SET requires a positive expiry.
	c.mustDo(t, "SET", "longlived", "v")
	if v, _ := c.do("EXPIRE", "longlived", "10000000000"); !v.IsError() || !strings.Contains(v.Str, "invalid expire") {
		t.Fatalf("overflowing EXPIRE = %+v, want invalid-expire error", v)
	}
	if v := c.mustDo(t, "GET", "longlived"); v.Str != "v" {
		t.Fatalf("key lost to overflowing EXPIRE: %+v", v)
	}
	if v, _ := c.do("SET", "x", "y", "EX", "0"); !v.IsError() {
		t.Fatalf("SET EX 0 = %+v, want error", v)
	}
	if v, _ := c.do("SET", "x", "y", "PX", "-40"); !v.IsError() {
		t.Fatalf("SET PX -40 = %+v, want error", v)
	}
	// EXPIRE with an in-range negative TTL still deletes (Redis
	// semantics).
	if v := c.mustDo(t, "EXPIRE", "longlived", "-1"); v.Int != 1 {
		t.Fatalf("EXPIRE -1 = %+v", v)
	}
	if v := c.mustDo(t, "GET", "longlived"); !v.Null {
		t.Fatalf("EXPIRE -1 did not delete: %+v", v)
	}

	// MULTI/EXEC: queued replies, then the block's replies as one array.
	if v := c.mustDo(t, "MULTI"); v.Str != "OK" {
		t.Fatalf("MULTI = %+v", v)
	}
	if v := c.mustDo(t, "INCRBY", "x1", "5"); v.Str != "QUEUED" {
		t.Fatalf("queue INCRBY = %+v", v)
	}
	if v := c.mustDo(t, "INCRBY", "x2", "-5"); v.Str != "QUEUED" {
		t.Fatalf("queue INCRBY = %+v", v)
	}
	if v := c.mustDo(t, "MGET", "x1", "x2"); v.Str != "QUEUED" {
		t.Fatalf("queue MGET = %+v", v)
	}
	v = c.mustDo(t, "EXEC")
	if len(v.Elems) != 3 || v.Elems[0].Int != 5 || v.Elems[1].Int != -5 {
		t.Fatalf("EXEC = %+v", v)
	}
	if got := v.Elems[2]; got.Elems[0].Str != "5" || got.Elems[1].Str != "-5" {
		t.Fatalf("EXEC inner MGET = %+v", got)
	}

	// DISCARD drops the queue.
	c.mustDo(t, "MULTI")
	c.mustDo(t, "SET", "discarded", "1")
	if v := c.mustDo(t, "DISCARD"); v.Str != "OK" {
		t.Fatalf("DISCARD = %+v", v)
	}
	if v := c.mustDo(t, "GET", "discarded"); !v.Null {
		t.Fatalf("GET after DISCARD = %+v", v)
	}

	// A bad command poisons the queue: EXEC aborts.
	c.mustDo(t, "MULTI")
	if v, _ := c.do("NOSUCH", "x"); !v.IsError() {
		t.Fatalf("queueing unknown command = %+v", v)
	}
	if v, _ := c.do("SET", "y", "1"); v.Str != "QUEUED" {
		t.Fatalf("queue after poison = %+v", v)
	}
	if v, _ := c.do("EXEC"); !v.IsError() || !strings.Contains(v.Str, "EXECABORT") {
		t.Fatalf("EXEC on poisoned queue = %+v", v)
	}
	if v := c.mustDo(t, "GET", "y"); !v.Null {
		t.Fatalf("poisoned EXEC committed: %+v", v)
	}

	// EXEC is all-or-nothing: a failing INCR aborts the whole block.
	c.mustDo(t, "SET", "text", "abc")
	c.mustDo(t, "MULTI")
	c.mustDo(t, "SET", "z", "1")
	c.mustDo(t, "INCR", "text")
	if v, _ := c.do("EXEC"); !v.IsError() || !strings.Contains(v.Str, "EXECABORT") {
		t.Fatalf("EXEC with failing INCR = %+v", v)
	}
	if v := c.mustDo(t, "GET", "z"); !v.Null {
		t.Fatalf("aborted EXEC leaked a write: %+v", v)
	}

	// State-machine errors outside MULTI.
	if v, _ := c.do("EXEC"); !v.IsError() {
		t.Fatalf("EXEC without MULTI = %+v", v)
	}
	if v, _ := c.do("DISCARD"); !v.IsError() {
		t.Fatalf("DISCARD without MULTI = %+v", v)
	}
	if v, _ := c.do("GET"); !v.IsError() {
		t.Fatalf("GET with no key = %+v", v)
	}

	// Inline form over the same connection.
	if _, err := c.conn.Write([]byte("PING\r\n")); err != nil {
		t.Fatal(err)
	}
	if v, err := c.r.ReadReply(); err != nil || v.Str != "PONG" {
		t.Fatalf("inline PING = %+v, %v", v, err)
	}

	// QUIT closes cleanly.
	if v, err := c.do("QUIT"); err != nil || v.Str != "OK" {
		t.Fatalf("QUIT = %+v, %v", v, err)
	}
}

// TestServerTypedCommands drives the container command surface over
// real TCP: hash, list and zset verbs, TYPE, WRONGTYPE and arity
// error replies, WITHSCORES, and a MULTI/EXEC block spanning all
// three container kinds plus the all-or-nothing abort on a typed
// error.
func TestServerTypedCommands(t *testing.T) {
	var clk fakeClock
	st := New(stm.New(), WithClock(clk.now))
	addr, stop := startServer(t, st)
	defer stop()
	c := dialClient(t, addr)
	defer c.close()

	// Hashes.
	if v := c.mustDo(t, "HSET", "h", "f1", "a", "f2", "b"); v.Int != 2 {
		t.Fatalf("HSET = %+v", v)
	}
	if v := c.mustDo(t, "HSET", "h", "f1", "c"); v.Int != 0 {
		t.Fatalf("HSET overwrite = %+v", v)
	}
	if v := c.mustDo(t, "HGET", "h", "f1"); v.Str != "c" {
		t.Fatalf("HGET = %+v", v)
	}
	if v := c.mustDo(t, "HGET", "h", "nope"); !v.Null {
		t.Fatalf("HGET absent = %+v", v)
	}
	if v := c.mustDo(t, "HLEN", "h"); v.Int != 2 {
		t.Fatalf("HLEN = %+v", v)
	}
	v := c.mustDo(t, "HGETALL", "h")
	if len(v.Elems) != 4 {
		t.Fatalf("HGETALL = %+v", v)
	}
	got := map[string]string{v.Elems[0].Str: v.Elems[1].Str, v.Elems[2].Str: v.Elems[3].Str}
	if got["f1"] != "c" || got["f2"] != "b" {
		t.Fatalf("HGETALL pairs = %v", got)
	}
	if v := c.mustDo(t, "HINCRBY", "h", "ctr", "7"); v.Int != 7 {
		t.Fatalf("HINCRBY = %+v", v)
	}
	if v := c.mustDo(t, "HDEL", "h", "f1", "ghost"); v.Int != 1 {
		t.Fatalf("HDEL = %+v", v)
	}
	if v, _ := c.do("HSET", "h", "odd"); !v.IsError() {
		t.Fatalf("HSET bad arity = %+v", v)
	}

	// Lists.
	if v := c.mustDo(t, "RPUSH", "l", "a", "b"); v.Int != 2 {
		t.Fatalf("RPUSH = %+v", v)
	}
	if v := c.mustDo(t, "LPUSH", "l", "z"); v.Int != 3 {
		t.Fatalf("LPUSH = %+v", v)
	}
	v = c.mustDo(t, "LRANGE", "l", "0", "-1")
	if len(v.Elems) != 3 || v.Elems[0].Str != "z" || v.Elems[2].Str != "b" {
		t.Fatalf("LRANGE = %+v", v)
	}
	if v := c.mustDo(t, "LPOP", "l"); v.Str != "z" {
		t.Fatalf("LPOP = %+v", v)
	}
	if v := c.mustDo(t, "RPOP", "l"); v.Str != "b" {
		t.Fatalf("RPOP = %+v", v)
	}
	if v := c.mustDo(t, "LLEN", "l"); v.Int != 1 {
		t.Fatalf("LLEN = %+v", v)
	}
	if v := c.mustDo(t, "LPOP", "ghostlist"); !v.Null {
		t.Fatalf("LPOP missing = %+v", v)
	}

	// Sorted sets.
	if v := c.mustDo(t, "ZADD", "zs", "2", "b", "1", "a", "3", "c"); v.Int != 3 {
		t.Fatalf("ZADD = %+v", v)
	}
	if v := c.mustDo(t, "ZADD", "zs", "0.5", "c"); v.Int != 0 { // relocate
		t.Fatalf("ZADD relocate = %+v", v)
	}
	if v := c.mustDo(t, "ZSCORE", "zs", "b"); v.Str != "2" {
		t.Fatalf("ZSCORE = %+v", v)
	}
	if v := c.mustDo(t, "ZSCORE", "zs", "ghost"); !v.Null {
		t.Fatalf("ZSCORE missing = %+v", v)
	}
	v = c.mustDo(t, "ZRANGE", "zs", "0", "-1")
	if len(v.Elems) != 3 || v.Elems[0].Str != "c" || v.Elems[1].Str != "a" || v.Elems[2].Str != "b" {
		t.Fatalf("ZRANGE = %+v", v)
	}
	v = c.mustDo(t, "ZRANGE", "zs", "0", "1", "WITHSCORES")
	if len(v.Elems) != 4 || v.Elems[0].Str != "c" || v.Elems[1].Str != "0.5" || v.Elems[2].Str != "a" || v.Elems[3].Str != "1" {
		t.Fatalf("ZRANGE WITHSCORES = %+v", v)
	}
	if v, _ := c.do("ZRANGE", "zs", "0", "1", "NOSUCH"); !v.IsError() {
		t.Fatalf("ZRANGE bad option = %+v", v)
	}
	if v, _ := c.do("ZADD", "zs", "nan", "m"); !v.IsError() || !strings.Contains(v.Str, "not a valid float") {
		t.Fatalf("ZADD nan = %+v", v)
	}
	if v := c.mustDo(t, "ZCARD", "zs"); v.Int != 3 {
		t.Fatalf("ZCARD = %+v", v)
	}
	if v := c.mustDo(t, "ZREM", "zs", "a", "ghost"); v.Int != 1 {
		t.Fatalf("ZREM = %+v", v)
	}

	// TYPE names every kind; WRONGTYPE crosses them.
	c.mustDo(t, "SET", "str", "v")
	for key, want := range map[string]string{"str": "string", "h": "hash", "l": "list", "zs": "zset"} {
		if v := c.mustDo(t, "TYPE", key); v.Kind != '+' || v.Str != want {
			t.Fatalf("TYPE %s = %+v, want %s", key, v, want)
		}
	}
	if v := c.mustDo(t, "TYPE", "ghost"); v.Str != "none" {
		t.Fatalf("TYPE missing = %+v", v)
	}
	for _, cmd := range [][]string{
		{"GET", "h"},
		{"INCR", "l"},
		{"HGET", "l", "f"},
		{"LPUSH", "zs", "x"},
		{"ZADD", "str", "1", "m"},
		{"RPOP", "h"},
	} {
		if v, _ := c.do(cmd...); !v.IsError() || !strings.HasPrefix(v.Str, "WRONGTYPE") {
			t.Fatalf("%v = %+v, want WRONGTYPE", cmd, v)
		}
	}
	// MGET reads container keys as null, never as an error.
	v = c.mustDo(t, "MGET", "str", "h", "l")
	if v.Elems[0].Str != "v" || !v.Elems[1].Null || !v.Elems[2].Null {
		t.Fatalf("MGET over containers = %+v", v)
	}

	// EXPIRE applies to a whole container.
	if v := c.mustDo(t, "EXPIRE", "h", "1"); v.Int != 1 {
		t.Fatalf("EXPIRE hash = %+v", v)
	}
	clk.advance(2 * time.Second)
	if v := c.mustDo(t, "HLEN", "h"); v.Int != 0 {
		t.Fatalf("HLEN after expiry = %+v", v)
	}
	if v := c.mustDo(t, "TYPE", "h"); v.Str != "none" {
		t.Fatalf("TYPE after expiry = %+v", v)
	}

	// One MULTI/EXEC block spanning all three container kinds: promote
	// a job from a list into a zset and bump a hash counter atomically.
	c.mustDo(t, "RPUSH", "jobs", "j1")
	for _, cmd := range [][]string{
		{"MULTI"}, {"LPOP", "jobs"}, {"ZADD", "active", "5", "j1"}, {"HINCRBY", "stats", "promoted", "1"},
	} {
		c.mustDo(t, cmd...)
	}
	v = c.mustDo(t, "EXEC")
	if len(v.Elems) != 3 || v.Elems[0].Str != "j1" || v.Elems[1].Int != 1 || v.Elems[2].Int != 1 {
		t.Fatalf("typed EXEC = %+v", v)
	}
	if v := c.mustDo(t, "TYPE", "jobs"); v.Str != "none" { // drained → auto-deleted
		t.Fatalf("TYPE drained list = %+v", v)
	}
	// All-or-nothing: a WRONGTYPE mid-block aborts every queued write.
	c.mustDo(t, "MULTI")
	c.mustDo(t, "RPUSH", "newlist", "x")
	c.mustDo(t, "HSET", "active", "f", "v") // active is a zset
	if v, _ := c.do("EXEC"); !v.IsError() || !strings.Contains(v.Str, "EXECABORT") {
		t.Fatalf("EXEC with WRONGTYPE = %+v", v)
	}
	if v := c.mustDo(t, "TYPE", "newlist"); v.Str != "none" {
		t.Fatalf("aborted EXEC leaked a container write: %+v", v)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestServerGarbageDoesNotKill sends protocol garbage and asserts the
// server survives it: the offending connection gets an error reply (or
// a close), and a fresh connection still works.
func TestServerGarbageDoesNotKill(t *testing.T) {
	st := New(stm.New())
	addr, stop := startServer(t, st)
	defer stop()
	for _, garbage := range []string{
		"*2\r\n$3\r\nGET\r\njunkjunk",
		"*-5\r\n",
		"*1\r\n$99999999\r\n",
		"\x00\x01\x02\xff\r\n",
		"*0\r\n", // empty command frame: answered, never a panic
	} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Write([]byte(garbage))
		// Expect a response promptly — an error reply (malformed frames
		// also close the connection; unknown inline commands keep it
		// open). Either way the server must answer, not hang.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 4096)
		if n, err := conn.Read(buf); err != nil || n == 0 || buf[0] != '-' {
			t.Fatalf("garbage %q: reply %q, err %v; want an error reply", garbage, buf[:n], err)
		}
		conn.Close()
	}
	c := dialClient(t, addr)
	defer c.close()
	if v := c.mustDo(t, "PING"); v.Str != "PONG" {
		t.Fatalf("server unhealthy after garbage: %+v", v)
	}
}

// TestServerTransferHammer is the issue's acceptance hammer at the
// protocol level: N connections move value between keys with
// MULTI/INCRBY/INCRBY/EXEC while auditor connections MGET the accounts
// and assert conservation at every snapshot. Runs under -race in CI.
func TestServerTransferHammer(t *testing.T) {
	const (
		accounts = 6
		movers   = 6
		auditors = 2
		initial  = 500
	)
	ops := hammerOps(t) / 2
	s := stm.New(stm.WithManagerFactory(core.MustFactory("karma")), stm.WithInterleavePeriod(4))
	st := New(s, WithShards(4), WithBuckets(2))
	addr, stop := startServer(t, st)
	defer stop()

	keys := make([]string, accounts)
	seed := dialClient(t, addr)
	for i := range keys {
		keys[i] = fmt.Sprintf("acct:%d", i)
		seed.mustDo(t, "SET", keys[i], strconv.Itoa(initial))
	}
	seed.close()

	var wg sync.WaitGroup
	errs := make([]error, movers+auditors)
	for g := 0; g < movers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := dialClient(t, addr)
			defer c.close()
			for i := 0; i < ops; i++ {
				from := keys[(g+i)%accounts]
				to := keys[(g*7+i*3+1)%accounts]
				amount := strconv.Itoa(1 + (i % 9))
				for _, cmd := range [][]string{
					{"MULTI"},
					{"INCRBY", from, "-" + amount},
					{"INCRBY", to, amount},
					{"EXEC"},
				} {
					v, err := c.do(cmd...)
					if err != nil {
						errs[g] = fmt.Errorf("%v: %w", cmd, err)
						return
					}
					if v.IsError() {
						errs[g] = fmt.Errorf("%v: %s", cmd, v.Str)
						return
					}
				}
			}
		}(g)
	}
	for a := 0; a < auditors; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			c := dialClient(t, addr)
			defer c.close()
			for i := 0; i < ops; i++ {
				v, err := c.do(append([]string{"MGET"}, keys...)...)
				if err != nil {
					errs[movers+a] = err
					return
				}
				sum := 0
				for j, e := range v.Elems {
					if e.Null {
						errs[movers+a] = fmt.Errorf("account %s vanished", keys[j])
						return
					}
					n, err := strconv.Atoi(e.Str)
					if err != nil {
						errs[movers+a] = err
						return
					}
					sum += n
				}
				if sum != accounts*initial {
					errs[movers+a] = fmt.Errorf("conservation broken: sum %d, want %d", sum, accounts*initial)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestServerCloseUnblocksClients: Close with live idle connections
// must not deadlock, and in-flight handlers must drain.
func TestServerCloseUnblocksClients(t *testing.T) {
	st := New(stm.New())
	addr, stop := startServer(t, st)
	c := dialClient(t, addr)
	defer c.close()
	if v := c.mustDo(t, "PING"); v.Str != "PONG" {
		t.Fatalf("PING = %+v", v)
	}
	done := make(chan struct{})
	go func() { stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain with a live connection")
	}
	if _, err := c.do("PING"); err == nil {
		t.Fatal("connection survived server Close")
	}
}
