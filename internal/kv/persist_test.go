package kv

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stm"
	"repro/internal/wal"
)

// sortOps orders ops by key, stably: SnapshotOps emits each key's op
// sequence in a canonical order (sorted hash fields, list front to
// back, zset score order), so a stable by-key sort makes two dumps of
// the same logical state comparable whatever their shard iteration
// order.
func sortOps(ops []wal.Op) []wal.Op {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
	return ops
}

func openTestWAL(t *testing.T, dir string) *wal.Log {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{GroupWindow: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestWALRestoreEqualsPreCrashState is the acceptance test for the
// restore path: a scripted history with TTLs, deletes, sweeps and a
// mid-history snapshot, recovered into a fresh store, must reproduce
// exactly the live state of the original.
func TestWALRestoreEqualsPreCrashState(t *testing.T) {
	dir := t.TempDir()
	var clk atomic.Int64
	clk.Store(1_000)
	clock := func() int64 { return clk.Load() }

	a := New(stm.New(), WithShards(4), WithBuckets(2), WithClock(clock))
	l := openTestWAL(t, dir)
	a.AttachWAL(l)

	for i := 0; i < 40; i++ {
		if err := a.Set(fmt.Sprintf("key:%03d", i), fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
	}
	// TTLs at various deadlines; some will die before the cut.
	for i := 0; i < 10; i++ {
		if err := a.SetTTL(fmt.Sprintf("tmp:%d", i), "x", time.Duration(100+i*50)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Del("key:003", "key:007", "missing"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Incr("ctr", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Expire("key:001", 120); err != nil {
		t.Fatal(err)
	}
	clk.Add(300) // kills tmp:0..3 and key:001
	if _, err := a.Sweep(); err != nil {
		t.Fatal(err)
	}
	if err := a.Save(); err != nil {
		t.Fatal(err)
	}
	// History after the snapshot, replayed from the rotated log.
	if err := a.MSet(KV{K: "post:a", V: "1"}, KV{K: "post:b", V: "2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Incr("ctr", -2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Del("key:010"); err != nil {
		t.Fatal(err)
	}
	if err := a.SetTTL("tmp:new", "y", 10_000); err != nil {
		t.Fatal(err)
	}

	want, err := a.SnapshotOps()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	b := New(stm.New(), WithShards(8), WithBuckets(2), WithClock(clock))
	st, err := wal.Recover(dir, b.Apply)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotOps == 0 || st.Records == 0 {
		t.Fatalf("recovery used neither snapshot nor log: %+v", st)
	}
	got, err := b.SnapshotOps()
	if err != nil {
		t.Fatal(err)
	}
	wantS, gotS := sortOps(want), sortOps(got)
	if len(wantS) != len(gotS) {
		t.Fatalf("restored %d live entries, want %d\n got %+v\nwant %+v", len(gotS), len(wantS), gotS, wantS)
	}
	for i := range wantS {
		if wantS[i] != gotS[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, gotS[i], wantS[i])
		}
	}
	if v, ok, _ := b.Get("ctr"); !ok || v != "3" {
		t.Fatalf("ctr = %q (%v), want 3", v, ok)
	}
	// TTL semantics survive: tmp:new still carries its deadline.
	if d, ok, _ := b.TTL("tmp:new"); !ok || d <= 0 {
		t.Fatalf("tmp:new TTL = %v (%v)", d, ok)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWALConcurrentTransfersConserve hammers the durable store with
// concurrent cross-key transfers, then recovers the directory
// as-is — no clean Close, as a crash would leave it — and checks the
// conservation sum and full state equality. Every transfer waited on
// its durability ack, so everything is on disk despite the missing
// shutdown.
func TestWALConcurrentTransfersConserve(t *testing.T) {
	dir := t.TempDir()
	a := New(stm.New(), WithShards(8), WithBuckets(4))
	l := openTestWAL(t, dir)
	a.AttachWAL(l)

	const accounts = 8
	const balance = 1000
	pairs := make([]KV, accounts)
	keys := make([]string, accounts)
	for i := range pairs {
		keys[i] = fmt.Sprintf("acct:%d", i)
		pairs[i] = KV{K: keys[i], V: fmt.Sprint(balance)}
	}
	if err := a.MSet(pairs...); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perW = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				from, to := keys[(w+i)%accounts], keys[(w+i+1)%accounts]
				err := a.Atomically(func(tx *stm.Tx, now int64) error {
					if _, err := a.IncrTx(tx, now, from, -3); err != nil {
						return err
					}
					_, err := a.IncrTx(tx, now, to, 3)
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want, err := a.SnapshotOps()
	if err != nil {
		t.Fatal(err)
	}

	// Recover without closing the log: the on-disk state is what a
	// kill -9 after the last ack would leave.
	b := New(stm.New(), WithShards(8), WithBuckets(4))
	if _, err := wal.Recover(dir, b.Apply); err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, k := range keys {
		v, ok, err := b.Get(k)
		if err != nil || !ok {
			t.Fatalf("account %s missing after recovery (%v)", k, err)
		}
		var n int
		fmt.Sscan(v, &n)
		sum += n
	}
	if sum != accounts*balance {
		t.Fatalf("conservation broken: sum %d, want %d", sum, accounts*balance)
	}
	got, err := b.SnapshotOps()
	if err != nil {
		t.Fatal(err)
	}
	wantS, gotS := sortOps(want), sortOps(got)
	if len(wantS) != len(gotS) {
		t.Fatalf("restored %d entries, want %d", len(gotS), len(wantS))
	}
	for i := range wantS {
		if wantS[i] != gotS[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, gotS[i], wantS[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepLogsTombstones pins the sweeper satellite's contract: a
// swept expiry is logged, so replay agrees with the reap even under
// a clock that has not reached the deadline (the resurrection case
// absolute deadlines alone cannot rule out).
func TestSweepLogsTombstones(t *testing.T) {
	dir := t.TempDir()
	var clk atomic.Int64
	clk.Store(1_000)
	a := New(stm.New(), WithShards(2), WithClock(func() int64 { return clk.Load() }))
	l := openTestWAL(t, dir)
	a.AttachWAL(l)

	if err := a.SetTTL("doomed", "v", 50); err != nil {
		t.Fatal(err)
	}
	if err := a.Set("keeper", "v"); err != nil {
		t.Fatal(err)
	}
	clk.Add(100)
	removed, err := a.Sweep()
	if err != nil || removed != 1 {
		t.Fatalf("sweep removed %d (%v), want 1", removed, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var sawTombstone bool
	apply := func(ops []wal.Op) error {
		for _, op := range ops {
			if op.Del && op.Key == "doomed" {
				sawTombstone = true
			}
		}
		return nil
	}
	if _, err := wal.Recover(dir, apply); err != nil {
		t.Fatal(err)
	}
	if !sawTombstone {
		t.Fatal("sweep did not log a tombstone for the reaped key")
	}

	// Replay under a clock still before the deadline: without the
	// tombstone the entry would resurrect.
	b := New(stm.New(), WithShards(2), WithClock(func() int64 { return 1_000 }))
	if _, err := wal.Recover(dir, b.Apply); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.Get("doomed"); ok {
		t.Fatal("swept key resurrected on replay")
	}
	if _, ok, _ := b.Get("keeper"); !ok {
		t.Fatal("keeper lost")
	}
}

// TestServerSaveRestoreBinaryKeys drives SAVE/BGSAVE over the wire and
// checks that binary-hostile keys (NULs, CRLFs, high bytes) survive the
// full protocol → store → snapshot → restore path.
func TestServerSaveRestoreBinaryKeys(t *testing.T) {
	dir := t.TempDir()
	a := New(stm.New(), WithShards(4))
	l := openTestWAL(t, dir)
	a.AttachWAL(l)
	addr, stop := startServer(t, a)
	c := dialClient(t, addr)
	defer c.close()

	bin := "b\x00in\xff\r\n:key"
	val := "v\x00al\xfe\r\n"
	c.mustDo(t, "SET", bin, val)
	c.mustDo(t, "SET", "plain", "1")
	if v := c.mustDo(t, "GET", bin); v.Str != val {
		t.Fatalf("GET binary = %q, want %q", v.Str, val)
	}
	if v := c.mustDo(t, "SAVE"); v.Str != "OK" {
		t.Fatalf("SAVE = %q", v.Str)
	}
	c.mustDo(t, "SET", "after", "2")
	if v := c.mustDo(t, "BGSAVE"); v.Str != "Background saving started" {
		t.Fatalf("BGSAVE = %q", v.Str)
	}
	// The background cut holds the single-flight slot; SAVE reports
	// "in progress" until it finishes, then succeeds again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.do("SAVE")
		if err != nil {
			t.Fatal(err)
		}
		if !v.IsError() {
			break
		}
		if !strings.Contains(v.Str, "in progress") {
			t.Fatalf("SAVE after BGSAVE: %q", v.Str)
		}
		if time.Now().After(deadline) {
			t.Fatal("background save never finished")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	b := New(stm.New(), WithShards(4))
	if _, err := wal.Recover(dir, b.Apply); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := b.Get(bin); !ok || v != val {
		t.Fatalf("binary key after restore = %q (%v), want %q", v, ok, val)
	}
	if _, ok, _ := b.Get("after"); !ok {
		t.Fatal("post-snapshot write lost")
	}
}

// TestServerSaveErrors pins the failure replies: SAVE without
// persistence, and SAVE/BGSAVE inside MULTI poisoning the block.
func TestServerSaveErrors(t *testing.T) {
	addr, stop := startServer(t, New(stm.New()))
	defer stop()
	c := dialClient(t, addr)
	defer c.close()

	v, err := c.do("SAVE")
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsError() || !strings.Contains(v.Str, "persistence is disabled") {
		t.Fatalf("SAVE on memory-only store: %q", v.Str)
	}
	c.mustDo(t, "MULTI")
	v, err = c.do("BGSAVE")
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsError() || !strings.Contains(v.Str, "inside MULTI") {
		t.Fatalf("BGSAVE inside MULTI: %q", v.Str)
	}
	v, err = c.do("EXEC")
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsError() || !strings.Contains(v.Str, "EXECABORT") {
		t.Fatalf("EXEC after poisoned block: %q", v.Str)
	}
}
