package kv

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resp"
)

// This file is the server's observability surface: per-command
// metrics, the SLOWLOG ring, the INFO sections, and the bridge that
// exposes engine (stm), WAL and keyspace state through the obs
// registry. The paper-relevant number here is the per-manager wait
// time: a contention manager without a progress guarantee shows up as
// stm_wait_ns_total exploding while commits flatline (ROADMAP's karma
// convoy), which no throughput counter reveals.

// ServerOption configures a Server beyond its store.
type ServerOption func(*Server)

// WithRegistry makes the server register and expose its metrics in
// reg instead of a private registry — the hook cmd/stmkv uses to serve
// everything on one /metrics listener.
func WithRegistry(reg *obs.Registry) ServerOption {
	return func(srv *Server) { srv.reg = reg }
}

// WithManagerName labels the engine metrics with the contention
// manager the server was started with, so dashboards can tell a karma
// fleet from a greedy one.
func WithManagerName(name string) ServerOption {
	return func(srv *Server) { srv.managerName = name }
}

// WithSlowlog tunes the slow-command ring: commands at or above
// threshold are recorded, keeping the most recent size entries. A
// negative threshold disables recording; zero records everything.
// Defaults: 10ms, 128 entries.
func WithSlowlog(threshold time.Duration, size int) ServerOption {
	return func(srv *Server) {
		srv.slow.threshold = threshold
		if size > 0 {
			srv.slow.ring = make([]slowEntry, size)
		}
	}
}

// cmdMetrics is one command's counters and latency distribution.
type cmdMetrics struct {
	calls  *obs.Counter
	errors *obs.Counter
	lat    *obs.Histogram
}

// commandNames enumerates every command the handler accepts, control
// commands included — the fixed metric universe, pre-registered so the
// hot path is map lookups of interned strings, never registration.
var commandNames = []string{
	"PING", "GET", "SET", "DEL", "INCR", "INCRBY", "MGET", "MSET",
	"EXPIRE", "PEXPIRE", "TTL", "PTTL", "DBSIZE",
	"HSET", "HGET", "HDEL", "HGETALL", "HLEN", "HINCRBY",
	"LPUSH", "RPUSH", "LPOP", "RPOP", "LLEN", "LRANGE",
	"ZADD", "ZSCORE", "ZREM", "ZCARD", "ZRANGE", "TYPE",
	"MULTI", "EXEC", "DISCARD", "QUIT", "SAVE", "BGSAVE",
	"INFO", "SLOWLOG", "ABORTLOG",
}

// serverMetrics bundles the server's own instruments.
type serverMetrics struct {
	connections *obs.Counter
	clients     *obs.Gauge
	cmds        map[string]*cmdMetrics
	unknown     *cmdMetrics

	sweepFailures  *obs.Counter
	sweepReaped    *obs.Counter
	bgsaveFailures *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	sm := &serverMetrics{
		connections: reg.Counter("stmkv_connections_total", "Connections accepted.", nil),
		clients:     reg.Gauge("stmkv_connected_clients", "Connections currently open.", nil),
		cmds:        make(map[string]*cmdMetrics, len(commandNames)+1),
		sweepFailures: reg.Counter("stmkv_sweeper_failures_total",
			"Background TTL sweeper passes that failed.", nil),
		sweepReaped: reg.Counter("stmkv_sweeper_reaped_total",
			"Expired keys removed by the background sweeper.", nil),
		bgsaveFailures: reg.Counter("stmkv_bgsave_failures_total",
			"Background saves (scheduled or BGSAVE) that failed.", nil),
	}
	mk := func(name string) *cmdMetrics {
		lbl := obs.Labels{"cmd": strings.ToLower(name)}
		return &cmdMetrics{
			calls:  reg.Counter("stmkv_commands_total", "Commands processed.", lbl),
			errors: reg.Counter("stmkv_command_errors_total", "Commands answered with an error.", lbl),
			lat:    reg.Histogram("stmkv_command_seconds", "Command wall time, decode to reply.", lbl),
		}
	}
	for _, name := range commandNames {
		sm.cmds[name] = mk(name)
	}
	sm.unknown = mk("UNKNOWN")
	return sm
}

// cmd returns the metrics slot for a command name (already uppercased
// by the handler), folding unrecognized names into one series so a
// hostile client cannot grow the label space.
func (sm *serverMetrics) cmd(name string) *cmdMetrics {
	if m, ok := sm.cmds[name]; ok {
		return m
	}
	return sm.unknown
}

// observe records one handled command. reply errors count as command
// errors whether they came from validation, execution, or state
// machinery (MULTI misuse) — if the client saw "-ERR", it counts.
func (srv *Server) observe(name string, start time.Time, args []string, reply resp.Value, cost txCost) {
	m := srv.sm.cmd(name)
	m.calls.Inc()
	if reply.IsError() {
		m.errors.Inc()
	}
	dur := time.Since(start)
	m.lat.Observe(dur)
	// SLOWLOG itself is exempt: inspecting or resetting the log must
	// not repopulate it (a RESET would otherwise leave one entry —
	// the RESET).
	if name != "SLOWLOG" {
		srv.slow.note(name, args, dur, cost)
	}
}

// NoteSweepFailure counts a failed background sweeper pass; the
// sweeper goroutine lives in cmd/stmkv, the count surfaces in INFO
// stats and /metrics.
func (srv *Server) NoteSweepFailure() { srv.sm.sweepFailures.Inc() }

// NoteSweepReaped counts keys removed by the background sweeper.
func (srv *Server) NoteSweepReaped(n int) { srv.sm.sweepReaped.Add(int64(n)) }

// NoteBgsaveFailure counts a failed background save (scheduled
// -bgsave-every runs and BGSAVE commands alike).
func (srv *Server) NoteBgsaveFailure() { srv.sm.bgsaveFailures.Inc() }

// Registry returns the registry holding the server's metrics (its own
// unless WithRegistry injected one), for serving over HTTP.
func (srv *Server) Registry() *obs.Registry { return srv.reg }

// registerStoreMetrics bridges engine, WAL and keyspace state into the
// registry as read-at-scrape functions — the subsystems keep their own
// quiescence-free counters; exposition just snapshots them.
func registerStoreMetrics(reg *obs.Registry, st *Store, manager string) {
	lbl := obs.Labels{"manager": manager}
	engine := st.STM()
	reg.CounterFunc("stm_commits_total", "Committed logical transactions.", lbl,
		func() int64 { s := engine.TotalStats(); return s.Commits })
	reg.CounterFunc("stm_aborts_total", "Aborted transaction attempts.", lbl,
		func() int64 { s := engine.TotalStats(); return s.Aborts })
	reg.CounterFunc("stm_conflicts_total", "Conflicts observed.", lbl,
		func() int64 { s := engine.TotalStats(); return s.Conflicts })
	reg.CounterFunc("stm_enemy_aborts_total", "Conflicts resolved by aborting the enemy.", lbl,
		func() int64 { s := engine.TotalStats(); return s.EnemyAborts })
	reg.CounterFunc("stm_aborts_enemy_total",
		"Aborts caused by an enemy's manager (or the self-abort ruling).", lbl,
		func() int64 { s := engine.TotalStats(); return s.AbortsEnemy })
	reg.CounterFunc("stm_aborts_validation_total",
		"Aborts from read-set validation failure.", lbl,
		func() int64 { s := engine.TotalStats(); return s.AbortsValidation })
	reg.CounterFunc("stm_aborts_cas_race_total",
		"Aborts from losing the commit status CAS after validation.", lbl,
		func() int64 { s := engine.TotalStats(); return s.AbortsCASRace })
	reg.CounterFunc("stm_aborts_user_total",
		"Transactions ended by a non-retryable user error.", lbl,
		func() int64 { s := engine.TotalStats(); return s.AbortsUser })
	reg.CounterFunc("stm_wait_ns_total",
		"Nanoseconds inside the contention manager's ResolveConflict (policy waiting).", lbl,
		func() int64 { s := engine.TotalStats(); return s.WaitNs })
	reg.CounterFunc("stm_backoff_ns_total",
		"Nanoseconds in engine-level backoff (CAS retries, installer waits).", lbl,
		func() int64 { s := engine.TotalStats(); return s.BackoffNs })
	reg.HistogramFunc("stm_commit_seconds",
		"Wall time of committed logical transactions, retries included.", lbl,
		engine.CommitLatency)
	reg.SizeHistogramFunc("stm_commit_attempts",
		"Attempts per committed transaction (1 = first try).", lbl,
		engine.CommitAttempts)
	reg.GaugeFunc("stmkv_keys", "Approximate live keys (expired excluded).", nil,
		func() float64 { return float64(st.PeekLen()) })
	if !st.Durable() {
		return
	}
	l := st.WAL()
	reg.CounterFunc("wal_records_total", "Write sets logged.", nil,
		func() int64 { return l.Stats().Records })
	reg.CounterFunc("wal_batches_total", "Group-commit flushes.", nil,
		func() int64 { return l.Stats().Batches })
	reg.CounterFunc("wal_fsyncs_total", "Segment fsync syscalls.", nil,
		func() int64 { return l.Stats().Fsyncs })
	reg.CounterFunc("wal_dropped_total", "Records refused for exceeding MaxRecord.", nil,
		func() int64 { return l.Stats().Dropped })
	reg.GaugeFunc("wal_segment", "Sequence number of the segment being written.", nil,
		func() float64 { return float64(l.Stats().Segment) })
	reg.GaugeFunc("wal_queue_depth", "Tickets enqueued but not yet flushed.", nil,
		func() float64 { return float64(l.Stats().QueueDepth) })
	reg.GaugeFunc("wal_sticky_error", "1 when the log is poisoned by a write/fsync failure.", nil,
		func() float64 {
			if l.Err() != nil {
				return 1
			}
			return 0
		})
	reg.HistogramFunc("wal_fsync_seconds", "Segment fsync wall time.", nil, l.FsyncLatency)
	reg.SizeHistogramFunc("wal_batch_ops", "Records per group-commit flush.", nil, l.BatchSizes)
}

// slowEntry is one recorded slow command. attempts and waitNs carry
// the engine's verdict on *why* it was slow: a command with many
// attempts or a large wait was a contention victim, one with neither
// was genuinely doing work (a long LRANGE, a DBSIZE scan).
type slowEntry struct {
	id       int64
	unix     int64 // wall-clock seconds when the command finished
	dur      time.Duration
	attempts int64    // transaction attempts (0 for non-transactional commands)
	waitNs   int64    // ns inside the contention manager, across attempts
	args     []string // command name followed by its arguments
}

// slowlog is a fixed-size ring of the most recent slow commands,
// mirroring Redis's SLOWLOG: mutex-guarded because it is only touched
// for commands that already took ~milliseconds.
type slowlog struct {
	mu        sync.Mutex
	threshold time.Duration
	ring      []slowEntry
	total     int64 // entries ever recorded; also the next id
}

func (sl *slowlog) note(name string, args []string, dur time.Duration, cost txCost) {
	if sl.threshold < 0 || dur < sl.threshold || len(sl.ring) == 0 {
		return
	}
	full := append([]string{name}, args...)
	sl.mu.Lock()
	sl.ring[sl.total%int64(len(sl.ring))] = slowEntry{
		id:       sl.total,
		unix:     time.Now().Unix(),
		dur:      dur,
		attempts: cost.attempts,
		waitNs:   cost.waitNs,
		args:     full,
	}
	sl.total++
	sl.mu.Unlock()
}

// get returns up to n entries, newest first (n < 0 means all held).
func (sl *slowlog) get(n int) []slowEntry {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	held := sl.total
	if held > int64(len(sl.ring)) {
		held = int64(len(sl.ring))
	}
	if n >= 0 && int64(n) < held {
		held = int64(n)
	}
	out := make([]slowEntry, 0, held)
	for i := int64(0); i < held; i++ {
		out = append(out, sl.ring[(sl.total-1-i)%int64(len(sl.ring))])
	}
	return out
}

func (sl *slowlog) len() int64 {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.total > int64(len(sl.ring)) {
		return int64(len(sl.ring))
	}
	return sl.total
}

func (sl *slowlog) reset() {
	sl.mu.Lock()
	sl.total = 0
	for i := range sl.ring {
		sl.ring[i] = slowEntry{}
	}
	sl.mu.Unlock()
}

// slowlogReply serves SLOWLOG GET [n] | LEN | RESET.
func (srv *Server) slowlogReply(args []string) resp.Value {
	switch strings.ToUpper(args[0]) {
	case "GET":
		n := 10
		if len(args) == 2 {
			v, err := strconv.Atoi(args[1])
			if err != nil {
				return resp.ErrVal("ERR value is not an integer or out of range")
			}
			n = v
		} else if len(args) > 2 {
			return resp.ErrVal("ERR wrong number of arguments for 'slowlog|get' command")
		}
		entries := srv.slow.get(n)
		elems := make([]resp.Value, len(entries))
		for i, e := range entries {
			cmd := make([]resp.Value, len(e.args))
			for j, a := range e.args {
				cmd[j] = resp.BulkVal(a)
			}
			elems[i] = resp.ArrayVal(
				resp.IntVal(e.id),
				resp.IntVal(e.unix),
				resp.IntVal(e.dur.Microseconds()),
				resp.ArrayVal(cmd...),
				resp.IntVal(e.attempts),
				resp.IntVal(e.waitNs),
			)
		}
		return resp.ArrayVal(elems...)
	case "LEN":
		if len(args) != 1 {
			return resp.ErrVal("ERR wrong number of arguments for 'slowlog|len' command")
		}
		return resp.IntVal(srv.slow.len())
	case "RESET":
		if len(args) != 1 {
			return resp.ErrVal("ERR wrong number of arguments for 'slowlog|reset' command")
		}
		srv.slow.reset()
		return resp.SimpleVal("OK")
	default:
		return resp.ErrVal(fmt.Sprintf("ERR unknown SLOWLOG subcommand '%s'", args[0]))
	}
}

// infoSections lists the sections in rendering order.
var infoSections = []string{"server", "clients", "stats", "commandstats", "stm", "contention", "wal", "keyspace"}

// infoReply serves INFO [section].
func (srv *Server) infoReply(args []string) resp.Value {
	sections := infoSections
	if len(args) == 1 {
		want := strings.ToLower(args[0])
		found := false
		for _, s := range infoSections {
			if s == want {
				sections, found = []string{s}, true
				break
			}
		}
		if !found {
			return resp.ErrVal(fmt.Sprintf("ERR unknown INFO section '%s'", args[0]))
		}
	}
	var b strings.Builder
	for i, s := range sections {
		if i > 0 {
			b.WriteString("\r\n")
		}
		srv.infoSection(&b, s)
	}
	return resp.BulkVal(b.String())
}

func (srv *Server) infoSection(b *strings.Builder, section string) {
	line := func(k string, v any) { fmt.Fprintf(b, "%s:%v\r\n", k, v) }
	switch section {
	case "server":
		b.WriteString("# Server\r\n")
		line("stmkv_version", "0.8.0")
		line("go_version", runtime.Version())
		line("process_id", os.Getpid())
		line("uptime_in_seconds", int64(time.Since(srv.started).Seconds()))
		line("contention_manager", srv.managerName)
		line("shards", srv.store.Shards())
		line("durable", boolInt(srv.store.Durable()))
	case "clients":
		b.WriteString("# Clients\r\n")
		line("connected_clients", srv.sm.clients.Value())
	case "stats":
		b.WriteString("# Stats\r\n")
		var cmds, errs int64
		for _, m := range srv.sm.cmds {
			cmds += m.calls.Value()
			errs += m.errors.Value()
		}
		cmds += srv.sm.unknown.calls.Value()
		errs += srv.sm.unknown.errors.Value()
		line("total_connections_received", srv.sm.connections.Value())
		line("total_commands_processed", cmds)
		line("total_command_errors", errs)
		line("sweeper_failures", srv.sm.sweepFailures.Value())
		line("sweeper_reaped_keys", srv.sm.sweepReaped.Value())
		line("bgsave_failures", srv.sm.bgsaveFailures.Value())
		line("slowlog_len", srv.slow.len())
	case "commandstats":
		b.WriteString("# Commandstats\r\n")
		names := make([]string, 0, len(srv.sm.cmds))
		for name := range srv.sm.cmds {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := srv.sm.cmds[name]
			calls := m.calls.Value()
			if calls == 0 {
				continue
			}
			snap := m.lat.Snapshot()
			fmt.Fprintf(b, "cmdstat_%s:calls=%d,errors=%d,p50_usec=%d,p99_usec=%d\r\n",
				strings.ToLower(name), calls, m.errors.Value(),
				snap.Quantile(0.50).Microseconds(), snap.Quantile(0.99).Microseconds())
		}
	case "stm":
		b.WriteString("# Stm\r\n")
		s := srv.store.STM().TotalStats()
		line("manager", srv.managerName)
		line("commits", s.Commits)
		line("aborts", s.Aborts)
		line("conflicts", s.Conflicts)
		line("enemy_aborts", s.EnemyAborts)
		line("opens", s.Opens)
		line("wait_ns", s.WaitNs)
		line("backoff_ns", s.BackoffNs)
		fmt.Fprintf(b, "abort_rate:%.4f\r\n", s.AbortRate())
		lat := srv.store.STM().CommitLatency()
		line("commit_p50_usec", lat.Quantile(0.50).Microseconds())
		line("commit_p99_usec", lat.Quantile(0.99).Microseconds())
		tries := srv.store.STM().CommitAttempts()
		fmt.Fprintf(b, "attempts_per_commit:%.2f\r\n", meanOf(tries.Sum(), tries.Count()))
	case "contention":
		// The forensics section: Aborts split by cause. Validation and
		// CAS-race aborts dominating means the manager let doomed work
		// run to its commit point; enemy aborts dominating means open-
		// time conflicts are being resolved by killing someone.
		b.WriteString("# Contention\r\n")
		s := srv.store.STM().TotalStats()
		line("aborts_enemy", s.AbortsEnemy)
		line("aborts_validation", s.AbortsValidation)
		line("aborts_cas_race", s.AbortsCASRace)
		line("aborts_user_error", s.AbortsUser)
		line("wait_ns", s.WaitNs)
		line("abortlog_len", srv.abort.Len())
	case "wal":
		b.WriteString("# Wal\r\n")
		if !srv.store.Durable() {
			line("wal_enabled", 0)
			return
		}
		line("wal_enabled", 1)
		l := srv.store.WAL()
		st := l.Stats()
		line("records", st.Records)
		line("batches", st.Batches)
		line("fsyncs", st.Fsyncs)
		line("dropped", st.Dropped)
		line("segment", st.Segment)
		line("queue_depth", st.QueueDepth)
		lat := l.FsyncLatency()
		line("fsync_p50_usec", lat.Quantile(0.50).Microseconds())
		line("fsync_p99_usec", lat.Quantile(0.99).Microseconds())
		sizes := l.BatchSizes()
		fmt.Fprintf(b, "ops_per_batch:%.2f\r\n", meanOf(sizes.Sum(), sizes.Count()))
		if err := l.Err(); err != nil {
			line("sticky_error", err.Error())
		} else {
			line("sticky_error", "none")
		}
	case "keyspace":
		b.WriteString("# Keyspace\r\n")
		fmt.Fprintf(b, "db0:keys=%d\r\n", srv.store.PeekLen())
	}
}

func boolInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// meanOf computes sum/count as a float, zero when empty — for
// dimensionless histograms whose Sum is stored as a time.Duration.
func meanOf(sum time.Duration, count uint64) float64 {
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}
