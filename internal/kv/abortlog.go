package kv

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/resp"
	"repro/internal/stm"
)

// AbortLog is SLOWLOG's sibling for contention: a fixed-size ring of
// the most recent *troubled* sampled transactions — those that
// retried, waited on a contention manager, or died on a user error —
// each with its abort cause and a compact rendering of its event
// trace. Where SLOWLOG answers "which commands were slow", ABORTLOG
// answers "which transactions fought, with whom, and why they lost".
//
// It implements stm.TraceSink; cmd/stmkv installs it (teed with the
// obs conflict matrix) via stm.WithTracer and hands it to the server
// with WithAbortLog, which serves it as ABORTLOG GET/LEN/RESET.
// TxDone runs on the transaction's goroutine after commit, so the
// critical section is kept to the ring store; rendering the event
// strings happens outside the lock.
type AbortLog struct {
	mu    sync.Mutex
	ring  []abortEntry
	total int64 // entries ever recorded; also the next id
}

// abortEntry is one recorded troubled transaction.
type abortEntry struct {
	id        int64
	unix      int64 // wall-clock seconds when the transaction ended
	label     string
	committed bool
	cause     stm.AbortCause // final attempt's cause (last abort for committed txs)
	attempts  int64
	waitNs    int64
	latNs     int64
	events    []string
}

// maxAbortEvents caps the rendered trace per entry; the engine already
// caps recording at 512 events, this bounds what one GET reply ships.
const maxAbortEvents = 32

// NewAbortLog returns a ring keeping the size most recent troubled
// transactions (minimum 1).
func NewAbortLog(size int) *AbortLog {
	if size < 1 {
		size = 1
	}
	return &AbortLog{ring: make([]abortEntry, size)}
}

// TxDone records the transaction if it was troubled: any retry, any
// manager wait, or any abort cause. Clean first-try commits — the
// overwhelming majority — return after two comparisons.
func (al *AbortLog) TxDone(sum stm.TxSummary, events []stm.TraceEvent) {
	if sum.Attempts <= 1 && sum.WaitNs == 0 && sum.Cause == stm.CauseNone {
		return
	}
	// Render outside the lock; the events slice is reused by the
	// session, so everything kept is copied into fresh strings here.
	rendered := renderEvents(events)
	e := abortEntry{
		unix:      time.Now().Unix(),
		label:     sum.Label,
		committed: sum.Committed,
		cause:     sum.Cause,
		attempts:  sum.Attempts,
		waitNs:    sum.WaitNs,
		latNs:     sum.LatNs,
		events:    rendered,
	}
	al.mu.Lock()
	e.id = al.total
	al.ring[al.total%int64(len(al.ring))] = e
	al.total++
	al.mu.Unlock()
}

// renderEvents formats a trace compactly, one string per event:
//
//	a2 conflict obj=list(jobs) enemy=LPUSH decision=wait wait_us=12
//	a2 abort cause=enemy-abort
func renderEvents(events []stm.TraceEvent) []string {
	n := len(events)
	if n > maxAbortEvents {
		n = maxAbortEvents
	}
	out := make([]string, 0, n)
	for _, ev := range events[:n] {
		var b strings.Builder
		fmt.Fprintf(&b, "a%d %s", ev.Attempt, ev.Kind)
		switch ev.Kind {
		case stm.TraceOpen, stm.TraceConflict:
			if ev.Obj != "" {
				b.WriteString(" obj=" + ev.Obj)
			} else {
				b.WriteString(" stripe=" + strconv.FormatUint(uint64(ev.Stripe), 10))
			}
		}
		switch ev.Kind {
		case stm.TraceOpen:
			if ev.Write {
				b.WriteString(" write")
			} else {
				b.WriteString(" read")
			}
		case stm.TraceConflict:
			enemy := ev.Enemy
			if enemy == "" {
				enemy = "(unlabelled)"
			}
			fmt.Fprintf(&b, " enemy=%s decision=%s wait_us=%d",
				enemy, ev.Decision, ev.Ns/1000)
		case stm.TraceAbort:
			b.WriteString(" cause=" + ev.Cause.String())
		case stm.TraceCommit:
			fmt.Fprintf(&b, " lat_us=%d", ev.Ns/1000)
		}
		out = append(out, b.String())
	}
	if len(events) > maxAbortEvents {
		out = append(out, fmt.Sprintf("... %d more events", len(events)-maxAbortEvents))
	}
	return out
}

// get returns up to n entries, newest first (n < 0 means all held).
func (al *AbortLog) get(n int) []abortEntry {
	al.mu.Lock()
	defer al.mu.Unlock()
	held := al.total
	if held > int64(len(al.ring)) {
		held = int64(len(al.ring))
	}
	if n >= 0 && int64(n) < held {
		held = int64(n)
	}
	out := make([]abortEntry, 0, held)
	for i := int64(0); i < held; i++ {
		out = append(out, al.ring[(al.total-1-i)%int64(len(al.ring))])
	}
	return out
}

// Len reports how many entries the ring currently holds.
func (al *AbortLog) Len() int64 {
	al.mu.Lock()
	defer al.mu.Unlock()
	if al.total > int64(len(al.ring)) {
		return int64(len(al.ring))
	}
	return al.total
}

func (al *AbortLog) reset() {
	al.mu.Lock()
	al.total = 0
	for i := range al.ring {
		al.ring[i] = abortEntry{}
	}
	al.mu.Unlock()
}

// WithAbortLog hands the server the abort log installed on its store's
// engine (via stm.WithTracer), so ABORTLOG serves it. Without this
// option the server keeps a private, never-fed ring: ABORTLOG answers,
// but stays empty.
func WithAbortLog(al *AbortLog) ServerOption {
	return func(srv *Server) {
		if al != nil {
			srv.abort = al
		}
	}
}

// abortlogReply serves ABORTLOG GET [n] | LEN | RESET. Each GET entry
// is an array:
//
//  1. id            2) unix seconds   3) label ("" unlabelled)
//  4. committed 0/1 5) cause          6) attempts
//  7. wait_usec     8) latency_usec   9) array of event strings
func (srv *Server) abortlogReply(args []string) resp.Value {
	switch strings.ToUpper(args[0]) {
	case "GET":
		n := 10
		if len(args) == 2 {
			v, err := strconv.Atoi(args[1])
			if err != nil {
				return resp.ErrVal("ERR value is not an integer or out of range")
			}
			n = v
		} else if len(args) > 2 {
			return resp.ErrVal("ERR wrong number of arguments for 'abortlog|get' command")
		}
		entries := srv.abort.get(n)
		elems := make([]resp.Value, len(entries))
		for i, e := range entries {
			evs := make([]resp.Value, len(e.events))
			for j, s := range e.events {
				evs[j] = resp.BulkVal(s)
			}
			elems[i] = resp.ArrayVal(
				resp.IntVal(e.id),
				resp.IntVal(e.unix),
				resp.BulkVal(e.label),
				resp.IntVal(int64(boolInt(e.committed))),
				resp.BulkVal(e.cause.String()),
				resp.IntVal(e.attempts),
				resp.IntVal(e.waitNs/1000),
				resp.IntVal(e.latNs/1000),
				resp.ArrayVal(evs...),
			)
		}
		return resp.ArrayVal(elems...)
	case "LEN":
		if len(args) != 1 {
			return resp.ErrVal("ERR wrong number of arguments for 'abortlog|len' command")
		}
		return resp.IntVal(srv.abort.Len())
	case "RESET":
		if len(args) != 1 {
			return resp.ErrVal("ERR wrong number of arguments for 'abortlog|reset' command")
		}
		srv.abort.reset()
		return resp.SimpleVal("OK")
	default:
		return resp.ErrVal(fmt.Sprintf("ERR unknown ABORTLOG subcommand '%s'", args[0]))
	}
}
