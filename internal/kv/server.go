package kv

import (
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resp"
	"repro/internal/stm"
	"repro/internal/wal"
)

// Server speaks the RESP-lite protocol over TCP, one goroutine per
// connection — and therefore one pooled STM session per in-flight
// command, the execution model PR 2's goroutine-agnostic API was built
// for. Singleton commands run as single atomic transactions;
// MULTI/EXEC queues commands client-side and replays the block inside
// one transaction, so a cross-key transfer serializes against every
// concurrent singleton operation and shard resize.
//
// Deviation from Redis worth knowing: EXEC is all-or-nothing. A
// command that fails inside the block (INCR on a non-integer value)
// aborts the whole transaction and EXEC reports EXECABORT, where Redis
// would run the remaining commands and inline the error — atomicity is
// the point of running on an STM, so the stricter semantics is kept.
type Server struct {
	store *Store

	// Observability state (see info.go, abortlog.go): the metrics
	// registry, the per-command instruments, the SLOWLOG and ABORTLOG
	// rings, the interned flight-recorder labels, and the labels INFO
	// reports.
	reg         *obs.Registry
	sm          *serverMetrics
	slow        *slowlog
	abort       *AbortLog
	cmdLabels   map[string]stm.Label
	execLabel   stm.Label
	managerName string
	started     time.Time

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server for the store. Without options it keeps
// metrics in a private registry (INFO and SLOWLOG still work); pass
// WithRegistry to expose them on a shared /metrics listener.
func NewServer(store *Store, opts ...ServerOption) *Server {
	srv := &Server{
		store:       store,
		conns:       make(map[net.Conn]struct{}),
		managerName: "default",
		started:     time.Now(),
		slow:        &slowlog{threshold: 10 * time.Millisecond, ring: make([]slowEntry, 128)},
		// A private ring by default, replaced by WithAbortLog when
		// cmd/stmkv installs one on the engine; without the option
		// ABORTLOG answers but never fills.
		abort: NewAbortLog(128),
		// Flight-recorder labels, interned once here so the hot path
		// only copies a uint32 into the transaction.
		cmdLabels: make(map[string]stm.Label, len(commandNames)),
		execLabel: stm.InternLabel("EXEC"),
	}
	for _, name := range commandNames {
		srv.cmdLabels[name] = stm.InternLabel(name)
	}
	for _, opt := range opts {
		opt(srv)
	}
	if srv.reg == nil {
		srv.reg = obs.NewRegistry()
	}
	srv.sm = newServerMetrics(srv.reg)
	registerStoreMetrics(srv.reg, store, srv.managerName)
	return srv
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean shutdown, or the first accept error otherwise.
func (srv *Server) Serve(ln net.Listener) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		ln.Close()
		return errors.New("kv: server already closed")
	}
	srv.ln = ln
	srv.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			srv.mu.Lock()
			closed := srv.closed
			srv.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		srv.mu.Lock()
		if srv.closed {
			srv.mu.Unlock()
			conn.Close()
			return nil
		}
		srv.conns[conn] = struct{}{}
		srv.wg.Add(1)
		srv.mu.Unlock()
		go srv.handle(conn)
	}
}

// Close stops accepting, closes every live connection and waits for
// their handlers to drain — the clean-shutdown contract the smoke mode
// asserts.
func (srv *Server) Close() error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil
	}
	srv.closed = true
	ln := srv.ln
	for conn := range srv.conns {
		conn.Close()
	}
	srv.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	srv.wg.Wait()
	return err
}

// drop unregisters and closes a finished connection.
func (srv *Server) drop(conn net.Conn) {
	srv.mu.Lock()
	delete(srv.conns, conn)
	srv.mu.Unlock()
	conn.Close()
	srv.wg.Done()
}

// handle runs one connection's command loop, including its MULTI
// state: queued commands are validated at queue time (a bad command
// poisons the block, Redis-style), and EXEC replays the queue inside
// one atomic transaction.
func (srv *Server) handle(conn net.Conn) {
	defer srv.drop(conn)
	srv.sm.connections.Inc()
	srv.sm.clients.Add(1)
	defer srv.sm.clients.Add(-1)
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)
	var (
		multi bool
		queue [][]string
		dirty bool
	)
	for {
		args, err := r.ReadCommand()
		if err != nil {
			if resp.IsProtoError(err) {
				// Tell the peer why before hanging up.
				w.Error("ERR protocol error: " + err.Error())
				w.Flush()
			}
			return
		}
		if len(args) == 0 {
			// An empty array frame (*0) is a syntactically valid
			// non-command; answering beats crashing the handler.
			w.Value(resp.ErrVal("ERR empty command"))
			if err := w.Flush(); err != nil {
				return
			}
			continue
		}
		start := time.Now()
		name := strings.ToUpper(args[0])
		args = args[1:]
		var reply resp.Value
		var cost txCost
		switch name {
		case "QUIT":
			reply = resp.SimpleVal("OK")
			srv.observe(name, start, args, reply, cost)
			w.Value(reply)
			w.Flush()
			return
		case "INFO":
			switch {
			case len(args) > 1:
				reply = resp.ErrVal("ERR wrong number of arguments for 'info' command")
			case multi:
				// Like SAVE: not replayable inside a transaction, and a
				// stats snapshot inside EXEC would be a lie anyway.
				dirty = true
				reply = resp.ErrVal("ERR INFO inside MULTI is not supported")
			default:
				reply = srv.infoReply(args)
			}
		case "SLOWLOG":
			switch {
			case len(args) == 0:
				reply = resp.ErrVal("ERR wrong number of arguments for 'slowlog' command")
			case multi:
				dirty = true
				reply = resp.ErrVal("ERR SLOWLOG inside MULTI is not supported")
			default:
				reply = srv.slowlogReply(args)
			}
		case "ABORTLOG":
			switch {
			case len(args) == 0:
				reply = resp.ErrVal("ERR wrong number of arguments for 'abortlog' command")
			case multi:
				dirty = true
				reply = resp.ErrVal("ERR ABORTLOG inside MULTI is not supported")
			default:
				reply = srv.abortlogReply(args)
			}
		case "MULTI":
			if multi {
				reply = resp.ErrVal("ERR MULTI calls can not be nested")
			} else {
				multi, queue, dirty = true, nil, false
				reply = resp.SimpleVal("OK")
			}
		case "DISCARD":
			if !multi {
				reply = resp.ErrVal("ERR DISCARD without MULTI")
			} else {
				multi, queue, dirty = false, nil, false
				reply = resp.SimpleVal("OK")
			}
		case "SAVE", "BGSAVE":
			// Snapshots bypass the transactional path: the cut is its
			// own read-only transaction plus file choreography (see
			// Store.Save), not something EXEC could replay.
			switch {
			case len(args) != 0:
				reply = resp.ErrVal(fmt.Sprintf("ERR wrong number of arguments for '%s' command", strings.ToLower(name)))
			case multi:
				dirty = true
				reply = resp.ErrVal("ERR " + name + " inside MULTI is not supported")
			case !srv.store.Durable():
				reply = resp.ErrVal("ERR persistence is disabled (start the server with -data)")
			case name == "SAVE":
				switch err := srv.store.Save(); {
				case errors.Is(err, wal.ErrSnapshotInProgress):
					reply = resp.ErrVal("ERR save already in progress")
				case err != nil:
					reply = resp.ErrVal("ERR save failed: " + err.Error())
				default:
					reply = resp.SimpleVal("OK")
				}
			default: // BGSAVE: fire and forget, Redis-style.
				go func() {
					if err := srv.store.Save(); err != nil && !errors.Is(err, wal.ErrSnapshotInProgress) {
						srv.NoteBgsaveFailure()
						log.Printf("kv: background save: %v", err)
					}
				}()
				reply = resp.SimpleVal("Background saving started")
			}
		case "EXEC":
			switch {
			case !multi:
				reply = resp.ErrVal("ERR EXEC without MULTI")
			case dirty:
				multi, queue, dirty = false, nil, false
				reply = resp.ErrVal("EXECABORT Transaction discarded because of previous errors")
			default:
				q := queue
				multi, queue = false, nil
				reply, cost = srv.execBlock(q)
			}
		default:
			if err := checkCommand(name, args); err != nil {
				if multi {
					dirty = true
				}
				reply = resp.ErrVal(err.Error())
			} else if multi {
				queue = append(queue, append([]string{name}, args...))
				reply = resp.SimpleVal("QUEUED")
			} else {
				reply, cost = srv.runSingle(name, args)
			}
		}
		srv.observe(name, start, args, reply, cost)
		w.Value(reply)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// txCost is what one transactional command cost in engine terms:
// attempts executed (1 = first try) and nanoseconds spent inside the
// contention manager. Zero for non-transactional commands. It feeds
// the SLOWLOG, which can then tell a contention victim (many attempts,
// large wait) from genuinely long work.
type txCost struct {
	attempts int64
	waitNs   int64
}

// noteTx captures the transaction's cost so far. Called inside the
// transactional closure — retries overwrite, so the committed
// attempt's totals win (the shared record accumulates across
// attempts).
func (c *txCost) noteTx(tx *stm.Tx) {
	c.attempts = tx.Aborts() + 1
	c.waitNs = tx.WaitNs()
}

// runSingle executes one command as one atomic transaction.
func (srv *Server) runSingle(name string, args []string) (resp.Value, txCost) {
	var reply resp.Value
	var cost txCost
	lbl := srv.cmdLabels[name]
	err := srv.store.Atomically(func(tx *stm.Tx, now int64) error {
		tx.SetLabel(lbl)
		var err error
		reply, err = runCommand(srv.store, tx, now, name, args)
		cost.noteTx(tx)
		return err
	})
	if err != nil {
		return commandError(err), cost
	}
	return reply, cost
}

// execBlock replays a MULTI queue inside one atomic transaction and
// returns the array of replies — or an EXECABORT error when any
// command's execution failed, in which case nothing committed.
func (srv *Server) execBlock(queue [][]string) (resp.Value, txCost) {
	replies := make([]resp.Value, len(queue))
	var cost txCost
	err := srv.store.Atomically(func(tx *stm.Tx, now int64) error {
		tx.SetLabel(srv.execLabel)
		for i, c := range queue {
			v, err := runCommand(srv.store, tx, now, c[0], c[1:])
			if err != nil {
				cost.noteTx(tx)
				return err
			}
			replies[i] = v
		}
		cost.noteTx(tx)
		return nil
	})
	if err != nil {
		return resp.ErrVal("EXECABORT Transaction aborted: " + commandError(err).Str), cost
	}
	return resp.ArrayVal(replies...), cost
}

// commandError maps an in-transaction command failure to its error
// reply. Only expected command-level failures reach clients; anything
// else marks an engine bug loudly.
func commandError(err error) resp.Value {
	switch {
	case errors.Is(err, ErrNotInteger):
		return resp.ErrVal("ERR value is not an integer or out of range")
	case errors.Is(err, ErrWrongType):
		return resp.ErrVal("WRONGTYPE Operation against a key holding the wrong kind of value")
	case errors.Is(err, ErrNotFloat):
		return resp.ErrVal("ERR value is not a valid float")
	}
	return resp.ErrVal("ERR internal: " + err.Error())
}

// checkCommand validates name and arity before execution or queueing,
// so EXEC replays only well-formed commands.
func checkCommand(name string, args []string) error {
	n := len(args)
	ok := true
	switch name {
	case "PING":
		ok = n <= 1
	case "GET", "INCR", "TTL", "PTTL":
		ok = n == 1
	case "SET":
		ok = n == 2 || n == 4
		if n == 4 {
			opt := strings.ToUpper(args[2])
			if opt != "EX" && opt != "PX" {
				return fmt.Errorf("ERR syntax error")
			}
			// SET's expiry must be a positive, non-overflowing TTL
			// (Redis rejects EX 0 too).
			if err := checkTTL(name, args[3], ttlUnit(name, opt), false); err != nil {
				return err
			}
		}
	case "INCRBY":
		ok = n == 2
		if ok {
			if _, err := strconv.ParseInt(args[1], 10, 64); err != nil {
				return fmt.Errorf("ERR value is not an integer or out of range")
			}
		}
	case "EXPIRE", "PEXPIRE":
		// Non-positive TTLs are allowed (they delete, as in Redis), but
		// a magnitude whose duration overflows int64 nanoseconds would
		// silently flip sign — deleting a key meant to live ~300 years —
		// so it is rejected here.
		ok = n == 2
		if ok {
			if err := checkTTL(name, args[1], ttlUnit(name, ""), true); err != nil {
				return err
			}
		}
	case "DEL", "MGET":
		ok = n >= 1
	case "MSET":
		ok = n >= 2 && n%2 == 0
	case "DBSIZE":
		ok = n == 0
	case "HGET", "ZSCORE":
		ok = n == 2
	case "HSET":
		// HSET key field value [field value ...]
		ok = n >= 3 && n%2 == 1
	case "HDEL", "LPUSH", "RPUSH", "ZREM":
		ok = n >= 2
	case "HGETALL", "HLEN", "LPOP", "RPOP", "LLEN", "ZCARD", "TYPE":
		ok = n == 1
	case "HINCRBY":
		ok = n == 3
		if ok {
			if err := checkInt(args[2]); err != nil {
				return err
			}
		}
	case "LRANGE":
		ok = n == 3
		if ok {
			if err := checkInt(args[1]); err != nil {
				return err
			}
			if err := checkInt(args[2]); err != nil {
				return err
			}
		}
	case "ZADD":
		// ZADD key score member [score member ...]
		ok = n >= 3 && n%2 == 1
		if ok {
			for i := 1; i+1 < n; i += 2 {
				if err := checkScore(args[i]); err != nil {
					return err
				}
			}
		}
	case "ZRANGE":
		ok = n == 3 || n == 4
		if n == 4 && strings.ToUpper(args[3]) != "WITHSCORES" {
			return fmt.Errorf("ERR syntax error")
		}
		if ok {
			if err := checkInt(args[1]); err != nil {
				return err
			}
			if err := checkInt(args[2]); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("ERR unknown command '%s'", name)
	}
	if !ok {
		return fmt.Errorf("ERR wrong number of arguments for '%s' command", name)
	}
	return nil
}

// checkInt validates an integer argument (rank, delta) at queue time.
func checkInt(arg string) error {
	if _, err := strconv.ParseInt(arg, 10, 64); err != nil {
		return fmt.Errorf("ERR value is not an integer or out of range")
	}
	return nil
}

// checkScore validates a ZADD score at queue time: any finite or
// infinite float parses; NaN has no place in a total order.
func checkScore(arg string) error {
	s, err := strconv.ParseFloat(arg, 64)
	if err != nil || math.IsNaN(s) {
		return fmt.Errorf("ERR value is not a valid float")
	}
	return nil
}

// ttlUnit resolves the time unit of a TTL argument: milliseconds for
// the P-prefixed commands and SET's PX option, seconds otherwise.
func ttlUnit(name, opt string) time.Duration {
	if strings.HasPrefix(name, "P") || opt == "PX" {
		return time.Millisecond
	}
	return time.Second
}

// checkTTL validates a TTL argument: an integer whose duration in unit
// does not overflow time.Duration (int64 nanoseconds) in either
// direction, and positive unless nonPositiveOK (EXPIRE's delete
// semantics) allows otherwise.
func checkTTL(name, arg string, unit time.Duration, nonPositiveOK bool) error {
	n, err := strconv.ParseInt(arg, 10, 64)
	if err != nil {
		return fmt.Errorf("ERR value is not an integer or out of range")
	}
	if !nonPositiveOK && n <= 0 {
		return fmt.Errorf("ERR invalid expire time in '%s' command", strings.ToLower(name))
	}
	limit := int64(math.MaxInt64) / int64(unit)
	if n > limit || n < -limit {
		return fmt.Errorf("ERR invalid expire time in '%s' command", strings.ToLower(name))
	}
	return nil
}

// runCommand executes one validated command inside tx at instant now.
// A returned error aborts the enclosing transaction (and, through it,
// a whole EXEC block).
func runCommand(st *Store, tx *stm.Tx, now int64, name string, args []string) (resp.Value, error) {
	switch name {
	case "PING":
		if len(args) == 1 {
			return resp.BulkVal(args[0]), nil
		}
		return resp.SimpleVal("PONG"), nil
	case "GET":
		v, ok, err := st.GetTx(tx, now, args[0])
		if err != nil {
			return resp.Value{}, err
		}
		if !ok {
			return resp.NullVal(), nil
		}
		return resp.BulkVal(v), nil
	case "SET":
		var ttl time.Duration
		if len(args) == 4 {
			n, _ := strconv.ParseInt(args[3], 10, 64) // validated at check time
			if strings.ToUpper(args[2]) == "EX" {
				ttl = time.Duration(n) * time.Second
			} else {
				ttl = time.Duration(n) * time.Millisecond
			}
		}
		if err := st.SetTx(tx, now, args[0], args[1], ttl); err != nil {
			return resp.Value{}, err
		}
		return resp.SimpleVal("OK"), nil
	case "DEL":
		removed := int64(0)
		for _, key := range args {
			ok, err := st.DelTx(tx, now, key)
			if err != nil {
				return resp.Value{}, err
			}
			if ok {
				removed++
			}
		}
		return resp.IntVal(removed), nil
	case "INCR", "INCRBY":
		delta := int64(1)
		if name == "INCRBY" {
			delta, _ = strconv.ParseInt(args[1], 10, 64) // validated at check time
		}
		n, err := st.IncrTx(tx, now, args[0], delta)
		if err != nil {
			return resp.Value{}, err
		}
		return resp.IntVal(n), nil
	case "MGET":
		elems := make([]resp.Value, len(args))
		for i, key := range args {
			v, ok, err := st.GetTx(tx, now, key)
			if errors.Is(err, ErrWrongType) {
				// Redis MGET reports container-typed keys as nil rather
				// than failing the whole read.
				v, ok = "", false
			} else if err != nil {
				return resp.Value{}, err
			}
			if ok {
				elems[i] = resp.BulkVal(v)
			} else {
				elems[i] = resp.NullVal()
			}
		}
		return resp.ArrayVal(elems...), nil
	case "MSET":
		for i := 0; i+1 < len(args); i += 2 {
			if err := st.SetTx(tx, now, args[i], args[i+1], 0); err != nil {
				return resp.Value{}, err
			}
		}
		return resp.SimpleVal("OK"), nil
	case "EXPIRE", "PEXPIRE":
		n, _ := strconv.ParseInt(args[1], 10, 64) // validated at check time
		unit := time.Second
		if name == "PEXPIRE" {
			unit = time.Millisecond
		}
		ok, err := st.ExpireTx(tx, now, args[0], time.Duration(n)*unit)
		if err != nil {
			return resp.Value{}, err
		}
		if ok {
			return resp.IntVal(1), nil
		}
		return resp.IntVal(0), nil
	case "TTL", "PTTL":
		d, ok, err := st.TTLTx(tx, now, args[0])
		if err != nil {
			return resp.Value{}, err
		}
		switch {
		case !ok:
			return resp.IntVal(-2), nil
		case d == NoTTL:
			return resp.IntVal(-1), nil
		case name == "PTTL":
			return resp.IntVal(int64((d + time.Millisecond - 1) / time.Millisecond)), nil
		default:
			return resp.IntVal(int64((d + time.Second - 1) / time.Second)), nil
		}
	case "HSET":
		created := int64(0)
		for i := 1; i+1 < len(args); i += 2 {
			ok, err := st.HSetTx(tx, now, args[0], args[i], args[i+1])
			if err != nil {
				return resp.Value{}, err
			}
			if ok {
				created++
			}
		}
		return resp.IntVal(created), nil
	case "HGET":
		v, ok, err := st.HGetTx(tx, now, args[0], args[1])
		if err != nil {
			return resp.Value{}, err
		}
		if !ok {
			return resp.NullVal(), nil
		}
		return resp.BulkVal(v), nil
	case "HDEL":
		n, err := st.HDelTx(tx, now, args[0], args[1:]...)
		if err != nil {
			return resp.Value{}, err
		}
		return resp.IntVal(int64(n)), nil
	case "HGETALL":
		pairs, err := st.HGetAllTx(tx, now, args[0])
		if err != nil {
			return resp.Value{}, err
		}
		elems := make([]resp.Value, 0, 2*len(pairs))
		for _, p := range pairs {
			elems = append(elems, resp.BulkVal(p.K), resp.BulkVal(p.V))
		}
		return resp.ArrayVal(elems...), nil
	case "HLEN":
		n, err := st.HLenTx(tx, now, args[0])
		if err != nil {
			return resp.Value{}, err
		}
		return resp.IntVal(int64(n)), nil
	case "HINCRBY":
		delta, _ := strconv.ParseInt(args[2], 10, 64) // validated at check time
		n, err := st.HIncrTx(tx, now, args[0], args[1], delta)
		if err != nil {
			return resp.Value{}, err
		}
		return resp.IntVal(n), nil
	case "LPUSH", "RPUSH":
		n, err := st.pushTx(tx, now, args[0], name == "LPUSH", args[1:])
		if err != nil {
			return resp.Value{}, err
		}
		return resp.IntVal(int64(n)), nil
	case "LPOP", "RPOP":
		v, ok, err := st.popTx(tx, now, args[0], name == "LPOP")
		if err != nil {
			return resp.Value{}, err
		}
		if !ok {
			return resp.NullVal(), nil
		}
		return resp.BulkVal(v), nil
	case "LLEN":
		n, err := st.LLenTx(tx, now, args[0])
		if err != nil {
			return resp.Value{}, err
		}
		return resp.IntVal(int64(n)), nil
	case "LRANGE":
		start, _ := strconv.Atoi(args[1]) // validated at check time
		stop, _ := strconv.Atoi(args[2])
		items, err := st.LRangeTx(tx, now, args[0], start, stop)
		if err != nil {
			return resp.Value{}, err
		}
		elems := make([]resp.Value, len(items))
		for i, v := range items {
			elems[i] = resp.BulkVal(v)
		}
		return resp.ArrayVal(elems...), nil
	case "ZADD":
		added := int64(0)
		for i := 1; i+1 < len(args); i += 2 {
			score, _ := strconv.ParseFloat(args[i], 64) // validated at check time
			ok, err := st.ZAddTx(tx, now, args[0], args[i+1], score)
			if err != nil {
				return resp.Value{}, err
			}
			if ok {
				added++
			}
		}
		return resp.IntVal(added), nil
	case "ZSCORE":
		score, ok, err := st.ZScoreTx(tx, now, args[0], args[1])
		if err != nil {
			return resp.Value{}, err
		}
		if !ok {
			return resp.NullVal(), nil
		}
		return resp.BulkVal(formatScore(score)), nil
	case "ZREM":
		n, err := st.ZRemTx(tx, now, args[0], args[1:]...)
		if err != nil {
			return resp.Value{}, err
		}
		return resp.IntVal(int64(n)), nil
	case "ZCARD":
		n, err := st.ZCardTx(tx, now, args[0])
		if err != nil {
			return resp.Value{}, err
		}
		return resp.IntVal(int64(n)), nil
	case "ZRANGE":
		start, _ := strconv.Atoi(args[1]) // validated at check time
		stop, _ := strconv.Atoi(args[2])
		entries, err := st.ZRangeTx(tx, now, args[0], start, stop)
		if err != nil {
			return resp.Value{}, err
		}
		withScores := len(args) == 4
		elems := make([]resp.Value, 0, 2*len(entries))
		for _, ze := range entries {
			elems = append(elems, resp.BulkVal(ze.Member))
			if withScores {
				elems = append(elems, resp.BulkVal(formatScore(ze.Score)))
			}
		}
		return resp.ArrayVal(elems...), nil
	case "TYPE":
		t, ok, err := st.TypeTx(tx, now, args[0])
		if err != nil {
			return resp.Value{}, err
		}
		if !ok {
			return resp.SimpleVal("none"), nil
		}
		return resp.SimpleVal(t), nil
	case "DBSIZE":
		// Whole-store consistent count: every shard's every bucket joins
		// the read set (the long scan the paper's auditor scenario
		// stresses — expensive and proud of it).
		total := int64(0)
		for _, sh := range st.shards {
			b, err := sh.Buckets(tx)
			if err != nil {
				return resp.Value{}, err
			}
			for i := 0; i < b.Len(); i++ {
				head, err := stm.Read(tx, b.At(i))
				if err != nil {
					return resp.Value{}, err
				}
				for e := head; e != nil; e = e.next {
					if !e.dead(now) {
						total++
					}
				}
			}
		}
		return resp.IntVal(total), nil
	default:
		// checkCommand gates every path here; reaching this is a bug.
		return resp.Value{}, fmt.Errorf("kv: unvalidated command %q", name)
	}
}
