package kv

// Typed values. An entry holds one of four value kinds — string,
// hash, list, zset — discriminated by entry.kind. The containers live
// *inside* the entry: mutating a hash field, list end or zset member
// goes through the container's own stm.Vars and never rewrites the
// bucket chain, so two transactions touching different fields of the
// same key do not conflict on the key. Only creation, whole-key
// deletion, expiry updates and the shard resize rebuild chains.
//
// Semantics follow Redis: a typed command against a key of another
// kind fails with ErrWrongType (SET is the exception — it overwrites
// anything, as Redis does); TTL attaches to the whole key whatever
// its kind; a container emptied by its last HDEL/POP/ZREM deletes the
// key, so empty containers are unrepresentable — replay reproduces
// the auto-delete by running the same code path.

import (
	"errors"

	"repro/internal/container"
	"repro/internal/stm"
)

// ErrWrongType is returned by typed operations against a key holding
// a value of another kind, mirroring Redis WRONGTYPE. Like
// ErrNotInteger it surfaces out of the transaction unchanged, so an
// EXEC block aborts atomically.
var ErrWrongType = errors.New("kv: operation against a key holding the wrong kind of value")

// ErrNotFloat is returned by ZAdd when a score is NaN (no total
// order) and by the server when a score argument does not parse.
var ErrNotFloat = errors.New("kv: value is not a valid float")

// kind discriminates an entry's value type. The numeric values match
// wal.Kind so captures convert by cast.
type kind uint8

const (
	kindString kind = iota
	kindHash
	kindList
	kindZSet
)

// String returns the Redis TYPE name.
func (k kind) String() string {
	switch k {
	case kindHash:
		return "hash"
	case kindList:
		return "list"
	case kindZSet:
		return "zset"
	default:
		return "string"
	}
}

// typedEntry reads key's live entry of kind k, or nil when the key is
// absent or expired — the lookup under every read-mostly typed
// operation. A live entry of another kind yields ErrWrongType.
func (st *Store) typedEntry(tx *stm.Tx, now int64, key string, k kind) (*entry, error) {
	e, err := st.findEntry(tx, now, key)
	if err != nil || e == nil {
		return nil, err
	}
	if e.kind != k {
		return nil, ErrWrongType
	}
	return e, nil
}

// containerEntry reads key's live entry of kind k, creating an empty
// container entry when the key is absent or expired — the
// find-or-create under every typed mutation (HSET, LPUSH, ZADD). The
// create path rebuilds the bucket chain (dropping dead entries in
// passing, like putTx); the found path reads it only, so mutations of
// an existing container never conflict on the chain.
func (st *Store) containerEntry(tx *stm.Tx, now int64, key string, k kind) (*entry, error) {
	head, bv, err := st.chain(tx, key)
	if err != nil {
		return nil, err
	}
	for e := head; e != nil; e = e.next {
		if e.key == key && !e.dead(now) {
			if e.kind != k {
				return nil, ErrWrongType
			}
			return e, nil
		}
	}
	neu := &entry{key: key, kind: k}
	// Containers are named after their key so the STM flight recorder
	// attributes conflicts to "list(jobs)" rather than an anonymous
	// commit stripe. The label is a plain string on the container's
	// variables (not an interned transaction label), so per-key
	// cardinality costs only the string.
	switch k {
	case kindHash:
		neu.hash = newNamedFieldTable("hash(" + key + ")")
	case kindList:
		neu.list = container.NewNamedDeque[string]("list(" + key + ")")
	case kindZSet:
		neu.zset = newNamedZSet("zset(" + key + ")")
	}
	rebuilt := neu
	chain := 1
	for e := head; e != nil; e = e.next {
		if e.key == key || e.dead(now) {
			continue
		}
		rebuilt = e.with(rebuilt)
		chain++
	}
	if chain > container.GrowChain {
		st.shard(key).SignalGrowth()
	}
	if err := stm.Write(tx, bv, rebuilt); err != nil {
		return nil, err
	}
	return neu, nil
}

// removeKeyTx physically removes key from its chain without logging a
// tombstone — the auto-delete behind a container's last HDEL/POP/
// ZREM. The container ops already in the capture replay through the
// same code path and reproduce the delete, so a tombstone would be
// redundant.
func (st *Store) removeKeyTx(tx *stm.Tx, now int64, key string) error {
	head, bv, err := st.chain(tx, key)
	if err != nil {
		return err
	}
	live, dropped := pruneKey(head, key, now)
	if dropped == 0 {
		return nil
	}
	return stm.Write(tx, bv, live)
}

// TypeTx reports key's value kind as its Redis TYPE name; ok is false
// when the key is absent or expired.
func (st *Store) TypeTx(tx *stm.Tx, now int64, key string) (string, bool, error) {
	e, err := st.findEntry(tx, now, key)
	if err != nil || e == nil {
		return "", false, err
	}
	return e.kind.String(), true, nil
}

// Type reports key's value kind in one atomic transaction.
func (st *Store) Type(key string) (string, bool, error) {
	now := st.now()
	return stm.Atomic2(st.s, func(tx *stm.Tx) (string, bool, error) {
		return st.TypeTx(tx, now, key)
	})
}

// checkValue verifies the entry's typed payload inside tx — the
// per-kind extension of Store.CheckInvariants. Containers must be
// internally consistent and non-empty (an empty container would mean
// an auto-delete was missed).
func (e *entry) checkValue(tx *stm.Tx) error {
	switch e.kind {
	case kindString:
		if e.hash != nil || e.list != nil || e.zset != nil {
			return errors.New("string entry carries a container")
		}
	case kindHash:
		n, err := checkFieldTable(tx, e.hash)
		if err != nil {
			return err
		}
		if n == 0 {
			return errors.New("empty hash not auto-deleted")
		}
	case kindList:
		if err := e.list.CheckInvariants(tx); err != nil {
			return err
		}
		n, err := e.list.Len(tx)
		if err != nil {
			return err
		}
		if n == 0 {
			return errors.New("empty list not auto-deleted")
		}
	case kindZSet:
		if err := e.zset.checkInvariants(tx); err != nil {
			return err
		}
	}
	return nil
}
