package kv

import (
	"fmt"
	"hash/maphash"
	"time"

	"repro/internal/container"
	"repro/internal/stm"
	"repro/internal/wal"
)

// entry is one key's record in a bucket chain. Chains are immutable by
// construction — writers rebuild the changed chain and share nothing
// mutable — so the bucket Var's default shallow clone (of the head
// pointer) is a correct private copy. kind discriminates the value:
// val for strings, exactly one of the container pointers otherwise
// (see types.go). The container pointers themselves are immutable;
// their *contents* live behind the containers' own stm.Vars, so an
// entry shared across chain rebuilds keeps one transactional value.
type entry struct {
	key  string
	kind kind
	val  string
	hash *container.Table[*field]
	list *container.Deque[string]
	zset *zset
	// expireAt is the store-clock instant the entry dies, in
	// nanoseconds; zero means no expiry.
	expireAt int64
	next     *entry
}

// with clones e linked to next — the one chain-rebuild helper, so no
// rebuild site can forget a typed field.
func (e *entry) with(next *entry) *entry {
	c := *e
	c.next = next
	return &c
}

// dead reports whether the entry has expired at instant now.
func (e *entry) dead(now int64) bool {
	return e.expireAt != 0 && e.expireAt <= now
}

// NoTTL is the TTL reported for a live key with no expiry set.
const NoTTL time.Duration = -1

// KV is one key-value pair, the unit of MSet.
type KV struct {
	K, V string
}

// Store is the sharded transactional key-value store. Handles are safe
// for concurrent use from any goroutine: every operation runs on a
// pooled STM session, and multi-key operations are single atomic
// transactions.
type Store struct {
	s      *stm.STM
	seed   maphash.Seed
	shards []*container.Table[*entry]
	now    func() int64
	// log, when attached, receives every committed write set (see
	// persist.go; nil for a purely in-memory store).
	log *wal.Log
}

// Option configures a Store.
type Option func(*config)

type config struct {
	shards  int
	buckets int
	clock   func() int64
}

// WithShards sets the shard count (rounded up to a power of two,
// minimum 1; default 16). Shards bound the blast radius of a resize:
// growing one shard's bucket array conflicts only with operations on
// that shard's keys.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithBuckets sets each shard's initial bucket count (default 8).
// Shards grow past it on demand; a small value exercises the resize
// path, a large one avoids it for stable benchmark profiles.
func WithBuckets(n int) Option {
	return func(c *config) { c.buckets = n }
}

// WithClock replaces the store's time source — monotonic nanoseconds,
// used only to order expiries. Tests inject a hand-advanced clock to
// make expiry deterministic.
func WithClock(clock func() int64) Option {
	return func(c *config) { c.clock = clock }
}

// New creates an empty store executing its transactions on s.
func New(s *stm.STM, opts ...Option) *Store {
	cfg := config{shards: 16, buckets: 8}
	for _, opt := range opts {
		opt(&cfg)
	}
	n := 1
	for n < cfg.shards {
		n *= 2
	}
	if cfg.clock == nil {
		start := time.Now()
		cfg.clock = func() int64 { return int64(time.Since(start)) }
	}
	st := &Store{
		s:      s,
		seed:   maphash.MakeSeed(),
		shards: make([]*container.Table[*entry], n),
		now:    cfg.clock,
	}
	for i := range st.shards {
		// Shard tables are named so the flight recorder attributes
		// bucket-chain and resize conflicts to a shard rather than an
		// anonymous stripe; per-key containers carry their own labels
		// (see containerEntry).
		st.shards[i] = container.NewNamedTable[*entry](fmt.Sprintf("kv:shard:%d", i), cfg.buckets)
	}
	return st
}

// STM returns the engine the store executes its transactions on —
// the hook for callers that report engine statistics alongside store
// state (the server's smoke mode).
func (st *Store) STM() *stm.STM { return st.s }

// Now samples the store's clock. Callers composing *Tx operations draw
// now once, outside the transaction, so retries replay identical
// expiry decisions.
func (st *Store) Now() int64 { return st.now() }

// Shards returns the shard count.
func (st *Store) Shards() int { return len(st.shards) }

// BucketsPerShard snapshots each shard's committed bucket count — a
// growth observability hook for tests and stats, not a consistent
// read.
func (st *Store) BucketsPerShard() []int {
	out := make([]int, len(st.shards))
	for i, sh := range st.shards {
		out[i] = sh.PeekLen()
	}
	return out
}

// PeekLen counts live keys without a transaction: each bucket is an
// independent committed snapshot, so the total is approximate under
// concurrent writes — the observability counterpart of DBSIZE, which
// pays for exactness with a whole-store read set. Expired-but-unswept
// entries are excluded, like everywhere else.
func (st *Store) PeekLen() int64 {
	now := st.now()
	var total int64
	for _, sh := range st.shards {
		b := sh.PeekBuckets()
		for i := 0; i < b.Len(); i++ {
			for e := b.At(i).Peek(); e != nil; e = e.next {
				if !e.dead(now) {
					total++
				}
			}
		}
	}
	return total
}

// shard maps a key to its shard table.
func (st *Store) shard(key string) *container.Table[*entry] {
	return st.shards[maphash.String(st.seed, key)&uint64(len(st.shards)-1)]
}

// bucket resolves a key's bucket variable within shard sh under the
// array version b.
func bucket(sh *container.Table[*entry], b container.Buckets[*entry], key string) *stm.Var[*entry] {
	return b.At(int(maphash.String(sh.Seed(), key) % uint64(b.Len())))
}

// chain reads the bucket chain holding key inside tx, returning the
// chain head and the bucket variable (for writers to rebuild into).
func (st *Store) chain(tx *stm.Tx, key string) (*entry, *stm.Var[*entry], error) {
	sh := st.shard(key)
	b, err := sh.Buckets(tx)
	if err != nil {
		return nil, nil, err
	}
	bv := bucket(sh, b, key)
	head, err := stm.Read(tx, bv)
	if err != nil {
		return nil, nil, err
	}
	return head, bv, nil
}

// Atomically runs fn as one atomic transaction against the store,
// sampling the clock once so retries replay identical expiry
// decisions, then performs post-commit grooming (resize signals raised
// by fn's writes). It is the composition surface: the server's EXEC
// replays a whole queued command block through one call, so the block
// is serializable against every concurrent singleton operation.
// When a WAL is attached the transaction's write set is captured and
// group-committed: Atomically returns only once the record is
// durably on disk (or surfaces the log's error — the memory commit
// stands either way; a log that cannot persist is poisoned and the
// server should be restarted into recovery).
func (st *Store) Atomically(fn func(tx *stm.Tx, now int64) error) error {
	now := st.now()
	if st.log == nil {
		if err := st.s.Atomically(func(tx *stm.Tx) error { return fn(tx, now) }); err != nil {
			return err
		}
		_ = st.Groom()
		return nil
	}
	c := capturePool.Get().(*writeCapture)
	var ticket *wal.Ticket
	err := st.s.Atomically(func(tx *stm.Tx) error {
		// Re-arm per attempt: the local slot does not survive a retry.
		c.ops = c.ops[:0]
		tx.SetLocal(c)
		if err := fn(tx, now); err != nil {
			return err
		}
		if len(c.ops) > 0 {
			tx.OnCommit(func() { ticket = st.log.Append(c.ops) })
		}
		return nil
	})
	if err != nil {
		// Never committed, so the hook never fired and nothing holds
		// the capture.
		capturePool.Put(c)
		return err
	}
	if ticket != nil {
		// The durability wait happens here — after tryCommit released
		// the commit stripes — so the fsync latency is off the
		// engine's critical path.
		werr := ticket.Wait()
		capturePool.Put(c) // acked: the logger has encoded the ops
		if werr != nil {
			_ = st.Groom()
			return fmt.Errorf("kv: wal: %w", werr)
		}
	} else {
		capturePool.Put(c)
	}
	// Grooming is decoupled from the operation's outcome: by this point
	// fn has durably committed, and reporting a resize failure as the
	// operation's error would make a caller retry (and double-apply) a
	// non-idempotent op like Incr. A failed grow re-arms the shard's
	// signal (see Table.MaybeGrow), so nothing is lost: maintenance
	// loops calling Groom directly still see the error, and an engine
	// genuinely broken enough to fail the resize transaction will fail
	// the very next operation too.
	_ = st.Groom()
	return nil
}

// Groom drains pending resize signals: every shard whose writers
// observed an over-long chain is recounted and, if over the load
// factor, grown in its own transaction (see container.Table.MaybeGrow).
// Top-level write operations call it automatically; loops driving the
// *Tx forms directly should call it between transactions.
func (st *Store) Groom() error {
	for _, sh := range st.shards {
		if !sh.GrowthSignalled() {
			continue
		}
		if _, err := sh.MaybeGrow(st.s, countEntries, rehashFor(sh)); err != nil {
			return err
		}
	}
	return nil
}

// countEntries tallies a shard's entries (dead ones included — expiry
// is resolved by Sweep and passing writers, not the resize policy).
func countEntries(tx *stm.Tx, b container.Buckets[*entry]) (int, error) {
	total := 0
	for i := 0; i < b.Len(); i++ {
		head, err := stm.Read(tx, b.At(i))
		if err != nil {
			return 0, err
		}
		for e := head; e != nil; e = e.next {
			total++
		}
	}
	return total, nil
}

// rehashFor builds the resize callback for one shard: every chain of
// the old array is re-bucketed into the new one. The shard's seed is
// unchanged; only the modulus moves.
func rehashFor(sh *container.Table[*entry]) func(tx *stm.Tx, old, neu container.Buckets[*entry]) error {
	return func(tx *stm.Tx, old, neu container.Buckets[*entry]) error {
		heads := make([]*entry, neu.Len())
		for i := 0; i < old.Len(); i++ {
			head, err := stm.Read(tx, old.At(i))
			if err != nil {
				return err
			}
			for e := head; e != nil; e = e.next {
				j := int(maphash.String(sh.Seed(), e.key) % uint64(neu.Len()))
				heads[j] = e.with(heads[j])
			}
		}
		for j, head := range heads {
			if head == nil {
				continue // fresh buckets already hold nil
			}
			if err := stm.Write(tx, neu.At(j), head); err != nil {
				return err
			}
		}
		return nil
	}
}

// Sweep reaps expired entries, one transaction per shard so the write
// set stays bounded, and returns how many entries were removed. It is
// the lazy-expiry backstop: reads never write, so without passing
// writers a dead entry would otherwise linger forever.
func (st *Store) Sweep() (int, error) {
	removed := 0
	for i := range st.shards {
		n, err := st.SweepShard(i)
		removed += n
		if err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// SweepShard reaps shard i's expired entries in one transaction — the
// unit the server's background sweeper schedules, so one sweep never
// conflicts with more than one shard's traffic. With a WAL attached,
// every reaped key is logged as a tombstone: logically redundant
// (replayed entries past their deadline read as absent anyway), but
// it keeps the replayed physical state in step with the swept one and
// compacts the history a snapshot would otherwise carry forward.
func (st *Store) SweepShard(i int) (int, error) {
	sh := st.shards[i]
	removed := 0
	err := st.Atomically(func(tx *stm.Tx, now int64) error {
		// Per-attempt accumulator, captured whole at the end — an
		// aborted attempt's partial count vanishes with it.
		reaped := 0
		b, err := sh.Buckets(tx)
		if err != nil {
			return err
		}
		for j := 0; j < b.Len(); j++ {
			head, err := stm.Read(tx, b.At(j))
			if err != nil {
				return err
			}
			live, dropped := pruneChain(head, now)
			if dropped == 0 {
				continue
			}
			if err := stm.Write(tx, b.At(j), live); err != nil {
				return err
			}
			for e := head; e != nil; e = e.next {
				if e.dead(now) {
					capture(tx, wal.Op{Key: e.key, Del: true})
				}
			}
			reaped += dropped
		}
		removed = reaped
		return nil
	})
	return removed, err
}

// pruneChain rebuilds head without entries dead at now, reporting how
// many were dropped. When nothing is dead the original chain is
// returned unchanged (dropped == 0), so callers can skip the write.
func pruneChain(head *entry, now int64) (*entry, int) {
	dropped := 0
	for e := head; e != nil; e = e.next {
		if e.dead(now) {
			dropped++
		}
	}
	if dropped == 0 {
		return head, 0
	}
	var live *entry
	for e := head; e != nil; e = e.next {
		if !e.dead(now) {
			live = e.with(live)
		}
	}
	return live, dropped
}

// CheckInvariants verifies the store's structural invariants in one
// consistent transaction: every entry sits in the shard and bucket its
// key hashes to, no key appears twice, and every typed value is
// internally consistent (hash field placement, deque link symmetry
// and counters, zset index↔skip-list bijection) and non-empty. The
// harness audit hook and the server's smoke mode run it after their
// hammers.
func (st *Store) CheckInvariants() error {
	return st.s.Atomically(func(tx *stm.Tx) error {
		seen := make(map[string]bool)
		for si, sh := range st.shards {
			b, err := sh.Buckets(tx)
			if err != nil {
				return err
			}
			for i := 0; i < b.Len(); i++ {
				head, err := stm.Read(tx, b.At(i))
				if err != nil {
					return err
				}
				for e := head; e != nil; e = e.next {
					if st.shard(e.key) != sh {
						return fmt.Errorf("kv: key %q in shard %d, hashes elsewhere", e.key, si)
					}
					if bucket(sh, b, e.key) != b.At(i) {
						return fmt.Errorf("kv: key %q in bucket %d of shard %d, hashes elsewhere", e.key, i, si)
					}
					if seen[e.key] {
						return fmt.Errorf("kv: key %q duplicated", e.key)
					}
					seen[e.key] = true
					if err := e.checkValue(tx); err != nil {
						return fmt.Errorf("kv: key %q: %w", e.key, err)
					}
				}
			}
		}
		return nil
	})
}
