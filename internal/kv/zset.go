package kv

import (
	"encoding/binary"
	"errors"
	"math"
	"strconv"

	"repro/internal/container"
	"repro/internal/stm"
	"repro/internal/wal"
)

// zset is a sorted set: a score-ordered skip list plus a member→score
// hash index. byScore keys are zkey(score, member) — an
// order-preserving, invertible encoding — so the skip list alone
// yields rank ranges in (score, member) order, ties broken by member
// as in Redis. The index makes ZSCORE a point read and lets ZADD find
// the old score to relocate without walking the list; both halves are
// updated in the same transaction, so the bijection between them is
// an invariant every consistent reader can check.
type zset struct {
	byScore *container.OMap[string, string] // zkey(score, member) → member
	index   *container.Table[*field]        // member → canonical score string
}

func newZSet() *zset {
	return newNamedZSet("")
}

// newNamedZSet is newZSet with a flight-recorder label on both halves'
// variables; the skip list and the member index share the key's one
// label, since "which zset convoys" is the question the recorder
// answers.
func newNamedZSet(name string) *zset {
	return &zset{
		byScore: container.NewNamedOMap[string, string](name),
		index:   newNamedFieldTable(name),
	}
}

// zkey encodes (score, member) as bytes whose lexicographic order is
// (score, member) order: the float's sign-magnitude bits are mapped
// to a monotone unsigned integer (negatives bit-flipped, positives
// sign-bit-set), big-endian, with the member appended.
func zkey(score float64, member string) string {
	bits := math.Float64bits(score)
	if bits>>63 != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], bits)
	return string(buf[:]) + member
}

// zkeyDecode inverts zkey.
func zkeyDecode(k string) (float64, string) {
	bits := binary.BigEndian.Uint64([]byte(k[:8]))
	if bits>>63 != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits), k[8:]
}

// formatScore is the canonical score string: shortest round-tripping
// decimal. It is what the index, the WAL and the wire all carry.
func formatScore(s float64) string { return strconv.FormatFloat(s, 'g', -1, 64) }

// normScore rejects NaN (no total order) and collapses -0 to +0 so
// equal scores encode equally.
func normScore(s float64) (float64, error) {
	if math.IsNaN(s) {
		return 0, ErrNotFloat
	}
	if s == 0 {
		return 0, nil
	}
	return s, nil
}

// ZEntry is one (member, score) pair, the unit of ZRange.
type ZEntry struct {
	Member string
	Score  float64
}

// ZAddTx adds member with score to the sorted set at key, creating
// the set if the key is absent, relocating the member if it already
// has a different score, and reports whether the member was newly
// added. A NaN score yields ErrNotFloat; re-adding with an unchanged
// score is a read-only no-op.
func (st *Store) ZAddTx(tx *stm.Tx, now int64, key, member string, score float64) (bool, error) {
	score, err := normScore(score)
	if err != nil {
		return false, err
	}
	e, err := st.containerEntry(tx, now, key, kindZSet)
	if err != nil {
		return false, err
	}
	scoreStr := formatScore(score)
	old, ok, err := fieldGet(tx, e.zset.index, member)
	if err != nil {
		return false, err
	}
	if ok {
		if old == scoreStr {
			return false, nil
		}
		oldScore, err := strconv.ParseFloat(old, 64)
		if err != nil {
			return false, err // index corrupt: scores are written canonical
		}
		if _, _, err := e.zset.byScore.Delete(tx, zkey(oldScore, member)); err != nil {
			return false, err
		}
	}
	if _, _, err := e.zset.byScore.Put(tx, zkey(score, member), member); err != nil {
		return false, err
	}
	if _, err := fieldSet(tx, e.zset.index, member, scoreStr); err != nil {
		return false, err
	}
	capture(tx, wal.Op{Kind: wal.KindZSet, Key: key, Field: member, Val: scoreStr})
	return !ok, nil
}

// ZScoreTx reads member's score in the sorted set at key.
func (st *Store) ZScoreTx(tx *stm.Tx, now int64, key, member string) (float64, bool, error) {
	e, err := st.typedEntry(tx, now, key, kindZSet)
	if err != nil || e == nil {
		return 0, false, err
	}
	s, ok, err := fieldGet(tx, e.zset.index, member)
	if err != nil || !ok {
		return 0, false, err
	}
	score, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false, err
	}
	return score, true, nil
}

// ZRemTx removes members from the sorted set at key, returning how
// many were present. Removing the last member deletes the key.
func (st *Store) ZRemTx(tx *stm.Tx, now int64, key string, members ...string) (int, error) {
	e, err := st.typedEntry(tx, now, key, kindZSet)
	if err != nil || e == nil {
		return 0, err
	}
	removed := 0
	for _, member := range members {
		old, ok, err := fieldGet(tx, e.zset.index, member)
		if err != nil {
			return 0, err
		}
		if !ok {
			continue
		}
		oldScore, err := strconv.ParseFloat(old, 64)
		if err != nil {
			return 0, err
		}
		if _, err := fieldDel(tx, e.zset.index, member); err != nil {
			return 0, err
		}
		if _, _, err := e.zset.byScore.Delete(tx, zkey(oldScore, member)); err != nil {
			return 0, err
		}
		removed++
		capture(tx, wal.Op{Kind: wal.KindZSet, Key: key, Field: member, Del: true})
	}
	if removed > 0 {
		b, err := e.zset.index.Buckets(tx)
		if err != nil {
			return 0, err
		}
		n, err := countFields(tx, b)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			if err := st.removeKeyTx(tx, now, key); err != nil {
				return 0, err
			}
		}
	}
	return removed, nil
}

// ZCardTx counts the members of the sorted set at key via the member
// index — a bucket scan, not a skip-list walk.
func (st *Store) ZCardTx(tx *stm.Tx, now int64, key string) (int, error) {
	e, err := st.typedEntry(tx, now, key, kindZSet)
	if err != nil || e == nil {
		return 0, err
	}
	b, err := e.zset.index.Buckets(tx)
	if err != nil {
		return 0, err
	}
	return countFields(tx, b)
}

// ZRangeTx returns the members of the sorted set at key between ranks
// start and stop inclusive, in ascending (score, member) order;
// negative ranks count from the end, Redis-style.
func (st *Store) ZRangeTx(tx *stm.Tx, now int64, key string, start, stop int) ([]ZEntry, error) {
	e, err := st.typedEntry(tx, now, key, kindZSet)
	if err != nil || e == nil {
		return nil, err
	}
	keys, err := e.zset.byScore.Keys(tx)
	if err != nil {
		return nil, err
	}
	lo, hi, ok := rangeBounds(start, stop, len(keys))
	if !ok {
		return nil, nil
	}
	out := make([]ZEntry, 0, hi-lo+1)
	for _, k := range keys[lo : hi+1] {
		score, member := zkeyDecode(k)
		out = append(out, ZEntry{Member: member, Score: score})
	}
	return out, nil
}

// checkInvariants verifies the two halves of the zset agree: every
// index binding's (score, member) key is in the skip list with the
// member as its value, the counts match (so the skip list holds
// nothing unindexed), the set is non-empty, and the skip list's own
// tower structure holds.
func (z *zset) checkInvariants(tx *stm.Tx) error {
	if err := z.byScore.CheckInvariants(tx); err != nil {
		return err
	}
	n, err := checkFieldTable(tx, z.index)
	if err != nil {
		return err
	}
	if n == 0 {
		return errors.New("empty zset not auto-deleted")
	}
	pairs, err := fieldAll(tx, z.index)
	if err != nil {
		return err
	}
	for _, p := range pairs {
		score, err := strconv.ParseFloat(p.V, 64)
		if err != nil {
			return errors.New("zset index score not canonical")
		}
		member, ok, err := z.byScore.Get(tx, zkey(score, p.K))
		if err != nil {
			return err
		}
		if !ok || member != p.K {
			return errors.New("zset member missing from score order")
		}
	}
	m, err := z.byScore.Len(tx)
	if err != nil {
		return err
	}
	if m != n {
		return errors.New("zset index and score order disagree on size")
	}
	return nil
}

// ZAdd adds member with score in one atomic transaction (see ZAddTx).
func (st *Store) ZAdd(key, member string, score float64) (bool, error) {
	var added bool
	err := st.Atomically(func(tx *stm.Tx, now int64) error {
		var err error
		added, err = st.ZAddTx(tx, now, key, member, score)
		return err
	})
	return added, err
}

// ZScore reads member's score in one atomic transaction.
func (st *Store) ZScore(key, member string) (float64, bool, error) {
	now := st.now()
	return stm.Atomic2(st.s, func(tx *stm.Tx) (float64, bool, error) {
		return st.ZScoreTx(tx, now, key, member)
	})
}

// ZRem removes members in one atomic transaction (see ZRemTx).
func (st *Store) ZRem(key string, members ...string) (int, error) {
	var removed int
	err := st.Atomically(func(tx *stm.Tx, now int64) error {
		var err error
		removed, err = st.ZRemTx(tx, now, key, members...)
		return err
	})
	return removed, err
}

// ZCard counts members in one atomic transaction.
func (st *Store) ZCard(key string) (int, error) {
	now := st.now()
	return stm.Atomic(st.s, func(tx *stm.Tx) (int, error) {
		return st.ZCardTx(tx, now, key)
	})
}

// ZRange reads a rank range in one atomic transaction (see ZRangeTx).
func (st *Store) ZRange(key string, start, stop int) ([]ZEntry, error) {
	now := st.now()
	return stm.Atomic(st.s, func(tx *stm.Tx) ([]ZEntry, error) {
		return st.ZRangeTx(tx, now, key, start, stop)
	})
}
