package kv

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stm"
)

// fakeClock is a hand-advanced monotonic time source for deterministic
// expiry tests.
type fakeClock struct {
	t atomic.Int64
}

func (c *fakeClock) now() int64              { return c.t.Load() }
func (c *fakeClock) advance(d time.Duration) { c.t.Add(int64(d)) }

// TestStoreBasicOps exercises the single-client contract of every
// typed operation.
func TestStoreBasicOps(t *testing.T) {
	st := New(stm.New())
	if _, ok, err := st.Get("missing"); err != nil || ok {
		t.Fatalf("Get(missing) = ok=%v, err=%v; want false, nil", ok, err)
	}
	if err := st.Set("a", "1"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := st.Get("a"); err != nil || !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v, %v; want \"1\", true, nil", v, ok, err)
	}
	if n, err := st.Incr("a", 41); err != nil || n != 42 {
		t.Fatalf("Incr(a, 41) = %d, %v; want 42, nil", n, err)
	}
	if n, err := st.Incr("fresh", -2); err != nil || n != -2 {
		t.Fatalf("Incr(fresh, -2) = %d, %v; want -2, nil", n, err)
	}
	if err := st.Set("text", "nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Incr("text", 1); !errors.Is(err, ErrNotInteger) {
		t.Fatalf("Incr on non-integer = %v; want ErrNotInteger", err)
	}
	if err := st.MSet(KV{"x", "10"}, KV{"y", "20"}, KV{"z", "30"}); err != nil {
		t.Fatal(err)
	}
	vals, present, err := st.MGet("x", "nope", "z")
	if err != nil {
		t.Fatal(err)
	}
	if !present[0] || present[1] || !present[2] || vals[0] != "10" || vals[2] != "30" {
		t.Fatalf("MGet = %v, %v", vals, present)
	}
	if n, err := st.Del("x", "nope", "y"); err != nil || n != 2 {
		t.Fatalf("Del = %d, %v; want 2, nil", n, err)
	}
	if n, err := st.Len(); err != nil || n != 4 { // a, fresh, text, z
		t.Fatalf("Len = %d, %v; want 4, nil", n, err)
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(keys)
	if want := []string{"a", "fresh", "text", "z"}; fmt.Sprint(keys) != fmt.Sprint(want) {
		t.Fatalf("Keys = %v; want %v", keys, want)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreExpiry pins the TTL contract on a hand-advanced clock: TTL
// readouts, lazy reads of dead entries, Redis-style TTL clearing on
// SET, TTL preservation across INCR, and EXPIRE with a non-positive
// TTL acting as DEL.
func TestStoreExpiry(t *testing.T) {
	var clk fakeClock
	st := New(stm.New(), WithClock(clk.now))
	if err := st.SetTTL("k", "v", 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ttl, ok, err := st.TTL("k"); err != nil || !ok || ttl != 100*time.Millisecond {
		t.Fatalf("TTL = %v, %v, %v; want 100ms, true, nil", ttl, ok, err)
	}
	clk.advance(60 * time.Millisecond)
	if ttl, ok, _ := st.TTL("k"); !ok || ttl != 40*time.Millisecond {
		t.Fatalf("TTL after 60ms = %v, %v; want 40ms, true", ttl, ok)
	}
	clk.advance(40 * time.Millisecond)
	if _, ok, _ := st.Get("k"); ok {
		t.Fatal("expired key still readable")
	}
	if _, ok, _ := st.TTL("k"); ok {
		t.Fatal("expired key still has TTL")
	}
	// SET clears TTL; INCR preserves it.
	if err := st.SetTTL("n", "5", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := st.Set("n", "5"); err != nil {
		t.Fatal(err)
	}
	if ttl, ok, _ := st.TTL("n"); !ok || ttl != NoTTL {
		t.Fatalf("TTL after plain SET = %v, %v; want NoTTL, true", ttl, ok)
	}
	if _, err := st.Expire("n", time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Incr("n", 1); err != nil {
		t.Fatal(err)
	}
	if ttl, ok, _ := st.TTL("n"); !ok || ttl != time.Second {
		t.Fatalf("TTL after INCR = %v, %v; want 1s, true", ttl, ok)
	}
	// EXPIRE with non-positive TTL deletes.
	if ok, err := st.Expire("n", 0); err != nil || !ok {
		t.Fatalf("Expire(n, 0) = %v, %v; want true, nil", ok, err)
	}
	if _, ok, _ := st.Get("n"); ok {
		t.Fatal("key survived EXPIRE 0")
	}
	// EXPIRE on a missing key reports false.
	if ok, err := st.Expire("ghost", time.Second); err != nil || ok {
		t.Fatalf("Expire(ghost) = %v, %v; want false, nil", ok, err)
	}
}

// TestStoreExpiryMonotonic is the monotonicity contract: a key is
// readable exactly until the clock reaches its expiry, and once it has
// been observed expired no later read sees it alive (without an
// intervening write). The clock is hand-advanced in steps; after each
// step every key is probed concurrently and must read as alive iff its
// deadline is still ahead — deterministic on any host, since the clock
// only moves between probe rounds.
func TestStoreExpiryMonotonic(t *testing.T) {
	var clk fakeClock
	st := New(stm.New(), WithClock(clk.now))
	const keys = 16
	const step = 10 * time.Millisecond
	for i := 0; i < keys; i++ {
		if err := st.SetTTL(fmt.Sprintf("k%d", i), "v", time.Duration(i+1)*step); err != nil {
			t.Fatal(err)
		}
	}
	for round := 1; round <= keys+1; round++ {
		clk.advance(step)
		var wg sync.WaitGroup
		errs := make([]error, keys)
		for i := 0; i < keys; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				key := fmt.Sprintf("k%d", i)
				_, ok, err := st.Get(key)
				if err != nil {
					errs[i] = err
					return
				}
				alive := i+1 > round // deadline (i+1)*step vs clock round*step
				if ok != alive {
					errs[i] = fmt.Errorf("round %d: Get(%s) alive=%v, want %v", round, key, ok, alive)
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// Sweep reaps everything that died; the store ends empty.
	removed, err := st.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if removed != keys {
		t.Fatalf("Sweep removed %d, want %d", removed, keys)
	}
	if n, err := st.Len(); err != nil || n != 0 {
		t.Fatalf("Len after sweep = %d, %v; want 0, nil", n, err)
	}
	if removed, err := st.Sweep(); err != nil || removed != 0 {
		t.Fatalf("second Sweep removed %d, %v; want 0, nil", removed, err)
	}
}

// hammerOps trims the per-goroutine operation count under -short so
// the full manager sweep stays fast in CI's race run.
func hammerOps(t *testing.T) int {
	if testing.Short() {
		return 40
	}
	return 150
}

// TestStoreResizeUnderMutators races shard resizes against 32
// goroutines mutating concurrently: tiny initial bucket arrays, every
// writer inserting a disjoint key range with interleaved deletes, and
// grooming running both inline (top-level Set drains signals) and from
// a dedicated maintenance goroutine. Transactional resize must
// preserve every live key.
func TestStoreResizeUnderMutators(t *testing.T) {
	const writers = 32
	perWriter := hammerOps(t)
	s := stm.New(stm.WithManagerFactory(core.MustFactory("greedy")), stm.WithInterleavePeriod(4))
	st := New(s, WithShards(4), WithBuckets(1))
	var wg sync.WaitGroup
	errs := make([]error, writers+1)
	stop := make(chan struct{})
	var maint sync.WaitGroup
	maint.Add(1)
	go func() {
		defer maint.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Groom(); err != nil {
				errs[writers] = err
				return
			}
			// Pace the drain: back-to-back whole-shard recounts would
			// serialize against every writer and starve the storm the
			// test exists to create.
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d:%d", g, i)
				if err := st.Set(key, strconv.Itoa(i)); err != nil {
					errs[g] = err
					return
				}
				if i%5 == 4 { // delete a fifth of our own keys
					if _, err := st.Del(fmt.Sprintf("w%d:%d", g, i-2)); err != nil {
						errs[g] = err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	maint.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	grew := false
	for _, b := range st.BucketsPerShard() {
		if b > 1 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("no shard ever grew")
	}
	deleted := perWriter / 5
	want := writers * (perWriter - deleted)
	n, err := st.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("Len after resize storm = %d, want %d", n, want)
	}
	for g := 0; g < writers; g++ { // spot-check survivors' values
		key := fmt.Sprintf("w%d:%d", g, perWriter-1)
		v, ok, err := st.Get(key)
		if err != nil || !ok || v != strconv.Itoa(perWriter-1) {
			t.Fatalf("Get(%s) = %q, %v, %v", key, v, ok, err)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// errFuseBlew is the livelock fuse for the transfer hammer: a manager
// whose policy can ping-pong aborts forever under symmetric load
// (aggressive, notably) gives up a transfer after a bounded number of
// attempts instead of hanging the test. A fused transfer simply never
// happened — conservation still holds — so the invariant checks stay
// exact; the fuse only bounds wall time.
var errFuseBlew = errors.New("kv hammer: livelock fuse blew")

// TestStoreTransferHammer is the MULTI/EXEC atomicity contract under
// every registry contention manager: movers transfer value between
// string keys in single transactions (the EXEC replay shape) while
// auditors take consistent MGet snapshots and assert conservation.
// Runs under -race in CI.
func TestStoreTransferHammer(t *testing.T) {
	const (
		accounts = 8
		movers   = 8
		auditors = 2
		initial  = 1000
	)
	ops := hammerOps(t)
	keys := make([]string, accounts)
	for i := range keys {
		keys[i] = fmt.Sprintf("acct:%d", i)
	}
	for _, mgr := range core.Names() {
		t.Run(mgr, func(t *testing.T) {
			s := stm.New(stm.WithManagerFactory(core.MustFactory(mgr)), stm.WithInterleavePeriod(4))
			st := New(s, WithShards(4), WithBuckets(2))
			for _, k := range keys {
				if err := st.Set(k, strconv.Itoa(initial)); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			errs := make([]error, movers+auditors)
			for g := 0; g < movers; g++ {
				rng := rand.New(rand.NewPCG(uint64(g)+1, 7))
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						from := keys[rng.Int64N(accounts)]
						to := keys[rng.Int64N(accounts)]
						amount := rng.Int64N(20) + 1
						// One transaction: the MULTI/EXEC replay shape —
						// INCRBY from -amount; INCRBY to amount.
						attempts := 0
						err := st.Atomically(func(tx *stm.Tx, now int64) error {
							//stm:impure(livelock fuse: the cross-retry attempt count is what bounds the ping-pong)
							if attempts++; attempts > 2000 {
								return errFuseBlew
							}
							if _, err := st.IncrTx(tx, now, from, -amount); err != nil {
								return err
							}
							_, err := st.IncrTx(tx, now, to, amount)
							return err
						})
						if err != nil && !errors.Is(err, errFuseBlew) {
							errs[g] = err
							return
						}
					}
				}(g)
			}
			for a := 0; a < auditors; a++ {
				wg.Add(1)
				go func(a int) {
					defer wg.Done()
					for i := 0; i < ops/4; i++ {
						now := st.Now()
						var vals []string
						var present []bool
						attempts := 0
						err := st.s.Atomically(func(tx *stm.Tx) error {
							//stm:impure(livelock fuse: the cross-retry attempt count is what bounds the ping-pong)
							if attempts++; attempts > 2000 {
								return errFuseBlew
							}
							vals = make([]string, len(keys))
							present = make([]bool, len(keys))
							for i, key := range keys {
								v, ok, err := st.GetTx(tx, now, key)
								if err != nil {
									return err
								}
								vals[i], present[i] = v, ok
							}
							return nil
						})
						if errors.Is(err, errFuseBlew) {
							continue // audit round skipped, not wrong
						}
						if err != nil {
							errs[movers+a] = err
							return
						}
						sum := int64(0)
						for i, v := range vals {
							if !present[i] {
								errs[movers+a] = fmt.Errorf("account %s vanished", keys[i])
								return
							}
							n, err := strconv.ParseInt(v, 10, 64)
							if err != nil {
								errs[movers+a] = err
								return
							}
							sum += n
						}
						if sum != accounts*initial {
							errs[movers+a] = fmt.Errorf("conservation broken: sum %d, want %d", sum, accounts*initial)
							return
						}
					}
				}(a)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			// Quiesced total must also balance.
			vals, _, err := st.MGet(keys...)
			if err != nil {
				t.Fatal(err)
			}
			sum := int64(0)
			for _, v := range vals {
				n, _ := strconv.ParseInt(v, 10, 64)
				sum += n
			}
			if sum != accounts*initial {
				t.Fatalf("final sum %d, want %d", sum, accounts*initial)
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
