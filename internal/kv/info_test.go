package kv

import (
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/stm"
	"repro/internal/wal"
)

// startServerWith is startServer with server options.
func startServerWith(t *testing.T, st *Store, opts ...ServerOption) (*Server, string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, opts...)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stop := func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned: %v", err)
		}
	}
	return srv, ln.Addr().String(), stop
}

func TestInfoSections(t *testing.T) {
	st := New(stm.New())
	_, addr, stop := startServerWith(t, st, WithManagerName("greedy"))
	defer stop()
	c := dialClient(t, addr)
	defer c.close()

	c.mustDo(t, "SET", "a", "1")
	c.mustDo(t, "SET", "b", "2")

	// No argument: every section, with live values.
	v := c.mustDo(t, "INFO")
	if v.Kind != '$' {
		t.Fatalf("INFO reply kind = %q, want bulk", v.Kind)
	}
	for _, want := range []string{
		"# Server", "# Clients", "# Stats", "# Commandstats", "# Stm", "# Wal", "# Keyspace",
		"contention_manager:greedy", "connected_clients:1", "wal_enabled:0",
		"db0:keys=2", "cmdstat_set:calls=2",
	} {
		if !strings.Contains(v.Str, want) {
			t.Fatalf("INFO missing %q:\n%s", want, v.Str)
		}
	}
	if !strings.Contains(v.Str, "total_commands_processed:") {
		t.Fatalf("INFO missing stats:\n%s", v.Str)
	}

	// Section selection, case-insensitive.
	v = c.mustDo(t, "INFO", "KEYSPACE")
	if !strings.Contains(v.Str, "db0:keys=2") || strings.Contains(v.Str, "# Server") {
		t.Fatalf("INFO KEYSPACE = %q", v.Str)
	}
	v = c.mustDo(t, "INFO", "stm")
	if !strings.Contains(v.Str, "commits:") || !strings.Contains(v.Str, "wait_ns:") {
		t.Fatalf("INFO stm = %q", v.Str)
	}

	// Unknown section and bad arity are errors.
	if v, _ := c.do("INFO", "bogus"); !v.IsError() || !strings.Contains(v.Str, "unknown INFO section") {
		t.Fatalf("INFO bogus = %+v, want unknown-section error", v)
	}
	if v, _ := c.do("INFO", "stats", "extra"); !v.IsError() {
		t.Fatalf("INFO with two args = %+v, want arity error", v)
	}
}

func TestInfoAndSlowlogRejectedInsideMulti(t *testing.T) {
	st := New(stm.New())
	_, addr, stop := startServerWith(t, st)
	defer stop()
	c := dialClient(t, addr)
	defer c.close()

	for _, cmd := range [][]string{{"INFO"}, {"SLOWLOG", "LEN"}} {
		c.mustDo(t, "MULTI")
		if v, _ := c.do(cmd...); !v.IsError() || !strings.Contains(v.Str, "inside MULTI") {
			t.Fatalf("%v inside MULTI = %+v, want rejection", cmd, v)
		}
		// The rejection poisons the block, exactly like SAVE.
		if v, _ := c.do("EXEC"); !v.IsError() || !strings.HasPrefix(v.Str, "EXECABORT") {
			t.Fatalf("EXEC after %v = %+v, want EXECABORT", cmd, v)
		}
	}
}

func TestSlowlogRingWraparound(t *testing.T) {
	st := New(stm.New())
	// Threshold zero records every command; ring of 4 forces wraparound.
	_, addr, stop := startServerWith(t, st, WithSlowlog(0, 4))
	defer stop()
	c := dialClient(t, addr)
	defer c.close()

	for i := 0; i < 10; i++ {
		c.mustDo(t, "SET", "k", "v")
	}
	v := c.mustDo(t, "SLOWLOG", "LEN")
	if v.Int != 4 {
		t.Fatalf("SLOWLOG LEN = %d, want ring size 4", v.Int)
	}
	v = c.mustDo(t, "SLOWLOG", "GET", "-1")
	if len(v.Elems) != 4 {
		t.Fatalf("SLOWLOG GET returned %d entries, want 4", len(v.Elems))
	}
	// Newest first, strictly descending ids; every surviving entry is
	// from the most recent commands (ids keep counting past the ring).
	prev := int64(1 << 62)
	for _, e := range v.Elems {
		if len(e.Elems) != 6 {
			t.Fatalf("entry shape = %+v", e)
		}
		id, usec, cmd := e.Elems[0].Int, e.Elems[2].Int, e.Elems[3]
		if id >= prev {
			t.Fatalf("ids not descending: %d after %d", id, prev)
		}
		prev = id
		if usec < 0 {
			t.Fatalf("negative duration %d", usec)
		}
		if len(cmd.Elems) == 0 {
			t.Fatal("entry lost its command args")
		}
		// The contention-forensics fields: a transactional SET ran at
		// least one attempt; wait time cannot be negative.
		if attempts := e.Elems[4].Int; attempts < 1 {
			t.Fatalf("SET recorded %d attempts, want >= 1", attempts)
		}
		if waitNs := e.Elems[5].Int; waitNs < 0 {
			t.Fatalf("negative wait_ns %d", waitNs)
		}
	}
	// The newest entry's id reflects everything ever recorded (the 10
	// SETs; SLOWLOG itself is exempt), not just the 4 held.
	if newest := v.Elems[0].Elems[0].Int; newest < 9 {
		t.Fatalf("newest id = %d, want >= 9 after wraparound", newest)
	}
	// GET with a count caps the result.
	if v = c.mustDo(t, "SLOWLOG", "GET", "2"); len(v.Elems) != 2 {
		t.Fatalf("SLOWLOG GET 2 returned %d entries", len(v.Elems))
	}
	c.mustDo(t, "SLOWLOG", "RESET")
	if v = c.mustDo(t, "SLOWLOG", "LEN"); v.Int != 0 {
		t.Fatalf("SLOWLOG LEN after RESET = %d", v.Int)
	}
	// Unknown subcommand errors.
	if v, _ := c.do("SLOWLOG", "HELP"); !v.IsError() {
		t.Fatalf("SLOWLOG HELP = %+v, want error", v)
	}
}

// TestMetricsExposition drives commands over RESP and checks the
// registry's /metrics output parses back with the expected samples —
// per-command counters and latency histograms, engine wait-time with
// the manager label, and WAL internals on a durable store.
func TestMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{GroupWindow: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	st := New(stm.New())
	st.AttachWAL(l)
	defer l.Close()

	reg := obs.NewRegistry()
	srv, addr, stop := startServerWith(t, st, WithRegistry(reg), WithManagerName("karma"))
	defer stop()
	if srv.Registry() != reg {
		t.Fatal("Registry() did not return the injected registry")
	}
	c := dialClient(t, addr)
	defer c.close()
	c.mustDo(t, "SET", "k", "v")
	c.mustDo(t, "GET", "k")
	c.mustDo(t, "GET", "k")
	if v, _ := c.do("GET"); !v.IsError() {
		t.Fatalf("GET with no key = %+v, want arity error", v)
	}
	srv.NoteSweepFailure()
	srv.NoteBgsaveFailure()

	mux := obs.Mux(reg, nil)
	hs := httptest.NewServer(mux)
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples, err := obs.CheckExposition(body)
	if err != nil {
		t.Fatalf("/metrics failed parse-back: %v\n%s", err, body)
	}
	checks := map[string]float64{
		`stmkv_commands_total{cmd="set"}`:        1,
		`stmkv_commands_total{cmd="get"}`:        3,
		`stmkv_command_errors_total{cmd="get"}`:  1,
		`stmkv_command_seconds_count{cmd="get"}`: 3,
		`stmkv_sweeper_failures_total`:           1,
		`stmkv_bgsave_failures_total`:            1,
	}
	for name, want := range checks {
		if got := samples[name]; got != want {
			t.Fatalf("%s = %g, want %g\n%s", name, got, want, body)
		}
	}
	// Engine metrics carry the manager label; commits happened.
	if samples[`stm_commits_total{manager="karma"}`] < 1 {
		t.Fatalf("stm_commits_total missing or zero:\n%s", body)
	}
	if _, ok := samples[`stm_wait_ns_total{manager="karma"}`]; !ok {
		t.Fatalf("per-manager wait metric missing:\n%s", body)
	}
	if samples[`stm_commit_seconds_count{manager="karma"}`] < 1 {
		t.Fatalf("commit latency histogram empty:\n%s", body)
	}
	// WAL metrics present on a durable store.
	if samples[`wal_records_total`] < 1 {
		t.Fatalf("wal_records_total missing:\n%s", body)
	}
	if _, ok := samples[`wal_fsync_seconds_count`]; !ok {
		t.Fatalf("wal fsync histogram missing:\n%s", body)
	}
	if samples[`stmkv_keys`] != 1 {
		t.Fatalf("stmkv_keys = %g, want 1\n%s", samples[`stmkv_keys`], body)
	}
	if samples[`stmkv_connected_clients`] != 1 {
		t.Fatalf("stmkv_connected_clients = %g, want 1", samples[`stmkv_connected_clients`])
	}

	// pprof rides the same mux.
	pr, err := hs.Client().Get(hs.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != 200 {
		t.Fatalf("pprof status = %d", pr.StatusCode)
	}
}

// TestStorePeekLen: the non-transactional key count matches reality
// and skips expired entries.
func TestStorePeekLen(t *testing.T) {
	var clk fakeClock
	st := New(stm.New(), WithClock(clk.now))
	if err := st.Set("a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := st.SetTTL("b", "2", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := st.PeekLen(); got != 2 {
		t.Fatalf("PeekLen = %d, want 2", got)
	}
	clk.advance(time.Second)
	if got := st.PeekLen(); got != 1 {
		t.Fatalf("PeekLen after expiry = %d, want 1", got)
	}
}
