// Package kv is a sharded transactional key-value store built on the
// typed STM facade — the serving-layer workload the ROADMAP's
// production north star points at, and the structure the stmkv server
// exposes over its RESP-lite protocol.
//
// Layout: keys are hashed to one of a fixed number of shards, and each
// shard is a growable bucket table (container.Table) whose bucket
// array itself lives in a Var — so resizing a shard is an ordinary
// transaction racing concurrent operations, serialized by the STM like
// any other conflict. Buckets hold immutable chains of entries
// (key, value, expiry), so the Var's shallow clone is a correct
// private copy.
//
// Entries are typed: besides plain strings, a key may hold a hash (a
// per-key field table), a list (container.Deque) or a sorted set (an
// OMap score index plus a member table), with Redis semantics — a
// command against the wrong kind fails with ErrWrongType, TTLs attach
// to whole keys, and a container emptied of its last element deletes
// the key. Operations inside a container touch only that container's
// Vars, so transactions on different fields of one hash, or opposite
// ends of one list, do not conflict.
//
// Every top-level operation (Get, Set, Del, Incr, MGet, MSet, Expire,
// TTL, and the typed HSet/LPush/ZAdd… families) runs as one atomic
// transaction on a pooled session; the *Tx forms compose into larger
// transactions — the server's MULTI/EXEC replays a queued command
// block inside a single Atomically, making cross-key transfers (and
// cross-kind moves like list→zset promotion) serializable against
// concurrent singleton operations and shard resizes.
//
// Expiry is lazy: a read treats a dead entry as absent without
// writing; writes that rebuild a chain drop dead entries in passing,
// and Sweep reaps shard by shard, one transaction each. Time comes
// from the store's clock (monotonic nanoseconds; injectable for
// tests), sampled once per logical transaction so retries replay
// identical decisions.
//
// Durability is optional: AttachWAL hooks the store to an
// internal/wal log, after which every committed top-level write set
// (including swept tombstones) is captured through the engine's
// post-commit hook and group-committed to disk; Save cuts a
// consistent snapshot, and Apply replays a recovered op stream into
// an empty store. See DESIGN.md §Durability for the ordering
// argument and persist.go for the capture machinery.
package kv
