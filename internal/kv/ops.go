package kv

import (
	"errors"
	"math"
	"strconv"
	"time"

	"repro/internal/container"
	"repro/internal/stm"
	"repro/internal/wal"
)

// ErrNotInteger is returned by Incr when the key holds a value that
// does not parse as a signed 64-bit integer. It surfaces out of the
// transaction unchanged (a user error, not a conflict), so the whole
// transaction — an EXEC block included — aborts atomically.
var ErrNotInteger = errors.New("kv: value is not an integer")

// findEntry reads key's live entry inside tx at instant now, or nil —
// the read-only lookup under Get, TTL and Incr. Expired entries read
// as absent without writing, so a hot read never acquires ownership.
func (st *Store) findEntry(tx *stm.Tx, now int64, key string) (*entry, error) {
	head, _, err := st.chain(tx, key)
	if err != nil {
		return nil, err
	}
	for e := head; e != nil; e = e.next {
		if e.key == key {
			if e.dead(now) {
				return nil, nil
			}
			return e, nil
		}
	}
	return nil, nil
}

// GetTx reads key's string value inside tx at instant now (see
// findEntry for the expiry contract). A live key of a container kind
// yields ErrWrongType.
func (st *Store) GetTx(tx *stm.Tx, now int64, key string) (string, bool, error) {
	e, err := st.typedEntry(tx, now, key, kindString)
	if err != nil || e == nil {
		return "", false, err
	}
	return e.val, true, nil
}

// SetTx writes key=val inside tx at instant now. A ttl > 0 arms
// expiry at now+ttl; ttl <= 0 stores the key without expiry (and, like
// Redis SET, clears any previous TTL).
func (st *Store) SetTx(tx *stm.Tx, now int64, key, val string, ttl time.Duration) error {
	var expireAt int64
	if ttl > 0 {
		expireAt = now + int64(ttl)
		if expireAt < now {
			expireAt = math.MaxInt64 // deadline past the clock's range: lives forever
		}
	}
	return st.putTx(tx, now, key, val, expireAt)
}

// putTx writes key=val with an explicit expiry deadline (0 = none) —
// the single chain-rebuild under Set and Incr. Like Redis SET, it
// overwrites a container entry wholesale. The rebuilt chain drops
// entries dead at now in passing — writers reap lazily so Sweep has
// less to do. A chain left longer than container.GrowChain raises the
// shard's advisory resize signal (an atomic flag, retry-safe; Groom
// acts on it).
func (st *Store) putTx(tx *stm.Tx, now int64, key, val string, expireAt int64) error {
	head, bv, err := st.chain(tx, key)
	if err != nil {
		return err
	}
	rebuilt := &entry{key: key, val: val, expireAt: expireAt}
	chain := 1
	for e := head; e != nil; e = e.next {
		if e.key == key || e.dead(now) {
			continue
		}
		rebuilt = e.with(rebuilt)
		chain++
	}
	if chain > container.GrowChain {
		st.shard(key).SignalGrowth()
	}
	if err := stm.Write(tx, bv, rebuilt); err != nil {
		return err
	}
	capture(tx, wal.Op{Key: key, Val: val, ExpireAt: expireAt})
	return nil
}

// DelTx removes key inside tx at instant now, reporting whether a live
// entry was removed. Dead entries encountered in the chain are dropped
// too, but count for nothing.
func (st *Store) DelTx(tx *stm.Tx, now int64, key string) (bool, error) {
	head, bv, err := st.chain(tx, key)
	if err != nil {
		return false, err
	}
	found := false
	for e := head; e != nil; e = e.next {
		if e.key == key {
			found = !e.dead(now)
			break
		}
	}
	live, dropped := pruneKey(head, key, now)
	if !found && dropped == 0 {
		return false, nil // absent: stay read-only, no write conflict
	}
	if err := stm.Write(tx, bv, live); err != nil {
		return false, err
	}
	if found {
		// Only a live removal is logged; pruning already-dead entries
		// is a physical cleanup replay reproduces by expiry alone.
		capture(tx, wal.Op{Key: key, Del: true})
	}
	return found, nil
}

// pruneKey rebuilds head without key and without entries dead at now,
// reporting how many entries were dropped for either reason.
func pruneKey(head *entry, key string, now int64) (*entry, int) {
	var live *entry
	dropped := 0
	for e := head; e != nil; e = e.next {
		if e.key == key || e.dead(now) {
			dropped++
			continue
		}
		live = e.with(live)
	}
	return live, dropped
}

// IncrTx adds delta to the integer value at key inside tx at instant
// now, creating the key at delta if absent or expired, and returns the
// new value. An existing key keeps its TTL, Redis-style; a fresh one
// stores without expiry. A non-integer value yields ErrNotInteger.
func (st *Store) IncrTx(tx *stm.Tx, now int64, key string, delta int64) (int64, error) {
	e, err := st.typedEntry(tx, now, key, kindString)
	if err != nil {
		return 0, err
	}
	n := int64(0)
	var expireAt int64
	if e != nil {
		n, err = strconv.ParseInt(e.val, 10, 64)
		if err != nil {
			return 0, ErrNotInteger
		}
		expireAt = e.expireAt
	}
	n += delta
	if err := st.putTx(tx, now, key, strconv.FormatInt(n, 10), expireAt); err != nil {
		return 0, err
	}
	return n, nil
}

// ExpireTx arms expiry at now+ttl on a live key of any kind,
// reporting whether the key existed. A ttl <= 0 deletes the key
// immediately (Redis EXPIRE with a non-positive TTL).
func (st *Store) ExpireTx(tx *stm.Tx, now int64, key string, ttl time.Duration) (bool, error) {
	if ttl <= 0 {
		return st.DelTx(tx, now, key)
	}
	expireAt := now + int64(ttl)
	if expireAt < now {
		expireAt = math.MaxInt64 // deadline past the clock's range: lives forever
	}
	ok, err := st.touchTx(tx, now, key, expireAt)
	if err != nil || !ok {
		return false, err
	}
	capture(tx, wal.Op{Key: key, Touch: true, ExpireAt: expireAt})
	return true, nil
}

// touchTx rebuilds key's chain with the entry's expiry deadline
// replaced — the kind-agnostic body of Expire and the replay form of
// a touch op. It reports whether a live entry was found; it does not
// capture (ExpireTx does).
func (st *Store) touchTx(tx *stm.Tx, now int64, key string, expireAt int64) (bool, error) {
	head, bv, err := st.chain(tx, key)
	if err != nil {
		return false, err
	}
	found := false
	var rebuilt *entry
	for e := head; e != nil; e = e.next {
		if e.dead(now) {
			continue
		}
		if e.key == key {
			found = true
			c := e.with(rebuilt)
			c.expireAt = expireAt
			rebuilt = c
			continue
		}
		rebuilt = e.with(rebuilt)
	}
	if !found {
		return false, nil // absent: stay read-only, no write conflict
	}
	return true, stm.Write(tx, bv, rebuilt)
}

// TTLTx reports key's remaining time to live at instant now: ok is
// false when the key is absent or expired; a live key without expiry
// reports NoTTL.
func (st *Store) TTLTx(tx *stm.Tx, now int64, key string) (time.Duration, bool, error) {
	e, err := st.findEntry(tx, now, key)
	if err != nil || e == nil {
		return 0, false, err
	}
	if e.expireAt == 0 {
		return NoTTL, true, nil
	}
	return time.Duration(e.expireAt - now), true, nil
}

// Get reads key's value in one atomic transaction.
func (st *Store) Get(key string) (string, bool, error) {
	now := st.now()
	return stm.Atomic2(st.s, func(tx *stm.Tx) (string, bool, error) {
		return st.GetTx(tx, now, key)
	})
}

// Set writes key=val (no expiry) in one atomic transaction.
func (st *Store) Set(key, val string) error { return st.SetTTL(key, val, 0) }

// SetTTL writes key=val with expiry after ttl (ttl <= 0: none) in one
// atomic transaction.
func (st *Store) SetTTL(key, val string, ttl time.Duration) error {
	return st.Atomically(func(tx *stm.Tx, now int64) error {
		return st.SetTx(tx, now, key, val, ttl)
	})
}

// Del removes the keys in one atomic transaction and returns how many
// live entries were removed.
func (st *Store) Del(keys ...string) (int, error) {
	removed := 0
	err := st.Atomically(func(tx *stm.Tx, now int64) error {
		// Accumulate in a per-attempt local and capture with a plain
		// assignment: retries overwrite the whole count (txpure's
		// blessed idiom) instead of relying on a top-of-body reset.
		n := 0
		for _, key := range keys {
			ok, err := st.DelTx(tx, now, key)
			if err != nil {
				return err
			}
			if ok {
				n++
			}
		}
		removed = n
		return nil
	})
	return removed, err
}

// Incr adds delta to the integer at key in one atomic transaction and
// returns the new value (see IncrTx).
func (st *Store) Incr(key string, delta int64) (int64, error) {
	var n int64
	err := st.Atomically(func(tx *stm.Tx, now int64) error {
		var err error
		n, err = st.IncrTx(tx, now, key, delta)
		return err
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// MGet reads every key in one atomic transaction — a consistent
// multi-key snapshot: vals[i], present[i] reflect keys[i] at a single
// serialization point. Keys holding container values read as absent
// (Redis MGET never errors on type).
func (st *Store) MGet(keys ...string) (vals []string, present []bool, err error) {
	now := st.now()
	err = st.s.Atomically(func(tx *stm.Tx) error {
		vals = make([]string, len(keys))
		present = make([]bool, len(keys))
		for i, key := range keys {
			v, ok, err := st.GetTx(tx, now, key)
			if errors.Is(err, ErrWrongType) {
				continue
			}
			if err != nil {
				return err
			}
			vals[i], present[i] = v, ok
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return vals, present, nil
}

// MSet writes every pair in one atomic transaction: concurrent readers
// see all of the writes or none.
func (st *Store) MSet(pairs ...KV) error {
	return st.Atomically(func(tx *stm.Tx, now int64) error {
		for _, p := range pairs {
			if err := st.SetTx(tx, now, p.K, p.V, 0); err != nil {
				return err
			}
		}
		return nil
	})
}

// Expire arms expiry on key after ttl in one atomic transaction,
// reporting whether the key existed (see ExpireTx).
func (st *Store) Expire(key string, ttl time.Duration) (bool, error) {
	var ok bool
	err := st.Atomically(func(tx *stm.Tx, now int64) error {
		var err error
		ok, err = st.ExpireTx(tx, now, key, ttl)
		return err
	})
	return ok, err
}

// TTL reports key's remaining time to live in one atomic transaction
// (see TTLTx).
func (st *Store) TTL(key string) (time.Duration, bool, error) {
	now := st.now()
	return stm.Atomic2(st.s, func(tx *stm.Tx) (time.Duration, bool, error) {
		return st.TTLTx(tx, now, key)
	})
}

// Len counts the live keys in one consistent transaction over every
// shard — the whole-store scan that conflicts with all concurrent
// writers.
func (st *Store) Len() (int, error) {
	now := st.now()
	return stm.Atomic(st.s, func(tx *stm.Tx) (int, error) {
		total := 0
		for _, sh := range st.shards {
			b, err := sh.Buckets(tx)
			if err != nil {
				return 0, err
			}
			for i := 0; i < b.Len(); i++ {
				head, err := stm.Read(tx, b.At(i))
				if err != nil {
					return 0, err
				}
				for e := head; e != nil; e = e.next {
					if !e.dead(now) {
						total++
					}
				}
			}
		}
		return total, nil
	})
}

// Keys returns every live key in one consistent transaction, in no
// particular order.
func (st *Store) Keys() ([]string, error) {
	now := st.now()
	return stm.Atomic(st.s, func(tx *stm.Tx) ([]string, error) {
		var out []string
		for _, sh := range st.shards {
			b, err := sh.Buckets(tx)
			if err != nil {
				return nil, err
			}
			for i := 0; i < b.Len(); i++ {
				head, err := stm.Read(tx, b.At(i))
				if err != nil {
					return nil, err
				}
				for e := head; e != nil; e = e.next {
					if !e.dead(now) {
						out = append(out, e.key)
					}
				}
			}
		}
		return out, nil
	})
}
