package kv

import (
	"repro/internal/stm"
	"repro/internal/wal"
)

// Lists are container.Deque[string] values inside entries: pushes and
// pops touch the deque's end links and counters only, so front and
// back traffic on the same key are independent hot spots and neither
// rewrites the bucket chain. The WAL sees one op per element moved
// (push = value + end flag, pop = tombstone + end flag); replay
// re-runs the same deque operations in commit order.

// LPushTx pushes vals onto the front of the list at key, left to
// right (so the last val ends up frontmost, as in Redis), creating
// the list if the key is absent. Returns the new length.
func (st *Store) LPushTx(tx *stm.Tx, now int64, key string, vals ...string) (int, error) {
	return st.pushTx(tx, now, key, true, vals)
}

// RPushTx pushes vals onto the back of the list at key; see LPushTx.
func (st *Store) RPushTx(tx *stm.Tx, now int64, key string, vals ...string) (int, error) {
	return st.pushTx(tx, now, key, false, vals)
}

func (st *Store) pushTx(tx *stm.Tx, now int64, key string, front bool, vals []string) (int, error) {
	e, err := st.containerEntry(tx, now, key, kindList)
	if err != nil {
		return 0, err
	}
	for _, v := range vals {
		if front {
			err = e.list.PushFront(tx, v)
		} else {
			err = e.list.PushBack(tx, v)
		}
		if err != nil {
			return 0, err
		}
		capture(tx, wal.Op{Kind: wal.KindList, Key: key, Val: v, Front: front})
	}
	return e.list.Len(tx)
}

// LPopTx pops the front element of the list at key; ok is false when
// the key is absent. Popping the last element deletes the key.
func (st *Store) LPopTx(tx *stm.Tx, now int64, key string) (string, bool, error) {
	return st.popTx(tx, now, key, true)
}

// RPopTx pops the back element of the list at key; see LPopTx.
func (st *Store) RPopTx(tx *stm.Tx, now int64, key string) (string, bool, error) {
	return st.popTx(tx, now, key, false)
}

func (st *Store) popTx(tx *stm.Tx, now int64, key string, front bool) (string, bool, error) {
	e, err := st.typedEntry(tx, now, key, kindList)
	if err != nil || e == nil {
		return "", false, err
	}
	var v string
	var ok bool
	if front {
		v, ok, err = e.list.PopFront(tx)
	} else {
		v, ok, err = e.list.PopBack(tx)
	}
	if err != nil || !ok {
		return "", false, err // empty lists are unrepresentable, but stay safe
	}
	capture(tx, wal.Op{Kind: wal.KindList, Key: key, Del: true, Front: front})
	n, err := e.list.Len(tx)
	if err != nil {
		return "", false, err
	}
	if n == 0 {
		if err := st.removeKeyTx(tx, now, key); err != nil {
			return "", false, err
		}
	}
	return v, true, nil
}

// LLenTx reports the length of the list at key (0 when absent) from
// the deque's end counters — no chain walk.
func (st *Store) LLenTx(tx *stm.Tx, now int64, key string) (int, error) {
	e, err := st.typedEntry(tx, now, key, kindList)
	if err != nil || e == nil {
		return 0, err
	}
	return e.list.Len(tx)
}

// LRangeTx returns the elements of the list at key between ranks
// start and stop inclusive, front = rank 0; negative ranks count from
// the back, Redis-style. A non-negative range walks only the prefix
// it needs.
func (st *Store) LRangeTx(tx *stm.Tx, now int64, key string, start, stop int) ([]string, error) {
	e, err := st.typedEntry(tx, now, key, kindList)
	if err != nil || e == nil {
		return nil, err
	}
	if start >= 0 && stop >= 0 {
		if stop < start {
			return nil, nil
		}
		items, err := e.list.PeekFrontN(tx, stop+1)
		if err != nil || start >= len(items) {
			return nil, err
		}
		return items[start:], nil
	}
	items, err := e.list.Items(tx)
	if err != nil {
		return nil, err
	}
	lo, hi, ok := rangeBounds(start, stop, len(items))
	if !ok {
		return nil, nil
	}
	return items[lo : hi+1], nil
}

// rangeBounds resolves a Redis-style inclusive rank range against
// length n (negatives count from the end); ok is false when the
// resolved range is empty.
func rangeBounds(start, stop, n int) (int, int, bool) {
	if start < 0 {
		start += n
		if start < 0 {
			start = 0
		}
	}
	if stop < 0 {
		stop += n
	}
	if stop >= n {
		stop = n - 1
	}
	if start >= n || stop < 0 || start > stop {
		return 0, 0, false
	}
	return start, stop, true
}

// LPush pushes vals onto the front in one atomic transaction.
func (st *Store) LPush(key string, vals ...string) (int, error) {
	return st.push(key, true, vals)
}

// RPush pushes vals onto the back in one atomic transaction.
func (st *Store) RPush(key string, vals ...string) (int, error) {
	return st.push(key, false, vals)
}

func (st *Store) push(key string, front bool, vals []string) (int, error) {
	var n int
	err := st.Atomically(func(tx *stm.Tx, now int64) error {
		var err error
		n, err = st.pushTx(tx, now, key, front, vals)
		return err
	})
	return n, err
}

// LPop pops the front element in one atomic transaction.
func (st *Store) LPop(key string) (string, bool, error) { return st.pop(key, true) }

// RPop pops the back element in one atomic transaction.
func (st *Store) RPop(key string) (string, bool, error) { return st.pop(key, false) }

func (st *Store) pop(key string, front bool) (string, bool, error) {
	var v string
	var ok bool
	err := st.Atomically(func(tx *stm.Tx, now int64) error {
		var err error
		v, ok, err = st.popTx(tx, now, key, front)
		return err
	})
	return v, ok, err
}

// LLen reports the list length in one atomic transaction.
func (st *Store) LLen(key string) (int, error) {
	now := st.now()
	return stm.Atomic(st.s, func(tx *stm.Tx) (int, error) {
		return st.LLenTx(tx, now, key)
	})
}

// LRange reads a rank range in one atomic transaction (see LRangeTx).
func (st *Store) LRange(key string, start, stop int) ([]string, error) {
	now := st.now()
	return stm.Atomic(st.s, func(tx *stm.Tx) ([]string, error) {
		return st.LRangeTx(tx, now, key, start, stop)
	})
}
