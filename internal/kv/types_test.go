package kv

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/wal"
)

// TestHashOps exercises the hash contract: create-on-write, field
// overwrite vs create, HGETALL completeness, HINCRBY arithmetic and
// errors, and auto-delete on the last HDEL.
func TestHashOps(t *testing.T) {
	st := New(stm.New())
	if created, err := st.HSet("h", "f1", "a"); err != nil || !created {
		t.Fatalf("HSet fresh = %v, %v; want true, nil", created, err)
	}
	if created, err := st.HSet("h", "f1", "b"); err != nil || created {
		t.Fatalf("HSet overwrite = %v, %v; want false, nil", created, err)
	}
	if v, ok, err := st.HGet("h", "f1"); err != nil || !ok || v != "b" {
		t.Fatalf("HGet = %q, %v, %v; want \"b\", true, nil", v, ok, err)
	}
	if _, ok, err := st.HGet("h", "nope"); err != nil || ok {
		t.Fatalf("HGet absent field = %v, %v; want false, nil", ok, err)
	}
	if _, ok, err := st.HGet("missing", "f"); err != nil || ok {
		t.Fatalf("HGet absent key = %v, %v; want false, nil", ok, err)
	}
	// Enough fields to force in-transaction table growth.
	for i := 0; i < 64; i++ {
		if _, err := st.HSet("h", fmt.Sprintf("k%02d", i), strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := st.HLen("h"); err != nil || n != 65 {
		t.Fatalf("HLen = %d, %v; want 65, nil", n, err)
	}
	pairs, err := st.HGetAll("h")
	if err != nil || len(pairs) != 65 {
		t.Fatalf("HGetAll = %d pairs, %v; want 65", len(pairs), err)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].K < pairs[j].K })
	if pairs[0].K != "f1" || pairs[0].V != "b" {
		t.Fatalf("HGetAll missing f1=b: %v", pairs[0])
	}
	if n, err := st.HIncr("h", "ctr", 5); err != nil || n != 5 {
		t.Fatalf("HIncr fresh = %d, %v; want 5, nil", n, err)
	}
	if n, err := st.HIncr("h", "ctr", -7); err != nil || n != -2 {
		t.Fatalf("HIncr = %d, %v; want -2, nil", n, err)
	}
	if _, err := st.HIncr("h", "f1", 1); !errors.Is(err, ErrNotInteger) {
		t.Fatalf("HIncr on non-integer = %v; want ErrNotInteger", err)
	}
	if n, err := st.HDel("h", "f1", "nope", "ctr"); err != nil || n != 2 {
		t.Fatalf("HDel = %d, %v; want 2, nil", n, err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Auto-delete: removing every field removes the key.
	names := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		names = append(names, fmt.Sprintf("k%02d", i))
	}
	if n, err := st.HDel("h", names...); err != nil || n != 64 {
		t.Fatalf("HDel all = %d, %v; want 64, nil", n, err)
	}
	if _, ok, err := st.Type("h"); err != nil || ok {
		t.Fatalf("Type after emptying hash = %v, %v; want absent", ok, err)
	}
	if n, err := st.Len(); err != nil || n != 0 {
		t.Fatalf("Len = %d, %v; want 0", n, err)
	}
}

// TestListOps exercises the list contract: push order at both ends,
// pop order, LRANGE rank semantics including negatives, and
// auto-delete on the last pop.
func TestListOps(t *testing.T) {
	st := New(stm.New())
	if n, err := st.RPush("l", "a", "b"); err != nil || n != 2 {
		t.Fatalf("RPush = %d, %v; want 2, nil", n, err)
	}
	if n, err := st.LPush("l", "c", "d"); err != nil || n != 4 {
		t.Fatalf("LPush = %d, %v; want 4, nil", n, err)
	}
	// LPUSH c then d: d is frontmost → d c a b
	want := []string{"d", "c", "a", "b"}
	if items, err := st.LRange("l", 0, -1); err != nil || fmt.Sprint(items) != fmt.Sprint(want) {
		t.Fatalf("LRange(0,-1) = %v, %v; want %v", items, err, want)
	}
	if items, err := st.LRange("l", 1, 2); err != nil || fmt.Sprint(items) != fmt.Sprint([]string{"c", "a"}) {
		t.Fatalf("LRange(1,2) = %v, %v; want [c a]", items, err)
	}
	if items, err := st.LRange("l", -2, -1); err != nil || fmt.Sprint(items) != fmt.Sprint([]string{"a", "b"}) {
		t.Fatalf("LRange(-2,-1) = %v, %v; want [a b]", items, err)
	}
	if items, err := st.LRange("l", 2, 1); err != nil || len(items) != 0 {
		t.Fatalf("LRange(2,1) = %v, %v; want empty", items, err)
	}
	if items, err := st.LRange("l", 0, 99); err != nil || len(items) != 4 {
		t.Fatalf("LRange(0,99) = %v, %v; want all 4", items, err)
	}
	if v, ok, err := st.LPop("l"); err != nil || !ok || v != "d" {
		t.Fatalf("LPop = %q, %v, %v; want \"d\"", v, ok, err)
	}
	if v, ok, err := st.RPop("l"); err != nil || !ok || v != "b" {
		t.Fatalf("RPop = %q, %v, %v; want \"b\"", v, ok, err)
	}
	if n, err := st.LLen("l"); err != nil || n != 2 {
		t.Fatalf("LLen = %d, %v; want 2", n, err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"c", "a"} {
		if v, ok, err := st.LPop("l"); err != nil || !ok || v != w {
			t.Fatalf("LPop = %q, %v, %v; want %q", v, ok, err, w)
		}
	}
	if _, ok, err := st.LPop("l"); err != nil || ok {
		t.Fatalf("LPop empty = %v, %v; want absent", ok, err)
	}
	if n, err := st.Len(); err != nil || n != 0 {
		t.Fatalf("list not auto-deleted: Len = %d, %v", n, err)
	}
}

// TestZSetOps exercises the sorted-set contract: score order with
// member tie-break, relocation on re-add, same-score no-op, negative
// and infinite scores, ZRANGE ranks, and auto-delete.
func TestZSetOps(t *testing.T) {
	st := New(stm.New())
	adds := []struct {
		member string
		score  float64
	}{
		{"b", 2}, {"a", 2}, {"neg", -1.5}, {"inf", math.Inf(1)}, {"lo", math.Inf(-1)}, {"z", 0.25},
	}
	for _, ad := range adds {
		if added, err := st.ZAdd("zs", ad.member, ad.score); err != nil || !added {
			t.Fatalf("ZAdd(%q) = %v, %v; want true, nil", ad.member, added, err)
		}
	}
	if _, err := st.ZAdd("zs", "nan", math.NaN()); !errors.Is(err, ErrNotFloat) {
		t.Fatalf("ZAdd NaN = %v; want ErrNotFloat", err)
	}
	if added, err := st.ZAdd("zs", "a", 2); err != nil || added {
		t.Fatalf("ZAdd same score = %v, %v; want false, nil", added, err)
	}
	entries, err := st.ZRange("zs", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	order := make([]string, len(entries))
	for i, e := range entries {
		order[i] = e.Member
	}
	want := []string{"lo", "neg", "z", "a", "b", "inf"} // ties (a,b @2) by member
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("ZRange order = %v, want %v", order, want)
	}
	if s, ok, err := st.ZScore("zs", "neg"); err != nil || !ok || s != -1.5 {
		t.Fatalf("ZScore(neg) = %v, %v, %v; want -1.5", s, ok, err)
	}
	// Relocate: a moves past b.
	if added, err := st.ZAdd("zs", "a", 3); err != nil || added {
		t.Fatalf("ZAdd relocate = %v, %v; want false, nil", added, err)
	}
	entries, _ = st.ZRange("zs", 3, 4)
	if len(entries) != 2 || entries[0].Member != "b" || entries[1].Member != "a" {
		t.Fatalf("ZRange(3,4) after relocate = %v; want [b a]", entries)
	}
	if n, err := st.ZCard("zs"); err != nil || n != 6 {
		t.Fatalf("ZCard = %d, %v; want 6", n, err)
	}
	// -0 and +0 are the same score: re-adding z at -0 is a no-op.
	if added, err := st.ZAdd("zs", "z", math.Copysign(0, -1)); err != nil {
		t.Fatal(err)
	} else if added {
		t.Fatal("ZAdd(-0) after 0.25: added = true, want relocate")
	}
	if s, ok, _ := st.ZScore("zs", "z"); !ok || s != 0 || math.Signbit(s) {
		t.Fatalf("ZScore(z) = %v; want +0", s)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n, err := st.ZRem("zs", "a", "ghost", "b"); err != nil || n != 2 {
		t.Fatalf("ZRem = %d, %v; want 2", n, err)
	}
	if n, err := st.ZRem("zs", "lo", "neg", "z", "inf"); err != nil || n != 4 {
		t.Fatalf("ZRem rest = %d, %v; want 4", n, err)
	}
	if n, err := st.Len(); err != nil || n != 0 {
		t.Fatalf("zset not auto-deleted: Len = %d, %v", n, err)
	}
}

// TestWrongTypeSemantics pins the Redis type matrix: typed commands
// against a key of another kind fail with ErrWrongType, SET overwrites
// anything, MGet reads container keys as absent, DEL/TYPE/EXPIRE/TTL
// are kind-agnostic.
func TestWrongTypeSemantics(t *testing.T) {
	clk := &fakeClock{}
	st := New(stm.New(), WithClock(clk.now))
	if err := st.Set("s", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.HSet("s", "f", "v"); !errors.Is(err, ErrWrongType) {
		t.Fatalf("HSet on string = %v; want ErrWrongType", err)
	}
	if _, err := st.LPush("s", "v"); !errors.Is(err, ErrWrongType) {
		t.Fatalf("LPush on string = %v; want ErrWrongType", err)
	}
	if _, err := st.ZAdd("s", "m", 1); !errors.Is(err, ErrWrongType) {
		t.Fatalf("ZAdd on string = %v; want ErrWrongType", err)
	}
	if _, err := st.HSet("s", "f", "v"); !errors.Is(err, ErrWrongType) {
		t.Fatalf("HSet on string = %v; want ErrWrongType", err)
	}
	if _, err := st.RPush("l", "x"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get("l"); !errors.Is(err, ErrWrongType) {
		t.Fatalf("Get on list = %v; want ErrWrongType", err)
	}
	if _, err := st.Incr("l", 1); !errors.Is(err, ErrWrongType) {
		t.Fatalf("Incr on list = %v; want ErrWrongType", err)
	}
	if _, _, err := st.HGet("l", "f"); !errors.Is(err, ErrWrongType) {
		t.Fatalf("HGet on list = %v; want ErrWrongType", err)
	}
	if _, err := st.ZCard("l"); !errors.Is(err, ErrWrongType) {
		t.Fatalf("ZCard on list = %v; want ErrWrongType", err)
	}
	// MGet never errors on type: the list key reads as absent.
	vals, present, err := st.MGet("s", "l", "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if !present[0] || vals[0] != "v" || present[1] || present[2] {
		t.Fatalf("MGet = %v %v; want [v absent absent]", vals, present)
	}
	// TYPE names every kind.
	if _, err := st.HSet("h", "f", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ZAdd("zs", "m", 1); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"s": "string", "l": "list", "h": "hash", "zs": "zset"} {
		if typ, ok, err := st.Type(key); err != nil || !ok || typ != want {
			t.Fatalf("Type(%s) = %q, %v, %v; want %q", key, typ, ok, err, want)
		}
	}
	// SET overwrites any kind, Redis-style.
	if err := st.Set("l", "now a string"); err != nil {
		t.Fatal(err)
	}
	if typ, _, _ := st.Type("l"); typ != "string" {
		t.Fatalf("Type after SET over list = %q; want string", typ)
	}
	// EXPIRE/TTL attach to the whole key whatever its kind.
	if ok, err := st.Expire("h", time.Second); err != nil || !ok {
		t.Fatalf("Expire on hash = %v, %v; want true, nil", ok, err)
	}
	if d, ok, err := st.TTL("h"); err != nil || !ok || d <= 0 {
		t.Fatalf("TTL on hash = %v, %v, %v; want positive", d, ok, err)
	}
	clk.advance(2 * time.Second)
	if _, ok, _ := st.HGet("h", "f"); ok {
		t.Fatal("hash field readable after whole-key expiry")
	}
	if typ, ok, _ := st.Type("h"); ok {
		t.Fatalf("Type of expired hash = %q; want absent", typ)
	}
	// DEL removes containers whole.
	if n, err := st.Del("zs"); err != nil || n != 1 {
		t.Fatalf("Del(zs) = %d, %v; want 1", n, err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossTypeConservation is the satellite's conservation hammer: N
// promoter goroutines move jobs from a list through a zset into a
// done-hash — each move one transaction spanning all three containers
// — while a concurrent auditor repeatedly takes consistent snapshots
// asserting the invariant: every job is in exactly one place and the
// total never changes.
func TestCrossTypeConservation(t *testing.T) {
	const (
		jobs      = 120
		promoters = 8
		auditors  = 2
	)
	s := stm.New(stm.WithManagerFactory(core.MustFactory("greedy")), stm.WithInterleavePeriod(4))
	st := New(s, WithShards(4), WithBuckets(2))
	for i := 0; i < jobs; i++ {
		if _, err := st.RPush("pending", fmt.Sprintf("job-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	audit := func() (int, error) {
		total := 0
		err := st.Atomically(func(tx *stm.Tx, now int64) error {
			// Sum in a per-attempt local, capture whole (txpure).
			sum, err := st.LLenTx(tx, now, "pending")
			if err != nil {
				return err
			}
			n, err := st.ZCardTx(tx, now, "active")
			if errors.Is(err, ErrWrongType) {
				return fmt.Errorf("active key has wrong type")
			}
			if err != nil {
				return err
			}
			sum += n
			done, err := st.HGetAllTx(tx, now, "done")
			if err != nil {
				return err
			}
			total = sum + len(done)
			return nil
		})
		return total, err
	}
	var wg sync.WaitGroup
	errs := make([]error, promoters+auditors)
	stop := make(chan struct{})
	for g := 0; g < promoters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g)+1, 7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Draw the op choice and score before the transaction:
				// a retry replays the same decision (txpure).
				promote := rng.Int64N(2) == 0
				score := float64(rng.Int64N(100))
				err := st.Atomically(func(tx *stm.Tx, now int64) error {
					// Promote: pending list → active zset, or complete:
					// active zset → done hash. Either way one transaction
					// touches two containers.
					if promote {
						job, ok, err := st.LPopTx(tx, now, "pending")
						if err != nil || !ok {
							return err
						}
						_, err = st.ZAddTx(tx, now, "active", job, score)
						return err
					}
					entries, err := st.ZRangeTx(tx, now, "active", 0, 0)
					if err != nil || len(entries) == 0 {
						return err
					}
					if _, err := st.ZRemTx(tx, now, "active", entries[0].Member); err != nil {
						return err
					}
					_, err = st.HSetTx(tx, now, "done", entries[0].Member, "1")
					return err
				})
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	for a := 0; a < auditors; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				total, err := audit()
				if err != nil {
					errs[promoters+a] = err
					return
				}
				if total != jobs {
					errs[promoters+a] = fmt.Errorf("consistent snapshot counted %d jobs, want %d", total, jobs)
					return
				}
			}
		}(a)
	}
	// Let the storm run until every job is done or a tripwire fires.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		n, err := st.HLen("done")
		if err != nil {
			break
		}
		bad := false
		for _, e := range errs {
			if e != nil {
				bad = true
			}
		}
		if n == jobs || bad {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	total, err := audit()
	if err != nil || total != jobs {
		t.Fatalf("final audit = %d, %v; want %d", total, err, jobs)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTypedWALRoundTrip writes every value kind (with a TTL on one
// container), crashes without a clean close, recovers into a fresh
// store, and requires exact state equality via canonical snapshots —
// the unit-level version of the crash smoke's acceptance criterion.
func TestTypedWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{}
	clk.advance(time.Hour)
	st := New(stm.New(), WithClock(clk.now))
	l := openTestWAL(t, dir)
	st.AttachWAL(l)

	if err := st.Set("plain", "v"); err != nil {
		t.Fatal(err)
	}
	if err := st.SetTTL("leased", "x", time.Hour); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := st.HSet("h", fmt.Sprintf("f%d", i), strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.HDel("h", "f3"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.RPush("l", "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LPush("l", "front"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.RPop("l"); err != nil {
		t.Fatal(err)
	}
	for i, m := range []string{"x", "y", "z"} {
		if _, err := st.ZAdd("zs", m, float64(i)*1.5-1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.ZAdd("zs", "x", 99); err != nil { // relocate
		t.Fatal(err)
	}
	if _, err := st.ZRem("zs", "y"); err != nil {
		t.Fatal(err)
	}
	if ok, err := st.Expire("zs", time.Hour); err != nil || !ok {
		t.Fatalf("Expire(zs) = %v, %v", ok, err)
	}
	// A container created then fully drained must stay absent after
	// replay (auto-delete replays through the same code path).
	if _, err := st.RPush("ghost", "only"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.LPop("ghost"); err != nil {
		t.Fatal(err)
	}

	want, err := st.SnapshotOps()
	if err != nil {
		t.Fatal(err)
	}
	// Crash: no clean close; reopen the directory and replay.
	fresh := New(stm.New(), WithClock(clk.now))
	if _, err := wal.Recover(dir, fresh.Apply); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.SnapshotOps()
	if err != nil {
		t.Fatal(err)
	}
	wantS, gotS := sortOps(want), sortOps(got)
	if len(wantS) != len(gotS) {
		t.Fatalf("restored %d ops, want %d\n got: %+v\nwant: %+v", len(gotS), len(wantS), gotS, wantS)
	}
	for i := range wantS {
		if wantS[i] != gotS[i] {
			t.Fatalf("op %d differs:\n got: %+v\nwant: %+v", i, gotS[i], wantS[i])
		}
	}
	if _, ok, _ := fresh.Type("ghost"); ok {
		t.Fatal("drained list resurrected by replay")
	}
	if typ, ok, _ := fresh.Type("zs"); !ok || typ != "zset" {
		t.Fatalf("zset lost: %q, %v", typ, ok)
	}
	if d, ok, _ := fresh.TTL("zs"); !ok || d <= 0 {
		t.Fatalf("zset TTL lost: %v, %v", d, ok)
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	l.Close()
}
