package stm_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stm"
)

// aggressiveManager is a minimal test manager: always abort the enemy.
type aggressiveManager struct{ stm.BaseManager }

func (aggressiveManager) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	return stm.AbortOther
}

// politeManager is a minimal test manager: always wait (with a yield).
type politeManager struct{ stm.BaseManager }

func (politeManager) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	stm.Backoff(1)
	return stm.Wait
}

// suicidalManager aborts itself on every conflict.
type suicidalManager struct{ stm.BaseManager }

func (suicidalManager) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	return stm.AbortSelf
}

func newCounterWorld(t *testing.T) (*stm.STM, *stm.Var[int]) {
	t.Helper()
	s := stm.New()
	return s, stm.NewVar(0)
}

func counterValue(t *testing.T, counter *stm.Var[int]) int {
	t.Helper()
	return counter.Peek()
}

func incr(tx *stm.Tx, counter *stm.Var[int]) error {
	return stm.Update(tx, counter, func(v int) int { return v + 1 })
}

func TestCommitMakesWriteVisible(t *testing.T) {
	s, obj := newCounterWorld(t)
	th := s.NewThread(aggressiveManager{})
	if err := th.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) }); err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if got := counterValue(t, obj); got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
}

func TestUserErrorAbortsAndPropagates(t *testing.T) {
	s, obj := newCounterWorld(t)
	th := s.NewThread(aggressiveManager{})
	boom := errors.New("boom")
	err := th.Atomically(func(tx *stm.Tx) error {
		if err := incr(tx, obj); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got := counterValue(t, obj); got != 0 {
		t.Fatalf("counter = %d after user error, want 0 (write must not commit)", got)
	}
}

func TestReadOwnWrite(t *testing.T) {
	s, obj := newCounterWorld(t)
	th := s.NewThread(aggressiveManager{})
	err := th.Atomically(func(tx *stm.Tx) error {
		if err := incr(tx, obj); err != nil {
			return err
		}
		got, err := stm.Read(tx, obj)
		if err != nil {
			return err
		}
		if got != 1 {
			return fmt.Errorf("read own write saw %d, want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedReadIsStable(t *testing.T) {
	s, obj := newCounterWorld(t)
	reader := s.NewThread(politeManager{})
	writer := s.NewThread(aggressiveManager{})

	interfered := false
	err := reader.Atomically(func(tx *stm.Tx) error {
		v1, err := stm.Read(tx, obj)
		if err != nil {
			return err
		}
		// A conflicting commit from another thread between the two
		// reads must not produce two different versions within one
		// attempt: the repeated read returns the recorded version and
		// the stale read set then aborts the commit. Interfere on the
		// first attempt only, so the retry can commit.
		if !interfered {
			interfered = true
			done := make(chan error, 1)
			go func() {
				done <- writer.Atomically(func(wtx *stm.Tx) error { return incr(wtx, obj) })
			}()
			if err := <-done; err != nil {
				return fmt.Errorf("writer: %w", err)
			}
		}
		v2, err := stm.Read(tx, obj)
		if err != nil {
			return err
		}
		if v1 != v2 {
			return fmt.Errorf("repeated read changed values within a transaction (%d then %d)", v1, v2)
		}
		return nil
	})
	// The reader may abort-and-retry (its read set is stale on commit);
	// it must terminate with a consistent view either way.
	if err != nil {
		t.Fatal(err)
	}
}

func TestAbortSelfRetriesAndCommits(t *testing.T) {
	s, obj := newCounterWorld(t)

	// Hold the object with a parked transaction, then let a suicidal
	// manager clash with it: it should abort itself, retry, and
	// eventually commit after the blocker finishes.
	blocker := s.NewThread(politeManager{})
	held := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = blocker.Atomically(func(tx *stm.Tx) error {
			if err := incr(tx, obj); err != nil {
				return err
			}
			close(held)
			<-release
			return nil
		})
	}()
	<-held

	kamikaze := s.NewThread(suicidalManager{})
	done := make(chan error, 1)
	var attempts atomic.Int64
	go func() {
		done <- kamikaze.Atomically(func(tx *stm.Tx) error {
			attempts.Add(1)
			return incr(tx, obj)
		})
	}()

	// Hold the blocker until the kamikaze has demonstrably clashed
	// with it at least once (a second attempt implies a self-abort).
	for attempts.Load() < 2 {
		runtime.Gosched()
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("suicidal thread: %v", err)
	}
	wg.Wait()
	if got := counterValue(t, obj); got != 2 {
		t.Fatalf("counter = %d, want 2", got)
	}
	if aborts := kamikaze.Stats().Aborts; aborts == 0 {
		t.Fatalf("suicidal thread recorded no aborts; expected at least one")
	}
}

func TestEnemyAbortForcesRetry(t *testing.T) {
	s, obj := newCounterWorld(t)

	victimTh := s.NewThread(politeManager{})
	held := make(chan struct{})
	proceed := make(chan struct{})
	var victimErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		victimErr = victimTh.Atomically(func(tx *stm.Tx) error {
			if err := incr(tx, obj); err != nil {
				return err
			}
			if first {
				first = false
				close(held)
				<-proceed
			}
			return nil
		})
	}()
	<-held

	// The aggressor kills the victim and commits.
	aggressor := s.NewThread(aggressiveManager{})
	if err := aggressor.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) }); err != nil {
		t.Fatalf("aggressor: %v", err)
	}
	close(proceed)
	wg.Wait()
	if victimErr != nil {
		t.Fatalf("victim: %v", victimErr)
	}
	if got := counterValue(t, obj); got != 2 {
		t.Fatalf("counter = %d, want 2 (victim must retry after enemy abort)", got)
	}
	if victimTh.Stats().Aborts == 0 {
		t.Fatalf("victim recorded no aborts")
	}
}

func TestTimestampRetainedAcrossRetries(t *testing.T) {
	s, obj := newCounterWorld(t)

	victimTh := s.NewThread(politeManager{})
	var stamps []uint64
	held := make(chan struct{})
	proceed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		_ = victimTh.Atomically(func(tx *stm.Tx) error {
			stamps = append(stamps, tx.Timestamp())
			if err := incr(tx, obj); err != nil {
				return err
			}
			if first {
				first = false
				close(held)
				<-proceed
			}
			return nil
		})
	}()
	<-held
	aggressor := s.NewThread(aggressiveManager{})
	if err := aggressor.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) }); err != nil {
		t.Fatalf("aggressor: %v", err)
	}
	close(proceed)
	wg.Wait()

	if len(stamps) < 2 {
		t.Fatalf("victim ran %d attempts, want at least 2", len(stamps))
	}
	for i, ts := range stamps[1:] {
		if ts != stamps[0] {
			t.Fatalf("attempt %d has timestamp %d, want %d (timestamps must be retained across retries)", i+1, ts, stamps[0])
		}
	}
}

func TestHaltedTransactionObstructsUntilAborted(t *testing.T) {
	s, obj := newCounterWorld(t)

	// A transaction halts (crashes) while holding the object.
	crasher := s.NewThread(politeManager{})
	err := crasher.Atomically(func(tx *stm.Tx) error {
		if err := incr(tx, obj); err != nil {
			return err
		}
		tx.Halt()
		_, err := stm.Read(tx, obj) // any further access reports the halt
		return err
	})
	if !errors.Is(err, stm.ErrHalted) {
		t.Fatalf("crasher err = %v, want ErrHalted", err)
	}
	if got := counterValue(t, obj); got != 0 {
		t.Fatalf("counter = %d, want 0 (halted tx is still active, its write uncommitted)", got)
	}

	// An aggressive enemy can abort the corpse and proceed.
	rescuer := s.NewThread(aggressiveManager{})
	if err := rescuer.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) }); err != nil {
		t.Fatalf("rescuer: %v", err)
	}
	if got := counterValue(t, obj); got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s, obj := newCounterWorld(t)
	th := s.NewThread(aggressiveManager{})
	for i := 0; i < 10; i++ {
		if err := th.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) }); err != nil {
			t.Fatal(err)
		}
	}
	st := th.Stats()
	if st.Commits != 10 {
		t.Fatalf("Commits = %d, want 10", st.Commits)
	}
	if st.Opens != 10 {
		t.Fatalf("Opens = %d, want 10", st.Opens)
	}
	total := s.TotalStats()
	if total.Commits != 10 {
		t.Fatalf("TotalStats().Commits = %d, want 10", total.Commits)
	}
}

func TestPeekOutsideTransaction(t *testing.T) {
	v := stm.NewVar("hello")
	if got := v.Peek(); got != "hello" {
		t.Fatalf("Peek = %q, want %q", got, "hello")
	}
}

func TestNilInitialValue(t *testing.T) {
	s := stm.New()
	obj := stm.NewTObj(nil)
	th := s.NewThread(aggressiveManager{})
	err := th.Atomically(func(tx *stm.Tx) error {
		v, err := tx.OpenRead(obj)
		if err != nil {
			return err
		}
		if v != nil {
			return fmt.Errorf("initial read = %v, want nil", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if obj.Peek() != nil {
		t.Fatalf("Peek after nil init = %v, want nil", obj.Peek())
	}
}
