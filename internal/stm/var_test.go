package stm_test

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/stm"
)

// TestVarRoundTrip drives a Var[T] through the full typed surface for
// a few payload shapes: initial value, Read, Write, Update, Peek.
func TestVarRoundTrip(t *testing.T) {
	s := stm.New()
	th := s.NewThread(politeManager{})

	num := stm.NewVar(41)
	str := stm.NewVar("a")
	type point struct{ X, Y int }
	pt := stm.NewVar(point{X: 1, Y: 2})

	err := th.Atomically(func(tx *stm.Tx) error {
		n, err := stm.Read(tx, num)
		if err != nil {
			return err
		}
		if n != 41 {
			t.Errorf("Read(num) = %d, want 41", n)
		}
		if err := stm.Update(tx, num, func(v int) int { return v + 1 }); err != nil {
			return err
		}
		// Reads after writes see the private version.
		if n, err = stm.Read(tx, num); err != nil {
			return err
		}
		if n != 42 {
			t.Errorf("read-own-write = %d, want 42", n)
		}
		if err := stm.Write(tx, str, "b"); err != nil {
			return err
		}
		return stm.Update(tx, pt, func(p point) point { p.Y = 9; return p })
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := num.Peek(); got != 42 {
		t.Errorf("num.Peek() = %d, want 42", got)
	}
	if got := str.Peek(); got != "b" {
		t.Errorf("str.Peek() = %q, want %q", got, "b")
	}
	if got := pt.Peek(); got != (point{X: 1, Y: 9}) {
		t.Errorf("pt.Peek() = %+v", got)
	}
}

// TestVarZeroValue checks that a Var created from a zero T reads back
// the zero value, for value and pointer-bearing payloads alike.
func TestVarZeroValue(t *testing.T) {
	s := stm.New()
	th := s.NewThread(politeManager{})
	type rec struct {
		N    int
		Next *stm.Var[int]
	}
	vi := stm.NewVar(0)
	vs := stm.NewVar("")
	vr := stm.NewVar(rec{})
	err := th.Atomically(func(tx *stm.Tx) error {
		n, err := stm.Read(tx, vi)
		if err != nil {
			return err
		}
		str, err := stm.Read(tx, vs)
		if err != nil {
			return err
		}
		r, err := stm.Read(tx, vr)
		if err != nil {
			return err
		}
		if n != 0 || str != "" || r != (rec{}) {
			t.Errorf("zero-value reads = (%d, %q, %+v)", n, str, r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if vi.Peek() != 0 || vs.Peek() != "" || vr.Peek() != (rec{}) {
		t.Error("zero-value Peek disagrees")
	}
}

// TestVarAbortDiscardsWrites: a user error aborts the transaction and
// the typed writes never become visible.
func TestVarAbortDiscardsWrites(t *testing.T) {
	s := stm.New()
	th := s.NewThread(politeManager{})
	v := stm.NewVar(7)
	boom := func(tx *stm.Tx) error {
		if err := stm.Write(tx, v, 99); err != nil {
			return err
		}
		return errTestBoom
	}
	if err := th.Atomically(boom); err != errTestBoom {
		t.Fatalf("Atomically = %v, want errTestBoom", err)
	}
	if got := v.Peek(); got != 7 {
		t.Fatalf("aborted write visible: %d", got)
	}
}

var errTestBoom = errTestError("boom")

type errTestError string

func (e errTestError) Error() string { return string(e) }

// TestVarUpdateContentionAllManagers runs the shared-counter workload
// through stm.Update under 8-way contention for every manager in the
// registry: no increment may be lost or duplicated under any policy.
func TestVarUpdateContentionAllManagers(t *testing.T) {
	const workers, perWorker = 8, 100
	for _, name := range core.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			factory, err := core.Factory(name)
			if err != nil {
				t.Fatal(err)
			}
			s := stm.New(stm.WithInterleavePeriod(2), stm.WithManagerFactory(factory))
			counter := stm.NewVar(0)
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						err := s.Atomically(func(tx *stm.Tx) error {
							return stm.Update(tx, counter, func(v int) int { return v + 1 })
						})
						if err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if got := counter.Peek(); got != workers*perWorker {
				t.Fatalf("counter = %d, want %d (manager %s lost increments)", got, workers*perWorker, name)
			}
		})
	}
}

// TestVarClonerIsolation: with a Cloner installed, a writer's in-place
// mutation of indirect state is invisible to concurrent readers and to
// the committed version until commit; without one, the test documents
// that the shallow copy aliases the slice.
func TestVarClonerIsolation(t *testing.T) {
	s := stm.New()
	th := s.NewThread(politeManager{})
	deep := stm.NewVarCloner([]int{1, 2, 3}, func(sl []int) []int {
		c := make([]int, len(sl))
		copy(c, sl)
		return c
	})

	// Mutate in place inside a transaction that then aborts: the
	// committed slice must be untouched.
	err := th.Atomically(func(tx *stm.Tx) error {
		if err := stm.Update(tx, deep, func(sl []int) []int {
			sl[0] = 100
			return sl
		}); err != nil {
			return err
		}
		return errTestBoom
	})
	if err != errTestBoom {
		t.Fatalf("Atomically = %v", err)
	}
	if got := deep.Peek()[0]; got != 1 {
		t.Fatalf("aborted in-place mutation leaked through Cloner: %d", got)
	}

	// The same mutation in a committing transaction takes effect.
	if err := th.Atomically(func(tx *stm.Tx) error {
		return stm.Update(tx, deep, func(sl []int) []int {
			sl[0] = 100
			return sl
		})
	}); err != nil {
		t.Fatal(err)
	}
	if got := deep.Peek()[0]; got != 100 {
		t.Fatalf("committed mutation lost: %d", got)
	}
}

// TestVarNamedAndObj covers the debugging surface: names flow through
// String, and Obj exposes the same underlying slot the engine sees.
func TestVarNamedAndObj(t *testing.T) {
	v := stm.NewNamedVar("account", 5)
	if got := v.String(); got != "tobj(account)" {
		t.Errorf("String() = %q", got)
	}
	anon := stm.NewVar(5)
	if !strings.HasPrefix(anon.String(), "tobj(0x") {
		t.Errorf("anonymous String() = %q", anon.String())
	}
	if v.Obj() == nil || v.Obj() != v.Obj() {
		t.Error("Obj() must return a stable handle")
	}
	// The untyped view and the typed view are the same slot.
	s := stm.New()
	th := s.NewThread(politeManager{})
	if err := th.Atomically(func(tx *stm.Tx) error {
		return stm.Update(tx, v, func(n int) int { return n + 1 })
	}); err != nil {
		t.Fatal(err)
	}
	if v.Obj().Peek() == nil {
		t.Error("untyped Peek through Obj() lost the committed version")
	}
	if got := v.Peek(); got != 6 {
		t.Errorf("Peek = %d, want 6", got)
	}
}

// TestVarLazyMode: the typed facade composes with commit-time conflict
// detection unchanged.
func TestVarLazyMode(t *testing.T) {
	s := stm.New(stm.WithLazyConflicts())
	th := s.NewThread(politeManager{})
	v := stm.NewVar(0)
	for i := 0; i < 5; i++ {
		if err := th.Atomically(func(tx *stm.Tx) error {
			return stm.Update(tx, v, func(n int) int { return n + 1 })
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.Peek(); got != 5 {
		t.Fatalf("lazy counter = %d, want 5", got)
	}
}

// TestTypedFacadeAllocParity is the enforceable form of the
// zero-overhead claim (BenchmarkTypedVsUntyped is its observable
// counterpart): an stm.Update transaction may not allocate more than
// the equivalent raw OpenWrite transaction. CI runs this test, so a
// facade change that adds a per-transaction allocation fails the
// build rather than silently regressing.
func TestTypedFacadeAllocParity(t *testing.T) {
	worldT := stm.New()
	typed := stm.NewVar(0)
	thT := worldT.NewThread(politeManager{})
	typedAllocs := testing.AllocsPerRun(500, func() {
		if err := thT.Atomically(func(tx *stm.Tx) error {
			return stm.Update(tx, typed, func(v int) int { return v + 1 })
		}); err != nil {
			t.Fatal(err)
		}
	})

	worldU := stm.New()
	untyped := stm.NewTObj(stm.NewBox[int](0))
	thU := worldU.NewThread(politeManager{})
	untypedAllocs := testing.AllocsPerRun(500, func() {
		if err := thU.Atomically(func(tx *stm.Tx) error {
			v, err := tx.OpenWrite(untyped)
			if err != nil {
				return err
			}
			v.(*stm.Box[int]).V++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})

	if typedAllocs > untypedAllocs {
		t.Fatalf("typed facade allocates more than the untyped engine: %.1f vs %.1f allocs per transaction", typedAllocs, untypedAllocs)
	}
}

// TestWriteClonesNewValueOnly pins Write's fast path: replacing the
// whole value clones x exactly once (isolation from the caller's
// value) and never deep-copies the pre-image it is about to discard.
func TestWriteClonesNewValueOnly(t *testing.T) {
	s := stm.New()
	th := s.NewThread(politeManager{})
	clones := 0
	v := stm.NewVarCloner([]int{1, 2}, func(sl []int) []int {
		clones++
		c := make([]int, len(sl))
		copy(c, sl)
		return c
	})
	clones = 0 // discount the constructor's clone of the initial value
	if err := th.Atomically(func(tx *stm.Tx) error {
		return stm.Write(tx, v, []int{9})
	}); err != nil {
		t.Fatal(err)
	}
	if clones != 1 {
		t.Fatalf("Write invoked the Cloner %d times, want exactly 1 (of x, not of the discarded pre-image)", clones)
	}
	if got := v.Peek(); len(got) != 1 || got[0] != 9 {
		t.Fatalf("Peek = %v, want [9]", got)
	}
	if err := th.Atomically(func(tx *stm.Tx) error {
		return stm.Update(tx, v, func(sl []int) []int { sl[0]++; return sl })
	}); err != nil {
		t.Fatal(err)
	}
	if clones != 2 {
		t.Fatalf("Update invoked the Cloner %d more times, want 1 (total 2, got %d)", clones-1, clones)
	}
	if got := v.Peek(); got[0] != 10 {
		t.Fatalf("Peek after Update = %v, want [10]", got)
	}
}

// TestWriteDoesNotAliasCaller: the committed and private versions must
// never alias the value the caller passed to Write. Without the
// Cloner copy of x, the in-transaction Update would mutate the
// caller's slice, so a retry after an enemy abort would replay the
// transaction against corrupted input — and external mutation of the
// slice after commit would corrupt the committed version.
func TestWriteDoesNotAliasCaller(t *testing.T) {
	s := stm.New()
	th := s.NewThread(politeManager{})
	deepCopy := func(sl []int) []int {
		c := make([]int, len(sl))
		copy(c, sl)
		return c
	}
	v := stm.NewVarCloner([]int{0}, deepCopy)
	shared := []int{0}
	if err := th.Atomically(func(tx *stm.Tx) error {
		if err := stm.Write(tx, v, shared); err != nil {
			return err
		}
		// Mutates the transaction's private copy — must not reach
		// `shared`, or a retry of this function would see [1].
		return stm.Update(tx, v, func(sl []int) []int { sl[0]++; return sl })
	}); err != nil {
		t.Fatal(err)
	}
	if shared[0] != 0 {
		t.Fatalf("transactional Update mutated the caller's slice: %v", shared)
	}
	if got := v.Peek(); got[0] != 1 {
		t.Fatalf("Peek = %v, want [1]", got)
	}
	shared[0] = 99
	if got := v.Peek(); got[0] != 1 {
		t.Fatalf("committed version aliases the caller's slice: Peek = %v after external mutation", got)
	}
}

// TestNewVarClonerDoesNotAliasInitial: the initial committed version
// must be a deep copy of the constructor argument, for the same
// reason Write clones x.
func TestNewVarClonerDoesNotAliasInitial(t *testing.T) {
	initial := []int{1, 2, 3}
	v := stm.NewVarCloner(initial, func(sl []int) []int {
		c := make([]int, len(sl))
		copy(c, sl)
		return c
	})
	initial[0] = 99
	if got := v.Peek(); got[0] != 1 {
		t.Fatalf("initial committed version aliases the constructor argument: Peek = %v", got)
	}
}
