package stm

import "errors"

// ErrAborted is returned by OpenRead, OpenWrite and Commit when the
// calling transaction has been aborted, either by an enemy transaction
// through its contention manager or by failed read-set validation.
// Transactional functions must propagate it so that Atomically can
// retry the transaction; wrapping it with fmt.Errorf("...: %w", err)
// is fine, Atomically unwraps with errors.Is.
var ErrAborted = errors.New("stm: transaction aborted")

// ErrHalted is returned when a transaction has been halted by failure
// injection (see Tx.Halt). A halted transaction never commits and never
// retries; it models the crashed thread of the paper's Section 6
// failure discussion.
var ErrHalted = errors.New("stm: transaction halted (failure injection)")
