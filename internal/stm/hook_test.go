package stm

import (
	"errors"
	"sync"
	"testing"
)

// TestOnCommitFiresOnceOnCommit pins the hook's basic contract: it
// runs exactly once, only when the attempt commits.
func TestOnCommitFiresOnceOnCommit(t *testing.T) {
	s := New()
	v := NewVar(0)
	fired := 0
	err := s.Atomically(func(tx *Tx) error {
		tx.OnCommit(func() { fired++ })
		return Write(tx, v, 1)
	})
	if err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
}

// TestOnCommitSkippedOnUserError checks that a user-error abort never
// fires the hook, and that the hook does not leak into a later
// transaction on the same pooled session.
func TestOnCommitSkippedOnUserError(t *testing.T) {
	s := New()
	v := NewVar(0)
	boom := errors.New("boom")
	fired := 0
	if err := s.Atomically(func(tx *Tx) error {
		tx.OnCommit(func() { fired++ })
		if err := Write(tx, v, 1); err != nil {
			return err
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if fired != 0 {
		t.Fatalf("hook fired on aborted transaction")
	}
	// The next transaction on the (recycled) session must not inherit
	// the hook or the local slot.
	if err := s.Atomically(func(tx *Tx) error {
		if got := tx.Local(); got != nil {
			t.Errorf("stale local slot %v", got)
		}
		return Write(tx, v, 2)
	}); err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if fired != 0 {
		t.Fatalf("stale hook fired on a later transaction")
	}
}

// TestOnCommitClearedAcrossRetries forces one enemy-inflicted retry
// (via the test-only commit hook) and checks the transactional
// function saw a clean local slot on the retry, and the commit hook
// fired exactly once overall.
func TestOnCommitClearedAcrossRetries(t *testing.T) {
	var s *STM
	v := NewVar(0)
	poisoned := false
	s = New(WithCommitHook(func() {
		// Invalidate the first committing attempt once by committing
		// an overlapping write from a fresh goroutine-free path: abort
		// the attempt directly instead, which is simpler and exercises
		// the same retry machinery.
		if !poisoned {
			poisoned = true
			if tx := currentCommitting(s); tx != nil {
				tx.Abort()
			}
		}
	}))
	fired := 0
	attempts := 0
	err := s.Atomically(func(tx *Tx) error {
		attempts++
		if got := tx.Local(); got != nil {
			t.Errorf("attempt %d: stale local slot %v", attempts, got)
		}
		tx.SetLocal(attempts)
		tx.OnCommit(func() { fired++ })
		x, err := Read(tx, v)
		if err != nil {
			return err
		}
		return Write(tx, v, x+1)
	})
	if err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if attempts < 2 {
		t.Fatalf("expected a retry, got %d attempt(s)", attempts)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times across retries, want 1", fired)
	}
}

// currentCommitting finds the session currently inside a commit, for
// the retry test above. With one transaction in flight there is at
// most one candidate.
func currentCommitting(s *STM) *Tx {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.sessions {
		if tx := sess.current.Load(); tx != nil {
			return tx
		}
	}
	return nil
}

// TestOnCommitOrderPerObject is the ordering guarantee the WAL rests
// on: hooks of writers that touched the same object fire in commit
// order. Each committed increment records the value it installed;
// the record must come out strictly increasing.
func TestOnCommitOrderPerObject(t *testing.T) {
	s := New()
	v := NewVar(0)
	var mu sync.Mutex
	var order []int

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_ = s.Atomically(func(tx *Tx) error {
					// Read-then-write keeps the read set non-empty, so
					// the commit takes the striped (ordered) path.
					x, err := Read(tx, v)
					if err != nil {
						return err
					}
					if err := Write(tx, v, x+1); err != nil {
						return err
					}
					tx.OnCommit(func() {
						mu.Lock()
						order = append(order, x+1)
						mu.Unlock()
					})
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if len(order) != goroutines*perG {
		t.Fatalf("recorded %d commits, want %d", len(order), goroutines*perG)
	}
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1]+1 {
			t.Fatalf("hook order broken at %d: %d then %d", i, order[i-1], order[i])
		}
	}
	if got := v.Peek(); got != goroutines*perG {
		t.Fatalf("final value %d, want %d", got, goroutines*perG)
	}
}
