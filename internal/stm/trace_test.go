package stm_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/stm"
)

// recordingSink captures every delivered transaction, copying the
// event slice as the TraceSink contract requires (the session reuses
// it). Safe for concurrent TxDone calls.
type recordingSink struct {
	mu     sync.Mutex
	sums   []stm.TxSummary
	events [][]stm.TraceEvent
}

func (r *recordingSink) TxDone(sum stm.TxSummary, events []stm.TraceEvent) {
	cp := make([]stm.TraceEvent, len(events))
	copy(cp, events)
	r.mu.Lock()
	r.sums = append(r.sums, sum)
	r.events = append(r.events, cp)
	r.mu.Unlock()
}

func (r *recordingSink) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sums)
}

// TestAbortCausePartition is the per-cause accounting invariant under
// real contention: 64 goroutines hammering one counter — with a
// sprinkle of non-retryable user errors — across both conflict modes
// and every figure manager. Whatever the managers decide,
// AbortsEnemy+AbortsValidation+AbortsCASRace must equal Aborts exactly
// (each retried attempt charged to exactly one cause), and user errors
// must land in AbortsUser without polluting the partition. The run
// also keeps a sampling tracer installed so the recorder's hook sites
// are exercised by the race detector alongside the counters.
func TestAbortCausePartition(t *testing.T) {
	errPoison := errors.New("poison")
	const goroutines = 64
	perG := 50
	if testing.Short() {
		perG = 25
	}
	modes := []struct {
		name string
		opts []stm.Option
	}{
		{name: "eager"},
		{name: "lazy", opts: []stm.Option{stm.WithLazyConflicts()}},
	}
	for _, mode := range modes {
		for _, mgr := range core.FigureManagers {
			t.Run(mode.name+"/"+mgr, func(t *testing.T) {
				factory, err := core.Factory(mgr)
				if err != nil {
					t.Fatal(err)
				}
				sink := &recordingSink{}
				opts := append([]stm.Option{
					stm.WithManagerFactory(factory),
					stm.WithTracer(sink, 2),
				}, mode.opts...)
				world := stm.New(opts...)
				counter := stm.NewNamedVar("hammer:counter", 0)

				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < perG; i++ {
							if i%10 == 9 {
								// A non-retryable user error: surfaces
								// to the caller, counts in AbortsUser.
								if err := world.Atomically(func(tx *stm.Tx) error {
									if _, err := stm.Read(tx, counter); err != nil {
										return err
									}
									return errPoison
								}); !errors.Is(err, errPoison) {
									t.Errorf("poison tx returned %v", err)
									return
								}
								continue
							}
							if err := world.Atomically(func(tx *stm.Tx) error {
								return stm.Update(tx, counter, func(n int) int { return n + 1 })
							}); err != nil {
								t.Errorf("increment: %v", err)
								return
							}
						}
					}()
				}
				wg.Wait()

				want := goroutines * (perG - perG/10)
				if got := counter.Peek(); got != want {
					t.Fatalf("counter = %d, want %d", got, want)
				}
				total := world.TotalStats()
				if sum := total.AbortsEnemy + total.AbortsValidation + total.AbortsCASRace; sum != total.Aborts {
					t.Fatalf("cause partition broken: enemy %d + validation %d + cas %d = %d, want Aborts %d",
						total.AbortsEnemy, total.AbortsValidation, total.AbortsCASRace, sum, total.Aborts)
				}
				if want := int64(goroutines * (perG / 10)); total.AbortsUser != want {
					t.Fatalf("AbortsUser = %d, want %d", total.AbortsUser, want)
				}
				if sink.len() == 0 {
					t.Fatal("tracer sampled nothing across the whole hammer")
				}
			})
		}
	}
}

// TestTracerSamplingCadence pins the 1-in-N contract on a single
// session: with sampleEvery 3, nine sequential transactions deliver
// exactly three traces, and each trace carries the begin/open/commit
// skeleton, the transaction's label, and a correct summary.
func TestTracerSamplingCadence(t *testing.T) {
	sink := &recordingSink{}
	world := stm.New(stm.WithTracer(sink, 3))
	v := stm.NewNamedVar("cadence:var", 0)
	lbl := stm.InternLabel("cadence")
	for i := 0; i < 9; i++ {
		if err := world.Atomically(func(tx *stm.Tx) error {
			tx.SetLabel(lbl)
			return stm.Update(tx, v, func(n int) int { return n + 1 })
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sink.len(); got != 3 {
		t.Fatalf("sampled %d transactions, want 3 (1 in 3 of 9)", got)
	}
	for i, sum := range sink.sums {
		if !sum.Committed || sum.Cause != stm.CauseNone || sum.Attempts != 1 {
			t.Fatalf("trace %d summary = %+v, want committed first-try", i, sum)
		}
		if sum.Label != "cadence" {
			t.Fatalf("trace %d label = %q, want %q", i, sum.Label, "cadence")
		}
		kinds := map[stm.TraceKind]int{}
		for _, ev := range sink.events[i] {
			kinds[ev.Kind]++
			if ev.Kind == stm.TraceOpen {
				if ev.Obj != "cadence:var" || !ev.Write {
					t.Fatalf("trace %d open event = %+v, want named write open", i, ev)
				}
			}
		}
		if kinds[stm.TraceBegin] != 1 || kinds[stm.TraceOpen] != 1 || kinds[stm.TraceCommit] != 1 {
			t.Fatalf("trace %d event kinds = %v, want one begin/open/commit", i, kinds)
		}
	}
}

// TestTracerUserErrorAndTee: a transaction that dies on a user error
// is delivered uncommitted with CauseUserError, and Tee fans the same
// delivery to every sink in order.
func TestTracerUserErrorAndTee(t *testing.T) {
	errBad := errors.New("bad")
	a, b := &recordingSink{}, &recordingSink{}
	world := stm.New(stm.WithTracer(stm.Tee(a, b), 1))
	v := stm.NewVar(0)
	if err := world.Atomically(func(tx *stm.Tx) error {
		if _, err := stm.Read(tx, v); err != nil {
			return err
		}
		return errBad
	}); !errors.Is(err, errBad) {
		t.Fatalf("Atomically = %v, want errBad", err)
	}
	for name, sink := range map[string]*recordingSink{"a": a, "b": b} {
		if sink.len() != 1 {
			t.Fatalf("sink %s received %d traces, want 1", name, sink.len())
		}
		sum := sink.sums[0]
		if sum.Committed || sum.Cause != stm.CauseUserError || sum.Attempts != 1 {
			t.Fatalf("sink %s summary = %+v, want uncommitted user-error", name, sum)
		}
		last := sink.events[0][len(sink.events[0])-1]
		if last.Kind != stm.TraceAbort || last.Cause != stm.CauseUserError {
			t.Fatalf("sink %s last event = %+v, want user-error abort", name, last)
		}
	}
}

// TestTraceStrings pins the wire names: ABORTLOG entries and the
// /debug/stm/conflicts exposition print these exact strings.
func TestTraceStrings(t *testing.T) {
	causes := map[stm.AbortCause]string{
		stm.CauseNone:       "none",
		stm.CauseEnemyAbort: "enemy-abort",
		stm.CauseValidation: "validation",
		stm.CauseCASRace:    "cas-race",
		stm.CauseUserError:  "user-error",
	}
	for c, want := range causes {
		if got := c.String(); got != want {
			t.Fatalf("AbortCause(%d).String() = %q, want %q", c, got, want)
		}
	}
	kinds := map[stm.TraceKind]string{
		stm.TraceBegin:    "begin",
		stm.TraceOpen:     "open",
		stm.TraceConflict: "conflict",
		stm.TraceAbort:    "abort",
		stm.TraceCommit:   "commit",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Fatalf("TraceKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := stm.InternLabel("trace:roundtrip").String(); got != "trace:roundtrip" {
		t.Fatalf("InternLabel round-trip = %q", got)
	}
}

// TestTracerDisabledAllocParity is the enforceable form of the
// recorder's zero-overhead claim (BenchmarkTracerOverhead is the
// observable counterpart): a pooled transaction on an STM with no
// tracer, and one on an STM whose tracer never samples, must allocate
// exactly as much as each other — the hook sites are nil checks, not
// allocation sites. CI runs this test, so a recorder change that adds
// a disabled-path allocation fails the build.
func TestTracerDisabledAllocParity(t *testing.T) {
	measure := func(world *stm.STM) float64 {
		v := stm.NewVar(0)
		return testing.AllocsPerRun(500, func() {
			if err := world.Atomically(func(tx *stm.Tx) error {
				return stm.Update(tx, v, func(n int) int { return n + 1 })
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	off := measure(stm.New())
	// Installed but effectively never sampling: every hook site takes
	// its disabled branch, exactly like the off world.
	unsampled := measure(stm.New(stm.WithTracer(&recordingSink{}, 1<<30)))
	if off != unsampled {
		t.Fatalf("tracer installation changed the unsampled path: %.1f allocs without tracer, %.1f with", off, unsampled)
	}
	t.Logf("pooled Atomically: %.1f allocs/tx (tracer off and unsampled)", off)
}

// nullSink drops everything — the benchmark sink, so the measured cost
// is recording, not aggregation.
type nullSink struct{}

func (nullSink) TxDone(stm.TxSummary, []stm.TraceEvent) {}

// BenchmarkTracerOverhead measures the flight recorder's cost tiers on
// the pooled single-counter workload: disabled (no tracer — the
// default everything else in the repo runs), installed-but-unsampled
// (the 1-in-N miss path), and sampled-always (the worst case: every
// transaction records and delivers). The first two must be
// indistinguishable; the third prices what -txtrace 1 costs.
func BenchmarkTracerOverhead(b *testing.B) {
	cases := []struct {
		name string
		opts []stm.Option
	}{
		{name: "disabled"},
		{name: "unsampled", opts: []stm.Option{stm.WithTracer(nullSink{}, 1<<30)}},
		{name: "sampled-always", opts: []stm.Option{stm.WithTracer(nullSink{}, 1)}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			world := stm.New(tc.opts...)
			v := stm.NewNamedVar("bench:counter", 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := world.Atomically(func(tx *stm.Tx) error {
					return stm.Update(tx, v, func(n int) int { return n + 1 })
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if got := v.Peek(); got != b.N {
				b.Fatalf("counter = %d, want %d", got, b.N)
			}
		})
	}
}
