package stm

import (
	"runtime"
	"time"
)

// Decision is a contention manager's verdict on a conflict.
type Decision int32

const (
	// Wait tells the STM to re-examine the object: the manager has
	// already performed whatever waiting or backoff its policy calls
	// for before returning.
	Wait Decision = iota
	// AbortOther tells the STM to abort the enemy transaction.
	AbortOther
	// AbortSelf tells the STM to abort the calling transaction. Used by
	// managers that prefer suicide to waiting (none of the classical
	// managers do, but the interface supports it for experimentation).
	AbortSelf
)

// String returns the conventional name of the decision.
func (d Decision) String() string {
	switch d {
	case Wait:
		return "wait"
	case AbortOther:
		return "abort-other"
	case AbortSelf:
		return "abort-self"
	default:
		return "invalid"
	}
}

// Manager is the contention-manager interface, the module the paper
// holds responsible for progress. One Manager instance serves one
// session — a pinned Thread or a pooled STM.Atomically session —
// mirroring the per-thread managers of DSTM and SXM: managers are
// highly decentralized and decide conflicts by comparing only the
// two transactions' public states (timestamp, status, waiting flag,
// priority), never by coordinating with third parties.
//
// ResolveConflict is called when transaction me is about to open an
// object that enemy, a distinct active transaction, has open for
// writing. The manager may block inside ResolveConflict (that is what
// "waiting" means); it should poll enemy.Status and me.Status while it
// does, and it must eventually return in the model where transaction
// delays are finite. Whatever it returns, the STM re-reads the object
// and, if the conflict persists, asks again.
//
// The notification methods (Begin, Opened, Committed, Aborted) let
// managers such as Karma and Eruption maintain priority estimates.
// They are called from the goroutine running the owning session only.
type Manager interface {
	// Begin is called when an attempt of a logical transaction starts,
	// including each retry after an abort.
	Begin(tx *Tx)
	// Opened is called after tx successfully opens an object; write
	// reports whether the open was for writing.
	Opened(tx *Tx, write bool)
	// ResolveConflict decides what to do about an open-time conflict
	// between me (the caller's transaction) and enemy (an active
	// transaction holding the object).
	ResolveConflict(me, enemy *Tx) Decision
	// Committed is called after tx commits.
	Committed(tx *Tx)
	// Aborted is called after an attempt of tx aborts, before the retry
	// (if any) begins.
	Aborted(tx *Tx)
}

// ManagerFactory constructs a fresh Manager instance. The STM calls it
// once per pooled session (see WithManagerFactory); benchmarks that
// pin Threads call it once per worker. Managers stay as decentralized
// as the paper requires either way: one instance per concurrent
// transaction stream, no coordination between instances.
type ManagerFactory func() Manager

// Factory is the former name of ManagerFactory, kept as an alias for
// compatibility.
type Factory = ManagerFactory

// defaultManager backs STM.Atomically when no WithManagerFactory is
// configured: wait politely with growing backoff, but give up on an
// enemy after a bounded number of rounds and abort it, so a halted or
// descheduled enemy cannot obstruct forever. The registry managers in
// internal/core implement the paper's actual policies; this one only
// has to be safe and live for casual use of the pooled API.
type defaultManager struct {
	BaseManager
	spin int
}

// Opened implements Manager: a successful open ends the conflict
// episode, so patience resets.
func (m *defaultManager) Opened(*Tx, bool) { m.spin = 0 }

// ResolveConflict implements bounded politeness.
func (m *defaultManager) ResolveConflict(me, enemy *Tx) Decision {
	if enemy.Halted() {
		return AbortOther
	}
	if m.spin++; m.spin > 48 {
		m.spin = 0
		return AbortOther
	}
	Backoff(m.spin)
	return Wait
}

// BaseManager is a no-op implementation of the notification methods of
// Manager, for embedding in managers that only care about
// ResolveConflict.
type BaseManager struct{}

// Begin implements Manager.
func (BaseManager) Begin(*Tx) {}

// Opened implements Manager.
func (BaseManager) Opened(*Tx, bool) {}

// Committed implements Manager.
func (BaseManager) Committed(*Tx) {}

// Aborted implements Manager.
func (BaseManager) Aborted(*Tx) {}

// Backoff yields the processor and, past the first few spins, sleeps
// for short, linearly growing intervals. It is the waiting primitive
// shared by the contention managers; spin is the number of times the
// caller has already backed off in the current episode.
//
// On a single-CPU host a pure spin loop would starve the enemy
// transaction of the processor, so yielding is load-bearing here, not
// just polite.
func Backoff(spin int) {
	switch {
	case spin < 4:
		runtime.Gosched()
	case spin < 16:
		time.Sleep(time.Duration(spin) * time.Microsecond)
	case spin < 4096:
		time.Sleep(16 * time.Microsecond)
	default:
		// A very long wait (for example on a halted enemy) should not
		// burn the processor the live transactions need.
		time.Sleep(time.Millisecond)
	}
}
