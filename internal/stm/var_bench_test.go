package stm_test

import (
	"testing"

	"repro/internal/stm"
)

// BenchmarkTypedVsUntyped holds the typed facade to its zero-overhead
// claim on the shared-counter workload: stm.Update[int] against a raw
// OpenWrite plus type assertion on a Box[int]. Both paths must show
// identical allocation counts — the typed wrapper may add nothing
// beyond the one clone the engine already performs per open-for-write.
// (This benchmark lives inside internal/stm because the untyped leg is
// exactly the assertion style the typed API removes from the rest of
// the repo.)
func BenchmarkTypedVsUntyped(b *testing.B) {
	b.Run("typed-update", func(b *testing.B) {
		world := stm.New()
		counter := stm.NewVar(0)
		th := world.NewThread(politeManager{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := th.Atomically(func(tx *stm.Tx) error {
				return stm.Update(tx, counter, func(v int) int { return v + 1 })
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := counter.Peek(); got != b.N {
			b.Fatalf("counter = %d, want %d", got, b.N)
		}
	})
	b.Run("untyped-openwrite", func(b *testing.B) {
		world := stm.New()
		counter := stm.NewTObj(stm.NewBox[int](0))
		th := world.NewThread(politeManager{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := th.Atomically(func(tx *stm.Tx) error {
				v, err := tx.OpenWrite(counter)
				if err != nil {
					return err
				}
				v.(*stm.Box[int]).V++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := counter.Peek().(*stm.Box[int]).V; got != b.N {
			b.Fatalf("counter = %d, want %d", got, b.N)
		}
	})
}

// BenchmarkTypedRead measures the typed read path (no allocations in
// the facade: Read returns the payload by value).
func BenchmarkTypedRead(b *testing.B) {
	world := stm.New()
	vars := make([]*stm.Var[int], 16)
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	th := world.NewThread(politeManager{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Atomically(func(tx *stm.Tx) error {
			sum := 0
			for _, v := range vars {
				n, err := stm.Read(tx, v)
				if err != nil {
					return err
				}
				sum += n
			}
			if sum != 120 {
				b.Errorf("sum = %d", sum)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
