package stm_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stm"
)

// BenchmarkTypedVsUntyped holds the typed facade to its zero-overhead
// claim on the shared-counter workload: stm.Update[int] against a raw
// OpenWrite plus type assertion on a Box[int]. Both paths must show
// identical allocation counts — the typed wrapper may add nothing
// beyond the one clone the engine already performs per open-for-write.
// (This benchmark lives inside internal/stm because the untyped leg is
// exactly the assertion style the typed API removes from the rest of
// the repo.)
func BenchmarkTypedVsUntyped(b *testing.B) {
	b.Run("typed-update", func(b *testing.B) {
		world := stm.New()
		counter := stm.NewVar(0)
		th := world.NewThread(politeManager{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := th.Atomically(func(tx *stm.Tx) error {
				return stm.Update(tx, counter, func(v int) int { return v + 1 })
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := counter.Peek(); got != b.N {
			b.Fatalf("counter = %d, want %d", got, b.N)
		}
	})
	b.Run("untyped-openwrite", func(b *testing.B) {
		world := stm.New()
		counter := stm.NewTObj(stm.NewBox[int](0))
		th := world.NewThread(politeManager{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := th.Atomically(func(tx *stm.Tx) error {
				v, err := tx.OpenWrite(counter)
				if err != nil {
					return err
				}
				v.(*stm.Box[int]).V++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := counter.Peek().(*stm.Box[int]).V; got != b.N {
			b.Fatalf("counter = %d, want %d", got, b.N)
		}
	})
}

// BenchmarkPooledAtomically drives the goroutine-agnostic surface from
// 64 goroutines over one pooled STM — the serving-shape workload the
// redesign targets (a goroutine per request, not pinned workers). Two
// flavours: "disjoint" gives each goroutine its own counter (measures
// the pool and session plumbing under parallelism, no data conflicts);
// "shared" has all 64 hammer one counter (measures the full conflict
// path at maximal contention).
func BenchmarkPooledAtomically(b *testing.B) {
	const goroutines = 64
	run := func(b *testing.B, vars []*stm.Var[int]) {
		b.Helper()
		world := stm.New(stm.WithManagerFactory(func() stm.Manager { return politeManager{} }))
		var next atomic.Int64
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		b.ReportAllocs()
		b.ResetTimer()
		for g := 0; g < goroutines; g++ {
			v := vars[g%len(vars)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for next.Add(1) <= int64(b.N) {
					if err := world.Atomically(func(tx *stm.Tx) error {
						return stm.Update(tx, v, func(n int) int { return n + 1 })
					}); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		b.StopTimer()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
		sum := 0
		for _, v := range vars {
			sum += v.Peek()
		}
		if sum != b.N {
			b.Fatalf("sum of counters = %d, want %d", sum, b.N)
		}
	}
	b.Run("disjoint", func(b *testing.B) {
		vars := make([]*stm.Var[int], goroutines)
		for i := range vars {
			vars[i] = stm.NewVar(0)
		}
		run(b, vars)
	})
	b.Run("shared", func(b *testing.B) {
		run(b, []*stm.Var[int]{stm.NewVar(0)})
	})
}

// BenchmarkTypedRead measures the typed read path on the pooled
// surface: with descriptor and read-set recycling, a steady-state
// read-only transaction performs zero heap allocations.
func BenchmarkTypedRead(b *testing.B) {
	world := stm.New(stm.WithManagerFactory(func() stm.Manager { return politeManager{} }))
	vars := make([]*stm.Var[int], 16)
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := world.Atomically(func(tx *stm.Tx) error {
			sum := 0
			for _, v := range vars {
				n, err := stm.Read(tx, v)
				if err != nil {
					return err
				}
				sum += n
			}
			if sum != 120 {
				b.Errorf("sum = %d", sum)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
