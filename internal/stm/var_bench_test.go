package stm_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stm"
)

// runGoroutines spreads b.N operations across g goroutines (each op
// receives its worker index) and reports allocations. Shared by the
// concurrent benchmark points below.
func runGoroutines(b *testing.B, g int, op func(w int) error) {
	b.Helper()
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, g)
	b.ReportAllocs()
	b.ResetTimer()
	for w := 0; w < g; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if err := op(w); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
}

// BenchmarkTypedVsUntyped holds the typed facade to its zero-overhead
// claim on the shared-counter workload: stm.Update[int] against a raw
// OpenWrite plus type assertion on a Box[int]. Both paths must show
// identical allocation counts — the typed wrapper may add nothing
// beyond the one clone the engine already performs per open-for-write.
// (This benchmark lives inside internal/stm because the untyped leg is
// exactly the assertion style the typed API removes from the rest of
// the repo.) The g64/g128 sub-benchmarks run the same comparison from
// 64 and 128 goroutines over disjoint counters on the pooled surface,
// checking that neither facade diverges once the striped commit
// protocol lets writers commit in parallel.
func BenchmarkTypedVsUntyped(b *testing.B) {
	for _, g := range []int{64, 128} {
		g := g
		b.Run(fmt.Sprintf("typed-update/g%d", g), func(b *testing.B) {
			world := stm.New(stm.WithManagerFactory(func() stm.Manager { return politeManager{} }))
			vars := make([]*stm.Var[int], g)
			for i := range vars {
				vars[i] = stm.NewVar(0)
			}
			runGoroutines(b, g, func(w int) error {
				return world.Atomically(func(tx *stm.Tx) error {
					return stm.Update(tx, vars[w], func(v int) int { return v + 1 })
				})
			})
			b.StopTimer()
			sum := 0
			for _, v := range vars {
				sum += v.Peek()
			}
			if sum != b.N {
				b.Fatalf("sum of counters = %d, want %d", sum, b.N)
			}
		})
		b.Run(fmt.Sprintf("untyped-openwrite/g%d", g), func(b *testing.B) {
			world := stm.New(stm.WithManagerFactory(func() stm.Manager { return politeManager{} }))
			objs := make([]*stm.TObj, g)
			for i := range objs {
				objs[i] = stm.NewTObj(stm.NewBox[int](0))
			}
			runGoroutines(b, g, func(w int) error {
				return world.Atomically(func(tx *stm.Tx) error {
					v, err := tx.OpenWrite(objs[w])
					if err != nil {
						return err
					}
					v.(*stm.Box[int]).V++
					return nil
				})
			})
			b.StopTimer()
			sum := 0
			for _, o := range objs {
				sum += o.Peek().(*stm.Box[int]).V
			}
			if sum != b.N {
				b.Fatalf("sum of counters = %d, want %d", sum, b.N)
			}
		})
	}
	b.Run("typed-update", func(b *testing.B) {
		world := stm.New()
		counter := stm.NewVar(0)
		th := world.NewThread(politeManager{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := th.Atomically(func(tx *stm.Tx) error {
				return stm.Update(tx, counter, func(v int) int { return v + 1 })
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := counter.Peek(); got != b.N {
			b.Fatalf("counter = %d, want %d", got, b.N)
		}
	})
	b.Run("untyped-openwrite", func(b *testing.B) {
		world := stm.New()
		counter := stm.NewTObj(stm.NewBox[int](0))
		th := world.NewThread(politeManager{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := th.Atomically(func(tx *stm.Tx) error {
				v, err := tx.OpenWrite(counter)
				if err != nil {
					return err
				}
				v.(*stm.Box[int]).V++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := counter.Peek().(*stm.Box[int]).V; got != b.N {
			b.Fatalf("counter = %d, want %d", got, b.N)
		}
	})
}

// BenchmarkPooledAtomically drives the goroutine-agnostic surface over
// one pooled STM — the serving-shape workload the session redesign
// targets (a goroutine per request, not pinned workers) — at 64 and
// 128 goroutines, the range past the paper's 32-thread sweeps that the
// striped commit protocol opens up. Two flavours per width: "disjoint"
// gives each goroutine its own counter (writer commits land on
// distinct stripes and proceed in parallel — the scaling case the old
// global commit lock serialized); "shared" has every goroutine hammer
// one counter (the full conflict path at maximal contention).
func BenchmarkPooledAtomically(b *testing.B) {
	run := func(b *testing.B, goroutines int, vars []*stm.Var[int]) {
		b.Helper()
		world := stm.New(stm.WithManagerFactory(func() stm.Manager { return politeManager{} }))
		runGoroutines(b, goroutines, func(w int) error {
			v := vars[w%len(vars)]
			return world.Atomically(func(tx *stm.Tx) error {
				return stm.Update(tx, v, func(n int) int { return n + 1 })
			})
		})
		b.StopTimer()
		sum := 0
		for _, v := range vars {
			sum += v.Peek()
		}
		if sum != b.N {
			b.Fatalf("sum of counters = %d, want %d", sum, b.N)
		}
	}
	for _, g := range []int{64, 128} {
		g := g
		b.Run(fmt.Sprintf("disjoint/g%d", g), func(b *testing.B) {
			vars := make([]*stm.Var[int], g)
			for i := range vars {
				vars[i] = stm.NewVar(0)
			}
			run(b, g, vars)
		})
		b.Run(fmt.Sprintf("shared/g%d", g), func(b *testing.B) {
			run(b, g, []*stm.Var[int]{stm.NewVar(0)})
		})
	}
}

// BenchmarkTypedRead measures the typed read path on the pooled
// surface: with descriptor and read-set recycling, a steady-state
// read-only transaction performs zero heap allocations.
func BenchmarkTypedRead(b *testing.B) {
	world := stm.New(stm.WithManagerFactory(func() stm.Manager { return politeManager{} }))
	vars := make([]*stm.Var[int], 16)
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := world.Atomically(func(tx *stm.Tx) error {
			sum := 0
			for _, v := range vars {
				n, err := stm.Read(tx, v)
				if err != nil {
					return err
				}
				sum += n
			}
			if sum != 120 {
				b.Errorf("sum = %d", sum)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
