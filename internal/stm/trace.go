package stm

import (
	"context"
	rtrace "runtime/trace"
	"sync"
	"sync/atomic"
)

// The transaction flight recorder: a sampled, per-session event trace
// of everything the contention-management protocol decides — which
// object a transaction opened, which enemy it fought, what the manager
// ruled, how long it waited, and why each attempt died. The paper's
// whole subject is which transaction a manager sacrifices and why;
// aggregate counters (Stats) can show *that* karma collapses under
// Figure 10's convoy, but only the recorder can name the hot object
// and the aggressor→victim edge behind it.
//
// The design follows the Tx.OnCommit pattern: every hook site is a
// single owner-private pointer nil check (tx.sess.rec), so with
// tracing disabled the engine pays one predictable branch per site and
// allocates nothing — the parity the tracer-disabled benchmarks gate.
// With tracing enabled, sampling (1 in every N logical transactions
// per session) bounds the cost further; the event buffer is owned by
// the session and reused across sampled transactions, so sinks must
// copy what they keep.

// AbortCause classifies why an attempt aborted. Exactly one of the
// non-user causes is charged per counted abort, so
// AbortsEnemy+AbortsValidation+AbortsCASRace always equals Aborts.
type AbortCause uint8

const (
	// CauseNone marks an attempt that did not abort (or has not yet).
	CauseNone AbortCause = iota
	// CauseEnemyAbort: an enemy's contention manager aborted this
	// transaction (observed at the next step check), or this
	// transaction's own manager ruled AbortSelf in a conflict.
	CauseEnemyAbort
	// CauseValidation: read-set validation failed — a committed writer
	// invalidated a version this attempt had observed.
	CauseValidation
	// CauseCASRace: the commit status CAS lost — an enemy aborted the
	// transaction inside the commit window, after validation passed.
	CauseCASRace
	// CauseUserError: the transactional function returned a
	// non-retryable error. Counted in Stats.AbortsUser, not in
	// Stats.Aborts (which has always counted only retried attempts).
	CauseUserError
)

// String names the cause the way ABORTLOG and /debug/stm/conflicts
// print it.
func (c AbortCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseEnemyAbort:
		return "enemy-abort"
	case CauseValidation:
		return "validation"
	case CauseCASRace:
		return "cas-race"
	case CauseUserError:
		return "user-error"
	}
	return "invalid"
}

// TraceKind is the kind of one recorded event.
type TraceKind uint8

const (
	// TraceBegin opens an attempt (Attempt numbers from 1).
	TraceBegin TraceKind = iota
	// TraceOpen records an object acquisition (Obj, Stripe, Write).
	TraceOpen
	// TraceConflict records one contention-manager consultation (Obj,
	// Enemy, Decision, Ns = time inside ResolveConflict).
	TraceConflict
	// TraceAbort closes an attempt that died (Cause).
	TraceAbort
	// TraceCommit closes the attempt that committed (Ns = wall time of
	// the whole logical transaction, retries included).
	TraceCommit
)

// String names the event kind.
func (k TraceKind) String() string {
	switch k {
	case TraceBegin:
		return "begin"
	case TraceOpen:
		return "open"
	case TraceConflict:
		return "conflict"
	case TraceAbort:
		return "abort"
	case TraceCommit:
		return "commit"
	}
	return "invalid"
}

// TraceEvent is one recorded step of a sampled logical transaction.
// The slice handed to TraceSink.TxDone is reused by the session; sinks
// must copy events they retain.
type TraceEvent struct {
	Kind     TraceKind
	Attempt  int32      // attempt number, from 1
	Obj      string     // open/conflict: the object's NewNamedVar label ("" if unnamed)
	Stripe   uint32     // open/conflict: the object's commit stripe
	Write    bool       // open: write (vs read) acquisition
	Enemy    string     // conflict: the enemy transaction's label ("" if unlabelled)
	Decision Decision   // conflict: the manager's ruling
	Ns       int64      // conflict: ns inside ResolveConflict; commit: whole-tx latency ns
	Cause    AbortCause // abort: why the attempt died
}

// TxSummary condenses one sampled logical transaction for sinks that
// aggregate rather than replay.
type TxSummary struct {
	// Label is the transaction's SetLabel label ("" if unlabelled).
	Label string
	// Committed reports whether the logical transaction committed.
	Committed bool
	// Cause is the final attempt's abort cause: CauseNone for a
	// transaction that committed first try, otherwise the cause of the
	// last abort (for committed transactions, the abort that forced
	// the final retry).
	Cause AbortCause
	// Attempts is the number of attempts executed (1 = first-try).
	Attempts int64
	// LatNs is the wall time of the whole logical transaction.
	LatNs int64
	// WaitNs is the total time spent inside ResolveConflict across
	// every attempt.
	WaitNs int64
}

// TraceSink receives sampled transactions. TxDone runs on the
// transaction's own goroutine immediately after the logical
// transaction ends — after commit stripes are released, so a sink
// cannot deadlock the commit protocol, but still on the session's hot
// path: implementations must be fast, must not block, and must not run
// transactions themselves (stmlint's hookreentry enforces the latter).
// The events slice is reused by the session; copy to retain.
type TraceSink interface {
	TxDone(sum TxSummary, events []TraceEvent)
}

// Tee fans one trace stream out to several sinks, in order.
func Tee(sinks ...TraceSink) TraceSink { return teeSink(sinks) }

type teeSink []TraceSink

func (t teeSink) TxDone(sum TxSummary, events []TraceEvent) {
	for _, s := range t {
		s.TxDone(sum, events)
	}
}

// tracerConfig is the STM's installed tracer: a sink plus the
// per-session sampling period.
type tracerConfig struct {
	sink  TraceSink
	every uint32
}

// WithTracer installs sink as the STM's flight recorder, sampling one
// in every sampleEvery logical transactions per session (values < 1
// record every transaction). The disabled path — no WithTracer — costs
// one nil check per hook site; see the package benchmarks.
func WithTracer(sink TraceSink, sampleEvery int) Option {
	return func(s *STM) {
		if sink == nil {
			return
		}
		every := uint32(1)
		if sampleEvery > 1 {
			every = uint32(sampleEvery)
		}
		s.tracer = &tracerConfig{sink: sink, every: every}
	}
}

// WithRuntimeTrace emits a runtime/trace task per logical transaction
// and a region per attempt (plus abort-cause log events) whenever Go
// execution tracing is active, so `go tool trace` shows attempt
// lifecycles interleaved with scheduling. Emission is gated on
// trace.IsEnabled(), so outside a trace collection the cost is one
// boolean check per transaction.
func WithRuntimeTrace() Option {
	return func(s *STM) { s.rtrace = true }
}

// Labels. Transactions are labelled with interned strings so that the
// hot paths (an enemy reading its victim's label, a retry resetting
// state) touch only a uint32. The intern table is append-only and
// process-wide: labels are created at setup time (a kv server interns
// its command names once; the harness interns its operation verbs), so
// an unbounded-cardinality caller would be misusing it.
var (
	labelMu    sync.Mutex
	labelTable atomic.Pointer[[]string]
	labelIDs   = map[string]uint32{}
)

// Label is an interned transaction label. The zero Label is "".
type Label struct{ id uint32 }

// InternLabel interns name and returns its Label. Interning the same
// name twice returns the same Label; intern at setup time, not per
// transaction.
func InternLabel(name string) Label {
	if name == "" {
		return Label{}
	}
	labelMu.Lock()
	defer labelMu.Unlock()
	if id, ok := labelIDs[name]; ok {
		return Label{id: id}
	}
	var cur []string
	if p := labelTable.Load(); p != nil {
		cur = *p
	}
	neu := make([]string, len(cur)+1)
	copy(neu, cur)
	neu[len(cur)] = name
	id := uint32(len(neu)) // ids from 1; 0 is ""
	labelIDs[name] = id
	labelTable.Store(&neu)
	return Label{id: id}
}

// String returns the interned name.
func (l Label) String() string { return labelName(l.id) }

// labelName resolves an interned id, tolerating 0 (unlabelled).
func labelName(id uint32) string {
	if id == 0 {
		return ""
	}
	p := labelTable.Load()
	if p == nil || int(id) > len(*p) {
		return ""
	}
	return (*p)[id-1]
}

// SetLabel labels the logical transaction for the flight recorder:
// conflict events name the enemy by its label, and aggregation sinks
// key on it. The label survives retries (it lives on the shared
// record) and is cleared when the next logical transaction reuses the
// record. Call it early in the transactional function — conflicts
// recorded before the call see the previous value (empty at worst),
// which sampling-grade diagnostics tolerate.
func (tx *Tx) SetLabel(l Label) { tx.shared.label.Store(l.id) }

// Label returns the transaction's label ("" if unlabelled). Safe to
// call on an enemy transaction.
func (tx *Tx) Label() string { return labelName(tx.shared.label.Load()) }

// WaitNs returns the total nanoseconds this logical transaction has
// spent inside ResolveConflict so far, across all attempts. Layers
// above the engine use it to tell contention victims from genuinely
// slow work (the kv SLOWLOG records it per command).
func (tx *Tx) WaitNs() int64 { return tx.shared.waitNs.Load() }

// maxTraceEvents bounds one sampled transaction's event buffer, so a
// pathological convoy (thousands of conflict rounds) cannot grow the
// session's buffer without bound; events beyond the cap are dropped
// and the summary's counters remain exact.
const maxTraceEvents = 512

// txRecorder is a session's reusable recording state for the one
// sampled transaction currently running on it (sess.rec non-nil marks
// a sampled transaction — that pointer is the entire disabled-path
// cost). Owner-private, like the rest of the attempt scaffolding.
type txRecorder struct {
	events  []TraceEvent
	attempt int32
	cause   AbortCause // last abort's cause
}

// event appends e if the buffer has room.
func (r *txRecorder) event(e TraceEvent) {
	if len(r.events) >= maxTraceEvents {
		return
	}
	e.Attempt = r.attempt
	r.events = append(r.events, e)
}

// begin opens the next attempt.
func (r *txRecorder) begin() {
	r.attempt++
	r.event(TraceEvent{Kind: TraceBegin})
}

// open records an object acquisition.
func (r *txRecorder) open(o *TObj, write bool) {
	r.event(TraceEvent{Kind: TraceOpen, Obj: o.name, Stripe: o.stripe, Write: write})
}

// conflict records one manager consultation.
func (r *txRecorder) conflict(o *TObj, enemy *Tx, d Decision, ns int64) {
	r.event(TraceEvent{
		Kind: TraceConflict, Obj: o.name, Stripe: o.stripe,
		Enemy: enemy.Label(), Decision: d, Ns: ns,
	})
}

// abort closes an attempt that died.
func (r *txRecorder) abort(cause AbortCause) {
	r.cause = cause
	r.event(TraceEvent{Kind: TraceAbort, Cause: cause})
}

// reset readies the recorder for the next sampled transaction.
func (r *txRecorder) reset() {
	clear(r.events) // release label/obj strings
	r.events = r.events[:0]
	r.attempt = 0
	r.cause = CauseNone
}

// armTrace decides whether the next logical transaction is sampled
// and, if so, arms the session's recorder. Called only when a tracer
// is installed.
func (sess *session) armTrace(trc *tracerConfig) {
	sess.traceSkip++
	if sess.traceSkip < trc.every {
		return
	}
	sess.traceSkip = 0
	if sess.recBuf == nil {
		sess.recBuf = &txRecorder{events: make([]TraceEvent, 0, 64)}
	}
	sess.rec = sess.recBuf
}

// finishTrace delivers the sampled transaction to the sink and
// disarms the recorder. Runs after the logical transaction ended —
// stripes released, status frozen — but on the session's hot path, so
// the sink contract (fast, non-blocking, no transactions) applies.
func (sess *session) finishTrace(trc *tracerConfig, shared *txShared, committed bool, latNs int64) {
	rec := sess.rec
	sess.rec = nil
	sum := TxSummary{
		Label:     labelName(shared.label.Load()),
		Committed: committed,
		Cause:     rec.cause,
		Attempts:  int64(rec.attempt),
		LatNs:     latNs,
		WaitNs:    shared.waitNs.Load(),
	}
	if committed {
		rec.event(TraceEvent{Kind: TraceCommit, Ns: latNs})
	}
	trc.sink.TxDone(sum, rec.events)
	rec.reset()
}

// Runtime/trace integration (WithRuntimeTrace): a task per logical
// transaction, a region per attempt, and log events for abort causes.

// beginRuntimeTask opens the per-transaction task when execution
// tracing is live; it returns a cleanup that ends the task (never nil
// so the caller can defer unconditionally on the traced path).
func (sess *session) beginRuntimeTask() func() {
	if !rtrace.IsEnabled() {
		return func() {}
	}
	ctx, task := rtrace.NewTask(context.Background(), "stm.tx")
	sess.rtCtx = ctx
	return func() {
		sess.rtCtx = nil
		task.End()
	}
}

// beginAttemptRegion opens the per-attempt region, or returns nil
// outside a collection.
func (sess *session) beginAttemptRegion() *rtrace.Region {
	if sess.rtCtx == nil {
		return nil
	}
	return rtrace.StartRegion(sess.rtCtx, "stm.attempt")
}

// endAttemptRegion closes the attempt's region, logging the abort
// cause for attempts that died (cause CauseNone means committed).
func (sess *session) endAttemptRegion(reg *rtrace.Region, cause AbortCause) {
	if reg == nil {
		return
	}
	if cause != CauseNone {
		rtrace.Log(sess.rtCtx, "stm.abort", cause.String())
	}
	reg.End()
}
