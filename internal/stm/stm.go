package stm

import (
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// STM is a transactional-memory instance: the shared timestamp source,
// commit clock, session pool and session registry that a set of
// cooperating transactions uses. Independent STM instances are fully
// isolated from one another.
//
// Transactions are executed through two equivalent surfaces:
//
//   - STM.Atomically (and the typed Atomic), callable from any
//     goroutine: each call borrows a pooled session carrying a private
//     contention-manager instance built by the STM's ManagerFactory
//     (see WithManagerFactory);
//   - Thread, the paper-faithful pinned form: one session bound to one
//     manager instance for its lifetime, for harnesses that sweep a
//     fixed number of worker threads.
type STM struct {
	txIDs       atomic.Uint64
	timestamps  atomic.Uint64
	commitClock atomic.Uint64

	// interleave, when positive, yields the processor every
	// interleave-th object open. On a host with fewer cores than
	// worker threads, transactions otherwise run to completion
	// between preemptions and almost never overlap; the yield points
	// simulate the concurrent interleaving of the paper's 8-context
	// testbed (see DESIGN.md, substitutions).
	interleave int

	// lazy switches conflict detection from open time to commit time
	// (see WithLazyConflicts in lazy.go).
	lazy bool

	// fullValidation disables the commit-clock shortcut so every open
	// rescans the whole read set. Ablation knob: quantifies what the
	// clock optimization buys (see BenchmarkAblationValidation).
	fullValidation bool

	// stripes are the per-object commit locks. Every TObj maps to one
	// stripe; a writer commit locks its write set's stripes in
	// ascending index order (deadlock-free), validates its read set
	// with lock-aware validation, performs the status CAS and
	// releases. With invisible reads, two writers could otherwise each
	// validate while the other was past validation but before its
	// status CAS, committing a non-serializable pair; the stripes
	// preserve the invariant the old global commitMu provided — of two
	// conflicting writers the second observes the first — while
	// letting writers on disjoint stripes commit in parallel. The
	// per-stripe critical section is a read-set scan plus one CAS — no
	// user code — so the finite-delay model of the paper still holds;
	// SXM avoided the race with visible reader lists instead (see
	// DESIGN.md).
	stripes [commitStripes]commitStripe

	// installers counts lazy-mode locator installations in flight. A
	// lazy commit publishes its buffered writes object by object, so
	// the window is non-atomic; validators treat installers != 0 the
	// way a seqlock reader treats an odd sequence (the generalization
	// of the old odd/even commit-clock parity to concurrent,
	// stripe-disjoint installers) and wait it out rather than accept a
	// cut through a partial installation.
	installers atomic.Int64

	// factory builds the per-session contention manager for sessions
	// created by STM.Atomically (see WithManagerFactory).
	factory ManagerFactory

	// tracer, when non-nil, is the flight recorder installed by
	// WithTracer: sessions sample logical transactions and deliver
	// event traces to its sink (see trace.go). rtrace additionally
	// emits runtime/trace tasks and regions while an execution trace
	// is being collected (WithRuntimeTrace).
	tracer *tracerConfig
	rtrace bool

	// commitHook, when non-nil, runs inside every writer commit after
	// read-set validation succeeds and before the status CAS — the
	// window the striped protocol must keep exclusive between
	// conflicting writers. Only tests install it (via the export_test
	// option), to schedule two commits into the window
	// deterministically on hosts without real parallelism; nil in
	// production, costing one predictable branch per writer commit.
	commitHook func()

	// free is the LIFO pool of idle sessions behind STM.Atomically,
	// guarded by freeMu. An explicit list (rather than sync.Pool) keeps
	// the session count equal to the peak number of concurrent
	// transactions: sessions are never dropped, so the registry below —
	// and with it TotalStats — stays exact and bounded. (A lock-free
	// Treiber stack with in-place links would suffer ABA here because
	// sessions are reused; the mutex section is a slice push/pop.)
	freeMu sync.Mutex
	free   []*session

	mu       sync.Mutex
	sessions []*session
}

// Option configures an STM instance.
type Option func(*STM)

// WithInterleavePeriod makes every transaction yield the processor
// after each n-th object open. Zero or negative disables yielding.
// Use it on hosts with fewer cores than workers to reproduce the
// transaction overlap (and hence the contention) of a real
// multiprocessor; the benchmark harness enables it by default.
func WithInterleavePeriod(n int) Option {
	return func(s *STM) { s.interleave = n }
}

// WithFullValidation disables the commit-clock shortcut: every open
// revalidates the entire read set even when no commit has happened
// since the last validation. Semantically identical, strictly slower;
// exists to measure the optimization (ablation).
func WithFullValidation() Option {
	return func(s *STM) { s.fullValidation = true }
}

// WithManagerFactory sets the constructor for the per-session
// contention managers behind STM.Atomically; wire it to a registry
// entry (core.Factory) to pick a policy by name. Without this option
// the STM falls back to a built-in polite-with-patience-bound manager
// (wait with growing backoff, abort the enemy after a bounded number
// of rounds so a halted enemy cannot obstruct forever). Threads are
// unaffected: NewThread takes its manager instance explicitly.
func WithManagerFactory(f ManagerFactory) Option {
	return func(s *STM) { s.factory = f }
}

// New creates an empty STM instance.
func New(opts ...Option) *STM {
	s := &STM{}
	// The commit clock starts at 2 so that a transaction's zero-valued
	// validClock always differs from it (see Tx.validate).
	s.commitClock.Store(2)
	for _, opt := range opts {
		opt(s)
	}
	if s.factory == nil {
		s.factory = func() Manager { return &defaultManager{} }
	}
	return s
}

// Thread is the paper's per-thread execution context, kept as a thin
// shim over a pinned session: it binds one contention-manager instance
// to a stream of transactions for its whole lifetime, matching the
// model of one transaction per thread that the figures sweep. A Thread
// must be used by one goroutine at a time (concurrent Atomically calls
// on the same Thread are a bug). Code that is not reproducing the
// fixed-thread sweeps should prefer STM.Atomically, which any
// goroutine may call.
type Thread struct {
	sess *session
}

// NewThread registers a new thread with its per-thread contention
// manager.
func (s *STM) NewThread(mgr Manager) *Thread {
	sess := s.newSession(mgr)
	sess.pinned = true
	return &Thread{sess: sess}
}

// Manager returns the thread's contention manager.
func (t *Thread) Manager() Manager { return t.sess.mgr }

// Stats returns a snapshot of the thread's counters. The counters are
// atomic, so the snapshot is safe (and exact to the last completed
// update) even while the thread's goroutine is running.
func (t *Thread) Stats() Stats { return t.sess.stats.snapshot() }

// Current returns the transaction attempt currently running on the
// thread, or nil. Intended for failure injection and tests. A
// Thread's descriptors are never recycled (unlike a pooled session's),
// so poking a stale reference after the attempt finished remains a
// harmless no-op on a frozen transaction, as it always was.
func (t *Thread) Current() *Tx { return t.sess.current.Load() }

// Atomically runs fn as a transaction on the thread's pinned session,
// retrying until it commits.
//
// The logical transaction receives its timestamp before the first
// attempt and keeps it across retries (the greedy manager's key
// requirement). fn must propagate errors from the typed accessors (or
// OpenRead/OpenWrite); when the underlying cause is an enemy-inflicted
// abort, Atomically retries fn, and any other error aborts the
// transaction and is returned to the caller unchanged.
//
// fn may be called many times and must therefore be free of side
// effects other than through the transaction.
func (t *Thread) Atomically(fn func(tx *Tx) error) error {
	return t.sess.atomically(fn)
}

// TotalStats aggregates the statistics of every session the STM has
// created — pooled sessions and Threads alike. The counters are
// atomic, so it may be called at any time, concurrently with running
// transactions; each counter is exact to the last completed update.
func (s *STM) TotalStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total Stats
	for _, sess := range s.sessions {
		snap := sess.stats.snapshot()
		total.Add(snap)
	}
	return total
}

// CommitLatency merges every session's commit-latency histogram: the
// wall-time distribution of committed logical transactions (retries
// included). Like TotalStats it needs no quiescence — per-bucket
// atomic snapshots are merged, so concurrent commits may be split
// across successive calls but are never lost.
func (s *STM) CommitLatency() *metrics.Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total metrics.Histogram
	for _, sess := range s.sessions {
		total.Merge(sess.commitLat.Snapshot())
	}
	return &total
}

// CommitAttempts merges every session's attempts-per-commit histogram
// (1 = first-try commit). The values are counts, not durations; use
// Quantile/Mean on the result as dimensionless numbers.
func (s *STM) CommitAttempts() *metrics.Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total metrics.Histogram
	for _, sess := range s.sessions {
		total.Merge(sess.commitTries.Snapshot())
	}
	return &total
}

// CommitClock returns the number of commits observed so far plus one;
// it advances on every commit and is the basis for cheap read-set
// validation.
func (s *STM) CommitClock() uint64 { return s.commitClock.Load() }

// commitStripes is the size of the per-STM stripe-lock array writer
// commits map their write sets onto. A power of two sized comfortably
// past the paper's 32-thread sweeps (and our 64/128-goroutine
// extensions), so that writers on disjoint objects rarely share a
// stripe by accident.
const commitStripes = 128

// commitStripe is one slot of the striped writer-commit lock. The
// mutex serializes committers whose write sets share the stripe; the
// owner pointer publishes the committing transaction to lock-aware
// read-set validation, which only loads it (never locks), so it must
// be atomic. Padded to a cache line so contended neighbours do not
// false-share.
type commitStripe struct {
	mu    sync.Mutex
	owner atomic.Pointer[Tx]
	_     [64 - 16]byte
}

// lockStripes sorts and dedupes the stripe indices in buf, locks each
// stripe in ascending order (the global order that makes overlapping
// writer commits deadlock-free) and publishes tx as the stripes'
// committing owner. It returns the deduped prefix of buf, which the
// caller passes to unlockStripes; buf is the session's reusable
// scratch so a steady-state commit allocates nothing.
func (tx *Tx) lockStripes(buf []uint32) []uint32 {
	tx.sess.stripeScratch = buf // retain any growth for the next commit
	slices.Sort(buf)
	buf = slices.Compact(buf)
	for _, i := range buf {
		st := &tx.stm.stripes[i]
		st.mu.Lock()
		st.owner.Store(tx)
	}
	return buf
}

// unlockStripes clears the owner published by lockStripes and releases
// the stripes. Owners are cleared only after the commit's status CAS
// and clock bump, so a validator that sees a stripe unowned also sees
// the committed versions the owner installed.
func (tx *Tx) unlockStripes(held []uint32) {
	for _, i := range held {
		st := &tx.stm.stripes[i]
		st.owner.Store(nil)
		st.mu.Unlock()
	}
}

// tryCommit validates the read set one final time and attempts the
// commit CAS, advancing the commit clock when a writer commits.
//
// Read-only transactions validate with a clock-stability loop: if the
// commit clock is unchanged across the scan, every read was
// simultaneously valid at the scan's start, which is the transaction's
// serialization point. Writer transactions lock the commit stripes
// covering their write set (in ascending index order) and validate
// with the lock-aware scan, which treats a stripe held by another
// committing writer as a conflict — so of two writers racing on
// overlapping read/write sets, at least one observes the other and
// fails validation (see DESIGN.md for the ordering argument).
func (tx *Tx) tryCommit() bool {
	if tx.stm.lazy {
		return tx.tryCommitLazy()
	}
	if len(tx.writes) == 0 {
		return tx.tryCommitReadOnly()
	}
	if tx.inline.n == 0 && len(tx.reads) == 0 {
		// Blind writer (e.g. a typed Update, whose pre-image is the
		// owned locator's oldVal, not a read-set entry): with nothing
		// to validate there is no validate-then-CAS window to protect,
		// so no stripes are taken — the status CAS alone is the
		// serialization point, exactly the original DSTM commit.
		// Ownership guards the pre-images: an enemy acquires an owned
		// object only by aborting this transaction first, which makes
		// the CAS below fail. (Lazy mode never reaches here: its
		// write acquisitions record pre-images in the read set.)
		if !tx.commit() {
			tx.setCause(CauseCASRace)
			return false
		}
		tx.stm.commitClock.Add(2)
		// No stripes are held here, so the commit hook of a blind
		// writer carries no cross-transaction ordering guarantee; the
		// kv capture never reaches this path (its mutations read the
		// chain they rewrite, so the read set is never empty).
		tx.fireOnCommit()
		return true
	}
	buf := tx.sess.stripeScratch[:0]
	for _, obj := range tx.writes {
		buf = append(buf, obj.stripe)
	}
	held := tx.lockStripes(buf)
	defer tx.unlockStripes(held)
	if !tx.readsCommittedAndUnowned() {
		tx.setCause(CauseValidation)
		tx.noteConflict()
		tx.Abort()
		return false
	}
	if h := tx.stm.commitHook; h != nil {
		h()
	}
	if !tx.commit() {
		tx.setCause(CauseCASRace)
		return false
	}
	tx.stm.commitClock.Add(2)
	// The deferred unlockStripes has not run yet: the hook fires with
	// the write set's stripes still held, so the hooks of two writers
	// that touched the same object run in their commit order.
	tx.fireOnCommit()
	return true
}

// scanReads performs a full read-set scan against current committed
// versions, without the commit-clock shortcut and without lock
// awareness — the read-only commit's scan (writer commits use the
// lock-aware readsCommittedAndUnowned instead).
func (tx *Tx) scanReads() bool {
	return tx.readsStillCommitted()
}
