package stm

import (
	"sync"
	"sync/atomic"
)

// STM is a transactional-memory instance: the shared timestamp source,
// commit clock, session pool and session registry that a set of
// cooperating transactions uses. Independent STM instances are fully
// isolated from one another.
//
// Transactions are executed through two equivalent surfaces:
//
//   - STM.Atomically (and the typed Atomic), callable from any
//     goroutine: each call borrows a pooled session carrying a private
//     contention-manager instance built by the STM's ManagerFactory
//     (see WithManagerFactory);
//   - Thread, the paper-faithful pinned form: one session bound to one
//     manager instance for its lifetime, for harnesses that sweep a
//     fixed number of worker threads.
type STM struct {
	txIDs       atomic.Uint64
	timestamps  atomic.Uint64
	commitClock atomic.Uint64

	// interleave, when positive, yields the processor every
	// interleave-th object open. On a host with fewer cores than
	// worker threads, transactions otherwise run to completion
	// between preemptions and almost never overlap; the yield points
	// simulate the concurrent interleaving of the paper's 8-context
	// testbed (see DESIGN.md, substitutions).
	interleave int

	// lazy switches conflict detection from open time to commit time
	// (see WithLazyConflicts in lazy.go).
	lazy bool

	// fullValidation disables the commit-clock shortcut so every open
	// rescans the whole read set. Ablation knob: quantifies what the
	// clock optimization buys (see BenchmarkAblationValidation).
	fullValidation bool

	// commitMu serializes the validate-then-commit step of writer
	// transactions. With invisible reads, two writers could otherwise
	// each validate while the other was past validation but before its
	// status CAS, committing a non-serializable pair. The critical
	// section is a read-set scan plus one CAS — no user code — so the
	// finite-delay model of the paper still holds; SXM avoided the
	// race with visible reader lists instead (see DESIGN.md).
	commitMu sync.Mutex

	// factory builds the per-session contention manager for sessions
	// created by STM.Atomically (see WithManagerFactory).
	factory ManagerFactory

	// free is the LIFO pool of idle sessions behind STM.Atomically,
	// guarded by freeMu. An explicit list (rather than sync.Pool) keeps
	// the session count equal to the peak number of concurrent
	// transactions: sessions are never dropped, so the registry below —
	// and with it TotalStats — stays exact and bounded. (A lock-free
	// Treiber stack with in-place links would suffer ABA here because
	// sessions are reused; the mutex section is a slice push/pop.)
	freeMu sync.Mutex
	free   []*session

	mu       sync.Mutex
	sessions []*session
}

// Option configures an STM instance.
type Option func(*STM)

// WithInterleavePeriod makes every transaction yield the processor
// after each n-th object open. Zero or negative disables yielding.
// Use it on hosts with fewer cores than workers to reproduce the
// transaction overlap (and hence the contention) of a real
// multiprocessor; the benchmark harness enables it by default.
func WithInterleavePeriod(n int) Option {
	return func(s *STM) { s.interleave = n }
}

// WithFullValidation disables the commit-clock shortcut: every open
// revalidates the entire read set even when no commit has happened
// since the last validation. Semantically identical, strictly slower;
// exists to measure the optimization (ablation).
func WithFullValidation() Option {
	return func(s *STM) { s.fullValidation = true }
}

// WithManagerFactory sets the constructor for the per-session
// contention managers behind STM.Atomically; wire it to a registry
// entry (core.Factory) to pick a policy by name. Without this option
// the STM falls back to a built-in polite-with-patience-bound manager
// (wait with growing backoff, abort the enemy after a bounded number
// of rounds so a halted enemy cannot obstruct forever). Threads are
// unaffected: NewThread takes its manager instance explicitly.
func WithManagerFactory(f ManagerFactory) Option {
	return func(s *STM) { s.factory = f }
}

// New creates an empty STM instance.
func New(opts ...Option) *STM {
	s := &STM{}
	// The commit clock starts at 2 (even — odd values mark an
	// in-progress lazy installation) so that a transaction's
	// zero-valued validClock always differs from it (see Tx.validate).
	s.commitClock.Store(2)
	for _, opt := range opts {
		opt(s)
	}
	if s.factory == nil {
		s.factory = func() Manager { return &defaultManager{} }
	}
	return s
}

// Thread is the paper's per-thread execution context, kept as a thin
// shim over a pinned session: it binds one contention-manager instance
// to a stream of transactions for its whole lifetime, matching the
// model of one transaction per thread that the figures sweep. A Thread
// must be used by one goroutine at a time (concurrent Atomically calls
// on the same Thread are a bug). Code that is not reproducing the
// fixed-thread sweeps should prefer STM.Atomically, which any
// goroutine may call.
type Thread struct {
	sess *session
}

// NewThread registers a new thread with its per-thread contention
// manager.
func (s *STM) NewThread(mgr Manager) *Thread {
	sess := s.newSession(mgr)
	sess.pinned = true
	return &Thread{sess: sess}
}

// Manager returns the thread's contention manager.
func (t *Thread) Manager() Manager { return t.sess.mgr }

// Stats returns a snapshot of the thread's counters. The counters are
// atomic, so the snapshot is safe (and exact to the last completed
// update) even while the thread's goroutine is running.
func (t *Thread) Stats() Stats { return t.sess.stats.snapshot() }

// Current returns the transaction attempt currently running on the
// thread, or nil. Intended for failure injection and tests. A
// Thread's descriptors are never recycled (unlike a pooled session's),
// so poking a stale reference after the attempt finished remains a
// harmless no-op on a frozen transaction, as it always was.
func (t *Thread) Current() *Tx { return t.sess.current.Load() }

// Atomically runs fn as a transaction on the thread's pinned session,
// retrying until it commits.
//
// The logical transaction receives its timestamp before the first
// attempt and keeps it across retries (the greedy manager's key
// requirement). fn must propagate errors from the typed accessors (or
// OpenRead/OpenWrite); when the underlying cause is an enemy-inflicted
// abort, Atomically retries fn, and any other error aborts the
// transaction and is returned to the caller unchanged.
//
// fn may be called many times and must therefore be free of side
// effects other than through the transaction.
func (t *Thread) Atomically(fn func(tx *Tx) error) error {
	return t.sess.atomically(fn)
}

// TotalStats aggregates the statistics of every session the STM has
// created — pooled sessions and Threads alike. The counters are
// atomic, so it may be called at any time, concurrently with running
// transactions; each counter is exact to the last completed update.
func (s *STM) TotalStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total Stats
	for _, sess := range s.sessions {
		snap := sess.stats.snapshot()
		total.Add(snap)
	}
	return total
}

// CommitClock returns the number of commits observed so far plus one;
// it advances on every commit and is the basis for cheap read-set
// validation.
func (s *STM) CommitClock() uint64 { return s.commitClock.Load() }

// tryCommit validates the read set one final time and attempts the
// commit CAS, advancing the commit clock when a writer commits.
//
// Read-only transactions validate with a clock-stability loop: if the
// commit clock is unchanged across the scan, every read was
// simultaneously valid at the scan's start, which is the transaction's
// serialization point. Writer transactions validate and flip their
// status under commitMu so that of two conflicting writers the second
// to enter observes the first's commit and fails validation.
func (tx *Tx) tryCommit() bool {
	if tx.stm.lazy {
		return tx.tryCommitLazy()
	}
	if len(tx.writes) == 0 {
		return tx.tryCommitReadOnly()
	}
	tx.stm.commitMu.Lock()
	defer tx.stm.commitMu.Unlock()
	if !tx.scanReads() {
		tx.Abort()
		return false
	}
	if !tx.commit() {
		return false
	}
	// Bump by 2: the clock's parity is reserved for lazy-mode
	// installation windows and must stay even here.
	tx.stm.commitClock.Add(2)
	return true
}

// scanReads performs a full read-set scan against current committed
// versions, without the commit-clock shortcut.
func (tx *Tx) scanReads() bool {
	return tx.readsStillCommitted()
}
