package stm

import (
	"errors"
	"sync"
	"sync/atomic"
)

// STM is a transactional-memory instance: the shared timestamp source,
// commit clock and thread registry that a set of cooperating Threads
// uses. Independent STM instances are fully isolated from one another.
type STM struct {
	txIDs       atomic.Uint64
	timestamps  atomic.Uint64
	commitClock atomic.Uint64

	// interleave, when positive, yields the processor every
	// interleave-th object open. On a host with fewer cores than
	// worker threads, transactions otherwise run to completion
	// between preemptions and almost never overlap; the yield points
	// simulate the concurrent interleaving of the paper's 8-context
	// testbed (see DESIGN.md, substitutions).
	interleave int

	// lazy switches conflict detection from open time to commit time
	// (see WithLazyConflicts in lazy.go).
	lazy bool

	// fullValidation disables the commit-clock shortcut so every open
	// rescans the whole read set. Ablation knob: quantifies what the
	// clock optimization buys (see BenchmarkAblationValidation).
	fullValidation bool

	// commitMu serializes the validate-then-commit step of writer
	// transactions. With invisible reads, two writers could otherwise
	// each validate while the other was past validation but before its
	// status CAS, committing a non-serializable pair. The critical
	// section is a read-set scan plus one CAS — no user code — so the
	// finite-delay model of the paper still holds; SXM avoided the
	// race with visible reader lists instead (see DESIGN.md).
	commitMu sync.Mutex

	mu      sync.Mutex
	threads []*Thread
}

// Option configures an STM instance.
type Option func(*STM)

// WithInterleavePeriod makes every transaction yield the processor
// after each n-th object open. Zero or negative disables yielding.
// Use it on hosts with fewer cores than workers to reproduce the
// transaction overlap (and hence the contention) of a real
// multiprocessor; the benchmark harness enables it by default.
func WithInterleavePeriod(n int) Option {
	return func(s *STM) { s.interleave = n }
}

// WithFullValidation disables the commit-clock shortcut: every open
// revalidates the entire read set even when no commit has happened
// since the last validation. Semantically identical, strictly slower;
// exists to measure the optimization (ablation).
func WithFullValidation() Option {
	return func(s *STM) { s.fullValidation = true }
}

// New creates an empty STM instance.
func New(opts ...Option) *STM {
	s := &STM{}
	// The commit clock starts at 2 (even — odd values mark an
	// in-progress lazy installation) so that a transaction's
	// zero-valued validClock always differs from it (see Tx.validate).
	s.commitClock.Store(2)
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Thread is the per-goroutine execution context: it binds a contention
// manager instance to a stream of transactions. A Thread must be used
// by one goroutine at a time (concurrent Atomically calls on the same
// Thread are a bug), matching the paper's model of one transaction per
// thread.
type Thread struct {
	stm   *STM
	mgr   Manager
	stats Stats

	// current is the attempt now running on this thread, exposed so
	// that failure injectors and tests can halt or examine it.
	current atomic.Pointer[Tx]
}

// NewThread registers a new thread with its per-thread contention
// manager.
func (s *STM) NewThread(mgr Manager) *Thread {
	t := &Thread{stm: s, mgr: mgr}
	s.mu.Lock()
	s.threads = append(s.threads, t)
	s.mu.Unlock()
	return t
}

// Manager returns the thread's contention manager.
func (t *Thread) Manager() Manager { return t.mgr }

// Stats returns a snapshot of the thread's counters. Call it only when
// the thread's goroutine is quiescent.
func (t *Thread) Stats() Stats { return t.stats }

// Current returns the transaction attempt currently running on the
// thread, or nil. Intended for failure injection and tests.
func (t *Thread) Current() *Tx { return t.current.Load() }

// TotalStats aggregates the statistics of every thread registered with
// the STM. Call it only when worker goroutines are quiescent.
func (s *STM) TotalStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total Stats
	for _, t := range s.threads {
		total.Add(t.stats)
	}
	return total
}

// CommitClock returns the number of commits observed so far plus one;
// it advances on every commit and is the basis for cheap read-set
// validation.
func (s *STM) CommitClock() uint64 { return s.commitClock.Load() }

// Atomically runs fn as a transaction, retrying until it commits.
//
// The logical transaction receives its timestamp before the first
// attempt and keeps it across retries (the greedy manager's key
// requirement). fn must propagate errors from OpenRead/OpenWrite; when
// the underlying cause is an enemy-inflicted abort, Atomically retries
// fn, and any other error aborts the transaction and is returned to
// the caller unchanged.
//
// fn may be called many times and must therefore be free of side
// effects other than through the transaction.
func (t *Thread) Atomically(fn func(tx *Tx) error) error {
	shared := &txShared{
		id:        t.stm.txIDs.Add(1),
		timestamp: t.stm.timestamps.Add(1),
	}
	return t.run(shared, fn)
}

// run executes attempts of the logical transaction shared until one
// commits, fn fails with a non-retryable error, or the transaction is
// halted by failure injection.
func (t *Thread) run(shared *txShared, fn func(tx *Tx) error) error {
	for {
		tx := newTx(t, shared)
		t.current.Store(tx)
		t.mgr.Begin(tx)
		err := fn(tx)
		switch {
		case err == nil:
			if tx.tryCommit() {
				t.current.Store(nil)
				t.mgr.Committed(tx)
				t.stats.Commits++
				return nil
			}
			// Aborted between fn returning and commit.
		case errors.Is(err, ErrHalted):
			// Failure injection: abandon the transaction without
			// aborting it. It remains active and obstructing.
			t.current.Store(nil)
			t.stats.Halted++
			return ErrHalted
		case errors.Is(err, ErrAborted):
			// Enemy abort: fall through to retry.
		default:
			// User error: abort the transaction, surface the error.
			tx.Abort()
			t.current.Store(nil)
			t.mgr.Aborted(tx)
			return err
		}
		tx.Abort() // make the attempt's fate unambiguous
		shared.aborts.Add(1)
		t.stats.Aborts++
		t.mgr.Aborted(tx)
	}
}

// tryCommit validates the read set one final time and attempts the
// commit CAS, advancing the commit clock when a writer commits.
//
// Read-only transactions validate with a clock-stability loop: if the
// commit clock is unchanged across the scan, every read was
// simultaneously valid at the scan's start, which is the transaction's
// serialization point. Writer transactions validate and flip their
// status under commitMu so that of two conflicting writers the second
// to enter observes the first's commit and fails validation.
func (tx *Tx) tryCommit() bool {
	if tx.stm.lazy {
		return tx.tryCommitLazy()
	}
	if len(tx.writes) == 0 {
		return tx.tryCommitReadOnly()
	}
	tx.stm.commitMu.Lock()
	defer tx.stm.commitMu.Unlock()
	if !tx.scanReads() {
		tx.Abort()
		return false
	}
	if !tx.commit() {
		return false
	}
	// Bump by 2: the clock's parity is reserved for lazy-mode
	// installation windows and must stay even here.
	tx.stm.commitClock.Add(2)
	return true
}

// scanReads performs a full read-set scan against current committed
// versions, without the commit-clock shortcut.
func (tx *Tx) scanReads() bool {
	for obj, seen := range tx.reads {
		if obj.committed() != seen {
			return false
		}
	}
	return true
}
