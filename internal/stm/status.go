package stm

// Status is the lifecycle state of a transaction. Transitions are
// one-shot: Active -> Committed or Active -> Aborted, both performed by
// compare-and-swap, so a non-active status never changes again. This
// freezing is what makes the DSTM locator protocol safe: once an owner
// is non-active, the committed version of every object it owns is
// fixed.
type Status int32

const (
	// StatusActive is the state of a running transaction.
	StatusActive Status = iota
	// StatusCommitted is the state of a transaction whose effects have
	// taken place. Terminal.
	StatusCommitted
	// StatusAborted is the state of a transaction whose effects have
	// been discarded. Terminal.
	StatusAborted
)

// String returns the conventional lower-case name of the status.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "invalid"
	}
}
