package stm_test

// Regression tests for the striped writer-commit protocol that
// replaced the global commitMu: two writers with overlapping read and
// write sets whose commits land on different stripes must never both
// commit, in eager and in lazy mode, and the protocol must stay
// serializable under a 128-goroutine hammer for every registry
// manager.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stm"
)

// newBarrier2 returns a two-party reusable-per-round barrier: both
// goroutines block until each has arrived.
func newBarrier2() func() {
	var mu sync.Mutex
	arrived := 0
	ch := make(chan struct{})
	return func() {
		mu.Lock()
		arrived++
		if arrived == 2 {
			close(ch)
			mu.Unlock()
			return
		}
		mu.Unlock()
		<-ch
	}
}

// testCyclicWriters drives the exact race the old global commitMu
// guarded against: T1 reads x and writes y, T2 reads y and writes x,
// and a phase barrier marches both first attempts in lockstep —
// both read, then both write, then both return from fn at the same
// moment and race into tryCommit. With invisible reads neither write
// conflicts at open time (each writes an object the other only
// reads), so the commit protocol alone must ensure that at most one
// of the two racing validations passes. From (0,0), T1 committing
// y = x+1 and T2 committing x = y+1 serializably must end in (1,2)
// or (2,1); the non-serializable both-commit outcome is (1,1).
//
// Rounds alternate between distinct-stripe and same-stripe x/y pairs
// (stripes are dealt round-robin at creation, so consecutive objects
// differ and objects created commitStripes apart collide), covering
// both the parallel-commit path and the stripe-shared mutex path.
func testCyclicWriters(t *testing.T, opts ...stm.Option) {
	t.Helper()
	rounds := 60
	if testing.Short() {
		rounds = 20
	}
	opts = append([]stm.Option{
		stm.WithManagerFactory(func() stm.Manager { return politeManager{} }),
		// Park every writer commit briefly between validation and the
		// status CAS: on a single-CPU host the two racing commits
		// would otherwise never overlap (the window is tens of
		// nanoseconds against a ~10ms scheduling quantum), and the
		// protocol under test would go unexercised. With the hook,
		// each writer deterministically gives the other the whole
		// window.
		stm.WithCommitHook(func() { time.Sleep(time.Millisecond) }),
	}, opts...)
	// Filler variables pad both read sets: validation scans them
	// before reaching the contended entry (inline slots hold the
	// first eight reads, the rest spill to the overflow map), so the
	// window between "validated the contended read" and "status CAS"
	// is wide enough for the two commits — marched to the commit
	// doorstep together by the barriers — to actually overlap. With
	// the old global commitMu this interleaving was impossible by
	// construction; the striped protocol must exclude it through
	// lock-aware validation.
	const fillers = 48
	for r := 0; r < rounds; r++ {
		s := stm.New(opts...)
		pad := make([]*stm.Var[int], fillers)
		for i := range pad {
			pad[i] = stm.NewVar(i)
		}
		x := stm.NewVar(0)
		if r%2 == 1 {
			// Burn a full stripe cycle so y lands on x's stripe.
			for i := 0; i < 127; i++ {
				stm.NewVar(0)
			}
		}
		y := stm.NewVar(0)

		afterRead := newBarrier2()
		afterWrite := newBarrier2()
		run := func(src, dst *stm.Var[int]) error {
			attempt := 0
			return s.Atomically(func(tx *stm.Tx) error {
				attempt++
				// All reads happen before the first barrier, all writes
				// after it: with invisible reads neither attempt-1
				// transaction ever observes the other's active locator,
				// so no open-time conflict arises and the commit
				// protocol alone must arbitrate. The pads fill the
				// inline read-set slots first, pushing src into the
				// overflow map where validation reaches it late.
				for _, p := range pad {
					if _, err := stm.Read(tx, p); err != nil {
						return err
					}
				}
				v, err := stm.Read(tx, src)
				if err != nil {
					return err
				}
				if attempt == 1 {
					afterRead()
				}
				if err := stm.Write(tx, dst, v+1); err != nil {
					return err
				}
				if attempt == 1 {
					afterWrite()
				}
				return nil
			})
		}

		var wg sync.WaitGroup
		errs := make(chan error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); errs <- run(x, y) }()
		go func() { defer wg.Done(); errs <- run(y, x) }()
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
		}
		xv, yv := x.Peek(), y.Peek()
		ok := (xv == 1 && yv == 2) || (xv == 2 && yv == 1)
		if !ok {
			t.Fatalf("round %d: non-serializable outcome x=%d y=%d (both writers committed against stale reads)", r, xv, yv)
		}
	}
}

func TestStripedCommitCyclicWritersEager(t *testing.T) {
	testCyclicWriters(t)
}

func TestStripedCommitCyclicWritersLazy(t *testing.T) {
	testCyclicWriters(t, stm.WithLazyConflicts())
}

// errHammerGiveUp is the livelock fuse for the hammer: a manager whose
// policy can ping-pong symmetric enemies forever (or starve one) must
// not hang the test; abandoned operations are simply not counted.
var errHammerGiveUp = errors.New("stripe hammer: livelock fuse blew")

// TestStripedCommitHammer128 floods one STM with 128 goroutines per
// registry manager, in eager and lazy mode, under the race detector
// when CI runs with -race. Each goroutine increments its own counter
// (disjoint write sets — the parallel-commit path the stripes open
// up) and a shared counter (the full conflict path); lost or
// duplicated increments mean the striped protocol let two conflicting
// commits through.
func TestStripedCommitHammer128(t *testing.T) {
	const goroutines = 128
	perDisjoint, perShared := 12, 4
	if testing.Short() {
		perDisjoint, perShared = 5, 2
	}
	for _, name := range core.Names() {
		for _, mode := range []string{"eager", "lazy"} {
			t.Run(name+"/"+mode, func(t *testing.T) {
				factory, err := core.Factory(name)
				if err != nil {
					t.Fatal(err)
				}
				opts := []stm.Option{
					stm.WithManagerFactory(factory),
					stm.WithInterleavePeriod(2),
				}
				if mode == "lazy" {
					opts = append(opts, stm.WithLazyConflicts())
				}
				s := stm.New(opts...)
				shared := stm.NewVar(0)
				own := make([]*stm.Var[int], goroutines)
				for i := range own {
					own[i] = stm.NewVar(0)
				}

				var okDisjoint, okShared atomic.Int64
				incrFused := func(v *stm.Var[int]) (bool, error) {
					attempts := 0
					err := s.Atomically(func(tx *stm.Tx) error {
						if attempts++; attempts > 2_000 {
							return errHammerGiveUp
						}
						return stm.Update(tx, v, func(n int) int { return n + 1 })
					})
					if errors.Is(err, errHammerGiveUp) {
						return false, nil
					}
					return err == nil, err
				}

				var wg sync.WaitGroup
				errs := make(chan error, goroutines)
				for g := 0; g < goroutines; g++ {
					mine := own[g]
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < perDisjoint; i++ {
							ok, err := incrFused(mine)
							if err != nil {
								errs <- err
								return
							}
							if ok {
								okDisjoint.Add(1)
							}
						}
						for i := 0; i < perShared; i++ {
							ok, err := incrFused(shared)
							if err != nil {
								errs <- err
								return
							}
							if ok {
								okShared.Add(1)
							}
						}
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				sum := 0
				for _, v := range own {
					sum += v.Peek()
				}
				if int64(sum) != okDisjoint.Load() {
					t.Fatalf("disjoint counters sum to %d, want %d (lost or duplicated commits)", sum, okDisjoint.Load())
				}
				if got := shared.Peek(); int64(got) != okShared.Load() {
					t.Fatalf("shared counter = %d, want %d (lost or duplicated commits)", got, okShared.Load())
				}
			})
		}
	}
}

// openRecorder counts manager open notifications by kind.
type openRecorder struct {
	stm.BaseManager
	reads, writes int
}

func (m *openRecorder) Opened(_ *stm.Tx, write bool) {
	if write {
		m.writes++
	} else {
		m.reads++
	}
}

// ResolveConflict is never reached in lazy mode (transactions are
// mutually invisible until commit).
func (m *openRecorder) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	return stm.Wait
}

// TestLazyWriteNotifiesManagerOnce pins the openWriteLazy accounting
// fix: acquiring an object for writing in lazy mode is one write
// acquisition — the manager hears a single Opened(tx, true), no
// phantom read-open, and stats count one open. (The old path routed
// the pre-image load through openRead, double-notifying the manager
// and inflating Karma-family priorities in lazy mode.)
func TestLazyWriteNotifiesManagerOnce(t *testing.T) {
	s := stm.New(stm.WithLazyConflicts())
	v := stm.NewVar(0)
	rec := &openRecorder{}
	th := s.NewThread(rec)
	if err := th.Atomically(func(tx *stm.Tx) error {
		return stm.Update(tx, v, func(n int) int { return n + 1 })
	}); err != nil {
		t.Fatal(err)
	}
	if rec.writes != 1 || rec.reads != 0 {
		t.Fatalf("lazy write acquisition notified reads=%d writes=%d, want 0/1", rec.reads, rec.writes)
	}
	if st := th.Stats(); st.Opens != 1 {
		t.Fatalf("Opens = %d, want 1 (one acquisition, counted once)", st.Opens)
	}

	// A read followed by a write of the same object is two
	// acquisitions, mirroring the eager path's accounting.
	rec2 := &openRecorder{}
	th2 := s.NewThread(rec2)
	if err := th2.Atomically(func(tx *stm.Tx) error {
		if _, err := stm.Read(tx, v); err != nil {
			return err
		}
		return stm.Update(tx, v, func(n int) int { return n + 1 })
	}); err != nil {
		t.Fatal(err)
	}
	if rec2.reads != 1 || rec2.writes != 1 {
		t.Fatalf("read-then-write notified reads=%d writes=%d, want 1/1", rec2.reads, rec2.writes)
	}
	if st := th2.Stats(); st.Opens != 2 {
		t.Fatalf("Opens = %d, want 2", st.Opens)
	}
}

// testCommitConflictCounted holds a victim transaction open while an
// enemy commits a conflicting write, then checks that the victim's
// forced commit-time validation failure shows up in Stats.Conflicts —
// the uniform accounting that makes eager and lazy conflict counts
// comparable in the figures (eager paths used to skip it).
func testCommitConflictCounted(t *testing.T, victimWrites bool, opts ...stm.Option) {
	t.Helper()
	s := stm.New(opts...)
	x := stm.NewVar(0)
	y := stm.NewVar(0)

	victim := s.NewThread(politeManager{})
	held := make(chan struct{})
	release := make(chan struct{})
	attempts := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = victim.Atomically(func(tx *stm.Tx) error {
			attempts++
			if _, err := stm.Read(tx, x); err != nil {
				return err
			}
			if victimWrites {
				if err := stm.Write(tx, y, 1); err != nil {
					return err
				}
			} else if _, err := stm.Read(tx, y); err != nil {
				return err
			}
			if attempts == 1 {
				close(held)
				<-release
			}
			return nil
		})
	}()
	<-held
	// The enemy invalidates the victim's read of x and commits in
	// full while the victim sits at the commit doorstep.
	enemy := s.NewThread(politeManager{})
	if err := enemy.Atomically(func(tx *stm.Tx) error {
		return stm.Write(tx, x, 7)
	}); err != nil {
		t.Fatal(err)
	}
	close(release)
	wg.Wait()
	if attempts < 2 {
		t.Fatalf("victim committed without retrying (attempts=%d); commit-time validation missed the conflict", attempts)
	}
	if st := victim.Stats(); st.Conflicts == 0 {
		t.Fatal("commit-time validation failure not counted in Stats.Conflicts")
	}
}

func TestCommitConflictCountedEagerWriter(t *testing.T) {
	testCommitConflictCounted(t, true)
}

func TestCommitConflictCountedReadOnly(t *testing.T) {
	testCommitConflictCounted(t, false)
}

func TestCommitConflictCountedLazyWriter(t *testing.T) {
	testCommitConflictCounted(t, true, stm.WithLazyConflicts())
}

// TestStripeFalseSharingAborts documents (and pins) the protocol's
// one conservative behavior: a reader validating at a writer commit
// may observe a foreign stripe lock on an object the writer never
// touched (two objects can share a stripe) and abort, but it must
// retry and commit — false sharing costs a retry, never progress or
// correctness.
func TestStripeFalseSharingAborts(t *testing.T) {
	s := stm.New()
	vars := make([]*stm.Var[int], 256)
	for i := range vars {
		vars[i] = stm.NewVar(0)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(vars))
	for i, v := range vars {
		wg.Add(1)
		go func(i int, v *stm.Var[int]) {
			defer wg.Done()
			// Read a neighbour (often on a colliding stripe), write
			// our own var.
			other := vars[(i+128)%len(vars)]
			errs <- s.Atomically(func(tx *stm.Tx) error {
				if _, err := stm.Read(tx, other); err != nil {
					return err
				}
				return stm.Update(tx, v, func(n int) int { return n + 1 })
			})
		}(i, v)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range vars {
		if got := v.Peek(); got != 1 {
			t.Fatalf("var %d = %d, want 1", i, got)
		}
	}
}
