package stm_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/stm"
)

func TestSwapReturnsPrevious(t *testing.T) {
	s := stm.New()
	v := stm.NewVar("old")
	prev, err := stm.Atomic(s, func(tx *stm.Tx) (string, error) {
		return stm.Swap(tx, v, "new")
	})
	if err != nil || prev != "old" {
		t.Fatalf("Swap = %q, %v; want \"old\", nil", prev, err)
	}
	if got := v.Peek(); got != "new" {
		t.Fatalf("after Swap, Peek = %q, want \"new\"", got)
	}
	// Swap after a write in the same transaction sees the private
	// version, not the committed one.
	prev, err = stm.Atomic(s, func(tx *stm.Tx) (string, error) {
		if err := stm.Write(tx, v, "mid"); err != nil {
			return "", err
		}
		return stm.Swap(tx, v, "final")
	})
	if err != nil || prev != "mid" {
		t.Fatalf("Swap after Write = %q, %v; want \"mid\", nil", prev, err)
	}
	if got := v.Peek(); got != "final" {
		t.Fatalf("Peek = %q, want \"final\"", got)
	}
}

func TestSwapAppliesCloner(t *testing.T) {
	s := stm.New()
	clone := func(xs []int) []int { return append([]int(nil), xs...) }
	v := stm.NewVarCloner([]int{1}, clone)
	mine := []int{2, 3}
	if _, err := stm.Atomic(s, func(tx *stm.Tx) ([]int, error) {
		return stm.Swap(tx, v, mine)
	}); err != nil {
		t.Fatal(err)
	}
	mine[0] = 99 // must not reach the committed version
	if got := v.Peek(); got[0] != 2 {
		t.Fatalf("committed version aliases caller slice: %v", got)
	}
}

func TestCompareAndSwap(t *testing.T) {
	s := stm.New()
	v := stm.NewVar(10)
	swapped, err := stm.Atomic(s, func(tx *stm.Tx) (bool, error) {
		return stm.CompareAndSwap(tx, v, 10, 20)
	})
	if err != nil || !swapped {
		t.Fatalf("CAS(10->20) = %v, %v; want true, nil", swapped, err)
	}
	if got := v.Peek(); got != 20 {
		t.Fatalf("Peek = %d, want 20", got)
	}
	swapped, err = stm.Atomic(s, func(tx *stm.Tx) (bool, error) {
		return stm.CompareAndSwap(tx, v, 10, 30)
	})
	if err != nil || swapped {
		t.Fatalf("CAS with stale expectation = %v, %v; want false, nil", swapped, err)
	}
	if got := v.Peek(); got != 20 {
		t.Fatalf("failed CAS changed the value to %d", got)
	}
}

// TestCompareAndSwapFailureIsReadOnly pins the no-op path's cost: a
// failed compare records only a read, so the transaction commits
// read-only and never obstructs the variable.
func TestCompareAndSwapFailureIsReadOnly(t *testing.T) {
	s := stm.New()
	v := stm.NewVar(1)
	if err := s.Atomically(func(tx *stm.Tx) error {
		ok, err := stm.CompareAndSwap(tx, v, 42, 43)
		if err != nil {
			return err
		}
		if ok {
			return errors.New("stale compare succeeded")
		}
		if got := tx.Opens(); got != 1 {
			return errors.New("failed CAS opened more than the read")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCompareAndSwapContended runs the classic CAS counter under
// contention: every increment goes through a read of the current value
// and a CompareAndSwap from it, so the final count proves both the
// compare and the swap were transactional.
func TestCompareAndSwapContended(t *testing.T) {
	s := stm.New()
	v := stm.NewVar(0)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				errs[g] = s.Atomically(func(tx *stm.Tx) error {
					cur, err := stm.Read(tx, v)
					if err != nil {
						return err
					}
					ok, err := stm.CompareAndSwap(tx, v, cur, cur+1)
					if err != nil {
						return err
					}
					if !ok {
						return errors.New("CAS failed against own read — isolation broken")
					}
					return nil
				})
				if errs[g] != nil {
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := v.Peek(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestAtomic2(t *testing.T) {
	s := stm.New()
	v := stm.NewVar(7)
	got, ok, err := stm.Atomic2(s, func(tx *stm.Tx) (int, bool, error) {
		x, err := stm.Read(tx, v)
		return x, x > 0, err
	})
	if err != nil || !ok || got != 7 {
		t.Fatalf("Atomic2 = %d, %v, %v; want 7, true, nil", got, ok, err)
	}
	// Errors surface and zero both results.
	boom := errors.New("boom")
	got, ok, err = stm.Atomic2(s, func(tx *stm.Tx) (int, bool, error) {
		return 5, true, boom
	})
	if !errors.Is(err, boom) || got != 0 || ok {
		t.Fatalf("Atomic2 error path = %d, %v, %v; want 0, false, boom", got, ok, err)
	}
}

// TestInlineReadSetOverflow crosses the inline-array boundary: a
// transaction reading more variables than the inline capacity must
// still validate and commit a consistent snapshot, and repeated reads
// must hit the recorded version on both sides of the spill.
func TestInlineReadSetOverflow(t *testing.T) {
	s := stm.New()
	const n = 40 // comfortably past the inline capacity
	vars := make([]*stm.Var[int], n)
	for i := range vars {
		vars[i] = stm.NewVar(i)
	}
	if err := s.Atomically(func(tx *stm.Tx) error {
		// First pass records; second pass must see identical values via
		// the recorded read set (inline for the first few, map beyond).
		first := make([]int, n)
		for i, v := range vars {
			x, err := stm.Read(tx, v)
			if err != nil {
				return err
			}
			first[i] = x
		}
		for i, v := range vars {
			x, err := stm.Read(tx, v)
			if err != nil {
				return err
			}
			if x != first[i] {
				return errors.New("repeated read differed from recorded version")
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A writer invalidating a spilled (map-side) entry must abort the
	// reader's commit: snapshot consistency cannot depend on which side
	// of the inline boundary the read landed.
	sums := make(chan int, 2)
	release := make(chan struct{})
	go func() {
		sum, err := stm.Atomic(s, func(tx *stm.Tx) (int, error) {
			total := 0
			for i, v := range vars {
				x, err := stm.Read(tx, v)
				if err != nil {
					return 0, err
				}
				if i == 0 {
					// Let the writer commit mid-scan on the first pass.
					select {
					case <-release:
					default:
						close(release)
					}
				}
				total += x
			}
			return total, nil
		})
		if err != nil {
			sums <- -1
			return
		}
		sums <- sum
	}()
	<-release
	if err := s.Atomically(func(tx *stm.Tx) error {
		// Invalidate both an inline-side and a map-side variable.
		if err := stm.Update(tx, vars[1], func(x int) int { return x + 1000 }); err != nil {
			return err
		}
		return stm.Update(tx, vars[n-1], func(x int) int { return x + 1000 })
	}); err != nil {
		t.Fatal(err)
	}
	want1 := n * (n - 1) / 2
	want2 := want1 + 2000
	if got := <-sums; got != want1 && got != want2 {
		t.Fatalf("scan sum = %d, want %d (before) or %d (after) — torn snapshot", got, want1, want2)
	}
}
