package stm_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stm"
)

// TestSTMAtomicallyBasic: the goroutine-agnostic entry point commits a
// transaction with no Thread anywhere in sight, on the built-in
// default manager.
func TestSTMAtomicallyBasic(t *testing.T) {
	s := stm.New()
	v := stm.NewVar(1)
	if err := s.Atomically(func(tx *stm.Tx) error {
		return stm.Update(tx, v, func(n int) int { return n * 10 })
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Peek(); got != 10 {
		t.Fatalf("v = %d, want 10", got)
	}
	if c := s.TotalStats().Commits; c != 1 {
		t.Fatalf("TotalStats().Commits = %d, want 1", c)
	}
}

// TestSTMAtomicallyManyGoroutines hammers the pooled surface from 64
// goroutines (run under -race in CI): no increment may be lost, and
// the atomic totals must agree with the work done.
func TestSTMAtomicallyManyGoroutines(t *testing.T) {
	const goroutines, perG = 64, 50
	s := stm.New(stm.WithManagerFactory(func() stm.Manager { return politeManager{} }))
	counter := stm.NewVar(0)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := s.Atomically(func(tx *stm.Tx) error { return incr(tx, counter) }); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := counter.Peek(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if c := s.TotalStats().Commits; c != goroutines*perG {
		t.Fatalf("TotalStats().Commits = %d, want %d", c, goroutines*perG)
	}
}

// TestTotalStatsWithoutQuiescence reads TotalStats continuously while
// workers run: the call must be safe mid-flight (the old API required
// quiescence) and the observed commit counts must be monotone.
func TestTotalStatsWithoutQuiescence(t *testing.T) {
	const goroutines, perG = 8, 200
	s := stm.New(stm.WithManagerFactory(func() stm.Manager { return politeManager{} }))
	counter := stm.NewVar(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var monotone atomic.Bool
	monotone.Store(true)
	go func() {
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := s.TotalStats().Commits
			if c < last {
				monotone.Store(false)
			}
			last = c
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := s.Atomically(func(tx *stm.Tx) error { return incr(tx, counter) }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if !monotone.Load() {
		t.Fatal("TotalStats().Commits went backwards during the run")
	}
	if c := s.TotalStats().Commits; c != goroutines*perG {
		t.Fatalf("final Commits = %d, want %d", c, goroutines*perG)
	}
}

// TestUserErrorAbortsExactlyOnce: a user error from inside the
// transactional function runs the function exactly once (no retry) and
// surfaces the error unchanged through the pooled surface, leaving the
// writes unapplied.
func TestUserErrorAbortsExactlyOnce(t *testing.T) {
	s := stm.New()
	v := stm.NewVar(7)
	boom := errors.New("boom")
	calls := 0
	err := s.Atomically(func(tx *stm.Tx) error {
		calls++
		if err := stm.Write(tx, v, 99); err != nil {
			return err
		}
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v, want the identical boom error", err)
	}
	if calls != 1 {
		t.Fatalf("transactional function ran %d times, want exactly 1", calls)
	}
	if got := v.Peek(); got != 7 {
		t.Fatalf("v = %d after user error, want 7 (write must not commit)", got)
	}
	st := s.TotalStats()
	if st.Commits != 0 {
		t.Fatalf("Commits = %d after user error, want 0", st.Commits)
	}
}

// TestWrappedUserErrorSurfaces: a user error wrapping context still
// surfaces (errors.Is-compatible), while wrapped ErrAborted retries.
func TestWrappedUserErrorSurfaces(t *testing.T) {
	s := stm.New()
	base := errors.New("disk on fire")
	err := s.Atomically(func(tx *stm.Tx) error {
		return fmt.Errorf("saving: %w", base)
	})
	if !errors.Is(err, base) {
		t.Fatalf("err = %v, want wrap of %v", err, base)
	}
}

// TestErrHaltedPropagatesWithoutRetry: failure injection surfaces
// ErrHalted through STM.Atomically after a single run of the function,
// and the halted transaction keeps obstructing until an enemy's
// manager clears the corpse (the default manager does).
func TestErrHaltedPropagatesWithoutRetry(t *testing.T) {
	s := stm.New()
	v := stm.NewVar(0)
	calls := 0
	err := s.Atomically(func(tx *stm.Tx) error {
		calls++
		if err := incr(tx, v); err != nil {
			return err
		}
		tx.Halt()
		_, err := stm.Read(tx, v)
		return err
	})
	if !errors.Is(err, stm.ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	if calls != 1 {
		t.Fatalf("halted function ran %d times, want exactly 1 (no retry)", calls)
	}
	if got := v.Peek(); got != 0 {
		t.Fatalf("v = %d, want 0 (halted tx must not commit)", got)
	}
	if h := s.TotalStats().Halted; h != 1 {
		t.Fatalf("Halted = %d, want 1", h)
	}
	// The default manager aborts halted enemies, so a later pooled
	// transaction gets through the corpse.
	if err := s.Atomically(func(tx *stm.Tx) error { return incr(tx, v) }); err != nil {
		t.Fatalf("transaction behind the corpse: %v", err)
	}
	if got := v.Peek(); got != 1 {
		t.Fatalf("v = %d, want 1", got)
	}
}

// TestPanicInTransactionDoesNotWedge: a panic in the transactional
// function (recovered by the caller, as a request handler would)
// must neither leak the pooled session nor leave the attempt active
// and obstructing its Vars.
func TestPanicInTransactionDoesNotWedge(t *testing.T) {
	s := stm.New()
	v := stm.NewVar(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the panic to propagate")
			}
		}()
		_ = s.Atomically(func(tx *stm.Tx) error {
			if err := incr(tx, v); err != nil {
				return err
			}
			panic("handler bug")
		})
	}()
	// The Var must not be wedged behind the orphaned attempt, and the
	// session must be back in the pool.
	if err := s.Atomically(func(tx *stm.Tx) error { return incr(tx, v) }); err != nil {
		t.Fatalf("transaction after recovered panic: %v", err)
	}
	if got := v.Peek(); got != 1 {
		t.Fatalf("v = %d, want 1 (panicked attempt must not commit)", got)
	}
}

// TestAtomicTyped: the typed entry point returns the committed
// attempt's result, and the zero T on error.
func TestAtomicTyped(t *testing.T) {
	s := stm.New()
	a := stm.NewVar(3)
	b := stm.NewVar(4)
	sum, err := stm.Atomic(s, func(tx *stm.Tx) (int, error) {
		av, err := stm.Read(tx, a)
		if err != nil {
			return 0, err
		}
		bv, err := stm.Read(tx, b)
		if err != nil {
			return 0, err
		}
		return av + bv, nil
	})
	if err != nil || sum != 7 {
		t.Fatalf("Atomic = (%d, %v), want (7, nil)", sum, err)
	}
	boom := errors.New("boom")
	got, err := stm.Atomic(s, func(tx *stm.Tx) (int, error) { return 42, boom })
	if err != boom || got != 0 {
		t.Fatalf("Atomic on error = (%d, %v), want (0, boom)", got, err)
	}
}

// TestUpdateErr covers the fallible update: reading another variable
// mid-transition, surfacing a user error exactly once with the private
// version unchanged, and retrying on enemy aborts propagated by a
// nested Read.
func TestUpdateErr(t *testing.T) {
	s := stm.New()
	balance := stm.NewVar(100)
	limit := stm.NewVar(50)

	// Happy path: the transition reads limit mid-update.
	withdraw := func(amount int) error {
		return s.Atomically(func(tx *stm.Tx) error {
			return stm.UpdateErr(tx, balance, func(bal int) (int, error) {
				lim, err := stm.Read(tx, limit)
				if err != nil {
					return 0, err
				}
				if bal-amount < -lim {
					return 0, fmt.Errorf("insufficient funds: %d - %d < -%d", bal, amount, lim)
				}
				return bal - amount, nil
			})
		})
	}
	if err := withdraw(120); err != nil {
		t.Fatal(err)
	}
	if got := balance.Peek(); got != -20 {
		t.Fatalf("balance = %d, want -20", got)
	}

	// Failing transition: surfaces once, leaves the balance alone.
	calls := 0
	err := s.Atomically(func(tx *stm.Tx) error {
		calls++
		return stm.UpdateErr(tx, balance, func(bal int) (int, error) {
			return 0, fmt.Errorf("no")
		})
	})
	if err == nil || err.Error() != "no" {
		t.Fatalf("err = %v, want 'no'", err)
	}
	if calls != 1 {
		t.Fatalf("failing UpdateErr ran %d times, want 1", calls)
	}
	if got := balance.Peek(); got != -20 {
		t.Fatalf("balance = %d after failed update, want -20 unchanged", got)
	}
}

// TestReadAllConsistent / TestSnapshotConsistent: writers move value
// between two vars keeping the sum constant; every multi-var read must
// observe the invariant.
func TestSnapshotConsistent(t *testing.T) {
	const total = 1000
	s := stm.New(stm.WithManagerFactory(func() stm.Manager { return politeManager{} }))
	a := stm.NewVar(total)
	b := stm.NewVar(0)
	var stopWriters atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopWriters.Load() {
				if err := s.Atomically(func(tx *stm.Tx) error {
					if err := stm.Update(tx, a, func(v int) int { return v - 1 }); err != nil {
						return err
					}
					return stm.Update(tx, b, func(v int) int { return v + 1 })
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		vals, err := stm.Snapshot(s, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if vals[0]+vals[1] != total {
			t.Fatalf("snapshot %v sums to %d, want %d — not consistent", vals, vals[0]+vals[1], total)
		}
	}
	// The in-transaction form composes with further reads.
	sums, err := stm.Atomic(s, func(tx *stm.Tx) ([]int, error) {
		return stm.ReadAll(tx, a, b)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sums[0]+sums[1] != total {
		t.Fatalf("ReadAll %v sums to %d, want %d", sums, sums[0]+sums[1], total)
	}
	stopWriters.Store(true)
	wg.Wait()
}

// TestManagerFactoryPerSession: the factory runs once per pooled
// session — at most one instance per concurrent transaction, never
// zero — so managers stay per-stream the way the paper's model
// requires.
func TestManagerFactoryPerSession(t *testing.T) {
	var made atomic.Int64
	s := stm.New(stm.WithManagerFactory(func() stm.Manager {
		made.Add(1)
		return politeManager{}
	}))

	const goroutines, perG = 16, 30
	counter := stm.NewVar(0)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := s.Atomically(func(tx *stm.Tx) error { return incr(tx, counter) }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := counter.Peek(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if n := made.Load(); n == 0 || n > goroutines {
		t.Fatalf("factory ran %d times, want between 1 and %d (one per concurrent session)", n, goroutines)
	}
}

// TestNewNamedVarCloner: the named/deep-copy combination carries the
// name through String and keeps the Cloner's isolation.
func TestNewNamedVarCloner(t *testing.T) {
	deepCopy := func(sl []int) []int {
		c := make([]int, len(sl))
		copy(c, sl)
		return c
	}
	initial := []int{1, 2}
	v := stm.NewNamedVarCloner("scores", initial, deepCopy)
	if got := v.String(); got != "tobj(scores)" {
		t.Fatalf("String() = %q, want %q", got, "tobj(scores)")
	}
	initial[0] = 99
	if got := v.Peek(); got[0] != 1 {
		t.Fatalf("committed version aliases the constructor argument: %v", got)
	}
	s := stm.New()
	if err := s.Atomically(func(tx *stm.Tx) error {
		return stm.Update(tx, v, func(sl []int) []int { sl[1] = 20; return sl })
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Peek(); got[0] != 1 || got[1] != 20 {
		t.Fatalf("Peek = %v, want [1 20]", got)
	}
}

// TestPooledAndPinnedInterleave: Threads and pooled sessions drive the
// same STM and the totals add up.
func TestPooledAndPinnedInterleave(t *testing.T) {
	s := stm.New(stm.WithManagerFactory(func() stm.Manager { return politeManager{} }))
	counter := stm.NewVar(0)
	th := s.NewThread(politeManager{})
	const each = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < each; i++ {
			if err := th.Atomically(func(tx *stm.Tx) error { return incr(tx, counter) }); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < each; i++ {
			if err := s.Atomically(func(tx *stm.Tx) error { return incr(tx, counter) }); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := counter.Peek(); got != 2*each {
		t.Fatalf("counter = %d, want %d", got, 2*each)
	}
	if th.Stats().Commits != each {
		t.Fatalf("thread commits = %d, want %d", th.Stats().Commits, each)
	}
	if c := s.TotalStats().Commits; c != 2*each {
		t.Fatalf("TotalStats().Commits = %d, want %d", c, 2*each)
	}
}
