package stm

// WithCommitHook installs a function that runs inside every writer
// commit between read-set validation and the status CAS. Compiled
// into the test binary only: it lets serializability tests
// deterministically park one committing writer inside the window the
// striped commit protocol must keep exclusive, which on a single-CPU
// host no amount of goroutine timing can otherwise reach.
func WithCommitHook(f func()) Option {
	return func(s *STM) { s.commitHook = f }
}
