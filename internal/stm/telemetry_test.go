package stm

import (
	"testing"
	"time"
)

// TestCommitTelemetry: every committed logical transaction contributes
// one sample to the commit-latency and attempts-per-commit histograms,
// and a first-try commit records exactly one attempt.
func TestCommitTelemetry(t *testing.T) {
	s := New()
	v := NewVar(0)
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Atomically(func(tx *Tx) error {
			return Update(tx, v, func(x int) int { return x + 1 })
		}); err != nil {
			t.Fatal(err)
		}
	}
	lat := s.CommitLatency()
	if lat.Count() != n {
		t.Fatalf("commit latency count = %d, want %d", lat.Count(), n)
	}
	if lat.Quantile(1) <= 0 {
		t.Fatalf("commit latency p100 = %v, want positive", lat.Quantile(1))
	}
	tries := s.CommitAttempts()
	if tries.Count() != n {
		t.Fatalf("attempts count = %d, want %d", tries.Count(), n)
	}
	// Uncontended transactions commit on the first attempt: the mean is
	// exactly 1 (the sum is tracked exactly; quantiles are bucket upper
	// edges and may read as 2 for a value of 1).
	if got := tries.Mean(); got != 1 {
		t.Fatalf("uncontended attempts mean = %d, want 1", got)
	}
	if got := tries.Quantile(1); got > 2 {
		t.Fatalf("uncontended attempts p100 = %d, want <= 2", got)
	}
}

// sleepyManager waits a fixed interval inside ResolveConflict before
// aborting the enemy, so tests can assert WaitNs accounting.
type sleepyManager struct {
	BaseManager
	naps time.Duration
}

func (m *sleepyManager) ResolveConflict(me, enemy *Tx) Decision {
	time.Sleep(m.naps)
	return AbortOther
}

// TestWaitTimeAccounting: time spent inside the contention manager's
// ResolveConflict lands in Stats.WaitNs. The enemy is a halted
// transaction left obstructing the object, the deterministic way to
// force exactly one conflict episode.
func TestWaitTimeAccounting(t *testing.T) {
	s := New()
	v := NewVar(0)

	// Park a halted-but-active enemy owning v.
	victim := s.NewThread(&defaultManager{})
	err := victim.Atomically(func(tx *Tx) error {
		if err := Write(tx, v, 1); err != nil {
			return err
		}
		tx.Halt()
		return ErrHalted
	})
	if err != ErrHalted {
		t.Fatalf("victim error = %v, want ErrHalted", err)
	}

	const nap = 2 * time.Millisecond
	attacker := s.NewThread(&sleepyManager{naps: nap})
	if err := attacker.Atomically(func(tx *Tx) error {
		return Write(tx, v, 2)
	}); err != nil {
		t.Fatal(err)
	}
	st := attacker.Stats()
	if st.WaitNs < int64(nap) {
		t.Fatalf("WaitNs = %v, want >= %v", time.Duration(st.WaitNs), nap)
	}
	total := s.TotalStats()
	if total.WaitNs < st.WaitNs {
		t.Fatalf("TotalStats.WaitNs = %d < thread WaitNs = %d", total.WaitNs, st.WaitNs)
	}
	if total.BackoffNs < 0 {
		t.Fatalf("BackoffNs negative: %d", total.BackoffNs)
	}
}

// TestStatsAddIncludesTelemetry guards against a field being forgotten
// in Stats.Add when new counters are introduced.
func TestStatsAddIncludesTelemetry(t *testing.T) {
	a := Stats{WaitNs: 3, BackoffNs: 5}
	a.Add(Stats{WaitNs: 7, BackoffNs: 11})
	if a.WaitNs != 10 || a.BackoffNs != 16 {
		t.Fatalf("Add dropped telemetry fields: %+v", a)
	}
}
