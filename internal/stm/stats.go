package stm

import "sync/atomic"

// Stats is a snapshot of transaction statistics: per session through
// Thread.Stats, or aggregated over every session of an STM through
// STM.TotalStats. The live counters are atomic, so snapshots may be
// taken at any time, concurrently with running transactions.
type Stats struct {
	// Commits counts committed logical transactions.
	Commits int64
	// Aborts counts aborted attempts (a logical transaction that
	// aborted twice and then committed contributes 2 here and 1 to
	// Commits).
	Aborts int64
	// AbortsEnemy, AbortsValidation and AbortsCASRace partition Aborts
	// by cause (see AbortCause): an enemy's manager killed the attempt
	// (or its own ruled AbortSelf); read-set validation failed; the
	// commit status CAS lost to an enemy abort inside the commit
	// window. Their sum always equals Aborts — the accounting the
	// abort-forensics tests hammer.
	AbortsEnemy      int64
	AbortsValidation int64
	AbortsCASRace    int64
	// AbortsUser counts attempts ended by a non-retryable user error.
	// Not part of Aborts (which has always counted only retried
	// attempts), and tracked so INFO can separate command failures
	// from contention.
	AbortsUser int64
	// Conflicts counts conflicts observed: open-time
	// contention-manager consultations (eager mode) plus commit-time
	// validation failures (all modes — so eager and lazy conflict
	// counts are comparable in the figures).
	Conflicts int64
	// EnemyAborts counts conflicts this thread resolved by aborting
	// the enemy.
	EnemyAborts int64
	// Opens counts successful object opens (reads and writes).
	Opens int64
	// Halted counts attempts abandoned by failure injection.
	Halted int64
	// WaitNs is total nanoseconds spent inside the contention
	// manager's ResolveConflict — the policy-chosen waiting the paper
	// holds against wait-based managers (karma's Figure 10 convoy is a
	// WaitNs explosion, invisible in Commits/Aborts alone). Lazy mode
	// never consults the manager at open time, so it accrues none.
	WaitNs int64
	// BackoffNs is total nanoseconds spent in engine-level backoff:
	// acquisition CAS retries and installer-wait loops. Unlike WaitNs
	// this is mechanism, not policy — every manager pays it equally.
	BackoffNs int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Commits += other.Commits
	s.Aborts += other.Aborts
	s.AbortsEnemy += other.AbortsEnemy
	s.AbortsValidation += other.AbortsValidation
	s.AbortsCASRace += other.AbortsCASRace
	s.AbortsUser += other.AbortsUser
	s.Conflicts += other.Conflicts
	s.EnemyAborts += other.EnemyAborts
	s.Opens += other.Opens
	s.Halted += other.Halted
	s.WaitNs += other.WaitNs
	s.BackoffNs += other.BackoffNs
}

// atomicStats is the live, concurrently readable form of Stats. Each
// counter is written only by the goroutine currently holding the
// session (uncontended atomic adds) and read by TotalStats at any
// time.
type atomicStats struct {
	commits          atomic.Int64
	aborts           atomic.Int64
	abortsEnemy      atomic.Int64
	abortsValidation atomic.Int64
	abortsCASRace    atomic.Int64
	abortsUser       atomic.Int64
	conflicts        atomic.Int64
	enemyAborts      atomic.Int64
	opens            atomic.Int64
	halted           atomic.Int64
	waitNs           atomic.Int64
	backoffNs        atomic.Int64
}

// noteAbort charges one counted abort to its cause bucket. CauseNone
// (the transactional function surfaced ErrAborted without any engine
// site classifying the death — only possible when user code returns
// ErrAborted itself) is charged to the enemy bucket, so the partition
// invariant sum(per-cause) == Aborts holds unconditionally.
func (a *atomicStats) noteAbort(c AbortCause) {
	a.aborts.Add(1)
	switch c {
	case CauseValidation:
		a.abortsValidation.Add(1)
	case CauseCASRace:
		a.abortsCASRace.Add(1)
	default:
		a.abortsEnemy.Add(1)
	}
}

// snapshot captures the counters as a plain Stats value.
func (a *atomicStats) snapshot() Stats {
	return Stats{
		Commits:          a.commits.Load(),
		Aborts:           a.aborts.Load(),
		AbortsEnemy:      a.abortsEnemy.Load(),
		AbortsValidation: a.abortsValidation.Load(),
		AbortsCASRace:    a.abortsCASRace.Load(),
		AbortsUser:       a.abortsUser.Load(),
		Conflicts:        a.conflicts.Load(),
		EnemyAborts:      a.enemyAborts.Load(),
		Opens:            a.opens.Load(),
		Halted:           a.halted.Load(),
		WaitNs:           a.waitNs.Load(),
		BackoffNs:        a.backoffNs.Load(),
	}
}

// AbortRate returns the fraction of attempts that aborted, in [0,1].
func (s *Stats) AbortRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}
