package stm

// Stats accumulates per-thread transaction statistics. Each Thread
// owns one Stats and updates it without synchronization; read a
// thread's stats only after its workers have stopped, or use
// STM.TotalStats for an aggregate snapshot.
type Stats struct {
	// Commits counts committed logical transactions.
	Commits int64
	// Aborts counts aborted attempts (a logical transaction that
	// aborted twice and then committed contributes 2 here and 1 to
	// Commits).
	Aborts int64
	// Conflicts counts contention-manager consultations.
	Conflicts int64
	// EnemyAborts counts conflicts this thread resolved by aborting
	// the enemy.
	EnemyAborts int64
	// Opens counts successful object opens (reads and writes).
	Opens int64
	// Halted counts attempts abandoned by failure injection.
	Halted int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Commits += other.Commits
	s.Aborts += other.Aborts
	s.Conflicts += other.Conflicts
	s.EnemyAborts += other.EnemyAborts
	s.Opens += other.Opens
	s.Halted += other.Halted
}

// AbortRate returns the fraction of attempts that aborted, in [0,1].
func (s *Stats) AbortRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}
