// Package stm implements an obstruction-free software transactional
// memory in the style of DSTM (Herlihy, Luchangco, Moir, Scherer, PODC
// 2003) and its C# descendant SXM, the system used for the experimental
// evaluation in Guerraoui, Herlihy and Pochon, "Toward a Theory of
// Transactional Contention Managers" (PODC 2005/2006).
//
// # Typed API
//
// Transactional data lives in generic Var[T] handles, accessed inside
// transactions with the package-level Read, Write, Update, UpdateErr
// and ReadAll functions. Transactions run from any goroutine through
// the STM itself:
//
//	s := stm.New(stm.WithManagerFactory(core.MustFactory("greedy")))
//	account := stm.NewVar(10)
//	err := s.Atomically(func(tx *stm.Tx) error {
//		return stm.Update(tx, account, func(balance int) int {
//			return balance + 1
//		})
//	})
//
// Each Atomically call borrows a pooled session carrying a private
// contention-manager instance (built by the factory the STM was
// configured with), so any number of goroutines may call it
// concurrently — a goroutine-per-request server needs no worker
// pinning. Atomic is the typed entry point for transactions that
// return a value, and Snapshot is the packaged consistent multi-Var
// read. The paper-faithful pinned surface remains as Thread (one
// session, one manager instance, one goroutine at a time):
//
//	th := s.NewThread(core.NewGreedy())   // fixed-thread sweeps
//	err = th.Atomically(...)
//
// The whole flow is compile-time checked: no Value interface, no type
// assertions, no panic surface. By default a transaction's private
// copy of a value is made by plain assignment, which is correct for
// plain data and for payloads whose pointers, slices and maps are
// treated as immutable (handles such as *Var are immutable and may be
// shared freely between versions). Payloads with mutable indirect
// state install a deep-copy strategy with NewVarCloner or
// NewNamedVarCloner. Transactional code must propagate the error
// returned by Read, Write, Update and friends: a non-nil error means
// the transaction has been aborted by an enemy, and Atomically will
// retry it with the same timestamp.
//
// Statistics are atomic per session and aggregated by STM.TotalStats,
// which is safe to call at any time, concurrently with running
// transactions — no quiescence required. Every abort is charged to
// exactly one cause (AbortsEnemy + AbortsValidation + AbortsCASRace ==
// Aborts; user errors count separately in AbortsUser). For per-object
// and per-enemy attribution beyond the counters, WithTracer installs
// the flight recorder (trace.go): a sampled per-session event log of
// begins, opens, conflicts, aborts and commits, delivered to a
// TraceSink after the commit stripes release. Transactions are named
// with SetLabel (labels interned once via InternLabel), objects via
// NewNamedVar; WithRuntimeTrace additionally emits runtime/trace tasks
// and regions when go tool trace collection is live. The hook sites
// are nil checks — a world without a tracer pays nothing (enforced by
// TestTracerDisabledAllocParity).
//
// # The untyped engine
//
// Underneath the typed facade sits the untyped DSTM machinery — TObj
// handles, the Value interface, OpenRead and OpenWrite — which is what
// the contention managers, the failure injector and the tests of the
// conflict protocol see. Each TObj holds a locator: a triple of (owner
// transaction, old version, new version) installed by compare-and-swap.
// A transaction commits by changing its status word from active to
// committed with a single compare-and-swap; one transaction aborts
// another the same way. Conflict detection is eager: a transaction
// discovers a conflict the moment it opens an object another active
// transaction has open for writing, and at that moment it consults its
// contention manager, which decides whether to abort the enemy or to
// wait. This is exactly the structure the paper assumes: correctness
// (serializability) is the STM's job, progress (liveness) is the
// contention manager's job. Var[T] adds nothing to this protocol — it
// wraps a TObj whose versions carry a T, so the typed and untyped
// surfaces drive one engine and the managers cannot tell them apart
// (BenchmarkTypedVsUntyped holds the facade to allocation parity).
//
// Transactions carry the three pieces of state the paper's greedy
// manager needs (Section 3):
//
//   - a timestamp, acquired when the logical transaction first begins
//     and retained across aborts and retries;
//   - an atomic status field (active, committed, aborted) changed only
//     by compare-and-swap;
//   - a public waiting flag that tells other transactions whether this
//     one is currently waiting for an enemy.
//
// Reads are invisible: readers record the version they saw and
// revalidate their read set whenever the global commit clock advances
// and at commit time, so committed transactions are serializable and
// reads are consistent (a transaction never observes two snapshots that
// no serial execution could produce without subsequently aborting).
package stm
