package stm_test

import (
	"sync"
	"testing"

	"repro/internal/stm"
)

func TestLazyBasicCommit(t *testing.T) {
	s := stm.New(stm.WithLazyConflicts())
	obj := stm.NewVar(0)
	th := s.NewThread(politeManager{})
	if err := th.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) }); err != nil {
		t.Fatal(err)
	}
	if got := obj.Peek(); got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
	if !s.Lazy() {
		t.Fatal("Lazy() = false on a lazy STM")
	}
}

func TestLazyReadOwnWrite(t *testing.T) {
	s := stm.New(stm.WithLazyConflicts())
	obj := stm.NewTObj(stm.NewBox[int](10))
	th := s.NewThread(politeManager{})
	err := th.Atomically(func(tx *stm.Tx) error {
		w0, err := tx.OpenWrite(obj)
		if err != nil {
			return err
		}
		w0.(*stm.Box[int]).V++
		v, err := tx.OpenRead(obj)
		if err != nil {
			return err
		}
		if got := v.(*stm.Box[int]).V; got != 11 {
			t.Errorf("read own lazy write saw %d, want 11", got)
		}
		// Writing again returns the same buffer.
		w, err := tx.OpenWrite(obj)
		if err != nil {
			return err
		}
		if w != v {
			t.Error("second OpenWrite returned a different buffer")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLazyWritesInvisibleUntilCommit(t *testing.T) {
	s := stm.New(stm.WithLazyConflicts())
	obj := stm.NewVar(0)
	writer := s.NewThread(politeManager{})

	held := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		_ = writer.Atomically(func(tx *stm.Tx) error {
			if err := incr(tx, obj); err != nil {
				return err
			}
			if first {
				first = false
				close(held)
				<-release
			}
			return nil
		})
	}()
	<-held
	// Mid-flight, the committed version is untouched and no locator
	// conflict exists: a reader proceeds without consulting any
	// contention manager.
	if got := obj.Peek(); got != 0 {
		t.Fatalf("uncommitted lazy write visible: %d", got)
	}
	reader := s.NewThread(politeManager{})
	err := reader.Atomically(func(tx *stm.Tx) error {
		got, err := stm.Read(tx, obj)
		if err != nil {
			return err
		}
		if got != 0 {
			t.Errorf("reader saw uncommitted lazy write: %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	wg.Wait()
	if got := obj.Peek(); got != 1 {
		t.Fatalf("after commit counter = %d, want 1", got)
	}
}

func TestLazyFirstCommitterWins(t *testing.T) {
	s := stm.New(stm.WithLazyConflicts())
	obj := stm.NewVar(0)

	loser := s.NewThread(politeManager{})
	held := make(chan struct{})
	release := make(chan struct{})
	attempts := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = loser.Atomically(func(tx *stm.Tx) error {
			attempts++
			if err := incr(tx, obj); err != nil {
				return err
			}
			if attempts == 1 {
				close(held)
				<-release
			}
			return nil
		})
	}()
	<-held
	// The winner commits while the loser is mid-flight.
	winner := s.NewThread(politeManager{})
	if err := winner.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) }); err != nil {
		t.Fatal(err)
	}
	close(release)
	wg.Wait()
	if attempts < 2 {
		t.Fatalf("loser committed without retrying (attempts=%d); commit-time validation failed to catch the conflict", attempts)
	}
	if got := obj.Peek(); got != 2 {
		t.Fatalf("counter = %d, want 2", got)
	}
	if loser.Stats().Conflicts == 0 {
		t.Fatal("loser recorded no commit-time conflict")
	}
}

func TestLazyCounterStress(t *testing.T) {
	s := stm.New(stm.WithLazyConflicts(), stm.WithInterleavePeriod(2))
	obj := stm.NewVar(0)
	const workers, perWorker = 6, 150
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		th := s.NewThread(politeManager{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := th.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) }); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := obj.Peek(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestLazySnapshotConsistency(t *testing.T) {
	// Writers keep x == y; readers must never commit a view with
	// x != y even though installation is multi-object (the seqlock
	// protects the cut).
	s := stm.New(stm.WithLazyConflicts(), stm.WithInterleavePeriod(2))
	x := stm.NewVar(0)
	y := stm.NewVar(0)
	const writers, readers, per = 3, 3, 120
	var wg sync.WaitGroup
	bad := make(chan [2]int, readers*per)
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		th := s.NewThread(politeManager{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := th.Atomically(func(tx *stm.Tx) error {
					if err := incr(tx, x); err != nil {
						return err
					}
					return incr(tx, y)
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		th := s.NewThread(politeManager{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var got [2]int
				if err := th.Atomically(func(tx *stm.Tx) error {
					xv, err := stm.Read(tx, x)
					if err != nil {
						return err
					}
					yv, err := stm.Read(tx, y)
					if err != nil {
						return err
					}
					got = [2]int{xv, yv}
					return nil
				}); err != nil {
					errs <- err
					return
				}
				if got[0] != got[1] {
					bad <- got
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	close(bad)
	for err := range errs {
		t.Fatal(err)
	}
	for v := range bad {
		t.Fatalf("reader committed inconsistent snapshot x=%d y=%d", v[0], v[1])
	}
}

func TestLazyNeverConsultsManager(t *testing.T) {
	s := stm.New(stm.WithLazyConflicts(), stm.WithInterleavePeriod(1))
	obj := stm.NewVar(0)
	const workers, per = 4, 60
	var wg sync.WaitGroup
	threads := make([]*stm.Thread, workers)
	for w := 0; w < workers; w++ {
		threads[w] = s.NewThread(countingManager{t: t})
		wg.Add(1)
		go func(th *stm.Thread) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = th.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) })
			}
		}(threads[w])
	}
	wg.Wait()
}

// countingManager fails the test if ResolveConflict is ever reached in
// lazy mode.
type countingManager struct {
	stm.BaseManager
	t *testing.T
}

func (m countingManager) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	m.t.Errorf("ResolveConflict called in lazy mode")
	return stm.AbortOther
}
