package stm

// This file is the typed transactional API: a generic facade over the
// untyped locator/TObj engine. Var[T] wraps a TObj whose committed
// versions are varBox[T] values, so Read/Write/Update can hand callers
// T directly — no Value interface, no type assertions, no panic
// surface — while the conflict protocol underneath (and hence
// everything the contention managers see) is exactly the one the
// untyped API drives.
//
// The facade is zero-overhead relative to hand-written Box[T] code:
// opening for writing still performs exactly one clone allocation (the
// varBox), reads allocate nothing, and BenchmarkTypedVsUntyped holds
// the two paths to identical allocation counts.

// Cloner is a pluggable deep-copy strategy for a Var's payload. The
// returned value must not share mutable state with the argument:
// mutations of one must not be observable through the other. Handles
// (*Var, *TObj) are immutable and may be shared freely.
type Cloner[T any] func(T) T

// varBox adapts a typed payload to the untyped Value engine. The
// back-pointer carries the Var's clone strategy into Clone, which the
// engine invokes without knowing the payload type.
type varBox[T any] struct {
	va  *Var[T]
	val T
}

// Clone implements Value: a shallow copy of the payload, deepened by
// the Var's Cloner when one is installed.
func (b *varBox[T]) Clone() Value {
	c := &varBox[T]{va: b.va, val: b.val}
	if cl := b.va.clone; cl != nil {
		c.val = cl(c.val)
	}
	return c
}

// Var is a typed transactional variable holding a T. It is the typed
// counterpart of TObj: a shared handle whose versioned contents are
// accessed inside transactions with Read, Write and Update. Handles
// are immutable and safe to share between threads and to embed in
// other transactional payloads; the zero Var is not usable — create
// variables with NewVar (or its variants).
//
// By default a transaction's private copy is made by plain assignment
// (the Box[T] semantics): appropriate when T is plain data, or when
// any pointers, slices or maps inside T are treated as immutable.
// Payloads with mutable indirect state need NewVarCloner.
type Var[T any] struct {
	obj   TObj
	clone Cloner[T]
}

// NewVar creates a transactional variable whose initial committed
// value is v, with the shallow (assignment) clone strategy.
func NewVar[T any](v T) *Var[T] {
	va := &Var[T]{}
	va.obj.stripe = nextStripe()
	va.obj.loc.Store(&locator{newVal: &varBox[T]{va: va, val: v}})
	return va
}

// NewVarCloner creates a transactional variable with a deep-copy
// strategy: clone is applied whenever a transaction takes a private
// copy of the value, so mutable state reached through pointers, slices
// or maps inside T stays private to the writer until commit. The
// initial value is cloned too — like Write, NewVarCloner never lets a
// committed version alias caller-owned mutable state.
func NewVarCloner[T any](v T, clone Cloner[T]) *Var[T] {
	va := NewVar(clone(v))
	va.clone = clone
	return va
}

// NewNamedVar creates a transactional variable with a debugging label
// reported by String. Names are for tests and debugging; the hot paths
// never touch them.
func NewNamedVar[T any](name string, v T) *Var[T] {
	va := NewVar(v)
	va.obj.name = name
	return va
}

// NewNamedVarCloner combines NewNamedVar and NewVarCloner: a
// transactional variable with both a debugging label and a deep-copy
// strategy. Like NewVarCloner, the initial value is cloned so the
// committed version never aliases caller-owned mutable state.
func NewNamedVarCloner[T any](name string, v T, clone Cloner[T]) *Var[T] {
	va := NewVarCloner(v, clone)
	va.obj.name = name
	return va
}

// Obj returns the variable's underlying transactional object, for
// interoperation with the untyped engine (failure injection, manager
// tests, debugging). The handle identifies the same versioned slot:
// opening it directly bypasses the typed facade, not the STM.
func (v *Var[T]) Obj() *TObj { return &v.obj }

// String identifies the variable for debugging.
func (v *Var[T]) String() string { return v.obj.String() }

// Peek returns the current committed value outside any transaction.
// It is intended for post-run verification in tests and examples;
// concurrent use is safe but yields only a single-variable snapshot.
func (v *Var[T]) Peek() T { return v.obj.committed().(*varBox[T]).val }

// Read records v's committed value in the transaction's read set and
// returns it. The returned value is a copy at T's top level, but any
// state it reaches through pointers, slices or maps is shared with the
// committed version and must be treated as immutable. A non-nil error
// means the transaction has been aborted or halted and must be
// propagated out of the transactional function.
func Read[T any](tx *Tx, v *Var[T]) (T, error) {
	val, err := v.obj.openRead(tx)
	if err != nil {
		var zero T
		return zero, err
	}
	return val.(*varBox[T]).val, nil
}

// Write opens v for writing and sets the transaction's private version
// to x, which becomes the committed value if and only if the
// transaction commits. Because the whole value is replaced, Write
// skips the pre-image clone that Update pays for; the Var's Cloner
// (if any) is instead applied to x, so the private version never
// aliases caller-owned mutable state — without that copy, an in-place
// Update after the Write would mutate the caller's value and an
// abort-retry would replay against the corrupted input. The error
// contract is Read's.
func Write[T any](tx *Tx, v *Var[T], x T) error {
	if v.clone != nil {
		x = v.clone(x)
	}
	val, err := v.obj.openWriteAs(tx, func() Value { return &varBox[T]{va: v, val: x} })
	if err != nil {
		return err
	}
	// Write-after-write: ownership was already ours, so openWriteAs
	// returned the existing private version; overwrite it in place.
	// (On fresh acquisition this re-stores the value just installed.)
	val.(*varBox[T]).val = x
	return nil
}

// Update opens v for writing and replaces the transaction's private
// version with f applied to it — the transactional read-modify-write.
// f receives the private copy (deepened by the Var's Cloner, if any),
// so it may mutate the value in place and return it; it must be free
// of side effects outside the transaction, since an abort retries the
// whole transactional function. The error contract is Read's.
func Update[T any](tx *Tx, v *Var[T], f func(T) T) error {
	val, err := v.obj.openWrite(tx)
	if err != nil {
		return err
	}
	b := val.(*varBox[T])
	b.val = f(b.val)
	return nil
}

// UpdateErr is the fallible form of Update for transitions that must
// themselves read other variables or otherwise fail: f receives the
// private copy and may return an error, in which case the private
// version is left unchanged and the error propagates out — Atomically
// then aborts the transaction once and surfaces the error to the
// caller unchanged (unless it is ErrAborted, which retries as usual,
// so f may simply propagate errors from nested Read calls):
//
//	err := stm.UpdateErr(tx, account, func(bal int) (int, error) {
//		limit, err := stm.Read(tx, creditLimit)
//		if err != nil {
//			return 0, err
//		}
//		if bal-amount < -limit {
//			return 0, ErrInsufficientFunds
//		}
//		return bal - amount, nil
//	})
func UpdateErr[T any](tx *Tx, v *Var[T], f func(T) (T, error)) error {
	val, err := v.obj.openWrite(tx)
	if err != nil {
		return err
	}
	b := val.(*varBox[T])
	nv, err := f(b.val)
	if err != nil {
		return err
	}
	b.val = nv
	return nil
}

// Swap opens v for writing, replaces the transaction's private version
// with x, and returns the value it replaced — the transactional
// exchange that container code (queue head/tail rotation, cache
// eviction) would otherwise spell as a Read followed by a Write of the
// same variable. The Var's Cloner (if any) is applied to x exactly as
// in Write. The error contract is Read's.
func Swap[T any](tx *Tx, v *Var[T], x T) (T, error) {
	if v.clone != nil {
		x = v.clone(x)
	}
	val, err := v.obj.openWrite(tx)
	if err != nil {
		var zero T
		return zero, err
	}
	b := val.(*varBox[T])
	old := b.val
	b.val = x
	return old, nil
}

// CompareAndSwap replaces v's value with new only if it currently
// equals old, reporting whether the swap happened. Unlike a hardware
// CAS it needs no retry loop — the transaction already isolates the
// compare from the swap — and a failed compare costs only a read, so
// it never acquires ownership (and hence never creates a write
// conflict) on the no-op path. The error contract is Read's.
func CompareAndSwap[T comparable](tx *Tx, v *Var[T], old, new T) (bool, error) {
	cur, err := Read(tx, v)
	if err != nil {
		return false, err
	}
	if cur != old {
		return false, nil
	}
	if err := Write(tx, v, new); err != nil {
		return false, err
	}
	return true, nil
}

// ReadAll records every variable's committed value in the
// transaction's read set and returns the values in argument order — a
// consistent multi-variable read: validation guarantees that some
// serial execution could have exhibited exactly these values
// simultaneously (a writer committing mid-scan aborts and retries the
// transaction). The error contract is Read's.
func ReadAll[T any](tx *Tx, vars ...*Var[T]) ([]T, error) {
	out := make([]T, len(vars))
	for i, v := range vars {
		val, err := Read(tx, v)
		if err != nil {
			return nil, err
		}
		out[i] = val
	}
	return out, nil
}

// Snapshot returns a consistent snapshot of the variables, taken in
// its own read-only transaction on a pooled session — the
// multi-variable counterpart of Peek, callable from any goroutine:
//
//	balances, err := stm.Snapshot(s, accounts...)
//
// Unlike looping Var.Peek, the values are guaranteed simultaneously
// valid: the transaction's serialization point is a commit-clock-
// stable scan of the read set.
func Snapshot[T any](s *STM, vars ...*Var[T]) ([]T, error) {
	return Atomic(s, func(tx *Tx) ([]T, error) {
		return ReadAll(tx, vars...)
	})
}
