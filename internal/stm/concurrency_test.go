package stm_test

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stm"
)

// runCounterStress has workers concurrently increment a shared
// transactional counter and checks that no increment is lost or
// duplicated — the basic serializability smoke test.
func runCounterStress(t *testing.T, mgr func() stm.Manager, workers, perWorker int) {
	t.Helper()
	s := stm.New()
	obj := stm.NewTObj(stm.NewBox[int](0))
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		th := s.NewThread(mgr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := th.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) }); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := workers * perWorker
	if got := counterValue(t, obj); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if c := s.TotalStats().Commits; c != int64(want) {
		t.Fatalf("commits = %d, want %d", c, want)
	}
}

func TestCounterStressAggressive(t *testing.T) {
	runCounterStress(t, func() stm.Manager { return aggressiveManager{} }, 8, 200)
}

func TestCounterStressPolite(t *testing.T) {
	runCounterStress(t, func() stm.Manager { return politeManager{} }, 8, 200)
}

// TestTwoObjectInvariant checks serializability across objects: every
// transaction moves one unit from a to b, so a+b is invariant and no
// interleaving may expose a state where the sum differs.
func TestTwoObjectInvariant(t *testing.T) {
	const workers, perWorker, initial = 6, 150, 10_000
	s := stm.New()
	a := stm.NewTObj(stm.NewBox[int](initial))
	b := stm.NewTObj(stm.NewBox[int](0))

	var violations sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := s.NewThread(aggressiveManager{})
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := th.Atomically(func(tx *stm.Tx) error {
					av, err := tx.OpenWrite(a)
					if err != nil {
						return err
					}
					bv, err := tx.OpenWrite(b)
					if err != nil {
						return err
					}
					ab, bb := av.(*stm.Box[int]), bv.(*stm.Box[int])
					if ab.V+bb.V != initial {
						violations.Store(id, ab.V+bb.V)
					}
					ab.V--
					bb.V++
					return nil
				})
				if err != nil {
					violations.Store(id, err)
				}
			}
		}(w)
	}
	wg.Wait()
	violations.Range(func(k, v any) bool {
		t.Fatalf("worker %v observed violation: %v", k, v)
		return false
	})
	got := a.Peek().(*stm.Box[int]).V + b.Peek().(*stm.Box[int]).V
	if got != initial {
		t.Fatalf("a+b = %d, want %d", got, initial)
	}
	if moved := b.Peek().(*stm.Box[int]).V; moved != workers*perWorker {
		t.Fatalf("b = %d, want %d", moved, workers*perWorker)
	}
}

// TestReadersSeeConsistentSnapshots runs writers that keep x == y and
// readers that assert it; any observed x != y inside a committed
// read-only transaction is a serializability bug.
func TestReadersSeeConsistentSnapshots(t *testing.T) {
	const writers, readers, perWorker = 4, 4, 200
	s := stm.New()
	x := stm.NewTObj(stm.NewBox[int](0))
	y := stm.NewTObj(stm.NewBox[int](0))

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		th := s.NewThread(aggressiveManager{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := th.Atomically(func(tx *stm.Tx) error {
					xv, err := tx.OpenWrite(x)
					if err != nil {
						return err
					}
					yv, err := tx.OpenWrite(y)
					if err != nil {
						return err
					}
					xv.(*stm.Box[int]).V++
					yv.(*stm.Box[int]).V++
					return nil
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	type pair struct{ x, y int }
	seen := make(chan pair, readers*perWorker)
	for r := 0; r < readers; r++ {
		th := s.NewThread(politeManager{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var p pair
				if err := th.Atomically(func(tx *stm.Tx) error {
					xv, err := tx.OpenRead(x)
					if err != nil {
						return err
					}
					yv, err := tx.OpenRead(y)
					if err != nil {
						return err
					}
					p = pair{xv.(*stm.Box[int]).V, yv.(*stm.Box[int]).V}
					return nil
				}); err != nil {
					errs <- err
					return
				}
				seen <- p
			}
		}()
	}
	wg.Wait()
	close(errs)
	close(seen)
	for err := range errs {
		t.Fatal(err)
	}
	for p := range seen {
		if p.x != p.y {
			t.Fatalf("committed read-only transaction observed x=%d y=%d; want equal", p.x, p.y)
		}
	}
}

// TestQuickBankConservation is a property test: arbitrary sequences of
// transfers between arbitrary accounts conserve the total balance.
func TestQuickBankConservation(t *testing.T) {
	property := func(seedAmounts []uint8, transfers []uint16) bool {
		if len(seedAmounts) == 0 {
			return true
		}
		s := stm.New()
		accounts := make([]*stm.TObj, len(seedAmounts))
		total := 0
		for i, amt := range seedAmounts {
			accounts[i] = stm.NewTObj(stm.NewBox[int](int(amt)))
			total += int(amt)
		}
		th := s.NewThread(aggressiveManager{})
		for _, tr := range transfers {
			from := int(tr>>8) % len(accounts)
			to := int(tr&0xff) % len(accounts)
			amount := int(tr % 7)
			if from == to {
				continue
			}
			err := th.Atomically(func(tx *stm.Tx) error {
				fv, err := tx.OpenWrite(accounts[from])
				if err != nil {
					return err
				}
				tv, err := tx.OpenWrite(accounts[to])
				if err != nil {
					return err
				}
				fv.(*stm.Box[int]).V -= amount
				tv.(*stm.Box[int]).V += amount
				return nil
			})
			if err != nil {
				return false
			}
		}
		got := 0
		for _, acct := range accounts {
			got += acct.Peek().(*stm.Box[int]).V
		}
		return got == total
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStatusStringTotal pins the Status and Decision String
// methods (exhaustive over valid values plus an invalid one).
func TestQuickStatusStringTotal(t *testing.T) {
	cases := map[stm.Status]string{
		stm.StatusActive:    "active",
		stm.StatusCommitted: "committed",
		stm.StatusAborted:   "aborted",
		stm.Status(99):      "invalid",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", st, got, want)
		}
	}
	dcases := map[stm.Decision]string{
		stm.Wait:         "wait",
		stm.AbortOther:   "abort-other",
		stm.AbortSelf:    "abort-self",
		stm.Decision(99): "invalid",
	}
	for d, want := range dcases {
		if got := d.String(); got != want {
			t.Errorf("Decision(%d).String() = %q, want %q", d, got, want)
		}
	}
}
