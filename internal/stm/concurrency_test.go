package stm_test

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stm"
)

// runCounterStress has workers concurrently increment a shared
// transactional counter and checks that no increment is lost or
// duplicated — the basic serializability smoke test, run through the
// goroutine-agnostic pooled surface.
func runCounterStress(t *testing.T, mgr stm.ManagerFactory, workers, perWorker int) {
	t.Helper()
	s := stm.New(stm.WithManagerFactory(mgr))
	obj := stm.NewVar(0)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := s.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) }); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := workers * perWorker
	if got := counterValue(t, obj); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if c := s.TotalStats().Commits; c != int64(want) {
		t.Fatalf("commits = %d, want %d", c, want)
	}
}

func TestCounterStressAggressive(t *testing.T) {
	runCounterStress(t, func() stm.Manager { return aggressiveManager{} }, 8, 200)
}

func TestCounterStressPolite(t *testing.T) {
	runCounterStress(t, func() stm.Manager { return politeManager{} }, 8, 200)
}

// TestTwoObjectInvariant checks serializability across objects: every
// transaction moves one unit from a to b, so a+b is invariant and no
// interleaving may expose a state where the sum differs.
func TestTwoObjectInvariant(t *testing.T) {
	const workers, perWorker, initial = 6, 150, 10_000
	s := stm.New()
	a := stm.NewVar(initial)
	b := stm.NewVar(0)

	var violations sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := s.NewThread(aggressiveManager{})
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := th.Atomically(func(tx *stm.Tx) error {
					var av int
					if err := stm.Update(tx, a, func(v int) int { av = v; return v - 1 }); err != nil {
						return err
					}
					return stm.Update(tx, b, func(v int) int {
						if av+v != initial {
							violations.Store(id, av+v)
						}
						return v + 1
					})
				})
				if err != nil {
					violations.Store(id, err)
				}
			}
		}(w)
	}
	wg.Wait()
	violations.Range(func(k, v any) bool {
		t.Fatalf("worker %v observed violation: %v", k, v)
		return false
	})
	got := a.Peek() + b.Peek()
	if got != initial {
		t.Fatalf("a+b = %d, want %d", got, initial)
	}
	if moved := b.Peek(); moved != workers*perWorker {
		t.Fatalf("b = %d, want %d", moved, workers*perWorker)
	}
}

// TestReadersSeeConsistentSnapshots runs writers that keep x == y and
// readers that assert it; any observed x != y inside a committed
// read-only transaction is a serializability bug.
func TestReadersSeeConsistentSnapshots(t *testing.T) {
	const writers, readers, perWorker = 4, 4, 200
	s := stm.New(stm.WithManagerFactory(func() stm.Manager { return politeManager{} }))
	x := stm.NewVar(0)
	y := stm.NewVar(0)

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		th := s.NewThread(aggressiveManager{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := th.Atomically(func(tx *stm.Tx) error {
					if err := incr(tx, x); err != nil {
						return err
					}
					return incr(tx, y)
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	type pair struct{ x, y int }
	seen := make(chan pair, readers*perWorker)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Readers use the typed multi-var form on the pooled
				// surface; the snapshot is consistent by construction.
				vals, err := stm.Atomic(s, func(tx *stm.Tx) ([2]int, error) {
					xv, err := stm.Read(tx, x)
					if err != nil {
						return [2]int{}, err
					}
					yv, err := stm.Read(tx, y)
					if err != nil {
						return [2]int{}, err
					}
					return [2]int{xv, yv}, nil
				})
				if err != nil {
					errs <- err
					return
				}
				seen <- pair{vals[0], vals[1]}
			}
		}()
	}
	wg.Wait()
	close(errs)
	close(seen)
	for err := range errs {
		t.Fatal(err)
	}
	for p := range seen {
		if p.x != p.y {
			t.Fatalf("committed read-only transaction observed x=%d y=%d; want equal", p.x, p.y)
		}
	}
}

// TestQuickBankConservation is a property test: arbitrary sequences of
// transfers between arbitrary accounts conserve the total balance.
func TestQuickBankConservation(t *testing.T) {
	property := func(seedAmounts []uint8, transfers []uint16) bool {
		if len(seedAmounts) == 0 {
			return true
		}
		s := stm.New()
		accounts := make([]*stm.Var[int], len(seedAmounts))
		total := 0
		for i, amt := range seedAmounts {
			accounts[i] = stm.NewVar(int(amt))
			total += int(amt)
		}
		th := s.NewThread(aggressiveManager{})
		for _, tr := range transfers {
			from := int(tr>>8) % len(accounts)
			to := int(tr&0xff) % len(accounts)
			amount := int(tr % 7)
			if from == to {
				continue
			}
			err := th.Atomically(func(tx *stm.Tx) error {
				if err := stm.Update(tx, accounts[from], func(v int) int { return v - amount }); err != nil {
					return err
				}
				return stm.Update(tx, accounts[to], func(v int) int { return v + amount })
			})
			if err != nil {
				return false
			}
		}
		got := 0
		for _, acct := range accounts {
			got += acct.Peek()
		}
		return got == total
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStatusStringTotal pins the Status and Decision String
// methods (exhaustive over valid values plus an invalid one).
func TestQuickStatusStringTotal(t *testing.T) {
	cases := map[stm.Status]string{
		stm.StatusActive:    "active",
		stm.StatusCommitted: "committed",
		stm.StatusAborted:   "aborted",
		stm.Status(99):      "invalid",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", st, got, want)
		}
	}
	dcases := map[stm.Decision]string{
		stm.Wait:         "wait",
		stm.AbortOther:   "abort-other",
		stm.AbortSelf:    "abort-self",
		stm.Decision(99): "invalid",
	}
	for d, want := range dcases {
		if got := d.String(); got != want {
			t.Errorf("Decision(%d).String() = %q, want %q", d, got, want)
		}
	}
}
