package stm

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// txShared is the state of a logical transaction that survives aborts
// and retries. The paper's greedy manager requires that a transaction
// keeps its timestamp when it restarts; Karma-family managers likewise
// accumulate priority across retries. Every field is atomic: enemy
// transactions read them concurrently, and a session may reuse the
// record for its next logical transaction while a straggling enemy
// (one that observed the previous, now-frozen transaction as owner)
// still reads it — such a read can only influence a contention-manager
// heuristic, never safety, but it must be race-free.
type txShared struct {
	id        atomic.Uint64 // unique logical transaction id
	timestamp atomic.Uint64 // acquisition order; smaller = older = higher priority

	priority atomic.Int64 // Karma/Eruption/Polka accumulated priority
	aborts   atomic.Int64 // completed attempts that ended in abort

	// label is the interned SetLabel id, read by enemies when the
	// flight recorder names a conflict's aggressor; waitNs accumulates
	// ResolveConflict time across the logical transaction's attempts
	// (Tx.WaitNs — the per-transaction counterpart of Stats.WaitNs).
	// A straggling enemy reading a reused record can misattribute a
	// label, which — like the other heuristic fields here — affects
	// only sampled diagnostics, never safety.
	label  atomic.Uint32
	waitNs atomic.Int64
}

// Tx is one attempt of a logical transaction. All attempts share the
// same txShared, and in particular the same timestamp. Statuses are
// one-shot, so a descriptor that was ever installed in a locator is
// never reused; descriptors that no enemy can reference are recycled
// by the owning session (see session.recycle).
//
// Enemy transactions hold references to a Tx through object locators
// and interrogate it only through the atomic accessors below.
type Tx struct {
	stm    *STM
	sess   *session
	shared *txShared

	status  atomic.Int32
	waiting atomic.Bool
	halted  atomic.Bool
	// cause records why this attempt aborted (owner-written only: every
	// classification site — step, validate, the commit CASes — runs on
	// the owning goroutine). A single byte in the status word's padding
	// hole, so abort forensics cost the descriptor no space.
	cause AbortCause
	// opens counts objects opened by this attempt (reads and writes).
	// An int32 here fills the status word's padding hole, keeping the
	// per-attempt descriptor in the smaller allocation size class.
	opens int32

	// The read set maps each object opened for reading to the version
	// observed. Invisible to writers; validated lazily. Small
	// transactions are the common case, so the first inlineReads
	// entries live in a fixed array scanned linearly — no hashing, and
	// a small transaction allocates no map at all — with the map as
	// overflow (nil until the inline slots fill). The array is owned by
	// the session (one attempt runs on a session at a time) rather than
	// embedded here, so the descriptors of eager writers — allocated
	// per attempt because they can never be recycled — stay small.
	inline *inlineReadSet
	reads  map[*TObj]Value
	// writes lists objects this attempt has open for writing, in open
	// order (used by statistics and tests; commit itself is just a
	// status CAS).
	writes []*TObj
	// validClock is the commit-clock value at which the read set was
	// last known valid; validation is skipped while the clock has not
	// advanced.
	validClock uint64
	// lazyWrites buffers tentative versions in lazy-conflict mode
	// (nil in eager mode and for read-only lazy transactions).
	lazyWrites map[*TObj]Value

	// local is the attempt-scoped scratch slot for layers composed
	// above the engine (the kv store parks its write-set capture
	// here); onCommit is the attempt's commit hook (see Tx.OnCommit).
	// Both are owner-private and cleared at attempt boundaries.
	local    any
	onCommit func()
}

// ID returns the logical transaction id, stable across retries.
func (tx *Tx) ID() uint64 { return tx.shared.id.Load() }

// Timestamp returns the transaction's priority timestamp. Timestamps
// are assigned from a global atomic counter when the logical
// transaction first begins and retained across aborts and retries, so
// there is a fixed bound on the number of transactions that ever run
// with an earlier timestamp — the property the greedy manager's
// Theorem 1 rests on. Smaller means older means higher priority.
func (tx *Tx) Timestamp() uint64 { return tx.shared.timestamp.Load() }

// Status returns the transaction's current status.
func (tx *Tx) Status() Status { return Status(tx.status.Load()) }

// Waiting reports whether the transaction is currently waiting for an
// enemy, as published by its own contention manager via SetWaiting.
// The greedy manager's Rule 1 aborts enemies that are waiting.
func (tx *Tx) Waiting() bool { return tx.waiting.Load() }

// SetWaiting publishes whether the transaction is waiting for an
// enemy. Contention managers set it around their waiting loops; it has
// no effect on the STM itself.
func (tx *Tx) SetWaiting(w bool) { tx.waiting.Store(w) }

// Priority returns the accumulated manager-defined priority of the
// logical transaction (used by Karma, Eruption and Polka; zero for
// managers that do not maintain priorities). It persists across
// retries.
func (tx *Tx) Priority() int64 { return tx.shared.priority.Load() }

// AddPriority adds delta to the logical transaction's accumulated
// priority. Eruption calls it on enemy transactions to transfer
// pressure, so it must be (and is) safe for concurrent use.
func (tx *Tx) AddPriority(delta int64) { tx.shared.priority.Add(delta) }

// SetPriority stores the logical transaction's accumulated priority.
func (tx *Tx) SetPriority(p int64) { tx.shared.priority.Store(p) }

// Aborts returns how many attempts of this logical transaction have
// aborted so far.
func (tx *Tx) Aborts() int64 { return tx.shared.aborts.Load() }

// Opens returns the number of objects this attempt has opened.
func (tx *Tx) Opens() int { return int(tx.opens) }

// Abort moves the transaction from active to aborted on behalf of an
// enemy (or of the transaction itself). It returns true if the
// transaction is aborted afterwards — whether by this call or an
// earlier one — and false if it had already committed.
func (tx *Tx) Abort() bool {
	if tx.status.CompareAndSwap(int32(StatusActive), int32(StatusAborted)) {
		return true
	}
	return tx.Status() == StatusAborted
}

// commit moves the transaction from active to committed. It fails if
// an enemy aborted the transaction first.
func (tx *Tx) commit() bool {
	return tx.status.CompareAndSwap(int32(StatusActive), int32(StatusCommitted))
}

// Halt marks the transaction as halted for failure injection: the
// owning session abandons it mid-flight without aborting it, modelling
// the prematurely stopped transactions of the paper's Section 6. The
// transaction stays active (and keeps obstructing its objects) until
// some enemy's manager aborts it.
//
// Halt is meaningful on a running attempt: one's own tx inside the
// transactional function, or a Thread.Current() reference (Thread
// descriptors are never recycled, so a stale Halt is a no-op on a
// frozen transaction). Descriptors of pooled STM.Atomically sessions
// are not exposed outside the transactional function.
func (tx *Tx) Halt() { tx.halted.Store(true) }

// Halted reports whether failure injection has halted the transaction.
func (tx *Tx) Halted() bool { return tx.halted.Load() }

// SetLocal attaches an attempt-scoped value to the transaction — the
// composition point for layers above the engine that need to
// accumulate state alongside the transactional function (the kv store
// parks its write-set capture here). The slot is owner-private (only
// the goroutine running the attempt may touch it), holds one value,
// and is cleared when the attempt ends, so a retry starts empty and
// the transactional function must re-arm it.
func (tx *Tx) SetLocal(v any) { tx.local = v }

// Local returns the value attached with SetLocal, or nil.
func (tx *Tx) Local() any { return tx.local }

// OnCommit registers fn to run if — and only if — this attempt
// commits. For writer transactions fn runs inside the commit's
// critical window: after the status CAS and commit-clock bump, while
// the write set's commit stripes are still held. Two conflicting
// writers serialize on a shared stripe, so their hooks run in commit
// order — the property the WAL's group-commit ordering rests on (log
// order = commit order per key; see DESIGN.md §Durability).
//
// Because the stripes are held, fn must be fast and must not block on
// other transactions or run transactions itself. One hook per
// attempt: a second call replaces the first. The hook is cleared at
// attempt boundaries, so a retried transaction must re-register it.
func (tx *Tx) OnCommit(fn func()) { tx.onCommit = fn }

// fireOnCommit runs and clears the attempt's commit hook, if any.
// Called only on the success paths of tryCommit and its variants.
func (tx *Tx) fireOnCommit() {
	if h := tx.onCommit; h != nil {
		tx.onCommit = nil
		h()
	}
}

// String identifies the transaction for debugging.
func (tx *Tx) String() string {
	return fmt.Sprintf("tx(id=%d ts=%d %s)", tx.ID(), tx.Timestamp(), tx.Status())
}

// backoff is the engine-level Backoff with the time accounted to the
// session's BackoffNs — acquisition CAS retries and installer waits,
// the mechanism-side counterpart of the manager's policy-side WaitNs.
func (tx *Tx) backoff(spin int) {
	t0 := time.Now()
	Backoff(spin)
	tx.sess.stats.backoffNs.Add(int64(time.Since(t0)))
}

// setCause classifies the attempt's abort for the flight recorder and
// the per-cause counters. First cause wins: an enemy abort noticed at
// the next step must not be re-labelled by a later check, so every
// site routes through here.
func (tx *Tx) setCause(c AbortCause) {
	if tx.cause == CauseNone {
		tx.cause = c
	}
}

// step checks that the attempt may keep running, translating an
// enemy-inflicted abort or injected halt into the error the
// transactional function should return.
func (tx *Tx) step() error {
	if tx.Halted() {
		return ErrHalted
	}
	if tx.Status() != StatusActive {
		tx.setCause(CauseEnemyAbort)
		return ErrAborted
	}
	return nil
}

// validate re-checks every recorded read against the object's current
// committed version. It is cheap in the common case: when the global
// commit clock has not advanced since the last successful validation
// no committed write can have invalidated the read set, so the scan is
// skipped.
//
// On failure the transaction aborts itself and validate returns false.
func (tx *Tx) validate() bool {
	// The commit clock starts at 2, so the zero value of validClock
	// means "never validated" and forces the first scan. A non-zero
	// installer count marks an in-progress lazy installation: retry
	// (bounded) so neither the shortcut nor the scan accepts a cut
	// through a partial commit. The installer count must be loaded
	// before the clock: an installation that finished before the count
	// read zero bumped the clock first, so the subsequent clock load
	// cannot match a pre-installation validClock.
	for attempt := 0; ; attempt++ {
		if tx.stm.installers.Load() != 0 {
			tx.backoff(attempt)
			continue
		}
		clock := tx.stm.commitClock.Load()
		if clock == tx.validClock && !tx.stm.fullValidation {
			return true
		}
		if !tx.readsStillCommitted() {
			tx.setCause(CauseValidation)
			tx.Abort()
			return false
		}
		if tx.stm.installers.Load() == 0 && tx.stm.commitClock.Load() == clock {
			// Stable scan: cache it.
			tx.validClock = clock
			return true
		}
		if attempt >= 3 {
			// Concurrent commits kept moving the clock; the scan
			// passed against some interleaving of them, which is the
			// same guarantee the eager DSTM gives. Do not cache.
			return true
		}
	}
}

// maybeYield hands the processor to another goroutine at the STM's
// configured interleave period, so transactions overlap even when the
// host has fewer cores than workers (see WithInterleavePeriod).
func (tx *Tx) maybeYield() {
	if p := tx.stm.interleave; p > 0 && int(tx.opens)%p == 0 {
		runtime.Gosched()
	}
}

// inlineReads is the number of read-set entries kept in the session's
// fixed array before recording spills to the overflow map. Eight
// covers the paper's small update transactions (a list or tree
// operation on the benchmark key range reads a handful of nodes).
const inlineReads = 8

// inlineReadSet is the small-transaction read-set fast path: a fixed
// array scanned linearly. Each session owns one, lent to its running
// attempt; it is owner-private like the overflow map.
type inlineReadSet struct {
	objs [inlineReads]*TObj
	vals [inlineReads]Value
	n    int
}

// reset empties the set, releasing the recorded Values so an idle
// session does not pin old committed versions.
func (rs *inlineReadSet) reset() {
	for i := 0; i < rs.n; i++ {
		rs.objs[i] = nil
		rs.vals[i] = nil
	}
	rs.n = 0
}

// lookupRead returns the version the transaction has recorded for obj,
// if any: the inline entries first, then the overflow map.
func (tx *Tx) lookupRead(obj *TObj) (Value, bool) {
	rs := tx.inline
	for i := 0; i < rs.n; i++ {
		if rs.objs[i] == obj {
			return rs.vals[i], true
		}
	}
	if tx.reads != nil {
		v, ok := tx.reads[obj]
		return v, ok
	}
	return nil, false
}

// recordRead notes that the transaction observed version v of obj.
// The caller (openRead) has already checked lookupRead and found
// nothing, and only the owning goroutine mutates the read set, so no
// duplicate check is repeated here — this is the hottest read path.
func (tx *Tx) recordRead(obj *TObj, v Value) {
	rs := tx.inline
	if rs.n < inlineReads {
		rs.objs[rs.n] = obj
		rs.vals[rs.n] = v
		rs.n++
		return
	}
	if tx.reads == nil {
		tx.reads = make(map[*TObj]Value, 16)
	}
	tx.reads[obj] = v
}

// readsStillCommitted re-checks every recorded read — inline entries
// and overflow map — against the object's current committed version.
// This is the plain (open-time and read-only-commit) scan; writer
// commits use the lock-aware readsCommittedAndUnowned.
func (tx *Tx) readsStillCommitted() bool {
	return tx.validateReads(false)
}

// readsCommittedAndUnowned is the writer commit's read-set scan, run
// while tx holds its write set's commit stripes: each entry must match
// the committed version and its stripe must not be held by another
// committing writer. Treating a foreign stripe lock as a conflict is
// what preserves the old global commitMu's invariant — see
// readStillValid for the ordering argument.
func (tx *Tx) readsCommittedAndUnowned() bool {
	return tx.validateReads(true)
}

func (tx *Tx) validateReads(lockAware bool) bool {
	rs := tx.inline
	for i := 0; i < rs.n; i++ {
		if !tx.readStillValid(rs.objs[i], rs.vals[i], lockAware) {
			return false
		}
	}
	for obj, seen := range tx.reads {
		if !tx.readStillValid(obj, seen, lockAware) {
			return false
		}
	}
	return true
}

// readStillValid checks one read-set entry. In lock-aware mode the
// stripe-owner load precedes the version load, and that order is
// load-bearing: a writer W2 that invalidates obj holds obj's stripe
// from before its own validation until after its status CAS, so a
// passing entry pins the owner load before W2's stripe acquisition —
// and hence tx's whole validation (which starts after tx acquired its
// own stripes) before W2's. Two writers racing on overlapping
// read/write sets would each need their validation ordered before the
// other's acquisition, which is impossible, so at least one fails.
// (Checked the other way around, a stale version read could pair with
// a post-release owner read and let both commit.)
func (tx *Tx) readStillValid(obj *TObj, seen Value, lockAware bool) bool {
	if lockAware {
		if owner := tx.stm.stripes[obj.stripe].owner.Load(); owner != nil && owner != tx {
			return false
		}
	}
	return obj.committed() == seen
}
