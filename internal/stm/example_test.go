package stm_test

import (
	"fmt"
	"sync"

	"repro/internal/stm"
)

// greedyLike is a tiny stand-in manager for the examples (the real
// managers live in internal/core and would import-cycle here).
type greedyLike struct{ stm.BaseManager }

func (greedyLike) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	if enemy.Timestamp() > me.Timestamp() || enemy.Waiting() {
		return stm.AbortOther
	}
	stm.Backoff(1)
	return stm.Wait
}

// The goroutine-agnostic surface in one screen: configure the STM
// with a manager factory once, then call Atomically from any
// goroutine — each transaction runs on a pooled session with its own
// manager instance.
func ExampleSTM_Atomically() {
	world := stm.New(stm.WithManagerFactory(func() stm.Manager { return greedyLike{} }))
	counter := stm.NewVar(0)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := world.Atomically(func(tx *stm.Tx) error {
					return stm.Update(tx, counter, func(v int) int { return v + 1 })
				}); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	fmt.Println("counter:", counter.Peek())
	// Output: counter: 100
}

// Atomic is the typed entry point for transactions that compute a
// value; Snapshot is its packaged multi-variable read.
func ExampleAtomic() {
	world := stm.New()
	a := stm.NewVar(3)
	b := stm.NewVar(4)

	sum, err := stm.Atomic(world, func(tx *stm.Tx) (int, error) {
		av, err := stm.Read(tx, a)
		if err != nil {
			return 0, err
		}
		bv, err := stm.Read(tx, b)
		if err != nil {
			return 0, err
		}
		return av + bv, nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("sum:", sum)
	// Output: sum: 7
}

// Snapshot reads many variables at one serialization point — the
// auditor's tool: no interleaved writer commit can be observed
// half-applied.
func ExampleSnapshot() {
	world := stm.New()
	accounts := []*stm.Var[int]{stm.NewVar(10), stm.NewVar(20), stm.NewVar(30)}

	balances, err := stm.Snapshot(world, accounts...)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	total := 0
	for _, b := range balances {
		total += b
	}
	fmt.Println("balances:", balances, "total:", total)
	// Output: balances: [10 20 30] total: 60
}

// UpdateErr is the fallible read-modify-write: the transition may read
// other variables and may refuse, in which case the transaction aborts
// once and the error surfaces unchanged.
func ExampleUpdateErr() {
	world := stm.New()
	balance := stm.NewVar(100)
	limit := stm.NewVar(0) // no overdraft

	err := world.Atomically(func(tx *stm.Tx) error {
		return stm.UpdateErr(tx, balance, func(bal int) (int, error) {
			lim, err := stm.Read(tx, limit)
			if err != nil {
				return 0, err
			}
			if bal-150 < -lim {
				return 0, fmt.Errorf("insufficient funds: have %d, want 150", bal)
			}
			return bal - 150, nil
		})
	})
	fmt.Println("err:", err)
	fmt.Println("balance:", balance.Peek())
	// Output:
	// err: insufficient funds: have 100, want 150
	// balance: 100
}

// The typed API in one screen: a Var[T] holds a T, Update is the
// transactional read-modify-write, and no type assertions appear
// anywhere — the compiler checks the whole flow. Thread is the pinned
// compatibility surface; new code should prefer STM.Atomically.
func ExampleThread_Atomically() {
	world := stm.New()
	account := stm.NewVar(100)

	th := world.NewThread(greedyLike{})
	err := th.Atomically(func(tx *stm.Tx) error {
		// A non-nil error means an enemy aborted us; returning it makes
		// Atomically retry with the same timestamp.
		return stm.Update(tx, account, func(balance int) int { return balance + 42 })
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("balance:", account.Peek())
	// Output: balance: 142
}

func ExampleRead() {
	world := stm.New()
	a := stm.NewVar(3)
	b := stm.NewVar(4)

	th := world.NewThread(greedyLike{})
	var sum int
	err := th.Atomically(func(tx *stm.Tx) error {
		av, err := stm.Read(tx, a)
		if err != nil {
			return err
		}
		bv, err := stm.Read(tx, b)
		if err != nil {
			return err
		}
		// The two reads are a consistent snapshot: if a writer commits
		// between them, validation aborts and retries this function.
		sum = av + bv
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("sum:", sum)
	// Output: sum: 7
}

func ExampleWrite() {
	world := stm.New()
	greeting := stm.NewVar("hello")

	th := world.NewThread(greedyLike{})
	err := th.Atomically(func(tx *stm.Tx) error {
		old, err := stm.Read(tx, greeting)
		if err != nil {
			return err
		}
		return stm.Write(tx, greeting, old+", world")
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(greeting.Peek())
	// Output: hello, world
}

// Var values compose: a payload may hold handles to other Vars, which
// are immutable and safe to share between versions. Here a two-cell
// list is rewired transactionally.
func ExampleNewVar() {
	type cell struct {
		value int
		next  *stm.Var[cell] // nil at the tail
	}
	world := stm.New()
	second := stm.NewVar(cell{value: 2})
	first := stm.NewVar(cell{value: 1, next: second})

	th := world.NewThread(greedyLike{})
	err := th.Atomically(func(tx *stm.Tx) error {
		// Splice a new cell between first and second.
		return stm.Update(tx, first, func(c cell) cell {
			c.next = stm.NewVar(cell{value: 99, next: c.next})
			return c
		})
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("first:", first.Peek().value)
	fmt.Println("spliced:", first.Peek().next.Peek().value)
	// Output:
	// first: 1
	// spliced: 99
}

// NewVarCloner installs a deep-copy strategy for payloads with mutable
// indirect state, so a writer's in-place mutations stay private until
// commit.
func ExampleNewVarCloner() {
	world := stm.New()
	scores := stm.NewVarCloner([]int{1, 2, 3}, func(s []int) []int {
		c := make([]int, len(s))
		copy(c, s)
		return c
	})

	th := world.NewThread(greedyLike{})
	err := th.Atomically(func(tx *stm.Tx) error {
		return stm.Update(tx, scores, func(s []int) []int {
			s[0] = 10 // mutates the private deep copy, not the committed slice
			return s
		})
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("scores:", scores.Peek())
	// Output: scores: [10 2 3]
}

func ExampleWithLazyConflicts() {
	// Commit-time conflict detection: transactions are invisible to
	// one another until they commit, and the contention manager is
	// never consulted (the STM design the paper's Section 6 contrasts
	// with contention management). The typed API is detection-mode
	// agnostic.
	world := stm.New(stm.WithLazyConflicts())
	counter := stm.NewVar(0)

	th := world.NewThread(greedyLike{})
	for i := 0; i < 3; i++ {
		if err := th.Atomically(func(tx *stm.Tx) error {
			return stm.Update(tx, counter, func(v int) int { return v + 1 })
		}); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	fmt.Println("counter:", counter.Peek())
	// Output: counter: 3
}
