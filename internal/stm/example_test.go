package stm_test

import (
	"fmt"

	"repro/internal/stm"
)

// greedyLike is a tiny stand-in manager for the examples (the real
// managers live in internal/core and would import-cycle here).
type greedyLike struct{ stm.BaseManager }

func (greedyLike) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	if enemy.Timestamp() > me.Timestamp() || enemy.Waiting() {
		return stm.AbortOther
	}
	stm.Backoff(1)
	return stm.Wait
}

// The typed API in one screen: a Var[T] holds a T, Update is the
// transactional read-modify-write, and no type assertions appear
// anywhere — the compiler checks the whole flow.
func ExampleThread_Atomically() {
	world := stm.New()
	account := stm.NewVar(100)

	th := world.NewThread(greedyLike{})
	err := th.Atomically(func(tx *stm.Tx) error {
		// A non-nil error means an enemy aborted us; returning it makes
		// Atomically retry with the same timestamp.
		return stm.Update(tx, account, func(balance int) int { return balance + 42 })
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("balance:", account.Peek())
	// Output: balance: 142
}

func ExampleRead() {
	world := stm.New()
	a := stm.NewVar(3)
	b := stm.NewVar(4)

	th := world.NewThread(greedyLike{})
	var sum int
	err := th.Atomically(func(tx *stm.Tx) error {
		av, err := stm.Read(tx, a)
		if err != nil {
			return err
		}
		bv, err := stm.Read(tx, b)
		if err != nil {
			return err
		}
		// The two reads are a consistent snapshot: if a writer commits
		// between them, validation aborts and retries this function.
		sum = av + bv
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("sum:", sum)
	// Output: sum: 7
}

func ExampleWrite() {
	world := stm.New()
	greeting := stm.NewVar("hello")

	th := world.NewThread(greedyLike{})
	err := th.Atomically(func(tx *stm.Tx) error {
		old, err := stm.Read(tx, greeting)
		if err != nil {
			return err
		}
		return stm.Write(tx, greeting, old+", world")
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(greeting.Peek())
	// Output: hello, world
}

// Var values compose: a payload may hold handles to other Vars, which
// are immutable and safe to share between versions. Here a two-cell
// list is rewired transactionally.
func ExampleNewVar() {
	type cell struct {
		value int
		next  *stm.Var[cell] // nil at the tail
	}
	world := stm.New()
	second := stm.NewVar(cell{value: 2})
	first := stm.NewVar(cell{value: 1, next: second})

	th := world.NewThread(greedyLike{})
	err := th.Atomically(func(tx *stm.Tx) error {
		// Splice a new cell between first and second.
		return stm.Update(tx, first, func(c cell) cell {
			c.next = stm.NewVar(cell{value: 99, next: c.next})
			return c
		})
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("first:", first.Peek().value)
	fmt.Println("spliced:", first.Peek().next.Peek().value)
	// Output:
	// first: 1
	// spliced: 99
}

// NewVarCloner installs a deep-copy strategy for payloads with mutable
// indirect state, so a writer's in-place mutations stay private until
// commit.
func ExampleNewVarCloner() {
	world := stm.New()
	scores := stm.NewVarCloner([]int{1, 2, 3}, func(s []int) []int {
		c := make([]int, len(s))
		copy(c, s)
		return c
	})

	th := world.NewThread(greedyLike{})
	err := th.Atomically(func(tx *stm.Tx) error {
		return stm.Update(tx, scores, func(s []int) []int {
			s[0] = 10 // mutates the private deep copy, not the committed slice
			return s
		})
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("scores:", scores.Peek())
	// Output: scores: [10 2 3]
}

func ExampleWithLazyConflicts() {
	// Commit-time conflict detection: transactions are invisible to
	// one another until they commit, and the contention manager is
	// never consulted (the STM design the paper's Section 6 contrasts
	// with contention management). The typed API is detection-mode
	// agnostic.
	world := stm.New(stm.WithLazyConflicts())
	counter := stm.NewVar(0)

	th := world.NewThread(greedyLike{})
	for i := 0; i < 3; i++ {
		if err := th.Atomically(func(tx *stm.Tx) error {
			return stm.Update(tx, counter, func(v int) int { return v + 1 })
		}); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	fmt.Println("counter:", counter.Peek())
	// Output: counter: 3
}
