package stm_test

import (
	"fmt"

	"repro/internal/stm"
)

// greedyLike is a tiny stand-in manager for the examples (the real
// managers live in internal/core and would import-cycle here).
type greedyLike struct{ stm.BaseManager }

func (greedyLike) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	if enemy.Timestamp() > me.Timestamp() || enemy.Waiting() {
		return stm.AbortOther
	}
	stm.Backoff(1)
	return stm.Wait
}

func ExampleThread_Atomically() {
	world := stm.New()
	account := stm.NewTObj(stm.NewBox[int](100))

	th := world.NewThread(greedyLike{})
	err := th.Atomically(func(tx *stm.Tx) error {
		v, err := tx.OpenWrite(account)
		if err != nil {
			return err // aborted by an enemy; Atomically retries
		}
		v.(*stm.Box[int]).V += 42
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("balance:", account.Peek().(*stm.Box[int]).V)
	// Output: balance: 142
}

func ExampleTx_OpenRead() {
	world := stm.New()
	a := stm.NewTObj(stm.NewBox[int](3))
	b := stm.NewTObj(stm.NewBox[int](4))

	th := world.NewThread(greedyLike{})
	var sum int
	err := th.Atomically(func(tx *stm.Tx) error {
		av, err := tx.OpenRead(a)
		if err != nil {
			return err
		}
		bv, err := tx.OpenRead(b)
		if err != nil {
			return err
		}
		// The two reads are a consistent snapshot: if a writer commits
		// between them, validation aborts and retries this function.
		sum = av.(*stm.Box[int]).V + bv.(*stm.Box[int]).V
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("sum:", sum)
	// Output: sum: 7
}

func ExampleWithLazyConflicts() {
	// Commit-time conflict detection: transactions are invisible to
	// one another until they commit, and the contention manager is
	// never consulted (the STM design the paper's Section 6 contrasts
	// with contention management).
	world := stm.New(stm.WithLazyConflicts())
	counter := stm.NewTObj(stm.NewBox[int](0))

	th := world.NewThread(greedyLike{})
	for i := 0; i < 3; i++ {
		if err := th.Atomically(func(tx *stm.Tx) error {
			v, err := tx.OpenWrite(counter)
			if err != nil {
				return err
			}
			v.(*stm.Box[int]).V++
			return nil
		}); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	fmt.Println("counter:", counter.Peek().(*stm.Box[int]).V)
	// Output: counter: 3
}
