package stm

// Box is a convenience Value wrapping any shallow-copyable payload for
// code that drives the untyped engine directly (engine tests, manager
// experiments):
//
//	counter := stm.NewTObj(&stm.Box[int]{})
//	v, err := tx.OpenWrite(counter)
//	v.(*stm.Box[int]).V++
//
// Application code should prefer the typed facade — Var[T] with Read,
// Write and Update — which provides the same shallow-copy semantics
// without the interface and the type assertion.
//
// Clone copies the struct shallowly; if T contains pointers, slices or
// maps the clone aliases them, so Box is only appropriate when T's
// payload is treated as immutable or is plain data. Fields that must
// be transactional in their own right should be *TObj references,
// which are immutable handles and safe to share.
type Box[T any] struct {
	// V is the boxed payload.
	V T
}

// NewBox allocates a Box holding v.
func NewBox[T any](v T) *Box[T] { return &Box[T]{V: v} }

// Clone implements Value by shallow copy.
func (b *Box[T]) Clone() Value {
	c := *b
	return &c
}
