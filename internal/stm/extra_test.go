package stm_test

import (
	"strings"
	"testing"

	"repro/internal/stm"
)

func TestFullValidationEquivalence(t *testing.T) {
	// The ablation knob must not change results, only cost: the same
	// scripted run produces the same final state.
	for _, opts := range [][]stm.Option{nil, {stm.WithFullValidation()}} {
		s := stm.New(opts...)
		a := stm.NewVar(1)
		b := stm.NewVar(2)
		th := s.NewThread(politeManager{})
		err := th.Atomically(func(tx *stm.Tx) error {
			av, err := stm.Read(tx, a)
			if err != nil {
				return err
			}
			return stm.Update(tx, b, func(v int) int { return v + av })
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Peek(); got != 3 {
			t.Fatalf("b = %d, want 3 (opts %v)", got, opts)
		}
	}
}

func TestInterleaveOptionYields(t *testing.T) {
	// Functional check only: transactions still commit correctly with
	// the most aggressive yield period.
	s := stm.New(stm.WithInterleavePeriod(1))
	obj := stm.NewVar(0)
	th := s.NewThread(politeManager{})
	for i := 0; i < 50; i++ {
		if err := th.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) }); err != nil {
			t.Fatal(err)
		}
	}
	if got := counterValue(t, obj); got != 50 {
		t.Fatalf("counter = %d, want 50", got)
	}
}

func TestBoxClone(t *testing.T) {
	b := stm.NewBox(7)
	c := b.Clone().(*stm.Box[int])
	c.V = 9
	if b.V != 7 {
		t.Fatalf("clone aliased the original: %d", b.V)
	}
	type rec struct{ A, B string }
	rb := stm.NewBox(rec{A: "x", B: "y"})
	rc := rb.Clone().(*stm.Box[rec])
	rc.V.A = "z"
	if rb.V.A != "x" {
		t.Fatalf("struct clone aliased: %+v", rb.V)
	}
}

func TestNamedTObjString(t *testing.T) {
	o := stm.NewNamedTObj("account", stm.NewBox(0))
	if got := o.String(); got != "tobj(account)" {
		t.Fatalf("String() = %q", got)
	}
	anon := stm.NewTObj(stm.NewBox(0))
	if !strings.HasPrefix(anon.String(), "tobj(0x") {
		t.Fatalf("anonymous String() = %q", anon.String())
	}
}

func TestTxStringAndAccessors(t *testing.T) {
	s := stm.New()
	obj := stm.NewVar(0)
	th := s.NewThread(politeManager{})
	err := th.Atomically(func(tx *stm.Tx) error {
		if tx.ID() == 0 {
			t.Error("ID() = 0, want positive")
		}
		if tx.Timestamp() == 0 {
			t.Error("Timestamp() = 0, want positive")
		}
		if tx.Status() != stm.StatusActive {
			t.Errorf("Status() = %v, want active", tx.Status())
		}
		if tx.Aborts() != 0 {
			t.Errorf("Aborts() = %d, want 0", tx.Aborts())
		}
		if err := stm.Write(tx, obj, 1); err != nil {
			return err
		}
		if tx.Opens() != 1 {
			t.Errorf("Opens() = %d, want 1", tx.Opens())
		}
		if !strings.Contains(tx.String(), "active") {
			t.Errorf("String() = %q", tx.String())
		}
		tx.SetPriority(5)
		tx.AddPriority(2)
		if tx.Priority() != 7 {
			t.Errorf("Priority() = %d, want 7", tx.Priority())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAbortIdempotentAndCommitExcluded(t *testing.T) {
	s := stm.New()
	th := s.NewThread(politeManager{})
	obj := stm.NewVar(0)
	held := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = th.Atomically(func(tx *stm.Tx) error {
			if err := stm.Write(tx, obj, 1); err != nil {
				return err
			}
			select {
			case <-held:
			default:
				close(held)
			}
			<-release
			return nil
		})
	}()
	<-held
	tx := th.Current()
	if !tx.Abort() {
		t.Fatal("first Abort failed on an active transaction")
	}
	if !tx.Abort() {
		t.Fatal("Abort not idempotent on an aborted transaction")
	}
	if tx.Status() != stm.StatusAborted {
		t.Fatalf("status = %v", tx.Status())
	}
	close(release)
}

func TestStatsAbortRate(t *testing.T) {
	s := stm.Stats{Commits: 3, Aborts: 1}
	if got := s.AbortRate(); got != 0.25 {
		t.Fatalf("AbortRate = %g, want 0.25", got)
	}
	var empty stm.Stats
	if empty.AbortRate() != 0 {
		t.Fatal("empty AbortRate not zero")
	}
	s.Add(stm.Stats{Commits: 1, Aborts: 3, Conflicts: 2, EnemyAborts: 1, Opens: 9, Halted: 1})
	if s.Commits != 4 || s.Aborts != 4 || s.Conflicts != 2 || s.EnemyAborts != 1 || s.Opens != 9 || s.Halted != 1 {
		t.Fatalf("Add produced %+v", s)
	}
}

func TestWriteAfterReadUpgrade(t *testing.T) {
	// Read an object, then open it for writing in the same
	// transaction: the write sees the read version and the commit
	// succeeds (no false self-conflict).
	s := stm.New()
	obj := stm.NewVar(10)
	th := s.NewThread(politeManager{})
	err := th.Atomically(func(tx *stm.Tx) error {
		v, err := stm.Read(tx, obj)
		if err != nil {
			return err
		}
		return stm.Write(tx, obj, v*2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.Peek(); got != 20 {
		t.Fatalf("obj = %d, want 20", got)
	}
}

func TestCommitClockAdvancesOnWritesOnly(t *testing.T) {
	s := stm.New()
	obj := stm.NewVar(0)
	th := s.NewThread(politeManager{})
	before := s.CommitClock()
	if err := th.Atomically(func(tx *stm.Tx) error {
		_, err := stm.Read(tx, obj)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if s.CommitClock() != before {
		t.Fatal("read-only commit advanced the clock")
	}
	if err := th.Atomically(func(tx *stm.Tx) error { return incr(tx, obj) }); err != nil {
		t.Fatal(err)
	}
	if s.CommitClock() == before {
		t.Fatal("writer commit did not advance the clock")
	}
}
