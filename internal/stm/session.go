package stm

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// session is the unit of transaction execution: it binds a contention
// manager instance to a stream of logical transactions and caches the
// reusable pieces of attempt state. One goroutine uses a session at a
// time, but — unlike the paper's thread model — a session is not tied
// to any particular goroutine: STM.Atomically borrows one from a pool
// for the duration of a single logical transaction, and the Thread
// compatibility shim pins one for its lifetime.
type session struct {
	stm *STM
	mgr Manager

	// pinned marks a Thread's session. Pinned sessions never reuse Tx
	// descriptors (only the owner-private read-set map): Thread exposes
	// the running attempt through Current() for failure injection, and
	// a stale injector reference must stay a harmless no-op on a
	// finished transaction — never a Halt of an unrelated later one.
	// Pooled sessions expose no descriptor, so they recycle freely.
	pinned bool

	// current is the attempt now running on this session, exposed so
	// that failure injectors and tests can halt or examine it.
	current atomic.Pointer[Tx]

	// stats counters are written only by the session's current
	// goroutine but read concurrently by TotalStats, hence atomic.
	stats atomicStats

	// commitLat and commitTries distribute the wall time and attempt
	// count of committed logical transactions. Like stats they are
	// written by the session's current goroutine and snapshotted
	// concurrently (metrics.AtomicHistogram is atomic per bucket), so
	// STM.CommitLatency needs no quiescence.
	commitLat   metrics.AtomicHistogram
	commitTries metrics.AtomicHistogram

	// freeTx, freeReads and freeShared cache attempt state for reuse
	// (see recycle). They are owner-private: only the goroutine holding
	// the session touches them.
	freeTx     *Tx
	freeReads  map[*TObj]Value
	freeShared *txShared

	// inline is the small-transaction read-set array lent to the
	// session's running attempt (one runs at a time), so per-attempt
	// descriptors stay small and small transactions need no map.
	inline inlineReadSet

	// stripeScratch is the reusable buffer writer commits collect
	// their write set's stripe indices into (see Tx.lockStripes);
	// owner-private like the rest of the attempt scaffolding, so a
	// steady-state commit allocates nothing for stripe bookkeeping.
	stripeScratch []uint32

	// Flight-recorder state (see trace.go), owner-private. rec is
	// non-nil exactly while a sampled logical transaction runs — that
	// pointer is the whole disabled-path cost at every hook site.
	// recBuf is the session's reusable recorder, traceSkip the
	// sampling countdown, and rtCtx the runtime/trace task context of
	// the running transaction (nil outside an execution trace).
	rec       *txRecorder
	recBuf    *txRecorder
	traceSkip uint32
	rtCtx     context.Context
}

// newSession creates a session with its own contention-manager
// instance and registers it with the STM so TotalStats can see its
// counters.
func (s *STM) newSession(mgr Manager) *session {
	sess := &session{stm: s, mgr: mgr, stripeScratch: make([]uint32, 0, 8)}
	s.mu.Lock()
	s.sessions = append(s.sessions, sess)
	s.mu.Unlock()
	return sess
}

// acquire hands out an idle pooled session, creating one (with a fresh
// manager from the STM's factory) only when every existing pooled
// session is in use — so the session count tracks the peak number of
// concurrent Atomically calls.
func (s *STM) acquire() *session {
	s.freeMu.Lock()
	if n := len(s.free); n > 0 {
		sess := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		s.freeMu.Unlock()
		return sess
	}
	s.freeMu.Unlock()
	return s.newSession(s.factory())
}

// release returns a session to the pool.
func (s *STM) release(sess *session) {
	s.freeMu.Lock()
	s.free = append(s.free, sess)
	s.freeMu.Unlock()
}

// Atomically runs fn as a transaction on a pooled session, retrying
// until it commits. It may be called concurrently from any number of
// goroutines — each call borrows a session (and with it a private
// contention-manager instance) for the duration of the logical
// transaction.
//
// The error contract is Thread.Atomically's: the logical transaction
// receives its timestamp before the first attempt and keeps it across
// retries; fn must propagate errors from the typed accessors (or
// OpenRead/OpenWrite); enemy-inflicted aborts retry, ErrHalted and
// user errors surface. fn may be called many times and must be free of
// side effects other than through the transaction.
func (s *STM) Atomically(fn func(tx *Tx) error) error {
	sess := s.acquire()
	defer s.release(sess)
	return sess.atomically(fn)
}

// Atomic runs fn as a transaction on a pooled session and returns its
// result — the typed form of STM.Atomically for transactions that
// compute a value:
//
//	sum, err := stm.Atomic(s, func(tx *stm.Tx) (int, error) {
//		a, err := stm.Read(tx, x)
//		if err != nil {
//			return 0, err
//		}
//		b, err := stm.Read(tx, y)
//		if err != nil {
//			return 0, err
//		}
//		return a + b, nil
//	})
//
// On error the zero T is returned. fn may run many times; only the
// committed attempt's result is returned.
func Atomic[T any](s *STM, fn func(tx *Tx) (T, error)) (T, error) {
	var out T
	err := s.Atomically(func(tx *Tx) error {
		v, err := fn(tx)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	if err != nil {
		var zero T
		return zero, err
	}
	return out, nil
}

// Atomic2 is Atomic for transactions that compute two values — the
// shape of container lookups and conditional removals, whose methods
// return (value, ok, error) and so plug in directly:
//
//	v, ok, err := stm.Atomic2(s, queue.Dequeue)
//
// On error the zero A and B are returned; only the committed attempt's
// results are returned.
func Atomic2[A, B any](s *STM, fn func(tx *Tx) (A, B, error)) (A, B, error) {
	var outA A
	var outB B
	err := s.Atomically(func(tx *Tx) error {
		a, b, err := fn(tx)
		if err != nil {
			return err
		}
		outA, outB = a, b
		return nil
	})
	if err != nil {
		var zeroA A
		var zeroB B
		return zeroA, zeroB, err
	}
	return outA, outB, nil
}

// atomically executes one logical transaction on the session.
func (sess *session) atomically(fn func(tx *Tx) error) error {
	// If fn panics (or calls runtime.Goexit) mid-attempt, the normal
	// paths below never clear current. Abort the orphaned attempt so
	// it stops obstructing its objects — a goroutine-per-request
	// server that recovers panics must not wedge a Var forever — and
	// leave it unrecycled (Abort freezes it, which is all the locator
	// protocol needs).
	defer func() {
		if tx := sess.current.Load(); tx != nil {
			tx.Abort()
			sess.current.Store(nil)
			// The orphan skipped recycle; its read set is owner-private
			// and never consulted again, so don't let it pin Values —
			// nor the local slot and commit hook pin caller state.
			tx.reads = nil
			tx.local = nil
			tx.onCommit = nil
		}
		// Halted and panicked attempts skip recycle, which is what
		// normally empties the session's inline read set before it
		// idles in the pool; reset here so an abandoned attempt's
		// entries don't pin old committed Values (no-op when recycle
		// already ran).
		sess.inline.reset()
		// A panicked sampled transaction never reached finishTrace;
		// discard its half-built recording rather than letting the
		// next sampled transaction inherit it (no-op otherwise).
		if sess.rec != nil {
			sess.rec = nil
			sess.recBuf.reset()
		}
	}()
	shared := sess.freeShared
	if shared != nil {
		sess.freeShared = nil
		shared.priority.Store(0)
		shared.aborts.Store(0)
		shared.label.Store(0)
		shared.waitNs.Store(0)
	} else {
		shared = &txShared{}
	}
	shared.id.Store(sess.stm.txIDs.Add(1))
	shared.timestamp.Store(sess.stm.timestamps.Add(1))
	trc := sess.stm.tracer
	if trc != nil {
		sess.armTrace(trc)
	}
	if sess.stm.rtrace {
		endTask := sess.beginRuntimeTask()
		defer endTask()
	}
	start := time.Now()
	err := sess.run(shared, fn)
	if err == nil {
		// Wall time of the whole logical transaction, retries included —
		// the latency a caller of Atomically actually experienced.
		sess.commitLat.ObserveSince(start)
		sess.commitTries.ObserveN(shared.aborts.Load() + 1)
	}
	if sess.rec != nil {
		// Deliver the sampled transaction: the stripes are released and
		// the status frozen, so the sink observes a finished history.
		sess.finishTrace(trc, shared, err == nil, int64(time.Since(start)))
	}
	if !errors.Is(err, ErrHalted) {
		// The logical transaction is over and frozen, so enemies never
		// consult its record again and it can serve the next
		// transaction. A halted transaction stays active and
		// obstructing — enemy managers keep reading its timestamp and
		// priority — so its record must not be reused.
		sess.freeShared = shared
	}
	return err
}

// run executes attempts of the logical transaction shared until one
// commits, fn fails with a non-retryable error, or the transaction is
// halted by failure injection.
func (sess *session) run(shared *txShared, fn func(tx *Tx) error) error {
	for {
		tx := sess.newAttempt(shared)
		sess.current.Store(tx)
		if rec := sess.rec; rec != nil {
			rec.begin()
		}
		reg := sess.beginAttemptRegion()
		sess.mgr.Begin(tx)
		err := fn(tx)
		switch {
		case err == nil:
			if tx.tryCommit() {
				sess.endAttemptRegion(reg, CauseNone)
				sess.current.Store(nil)
				sess.mgr.Committed(tx)
				sess.stats.commits.Add(1)
				sess.recycle(tx)
				return nil
			}
			// Aborted between fn returning and commit.
		case errors.Is(err, ErrHalted):
			// Failure injection: abandon the transaction without
			// aborting it. It remains active and obstructing, so its
			// descriptor is not recycled — but its read set is
			// owner-private and never consulted again (enemies only
			// read the descriptor's atomics), so sever it rather than
			// letting stale locator references pin old Values.
			sess.endAttemptRegion(reg, CauseNone)
			sess.current.Store(nil)
			sess.stats.halted.Add(1)
			tx.reads = nil
			tx.local = nil
			tx.onCommit = nil
			return ErrHalted
		case errors.Is(err, ErrAborted):
			// Enemy abort: fall through to retry.
		default:
			// User error: abort the transaction, surface the error.
			// Tracked apart from contention aborts (AbortsUser): the
			// caller chose to stop, no enemy forced it.
			tx.setCause(CauseUserError)
			tx.Abort()
			sess.stats.abortsUser.Add(1)
			if rec := sess.rec; rec != nil {
				rec.abort(CauseUserError)
			}
			sess.endAttemptRegion(reg, CauseUserError)
			sess.current.Store(nil)
			sess.mgr.Aborted(tx)
			sess.recycle(tx)
			return err
		}
		tx.Abort() // make the attempt's fate unambiguous
		// Charge the abort to its cause. CauseNone can only mean user
		// code returned ErrAborted without any engine site classifying
		// the death; bucket it with enemy aborts so the per-cause
		// partition of Aborts stays exact.
		cause := tx.cause
		if cause == CauseNone {
			cause = CauseEnemyAbort
		}
		shared.aborts.Add(1)
		sess.stats.noteAbort(cause)
		if rec := sess.rec; rec != nil {
			rec.abort(cause)
		}
		sess.endAttemptRegion(reg, cause)
		sess.mgr.Aborted(tx)
		sess.recycle(tx)
	}
}

// maxRecycledReads caps the read-set size kept for reuse, so one huge
// transaction does not pin a huge map on the session forever.
const maxRecycledReads = 256

// newAttempt produces the descriptor for the next attempt, reusing the
// session's cached descriptor or read-set map when available.
func (sess *session) newAttempt(shared *txShared) *Tx {
	// The previous attempt's inline entries are normally reset by
	// recycle; a halted or panicked attempt skips recycling, so reset
	// again here before lending the array out.
	sess.inline.reset()
	if tx := sess.freeTx; tx != nil {
		sess.freeTx = nil
		tx.shared = shared
		tx.status.Store(int32(StatusActive))
		tx.waiting.Store(false)
		tx.halted.Store(false)
		tx.cause = CauseNone
		tx.validClock = 0
		tx.opens = 0
		return tx
	}
	tx := &Tx{stm: sess.stm, sess: sess, shared: shared, inline: &sess.inline}
	// The inline array serves small transactions without a map; adopt a
	// salvaged overflow map when one is cached, and otherwise leave
	// reads nil until the inline slots fill.
	if sess.freeReads != nil {
		tx.reads = sess.freeReads
		sess.freeReads = nil
	}
	return tx
}

// recycle salvages attempt state once the attempt is frozen. A
// descriptor may be reused only if it never appeared as an owner in
// any locator — that is, it opened nothing for eager writing: enemies
// that reached a descriptor through a stale locator interrogate its
// status forever, and resetting a referenced descriptor to active
// would rewrite committed history. Read-only attempts and lazy-mode
// attempts (whose commit installs ownerless locators) are never
// referenced, so their descriptors and read-set maps are reused whole;
// for eager writers only the owner-private read-set map is salvaged.
func (sess *session) recycle(tx *Tx) {
	// Reset here, not at reuse: a session may idle in the pool
	// indefinitely, and its inline read-set entries must not pin old
	// committed Values while it does. The local slot and commit hook
	// are attempt-scoped for the same reason (a fired hook already
	// cleared itself; an aborted attempt's hook must not survive into
	// a retry).
	sess.inline.reset()
	tx.local = nil
	tx.onCommit = nil
	if len(tx.writes) == 0 && !sess.pinned {
		if sess.freeTx == nil && len(tx.reads) <= maxRecycledReads {
			clear(tx.reads)
			clear(tx.lazyWrites)
			sess.freeTx = tx
		}
		return
	}
	if sess.freeReads == nil && tx.reads != nil && len(tx.reads) <= maxRecycledReads {
		m := tx.reads
		tx.reads = nil
		clear(m)
		sess.freeReads = m
	}
}
