package stm

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Value is the interface transactional data must implement. Opening an
// object for writing hands the transaction a private clone; the clone
// becomes the committed version if and only if the transaction
// commits. Clone must return a deep-enough copy: mutations of the
// clone must not be observable through the original. (References to
// other TObj handles may be shared — the handles themselves are
// immutable.)
type Value interface {
	Clone() Value
}

// locator is the DSTM indirection record. The object's current
// committed version is determined by the owner's frozen status:
//
//	owner nil or committed -> newVal
//	owner aborted          -> oldVal
//	owner active           -> oldVal (the tentative newVal is private)
//
// Locators are immutable once installed; ownership changes by
// installing a whole new locator with CAS.
type locator struct {
	owner  *Tx
	oldVal Value
	newVal Value
}

// current returns the committed version recorded by this locator,
// which is stable provided the owner is not active.
func (l *locator) current() Value {
	if l.owner == nil || l.owner.Status() == StatusCommitted {
		return l.newVal
	}
	return l.oldVal
}

// TObj is a transactional object: a shared handle whose versioned
// contents are read and written only inside transactions. The zero
// value is not usable; create handles with NewTObj.
type TObj struct {
	loc atomic.Pointer[locator]
	// stripe indexes the commit-stripe lock guarding writer commits
	// that include this object (see commitStripe in stm.go). Stripes
	// are dealt round-robin from a process-wide counter at creation:
	// cheaper and more evenly spread than hashing the pointer, and
	// deterministic enough for tests to construct same-stripe and
	// distinct-stripe object pairs. Stripe indices are STM-independent
	// (a TObj is not bound to an STM instance); each STM owns its own
	// lock array of the shared, fixed size.
	stripe uint32
	// name is an optional debugging label (see NewNamedTObj).
	name string
}

// stripeSeq deals commit-stripe indices to new objects. commitStripes
// is a power of two, so uint32 wraparound keeps the deal uniform.
var stripeSeq atomic.Uint32

// nextStripe returns the commit-stripe index for a newly created
// transactional object. Every constructor that builds a TObj — NewTObj
// and the typed Var variants, which embed the TObj directly — must
// assign it, or the object silently joins stripe 0 and writer commits
// touching it re-serialize.
func nextStripe() uint32 { return stripeSeq.Add(1) % commitStripes }

// NewTObj creates a transactional object whose initial committed
// version is v (which may be nil for "not yet populated" slots, as in
// optional tree children).
func NewTObj(v Value) *TObj {
	o := &TObj{stripe: nextStripe()}
	o.loc.Store(&locator{newVal: v})
	return o
}

// NewNamedTObj creates a transactional object with a debugging label
// reported by String. Tests and the scheduling simulator use names;
// the hot paths never touch them.
func NewNamedTObj(name string, v Value) *TObj {
	o := NewTObj(v)
	o.name = name
	return o
}

// String identifies the object for debugging.
func (o *TObj) String() string {
	if o.name != "" {
		return "tobj(" + o.name + ")"
	}
	return fmt.Sprintf("tobj(%p)", o)
}

// committed returns the object's current committed version. The value
// is exact at some instant during the call; with an active owner the
// answer is the owner's pre-image, which is correct because an active
// owner's tentative version is private.
func (o *TObj) committed() Value {
	return o.loc.Load().current()
}

// Peek returns the current committed version outside any transaction.
// It is intended for post-run verification in tests and benchmarks;
// concurrent use is safe but yields only a single-object snapshot.
func (o *TObj) Peek() Value {
	return o.committed()
}

// openWrite acquires the object for writing on behalf of tx and
// returns the transaction's private version. The conflict protocol is
// the paper's: if an active enemy owns the object, tx's contention
// manager chooses between aborting the enemy and waiting, and the STM
// retries until the object is free or tx itself dies.
func (o *TObj) openWrite(tx *Tx) (Value, error) { return o.openWriteAs(tx, nil) }

// openWriteAs is openWrite with an optional replacement factory: when
// mk is non-nil, a fresh acquisition installs mk() as the private
// version instead of cloning the committed one. Callers that overwrite
// the whole value (the typed Write) use it to skip a clone they would
// immediately discard. When the transaction already owns the object,
// the existing private version is returned and the caller overwrites
// it in place.
func (o *TObj) openWriteAs(tx *Tx, mk func() Value) (Value, error) {
	if tx.stm.lazy {
		return o.openWriteLazy(tx, mk)
	}
	for spin := 0; ; spin++ {
		if err := tx.step(); err != nil {
			return nil, err
		}
		l := o.loc.Load()
		if l.owner == tx {
			return l.newVal, nil // already ours (write after write)
		}
		if enemy := l.owner; enemy != nil && enemy.Status() == StatusActive {
			if err := resolve(tx, enemy, o); err != nil {
				return nil, err
			}
			continue
		}
		// Owner is nil or frozen: l.current() is stable for as long as
		// the locator stays installed, and our CAS fails if it does
		// not.
		cur := l.current()
		nl := &locator{owner: tx, oldVal: cur}
		switch {
		case mk != nil:
			nl.newVal = mk()
		case cur != nil:
			nl.newVal = cur.Clone()
		}
		if !o.loc.CompareAndSwap(l, nl) {
			tx.backoff(spin)
			continue
		}
		tx.writes = append(tx.writes, o)
		tx.opens++
		tx.sess.mgr.Opened(tx, true)
		tx.sess.stats.opens.Add(1)
		if rec := tx.sess.rec; rec != nil {
			rec.open(o, true)
		}
		tx.maybeYield()
		// Writing this object may form part of an inconsistent view;
		// early validation keeps the transaction opaque.
		if !tx.validate() {
			return nil, ErrAborted
		}
		return nl.newVal, nil
	}
}

// openRead records the object's committed version in tx's read set and
// returns it. Reads are invisible to writers, but an active writer is
// a conflict for the reader (as in DSTM): the contention manager
// arbitrates before the read can proceed.
func (o *TObj) openRead(tx *Tx) (Value, error) {
	if err := tx.step(); err != nil {
		return nil, err
	}
	// Read own write.
	if v, ok := tx.lazyWrites[o]; ok {
		return v, nil
	}
	if l := o.loc.Load(); l.owner == tx {
		return l.newVal, nil
	}
	// Repeated read: return the recorded version for a stable view.
	if v, ok := tx.lookupRead(o); ok {
		return v, nil
	}
	for {
		if err := tx.step(); err != nil {
			return nil, err
		}
		l := o.loc.Load()
		if l.owner == tx {
			return l.newVal, nil
		}
		if enemy := l.owner; enemy != nil && enemy.Status() == StatusActive {
			if err := resolve(tx, enemy, o); err != nil {
				return nil, err
			}
			continue
		}
		v := l.current()
		tx.recordRead(o, v)
		tx.opens++
		tx.sess.mgr.Opened(tx, false)
		tx.sess.stats.opens.Add(1)
		if rec := tx.sess.rec; rec != nil {
			rec.open(o, false)
		}
		tx.maybeYield()
		if !tx.validate() {
			return nil, ErrAborted
		}
		return v, nil
	}
}

func (tx *Tx) noteConflict() { tx.sess.stats.conflicts.Add(1) }

// resolve runs one round of the contention-management protocol between
// tx and enemy over object o, translating the manager's decision into
// an abort of one side or an (already-performed) wait. The manager
// consultation is timed into WaitNs: a Wait decision has already slept
// inside ResolveConflict, so this one measurement captures exactly the
// policy-chosen waiting that distinguishes managers with and without
// progress guarantees. The same measurement accrues to the logical
// transaction's own counter (Tx.WaitNs) and, on sampled transactions,
// to a conflict event naming the enemy and the ruling.
func resolve(tx, enemy *Tx, o *TObj) error {
	tx.noteConflict()
	t0 := time.Now()
	d := tx.sess.mgr.ResolveConflict(tx, enemy)
	dt := int64(time.Since(t0))
	tx.sess.stats.waitNs.Add(dt)
	tx.shared.waitNs.Add(dt)
	if rec := tx.sess.rec; rec != nil {
		rec.conflict(o, enemy, d, dt)
	}
	switch d {
	case AbortOther:
		enemy.Abort()
		tx.sess.stats.enemyAborts.Add(1)
	case AbortSelf:
		tx.setCause(CauseEnemyAbort)
		tx.Abort()
		return ErrAborted
	case Wait:
		// The manager has already waited/backed off per its policy.
	default:
		return fmt.Errorf("stm: contention manager returned invalid decision %d", d)
	}
	return tx.step()
}

// OpenWrite opens the object for writing inside tx and returns the
// transaction's private, mutable version (a clone of the committed
// version, nil if the committed version is nil). The returned error is
// non-nil when the transaction has been aborted or halted and must be
// propagated out of the transactional function.
func (tx *Tx) OpenWrite(o *TObj) (Value, error) { return o.openWrite(tx) }

// OpenRead opens the object for reading inside tx and returns the
// committed version observed (nil if the committed version is nil).
// The value must be treated as immutable. The returned error is
// non-nil when the transaction has been aborted or halted and must be
// propagated.
func (tx *Tx) OpenRead(o *TObj) (Value, error) { return o.openRead(tx) }
