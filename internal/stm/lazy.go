package stm

// Lazy conflict detection (Harris & Fraser style), the STM design the
// paper's Section 6 contrasts with eager, open-time detection:
//
//	"Some STM implementations ... discover conflicts when transactions
//	 commit, not while they are executing. Contention managers do not
//	 seem well-suited to these kinds of STMs, and the question of
//	 ensuring progress for this kind of STM design remains largely
//	 unexplored."
//
// With WithLazyConflicts, OpenWrite buffers the tentative version
// privately instead of installing a locator, so running transactions
// never see each other: no open-time conflicts arise and the
// contention manager is never consulted. All conflicts surface at
// commit, where the loser has already executed in full — the wasted
// work that motivates eager detection plus contention management, and
// the comparison BenchmarkLazyVsEager measures.
//
// Commit installs each written object's new version in place under the
// write set's commit stripes, bracketed by the STM's installer count
// (the seqlock generalizing the old odd/even commit-clock window to
// concurrent, stripe-disjoint installers), so concurrent readers never
// accept a cut that spans a partial installation.

// WithLazyConflicts switches the STM to commit-time conflict
// detection. Contention managers still receive lifecycle
// notifications, but ResolveConflict is never called: transactions are
// mutually invisible until they commit.
func WithLazyConflicts() Option {
	return func(s *STM) { s.lazy = true }
}

// Lazy reports whether the STM uses commit-time conflict detection.
func (s *STM) Lazy() bool { return s.lazy }

// openWriteLazy buffers a private clone of the object's committed
// version in the transaction's write buffer (or mk(), when the caller
// replaces the whole value — see openWriteAs). The pre-image is
// recorded in the read set, which is what commit-time validation
// checks: if any base version moved, the transaction aborts itself
// and retries.
func (o *TObj) openWriteLazy(tx *Tx, mk func() Value) (Value, error) {
	if err := tx.step(); err != nil {
		return nil, err
	}
	if v, ok := tx.lazyWrites[o]; ok {
		return v, nil
	}
	// Record the pre-image for commit-time validation. This is one
	// write acquisition, not a read followed by a write: the manager
	// hears a single Opened(tx, true) and stats.opens counts once.
	// (Routing through openRead here used to fire a read-open *and* a
	// write-open per acquired object, inflating Karma-family
	// priorities and the opens count in lazy mode.)
	base, ok := tx.lookupRead(o)
	if !ok {
		// Running lazy transactions install no locators, so no
		// locator ever carries an active owner and the committed
		// version is stable — no enemy-resolution loop is needed.
		base = o.loc.Load().current()
		tx.recordRead(o, base)
	}
	var clone Value
	switch {
	case mk != nil:
		clone = mk()
	case base != nil:
		clone = base.Clone()
	}
	if tx.lazyWrites == nil {
		tx.lazyWrites = make(map[*TObj]Value, 4)
	}
	tx.lazyWrites[o] = clone
	tx.opens++
	tx.sess.stats.opens.Add(1)
	tx.sess.mgr.Opened(tx, true)
	if rec := tx.sess.rec; rec != nil {
		rec.open(o, true)
	}
	tx.maybeYield()
	if !tx.validate() {
		return nil, ErrAborted
	}
	return clone, nil
}

// tryCommitLazy validates the read set (which includes every write's
// base version) and installs the buffered writes under the write
// set's commit stripes, with the STM's installer count held non-zero
// for the duration of the installation so that concurrent clock-stable
// validations retry rather than accept a partial commit. Validation is
// lock-aware, exactly as in the eager writer commit: a read whose
// stripe another writer holds mid-commit is a conflict.
func (tx *Tx) tryCommitLazy() bool {
	if len(tx.lazyWrites) == 0 {
		return tx.tryCommitReadOnly()
	}
	buf := tx.sess.stripeScratch[:0]
	for obj := range tx.lazyWrites {
		buf = append(buf, obj.stripe)
	}
	held := tx.lockStripes(buf)
	defer tx.unlockStripes(held)
	if !tx.readsCommittedAndUnowned() {
		// A conflicting transaction committed first; all our work is
		// wasted — the lazy design's signature cost.
		tx.setCause(CauseValidation)
		tx.noteConflict()
		tx.Abort()
		return false
	}
	if h := tx.stm.commitHook; h != nil {
		h()
	}
	if !tx.commit() {
		tx.setCause(CauseCASRace)
		return false
	}
	// Publish the buffered writes. The clock bump lands before the
	// installer count drops back, so a validator that finds the count
	// at zero after our installation necessarily re-reads a moved
	// clock and rescans.
	tx.stm.installers.Add(1)
	for obj, newVal := range tx.lazyWrites {
		obj.loc.Store(&locator{newVal: newVal})
	}
	tx.stm.commitClock.Add(2)
	tx.stm.installers.Add(-1)
	// Stripes are still held (the deferred unlockStripes runs after we
	// return), so lazy-mode commit hooks keep the same per-object
	// ordering guarantee as the eager writer path.
	tx.fireOnCommit()
	return true
}

// tryCommitReadOnly is the clock-stable read-only commit shared by the
// eager and lazy paths. It takes no stripe locks: the scan plus the
// stability check (installer count still zero, clock unmoved across
// the scan) prove every read was simultaneously valid at the scan's
// start, which is the serialization point.
func (tx *Tx) tryCommitReadOnly() bool {
	for attempt := 0; ; attempt++ {
		if tx.stm.installers.Load() != 0 {
			// An installation is in progress; wait it out.
			tx.backoff(attempt)
			continue
		}
		c0 := tx.stm.commitClock.Load()
		if !tx.scanReads() {
			tx.setCause(CauseValidation)
			tx.noteConflict()
			tx.Abort()
			return false
		}
		if tx.stm.installers.Load() == 0 && tx.stm.commitClock.Load() == c0 {
			if !tx.commit() {
				tx.setCause(CauseCASRace)
				return false
			}
			tx.fireOnCommit()
			return true
		}
	}
}
