package stm

// Lazy conflict detection (Harris & Fraser style), the STM design the
// paper's Section 6 contrasts with eager, open-time detection:
//
//	"Some STM implementations ... discover conflicts when transactions
//	 commit, not while they are executing. Contention managers do not
//	 seem well-suited to these kinds of STMs, and the question of
//	 ensuring progress for this kind of STM design remains largely
//	 unexplored."
//
// With WithLazyConflicts, OpenWrite buffers the tentative version
// privately instead of installing a locator, so running transactions
// never see each other: no open-time conflicts arise and the
// contention manager is never consulted. All conflicts surface at
// commit, where the loser has already executed in full — the wasted
// work that motivates eager detection plus contention management, and
// the comparison BenchmarkLazyVsEager measures.
//
// Commit installs each written object's new version in place under the
// writer lock, bracketed by odd/even transitions of the commit clock
// (a seqlock), so concurrent readers never accept a cut that spans a
// partial installation.

// WithLazyConflicts switches the STM to commit-time conflict
// detection. Contention managers still receive lifecycle
// notifications, but ResolveConflict is never called: transactions are
// mutually invisible until they commit.
func WithLazyConflicts() Option {
	return func(s *STM) { s.lazy = true }
}

// Lazy reports whether the STM uses commit-time conflict detection.
func (s *STM) Lazy() bool { return s.lazy }

// openWriteLazy buffers a private clone of the object's committed
// version in the transaction's write buffer (or mk(), when the caller
// replaces the whole value — see openWriteAs). The pre-image is
// recorded in the read set, which is what commit-time validation
// checks: if any base version moved, the transaction aborts itself
// and retries.
func (o *TObj) openWriteLazy(tx *Tx, mk func() Value) (Value, error) {
	if err := tx.step(); err != nil {
		return nil, err
	}
	if v, ok := tx.lazyWrites[o]; ok {
		return v, nil
	}
	base, err := o.openRead(tx) // records the pre-image for validation
	if err != nil {
		return nil, err
	}
	var clone Value
	switch {
	case mk != nil:
		clone = mk()
	case base != nil:
		clone = base.Clone()
	}
	if tx.lazyWrites == nil {
		tx.lazyWrites = make(map[*TObj]Value, 4)
	}
	tx.lazyWrites[o] = clone
	tx.sess.mgr.Opened(tx, true)
	return clone, nil
}

// tryCommitLazy validates the read set (which includes every write's
// base version) and installs the buffered writes under the writer
// lock, with the commit clock held odd for the duration of the
// installation so that concurrent clock-stable validations retry
// rather than accept a partial commit.
func (tx *Tx) tryCommitLazy() bool {
	if len(tx.lazyWrites) == 0 {
		return tx.tryCommitReadOnly()
	}
	tx.stm.commitMu.Lock()
	defer tx.stm.commitMu.Unlock()
	if !tx.scanReads() {
		// A conflicting transaction committed first; all our work is
		// wasted — the lazy design's signature cost.
		tx.noteConflict()
		tx.Abort()
		return false
	}
	if !tx.commit() {
		return false
	}
	tx.stm.commitClock.Add(1) // odd: installation in progress
	for obj, newVal := range tx.lazyWrites {
		obj.loc.Store(&locator{newVal: newVal})
	}
	tx.stm.commitClock.Add(1) // even: installation visible
	return true
}

// tryCommitReadOnly is the clock-stable read-only commit shared by the
// eager and lazy paths.
func (tx *Tx) tryCommitReadOnly() bool {
	for {
		c0 := tx.stm.commitClock.Load()
		if c0&1 == 1 {
			// An installation is in progress; wait it out.
			Backoff(1)
			continue
		}
		if !tx.scanReads() {
			tx.Abort()
			return false
		}
		if tx.stm.commitClock.Load() == c0 {
			return tx.commit()
		}
	}
}
