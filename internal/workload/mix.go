package workload

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
)

// Op is one container operation kind drawn from an OpMix. How an Op
// maps onto a particular structure is the harness's business (a
// "range" on a hash set is a whole-set consistent scan; on a queue it
// is a prefix walk); the mix only fixes the frequencies.
type Op int

const (
	// OpLookup is a read-only point query (Contains / Get / Peek).
	OpLookup Op = iota
	// OpInsert adds an element (Add / Put / Enqueue).
	OpInsert
	// OpDelete removes an element (Remove / Delete / Dequeue).
	OpDelete
	// OpRange is a consistent multi-variable read (Range / Len / Items).
	OpRange
)

// String implements fmt.Stringer.
func (op Op) String() string {
	switch op {
	case OpLookup:
		return "lookup"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpRange:
		return "range"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// OpMix is a distribution over container operations. The zero OpMix is
// not usable; construct mixes with NewOpMix or the exported presets.
type OpMix struct {
	name string
	// cum is the cumulative weight of [lookup, insert, delete, range],
	// normalized to cum[3] == 1.
	cum [4]float64
}

// newOpMix normalizes the weights into a sampleable mix.
func newOpMix(name string, lookup, insert, delete, rang float64) (OpMix, error) {
	w := [4]float64{lookup, insert, delete, rang}
	total := 0.0
	for _, x := range w {
		if x < 0 {
			return OpMix{}, fmt.Errorf("workload: negative op weight in %q", name)
		}
		total += x
	}
	if total <= 0 {
		return OpMix{}, fmt.Errorf("workload: op mix %q has no positive weight", name)
	}
	m := OpMix{name: name}
	run := 0.0
	for i, x := range w {
		run += x / total
		m.cum[i] = run
	}
	m.cum[3] = 1 // guard against rounding
	return m, nil
}

// mustOpMix builds the preset mixes; weights are compile-time
// constants, so failure is a programming error.
func mustOpMix(name string, lookup, insert, delete, rang float64) OpMix {
	m, err := newOpMix(name, lookup, insert, delete, rang)
	if err != nil {
		panic(err)
	}
	return m
}

// The preset mixes. UpdateMix is the paper's workload (every
// transaction writes); the others widen the scenarios the way the
// ROADMAP asks: read-mostly point traffic, a balanced mix with
// occasional scans, and a scan-heavy regime where long consistent
// reads compete with writers — the case the paper notes backoff-style
// managers handle poorly.
var (
	UpdateMix    = mustOpMix("update", 0, 0.5, 0.5, 0)
	ReadHeavyMix = mustOpMix("readheavy", 0.90, 0.05, 0.05, 0)
	MixedMix     = mustOpMix("mixed", 0.60, 0.15, 0.15, 0.10)
	RangeMix     = mustOpMix("rangeheavy", 0.20, 0.20, 0.20, 0.40)
)

// Sample draws one operation.
func (m OpMix) Sample(rng *rand.Rand) Op {
	u := rng.Float64()
	for i, c := range m.cum {
		if u < c {
			return Op(i)
		}
	}
	return OpRange
}

// Name identifies the mix in reports.
func (m OpMix) Name() string { return m.name }

// NewOpMix constructs a mix by name: "update" (the paper's 50/50
// insert/delete, the default for empty names), "readheavy", "mixed",
// "rangeheavy", or explicit weights "w:<lookup>,<insert>,<delete>,<range>"
// (e.g. "w:8,1,1,0"), normalized to probabilities.
func NewOpMix(name string) (OpMix, error) {
	switch name {
	case "", "update":
		return UpdateMix, nil
	case "readheavy":
		return ReadHeavyMix, nil
	case "mixed":
		return MixedMix, nil
	case "rangeheavy":
		return RangeMix, nil
	}
	if rest, ok := strings.CutPrefix(name, "w:"); ok {
		parts := strings.Split(rest, ",")
		if len(parts) != 4 {
			return OpMix{}, fmt.Errorf("workload: op weights %q: want exactly 4 comma-separated numbers", rest)
		}
		var w [4]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return OpMix{}, fmt.Errorf("workload: bad op weight %q: %w", p, err)
			}
			w[i] = v
		}
		return newOpMix(name, w[0], w[1], w[2], w[3])
	}
	return OpMix{}, fmt.Errorf("workload: unknown op mix %q (have update, readheavy, mixed, rangeheavy, w:l,i,d,r)", name)
}
