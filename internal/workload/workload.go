// Package workload provides the random-workload generators shared by
// the benchmark harness and the scheduling simulator: key
// distributions (uniform and Zipf — contention in real systems is
// rarely uniform), transaction-length distributions (fixed, uniform,
// and the bimodal one-or-all mix that the red-black forest induces),
// and a generator turning a workload description into a simulator
// instance.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/sched"
)

// KeyDist samples keys in [0, N).
type KeyDist interface {
	// Sample draws one key.
	Sample(rng *rand.Rand) int
	// N is the key-universe size.
	N() int
	// Name identifies the distribution in reports.
	Name() string
}

// Uniform is the paper's workload: keys drawn uniformly from a small
// universe.
type Uniform struct {
	n int
}

// NewUniform returns a uniform distribution over [0, n).
func NewUniform(n int) (*Uniform, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: uniform needs n > 0, got %d", n)
	}
	return &Uniform{n: n}, nil
}

// Sample implements KeyDist.
func (u *Uniform) Sample(rng *rand.Rand) int { return int(rng.Int64N(int64(u.n))) }

// N implements KeyDist.
func (u *Uniform) N() int { return u.n }

// Name implements KeyDist.
func (u *Uniform) Name() string { return "uniform" }

// Zipf samples keys with probability proportional to 1/(k+1)^s,
// concentrating contention on a few hot keys. Implemented with a
// precomputed CDF and binary search, so sampling is deterministic
// given the rng and exact for any n that fits in memory.
type Zipf struct {
	n   int
	s   float64
	cdf []float64
}

// NewZipf returns a Zipf distribution over [0, n) with exponent s > 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs n > 0, got %d", n)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("workload: zipf needs finite s > 0, got %g", s)
	}
	cdf := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{n: n, s: s, cdf: cdf}, nil
}

// Sample implements KeyDist.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N implements KeyDist.
func (z *Zipf) N() int { return z.n }

// Name implements KeyDist.
func (z *Zipf) Name() string { return fmt.Sprintf("zipf(%.2g)", z.s) }

// NewKeyDist constructs a distribution by name: "uniform" or
// "zipf" (exponent 1.07, a common web-workload skew) or "zipf:<s>".
func NewKeyDist(name string, n int) (KeyDist, error) {
	switch {
	case name == "" || name == "uniform":
		return NewUniform(n)
	case name == "zipf":
		return NewZipf(n, 1.07)
	case len(name) > 5 && name[:5] == "zipf:":
		var s float64
		if _, err := fmt.Sscanf(name[5:], "%g", &s); err != nil {
			return nil, fmt.Errorf("workload: bad zipf exponent %q: %w", name[5:], err)
		}
		return NewZipf(n, s)
	default:
		return nil, fmt.Errorf("workload: unknown key distribution %q", name)
	}
}

// LengthDist samples transaction lengths in ticks.
type LengthDist interface {
	// Sample draws one length (>= 1).
	Sample(rng *rand.Rand) int
	// Name identifies the distribution in reports.
	Name() string
}

// Fixed always returns the same length (the paper's "constant size
// transactions").
type Fixed struct {
	// L is the length.
	L int
}

// Sample implements LengthDist.
func (f Fixed) Sample(*rand.Rand) int {
	if f.L < 1 {
		return 1
	}
	return f.L
}

// Name implements LengthDist.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%d)", f.L) }

// UniformLength draws lengths uniformly from [Min, Max].
type UniformLength struct {
	Min, Max int
}

// Sample implements LengthDist.
func (u UniformLength) Sample(rng *rand.Rand) int {
	lo, hi := u.Min, u.Max
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + int(rng.Int64N(int64(hi-lo+1)))
}

// Name implements LengthDist.
func (u UniformLength) Name() string { return fmt.Sprintf("uniform[%d,%d]", u.Min, u.Max) }

// Bimodal mixes short and long transactions — the red-black forest's
// one-or-all profile, and the regime where the paper observes backoff
// struggling ("less effective if long transactions must compete with
// shorter transactions").
type Bimodal struct {
	Short, Long int
	// PLong is the probability of a long transaction.
	PLong float64
}

// Sample implements LengthDist.
func (b Bimodal) Sample(rng *rand.Rand) int {
	short, long := b.Short, b.Long
	if short < 1 {
		short = 1
	}
	if long < short {
		long = short
	}
	if rng.Float64() < b.PLong {
		return long
	}
	return short
}

// Name implements LengthDist.
func (b Bimodal) Name() string {
	return fmt.Sprintf("bimodal(%d/%d,p=%.2f)", b.Short, b.Long, b.PLong)
}

// Spec describes a random simulator workload.
type Spec struct {
	// Transactions is n.
	Transactions int
	// Objects is s.
	Objects int
	// Keys selects which objects a transaction touches (sampled with
	// rejection until distinct).
	Keys KeyDist
	// Lengths draws transaction lengths in ticks.
	Lengths LengthDist
	// AccessesPer bounds the objects touched per transaction.
	AccessesPer int
}

// Instance draws a simulator instance from the spec. Timestamps are a
// random permutation of arrival ranks.
func (sp Spec) Instance(rng *rand.Rand) (*sched.Instance, error) {
	if sp.Transactions <= 0 || sp.Objects <= 0 {
		return nil, fmt.Errorf("workload: need positive transactions and objects, got %d and %d", sp.Transactions, sp.Objects)
	}
	if sp.Keys == nil || sp.Keys.N() != sp.Objects {
		return nil, fmt.Errorf("workload: key distribution must cover exactly the object universe")
	}
	if sp.Lengths == nil {
		return nil, fmt.Errorf("workload: nil length distribution")
	}
	per := sp.AccessesPer
	if per <= 0 || per > sp.Objects {
		per = sp.Objects
	}
	stamps := rng.Perm(sp.Transactions)
	specs := make([]sched.TxSpec, sp.Transactions)
	for i := range specs {
		length := sp.Lengths.Sample(rng)
		k := 1 + int(rng.Int64N(int64(per)))
		seen := make(map[int]bool, k)
		accesses := make([]sched.Access, 0, k)
		for len(accesses) < k && len(seen) < sp.Objects {
			obj := sp.Keys.Sample(rng)
			if seen[obj] {
				continue
			}
			seen[obj] = true
			accesses = append(accesses, sched.Access{
				Offset: int(rng.Int64N(int64(length))),
				Object: obj,
			})
		}
		sort.Slice(accesses, func(a, b int) bool { return accesses[a].Offset < accesses[b].Offset })
		specs[i] = sched.TxSpec{ID: i, Length: length, Timestamp: stamps[i], Accesses: accesses}
	}
	return &sched.Instance{Specs: specs, Objects: sp.Objects}, nil
}
