package workload_test

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestUniformCoversUniverse(t *testing.T) {
	u, err := workload.NewUniform(16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		k := u.Sample(rng)
		if k < 0 || k >= 16 {
			t.Fatalf("sample %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 16 {
		t.Fatalf("2000 samples covered %d/16 keys", len(seen))
	}
}

func TestUniformRejectsBadN(t *testing.T) {
	if _, err := workload.NewUniform(0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := workload.NewZipf(64, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 3))
	counts := make([]int, 64)
	const n = 20000
	for i := 0; i < n; i++ {
		k := z.Sample(rng)
		if k < 0 || k >= 64 {
			t.Fatalf("sample %d out of range", k)
		}
		counts[k]++
	}
	// Key 0 must dominate: with s=1.2 over 64 keys its mass is ~26%.
	if counts[0] < n/6 {
		t.Fatalf("hottest key got %d/%d samples; distribution not skewed", counts[0], n)
	}
	if counts[0] <= counts[32] {
		t.Fatalf("key 0 (%d) not hotter than key 32 (%d)", counts[0], counts[32])
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	if _, err := workload.NewZipf(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := workload.NewZipf(8, 0); err == nil {
		t.Fatal("s=0 accepted")
	}
	if _, err := workload.NewZipf(8, math.NaN()); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestNewKeyDist(t *testing.T) {
	for _, name := range []string{"", "uniform", "zipf", "zipf:1.5"} {
		d, err := workload.NewKeyDist(name, 8)
		if err != nil {
			t.Fatalf("NewKeyDist(%q): %v", name, err)
		}
		if d.N() != 8 {
			t.Fatalf("NewKeyDist(%q).N() = %d", name, d.N())
		}
	}
	if _, err := workload.NewKeyDist("pareto", 8); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := workload.NewKeyDist("zipf:x", 8); err == nil {
		t.Fatal("bad zipf exponent accepted")
	}
}

func TestLengthDistributions(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 8))
	if got := (workload.Fixed{L: 3}).Sample(rng); got != 3 {
		t.Fatalf("fixed = %d", got)
	}
	if got := (workload.Fixed{L: 0}).Sample(rng); got != 1 {
		t.Fatalf("fixed floor = %d, want 1", got)
	}
	for i := 0; i < 200; i++ {
		got := (workload.UniformLength{Min: 2, Max: 5}).Sample(rng)
		if got < 2 || got > 5 {
			t.Fatalf("uniform length %d outside [2,5]", got)
		}
	}
	shorts, longs := 0, 0
	bi := workload.Bimodal{Short: 1, Long: 10, PLong: 0.3}
	for i := 0; i < 2000; i++ {
		switch bi.Sample(rng) {
		case 1:
			shorts++
		case 10:
			longs++
		default:
			t.Fatal("bimodal produced a third value")
		}
	}
	if longs == 0 || shorts == 0 {
		t.Fatalf("bimodal degenerate: %d/%d", shorts, longs)
	}
	if longs > shorts {
		t.Fatalf("p=0.3 produced more longs (%d) than shorts (%d)", longs, shorts)
	}
}

func TestSpecInstanceValid(t *testing.T) {
	keys, err := workload.NewZipf(5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.Spec{
		Transactions: 6,
		Objects:      5,
		Keys:         keys,
		Lengths:      workload.UniformLength{Min: 1, Max: 4},
		AccessesPer:  3,
	}
	rng := rand.New(rand.NewPCG(9, 4))
	ins, err := spec.Instance(rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ins.Specs) != 6 || ins.Objects != 5 {
		t.Fatalf("instance shape wrong: %d specs, %d objects", len(ins.Specs), ins.Objects)
	}
	// Timestamps are a permutation of 0..n-1.
	seen := make(map[int]bool)
	for _, sp := range ins.Specs {
		if seen[sp.Timestamp] {
			t.Fatalf("duplicate timestamp %d", sp.Timestamp)
		}
		seen[sp.Timestamp] = true
	}
}

func TestSpecInstanceRejectsBadSpecs(t *testing.T) {
	keys, _ := workload.NewUniform(4)
	rng := rand.New(rand.NewPCG(1, 1))
	bad := []workload.Spec{
		{Transactions: 0, Objects: 4, Keys: keys, Lengths: workload.Fixed{L: 1}},
		{Transactions: 2, Objects: 5, Keys: keys, Lengths: workload.Fixed{L: 1}}, // N mismatch
		{Transactions: 2, Objects: 4, Keys: keys},                                // nil lengths
	}
	for i, sp := range bad {
		if _, err := sp.Instance(rng); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

// TestQuickSpecInstancesSimulate: arbitrary workload instances
// validate and complete under greedy, satisfying pending-commit.
func TestQuickSpecInstancesSimulate(t *testing.T) {
	property := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xf00d))
		keys, err := workload.NewZipf(3+int(rng.Int64N(3)), 0.5+rng.Float64())
		if err != nil {
			return false
		}
		spec := workload.Spec{
			Transactions: 2 + int(rng.Int64N(5)),
			Objects:      keys.N(),
			Keys:         keys,
			Lengths:      workload.Bimodal{Short: 1, Long: 5, PLong: 0.3},
			AccessesPer:  2,
		}
		ins, err := spec.Instance(rng)
		if err != nil {
			return false
		}
		if ins.Validate() != nil {
			return false
		}
		res, err := sched.Simulate(ins, sched.GreedyPolicy{}, 0)
		if err != nil || !res.Completed {
			return false
		}
		return sched.CheckPendingCommit(res) < 0
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
