package workload_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/workload"
)

func TestOpMixSampleFrequencies(t *testing.T) {
	m, err := workload.NewOpMix("mixed")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 9))
	counts := make(map[workload.Op]int)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[m.Sample(rng)]++
	}
	want := map[workload.Op]float64{
		workload.OpLookup: 0.60,
		workload.OpInsert: 0.15,
		workload.OpDelete: 0.15,
		workload.OpRange:  0.10,
	}
	for op, p := range want {
		got := float64(counts[op]) / n
		if math.Abs(got-p) > 0.02 {
			t.Errorf("%v frequency %.3f, want %.2f±0.02", op, got, p)
		}
	}
}

func TestOpMixNames(t *testing.T) {
	for _, name := range []string{"update", "readheavy", "mixed", "rangeheavy"} {
		m, err := workload.NewOpMix(name)
		if err != nil {
			t.Fatalf("NewOpMix(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("NewOpMix(%q).Name() = %q", name, m.Name())
		}
	}
	// Empty name defaults to the paper's update mix.
	m, err := workload.NewOpMix("")
	if err != nil || m.Name() != "update" {
		t.Fatalf("NewOpMix(\"\") = %q, %v; want update, nil", m.Name(), err)
	}
}

func TestOpMixUpdateNeverReads(t *testing.T) {
	m, err := workload.NewOpMix("update")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 5000; i++ {
		if op := m.Sample(rng); op != workload.OpInsert && op != workload.OpDelete {
			t.Fatalf("update mix drew %v", op)
		}
	}
}

func TestOpMixExplicitWeights(t *testing.T) {
	m, err := workload.NewOpMix("w:1,0,0,1")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	counts := make(map[workload.Op]int)
	for i := 0; i < 10000; i++ {
		counts[m.Sample(rng)]++
	}
	if counts[workload.OpInsert] != 0 || counts[workload.OpDelete] != 0 {
		t.Fatalf("zero-weight ops drawn: %v", counts)
	}
	if counts[workload.OpLookup] == 0 || counts[workload.OpRange] == 0 {
		t.Fatalf("positive-weight ops never drawn: %v", counts)
	}
}

func TestOpMixRejectsBadNames(t *testing.T) {
	for _, name := range []string{"nope", "w:1,2,3", "w:1,2,3,4,5", "w:1,2,3,4x", "w:-1,0,0,0", "w:0,0,0,0"} {
		if _, err := workload.NewOpMix(name); err == nil {
			t.Errorf("NewOpMix(%q) accepted", name)
		}
	}
}
