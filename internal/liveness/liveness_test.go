package liveness_test

import (
	"testing"
	"time"

	"repro/internal/liveness"
)

func TestBoundedCommitGreedy(t *testing.T) {
	res, err := liveness.BoundedCommit("greedy", 6, 4, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AbortsPerTx) != 6 {
		t.Fatalf("got %d abort counts, want 6", len(res.AbortsPerTx))
	}
	// Theorem 1's liveness: every transaction committed (BoundedCommit
	// errors otherwise). The oldest transaction is never aborted by
	// greedy, so at least one transaction must show zero aborts.
	zero := false
	for _, a := range res.AbortsPerTx {
		if a == 0 {
			zero = true
		}
		if a < 0 {
			t.Fatalf("negative abort count: %v", res.AbortsPerTx)
		}
	}
	if !zero {
		t.Fatalf("no transaction committed abort-free: %v (greedy must protect the oldest)", res.AbortsPerTx)
	}
}

func TestBoundedCommitOtherManagers(t *testing.T) {
	// Aggressive is deliberately absent: two always-abort transactions
	// can ping-pong forever (the paper's livelock caveat, demonstrated
	// in internal/sched and Figure 3's collapse), so it has no place
	// in a bounded-commit liveness test.
	for _, mgr := range []string{"karma", "timestamp", "greedy-timeout"} {
		mgr := mgr
		t.Run(mgr, func(t *testing.T) {
			res, err := liveness.BoundedCommit(mgr, 4, 3, 2, 7)
			if err != nil {
				t.Fatal(err)
			}
			if res.Elapsed <= 0 {
				t.Fatal("elapsed not measured")
			}
		})
	}
}

func TestBoundedCommitUnknownManager(t *testing.T) {
	if _, err := liveness.BoundedCommit("bogus", 2, 2, 1, 1); err == nil {
		t.Fatal("unknown manager accepted")
	}
}

func TestHaltedRecoveryGreedyTimeout(t *testing.T) {
	res, err := liveness.HaltedRecovery("greedy-timeout", 2, 5, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatalf("greedy-timeout failed to recover from a halted transaction: %+v", res)
	}
}

func TestHaltedRecoveryAggressive(t *testing.T) {
	// Aggressive kills the corpse immediately; recovery is trivial.
	res, err := liveness.HaltedRecovery("aggressive", 2, 5, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatalf("aggressive failed to recover: %+v", res)
	}
}

func TestHaltedRecoveryPlainGreedyStalls(t *testing.T) {
	// Plain greedy honours the halted high-priority corpse forever:
	// Rule 2 says wait for an older, non-waiting enemy. One survivor
	// with a short deadline demonstrates the paper's Section 6
	// motivation. (The stuck goroutine parks in long backoff sleeps
	// and is reclaimed at process exit.)
	res, err := liveness.HaltedRecovery("greedy", 1, 1, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered {
		t.Fatalf("plain greedy recovered from a halted older transaction; Rule 2 should have waited forever: %+v", res)
	}
}
