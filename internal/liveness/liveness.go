// Package liveness runs the paper's progress guarantees against the
// real STM (not the discrete simulator): Theorem 1's bounded-commit
// experiment, and the Section 6 halted-transaction recovery that
// motivates the GreedyTimeout extension.
package liveness

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/stm"
)

// incr is the shared counter transition used by every experiment.
func incr(v int) int { return v + 1 }

// BoundedCommitResult reports one bounded-commit run: n concurrent
// transactions (one per thread) over a set of shared objects, started
// together.
type BoundedCommitResult struct {
	// Manager is the contention manager used.
	Manager string
	// Transactions is n.
	Transactions int
	// Objects is s.
	Objects int
	// AbortsPerTx[i] is how many times thread i's single transaction
	// aborted before committing.
	AbortsPerTx []int64
	// MaxAborts is the maximum of AbortsPerTx.
	MaxAborts int64
	// Elapsed is the wall-clock time until the last commit.
	Elapsed time.Duration
}

// BoundedCommit starts n transactions simultaneously, each updating
// `touches` of s shared objects in a random order, and waits for all
// of them to commit. Under greedy, Theorem 1 says each transaction
// commits after a bounded delay; empirically its abort count stays
// small because only strictly older transactions can abort it.
func BoundedCommit(manager string, n, s, touches int, seed uint64) (*BoundedCommitResult, error) {
	factory, err := core.Factory(manager)
	if err != nil {
		return nil, err
	}
	if touches > s {
		touches = s
	}
	// Interleave aggressively: the experiment is about conflicts, and
	// on a host with fewer cores than transactions they must be forced
	// to overlap (see stm.WithInterleavePeriod). Workers are plain
	// goroutines on the pooled API; the factory supplies each session's
	// manager.
	world := stm.New(stm.WithInterleavePeriod(1), stm.WithManagerFactory(factory))
	objects := make([]*stm.Var[int], s)
	for i := range objects {
		objects[i] = stm.NewVar(0)
	}

	var barrier, done sync.WaitGroup
	barrier.Add(1)
	aborts := make([]int64, n)
	errs := make([]error, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewPCG(seed+uint64(i), 0x51ed+uint64(i)))
		order := rng.Perm(s)[:touches]
		done.Add(1)
		go func(i int) {
			defer done.Done()
			barrier.Wait()
			var attempts int64
			errs[i] = world.Atomically(func(tx *stm.Tx) error {
				attempts++ //stm:impure(counting attempts across retries is the measurement: aborts = attempts-1)
				for _, obj := range order {
					if err := stm.Update(tx, objects[obj], incr); err != nil {
						return err
					}
				}
				return nil
			})
			aborts[i] = attempts - 1
		}(i)
	}
	barrier.Done()
	done.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("liveness: thread %d: %w", i, err)
		}
	}
	res := &BoundedCommitResult{
		Manager:      manager,
		Transactions: n,
		Objects:      s,
		AbortsPerTx:  aborts,
		Elapsed:      elapsed,
	}
	for _, a := range aborts {
		if a > res.MaxAborts {
			res.MaxAborts = a
		}
	}
	// Consistency: each object's final value equals the number of
	// transactions that touched it.
	want := make([]int, s)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewPCG(seed+uint64(i), 0x51ed+uint64(i)))
		for _, obj := range rng.Perm(s)[:touches] {
			want[obj]++
		}
	}
	for i, obj := range objects {
		if got := obj.Peek(); got != want[i] {
			return nil, fmt.Errorf("liveness: object %d = %d, want %d (lost update)", i, got, want[i])
		}
	}
	return res, nil
}

// HaltedRecoveryResult reports the Section 6 failure-injection run.
type HaltedRecoveryResult struct {
	// Manager is the contention manager under test.
	Manager string
	// Recovered reports whether the surviving threads committed
	// despite the halted transaction.
	Recovered bool
	// SurvivorCommits counts the survivors' commits.
	SurvivorCommits int64
	// Elapsed is the time the survivors took (or the timeout on
	// failure).
	Elapsed time.Duration
}

// HaltedRecovery halts a high-priority transaction while it holds a
// shared object, then lets `survivors` later (lower-priority) threads
// each run `opsEach` updates of the same object under the given
// manager, with a deadline. Plain greedy waits on the corpse forever
// (Rule 2: it is older and not waiting), so only managers with a
// recovery rule — GreedyTimeout doubling its per-enemy patience, or
// any manager that eventually aborts a silent enemy — make progress.
func HaltedRecovery(manager string, survivors, opsEach int, deadline time.Duration) (*HaltedRecoveryResult, error) {
	factory, err := core.Factory(manager)
	if err != nil {
		return nil, err
	}
	world := stm.New(stm.WithInterleavePeriod(2), stm.WithManagerFactory(factory))
	obj := stm.NewVar(0)

	// The crasher takes the earliest timestamp, opens the object, and
	// halts without committing or aborting. It runs on a pinned Thread
	// (the compatibility shim): its manager choice is irrelevant — it
	// meets no conflicts — but pinning keeps it out of the survivors'
	// session pool.
	crasher := world.NewThread(core.NewGreedy())
	crashErr := crasher.Atomically(func(tx *stm.Tx) error {
		if err := stm.Update(tx, obj, incr); err != nil {
			return err
		}
		tx.Halt()
		return stm.Update(tx, obj, incr)
	})
	if crashErr != stm.ErrHalted {
		return nil, fmt.Errorf("liveness: crasher returned %v, want ErrHalted", crashErr)
	}

	start := time.Now()
	var wg sync.WaitGroup
	okCh := make(chan int64, survivors)
	for i := 0; i < survivors; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var commits int64
			for j := 0; j < opsEach; j++ {
				if time.Since(start) > deadline {
					break
				}
				err := world.Atomically(func(tx *stm.Tx) error {
					return stm.Update(tx, obj, incr)
				})
				if err != nil {
					break
				}
				commits++
			}
			okCh <- commits
		}()
	}

	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(deadline + 200*time.Millisecond):
		// Survivors are stuck behind the corpse (expected for plain
		// greedy). They will remain stuck; report failure. The stuck
		// goroutines keep yielding in manager wait loops and are
		// reclaimed at process exit — acceptable for an experiment
		// binary, documented here for test use.
	}
	res := &HaltedRecoveryResult{Manager: manager, Elapsed: time.Since(start)}
	total := int64(0)
	want := int64(survivors * opsEach)
drain:
	for {
		select {
		case c := <-okCh:
			total += c
		default:
			break drain
		}
	}
	res.SurvivorCommits = total
	res.Recovered = total >= want
	return res, nil
}
