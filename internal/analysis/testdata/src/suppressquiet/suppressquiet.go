// Package suppressquiet is the fixture for default (no audit flag)
// suppression handling: staleness is not reported, but a missing
// reason always is.
package suppressquiet

func quiet() {
	//stm:impure(stale but not reported without the audit flag)
	x := 1
	_ = x
}

func reasonless() {
	//stm:impure // want `needs a parenthesized reason`
	x := 2
	_ = x
}
