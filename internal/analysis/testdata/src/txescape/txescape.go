// Package txescape is the txescape analyzer's fixture: descriptor
// handles leaking into longer-lived storage (flagged), stack-local
// use (clean), and //stm:escape suppressions.
package txescape

import (
	"repro/internal/stm"
)

var s = stm.New()

type holder struct {
	tx *stm.Tx
	th *stm.Thread
}

var global *stm.Tx

func use(...any) {}

func stores(h *holder, ch chan *stm.Tx, m map[int]*stm.Tx, list []*stm.Tx) {
	_ = s.Atomically(func(tx *stm.Tx) error {
		h.tx = tx               // want `\*stm\.Tx stored in a struct field`
		global = tx             // want `\*stm\.Tx stored in a package-level variable`
		m[0] = tx               // want `\*stm\.Tx stored in a map or slice element`
		ch <- tx                // want `\*stm\.Tx sent on a channel`
		list = append(list, tx) // want `\*stm\.Tx appended to a slice`
		hs := holder{tx: tx}    // want `\*stm\.Tx stored in a composite literal`
		all := []*stm.Tx{tx}    // want `\*stm\.Tx stored in a composite literal`
		use(hs, all, list)
		return nil
	})
}

func goroutines() {
	_ = s.Atomically(func(tx *stm.Tx) error {
		go use(tx) // want `\*stm\.Tx passed to a spawned goroutine`
		go func() {
			_ = tx.ID() // want `\*stm\.Tx captured by a goroutine`
		}()
		return nil
	})
}

// threads recycle exactly like attempts do: Thread is a pinned
// session handle.
func threads(th *stm.Thread) {
	h := &holder{}
	h.th = th // want `\*stm\.Thread stored in a struct field`
}

// clean: a descriptor may flow through locals, plain calls and
// returns — only storage that outlives the frame is an escape.
func clean(tx *stm.Tx) *stm.Tx {
	cur := tx
	use(cur)
	helper(cur)
	return cur
}

func helper(tx *stm.Tx) { use(tx) }

// suppressed: the failure-injector pattern — a Thread kept around so
// the experiment can halt it from outside — carries a reason.
type injector struct{ victim *stm.Thread }

func (i *injector) arm(th *stm.Thread) {
	//stm:escape(fixture: injector halts the thread from outside; handle is never used after Close)
	i.victim = th
}
