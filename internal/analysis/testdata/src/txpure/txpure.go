// Package txpure is the txpure analyzer's fixture: transaction
// bodies with retry-unsafe operations (flagged), the blessed
// result-capture idioms (clean), and //stm:impure suppressions.
package txpure

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/stm"
)

var (
	s = stm.New()
	v = stm.NewVar(0)
)

func use(...any) {}

func channelAndGoroutine(ch chan int) {
	_ = s.Atomically(func(tx *stm.Tx) error {
		n, _ := stm.Read(tx, v)
		ch <- n   // want `channel send in transaction body`
		x := <-ch // want `channel receive in transaction body`
		go use(n) // want `transaction body spawns a goroutine`
		select {  // want `select in transaction body`
		default:
		}
		close(ch)      // want `close of a channel in transaction body`
		for range ch { // want `range over a channel in transaction body`
		}
		return stm.Write(tx, v, x)
	})
}

func locksClocksIO() {
	var mu sync.Mutex
	_ = s.Atomically(func(tx *stm.Tx) error {
		mu.Lock()         // want `call to sync.Lock in transaction body`
		defer mu.Unlock() // want `call to sync.Unlock in transaction body`
		_ = time.Now()    // want `call to time.Now in transaction body`
		time.Sleep(1)     // want `call to time.Sleep in transaction body`
		_ = rand.Int()    // want `call to rand.Int in transaction body`
		fmt.Println("x")  // want `call to fmt.Println in transaction body`
		println("x")      // want `println in transaction body`
		return nil
	})
}

func capturedWrites() {
	total := 0
	attempts := 0
	seen := []int{}
	_ = s.Atomically(func(tx *stm.Tx) error {
		n, err := stm.Read(tx, v)
		if err != nil {
			return err
		}
		total += n             // want `compound assignment to captured variable "total"`
		attempts++             // want `\+\+ of captured variable "attempts"`
		seen = append(seen, n) // want `appends to captured slice "seen"`
		return stm.Write(tx, v, n+1)
	})
	use(total, attempts, seen)
}

// declaredBody is transactional wherever it is called from: a *Tx
// parameter marks it.
func declaredBody(tx *stm.Tx) error {
	_ = time.Now() // want `call to time.Now in transaction body`
	return nil
}

// Update closures re-execute even though they never see the Tx: a
// capture from outside the transaction accumulates across retries.
var hits int

func bump(n int) int {
	hits++ // want `\+\+ of captured variable "hits"`
	return n + 1
}

func updateByName(tx *stm.Tx) {
	_ = stm.Update(tx, v, bump)
}

func updateClosureCapture() {
	calls := 0
	_ = s.Atomically(func(tx *stm.Tx) error {
		return stm.Update(tx, v, func(n int) int {
			calls++ // want `\+\+ of captured variable "calls"`
			return n + 1
		})
	})
	use(calls)
}

// A local of a declared transactional body is per-attempt state —
// the whole function re-executes — so writes to it are clean even
// from a nested closure.
func localOfDeclaredBody(tx *stm.Tx) error {
	n := 0
	return stm.Update(tx, v, func(x int) int {
		n++ // per-attempt: the enclosing body re-declares n on retry
		return x + n
	})
}

// clean shows the blessed idioms: plain `=` result capture, per-
// attempt locals (including a local slice), pure fmt formatting, and
// reads through helpers.
func clean() error {
	out := 0
	err := s.Atomically(func(tx *stm.Tx) error {
		n, err := stm.Read(tx, v)
		if err != nil {
			return err
		}
		out = n // plain result capture: last attempt wins, whole
		local := make([]int, 0, 4)
		local = append(local, n) // per-attempt buffer: allowed
		msg := fmt.Sprintf("%d", n)
		use(local, msg)
		return stm.Write(tx, v, n+1)
	})
	use(out)
	return err
}

// hookIsNotABody: OnCommit closures run once, post-commit — txpure
// leaves them to hookreentry even when they would flunk purity.
func hookIsNotABody() {
	var t0 time.Time
	_ = s.Atomically(func(tx *stm.Tx) error {
		tx.OnCommit(func() { t0 = time.Now() })
		return nil
	})
	use(t0)
}

// suppressed: deliberate impurities carry a reasoned directive, on
// the line or directly above it.
func suppressed() {
	_ = s.Atomically(func(tx *stm.Tx) error {
		//stm:impure(fixture: deliberate clock read above the flagged line)
		_ = time.Now()
		_ = time.Now() //stm:impure(fixture: same-line form)
		return nil
	})
}

// reasonless: a directive without a reason is itself a finding, and
// suppresses nothing.
func reasonless() {
	_ = s.Atomically(func(tx *stm.Tx) error {
		//stm:impure // want `//stm:impure needs a parenthesized reason`
		_ = time.Now() // want `call to time.Now in transaction body`
		_ = time.Now() //stm:impure() // want `needs a parenthesized reason` `call to time.Now in transaction body`
		return nil
	})
}
