// Tracer hook sites: TraceSink.TxDone methods run on the delivering
// session's hot path and must not start transactions. Violating,
// transitive, clean, goroutine and suppressed sinks.
package hookreentry

import (
	"sync/atomic"

	"repro/internal/stm"
)

// badSink runs a transaction inside delivery.
type badSink struct{}

func (badSink) TxDone(sum stm.TxSummary, events []stm.TraceEvent) { // want `TraceSink TxDone method calls stm.Atomically`
	_ = s.Atomically(func(tx *stm.Tx) error { return nil })
}

// chainSink re-enters through a same-package helper chain.
type chainSink struct{}

func (chainSink) TxDone(sum stm.TxSummary, events []stm.TraceEvent) { // want `TraceSink TxDone method calls stm.Snapshot`
	chain1()
}

// countSink only hands data outward — the contractual shape.
type countSink struct{ txs, events atomic.Int64 }

func (c *countSink) TxDone(sum stm.TxSummary, events []stm.TraceEvent) {
	c.txs.Add(1)
	c.events.Add(int64(len(events)))
}

// spawnSink defers the re-entry to a goroutine, off the hot path;
// legal, like the OnCommit equivalent.
type spawnSink struct{}

func (spawnSink) TxDone(sum stm.TxSummary, events []stm.TraceEvent) {
	go func() {
		_ = s.Atomically(func(tx *stm.Tx) error { return nil })
	}()
}

// suppressedSink carries a reasoned directive on the declaration.
type suppressedSink struct{}

//stm:reentrant(fixture: deliberate recorder re-entry reproduction)
func (suppressedSink) TxDone(sum stm.TxSummary, events []stm.TraceEvent) {
	_ = s.Atomically(func(tx *stm.Tx) error { return nil })
}

// notASink has the name but not the signature: no check.
type notASink struct{}

func (notASink) TxDone(n int) {
	_ = s.Atomically(func(tx *stm.Tx) error { return nil })
}
