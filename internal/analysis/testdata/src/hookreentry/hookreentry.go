// Package hookreentry is the hookreentry analyzer's fixture: commit
// hooks that re-enter the engine directly or through same-package
// helpers (flagged), outward-only hooks (clean), and //stm:reentrant
// suppressions.
package hookreentry

import (
	"repro/internal/stm"
)

var (
	s = stm.New()
	v = stm.NewVar(0)
)

func use(...any) {}

func direct() {
	_ = s.Atomically(func(tx *stm.Tx) error {
		tx.OnCommit(func() { // want `OnCommit hook calls stm.Atomically`
			_ = s.Atomically(func(tx2 *stm.Tx) error { return nil })
		})
		return nil
	})
}

func noop(tx *stm.Tx) error { return nil }

func reenters() { _ = s.Atomically(noop) }

// registered by name: the diagnostic still lands on the registration.
func byName() {
	_ = s.Atomically(func(tx *stm.Tx) error {
		tx.OnCommit(reenters) // want `OnCommit hook calls stm.Atomically`
		return nil
	})
}

// transitive: hook → helper → helper → engine.
func chain1() { chain2() }
func chain2() { _, _ = stm.Snapshot(s, v) }

func transitive() {
	_ = s.Atomically(func(tx *stm.Tx) error {
		tx.OnCommit(chain1) // want `OnCommit hook calls stm.Snapshot`
		return nil
	})
}

// storeOp: typed Var operations need a live attempt; a committed
// hook has none.
func storeOp() {
	_ = s.Atomically(func(tx *stm.Tx) error {
		tx.OnCommit(func() { // want `OnCommit hook calls stm.Write`
			_ = stm.Write(tx, v, 1)
		})
		return nil
	})
}

// clean: hooks hand data outward — enqueue, stash, count.
func outwardOnly() {
	var ticket int
	_ = s.Atomically(func(tx *stm.Tx) error {
		tx.OnCommit(func() { ticket = enqueue() })
		return nil
	})
	use(ticket)
}

func enqueue() int { return 1 }

// spawning is legal: the goroutine runs outside the stripe-held
// window, so re-entry from it cannot self-deadlock.
func viaGoroutine() {
	_ = s.Atomically(func(tx *stm.Tx) error {
		tx.OnCommit(func() {
			go func() {
				_ = s.Atomically(func(tx2 *stm.Tx) error { return nil })
			}()
		})
		return nil
	})
}

// suppressed: a reasoned directive on the registration line.
func suppressed() {
	_ = s.Atomically(func(tx *stm.Tx) error {
		//stm:reentrant(fixture: deliberate deadlock reproduction)
		tx.OnCommit(func() {
			_ = s.Atomically(func(tx2 *stm.Tx) error { return nil })
		})
		return nil
	})
}
