// Package suppress is the fixture for -unused-suppressions mode: a
// live directive stays silent, a stale one is reported.
package suppress

import (
	"time"

	"repro/internal/stm"
)

var s = stm.New()

func live() {
	_ = s.Atomically(func(tx *stm.Tx) error {
		//stm:impure(fixture: deliberate clock read, still present)
		_ = time.Now()
		return nil
	})
}

func stale() {
	//stm:impure(stale: the clock read below was removed last refactor) // want `unused //stm:impure suppression`
	x := 1
	_ = x
}
