package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestTxpure(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Txpure, "txpure")
}

func TestTxescape(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Txescape, "txescape")
}

func TestHookreentry(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Hookreentry, "hookreentry")
}

// TestUnusedSuppressions covers the -unused-suppressions mode: a
// stale //stm:impure (present, but with no diagnostic under it) is
// itself reported, while a live one stays silent.
func TestUnusedSuppressions(t *testing.T) {
	analysis.TxpureUnusedSuppressions = true
	defer func() { analysis.TxpureUnusedSuppressions = false }()
	analysistest.Run(t, "testdata", analysis.Txpure, "suppress")
}

// TestSuppressionsNotReportedByDefault runs the same fixture without
// the flag: the stale comment must NOT be reported (the suite's CI
// run treats staleness as an opt-in audit, not a build breaker), so
// the only finding left is the reasonless directive.
func TestSuppressionsNotReportedByDefault(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Txpure, "suppressquiet")
}
