package analysis

import (
	"flag"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Hookreentry flags OnCommit hooks that call back into the engine.
//
// Tx.OnCommit hooks fire INSIDE the stripe-held commit window — after
// the clock bump, before the stripes release — which is what makes
// the WAL's queue order equal the per-key commit order (DESIGN.md
// §Durability). The price: a hook that starts a new transaction, or
// touches a Var through the typed operations, re-enters an engine
// whose commit stripes its own transaction is still holding. Best
// case it deadlocks against itself; worst case it commits against a
// half-released stripe order the safety argument does not cover.
//
// Hooks should only hand data outward: enqueue to the WAL, stash a
// ticket, bump an atomic counter. The check is transitive through
// same-package callees (a hook calling a helper that calls
// Atomically is just as deadlocked), with diagnostics reported at the
// registration site. Deliberate violations carry
// //stm:reentrant(reason).
var Hookreentry = &analysis.Analyzer{
	Name: "hookreentry",
	Doc: "check that Tx.OnCommit hooks do not re-enter the engine " +
		"(they run inside the stripe-held commit window)",
	Run: runHookreentry,
}

// HookreentryUnusedSuppressions mirrors
// -hookreentry.unused-suppressions.
var HookreentryUnusedSuppressions bool

func init() {
	Hookreentry.Flags.Init("hookreentry", flag.ExitOnError)
	Hookreentry.Flags.BoolVar(&HookreentryUnusedSuppressions, "unused-suppressions", false, "report //stm:reentrant comments that suppress nothing")
}

// reentrantEntryPoints are the engine calls that must not happen in a
// commit hook: everything that starts a transaction, every typed Var
// operation (they need a live attempt and may park on a stripe the
// hook's transaction holds), and re-registration.
var reentrantEntryPoints = map[string]bool{
	"Atomically": true, "Atomic": true, "Atomic2": true,
	"Read": true, "Write": true, "Update": true, "UpdateErr": true,
	"Swap": true, "CompareAndSwap": true, "ReadAll": true, "Snapshot": true,
	"OnCommit": true,
}

func runHookreentry(pass *analysis.Pass) (any, error) {
	// The engine's own tests register hooks that poke internals on
	// purpose; the contract binds consumers.
	if isEnginePackage(pass.Pkg.Path()) {
		return nil, nil
	}
	sup := newSuppressor(pass, "reentrant")
	h := &hooks{pass: pass, sup: sup, decls: map[types.Object]*ast.FuncDecl{}}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := pass.TypesInfo.ObjectOf(fd.Name); obj != nil {
					h.decls[obj] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		if isGenerated(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isOnCommitCall(pass, call) || len(call.Args) != 1 {
				return true
			}
			h.checkHook(call.Args[0])
			return true
		})
	}
	sup.finish(pass, HookreentryUnusedSuppressions)
	return nil, nil
}

type hooks struct {
	pass  *analysis.Pass
	sup   *suppressor
	decls map[types.Object]*ast.FuncDecl
}

// checkHook resolves the registered function and walks it. All
// diagnostics anchor at the registration argument — the hook function
// itself may be fine in other callers; registering it as a commit
// hook is what makes the call a violation.
func (h *hooks) checkHook(arg ast.Expr) {
	var body *ast.BlockStmt
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		body = a.Body
	case *ast.Ident:
		if fd := h.decls[h.pass.TypesInfo.ObjectOf(a)]; fd != nil {
			body = fd.Body
		}
	case *ast.SelectorExpr:
		if obj := h.pass.TypesInfo.ObjectOf(a.Sel); obj != nil {
			if fd := h.decls[obj]; fd != nil {
				body = fd.Body
			}
		}
	}
	if body == nil {
		return
	}
	seen := map[*ast.BlockStmt]bool{}
	h.walk(arg, body, seen, 0)
}

// walk reports engine re-entry reachable from a hook body, following
// same-package callees up to a small depth (cross-package callees are
// opaque — internal/kv's own hooks only touch the WAL, and a
// same-package helper chain is the realistic way a store op sneaks
// back in).
func (h *hooks) walk(reg ast.Expr, body *ast.BlockStmt, seen map[*ast.BlockStmt]bool, depth int) {
	if seen[body] || depth > 4 {
		return
	}
	seen[body] = true
	pass := h.pass
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			// A goroutine spawned from the hook runs outside the
			// stripe-held window; re-entry from there is legal (and
			// txescape polices what it may capture), so don't descend.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(pass, call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == stmPkgPath && reentrantEntryPoints[fn.Name()] {
			h.sup.report(pass, reg.Pos(),
				"OnCommit hook calls stm.%s (at %s): hooks run inside the stripe-held commit window, so re-entering the engine deadlocks against the committing transaction",
				fn.Name(), pass.Fset.Position(call.Pos()))
			return false // the outer report covers the call's arguments
		}
		// Same-package callee: follow it.
		if fn.Pkg() == pass.Pkg {
			if fd := h.decls[fn]; fd != nil && fd.Body != nil {
				h.walk(reg, fd.Body, seen, depth+1)
			}
		}
		return true
	})
}
