package analysis

import (
	"flag"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Hookreentry flags OnCommit hooks that call back into the engine.
//
// Tx.OnCommit hooks fire INSIDE the stripe-held commit window — after
// the clock bump, before the stripes release — which is what makes
// the WAL's queue order equal the per-key commit order (DESIGN.md
// §Durability). The price: a hook that starts a new transaction, or
// touches a Var through the typed operations, re-enters an engine
// whose commit stripes its own transaction is still holding. Best
// case it deadlocks against itself; worst case it commits against a
// half-released stripe order the safety argument does not cover.
//
// Hooks should only hand data outward: enqueue to the WAL, stash a
// ticket, bump an atomic counter. The check is transitive through
// same-package callees (a hook calling a helper that calls
// Atomically is just as deadlocked), with diagnostics reported at the
// registration site. Deliberate violations carry
// //stm:reentrant(reason).
//
// The same contract binds the flight recorder's sinks: a TraceSink's
// TxDone method runs on the delivering transaction's goroutine,
// immediately after the logical transaction ends and still on the
// session's hot path. A sink that starts a transaction turns every
// sampled delivery into another candidate delivery — recorder
// re-entry on the very session that is mid-delivery — so TxDone
// methods (recognized by the TxSummary/[]TraceEvent signature) are
// checked against the same entry-point list, with diagnostics at the
// method declaration.
var Hookreentry = &analysis.Analyzer{
	Name: "hookreentry",
	Doc: "check that Tx.OnCommit hooks and TraceSink.TxDone methods do " +
		"not re-enter the engine (hooks run inside the stripe-held " +
		"commit window; sinks run on the delivering session's hot path)",
	Run: runHookreentry,
}

// HookreentryUnusedSuppressions mirrors
// -hookreentry.unused-suppressions.
var HookreentryUnusedSuppressions bool

func init() {
	Hookreentry.Flags.Init("hookreentry", flag.ExitOnError)
	Hookreentry.Flags.BoolVar(&HookreentryUnusedSuppressions, "unused-suppressions", false, "report //stm:reentrant comments that suppress nothing")
}

// reentrantEntryPoints are the engine calls that must not happen in a
// commit hook: everything that starts a transaction, every typed Var
// operation (they need a live attempt and may park on a stripe the
// hook's transaction holds), and re-registration.
var reentrantEntryPoints = map[string]bool{
	"Atomically": true, "Atomic": true, "Atomic2": true,
	"Read": true, "Write": true, "Update": true, "UpdateErr": true,
	"Swap": true, "CompareAndSwap": true, "ReadAll": true, "Snapshot": true,
	"OnCommit": true,
}

func runHookreentry(pass *analysis.Pass) (any, error) {
	// The engine's own tests register hooks that poke internals on
	// purpose; the contract binds consumers.
	if isEnginePackage(pass.Pkg.Path()) {
		return nil, nil
	}
	sup := newSuppressor(pass, "reentrant")
	h := &hooks{pass: pass, sup: sup, decls: map[types.Object]*ast.FuncDecl{}}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := pass.TypesInfo.ObjectOf(fd.Name); obj != nil {
					h.decls[obj] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		if isGenerated(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isOnCommitCall(pass, call) || len(call.Args) != 1 {
				return true
			}
			h.checkHook(call.Args[0])
			return true
		})
		// Tracer hook sites: every TxDone method with the TraceSink
		// signature is a sink the engine will call on the hot path.
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil || fd.Name.Name != "TxDone" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func); ok && isTraceSinkSig(fn) {
				h.checkSink(fd)
			}
		}
	}
	sup.finish(pass, HookreentryUnusedSuppressions)
	return nil, nil
}

// isTraceSinkSig reports whether fn has stm.TraceSink's TxDone shape:
// (stm.TxSummary, []stm.TraceEvent).
func isTraceSinkSig(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return false
	}
	if !isStmValueNamed(sig.Params().At(0).Type(), "TxSummary") {
		return false
	}
	sl, ok := sig.Params().At(1).Type().(*types.Slice)
	return ok && isStmValueNamed(sl.Elem(), "TraceEvent")
}

// isStmValueNamed reports whether t is the engine package's named type
// N (by value, not pointer).
func isStmValueNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == stmPkgPath && obj.Name() == name
}

type hooks struct {
	pass  *analysis.Pass
	sup   *suppressor
	decls map[types.Object]*ast.FuncDecl
}

// checkHook resolves the registered function and walks it. All
// diagnostics anchor at the registration argument — the hook function
// itself may be fine in other callers; registering it as a commit
// hook is what makes the call a violation.
func (h *hooks) checkHook(arg ast.Expr) {
	var body *ast.BlockStmt
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		body = a.Body
	case *ast.Ident:
		if fd := h.decls[h.pass.TypesInfo.ObjectOf(a)]; fd != nil {
			body = fd.Body
		}
	case *ast.SelectorExpr:
		if obj := h.pass.TypesInfo.ObjectOf(a.Sel); obj != nil {
			if fd := h.decls[obj]; fd != nil {
				body = fd.Body
			}
		}
	}
	if body == nil {
		return
	}
	seen := map[*ast.BlockStmt]bool{}
	h.walk(arg.Pos(), "OnCommit hook",
		"hooks run inside the stripe-held commit window, so re-entering the engine deadlocks against the committing transaction",
		body, seen, 0)
}

// checkSink walks a TraceSink's TxDone method the same way,
// diagnostics anchored at the method name (the declaration is the
// contract site; there is no registration argument to point at —
// WithTracer may be in another package entirely).
func (h *hooks) checkSink(fd *ast.FuncDecl) {
	seen := map[*ast.BlockStmt]bool{}
	h.walk(fd.Name.Pos(), "TraceSink TxDone method",
		"sinks run on the delivering session's hot path, where starting a transaction re-enters the recorder mid-delivery (see stm.TraceSink)",
		fd.Body, seen, 0)
}

// walk reports engine re-entry reachable from a hook or sink body,
// following same-package callees up to a small depth (cross-package
// callees are opaque — internal/kv's own hooks only touch the WAL, and
// a same-package helper chain is the realistic way a store op sneaks
// back in). Diagnostics anchor at pos; what/why shape the message.
func (h *hooks) walk(pos token.Pos, what, why string, body *ast.BlockStmt, seen map[*ast.BlockStmt]bool, depth int) {
	if seen[body] || depth > 4 {
		return
	}
	seen[body] = true
	pass := h.pass
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			// A goroutine spawned from the hook runs outside the
			// stripe-held window (and off the sink's hot path);
			// re-entry from there is legal (and txescape polices what
			// it may capture), so don't descend.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(pass, call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == stmPkgPath && reentrantEntryPoints[fn.Name()] {
			h.sup.report(pass, pos,
				"%s calls stm.%s (at %s): %s",
				what, fn.Name(), pass.Fset.Position(call.Pos()), why)
			return false // the outer report covers the call's arguments
		}
		// Same-package callee: follow it.
		if fn.Pkg() == pass.Pkg {
			if fd := h.decls[fn]; fd != nil && fd.Body != nil {
				h.walk(pos, what, why, fd.Body, seen, depth+1)
			}
		}
		return true
	})
}
