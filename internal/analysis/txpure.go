package analysis

import (
	"flag"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Txpure flags code inside transaction bodies that is not retry-safe.
//
// The engine may execute a transaction body any number of times
// before one attempt commits — aborting and re-running the loser is
// how every contention manager resolves a conflict — so a body must
// be a pure function of its transactional reads plus immutable
// captures. Anything that observes or mutates the outside world per
// execution (channels, locks, goroutines, I/O, clocks, randomness,
// accumulating writes to captured variables) silently changes meaning
// under contention: it happens once per ATTEMPT, not once per COMMIT.
//
// A transaction body is: any function literal or declaration with a
// *stm.Tx parameter (the compositional *Tx forms included), and any
// closure passed to stm.Update / stm.UpdateErr. Closures registered
// with Tx.OnCommit are not bodies — they run exactly once, after the
// attempt has won, and are checked by hookreentry instead.
//
// Deliberate violations (failure injectors, liveness experiments)
// carry //stm:impure(reason) on or directly above the flagged line.
var Txpure = &analysis.Analyzer{
	Name: "txpure",
	Doc: "check that transaction bodies are retry-safe: no channel ops, locks, " +
		"goroutines, I/O, clock or randomness reads, or accumulating captured writes",
	Run: runTxpure,
}

// TxpureUnusedSuppressions mirrors the -txpure.unused-suppressions
// flag (exported so tests can flip it without a FlagSet round-trip).
var TxpureUnusedSuppressions bool

func init() {
	Txpure.Flags.Init("txpure", flag.ExitOnError)
	Txpure.Flags.BoolVar(&TxpureUnusedSuppressions, "unused-suppressions", false, "report //stm:impure comments that suppress nothing")
}

func runTxpure(pass *analysis.Pass) (any, error) {
	if isEnginePackage(pass.Pkg.Path()) {
		return nil, nil
	}
	sup := newSuppressor(pass, "impure")
	p := &purity{pass: pass, sup: sup, decls: map[types.Object]*ast.FuncDecl{}, visited: map[*ast.BlockStmt]bool{}}

	// Named functions by object, so a body passed to stm.Update by
	// name is analyzed at its declaration.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := pass.TypesInfo.ObjectOf(fd.Name); obj != nil {
					p.decls[obj] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		if isGenerated(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// A declared function (or method) taking a *stm.Tx is
			// transactional code wherever it is called from.
			if obj := pass.TypesInfo.ObjectOf(fd.Name); obj != nil {
				if sig, ok := obj.Type().(*types.Signature); ok && sigHasTxParam(sig) {
					p.root(fd, fd.Body)
					continue
				}
			}
			// Otherwise scan it for literals that are bodies.
			p.scan(fd.Body)
		}
	}
	sup.finish(pass, TxpureUnusedSuppressions)
	return nil, nil
}

type purity struct {
	pass    *analysis.Pass
	sup     *suppressor
	decls   map[types.Object]*ast.FuncDecl
	visited map[*ast.BlockStmt]bool

	// fn is the function node owning the body currently being walked;
	// capture is judged against its extent so the function's own
	// parameters (per-attempt values) do not count as captured.
	fn ast.Node
}

// scan looks for transaction-body roots inside non-transactional
// code: literals with a *Tx parameter, and arguments to stm.Update /
// stm.UpdateErr (whose closures take no Tx but still re-execute).
func (p *purity) scan(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if sig, ok := p.pass.TypesInfo.TypeOf(n).(*types.Signature); ok && sigHasTxParam(sig) {
				p.root(n, n.Body)
				return false
			}
		case *ast.CallExpr:
			if isStmCall(p.pass, n, "Update", "UpdateErr") {
				for _, arg := range n.Args {
					switch arg := arg.(type) {
					case *ast.FuncLit:
						p.root(arg, arg.Body)
					case *ast.Ident:
						if fd := p.decls[p.pass.TypesInfo.ObjectOf(arg)]; fd != nil && fd.Body != nil {
							p.root(fd, fd.Body)
						}
					}
				}
			}
		}
		return true
	})
}

// root walks one transaction body and reports impurities. Nested
// literals execute inline (sort comparators and the like) and are
// walked as part of the body; OnCommit arguments and go'd closures
// are not — the former are hookreentry's jurisdiction, the latter are
// already reported wholesale at the go statement.
func (p *purity) root(fn ast.Node, body *ast.BlockStmt) {
	if p.visited[body] {
		return
	}
	p.visited[body] = true
	prevFn := p.fn
	p.fn = fn
	defer func() { p.fn = prevFn }()

	pass, info := p.pass, p.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			p.sup.report(pass, n.Pos(), "transaction body spawns a goroutine: every aborted attempt spawns another (move the spawn into tx.OnCommit or outside the transaction)")
			return false
		case *ast.SendStmt:
			p.sup.report(pass, n.Pos(), "channel send in transaction body: retries repeat it once per attempt, not once per commit")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				p.sup.report(pass, n.Pos(), "channel receive in transaction body: it blocks the attempt and consumes a value per retry")
				return false
			}
		case *ast.SelectStmt:
			p.sup.report(pass, n.Pos(), "select in transaction body: channel communication is repeated on every retry")
			return false
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					p.sup.report(pass, n.Pos(), "range over a channel in transaction body: values are consumed once per attempt")
					return false
				}
			}
		case *ast.CallExpr:
			p.checkCall(n)
			if _, lit := funcLitArg(n); lit != nil && isOnCommitCall(pass, n) {
				return false // hookreentry owns the hook's body
			}
			// A named function handed to stm.Update/UpdateErr becomes
			// a body too; literals are already walked inline.
			if isStmCall(pass, n, "Update", "UpdateErr") {
				for _, arg := range n.Args {
					if id, ok := arg.(*ast.Ident); ok {
						if fd := p.decls[info.ObjectOf(id)]; fd != nil && fd.Body != nil {
							p.root(fd, fd.Body)
						}
					}
				}
			}
		case *ast.AssignStmt:
			p.checkAssign(n)
		case *ast.IncDecStmt:
			if obj := p.capturedVar(n.X); obj != nil {
				p.sup.report(pass, n.Pos(), "%s of captured variable %q in transaction body: each aborted attempt applies it again", n.Tok, obj.Name())
			}
		}
		return true
	})
}

// impureCallees maps package path → the reason calls into it are not
// retry-safe. A nil name-set means the whole package is flagged.
var impureCallees = map[string]struct {
	names  map[string]bool // nil = every function
	reason string
}{
	"sync": {nil, "blocking synchronization inside a transaction body composes wrong with the engine's own conflict resolution (a held lock outlives the attempt that took it)"},
	"time": {map[string]bool{
		"Now": true, "Sleep": true, "Since": true, "Until": true, "After": true,
		"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	}, "wall-clock use differs between retries of the same transaction (sample the clock once outside the body, as internal/kv does)"},
	"math/rand":    {nil, "randomness re-drawn per attempt makes retries diverge"},
	"math/rand/v2": {nil, "randomness re-drawn per attempt makes retries diverge"},
	"crypto/rand":  {nil, "randomness re-drawn per attempt makes retries diverge"},
	"fmt": {map[string]bool{
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	}, "I/O in a transaction body repeats once per attempt"},
	"os":       {nil, "I/O in a transaction body repeats once per attempt"},
	"log":      {nil, "I/O in a transaction body repeats once per attempt"},
	"io":       {nil, "I/O in a transaction body repeats once per attempt"},
	"bufio":    {nil, "I/O in a transaction body repeats once per attempt"},
	"net":      {nil, "I/O in a transaction body repeats once per attempt"},
	"net/http": {nil, "I/O in a transaction body repeats once per attempt"},
	"syscall":  {nil, "I/O in a transaction body repeats once per attempt"},
}

func (p *purity) checkCall(call *ast.CallExpr) {
	pass := p.pass
	// Builtins: println/print write to stderr; close is a channel op.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "close":
				p.sup.report(pass, call.Pos(), "close of a channel in transaction body: a second attempt closes it twice")
			case "println", "print":
				p.sup.report(pass, call.Pos(), "%s in transaction body: I/O repeats once per attempt", b.Name())
			}
			return
		}
	}
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	rule, ok := impureCallees[fn.Pkg().Path()]
	if !ok {
		return
	}
	if rule.names != nil && !rule.names[fn.Name()] {
		return
	}
	p.sup.report(pass, call.Pos(), "call to %s.%s in transaction body: %s", fn.Pkg().Name(), fn.Name(), rule.reason)
}

// checkAssign flags accumulating writes to variables captured from
// outside the body. Plain `x = <expr>` result capture is the blessed
// idiom — the last attempt's write wins and earlier attempts' writes
// are overwritten whole — but `x += …`, `x op= …` and
// `x = append(x, …)` fold every aborted attempt into the final value.
func (p *purity) checkAssign(a *ast.AssignStmt) {
	for i, lhs := range a.Lhs {
		obj := p.capturedVar(lhs)
		if obj == nil {
			continue
		}
		if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
			p.sup.report(p.pass, a.Pos(), "compound assignment to captured variable %q in transaction body: each aborted attempt applies it again (capture the result with plain `=` instead)", obj.Name())
			continue
		}
		if a.Tok != token.ASSIGN || len(a.Rhs) != len(a.Lhs) {
			continue
		}
		if call, ok := ast.Unparen(a.Rhs[i]).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := p.pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin && len(call.Args) > 0 {
					if first := p.objectOf(call.Args[0]); first != nil && first == obj {
						p.sup.report(p.pass, a.Pos(), "transaction body appends to captured slice %q: aborted attempts' elements accumulate (reset the slice at the top of the body or use a per-attempt buffer)", obj.Name())
					}
				}
			}
		}
	}
}

// capturedVar resolves expr to a variable declared OUTSIDE the
// function owning the current body (a closure capture or a package
// variable); nil otherwise. Parameters and locals of the body — and
// of literals nested in it — are per-attempt state and do not count.
func (p *purity) capturedVar(expr ast.Expr) types.Object {
	obj := p.objectOf(expr)
	if obj == nil {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	if obj.Pos() >= p.fn.Pos() && obj.Pos() <= p.fn.End() {
		return nil
	}
	return obj
}

func (p *purity) objectOf(expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	return p.pass.TypesInfo.ObjectOf(id)
}

// isOnCommitCall reports whether call is tx.OnCommit(...).
func isOnCommitCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "OnCommit" {
		return false
	}
	return isTxType(pass.TypesInfo.TypeOf(sel.X))
}
