package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// A directive is one //stm:<name>(reason) suppression comment.
// Placement: at the end of the offending line, or alone on the line
// directly above it (the same two placements gofmt preserves). The
// reason is mandatory — suppressions are part of the audit trail, so
// "why is this exempt" must be answerable at the comment itself.
type directive struct {
	pos    token.Pos // position of the comment
	line   int       // line the comment sits on
	reason string
	bad    string // non-empty: malformed (missing/empty reason)
	used   bool
}

// suppressor collects one analyzer's directives across a package and
// filters that analyzer's diagnostics against them. Each analyzer
// owns one directive name (txpure → stm:impure, …): a stale
// stm:impure comment is judged by txpure alone, so "unused" is
// well-defined even though the analyzers run independently.
type suppressor struct {
	name string // directive name, e.g. "impure"
	byLn map[string]map[int]*directive
}

// newSuppressor scans every file in the pass for //stm:<name>
// comments. Malformed directives (no parenthesized reason, or an
// empty one) are reported immediately: a suppression that cannot say
// why it exists is itself a finding.
func newSuppressor(pass *analysis.Pass, name string) *suppressor {
	s := &suppressor{name: name, byLn: make(map[string]map[int]*directive)}
	prefix := "//stm:" + name
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text != prefix && !strings.HasPrefix(c.Text, prefix+"(") && !strings.HasPrefix(c.Text, prefix+" ") {
					continue
				}
				d := &directive{pos: c.Pos()}
				rest := strings.TrimPrefix(c.Text, prefix)
				reason, ok := parseReason(rest)
				if !ok {
					d.bad = fmt.Sprintf("//stm:%s needs a parenthesized reason: //stm:%s(why this is safe)", name, name)
				} else {
					d.reason = reason
				}
				p := pass.Fset.Position(c.Pos())
				d.line = p.Line
				m := s.byLn[p.Filename]
				if m == nil {
					m = make(map[int]*directive)
					s.byLn[p.Filename] = m
				}
				m[d.line] = d
			}
		}
	}
	return s
}

// parseReason extracts the reason from "(reason)" (an optional
// trailing free-form comment after the closing paren is allowed).
func parseReason(rest string) (string, bool) {
	if !strings.HasPrefix(rest, "(") {
		return "", false
	}
	end := strings.LastIndex(rest, ")")
	if end < 0 {
		return "", false
	}
	reason := strings.TrimSpace(rest[1:end])
	return reason, reason != ""
}

// suppressed reports whether a diagnostic at pos is covered by a
// well-formed directive — same line, or the line directly above —
// and marks that directive used.
func (s *suppressor) suppressed(pass *analysis.Pass, pos token.Pos) bool {
	p := pass.Fset.Position(pos)
	m := s.byLn[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if d := m[line]; d != nil && d.bad == "" {
			d.used = true
			return true
		}
	}
	return false
}

// report emits a diagnostic unless a directive covers it.
func (s *suppressor) report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if s.suppressed(pass, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// finish reports malformed directives always, and — when the
// analyzer's -unused-suppressions flag is set — directives that
// suppressed nothing in this package: a stale suppression hides the
// next real violation on its line, so it must not linger.
func (s *suppressor) finish(pass *analysis.Pass, reportUnused bool) {
	for _, m := range s.byLn {
		for _, d := range m {
			if d.bad != "" {
				pass.Reportf(d.pos, "%s", d.bad)
				continue
			}
			if reportUnused && !d.used {
				pass.Reportf(d.pos, "unused //stm:%s suppression (nothing to suppress here — remove it)", s.name)
			}
		}
	}
}

// isGenerated reports whether a file carries the standard generated-
// code marker; generated files are exempt from the contracts (their
// generator, not a reviewer, owns them).
func isGenerated(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "// Code generated ") && strings.HasSuffix(c.Text, " DO NOT EDIT.") {
				return true
			}
		}
	}
	return false
}
