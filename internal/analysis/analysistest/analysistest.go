// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against // want comments — a self-contained
// stand-in for golang.org/x/tools/go/analysis/analysistest, which the
// toolchain does not vendor (it depends on go/packages). Testdata
// lives in testdata/src/<pkg>/ and may import real module packages
// (the suite's fixtures import repro/internal/stm); imports are
// resolved offline through `go list -export`, which materializes
// export data from the build cache.
//
// Want-comment syntax is the upstream subset the suite uses: a
// comment on the flagged line of the form
//
//	// want "regexp" `another regexp`
//
// Every diagnostic on a line must be matched by a distinct regexp on
// that line and vice versa.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<pkg> (relative to the calling test's
// directory), type-checks it, applies a, and compares diagnostics
// with the package's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	tpkg, info, err := typecheck(fset, pkg, files)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	diags := runAnalyzer(t, a, fset, files, tpkg, info)
	checkWants(t, fset, files, diags)
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.File(files[i].Pos()).Name() < fset.File(files[j].Pos()).Name()
	})
	return files, nil
}

// exportFiles caches import path → compiled export data location,
// filled by `go list -export` once per needed path set.
var (
	exportMu    sync.Mutex
	exportFiles = map[string]string{}
)

// resolveExports asks the go tool for export data covering paths and
// their transitive dependencies. Offline-safe: everything here is
// module-local or std, built into the cache on demand.
func resolveExports(paths []string) error {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for _, p := range paths {
		if _, ok := exportFiles[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -export: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
	}
	return nil
}

func typecheck(fset *token.FileSet, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	var imports []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil && p != "unsafe" {
				imports = append(imports, p)
			}
		}
	}
	if err := resolveExports(imports); err != nil {
		return nil, nil, err
	}
	lookup := func(p string) (io.ReadCloser, error) {
		exportMu.Lock()
		f, ok := exportFiles[p]
		exportMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(f)
	}
	info := &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(path, fset, files, info)
	return pkg, info, err
}

// runAnalyzer applies a (and, first, its Requires closure) and
// returns the diagnostics. Facts are unsupported — none of the
// suite's analyzers use them.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	results := map[*analysis.Analyzer]any{}
	var apply func(a *analysis.Analyzer, record bool)
	apply = func(a *analysis.Analyzer, record bool) {
		for _, req := range a.Requires {
			if _, done := results[req]; !done {
				apply(req, false)
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   map[*analysis.Analyzer]any{},
			Report: func(d analysis.Diagnostic) {
				if record {
					diags = append(diags, d)
				}
			},
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		for _, req := range a.Requires {
			pass.ResultOf[req] = results[req]
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
		results[a] = res
	}
	apply(a, true)
	return diags
}

// wantRx extracts the expectation strings from a // want comment.
var wantRx = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\")|(`[^`]*`)")

type want struct {
	rx   *regexp.Regexp
	used bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*want{} // "file:line" → expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, m := range wantRx.FindAllString(c.Text[idx+len("// want "):], -1) {
					lit, err := strconv.Unquote(m)
					if err != nil {
						t.Errorf("%s: bad want string %s: %v", key, m, err)
						continue
					}
					rx, err := regexp.Compile(lit)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, lit, err)
						continue
					}
					wants[key] = append(wants[key], &want{rx: rx})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.rx.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.rx)
			}
		}
	}
}
