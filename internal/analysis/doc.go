// Package analysis holds stmlint: a go/analysis suite encoding the
// transactional contracts the Go compiler cannot check. The engine
// (internal/stm) executes a transaction body any number of times
// before one attempt commits — the contention manager, not the
// caller, decides who aborts and retries — and pooled sessions
// recycle Tx descriptors between unrelated transactions. DESIGN.md
// documents the resulting rules for user code; the analyzers here
// enforce them:
//
//   - txpure: closures and functions executed inside a transaction
//     must be retry-safe. Channel operations, mutex use, goroutine
//     spawns, I/O, wall-clock and randomness reads, and accumulating
//     writes to captured variables are flagged. Suppress a deliberate
//     violation with //stm:impure(reason).
//
//   - txescape: a *stm.Tx or *stm.Thread must not outlive the
//     attempt or session it belongs to: storing one in a struct
//     field, global, map, slice or channel, or handing one to a
//     spawned goroutine, is exactly the descriptor-recycling ABA
//     hazard DESIGN.md §2 argues around. Suppress with
//     //stm:escape(reason).
//
//   - hookreentry: a function registered with Tx.OnCommit runs
//     inside the stripe-held commit window (DESIGN.md §Durability);
//     calling back into the engine from there — Atomically, the
//     typed Var operations, or any same-package function that
//     transitively does either — is a self-deadlock. Suppress with
//     //stm:reentrant(reason).
//
// Each suppression comment requires a non-empty reason; a bare
// //stm:impure (or an empty reason) is itself reported. A
// suppression that no longer suppresses anything is reported when
// the analyzer runs with -unused-suppressions (exposed by cmd/stmlint
// as a single top-level flag fanned out to all three analyzers).
//
// Run the suite with:
//
//	go run ./cmd/stmlint ./...
//
// which also bundles a selected set of upstream vet passes; CI runs
// it as a required step.
package analysis
