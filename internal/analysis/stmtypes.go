package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// stmPkgPath is the engine package every contract here is about.
const stmPkgPath = "repro/internal/stm"

// enginePackages are exempt from the transactional-purity contract:
// internal/stm IS the machinery the contract protects (its commit
// path, session pool and tests manipulate descriptors and scheduling
// on purpose), and internal/core implements contention managers —
// policy code that runs *during* conflicts and legitimately sleeps,
// reads clocks and randomizes backoff. Test packages compiled
// alongside them ("repro/internal/stm.test", external _test variants)
// share the exemption.
func isEnginePackage(path string) bool {
	for _, p := range [...]string{stmPkgPath, "repro/internal/core"} {
		if path == p || strings.HasPrefix(path, p+".") || strings.HasPrefix(path, p+"_test") || strings.HasPrefix(path, p+" ") {
			return true
		}
	}
	return false
}

// isStmNamedPtr reports whether t is *P.N where P is the engine
// package and N is one of names.
func isStmNamedPtr(t types.Type, names ...string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != stmPkgPath {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// isTxType reports whether t is *stm.Tx.
func isTxType(t types.Type) bool { return isStmNamedPtr(t, "Tx") }

// isTxOrThreadType reports whether t is *stm.Tx or *stm.Thread — the
// two descriptor handles that pooled sessions recycle and that must
// therefore never escape the code that was handed them.
func isTxOrThreadType(t types.Type) bool { return isStmNamedPtr(t, "Tx", "Thread") }

// sigHasTxParam reports whether any parameter of sig is *stm.Tx.
func sigHasTxParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isTxType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// callee resolves the called function or method, seeing through
// generic instantiation (stm.Atomic[int] and friends).
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	return typeutil.StaticCallee(pass.TypesInfo, call)
}

// isStmCall reports whether call is a call of one of the named
// package-level functions or methods of the engine package.
func isStmCall(pass *analysis.Pass, call *ast.CallExpr, names ...string) bool {
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != stmPkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// funcLitsPassedTo returns the index of the first FuncLit argument of
// call, or -1.
func funcLitArg(call *ast.CallExpr) (int, *ast.FuncLit) {
	for i, arg := range call.Args {
		if lit, ok := arg.(*ast.FuncLit); ok {
			return i, lit
		}
	}
	return -1, nil
}
