package analysis

import (
	"flag"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Txescape flags *stm.Tx and *stm.Thread values that escape the code
// they were handed to.
//
// Pooled sessions recycle Tx descriptors: the moment Atomically
// returns, the descriptor a body was using may be re-armed for an
// unrelated transaction on another goroutine (DESIGN.md §2 is the
// safety argument for why the engine itself tolerates this — the
// argument covers only references that stay inert). A Tx stored in a
// struct field, global, map, slice or channel, or captured by a
// spawned goroutine, is a live reference to memory that will be
// reused: reads through it alias a stranger's transaction — the
// classic ABA hazard. Thread is a pinned session and recycles the
// same way on Close.
//
// Keep descriptors on the stack of the function that received them.
// Deliberate escapes (the failure injector holds a Thread to halt it
// from outside) carry //stm:escape(reason).
var Txescape = &analysis.Analyzer{
	Name: "txescape",
	Doc: "check that *stm.Tx / *stm.Thread descriptors do not escape into structs, " +
		"globals, containers, channels or spawned goroutines (pooled sessions recycle them)",
	Run: runTxescape,
}

// TxescapeUnusedSuppressions mirrors -txescape.unused-suppressions.
var TxescapeUnusedSuppressions bool

func init() {
	Txescape.Flags.Init("txescape", flag.ExitOnError)
	Txescape.Flags.BoolVar(&TxescapeUnusedSuppressions, "unused-suppressions", false, "report //stm:escape comments that suppress nothing")
}

func runTxescape(pass *analysis.Pass) (any, error) {
	// The engine and the contention managers legitimately hold
	// descriptors (sessions own them; managers park enemy Tx values in
	// waiter queues) — the contract binds their *consumers*.
	if isEnginePackage(pass.Pkg.Path()) {
		return nil, nil
	}
	sup := newSuppressor(pass, "escape")
	e := &escape{pass: pass, sup: sup}
	for _, f := range pass.Files {
		if isGenerated(f) {
			continue
		}
		ast.Inspect(f, e.check)
	}
	sup.finish(pass, TxescapeUnusedSuppressions)
	return nil, nil
}

type escape struct {
	pass *analysis.Pass
	sup  *suppressor
}

func (e *escape) descriptor(expr ast.Expr) bool {
	t := e.pass.TypesInfo.TypeOf(expr)
	return t != nil && isTxOrThreadType(t)
}

func kindName(t types.Type) string {
	if isStmNamedPtr(t, "Thread") {
		return "*stm.Thread"
	}
	return "*stm.Tx"
}

func (e *escape) reportEscape(expr ast.Expr, how string) {
	t := e.pass.TypesInfo.TypeOf(expr)
	e.sup.report(e.pass, expr.Pos(),
		"%s %s: pooled sessions recycle descriptors, so a stored reference aliases a future, unrelated transaction (DESIGN.md §2)",
		kindName(t), how)
}

func (e *escape) check(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			if len(n.Rhs) != len(n.Lhs) {
				break // tuple assignment can't produce a descriptor from a call we care about positionally
			}
			rhs := n.Rhs[i]
			if !e.descriptor(rhs) {
				continue
			}
			switch l := ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr:
				e.reportEscape(rhs, "stored in a struct field")
			case *ast.IndexExpr:
				e.reportEscape(rhs, "stored in a map or slice element")
			case *ast.StarExpr:
				e.reportEscape(rhs, "stored through a pointer")
			case *ast.Ident:
				if obj := e.pass.TypesInfo.ObjectOf(l); obj != nil && obj.Parent() == obj.Pkg().Scope() {
					e.reportEscape(rhs, "stored in a package-level variable")
				}
			}
		}
	case *ast.ValueSpec:
		// var x = tx at package level.
		for _, v := range n.Values {
			if e.descriptor(v) {
				if obj := e.pass.TypesInfo.ObjectOf(n.Names[0]); obj != nil && obj.Parent() == obj.Pkg().Scope() {
					e.reportEscape(v, "stored in a package-level variable")
				}
			}
		}
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if e.descriptor(v) {
				e.reportEscape(v, "stored in a composite literal")
			}
		}
	case *ast.SendStmt:
		if e.descriptor(n.Value) {
			e.reportEscape(n.Value, "sent on a channel")
		}
	case *ast.CallExpr:
		// append(s, tx): stored in a slice.
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := e.pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
				for _, arg := range n.Args[1:] {
					if e.descriptor(arg) {
						e.reportEscape(arg, "appended to a slice")
					}
				}
			}
		}
	case *ast.GoStmt:
		e.checkGo(n)
		return false
	}
	return true
}

// checkGo flags descriptors handed to a spawned goroutine, either as
// call arguments or as captures of a go'd function literal. The
// goroutine outlives the attempt: by the time it runs, the descriptor
// may already belong to someone else.
func (e *escape) checkGo(g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if e.descriptor(arg) {
			e.reportEscape(arg, "passed to a spawned goroutine")
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	info := e.pass.TypesInfo
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar || !isTxOrThreadType(obj.Type()) {
			return true
		}
		// Declared outside the literal = captured by the goroutine.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			e.sup.report(e.pass, id.Pos(),
				"%s captured by a goroutine spawned at %s: the descriptor may be recycled before the goroutine runs (DESIGN.md §2)",
				kindName(obj.Type()), e.pass.Fset.Position(g.Pos()))
		}
		return true
	})
}
