// Package graph implements the graph-labelling machinery behind the
// paper's Theorem 9 (after Garey and Graham's Lemma 2): valid
// labellings, the score S(G), the graphs G(m,s), and numeric checks of
// the paper's Lemma 7 and Corollary 8.
//
// A valid labelling assigns L(v) >= 0 with L(u)+L(v) >= 1 on every
// edge; the score S(G) is the infimum of sum L(v) — exactly the
// minimum fractional vertex cover. By the half-integrality theorem the
// optimum is attained with labels in {0, 1/2, 1} and equals half the
// minimum (integral) vertex cover of the bipartite double cover, which
// König's theorem reduces to maximum bipartite matching. Score is
// therefore exact, not approximated.
package graph

import "fmt"

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	// N is the number of vertices.
	N int
	// Edges lists each undirected edge once as (u, v) with u < v.
	Edges [][2]int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph { return &Graph{N: n} }

// AddEdge inserts the undirected edge (u, v). Self-loops are rejected
// (a self-loop would force L(v) >= 1/2 twice over and never occurs in
// the paper's constructions); duplicate edges are tolerated and
// deduplicated.
func (g *Graph) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || v < 0 || u >= g.N || v >= g.N {
		return fmt.Errorf("graph: edge (%d,%d) outside [0,%d)", u, v, g.N)
	}
	if u > v {
		u, v = v, u
	}
	for _, e := range g.Edges {
		if e[0] == u && e[1] == v {
			return nil
		}
	}
	g.Edges = append(g.Edges, [2]int{u, v})
	return nil
}

// GMS constructs the paper's G(m,s): vertex set {0, ..., (s+1)m - 1}
// with an edge between a and b whenever |a-b| >= m.
func GMS(m, s int) *Graph {
	n := (s + 1) * m
	g := New(n)
	for a := 0; a < n; a++ {
		for b := a + m; b < n; b++ {
			g.Edges = append(g.Edges, [2]int{a, b})
		}
	}
	return g
}

// ValidLabelling reports whether L satisfies L(v) >= 0 and
// L(u)+L(v) >= 1 on every edge.
func (g *Graph) ValidLabelling(l []float64) error {
	if len(l) != g.N {
		return fmt.Errorf("graph: labelling has %d entries, want %d", len(l), g.N)
	}
	for v, x := range l {
		if x < 0 {
			return fmt.Errorf("graph: negative label %g at vertex %d", x, v)
		}
	}
	for _, e := range g.Edges {
		if l[e[0]]+l[e[1]] < 1-labelEps {
			return fmt.Errorf("graph: edge (%d,%d) under-covered: %g + %g < 1", e[0], e[1], l[e[0]], l[e[1]])
		}
	}
	return nil
}

const labelEps = 1e-9

// Score returns S(G), the minimum total weight of a valid labelling,
// exactly (as a rational with denominator 2, returned as float64). It
// also returns an optimal half-integral labelling witnessing the
// score.
func (g *Graph) Score() (float64, []float64) {
	// Bipartite double cover: left copy u' and right copy u'' of each
	// vertex; each edge uv contributes u'–v'' and v'–u''. Minimum
	// vertex cover of the cover = maximum matching (König), and the
	// fractional cover of G assigns each vertex half its copies'
	// membership in the integral cover.
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	matchL, matchR := maxMatching(g.N, adj)
	cover := koenigCover(g.N, adj, matchL, matchR)
	labels := make([]float64, g.N)
	total := 0.0
	for v := 0; v < g.N; v++ {
		w := 0.0
		if cover.left[v] {
			w += 0.5
		}
		if cover.right[v] {
			w += 0.5
		}
		labels[v] = w
		total += w
	}
	return total, labels
}

// maxMatching runs augmenting-path maximum matching on the bipartite
// double cover (left copies to right copies). adj is G's adjacency;
// the cover's edges are left[u]–right[v] for each uv in G.
func maxMatching(n int, adj [][]int) (matchL, matchR []int) {
	matchL = make([]int, n) // left u -> matched right vertex, -1 if free
	matchR = make([]int, n)
	for i := range matchL {
		matchL[i] = -1
		matchR[i] = -1
	}
	var try func(u int, seen []bool) bool
	try = func(u int, seen []bool) bool {
		for _, v := range adj[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			if matchR[v] == -1 || try(matchR[v], seen) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		return false
	}
	for u := 0; u < n; u++ {
		seen := make([]bool, n)
		try(u, seen)
	}
	return matchL, matchR
}

type coverSets struct {
	left, right []bool
}

// koenigCover converts a maximum matching of the double cover into a
// minimum vertex cover via König's construction: alternating reachable
// sets from free left vertices.
func koenigCover(n int, adj [][]int, matchL, matchR []int) coverSets {
	visitedL := make([]bool, n)
	visitedR := make([]bool, n)
	var queue []int
	for u := 0; u < n; u++ {
		if matchL[u] == -1 {
			visitedL[u] = true
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if visitedR[v] {
				continue
			}
			visitedR[v] = true
			if w := matchR[v]; w != -1 && !visitedL[w] {
				visitedL[w] = true
				queue = append(queue, w)
			}
		}
	}
	cover := coverSets{left: make([]bool, n), right: make([]bool, n)}
	for u := 0; u < n; u++ {
		cover.left[u] = !visitedL[u] // matched-and-unreached left side
		cover.right[u] = visitedR[u] // reached right side
	}
	return cover
}
