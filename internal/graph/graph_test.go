package graph_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func mustEdge(t *testing.T, g *graph.Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func TestScoreSingleEdge(t *testing.T) {
	g := graph.New(2)
	mustEdge(t, g, 0, 1)
	score, labels := g.Score()
	if score != 1 {
		t.Fatalf("S(K2) = %g, want 1", score)
	}
	if err := g.ValidLabelling(labels); err != nil {
		t.Fatal(err)
	}
}

func TestScoreTriangle(t *testing.T) {
	// K3: optimal fractional cover is 1/2 everywhere, total 3/2 —
	// strictly below the integral cover of 2.
	g := graph.New(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 0, 2)
	score, labels := g.Score()
	if score != 1.5 {
		t.Fatalf("S(K3) = %g, want 1.5", score)
	}
	if err := g.ValidLabelling(labels); err != nil {
		t.Fatal(err)
	}
}

func TestScoreStar(t *testing.T) {
	// Star K(1,4): cover the hub with 1.
	g := graph.New(5)
	for leaf := 1; leaf < 5; leaf++ {
		mustEdge(t, g, 0, leaf)
	}
	score, labels := g.Score()
	if score != 1 {
		t.Fatalf("S(star) = %g, want 1", score)
	}
	if err := g.ValidLabelling(labels); err != nil {
		t.Fatal(err)
	}
}

func TestScoreEmptyGraph(t *testing.T) {
	g := graph.New(4)
	score, labels := g.Score()
	if score != 0 {
		t.Fatalf("S(empty) = %g, want 0", score)
	}
	if err := g.ValidLabelling(labels); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 0) // duplicate, tolerated
	if len(g.Edges) != 1 {
		t.Fatalf("duplicate edge stored: %v", g.Edges)
	}
}

func TestValidLabellingRejects(t *testing.T) {
	g := graph.New(2)
	mustEdge(t, g, 0, 1)
	if err := g.ValidLabelling([]float64{0.4, 0.4}); err == nil {
		t.Error("under-covered labelling accepted")
	}
	if err := g.ValidLabelling([]float64{-0.1, 1.2}); err == nil {
		t.Error("negative label accepted")
	}
	if err := g.ValidLabelling([]float64{1}); err == nil {
		t.Error("wrong-length labelling accepted")
	}
}

func TestGMSStructure(t *testing.T) {
	// G(2,2): 6 vertices, edges when |a-b| >= 2.
	g := graph.GMS(2, 2)
	if g.N != 6 {
		t.Fatalf("G(2,2) has %d vertices, want 6", g.N)
	}
	want := 0
	for a := 0; a < 6; a++ {
		for b := a + 2; b < 6; b++ {
			want++
		}
	}
	if len(g.Edges) != want {
		t.Fatalf("G(2,2) has %d edges, want %d", len(g.Edges), want)
	}
}

// TestGMSScore pins S(G(m,s)) for small cases. A valid labelling must
// give every pair at distance >= m total weight 1; assigning 1/2 to
// all vertices is always valid, total (s+1)m/2, and the matching dual
// shows it is optimal for these parameters.
func TestGMSScore(t *testing.T) {
	for _, tc := range []struct{ m, s int }{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 2}, {2, 3}} {
		g := graph.GMS(tc.m, tc.s)
		score, labels := g.Score()
		if err := g.ValidLabelling(labels); err != nil {
			t.Fatalf("G(%d,%d): invalid witness: %v", tc.m, tc.s, err)
		}
		// Lemma 7 with the trivial partition (one subgraph, s=1
		// applies only when the graph IS G(m,1)); in general S(G(m,s))
		// >= s*m (a matching of s*m disjoint far pairs exists: pair v
		// and v+m for v in [0,m), then shift).
		if score < float64(tc.m) {
			t.Fatalf("G(%d,%d): score %g below m", tc.m, tc.s, score)
		}
	}
}

// TestLemma7RandomPartitions partitions the edges of G(m,s) into s
// spanning subgraphs at random and checks max_i S(H_i) >= m.
func TestLemma7RandomPartitions(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 9))
	for _, tc := range []struct{ m, s int }{{1, 2}, {2, 2}, {1, 3}, {2, 3}} {
		g := graph.GMS(tc.m, tc.s)
		for trial := 0; trial < 10; trial++ {
			parts := make([]*graph.Graph, tc.s)
			for i := range parts {
				parts[i] = graph.New(g.N)
			}
			for _, e := range g.Edges {
				i := int(rng.Int64N(int64(tc.s)))
				parts[i].Edges = append(parts[i].Edges, e)
			}
			maxScore := 0.0
			for _, part := range parts {
				if s, _ := part.Score(); s > maxScore {
					maxScore = s
				}
			}
			if maxScore < float64(tc.m) {
				t.Fatalf("G(%d,%d) trial %d: max part score %g < m (Lemma 7 violated)",
					tc.m, tc.s, trial, maxScore)
			}
		}
	}
}

// TestCorollary8 is Lemma 7 at the parameters the proof of Theorem 9
// uses: G(2m, s(s+1)/2) partitioned into s(s+1)/2 subgraphs has a part
// of score >= 2m. Kept tiny (s=2, m=1) because graph size grows as
// (k+1)*2m.
func TestCorollary8(t *testing.T) {
	const s, m = 2, 1
	k := s * (s + 1) / 2 // 3 subgraphs
	g := graph.GMS(2*m, k)
	rng := rand.New(rand.NewPCG(21, 34))
	for trial := 0; trial < 10; trial++ {
		parts := make([]*graph.Graph, k)
		for i := range parts {
			parts[i] = graph.New(g.N)
		}
		for _, e := range g.Edges {
			i := int(rng.Int64N(int64(k)))
			parts[i].Edges = append(parts[i].Edges, e)
		}
		maxScore := 0.0
		for _, part := range parts {
			if sc, _ := part.Score(); sc > maxScore {
				maxScore = sc
			}
		}
		if maxScore < float64(2*m) {
			t.Fatalf("trial %d: max part score %g < 2m (Corollary 8 violated)", trial, maxScore)
		}
	}
}

// TestQuickScoreDuality: on arbitrary random graphs the computed score
// (i) admits its witness labelling and (ii) is at least half the
// number of edges in any matching we can greedily find (weak duality),
// and at most the vertex count (trivial cover of all ones).
func TestQuickScoreDuality(t *testing.T) {
	property := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x5bf0))
		n := 2 + int(rng.Int64N(10))
		g := graph.New(n)
		edges := int(rng.Int64N(int64(n * 2)))
		for i := 0; i < edges; i++ {
			u := int(rng.Int64N(int64(n)))
			v := int(rng.Int64N(int64(n)))
			if u != v {
				_ = g.AddEdge(u, v)
			}
		}
		score, labels := g.Score()
		if g.ValidLabelling(labels) != nil {
			return false
		}
		if score > float64(n) {
			return false
		}
		// Weak duality vs a greedy matching.
		used := make([]bool, n)
		matching := 0
		for _, e := range g.Edges {
			if !used[e[0]] && !used[e[1]] {
				used[e[0]], used[e[1]] = true, true
				matching++
			}
		}
		return score >= float64(matching)-1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
