package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"
)

// collect is a recovery sink that flattens records for comparison
// while remembering record boundaries.
type collect struct {
	recs [][]Op
}

func (c *collect) apply(ops []Op) error {
	cp := make([]Op, len(ops))
	copy(cp, ops)
	c.recs = append(c.recs, cp)
	return nil
}

func (c *collect) flat() []Op {
	var out []Op
	for _, r := range c.recs {
		out = append(out, r...)
	}
	return out
}

// testOptions keeps group-commit tests fast and deterministic-ish.
func testOptions() Options {
	return Options{GroupWindow: 200 * time.Microsecond}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]Op{
		{{Key: "a", Val: "1"}},
		{{Key: "b", Val: "2", ExpireAt: 42}, {Key: "a", Del: true}},
		{{Key: "\x00bin\xff\r\n", Val: string([]byte{0, 1, 2, 255})}},
		{{Key: "", Val: ""}}, // empty key and value are legal
	}
	for _, ops := range want {
		if err := l.Append(ops).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var c collect
	st, err := Recover(dir, c.apply)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.recs, want) {
		t.Fatalf("recovered %+v, want %+v", c.recs, want)
	}
	if st.Records != len(want) || st.TruncatedBytes != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAppendEmptyAndAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tk := l.Append(nil); tk != nil {
		t.Fatal("empty write set should not be logged")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Op{{Key: "x", Val: "1"}}).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: err = %v, want ErrClosed", err)
	}
	if _, err := l.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("rotate after close: err = %v, want ErrClosed", err)
	}
}

// TestGroupCommitBatches drives concurrent appends and checks the
// group commit actually grouped: far fewer fsyncs than records.
func TestGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{GroupWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	const perW = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("k%02d", w)
				if err := l.Append([]Op{{Key: key, Val: fmt.Sprint(i)}}).Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Records != writers*perW {
		t.Fatalf("records = %d, want %d", st.Records, writers*perW)
	}
	if st.Fsyncs >= st.Records/2 {
		t.Fatalf("group commit did not batch: %d fsyncs for %d records", st.Fsyncs, st.Records)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var c collect
	if _, err := Recover(dir, c.apply); err != nil {
		t.Fatal(err)
	}
	// Per-key order must match append order (each writer owns a key).
	last := map[string]int{}
	for _, op := range c.flat() {
		var i int
		fmt.Sscan(op.Val, &i)
		if prev, ok := last[op.Key]; ok && i != prev+1 {
			t.Fatalf("per-key order broken for %s: %d then %d", op.Key, prev, i)
		}
		last[op.Key] = i
	}
	for k, v := range last {
		if v != perW-1 {
			t.Fatalf("key %s recovered through %d, want %d", k, v, perW-1)
		}
	}
}

func TestRotateStartsNewSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Op{{Key: "a", Val: "1"}}).Wait(); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("rotated to segment %d, want 2", seq)
	}
	if err := l.Append([]Op{{Key: "b", Val: "2"}}).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 2 {
		t.Fatalf("segments %v, err %v", segs, err)
	}
	var c collect
	if _, err := Recover(dir, c.apply); err != nil {
		t.Fatal(err)
	}
	want := []Op{{Key: "a", Val: "1"}, {Key: "b", Val: "2"}}
	if !reflect.DeepEqual(c.flat(), want) {
		t.Fatalf("recovered %+v, want %+v", c.flat(), want)
	}
}

func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// State the snapshot will capture.
	if err := l.Append([]Op{{Key: "a", Val: "1"}, {Key: "b", Val: "2"}}).Wait(); err != nil {
		t.Fatal(err)
	}
	cut := func() ([]Op, error) {
		return []Op{{Key: "a", Val: "1"}, {Key: "b", Val: "2"}}, nil
	}
	if err := l.Snapshot(cut); err != nil {
		t.Fatal(err)
	}
	// Pre-snapshot segments are reaped; the log continues.
	segs, _ := listSegments(dir)
	if len(segs) != 1 || segs[0].seq != 2 {
		t.Fatalf("segments after snapshot: %+v", segs)
	}
	if err := l.Append([]Op{{Key: "b", Del: true}, {Key: "c", Val: "3"}}).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var c collect
	st, err := Recover(dir, c.apply)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotOps != 2 || st.Base != 2 || st.Records != 1 {
		t.Fatalf("stats %+v", st)
	}
	want := []Op{{Key: "a", Val: "1"}, {Key: "b", Val: "2"}, {Key: "b", Del: true}, {Key: "c", Val: "3"}}
	if !reflect.DeepEqual(c.flat(), want) {
		t.Fatalf("recovered %+v, want %+v", c.flat(), want)
	}
}

// TestSnapshotRedoesOnSlippedAppend pins the overlap defense: a write
// accepted after the rotation but captured by the checkpoint cut
// would otherwise be applied twice on recovery (fatal for list
// deltas). Snapshot must notice and redo the rotate+cut, so the
// slipped record's segment is reaped under the final checkpoint and
// recovery sees each op exactly once.
func TestSnapshotRedoesOnSlippedAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Op{{Kind: KindList, Key: "l", Val: "e0"}}).Wait(); err != nil {
		t.Fatal(err)
	}
	calls := 0
	cut := func() ([]Op, error) {
		calls++
		if calls == 1 {
			// A commit slips in after the rotation; the cut's state
			// includes it.
			if err := l.Append([]Op{{Kind: KindList, Key: "l", Val: "e1"}}).Wait(); err != nil {
				t.Fatal(err)
			}
		}
		return []Op{
			{Kind: KindList, Key: "l", Val: "e0"},
			{Kind: KindList, Key: "l", Val: "e1"},
		}, nil
	}
	if err := l.Snapshot(cut); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("cut ran %d times, want 2 (one redo after the slipped append)", calls)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var c collect
	st, err := Recover(dir, c.apply)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 {
		t.Fatalf("recovery replayed %d log records, want 0 (all covered by the checkpoint)", st.Records)
	}
	want := []Op{
		{Kind: KindList, Key: "l", Val: "e0"},
		{Kind: KindList, Key: "l", Val: "e1"},
	}
	if !reflect.DeepEqual(c.flat(), want) {
		t.Fatalf("recovered %+v, want %+v (the push must not double-apply)", c.flat(), want)
	}
}

// TestSnapshotContended: when a write lands between rotation and cut
// on every attempt, Snapshot gives up with ErrSnapshotContended and
// the log remains fully recoverable — nothing was reaped.
func TestSnapshotContended(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	cut := func() ([]Op, error) {
		i++
		if err := l.Append([]Op{{Key: "k", Val: strconv.Itoa(i)}}).Wait(); err != nil {
			t.Fatal(err)
		}
		return []Op{{Key: "k", Val: strconv.Itoa(i)}}, nil
	}
	if err := l.Snapshot(cut); !errors.Is(err, ErrSnapshotContended) {
		t.Fatalf("err = %v, want ErrSnapshotContended", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var c collect
	st, err := Recover(dir, c.apply)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotOps != 0 {
		t.Fatalf("a contended snapshot was published: %+v", st)
	}
	if got := len(c.flat()); got != i {
		t.Fatalf("recovered %d records, want all %d appends", got, i)
	}
}

func TestSnapshotCutErrorLeavesLogUsable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Op{{Key: "a", Val: "1"}}).Wait(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("cut failed")
	if err := l.Snapshot(func() ([]Op, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The rotation happened but nothing was reaped; everything still
	// recovers.
	if err := l.Append([]Op{{Key: "b", Val: "2"}}).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var c collect
	if _, err := Recover(dir, c.apply); err != nil {
		t.Fatal(err)
	}
	want := []Op{{Key: "a", Val: "1"}, {Key: "b", Val: "2"}}
	if !reflect.DeepEqual(c.flat(), want) {
		t.Fatalf("recovered %+v, want %+v", c.flat(), want)
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	for _, tail := range [][]byte{
		{0x7f},                                 // lone garbage byte
		{1, 0, 0, 0},                           // half a header
		{5, 0, 0, 0, 1, 2, 3, 4},               // header, no payload
		make([]byte, 64),                       // preallocated zero region
		{255, 255, 255, 255, 0, 0, 0, 0, 9, 9}, // oversize length
	} {
		t.Run(fmt.Sprintf("% x", tail), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, testOptions())
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Append([]Op{{Key: "a", Val: "1"}}).Wait(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			seg := filepath.Join(dir, segmentName(1))
			f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			var c collect
			st, err := Recover(dir, c.apply)
			if err != nil {
				t.Fatal(err)
			}
			if st.TruncatedBytes != int64(len(tail)) {
				t.Fatalf("truncated %d bytes, want %d", st.TruncatedBytes, len(tail))
			}
			want := []Op{{Key: "a", Val: "1"}}
			if !reflect.DeepEqual(c.flat(), want) {
				t.Fatalf("recovered %+v, want %+v", c.flat(), want)
			}
			// The truncation is physical: a second recovery is clean.
			var c2 collect
			st2, err := Recover(dir, c2.apply)
			if err != nil {
				t.Fatal(err)
			}
			if st2.TruncatedBytes != 0 || !reflect.DeepEqual(c2.flat(), want) {
				t.Fatalf("second recovery: stats %+v ops %+v", st2, c2.flat())
			}
		})
	}
}

func TestRecoverRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Op{{Key: "a", Val: "1"}}).Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Op{{Key: "b", Val: "2"}}).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt segment 1 — not the final segment.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var c collect
	if _, err := Recover(dir, c.apply); err == nil {
		t.Fatal("mid-log corruption must fail recovery, not truncate")
	}
}

func TestOpenAfterRecoverStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Op{{Key: "a", Val: "1"}}).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var c collect
	if _, err := Recover(dir, c.apply); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Stats().Segment; got != 2 {
		t.Fatalf("reopened on segment %d, want 2", got)
	}
	if err := l2.Append([]Op{{Key: "b", Val: "2"}}).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	var c2 collect
	if _, err := Recover(dir, c2.apply); err != nil {
		t.Fatal(err)
	}
	want := []Op{{Key: "a", Val: "1"}, {Key: "b", Val: "2"}}
	if !reflect.DeepEqual(c2.flat(), want) {
		t.Fatalf("recovered %+v, want %+v", c2.flat(), want)
	}
}

func TestRecordTooLarge(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	huge := []Op{{Key: "k", Val: string(make([]byte, MaxRecord+1))}}
	if err := l.Append(huge).Wait(); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
	// The log is not poisoned by an oversize record.
	if err := l.Append([]Op{{Key: "k", Val: "small"}}).Wait(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
}

func TestRecoverMissingDir(t *testing.T) {
	var c collect
	st, err := Recover(filepath.Join(t.TempDir(), "nope"), c.apply)
	if err != nil || len(c.recs) != 0 || st.Base != 1 {
		t.Fatalf("missing dir: stats %+v err %v", st, err)
	}
}

// TestTelemetry: fsync latency and batch-size histograms fill in as
// batches flush, queue depth reads zero at rest, and Err stays nil on
// a healthy log.
func TestTelemetry(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if err := l.Append([]Op{{Key: fmt.Sprintf("k%d", i), Val: "v"}}).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	lat := l.FsyncLatency()
	if lat.Count() != uint64(st.Fsyncs) {
		t.Fatalf("fsync latency count = %d, want %d (one sample per fsync)", lat.Count(), st.Fsyncs)
	}
	if lat.Quantile(1) <= 0 {
		t.Fatalf("fsync p100 = %v, want positive", lat.Quantile(1))
	}
	sizes := l.BatchSizes()
	if sizes.Count() != uint64(st.Batches) {
		t.Fatalf("batch size count = %d, want %d", sizes.Count(), st.Batches)
	}
	if got := int64(sizes.Sum()); got != st.Records {
		t.Fatalf("batch sizes sum to %d records, want %d", got, st.Records)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth at rest = %d, want 0", st.QueueDepth)
	}
	if l.Err() != nil {
		t.Fatalf("healthy log Err() = %v", l.Err())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
