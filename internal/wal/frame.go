package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame format, shared by log segments and the snapshot body:
//
//	u32le payload length | u32le CRC32C(payload) | payload
//
// A record payload is a committed write set:
//
//	uvarint op count, then per op:
//	  1 flag byte:
//	    bit0    tombstone (whole key for strings; one field/member/
//	            element for container kinds)
//	    bit1    has TTL deadline
//	    bit2-3  value kind (00 string, 01 hash, 10 list, 11 zset)
//	    bit4    front (list ops: push/pop at the front, else back)
//	    bit5    touch (whole-key expiry update, no value change)
//	  uvarint key length, key bytes
//	  uvarint field length, field bytes   (hash field / zset member)
//	  uvarint value length, value bytes   (set/push ops only)
//	  uvarint expireAt (unix/store ns)    (when bit1 is set)
//
// Kind 00 with no extra flags is byte-identical to the pre-typed
// encoding, so logs written before container kinds existed replay
// unchanged. The decoder trusts nothing: lengths are bounded before
// allocation, the CRC is checked before decoding, flag combinations
// outside the table below are rejected, and any violation is a bad
// frame — recovery truncates the log at the first one. Torn tails
// (short frames, short payloads, all-zero preallocated regions) all
// land in the bad-frame bucket by construction.

// Kind discriminates the value type an op mutates. The numeric values
// are the wire encoding (flag bits 2-3) and must not be reordered.
type Kind uint8

const (
	KindString Kind = iota
	KindHash
	KindList
	KindZSet
)

// Op is one mutation in a committed write set: an absolute value or
// container element (never a delta), a tombstone, or a whole-key
// expiry touch.
type Op struct {
	// Key is the kv key (arbitrary bytes).
	Key string
	// Val is the value for set ops (string value, hash field value,
	// list element, zset canonical score); ignored for tombstones and
	// touches.
	Val string
	// Field is the hash field name or zset member; empty for string
	// and list kinds.
	Field string
	// Kind is the value type the op mutates.
	Kind Kind
	// Del marks a tombstone: the whole key for KindString, one field
	// (Field) for KindHash/KindZSet, one popped element for KindList.
	Del bool
	// Front marks a list op acting on the front (LPUSH/LPOP); back
	// otherwise.
	Front bool
	// Touch marks a whole-key expiry update: ExpireAt replaces the
	// key's deadline, the value — of any kind — is untouched.
	Touch bool
	// ExpireAt is the absolute store-clock expiry deadline in
	// nanoseconds; zero means no TTL.
	ExpireAt int64
}

const (
	frameHeader = 8 // u32 length + u32 crc
	opDel       = 1 << 0
	opTTL       = 1 << 1
	opKindShift = 2
	opKindMask  = 3 << opKindShift
	opFront     = 1 << 4
	opTouch     = 1 << 5

	// MaxRecord bounds a frame payload. It is far past anything the
	// server can produce (resp bounds a command frame at 8 MiB) while
	// keeping the allocation a hostile or corrupt length prefix can
	// demand on recovery finite.
	MaxRecord = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errBadFrame marks a frame recovery must treat as the end of the
// good prefix: torn tail, garbage, CRC mismatch, oversize length.
var errBadFrame = errors.New("wal: bad frame")

// ErrRecordTooLarge reports a write set whose encoding exceeds
// MaxRecord; the record is not logged.
var ErrRecordTooLarge = errors.New("wal: record exceeds MaxRecord")

// appendRecord appends ops encoded as one record payload to dst.
func appendRecord(dst []byte, ops []Op) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for _, op := range ops {
		flags := byte(op.Kind) << opKindShift
		if op.Del {
			flags |= opDel
		}
		if op.ExpireAt != 0 {
			flags |= opTTL
		}
		if op.Front {
			flags |= opFront
		}
		if op.Touch {
			flags |= opTouch
		}
		dst = append(dst, flags)
		dst = binary.AppendUvarint(dst, uint64(len(op.Key)))
		dst = append(dst, op.Key...)
		if op.Kind == KindHash || op.Kind == KindZSet {
			dst = binary.AppendUvarint(dst, uint64(len(op.Field)))
			dst = append(dst, op.Field...)
		}
		if !op.Del && !op.Touch {
			dst = binary.AppendUvarint(dst, uint64(len(op.Val)))
			dst = append(dst, op.Val...)
		}
		if flags&opTTL != 0 {
			dst = binary.AppendUvarint(dst, uint64(op.ExpireAt))
		}
	}
	return dst
}

// appendFrame appends payload wrapped in a length+CRC frame to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// decodeRecord decodes one record payload. Every length is checked
// against the remaining payload before use, so arbitrary input can
// produce an error but never a panic or an oversized allocation.
func decodeRecord(payload []byte) ([]Op, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad op count", errBadFrame)
	}
	payload = payload[n:]
	// Each op is at least 2 bytes (flag + empty-key length), so a
	// count beyond len(payload)/2 cannot be honest; checking before
	// make() keeps a lying count from demanding a huge slice.
	if count > uint64(len(payload)/2)+1 {
		return nil, fmt.Errorf("%w: op count %d exceeds payload", errBadFrame, count)
	}
	ops := make([]Op, 0, count)
	readBytes := func() (string, error) {
		l, n := binary.Uvarint(payload)
		if n <= 0 || l > uint64(len(payload)-n) {
			return "", fmt.Errorf("%w: bad length", errBadFrame)
		}
		s := string(payload[n : n+int(l)])
		payload = payload[n+int(l):]
		return s, nil
	}
	for i := uint64(0); i < count; i++ {
		if len(payload) == 0 {
			return nil, fmt.Errorf("%w: truncated op", errBadFrame)
		}
		flags := payload[0]
		if flags&^(opDel|opTTL|opKindMask|opFront|opTouch) != 0 {
			return nil, fmt.Errorf("%w: unknown op flags %#x", errBadFrame, flags)
		}
		payload = payload[1:]
		var op Op
		op.Del = flags&opDel != 0
		op.Kind = Kind(flags&opKindMask) >> opKindShift
		op.Front = flags&opFront != 0
		op.Touch = flags&opTouch != 0
		// Reject flag combinations the encoder cannot produce: touch is
		// a bare expiry update (kind bits clear, no tombstone, no front,
		// deadline required); front is meaningful only on list ops; a
		// TTL deadline rides only on string sets and touches — container
		// mutations never carry one (TTL is per key, set via touch).
		if op.Touch && (op.Del || op.Front || op.Kind != KindString || flags&opTTL == 0) {
			return nil, fmt.Errorf("%w: bad touch op flags %#x", errBadFrame, flags)
		}
		if op.Front && op.Kind != KindList {
			return nil, fmt.Errorf("%w: front flag on kind %d", errBadFrame, op.Kind)
		}
		if flags&opTTL != 0 && op.Kind != KindString {
			return nil, fmt.Errorf("%w: TTL deadline on kind %d", errBadFrame, op.Kind)
		}
		var err error
		if op.Key, err = readBytes(); err != nil {
			return nil, err
		}
		if op.Kind == KindHash || op.Kind == KindZSet {
			if op.Field, err = readBytes(); err != nil {
				return nil, err
			}
		}
		if !op.Del && !op.Touch {
			if op.Val, err = readBytes(); err != nil {
				return nil, err
			}
		}
		if flags&opTTL != 0 {
			e, n := binary.Uvarint(payload)
			if n <= 0 {
				return nil, fmt.Errorf("%w: bad expiry", errBadFrame)
			}
			payload = payload[n:]
			op.ExpireAt = int64(e)
			if op.ExpireAt == 0 {
				return nil, fmt.Errorf("%w: TTL flag with zero deadline", errBadFrame)
			}
		}
		ops = append(ops, op)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errBadFrame, len(payload))
	}
	return ops, nil
}

// frameReader iterates frames of a segment or snapshot body,
// tracking the byte offset of the good prefix consumed so far. The
// good mark advances only when the caller says so (markGood), so a
// well-framed but undecodable record still truncates before itself.
type frameReader struct {
	r    io.Reader
	head [frameHeader]byte
	buf  []byte
	// good is the offset just past the last frame the caller accepted.
	good int64
}

// next returns the next frame's payload. io.EOF marks a clean end
// exactly at a frame boundary; any other error (wrapped errBadFrame,
// or an unwrapped read error) means the log is good only up to
// fr.good. The returned slice is valid until the next call.
func (fr *frameReader) next() ([]byte, error) {
	if _, err := io.ReadFull(fr.r, fr.head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: torn header: %v", errBadFrame, err)
	}
	length := binary.LittleEndian.Uint32(fr.head[0:4])
	want := binary.LittleEndian.Uint32(fr.head[4:8])
	if length == 0 || length > MaxRecord {
		return nil, fmt.Errorf("%w: length %d", errBadFrame, length)
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	payload := fr.buf[:length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, fmt.Errorf("%w: torn payload: %v", errBadFrame, err)
	}
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("%w: crc mismatch", errBadFrame)
	}
	return payload, nil
}

// markGood accepts the frame whose payload next just returned.
func (fr *frameReader) markGood(payloadLen int) {
	fr.good += frameHeader + int64(payloadLen)
}

// DecodeAll decodes a stream of record frames from data, returning
// the decoded write sets and the length in bytes of the good prefix.
// It never panics on arbitrary input, and err is nil only when data
// ends cleanly at a frame boundary — the decoder contract the fuzz
// target and the recovery tests pin.
func DecodeAll(data []byte) (recs [][]Op, good int64, err error) {
	fr := &frameReader{r: bytes.NewReader(data)}
	for {
		payload, err := fr.next()
		if err == io.EOF {
			return recs, fr.good, nil
		}
		if err != nil {
			return recs, fr.good, err
		}
		ops, err := decodeRecord(payload)
		if err != nil {
			return recs, fr.good, err
		}
		fr.markGood(len(payload))
		recs = append(recs, ops)
	}
}
