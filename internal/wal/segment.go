package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment files are wal-%08d.log; the snapshot is snapshot.kvs,
// written side-by-side as snapshot.kvs.tmp and renamed into place.

const (
	segmentPrefix = "wal-"
	segmentSuffix = ".log"
	snapshotName  = "snapshot.kvs"
	snapshotTemp  = snapshotName + ".tmp"
)

func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix)
}

type segmentFile struct {
	seq  uint64
	path string
}

// listSegments returns the directory's segment files in ascending
// sequence order. Files that merely look like segments (unparsable
// numbers) are ignored rather than guessed at.
func listSegments(dir string) ([]segmentFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var segs []segmentFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		seq, err := strconv.ParseUint(num, 10, 64)
		if err != nil || seq == 0 {
			continue
		}
		segs = append(segs, segmentFile{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// reapSegments removes every segment with seq <= upTo. Failures are
// returned but non-fatal to the caller: a leftover segment below the
// snapshot's base is skipped by recovery anyway.
func reapSegments(dir string, upTo uint64) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, sf := range segs {
		if sf.seq > upTo {
			break
		}
		if err := os.Remove(sf.path); err != nil {
			return fmt.Errorf("wal: reap segment %d: %w", sf.seq, err)
		}
	}
	return syncDir(dir)
}
