// Package wal is the durability subsystem: a group-committed,
// append-only log of committed kv write sets, plus point-in-time
// snapshots that truncate it.
//
// The write path is split in two so the STM's commit critical section
// stays short. Inside the commit window — while the committing
// writer still holds its write set's commit stripes — the store
// enqueues the write set with Append or AppendAsync, which only
// appends to an in-memory queue under a mutex. Because two writers
// that touched the same key serialize on a shared stripe, the queue
// order equals the per-key commit order, and the logger preserves
// queue order on disk; a crash therefore durably keeps a prefix of
// the queue, which is per-key-prefix-closed — the property the
// conservation invariant needs (see DESIGN.md §Durability). The
// durability wait (Ticket.Wait) happens after the stripes are
// released.
//
// A single logger goroutine drains the queue: it lingers briefly
// (Options.GroupWindow) so concurrent commits coalesce, encodes the
// batch into CRC32C-framed records (frame.go), writes once and
// fsyncs once per batch — so fsyncs per committed transaction shrink
// with the batch depth — then acks every ticket in the batch.
// Append's ack means "on disk"; AppendAsync forgoes the ack (and the
// wait) for callers measuring logging overhead rather than fsync
// latency.
//
// Snapshots (Snapshot) rotate the log onto a fresh segment, cut a
// consistent checkpoint through a caller-supplied function, write it
// to a side file, atomically rename it into place, and reap the
// segments the checkpoint covers. Recovery (Recover) loads the
// snapshot, replays the surviving segments in order, and truncates
// at the first bad frame of the final segment.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Options tunes a Log. The zero value gets sensible defaults.
type Options struct {
	// GroupWindow is how long the logger lingers after waking so
	// concurrent commits coalesce into one fsync. Zero defaults to
	// 500µs; negative disables lingering.
	GroupWindow time.Duration
	// SkipLinger is the queue depth at which the logger flushes
	// without lingering — the batch is already worth an fsync.
	// Zero defaults to 64.
	SkipLinger int
}

func (o *Options) withDefaults() {
	if o.GroupWindow == 0 {
		o.GroupWindow = 500 * time.Microsecond
	}
	if o.GroupWindow < 0 {
		o.GroupWindow = 0
	}
	if o.SkipLinger <= 0 {
		o.SkipLinger = 64
	}
}

// Ticket is the handle for one enqueued write set.
type Ticket struct {
	ops    []Op
	done   chan struct{}
	err    error
	rotate chan uint64 // non-nil marks a rotation control ticket
	mark   int64       // rotation tickets: append count at enqueue
}

// Wait blocks until the record is durably on disk (written and
// fsynced) and returns the sticky log error, if any.
func (t *Ticket) Wait() error {
	<-t.done
	return t.err
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// Records is the number of write sets encoded and written.
	Records int64
	// Batches is the number of group-commit flushes.
	Batches int64
	// Fsyncs counts fsync syscalls on segment files. Group commit
	// exists to keep Fsyncs well below Records under load.
	Fsyncs int64
	// Dropped counts records refused for exceeding MaxRecord.
	Dropped int64
	// Segment is the sequence number of the segment being written.
	Segment uint64
	// QueueDepth is the number of tickets enqueued but not yet taken
	// by the logger — a sustained nonzero depth means the disk cannot
	// keep up with the commit rate.
	QueueDepth int
}

// ErrClosed is returned for appends after Close.
var ErrClosed = errors.New("wal: closed")

// ErrSnapshotInProgress is returned by Snapshot when another snapshot
// is still running; snapshots are single-flight.
var ErrSnapshotInProgress = errors.New("wal: snapshot in progress")

// Log is an append-only log in a directory: numbered segment files
// plus at most one snapshot file. One process owns a directory at a
// time; nothing enforces that, as with most single-node stores.
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	pending []*Ticket
	closed  bool
	err     error // sticky: first write/fsync failure poisons the log

	kick chan struct{}
	wg   sync.WaitGroup

	// Logger-goroutine-private state.
	f        *os.File
	seq      uint64
	encBuf   []byte
	frameBuf []byte

	records atomic.Int64
	batches atomic.Int64
	fsyncs  atomic.Int64
	dropped atomic.Int64
	curSeq  atomic.Uint64

	// appends counts record tickets ever accepted into the queue (not
	// rotations). Snapshot compares it against the count stamped on
	// its rotation ticket to detect writes that slipped between the
	// rotation and the checkpoint cut — see Snapshot.
	appends atomic.Int64

	// fsyncLat distributes the wall time of segment fsyncs and
	// batchOps the records-per-flush batch sizes — together they show
	// whether group commit is amortizing the fsync cost it exists to
	// amortize. Written by the logger goroutine, snapshotted by anyone.
	fsyncLat obs.Histogram
	batchOps obs.Histogram

	snapshotting atomic.Bool
}

// Open creates (or opens) the log directory and starts the logger on
// a fresh segment numbered past every existing one — recovery never
// appends to a possibly-torn tail segment.
func Open(dir string, opt Options) (*Log, error) {
	opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1].seq + 1
	}
	l := &Log{dir: dir, opt: opt, kick: make(chan struct{}, 1)}
	f, err := l.createSegment(next)
	if err != nil {
		return nil, err
	}
	l.f, l.seq = f, next
	l.curSeq.Store(next)
	l.wg.Add(1)
	go l.run()
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	depth := len(l.pending)
	l.mu.Unlock()
	return Stats{
		Records:    l.records.Load(),
		Batches:    l.batches.Load(),
		Fsyncs:     l.fsyncs.Load(),
		Dropped:    l.dropped.Load(),
		Segment:    l.curSeq.Load(),
		QueueDepth: depth,
	}
}

// Err returns the sticky log error: the first write or fsync failure,
// which poisons every later append. Nil while the log is healthy.
func (l *Log) Err() error { return l.stickyErr() }

// FsyncLatency returns a snapshot of the fsync wall-time distribution.
func (l *Log) FsyncLatency() *metrics.Histogram { return l.fsyncLat.Snapshot() }

// BatchSizes returns a snapshot of the records-per-flush distribution
// (dimensionless counts, not durations).
func (l *Log) BatchSizes() *metrics.Histogram { return l.batchOps.Snapshot() }

// Append enqueues one committed write set for durable logging and
// returns a ticket to wait on. It never blocks on I/O — it is safe
// to call from inside the STM's commit window — and the caller must
// not mutate ops until the ticket is done. An empty write set
// returns nil.
func (l *Log) Append(ops []Op) *Ticket {
	if len(ops) == 0 {
		return nil
	}
	return l.enqueue(&Ticket{ops: ops, done: make(chan struct{})})
}

// AppendAsync enqueues one committed write set without an ack: the
// record reaches disk with the next batch, but the caller learns
// nothing of when (or, after a log error, whether). The ops slice is
// handed over and must not be reused.
func (l *Log) AppendAsync(ops []Op) {
	if len(ops) == 0 {
		return
	}
	l.enqueue(&Ticket{ops: ops, done: make(chan struct{})})
}

func (l *Log) enqueue(t *Ticket) *Ticket {
	l.mu.Lock()
	if l.closed || l.err != nil {
		err := l.err
		l.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		t.fail(err)
		return t
	}
	if t.rotate == nil {
		l.appends.Add(1)
	} else {
		t.mark = l.appends.Load()
	}
	l.pending = append(l.pending, t)
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return t
}

// run is the logger goroutine: drain, linger, encode, write, fsync,
// ack — one pass per batch.
func (l *Log) run() {
	defer l.wg.Done()
	for {
		<-l.kick
		l.mu.Lock()
		n := len(l.pending)
		closed := l.closed
		l.mu.Unlock()
		if n == 0 && closed {
			return
		}
		if n == 0 {
			continue
		}
		if l.opt.GroupWindow > 0 && n < l.opt.SkipLinger && !closed {
			time.Sleep(l.opt.GroupWindow)
		}
		l.mu.Lock()
		batch := l.pending
		l.pending = nil
		l.mu.Unlock()
		l.flush(batch)
		// A concurrent enqueue between the drain and a consumed kick
		// would go unnoticed; re-kick ourselves if work remains.
		l.mu.Lock()
		again := len(l.pending) > 0 || l.closed
		l.mu.Unlock()
		if again {
			select {
			case l.kick <- struct{}{}:
			default:
			}
		}
	}
}

// flush writes one batch: records are encoded in queue order, written
// with one Write and one fsync, then acked. Rotation tickets split
// the batch — everything before the rotation is flushed to the old
// segment first, so rotation is ordered like any other record.
func (l *Log) flush(batch []*Ticket) {
	buf := l.encBuf[:0]
	var acks []*Ticket
	settle := func() {
		if len(buf) > 0 {
			l.batchOps.ObserveN(int64(len(acks)))
			err := l.writeAndSync(buf)
			if err != nil {
				l.poison(err)
			}
			for _, t := range acks {
				t.err = err
				close(t.done)
			}
			buf = buf[:0]
			acks = acks[:0]
		}
	}
	for _, t := range batch {
		if t.rotate != nil {
			settle()
			seq, err := l.rotateSegment()
			if err != nil {
				l.poison(err)
			}
			t.err = err
			t.rotate <- seq
			close(t.done)
			continue
		}
		payload := appendRecord(l.frameBuf[:0], t.ops)
		l.frameBuf = payload[:0]
		if len(payload) > MaxRecord {
			l.dropped.Add(1)
			t.err = ErrRecordTooLarge
			close(t.done)
			continue
		}
		buf = appendFrame(buf, payload)
		l.records.Add(1)
		acks = append(acks, t)
	}
	settle()
	l.encBuf = buf[:0] // retain growth
}

// writeAndSync appends buf to the current segment and fsyncs it.
func (l *Log) writeAndSync(buf []byte) error {
	if err := l.stickyErr(); err != nil {
		return err
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: write segment %d: %w", l.seq, err)
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync segment %d: %w", l.seq, err)
	}
	l.fsyncLat.ObserveSince(t0)
	l.fsyncs.Add(1)
	l.batches.Add(1)
	return nil
}

// poison records the first fatal error; every later append is refused
// with it. A log that cannot persist must not pretend otherwise.
func (l *Log) poison(err error) {
	if err == nil {
		return
	}
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	// Fail whatever queued behind the failure rather than letting
	// waiters hang on a logger that can no longer make progress.
	pending := l.pending
	l.pending = nil
	l.mu.Unlock()
	for _, t := range pending {
		t.fail(err)
	}
}

// fail acks a ticket with an error, keeping a refused rotation
// ticket's waiter from hanging on its sequence channel.
func (t *Ticket) fail(err error) {
	t.err = err
	if t.rotate != nil {
		t.rotate <- 0
	}
	close(t.done)
}

func (l *Log) stickyErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Rotate closes the current segment and starts the next one,
// ordered after every record enqueued before it. It returns the
// sequence number of the new segment.
func (l *Log) Rotate() (uint64, error) {
	seq, _, err := l.rotateMarked()
	return seq, err
}

// rotateMarked is Rotate plus the append count stamped at the moment
// the rotation entered the queue: every record ticket accepted before
// the rotation is ≤ mark and lands in a segment below the returned
// one; any append observed past mark may share the new segment.
func (l *Log) rotateMarked() (uint64, int64, error) {
	t := &Ticket{done: make(chan struct{}), rotate: make(chan uint64, 1)}
	l.enqueue(t)
	seq := <-t.rotate
	<-t.done
	return seq, t.mark, t.err
}

// rotateSegment runs on the logger goroutine.
func (l *Log) rotateSegment() (uint64, error) {
	if err := l.f.Sync(); err != nil {
		return l.seq, fmt.Errorf("wal: fsync segment %d: %w", l.seq, err)
	}
	if err := l.f.Close(); err != nil {
		return l.seq, fmt.Errorf("wal: close segment %d: %w", l.seq, err)
	}
	f, err := l.createSegment(l.seq + 1)
	if err != nil {
		return l.seq, err
	}
	l.f = f
	l.seq++
	l.curSeq.Store(l.seq)
	return l.seq, nil
}

// createSegment creates the numbered segment file and makes its
// directory entry durable.
func (l *Log) createSegment(seq uint64) (*os.File, error) {
	name := filepath.Join(l.dir, segmentName(seq))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Close flushes everything enqueued, fsyncs, and stops the logger.
// Appends racing Close may be refused with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.wg.Wait()
		return l.err
	}
	l.closed = true
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	l.wg.Wait()
	err := l.f.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil && err != nil {
		l.err = fmt.Errorf("wal: close segment %d: %w", l.seq, err)
	}
	return l.err
}

// syncDir fsyncs a directory so renames and creates in it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	return nil
}
