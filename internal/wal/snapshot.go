package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// A snapshot file is a header frame followed by record frames of the
// checkpointed live entries, in the shared frame format. The header
// payload is a magic string plus the base segment sequence: replay
// after loading the snapshot starts at that segment (everything
// below it is covered by the checkpoint). The tmp file is fsynced
// before the rename and the directory after, so a visible
// snapshot.kvs is always complete — a bad frame inside one is real
// corruption, not a torn write, and recovery refuses to guess.

const snapshotMagic = "stmkv-snapshot-v1"

// snapshotBatch is how many ops go into one record frame of the
// snapshot body; it bounds encoder buffer growth, nothing more.
const snapshotBatch = 1024

// maxSnapshotRedos bounds how often Snapshot re-rotates and re-cuts
// when writes keep slipping between the rotation and the checkpoint.
// The cut itself is a whole-store read that only succeeds in a lull,
// so a lull long enough for the cut is normally long enough to pass
// the slip check on the same attempt.
const maxSnapshotRedos = 8

// ErrSnapshotContended is returned by Snapshot when every attempt had
// a write land between the rotation and the checkpoint cut; the log
// is unchanged (beyond rotations) and the caller may simply retry
// later, as a scheduled BGSAVE does.
var ErrSnapshotContended = fmt.Errorf("wal: snapshot: writes kept arriving between rotation and cut")

// Snapshot cuts a checkpoint and truncates the log: rotate onto a
// fresh segment, call cut for a consistent dump of the live state,
// write it side-by-side, atomically rename it into place, then reap
// every segment the checkpoint covers. Snapshots are single-flight
// (ErrSnapshotInProgress) and order with concurrent appends via the
// rotation: the checkpoint plus segments >= its base reproduce
// exactly the logged history.
//
// cut runs outside the logger goroutine and may take as long as it
// needs; appends continue into the new segment meanwhile. A write
// that commits after the rotation but before the cut's serialization
// point would be both in the checkpoint and in a surviving segment —
// harmless for absolute-valued records, but a replayed list push or
// pop is a delta and would corrupt the restored list. Snapshot
// therefore detects any append accepted after the rotation (the
// count stamped on the rotation ticket) once the cut returns, and
// redoes the rotate+cut rather than publish an overlapping
// checkpoint. Appends racing the check only ever cause a spurious
// redo, never an overlap: a record enqueued after the cut's
// serialization point is absent from the checkpoint either way.
func (l *Log) Snapshot(cut func() ([]Op, error)) error {
	if !l.snapshotting.CompareAndSwap(false, true) {
		return ErrSnapshotInProgress
	}
	defer l.snapshotting.Store(false)
	for redo := 0; ; redo++ {
		base, mark, err := l.rotateMarked()
		if err != nil {
			return err
		}
		ops, err := cut()
		if err != nil {
			return fmt.Errorf("wal: snapshot cut: %w", err)
		}
		if l.appends.Load() != mark {
			if redo == maxSnapshotRedos {
				return ErrSnapshotContended
			}
			continue
		}
		if err := writeSnapshot(l.dir, base, ops); err != nil {
			return err
		}
		// The checkpoint covers everything below the rotated-to
		// segment. Reaping is cleanup, not correctness: a crash before
		// it leaves segments recovery skips by base comparison.
		return reapSegments(l.dir, base-1)
	}
}

// writeSnapshot writes a complete snapshot file atomically.
func writeSnapshot(dir string, base uint64, ops []Op) error {
	tmp := filepath.Join(dir, snapshotTemp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot tmp: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	w := bufio.NewWriterSize(f, 1<<20)

	header := append([]byte(snapshotMagic), 0)
	header = binary.AppendUvarint(header, base)
	var buf []byte
	if _, err := w.Write(appendFrame(buf[:0], header)); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	var payload []byte
	for len(ops) > 0 {
		n := min(len(ops), snapshotBatch)
		payload = appendRecord(payload[:0], ops[:n])
		if len(payload) > MaxRecord {
			// Absurdly large single batch: fall back to one op per
			// frame; a single op past MaxRecord could never have been
			// logged in the first place.
			n = 1
			payload = appendRecord(payload[:0], ops[:1])
		}
		if _, err := w.Write(appendFrame(buf[:0], payload)); err != nil {
			f.Close()
			return fmt.Errorf("wal: snapshot write: %w", err)
		}
		ops = ops[n:]
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	return syncDir(dir)
}

// loadSnapshot streams the snapshot's op batches into apply and
// returns the base segment sequence. A missing snapshot returns
// (1, 0, nil): replay everything from the first segment.
func loadSnapshot(dir string, apply func([]Op) error) (base uint64, ops int, err error) {
	f, err := os.Open(filepath.Join(dir, snapshotName))
	if err != nil {
		if os.IsNotExist(err) {
			return 1, 0, nil
		}
		return 0, 0, fmt.Errorf("wal: open snapshot: %w", err)
	}
	defer f.Close()
	fr := &frameReader{r: bufio.NewReaderSize(f, 1<<20)}
	header, err := fr.next()
	if err != nil {
		return 0, 0, fmt.Errorf("wal: snapshot header: %w", err)
	}
	magic := append([]byte(snapshotMagic), 0)
	if len(header) < len(magic) || string(header[:len(magic)]) != string(magic) {
		return 0, 0, fmt.Errorf("wal: snapshot: bad magic")
	}
	base, n := binary.Uvarint(header[len(magic):])
	if n <= 0 || base == 0 {
		return 0, 0, fmt.Errorf("wal: snapshot: bad base segment")
	}
	for {
		payload, err := fr.next()
		if err == io.EOF {
			return base, ops, nil
		}
		if err != nil {
			return 0, 0, fmt.Errorf("wal: snapshot body: %w", err)
		}
		batch, err := decodeRecord(payload)
		if err != nil {
			return 0, 0, fmt.Errorf("wal: snapshot body: %w", err)
		}
		if err := apply(batch); err != nil {
			return 0, 0, err
		}
		ops += len(batch)
	}
}
