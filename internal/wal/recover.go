package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
)

// RecoverStats describes what a recovery found and did.
type RecoverStats struct {
	// SnapshotOps is the number of ops loaded from the snapshot.
	SnapshotOps int
	// Base is the first segment the snapshot does not cover.
	Base uint64
	// Segments is how many segment files were replayed (even
	// partially).
	Segments int
	// Records and Ops count the replayed write sets and their ops.
	Records int
	Ops     int
	// TruncatedBytes is how much of the final segment was discarded
	// at the first bad frame (a torn tail from the crash); zero when
	// the log ended cleanly.
	TruncatedBytes int64
}

// Recover rebuilds state from a log directory: load the snapshot (if
// any), then replay every segment the snapshot does not cover, in
// sequence order, calling apply once per record — each call is one
// committed write set, in the original per-key commit order. A bad
// frame in the final segment is the expected torn tail of a crash:
// replay stops there and the tail is physically truncated, so the
// next recovery sees a clean log. A bad frame anywhere else is real
// corruption and fails recovery rather than silently dropping
// history that later segments build on.
//
// A missing or empty directory recovers to the empty state. Recover
// must run before Open — it may truncate the tail segment, and Open
// starts a fresh segment past every existing one.
func Recover(dir string, apply func([]Op) error) (RecoverStats, error) {
	var st RecoverStats
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		st.Base = 1
		return st, nil
	}
	base, snapOps, err := loadSnapshot(dir, apply)
	if err != nil {
		return st, err
	}
	st.Base, st.SnapshotOps = base, snapOps
	segs, err := listSegments(dir)
	if err != nil {
		return st, err
	}
	for i, sf := range segs {
		if sf.seq < base {
			// Covered by the snapshot; a leftover from a crash between
			// the snapshot rename and the reap.
			continue
		}
		last := i == len(segs)-1
		truncAt, err := replaySegment(sf.path, apply, &st)
		if err == nil {
			continue
		}
		if !errors.Is(err, errBadFrame) {
			return st, fmt.Errorf("wal: replay segment %d: %w", sf.seq, err)
		}
		if !last {
			// Only the newest segment can have a torn tail — writes
			// only ever went to the newest segment.
			return st, fmt.Errorf("wal: segment %d corrupt mid-log: %w", sf.seq, err)
		}
		info, statErr := os.Stat(sf.path)
		if statErr != nil {
			return st, fmt.Errorf("wal: replay segment %d: %w", sf.seq, statErr)
		}
		st.TruncatedBytes = info.Size() - truncAt
		if terr := os.Truncate(sf.path, truncAt); terr != nil {
			return st, fmt.Errorf("wal: truncate segment %d: %w", sf.seq, terr)
		}
	}
	return st, nil
}

// replaySegment applies every intact record of one segment, counting
// into st. On a bad frame it returns the good-prefix length and the
// frame error.
func replaySegment(path string, apply func([]Op) error, st *RecoverStats) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st.Segments++
	fr := &frameReader{r: bufio.NewReaderSize(f, 1<<20)}
	for {
		payload, err := fr.next()
		if err == io.EOF {
			return fr.good, nil
		}
		if err != nil {
			return fr.good, err
		}
		ops, err := decodeRecord(payload)
		if err != nil {
			return fr.good, err
		}
		if err := apply(ops); err != nil {
			return fr.good, fmt.Errorf("apply: %w", err)
		}
		fr.markGood(len(payload))
		st.Records++
		st.Ops += len(ops)
	}
}
