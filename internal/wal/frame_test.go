package wal

import (
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
)

func encodeFrames(recs [][]Op) []byte {
	var out, payload []byte
	for _, ops := range recs {
		payload = appendRecord(payload[:0], ops)
		out = appendFrame(out, payload)
	}
	return out
}

func TestDecodeAllRoundTrip(t *testing.T) {
	recs := [][]Op{
		{{Key: "a", Val: "1"}},
		{{Key: "b", Del: true}, {Key: "c", Val: "x", ExpireAt: 7}},
		{{Key: string([]byte{0, 255, '\r', '\n'}), Val: ""}},
	}
	data := encodeFrames(recs)
	got, good, err := DecodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if good != int64(len(data)) {
		t.Fatalf("good prefix %d, want %d", good, len(data))
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("decoded %+v, want %+v", got, recs)
	}
}

// TestDecodeTruncationTable pins the recover-to-last-good-prefix
// contract for every class of damage: the decoder returns exactly
// the intact records, reports the boundary, and never panics.
func TestDecodeTruncationTable(t *testing.T) {
	good := [][]Op{{{Key: "k1", Val: "v1"}}, {{Key: "k2", Val: "v2", ExpireAt: 9}}}
	base := encodeFrames(good)

	corruptCRC := append([]byte{}, base...)
	corruptCRC = append(corruptCRC, encodeFrames([][]Op{{{Key: "bad", Val: "bad"}}})...)
	corruptCRC[len(corruptCRC)-1] ^= 0xff // flip a payload byte after base

	oversize := append([]byte{}, base...)
	oversize = binary.LittleEndian.AppendUint32(oversize, MaxRecord+1)
	oversize = binary.LittleEndian.AppendUint32(oversize, 0)

	zeroLen := append([]byte{}, base...)
	zeroLen = append(zeroLen, make([]byte, 16)...) // preallocated zeros

	tornHeader := append([]byte{}, base...)
	tornHeader = append(tornHeader, 9, 0, 0)

	tornPayload := append([]byte{}, base...)
	tornPayload = binary.LittleEndian.AppendUint32(tornPayload, 100)
	tornPayload = binary.LittleEndian.AppendUint32(tornPayload, 12345)
	tornPayload = append(tornPayload, 1, 2, 3)

	// A frame whose CRC is fine but whose record body lies: op count
	// says 2, body holds 1 op.
	lyingBody := appendRecord(nil, []Op{{Key: "x", Val: "y"}})
	lyingBody[0] = 2 // count was 1
	badRecord := append([]byte{}, base...)
	badRecord = binary.LittleEndian.AppendUint32(badRecord, uint32(len(lyingBody)))
	badRecord = binary.LittleEndian.AppendUint32(badRecord, crc32.Checksum(lyingBody, castagnoli))
	badRecord = append(badRecord, lyingBody...)

	for name, data := range map[string][]byte{
		"crc-mismatch": corruptCRC,
		"oversize":     oversize,
		"zero-length":  zeroLen,
		"torn-header":  tornHeader,
		"torn-payload": tornPayload,
		"lying-record": badRecord,
	} {
		t.Run(name, func(t *testing.T) {
			recs, goodLen, err := DecodeAll(data)
			if err == nil {
				t.Fatal("damage after the good prefix must surface as an error")
			}
			if goodLen != int64(len(base)) {
				t.Fatalf("good prefix %d, want %d", goodLen, len(base))
			}
			if !reflect.DeepEqual(recs, good) {
				t.Fatalf("recovered %+v, want %+v", recs, good)
			}
		})
	}
}

func TestDecodeEmptyAndGarbage(t *testing.T) {
	if recs, good, err := DecodeAll(nil); err != nil || good != 0 || len(recs) != 0 {
		t.Fatalf("empty input: %v %d %v", recs, good, err)
	}
	if _, good, err := DecodeAll([]byte("not a log at all, just text")); err == nil || good != 0 {
		t.Fatalf("garbage input: good=%d err=%v", good, err)
	}
}

// FuzzWALDecode pins the decoder's contract on arbitrary input: never
// panic, never claim a good prefix longer than the input, the good
// prefix must re-decode to the same records, and whatever decodes
// must survive an encode/decode round trip. (Byte-exact re-encoding
// is not required: Uvarint accepts non-minimal varints.)
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeFrames([][]Op{{{Key: "a", Val: "1"}}}))
	f.Add(encodeFrames([][]Op{
		{{Key: "k", Val: "v", ExpireAt: 123456789}},
		{{Key: "gone", Del: true}, {Key: "", Val: ""}},
	}))
	f.Add(encodeFrames([][]Op{{{Key: string([]byte{0, 255}), Val: "\r\n"}}}))
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0})
	f.Add(make([]byte, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, err := DecodeAll(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good prefix %d out of range [0,%d]", good, len(data))
		}
		if err != nil {
			// The good prefix must itself decode cleanly.
			again, goodAgain, err2 := DecodeAll(data[:good])
			if err2 != nil || goodAgain != good {
				t.Fatalf("good prefix does not re-decode: %v (len %d vs %d)", err2, goodAgain, good)
			}
			if !reflect.DeepEqual(again, recs) {
				t.Fatalf("good-prefix decode disagrees")
			}
			return
		}
		again, _, err2 := DecodeAll(encodeFrames(recs))
		if err2 != nil {
			t.Fatalf("re-encoded records do not decode: %v", err2)
		}
		if !reflect.DeepEqual(again, recs) {
			t.Fatalf("round trip mismatch: %+v vs %+v", again, recs)
		}
	})
}
