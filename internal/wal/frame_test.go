package wal

import (
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
)

func encodeFrames(recs [][]Op) []byte {
	var out, payload []byte
	for _, ops := range recs {
		payload = appendRecord(payload[:0], ops)
		out = appendFrame(out, payload)
	}
	return out
}

func TestDecodeAllRoundTrip(t *testing.T) {
	recs := [][]Op{
		{{Key: "a", Val: "1"}},
		{{Key: "b", Del: true}, {Key: "c", Val: "x", ExpireAt: 7}},
		{{Key: string([]byte{0, 255, '\r', '\n'}), Val: ""}},
	}
	data := encodeFrames(recs)
	got, good, err := DecodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if good != int64(len(data)) {
		t.Fatalf("good prefix %d, want %d", good, len(data))
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("decoded %+v, want %+v", got, recs)
	}
}

// TestDecodeTruncationTable pins the recover-to-last-good-prefix
// contract for every class of damage: the decoder returns exactly
// the intact records, reports the boundary, and never panics.
func TestDecodeTruncationTable(t *testing.T) {
	good := [][]Op{{{Key: "k1", Val: "v1"}}, {{Key: "k2", Val: "v2", ExpireAt: 9}}}
	base := encodeFrames(good)

	corruptCRC := append([]byte{}, base...)
	corruptCRC = append(corruptCRC, encodeFrames([][]Op{{{Key: "bad", Val: "bad"}}})...)
	corruptCRC[len(corruptCRC)-1] ^= 0xff // flip a payload byte after base

	oversize := append([]byte{}, base...)
	oversize = binary.LittleEndian.AppendUint32(oversize, MaxRecord+1)
	oversize = binary.LittleEndian.AppendUint32(oversize, 0)

	zeroLen := append([]byte{}, base...)
	zeroLen = append(zeroLen, make([]byte, 16)...) // preallocated zeros

	tornHeader := append([]byte{}, base...)
	tornHeader = append(tornHeader, 9, 0, 0)

	tornPayload := append([]byte{}, base...)
	tornPayload = binary.LittleEndian.AppendUint32(tornPayload, 100)
	tornPayload = binary.LittleEndian.AppendUint32(tornPayload, 12345)
	tornPayload = append(tornPayload, 1, 2, 3)

	// A frame whose CRC is fine but whose record body lies: op count
	// says 2, body holds 1 op.
	lyingBody := appendRecord(nil, []Op{{Key: "x", Val: "y"}})
	lyingBody[0] = 2 // count was 1
	badRecord := append([]byte{}, base...)
	badRecord = binary.LittleEndian.AppendUint32(badRecord, uint32(len(lyingBody)))
	badRecord = binary.LittleEndian.AppendUint32(badRecord, crc32.Checksum(lyingBody, castagnoli))
	badRecord = append(badRecord, lyingBody...)

	for name, data := range map[string][]byte{
		"crc-mismatch": corruptCRC,
		"oversize":     oversize,
		"zero-length":  zeroLen,
		"torn-header":  tornHeader,
		"torn-payload": tornPayload,
		"lying-record": badRecord,
	} {
		t.Run(name, func(t *testing.T) {
			recs, goodLen, err := DecodeAll(data)
			if err == nil {
				t.Fatal("damage after the good prefix must surface as an error")
			}
			if goodLen != int64(len(base)) {
				t.Fatalf("good prefix %d, want %d", goodLen, len(base))
			}
			if !reflect.DeepEqual(recs, good) {
				t.Fatalf("recovered %+v, want %+v", recs, good)
			}
		})
	}
}

// TestDecodeTypedRoundTrip covers every container-kind op shape the
// store can log: hash set/del, list push/pop at both ends, zset
// set/del, whole-key touches, mixed with pre-typed string ops in one
// record.
func TestDecodeTypedRoundTrip(t *testing.T) {
	recs := [][]Op{
		{
			{Kind: KindHash, Key: "h", Field: "f", Val: "v"},
			{Kind: KindHash, Key: "h", Field: "gone", Del: true},
			{Kind: KindHash, Key: "h", Field: "", Val: ""}, // empty field and value are legal
		},
		{
			{Kind: KindList, Key: "l", Val: "back"},
			{Kind: KindList, Key: "l", Val: "front", Front: true},
			{Kind: KindList, Key: "l", Del: true, Front: true},
			{Kind: KindList, Key: "l", Del: true},
		},
		{
			{Kind: KindZSet, Key: "z", Field: "m", Val: "1.5"},
			{Kind: KindZSet, Key: "z", Field: "m", Del: true},
		},
		{
			{Key: "s", Val: "x", ExpireAt: 42},
			{Key: "any-kind", Touch: true, ExpireAt: 7},
			{Key: "plain", Val: "y"},
		},
	}
	data := encodeFrames(recs)
	got, good, err := DecodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if good != int64(len(data)) {
		t.Fatalf("good prefix %d, want %d", good, len(data))
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("decoded %+v, want %+v", got, recs)
	}
}

// TestDecodeRejectsIllegalFlagCombos pins the strict decoder: flag
// combinations the encoder cannot produce are bad frames, truncating
// recovery before them, even when the frame's CRC is intact.
func TestDecodeRejectsIllegalFlagCombos(t *testing.T) {
	// Hand-build a payload: op count 1, then the raw flag byte and a
	// minimal body (empty key, and whatever sections the flags demand).
	frame := func(flags byte, body ...byte) []byte {
		payload := append([]byte{1, flags}, body...)
		return appendFrame(nil, payload)
	}
	const (
		del   = 1 << 0
		ttl   = 1 << 1
		hash  = 1 << 2
		list  = 2 << 2
		zset  = 3 << 2
		front = 1 << 4
		touch = 1 << 5
	)
	cases := map[string][]byte{
		// key=0 len, expiry uvarint 1
		"touch-without-ttl":  frame(touch, 0),
		"touch-with-del":     frame(touch|ttl|del, 0, 1),
		"touch-with-front":   frame(touch|ttl|front, 0, 1),
		"touch-on-hash":      frame(touch|ttl|hash, 0, 0, 1),
		"front-on-hash":      frame(hash|front, 0, 0, 0),
		"front-on-zset":      frame(zset|front, 0, 0, 0),
		"front-on-string":    frame(front, 0, 0),
		"ttl-on-hash":        frame(ttl|hash, 0, 0, 0, 1),
		"ttl-on-list":        frame(ttl|list, 0, 0, 1),
		"ttl-on-zset":        frame(ttl|zset, 0, 0, 0, 1),
		"ttl-zero-deadline":  frame(ttl, 0, 0, 0),
		"reserved-high-bits": frame(1<<6, 0, 0),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			recs, good, err := DecodeAll(data)
			if err == nil {
				t.Fatalf("decoded illegal frame: %+v", recs)
			}
			if good != 0 || len(recs) != 0 {
				t.Fatalf("illegal frame accepted into good prefix: good=%d recs=%+v", good, recs)
			}
		})
	}
}

func TestDecodeEmptyAndGarbage(t *testing.T) {
	if recs, good, err := DecodeAll(nil); err != nil || good != 0 || len(recs) != 0 {
		t.Fatalf("empty input: %v %d %v", recs, good, err)
	}
	if _, good, err := DecodeAll([]byte("not a log at all, just text")); err == nil || good != 0 {
		t.Fatalf("garbage input: good=%d err=%v", good, err)
	}
}

// FuzzWALDecode pins the decoder's contract on arbitrary input: never
// panic, never claim a good prefix longer than the input, the good
// prefix must re-decode to the same records, and whatever decodes
// must survive an encode/decode round trip. (Byte-exact re-encoding
// is not required: Uvarint accepts non-minimal varints.)
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeFrames([][]Op{{{Key: "a", Val: "1"}}}))
	f.Add(encodeFrames([][]Op{
		{{Key: "k", Val: "v", ExpireAt: 123456789}},
		{{Key: "gone", Del: true}, {Key: "", Val: ""}},
	}))
	f.Add(encodeFrames([][]Op{{{Key: string([]byte{0, 255}), Val: "\r\n"}}}))
	f.Add(encodeFrames([][]Op{
		{{Kind: KindHash, Key: "h", Field: "f", Val: "v"}},
		{{Kind: KindList, Key: "l", Val: "e", Front: true}, {Kind: KindList, Key: "l", Del: true}},
		{{Kind: KindZSet, Key: "z", Field: "m", Val: "-1.25"}, {Kind: KindZSet, Key: "z", Field: "m", Del: true}},
	}))
	f.Add(encodeFrames([][]Op{{{Key: "k", Touch: true, ExpireAt: 99}}}))
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0})
	f.Add(make([]byte, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, err := DecodeAll(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good prefix %d out of range [0,%d]", good, len(data))
		}
		if err != nil {
			// The good prefix must itself decode cleanly.
			again, goodAgain, err2 := DecodeAll(data[:good])
			if err2 != nil || goodAgain != good {
				t.Fatalf("good prefix does not re-decode: %v (len %d vs %d)", err2, goodAgain, good)
			}
			if !reflect.DeepEqual(again, recs) {
				t.Fatalf("good-prefix decode disagrees")
			}
			return
		}
		again, _, err2 := DecodeAll(encodeFrames(recs))
		if err2 != nil {
			t.Fatalf("re-encoded records do not decode: %v", err2)
		}
		if !reflect.DeepEqual(again, recs) {
			t.Fatalf("round trip mismatch: %+v vs %+v", again, recs)
		}
	})
}
