package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// WriteProm renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE pair per family, then one
// sample line per series, with histograms expanded to cumulative
// le-edge buckets plus _sum and _count. Output is deterministic
// (families and series sorted) so it diffs cleanly in tests.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		f.mu.Lock()
		sers := make([]*series, len(f.series))
		copy(sers, f.series)
		f.mu.Unlock()
		if len(sers) == 0 {
			continue
		}
		sort.Slice(sers, func(i, j int) bool { return sers[i].key < sers[j].key })

		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range sers {
			switch f.kind {
			case KindCounter:
				v := int64(0)
				if s.counterFn != nil {
					v = s.counterFn()
				} else if s.counter != nil {
					v = s.counter.Value()
				}
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(s, nil), v)
			case KindGauge:
				if s.gaugeFn != nil {
					fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(s, nil), formatFloat(s.gaugeFn()))
				} else if s.gauge != nil {
					fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(s, nil), s.gauge.Value())
				}
			case KindHistogram:
				var snap *metrics.Histogram
				if s.histFn != nil {
					snap = s.histFn()
				} else if s.hist != nil {
					snap = s.hist.Snapshot()
				}
				if snap == nil {
					snap = &metrics.Histogram{}
				}
				writeHistogram(bw, f, s, snap)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits cumulative buckets for the occupied le edges
// plus the mandatory +Inf bucket. Skipping empty buckets keeps 64-way
// families compact; cumulative semantics make any subset of edges
// valid.
func writeHistogram(w io.Writer, f *family, s *series, snap *metrics.Histogram) {
	counts := snap.Counts()
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		le := float64(metrics.BucketUpper(i)) * f.scale
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(s, []string{"le", formatFloat(le)}), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(s, []string{"le", "+Inf"}), snap.Count())
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(s, nil), formatFloat(float64(snap.Sum())*f.scale))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(s, nil), snap.Count())
}

// labelString renders {k="v",...}, optionally with one extra pair
// (used for the histogram le label), or "" when there are no labels.
func labelString(s *series, extra []string) string {
	if len(s.labelKeys) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range s.labelKeys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(s.labelVals[i]))
		b.WriteByte('"')
	}
	if extra != nil {
		if len(s.labelKeys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }
func escapeHelp(v string) string  { return helpEscaper.Replace(v) }

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
