package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// CheckExposition validates Prometheus text-format output and returns
// the parsed samples keyed by the full series name as written
// (name plus label block). It is deliberately strict about the things
// a scraper would choke on — malformed lines, samples with no TYPE,
// duplicate series, unparseable values — and is shared by the package
// tests and the stmkv smoke gate so both verify the same contract.
func CheckExposition(data []byte) (map[string]float64, error) {
	samples := make(map[string]float64)
	typed := make(map[string]string) // family name -> kind
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				name := fields[2]
				if len(fields) < 4 {
					return nil, fmt.Errorf("line %d: TYPE without kind", lineNo)
				}
				kind := fields[3]
				if kind != "counter" && kind != "gauge" && kind != "histogram" && kind != "summary" && kind != "untyped" {
					return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, kind)
				}
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				typed[name] = kind
			}
			continue
		}

		name, rest, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value in %q: %v", lineNo, line, err)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		fam := base
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(base, suffix)
			if trimmed != base && typed[trimmed] == "histogram" {
				fam = trimmed
				break
			}
		}
		if _, ok := typed[fam]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE", lineNo, name)
		}
		if _, dup := samples[name]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %q", lineNo, name)
		}
		samples[name] = val
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("exposition contains no samples")
	}
	return samples, nil
}

// splitSample splits "name{labels} value" or "name value" into the
// series name (labels included) and the value text, honoring quotes
// and escapes inside label values.
func splitSample(line string) (name, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace < 0 || (space >= 0 && space < brace) {
		// No label block.
		if space < 0 {
			return "", "", fmt.Errorf("malformed sample %q", line)
		}
		return line[:space], line[space+1:], nil
	}
	inQuote, esc := false, false
	for i := brace + 1; i < len(line); i++ {
		c := line[i]
		switch {
		case esc:
			esc = false
		case c == '\\':
			esc = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			if i+1 >= len(line) || line[i+1] != ' ' {
				return "", "", fmt.Errorf("missing value after label block in %q", line)
			}
			return line[:i+1], line[i+2:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated label block in %q", line)
}
