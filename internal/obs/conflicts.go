package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"repro/internal/stm"
)

// Conflicts aggregates the STM flight recorder's sampled transactions
// into a conflict matrix: per-object open/conflict/wait tallies keyed
// by NewNamedVar label (kv keys flow through naturally; unnamed
// objects fall back to their commit stripe), self→enemy decision
// counts, and per-cause abort totals. It implements stm.TraceSink —
// install it with stm.WithTracer — and serves its snapshot at
// /debug/stm/conflicts via Handler.
//
// Cardinality is bounded by construction: object keys are interned
// labels or one of 128 stripes, and edge keys are pairs of transaction
// labels, which callers intern at setup time. TxDone takes one mutex;
// with sampling at the rates the callers use (1 in 16 or sparser) the
// critical section — a handful of map updates — is not a contention
// point next to the transactions being measured.
type Conflicts struct {
	manager string

	mu        sync.Mutex
	txs       int64
	committed int64
	causes    [5]int64 // indexed by stm.AbortCause; [CauseNone] unused
	objs      map[string]*objAgg
	edges     map[edgeKey]*edgeAgg
}

type objAgg struct {
	opens     int64
	writes    int64
	conflicts int64
	waitNs    int64
}

// edgeKey is one cell of the decision matrix: the transaction that
// consulted its manager (self), the enemy it found holding the object,
// and the manager's ruling.
type edgeKey struct {
	self     string
	enemy    string
	decision stm.Decision
}

type edgeAgg struct {
	count  int64
	waitNs int64
}

// NewConflicts returns an empty aggregator for an STM driven by the
// named contention manager (the name is reporting metadata only).
func NewConflicts(manager string) *Conflicts {
	return &Conflicts{
		manager: manager,
		objs:    make(map[string]*objAgg),
		edges:   make(map[edgeKey]*edgeAgg),
	}
}

// objKey names an object for aggregation: its label, or its commit
// stripe when unnamed.
func objKey(ev stm.TraceEvent) string {
	if ev.Obj != "" {
		return ev.Obj
	}
	return "stripe:" + strconv.FormatUint(uint64(ev.Stripe), 10)
}

// txLabel names a transaction for the matrix.
func txLabel(l string) string {
	if l == "" {
		return "(unlabelled)"
	}
	return l
}

// TxDone folds one sampled transaction into the matrix. It runs on the
// transaction's goroutine (see stm.TraceSink) and copies everything it
// keeps, so the reused events slice is safe.
func (c *Conflicts) TxDone(sum stm.TxSummary, events []stm.TraceEvent) {
	self := txLabel(sum.Label)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.txs++
	if sum.Committed {
		c.committed++
	}
	for _, ev := range events {
		switch ev.Kind {
		case stm.TraceOpen:
			o := c.obj(objKey(ev))
			o.opens++
			if ev.Write {
				o.writes++
			}
		case stm.TraceConflict:
			o := c.obj(objKey(ev))
			o.conflicts++
			o.waitNs += ev.Ns
			k := edgeKey{self: self, enemy: txLabel(ev.Enemy), decision: ev.Decision}
			e := c.edges[k]
			if e == nil {
				e = &edgeAgg{}
				c.edges[k] = e
			}
			e.count++
			e.waitNs += ev.Ns
		case stm.TraceAbort:
			if int(ev.Cause) < len(c.causes) {
				c.causes[ev.Cause]++
			}
		}
	}
}

func (c *Conflicts) obj(key string) *objAgg {
	o := c.objs[key]
	if o == nil {
		o = &objAgg{}
		c.objs[key] = o
	}
	return o
}

// HotObject is one row of the snapshot's top-K object table.
type HotObject struct {
	Obj       string `json:"obj"`
	Opens     int64  `json:"opens"`
	Writes    int64  `json:"writes"`
	Conflicts int64  `json:"conflicts"`
	WaitNs    int64  `json:"wait_ns"`
}

// ConflictEdge is one cell of the snapshot's decision matrix.
type ConflictEdge struct {
	Self     string `json:"self"`
	Enemy    string `json:"enemy"`
	Decision string `json:"decision"`
	Count    int64  `json:"count"`
	WaitNs   int64  `json:"wait_ns"`
}

// ConflictsSnapshot is a point-in-time view of the matrix, shaped for
// JSON exposition.
type ConflictsSnapshot struct {
	Manager    string           `json:"manager"`
	SampledTxs int64            `json:"sampled_txs"`
	Committed  int64            `json:"committed"`
	Causes     map[string]int64 `json:"abort_causes"`
	HotObjects []HotObject      `json:"hot_objects"`
	Edges      []ConflictEdge   `json:"edges"`
}

// Snapshot returns the matrix with objects ranked by conflict count
// (opens breaking ties) and edges by count, each truncated to the topK
// hottest entries (topK <= 0 means everything).
func (c *Conflicts) Snapshot(topK int) ConflictsSnapshot {
	c.mu.Lock()
	snap := ConflictsSnapshot{
		Manager:    c.manager,
		SampledTxs: c.txs,
		Committed:  c.committed,
		Causes:     make(map[string]int64, 4),
		HotObjects: make([]HotObject, 0, len(c.objs)),
		Edges:      make([]ConflictEdge, 0, len(c.edges)),
	}
	for cause, n := range c.causes {
		if n != 0 {
			snap.Causes[stm.AbortCause(cause).String()] = n
		}
	}
	for key, o := range c.objs {
		snap.HotObjects = append(snap.HotObjects, HotObject{
			Obj: key, Opens: o.opens, Writes: o.writes,
			Conflicts: o.conflicts, WaitNs: o.waitNs,
		})
	}
	for k, e := range c.edges {
		snap.Edges = append(snap.Edges, ConflictEdge{
			Self: k.self, Enemy: k.enemy, Decision: k.decision.String(),
			Count: e.count, WaitNs: e.waitNs,
		})
	}
	c.mu.Unlock()
	sort.Slice(snap.HotObjects, func(i, j int) bool {
		a, b := snap.HotObjects[i], snap.HotObjects[j]
		if a.Conflicts != b.Conflicts {
			return a.Conflicts > b.Conflicts
		}
		if a.Opens != b.Opens {
			return a.Opens > b.Opens
		}
		return a.Obj < b.Obj
	})
	sort.Slice(snap.Edges, func(i, j int) bool {
		a, b := snap.Edges[i], snap.Edges[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Self != b.Self {
			return a.Self < b.Self
		}
		if a.Enemy != b.Enemy {
			return a.Enemy < b.Enemy
		}
		return a.Decision < b.Decision
	})
	if topK > 0 {
		if len(snap.HotObjects) > topK {
			snap.HotObjects = snap.HotObjects[:topK]
		}
		if len(snap.Edges) > topK {
			snap.Edges = snap.Edges[:topK]
		}
	}
	return snap
}

// defaultTopK is the endpoint's default table depth.
const defaultTopK = 20

// WriteJSON writes the top-K snapshot as indented JSON.
func (c *Conflicts) WriteJSON(w io.Writer, topK int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Snapshot(topK))
}

// WriteText writes the top-K snapshot as a human-readable report — the
// ?format=text view of the endpoint.
func (c *Conflicts) WriteText(w io.Writer, topK int) error {
	s := c.Snapshot(topK)
	if _, err := fmt.Fprintf(w, "# stm conflicts (manager=%s)\nsampled_txs: %d\ncommitted: %d\n",
		s.Manager, s.SampledTxs, s.Committed); err != nil {
		return err
	}
	causes := make([]string, 0, len(s.Causes))
	for cause := range s.Causes {
		causes = append(causes, cause)
	}
	sort.Strings(causes)
	for _, cause := range causes {
		if _, err := fmt.Fprintf(w, "abort_cause %s: %d\n", cause, s.Causes[cause]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n# hot objects (top %d by conflicts)\n", len(s.HotObjects)); err != nil {
		return err
	}
	for _, o := range s.HotObjects {
		if _, err := fmt.Fprintf(w, "%s opens=%d writes=%d conflicts=%d wait_ns=%d\n",
			o.Obj, o.Opens, o.Writes, o.Conflicts, o.WaitNs); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n# decision matrix (self -> enemy)\n"); err != nil {
		return err
	}
	for _, e := range s.Edges {
		if _, err := fmt.Fprintf(w, "%s -> %s: %s x%d wait_ns=%d\n",
			e.Self, e.Enemy, e.Decision, e.Count, e.WaitNs); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the matrix: JSON by default, text with ?format=text,
// table depth with ?top=N. Mount it at /debug/stm/conflicts on the
// mux returned by Mux.
func (c *Conflicts) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		topK := defaultTopK
		if v := req.URL.Query().Get("top"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				topK = n
			}
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			c.WriteText(w, topK)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		c.WriteJSON(w, topK)
	})
}
