package obs

import (
	"repro/internal/metrics"
)

// Histogram is the concurrency-safe log2-bucket histogram the registry
// exposes. The implementation lives in internal/metrics (as
// AtomicHistogram) so engine-level packages can record into one
// without importing the exposition layer; the alias keeps the obs API
// (reg.Histogram, HistogramFunc bridges) unchanged.
type Histogram = metrics.AtomicHistogram
