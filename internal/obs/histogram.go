package obs

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Histogram is a concurrency-safe wrapper over the metrics.Histogram
// bucket layout: the same 64 log2 buckets, but each bucket is an
// atomic counter so any goroutine can Observe without coordination.
// Observe costs two uncontended atomic adds; Snapshot reconstructs a
// plain metrics.Histogram (count, quantiles, approximate extrema)
// without stopping writers. The zero value is ready to use.
type Histogram struct {
	buckets [metrics.NumBuckets]atomic.Uint64
	sum     atomic.Int64
}

// Observe records one duration (clamped at zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[metrics.BucketOf(d)].Add(1)
	h.sum.Add(int64(d))
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// ObserveN records a raw unit-less value (a batch size, an attempt
// count) in the same bucket layout.
func (h *Histogram) ObserveN(v int64) { h.Observe(time.Duration(v)) }

// Snapshot returns a point-in-time metrics.Histogram. Concurrent
// Observes may be partially included (a bucket increment without its
// sum, or vice versa) — the same no-quiescence contract as the rest of
// the registry; counts are never lost, only split across snapshots.
func (h *Histogram) Snapshot() *metrics.Histogram {
	var counts [metrics.NumBuckets]uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return metrics.FromBuckets(counts[:], time.Duration(h.sum.Load()))
}
