package obs

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramConcurrentSnapshot(t *testing.T) {
	var h Histogram
	const goroutines, per = 4, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count() != goroutines*per {
		t.Fatalf("snapshot count = %d, want %d", snap.Count(), goroutines*per)
	}
	wantSum := time.Duration(per) * (1 + 2 + 3 + 4) * time.Microsecond
	if snap.Sum() != wantSum {
		t.Fatalf("snapshot sum = %v, want %v", snap.Sum(), wantSum)
	}
	if p := snap.Quantile(0.99); p < 4*time.Microsecond || p > 8*time.Microsecond {
		t.Fatalf("p99 = %v, want within [4us, 8us]", p)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "help", Labels{"cmd": "GET"})
	b := r.Counter("requests_total", "help", Labels{"cmd": "GET"})
	if a != b {
		t.Fatal("same name+labels returned different counters")
	}
	other := r.Counter("requests_total", "help", Labels{"cmd": "SET"})
	if a == other {
		t.Fatal("different labels returned the same counter")
	}
	h1 := r.Histogram("latency_seconds", "help", nil)
	h2 := r.Histogram("latency_seconds", "help", nil)
	if h1 != h2 {
		t.Fatal("histogram registration not idempotent")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad-name", "", nil)
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x", "", nil).Inc()
	r.Gauge("x", "", nil).Set(1)
	r.Histogram("x", "", nil).Observe(time.Second)
	r.CounterFunc("x", "", nil, func() int64 { return 0 })
	if err := r.WriteProm(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestWritePromParseBack(t *testing.T) {
	r := NewRegistry()
	r.Counter("stmkv_commands_total", "Commands processed.", Labels{"cmd": "GET"}).Add(5)
	r.Counter("stmkv_commands_total", "Commands processed.", Labels{"cmd": "SET"}).Add(3)
	r.Gauge("stmkv_connected_clients", "Open connections.", nil).Set(2)
	r.GaugeFunc("stmkv_uptime_seconds", "Uptime.", nil, func() float64 { return 1.5 })
	r.CounterFunc("stm_commits_total", "Commits.", Labels{"manager": "greedy"}, func() int64 { return 99 })
	h := r.Histogram("stmkv_command_seconds", "Latency.", Labels{"cmd": "GET"})
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	sh := r.SizeHistogram("wal_batch_ops", "Batch sizes.", nil)
	sh.ObserveN(4)
	r.HistogramFunc("stm_commit_seconds", "Commit latency.", nil, func() *metrics.Histogram {
		var m metrics.Histogram
		m.Observe(time.Millisecond)
		return &m
	})

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	samples, err := CheckExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition failed parse-back: %v\n%s", err, out)
	}
	if samples[`stmkv_commands_total{cmd="GET"}`] != 5 {
		t.Fatalf("GET counter sample wrong:\n%s", out)
	}
	if samples[`stm_commits_total{manager="greedy"}`] != 99 {
		t.Fatalf("counter func sample wrong:\n%s", out)
	}
	if samples[`stmkv_connected_clients`] != 2 {
		t.Fatalf("gauge sample wrong:\n%s", out)
	}
	if samples[`stmkv_command_seconds_count{cmd="GET"}`] != 2 {
		t.Fatalf("histogram count wrong:\n%s", out)
	}
	if samples[`stmkv_command_seconds_bucket{cmd="GET",le="+Inf"}`] != 2 {
		t.Fatalf("+Inf bucket wrong:\n%s", out)
	}
	sum := samples[`stmkv_command_seconds_sum{cmd="GET"}`]
	if sum < 0.003 || sum > 0.0032 {
		t.Fatalf("histogram sum = %g, want ~0.0031:\n%s", sum, out)
	}
	if samples[`wal_batch_ops_sum`] != 4 {
		t.Fatalf("size histogram sum = %g, want unscaled 4:\n%s", samples[`wal_batch_ops_sum`], out)
	}
	if samples[`stm_commit_seconds_count`] != 1 {
		t.Fatalf("histogram func count wrong:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE stmkv_command_seconds histogram") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	// Cumulative buckets: every _bucket sample is <= the +Inf total.
	for name, v := range samples {
		if strings.Contains(name, "_bucket{") && strings.Contains(name, `cmd="GET"`) {
			if v > 2 {
				t.Fatalf("bucket %s = %g exceeds count", name, v)
			}
		}
	}
}

func TestWritePromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "", Labels{"key": "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := CheckExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("escaped output failed parse-back: %v\n%s", err, buf.String())
	}
	if len(samples) != 1 {
		t.Fatalf("want 1 sample, got %v", samples)
	}
}

func TestCheckExpositionRejectsMalformed(t *testing.T) {
	cases := []string{
		"no_type_line 3\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x counter\nx{unterminated=\"v 3\n",
		"# TYPE x counter\n# TYPE x counter\nx 1\n",
		"# TYPE x counter\nx 1\nx 2\n",
		"",
	}
	for _, c := range cases {
		if _, err := CheckExposition([]byte(c)); err == nil {
			t.Fatalf("malformed exposition accepted: %q", c)
		}
	}
}

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "", nil).Inc()
	healthy := true
	mux := Mux(r, func() error {
		if !healthy {
			return io.ErrClosedPipe
		}
		return nil
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if _, err := CheckExposition(body); err != nil {
		t.Fatalf("/metrics not well-formed: %v", err)
	}
	if code, body = get("/healthz"); code != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, _ = get("/healthz"); code != 503 {
		t.Fatalf("unhealthy /healthz status = %d, want 503", code)
	}
	// pprof index and a real profile endpoint must be reachable.
	if code, _ = get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _ = get("/debug/pprof/goroutine?debug=1"); code != 200 {
		t.Fatalf("/debug/pprof/goroutine status %d", code)
	}
}
