package obs

import (
	"net/http"
	"net/http/pprof"
)

// MuxOption adds an optional endpoint to the mux Mux builds.
type MuxOption func(*http.ServeMux)

// WithConflicts mounts the STM conflict matrix at /debug/stm/conflicts
// (JSON; ?format=text for the report form — see Conflicts.Handler).
func WithConflicts(c *Conflicts) MuxOption {
	return func(mux *http.ServeMux) {
		mux.Handle("/debug/stm/conflicts", c.Handler())
	}
}

// Mux returns an HTTP handler serving the standard operational
// endpoints:
//
//	/metrics       Prometheus text exposition of r
//	/healthz       200 "ok" (or 503 with the error when health fails)
//	/debug/pprof/  the full pprof suite (profile, heap, trace, ...)
//
// plus whatever the options mount (WithConflicts adds
// /debug/stm/conflicts). health may be nil, in which case /healthz
// always reports healthy. The pprof handlers are registered explicitly
// rather than through http.DefaultServeMux so an stmkv process never
// exposes them on a listener it didn't ask for.
func Mux(r *Registry, health func() error, opts ...MuxOption) *http.ServeMux {
	mux := http.NewServeMux()
	for _, opt := range opts {
		opt(mux)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteProm(w); err != nil {
			// Too late for a status code if the write partially
			// succeeded; the scraper sees a truncated body and retries.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
