// Package obs is the runtime observability layer: a lock-free metrics
// registry with Prometheus text-format exposition and an HTTP surface
// (/metrics, /healthz, /debug/pprof). It exists because the paper's
// contribution is a *worst-case* guarantee — exactly the property that
// mean-throughput figures hide — so the interesting signals here are
// wait-time totals and latency distributions, not averages.
//
// Hot-path instruments (Counter, Gauge, Histogram) are safe for
// concurrent use and never take a lock on the update path: counters
// stripe atomic adds across padded cells, histograms are arrays of
// atomic buckets. Registration is idempotent and mutex-guarded (it
// happens at setup time, not per operation), and reads (exposition)
// see a consistent-enough snapshot without quiescing writers, matching
// the approach of stm.TotalStats.
package obs

import (
	"fmt"
	"math/rand/v2"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Labels attaches dimensions to a metric series, e.g.
// Labels{"cmd": "GET"}. Nil means no labels.
type Labels map[string]string

// Kind discriminates metric families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// counterCells stripes a counter across cache-line-padded cells so
// concurrent Adds from many goroutines don't contend on one line.
const counterCells = 8

type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. The zero
// value is ready to use.
type Counter struct {
	cells [counterCells]paddedInt64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Negative deltas are not meaningful for counters but are
// not rejected; exposition reports whatever the cells sum to.
func (c *Counter) Add(n int64) {
	// rand/v2's global generator is per-M and lock-free, so this picks
	// a cell without coordinating across goroutines.
	c.cells[rand.Uint64()%counterCells].v.Add(n)
}

// Value sums the cells. Concurrent Adds may or may not be included —
// the same no-quiescence contract as stm.TotalStats.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// Gauge is a settable instantaneous value. The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// series is one labeled instance within a family. Exactly one of the
// value fields is set, matching the family kind.
type series struct {
	labelKeys []string
	labelVals []string
	key       string // canonical label encoding, for dedup and sorting

	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() int64
	gaugeFn   func() float64
	histFn    func() *metrics.Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name string
	help string
	kind Kind
	// scale multiplies raw histogram values (and bucket edges) at
	// exposition time: 1e-9 converts nanosecond durations to the
	// seconds Prometheus expects; 1 leaves unit-less sizes alone.
	scale float64

	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families and renders them. Registration is
// idempotent: asking twice for the same name+labels returns the same
// instrument. A nil *Registry is safe to register against and returns
// working (but unexported) instruments, so libraries can instrument
// unconditionally.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// familyFor returns the family for name, creating it on first use and
// panicking on a kind or scale mismatch — that is a programming error,
// not a runtime condition.
func (r *Registry) familyFor(name, help string, kind Kind, scale float64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
		}
		if f.scale != scale {
			panic(fmt.Sprintf("obs: metric %q re-registered with different scale", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, scale: scale, byKey: make(map[string]*series)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// seriesFor returns the series for the given labels, creating it on
// first use.
func (f *family) seriesFor(labels Labels) *series {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !labelRe.MatchString(k) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", k, f.name))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]string, len(keys))
	var b strings.Builder
	for i, k := range keys {
		vals[i] = labels[k]
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	key := b.String()

	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labelKeys: keys, labelVals: vals, key: key}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return new(Counter)
	}
	s := r.familyFor(name, help, KindCounter, 1).seriesFor(labels)
	if s.counter == nil && s.counterFn == nil {
		s.counter = new(Counter)
	}
	if s.counter == nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a counter func", name))
	}
	return s.counter
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	s := r.familyFor(name, help, KindGauge, 1).seriesFor(labels)
	if s.gauge == nil && s.gaugeFn == nil {
		s.gauge = new(Gauge)
	}
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a gauge func", name))
	}
	return s.gauge
}

// Histogram registers (or finds) a concurrent duration histogram,
// exposed in seconds.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	return r.histogram(name, help, labels, 1e-9)
}

// SizeHistogram registers (or finds) a concurrent histogram of
// unit-less sizes (batch sizes, attempt counts), exposed unscaled.
func (r *Registry) SizeHistogram(name, help string, labels Labels) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	return r.histogram(name, help, labels, 1)
}

func (r *Registry) histogram(name, help string, labels Labels, scale float64) *Histogram {
	s := r.familyFor(name, help, KindHistogram, scale).seriesFor(labels)
	if s.hist == nil && s.histFn == nil {
		s.hist = new(Histogram)
	}
	if s.hist == nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a histogram func", name))
	}
	return s.hist
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for subsystems that already keep their own atomic
// counters (stm.Stats, wal.Stats).
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {
	if r == nil {
		return
	}
	s := r.familyFor(name, help, KindCounter, 1).seriesFor(labels)
	if s.counter != nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a counter", name))
	}
	s.counterFn = fn
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	s := r.familyFor(name, help, KindGauge, 1).seriesFor(labels)
	if s.gauge != nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a gauge", name))
	}
	s.gaugeFn = fn
}

// HistogramFunc registers a duration histogram whose snapshot is
// produced by fn at exposition time — for subsystems that merge
// per-worker metrics.Histograms on demand (stm commit latency).
func (r *Registry) HistogramFunc(name, help string, labels Labels, fn func() *metrics.Histogram) {
	if r == nil {
		return
	}
	s := r.familyFor(name, help, KindHistogram, 1e-9).seriesFor(labels)
	if s.hist != nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a histogram", name))
	}
	s.histFn = fn
}

// SizeHistogramFunc is HistogramFunc for unit-less size histograms.
func (r *Registry) SizeHistogramFunc(name, help string, labels Labels, fn func() *metrics.Histogram) {
	if r == nil {
		return
	}
	s := r.familyFor(name, help, KindHistogram, 1).seriesFor(labels)
	if s.hist != nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a histogram", name))
	}
	s.histFn = fn
}
