package resp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// TestReadCommandForms pins the accepted grammar: array frames, inline
// commands, blank-line keepalives, and multi-command pipelines.
func TestReadCommandForms(t *testing.T) {
	cases := []struct {
		in   string
		want [][]string
	}{
		{"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n", [][]string{{"GET", "k"}}},
		{"*1\r\n$4\r\nPING\r\n", [][]string{{"PING"}}},
		{"*0\r\n", [][]string{{}}},
		{"GET k\r\n", [][]string{{"GET", "k"}}},
		{"GET k\n", [][]string{{"GET", "k"}}}, // bare LF, lenient
		{"  SET   a   b  \r\n", [][]string{{"SET", "a", "b"}}},
		{"\r\n\r\nPING\r\n", [][]string{{"PING"}}}, // keepalives skipped
		{"*2\r\n$3\r\nSET\r\n$0\r\n\r\n", [][]string{{"SET", ""}}},
		{
			"*2\r\n$4\r\nINCR\r\n$1\r\nn\r\nPING\r\n*1\r\n$4\r\nPING\r\n",
			[][]string{{"INCR", "n"}, {"PING"}, {"PING"}},
		},
		{"*2\r\n$3\r\nGET\r\n$11\r\nwith\r\nbytes\r\n", [][]string{{"GET", "with\r\nbytes"}}},
	}
	for _, tc := range cases {
		r := NewReader(strings.NewReader(tc.in))
		for i, want := range tc.want {
			got, err := r.ReadCommand()
			if err != nil {
				t.Fatalf("input %q command %d: %v", tc.in, i, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("input %q command %d = %v, want %v", tc.in, i, got, want)
			}
		}
		if _, err := r.ReadCommand(); err != io.EOF {
			t.Fatalf("input %q: trailing read = %v, want io.EOF", tc.in, err)
		}
	}
}

// TestReadCommandMalformed pins the rejection contract: garbage,
// overflows and type confusion yield ProtoError; frames cut short
// yield io.ErrUnexpectedEOF; none of them panic.
func TestReadCommandMalformed(t *testing.T) {
	proto := []string{
		"*notanumber\r\n",
		"*-1\r\n",
		fmt.Sprintf("*%d\r\n", MaxArity+1),
		"*1\r\nPING\r\n",      // array element without '$'
		"*1\r\n$-1\r\n",       // negative bulk length
		"*1\r\n$99999999\r\n", // bulk over MaxBulk
		"*1\r\n$x\r\n",        // non-numeric bulk length
		"*1\r\n$3\r\nabcXY",   // missing CRLF after payload
		"*1\r\n$2\r\nab\rZPG", // mangled terminator
	}
	for _, in := range proto {
		r := NewReader(strings.NewReader(in))
		_, err := r.ReadCommand()
		if !IsProtoError(err) {
			t.Fatalf("input %q: err = %v, want ProtoError", in, err)
		}
	}
	truncated := []string{
		"*2\r\n$3\r\nGET\r\n",
		"*1\r\n$3\r\nab",
		"*1\r\n$3",
		"*1\r\n",
		"*2",
		"GET k", // inline without newline
	}
	for _, in := range truncated {
		r := NewReader(strings.NewReader(in))
		_, err := r.ReadCommand()
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("input %q: err = %v, want io.ErrUnexpectedEOF", in, err)
		}
	}
}

// TestReadCommandOversized pins the limits: an inline line or a
// declared bulk/arity just inside the bound parses, just outside is a
// ProtoError before any oversized allocation.
func TestReadCommandOversized(t *testing.T) {
	// Inline at the limit parses (the line is MaxInline bytes before CRLF).
	long := strings.Repeat("a", MaxInline-4) // "GET " + payload
	r := NewReader(strings.NewReader("GET " + long + "\r\n"))
	if args, err := r.ReadCommand(); err != nil || len(args) != 2 || len(args[1]) != len(long) {
		t.Fatalf("inline at limit: %d args, err %v", len(args), err)
	}
	// One byte past the limit is rejected.
	r = NewReader(strings.NewReader("GET " + long + "ab\r\n"))
	if _, err := r.ReadCommand(); !IsProtoError(err) {
		t.Fatalf("inline past limit: err = %v, want ProtoError", err)
	}
	// Bulk at the limit parses.
	payload := strings.Repeat("b", MaxBulk)
	frame := fmt.Sprintf("*2\r\n$3\r\nSET\r\n$%d\r\n%s\r\n", MaxBulk, payload)
	r = NewReader(strings.NewReader(frame))
	if args, err := r.ReadCommand(); err != nil || len(args[1]) != MaxBulk {
		t.Fatalf("bulk at limit: err %v", err)
	}
	// Declared length past the limit is rejected without reading the body.
	r = NewReader(strings.NewReader(fmt.Sprintf("*1\r\n$%d\r\n", MaxBulk+1)))
	if _, err := r.ReadCommand(); !IsProtoError(err) {
		t.Fatalf("bulk past limit: err = %v, want ProtoError", err)
	}
}

// TestWriterReplies pins the outbound encoding byte for byte.
func TestWriterReplies(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Simple("OK")
	w.Error("ERR boom")
	w.Int(-42)
	w.Bulk("hello")
	w.Bulk("")
	w.Null()
	w.Array(2)
	w.Int(1)
	w.Null()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR boom\r\n:-42\r\n$5\r\nhello\r\n$0\r\n\r\n$-1\r\n*2\r\n:1\r\n$-1\r\n"
	if got := buf.String(); got != want {
		t.Fatalf("encoded %q, want %q", got, want)
	}
}

// errWriter fails after n bytes, for the sticky-error contract.
type errWriter struct {
	n int
}

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errors.New("sink full")
	}
	w.n -= len(p)
	return len(p), nil
}

// TestWriterSticky: the first transport error is retained and reported
// by Flush; later writes are no-ops rather than panics.
func TestWriterSticky(t *testing.T) {
	w := NewWriter(&errWriter{n: 4})
	for i := 0; i < 1000; i++ {
		w.Bulk(strings.Repeat("x", 64))
	}
	if err := w.Flush(); err == nil {
		t.Fatal("Flush after sink failure = nil, want error")
	}
}

// FuzzReadCommand is the protocol-fuzz contract: arbitrary bytes never
// panic the reader, and every returned command is within the declared
// limits. The seed corpus covers each frame family and each rejection
// path.
func FuzzReadCommand(f *testing.F) {
	seeds := []string{
		"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n",
		"GET k\r\n",
		"PING\r\n",
		"*0\r\n",
		"*1\r\n$4\r\nPING\r\n",
		"*-1\r\n",
		"*99999\r\n",
		"*1\r\n$-5\r\n",
		"*1\r\n$99999999\r\n",
		"*1\r\n$3\r\nab",
		"\r\n",
		"$5\r\nhello\r\n",
		":12\r\n",
		"*2\r\n$3\r\nGET\r\njunk",
		strings.Repeat("a", 9000),
		"*1\r\n$0\r\n\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bounded: a stream yields many commands
			args, err := r.ReadCommand()
			if err != nil {
				if !IsProtoError(err) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(args) > MaxArity {
				t.Fatalf("command with %d args exceeds MaxArity", len(args))
			}
			for _, a := range args {
				if len(a) > MaxBulk {
					t.Fatalf("argument of %d bytes exceeds MaxBulk", len(a))
				}
			}
		}
	})
}
