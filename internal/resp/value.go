package resp

import "io"

// Value is one protocol value: a server reply, or an element of an
// array reply. The server builds replies as Values (so MULTI/EXEC can
// buffer them and emit one array), and the load-generator client
// decodes them with Reader.ReadReply.
type Value struct {
	// Kind is the RESP type marker: '+' simple, '-' error, ':' integer,
	// '$' bulk, '*' array.
	Kind byte
	// Str holds simple, error and bulk payloads.
	Str string
	// Int holds integer payloads.
	Int int64
	// Elems holds array elements.
	Elems []Value
	// Null marks the null bulk ($-1) and null array (*-1) forms.
	Null bool
}

// SimpleVal is a "+s" reply.
func SimpleVal(s string) Value { return Value{Kind: '+', Str: s} }

// ErrVal is a "-msg" reply.
func ErrVal(msg string) Value { return Value{Kind: '-', Str: msg} }

// IntVal is a ":n" reply.
func IntVal(n int64) Value { return Value{Kind: ':', Int: n} }

// BulkVal is a "$len/s" reply.
func BulkVal(s string) Value { return Value{Kind: '$', Str: s} }

// NullVal is the "$-1" no-such-key reply.
func NullVal() Value { return Value{Kind: '$', Null: true} }

// ArrayVal is a "*n" reply of the given elements.
func ArrayVal(elems ...Value) Value {
	if elems == nil {
		elems = []Value{}
	}
	return Value{Kind: '*', Elems: elems}
}

// IsError reports whether the value is an error reply.
func (v Value) IsError() bool { return v.Kind == '-' }

// Value encodes v onto the writer's buffer.
func (w *Writer) Value(v Value) {
	switch v.Kind {
	case '+':
		w.Simple(v.Str)
	case '-':
		w.Error(v.Str)
	case ':':
		w.Int(v.Int)
	case '$':
		if v.Null {
			w.Null()
		} else {
			w.Bulk(v.Str)
		}
	case '*':
		if v.Null {
			w.writeString("*-1\r\n")
		} else {
			w.Array(len(v.Elems))
			for _, e := range v.Elems {
				w.Value(e)
			}
		}
	default:
		if w.err == nil {
			w.err = protoErrf("cannot encode value kind %q", v.Kind)
		}
	}
}

// maxReplyDepth bounds array nesting in ReadReply, so a hostile server
// (or fuzzer) cannot recurse the client into the ground.
const maxReplyDepth = 8

// ReadReply decodes one server reply — the client half of the
// protocol. Limits mirror the command reader's: bulk payloads bounded
// by MaxBulk, arrays by MaxArity, nesting by a fixed depth.
func (r *Reader) ReadReply() (Value, error) {
	return r.readReply(maxReplyDepth)
}

func (r *Reader) readReply(depth int) (Value, error) {
	if depth <= 0 {
		return Value{}, protoErrf("reply nesting exceeds %d", maxReplyDepth)
	}
	marker, err := r.br.ReadByte()
	if err != nil {
		return Value{}, err // io.EOF: clean close between replies
	}
	switch marker {
	case '+', '-':
		line, err := r.readLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: marker, Str: string(line)}, nil
	case ':':
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		return IntVal(n), nil
	case '$':
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return NullVal(), nil
		}
		if n < 0 || n > MaxBulk {
			return Value{}, protoErrf("bulk length %d out of range [0,%d]", n, MaxBulk)
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Value{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Value{}, protoErrf("bulk reply missing CRLF terminator")
		}
		return BulkVal(string(buf[:n])), nil
	case '*':
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return Value{Kind: '*', Null: true}, nil
		}
		if n < 0 || n > MaxArity {
			return Value{}, protoErrf("array arity %d out of range [0,%d]", n, MaxArity)
		}
		elems := make([]Value, 0, n)
		for i := int64(0); i < n; i++ {
			e, err := r.readReply(depth - 1)
			if err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return Value{}, err
			}
			elems = append(elems, e)
		}
		return Value{Kind: '*', Elems: elems}, nil
	default:
		return Value{}, protoErrf("unknown reply marker %q", marker)
	}
}
