// Package resp implements the RESP-lite wire protocol the stmkv
// server speaks: the subset of Redis's RESP2 needed for a command
// stream — inline commands and array-of-bulk-strings frames inbound;
// simple strings, errors, integers, bulk strings, nulls and arrays
// outbound.
//
// The reader is written against hostile input: every frame is bounded
// (line length, bulk length, array arity) before any allocation sized
// from the wire, truncated frames surface io.ErrUnexpectedEOF, and no
// input can panic the parser — the protocol-fuzz suite pins that
// contract. Limit violations and malformed frames return *ProtoError,
// which a server can report to the client before closing; everything
// else is a transport error.
package resp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Wire limits. Generous for a benchmark workload, small enough that a
// hostile frame cannot balloon memory: a declared bulk or array length
// is checked against these before any buffer is sized from it.
const (
	// MaxInline bounds one inline command line (bytes before CRLF).
	MaxInline = 64 * 1024
	// MaxBulk bounds one bulk string's declared length.
	MaxBulk = 1 << 20
	// MaxArity bounds one command array's declared element count.
	MaxArity = 1024
	// MaxFrame bounds one command's total payload bytes across all its
	// bulk strings: without it the per-field limits compose to
	// MaxArity×MaxBulk (a gibibyte) of heap per in-flight frame, which
	// a handful of hostile connections could turn into an OOM.
	MaxFrame = 8 << 20
)

// ProtoError is a protocol violation by the peer: malformed frame,
// limit overflow, wrong type marker. The text is safe to send back as
// an error reply before closing the connection.
type ProtoError struct {
	msg string
}

func (e *ProtoError) Error() string { return "resp: " + e.msg }

func protoErrf(format string, args ...any) error {
	return &ProtoError{msg: fmt.Sprintf(format, args...)}
}

// IsProtoError reports whether err is a protocol violation (as opposed
// to a transport failure), so servers can send a final -ERR reply.
func IsProtoError(err error) bool {
	var pe *ProtoError
	return errors.As(err, &pe)
}

// Reader decodes a client's command stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r for command decoding. The buffer is sized to
// MaxInline so ReadSlice's buffer-full condition coincides with the
// inline limit.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, MaxInline+2)}
}

// ReadCommand reads one command: either an array of bulk strings
// ("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n") or an inline line ("GET k\r\n",
// space-separated, the hand-telnet form). Empty inline lines are
// skipped, matching Redis. io.EOF is returned only on a clean
// connection close (no partial frame consumed); a frame cut short
// yields io.ErrUnexpectedEOF.
func (r *Reader) ReadCommand() ([]string, error) {
	for {
		first, err := r.br.ReadByte()
		if err != nil {
			return nil, err // io.EOF: clean close between commands
		}
		if first == '*' {
			return r.readArray()
		}
		if err := r.br.UnreadByte(); err != nil {
			return nil, err
		}
		args, err := r.readInline()
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			continue // bare CRLF keepalive
		}
		return args, nil
	}
}

// readLine reads up to CRLF (or a bare LF, accepted leniently),
// bounded by MaxInline, returning the line without its terminator.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, protoErrf("line exceeds %d bytes", MaxInline)
	}
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	line = line[:len(line)-1] // strip \n
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	if len(line) > MaxInline {
		return nil, protoErrf("line exceeds %d bytes", MaxInline)
	}
	return line, nil
}

// readInline splits one inline command line on spaces. Quoting is not
// supported — this is the telnet/debug form, not a full shell lexer.
func (r *Reader) readInline() ([]string, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	fields := bytes.Fields(line)
	if len(fields) > MaxArity {
		return nil, protoErrf("inline command exceeds %d arguments", MaxArity)
	}
	args := make([]string, len(fields))
	for i, f := range fields {
		args[i] = string(f)
	}
	return args, nil
}

// readArray reads the body of an array frame (the '*' marker already
// consumed): a decimal arity line, then that many bulk strings.
func (r *Reader) readArray() ([]string, error) {
	n, err := r.readInt()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > MaxArity {
		return nil, protoErrf("array arity %d out of range [0,%d]", n, MaxArity)
	}
	args := make([]string, 0, n)
	total := int64(0)
	for i := int64(0); i < n; i++ {
		s, err := r.readBulk()
		if err != nil {
			return nil, err
		}
		if total += int64(len(s)); total > MaxFrame {
			return nil, protoErrf("frame payload exceeds %d bytes", MaxFrame)
		}
		args = append(args, s)
	}
	return args, nil
}

// readInt parses the rest of a header line as a decimal integer.
func (r *Reader) readInt() (int64, error) {
	line, err := r.readLine()
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(string(line), 10, 64)
	if err != nil {
		return 0, protoErrf("bad length %q", line)
	}
	return n, nil
}

// readBulk reads one "$<len>\r\n<len bytes>\r\n" bulk string.
func (r *Reader) readBulk() (string, error) {
	marker, err := r.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return "", err
	}
	if marker != '$' {
		return "", protoErrf("expected bulk string, got %q", marker)
	}
	n, err := r.readInt()
	if err != nil {
		return "", err
	}
	if n < 0 || n > MaxBulk {
		return "", protoErrf("bulk length %d out of range [0,%d]", n, MaxBulk)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return "", err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return "", protoErrf("bulk string missing CRLF terminator")
	}
	return string(buf[:n]), nil
}

// Writer encodes server replies. Methods buffer; call Flush once per
// command batch (the request-response pipeline's natural boundary).
// The first write error sticks and is reported by Flush, so reply
// sequences need only one check.
type Writer struct {
	bw  *bufio.Writer
	err error
}

// NewWriter wraps w for reply encoding.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

func (w *Writer) writeString(s string) {
	if w.err == nil {
		_, w.err = w.bw.WriteString(s)
	}
}

// Simple writes a simple-string reply: +s.
func (w *Writer) Simple(s string) { w.writeString("+" + s + "\r\n") }

// Error writes an error reply: -msg.
func (w *Writer) Error(msg string) { w.writeString("-" + msg + "\r\n") }

// Int writes an integer reply: :n.
func (w *Writer) Int(n int64) { w.writeString(":" + strconv.FormatInt(n, 10) + "\r\n") }

// Bulk writes a bulk-string reply: $len/payload. The payload is
// written as-is (no concatenation): a GET-heavy workload must not pay
// an extra copy of up to MaxBulk per reply.
func (w *Writer) Bulk(s string) {
	w.writeString("$" + strconv.Itoa(len(s)) + "\r\n")
	w.writeString(s)
	w.writeString("\r\n")
}

// Null writes the null bulk reply ($-1), Redis's "no such key".
func (w *Writer) Null() { w.writeString("$-1\r\n") }

// Array writes an array header for n elements; the caller then writes
// the n replies.
func (w *Writer) Array(n int) { w.writeString("*" + strconv.Itoa(n) + "\r\n") }

// Flush drains the buffer and reports the first error of the batch.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}
