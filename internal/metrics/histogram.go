// Package metrics provides the small measurement utilities the
// benchmark harness uses: a log-bucketed duration histogram for
// commit-latency percentiles and a streaming mean/variance
// accumulator. The histogram is the piece that turns the paper's
// throughput figures into latency distributions, which is where
// contention-manager differences (fairness, worst case) show up even
// when mean throughput ties — the paper's Theorem 1 is precisely a
// worst-case latency statement.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// NumBuckets is the number of log2 buckets: bucket i holds durations
// in [2^i, 2^(i+1)) nanoseconds, which spans 1ns to ~18s at i=34 and
// far beyond at 63. It is exported so concurrent wrappers (internal/obs)
// can share the bucket layout.
const NumBuckets = 64

const histBuckets = NumBuckets

// Histogram is a fixed-size logarithmic histogram of durations. The
// zero value is ready to use. It is not safe for concurrent use; give
// each worker its own histogram and Merge them afterwards.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// bucketOf returns the log2 bucket for d (clamped at zero).
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return 63 - bits.LeadingZeros64(uint64(d))
}

// BucketOf returns the log2 bucket index for d: the bucket holding
// durations in [2^i, 2^(i+1)) nanoseconds, with non-positive durations
// in bucket 0.
func BucketOf(d time.Duration) int { return bucketOf(d) }

// BucketUpper returns the exclusive upper edge of bucket i, clamped to
// the largest representable duration for the top buckets whose edge
// would overflow int64.
func BucketUpper(i int) time.Duration {
	if i >= 62 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(1) << uint(i+1)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if h.total == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean observation, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min returns the smallest observation, or zero when empty.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation, or zero when empty.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an upper estimate of the q-quantile (0 <= q <= 1):
// the upper edge of the bucket containing it, so the error is at most
// a factor of two — ample for comparing managers orders of magnitude
// apart on worst-case latency.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			// Clamp to the observed max: it is both a tighter bound
			// than the bucket edge and immune to the int64 overflow
			// the top buckets' edges would hit.
			upper := BucketUpper(i)
			if upper > h.max {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// Counts returns a copy of the per-bucket observation counts.
func (h *Histogram) Counts() [NumBuckets]uint64 { return h.counts }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// FromBuckets reconstructs a histogram from raw per-bucket counts and
// an observation sum, as captured by a concurrent collector that tracks
// only those two pieces of state. Count is derived from the buckets;
// min and max are approximated by the lower edge of the lowest occupied
// bucket and the upper edge of the highest occupied bucket, which keeps
// Quantile within its documented factor-of-two bound.
func FromBuckets(counts []uint64, sum time.Duration) *Histogram {
	h := &Histogram{sum: sum}
	first := true
	for i, c := range counts {
		if i >= NumBuckets {
			break
		}
		if c == 0 {
			continue
		}
		h.counts[i] = c
		h.total += c
		if first {
			first = false
			if i > 0 {
				h.min = time.Duration(1) << uint(i)
			}
		}
		h.max = BucketUpper(i)
	}
	return h
}

// Merge accumulates other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.max.Round(time.Microsecond))
}

// Welford is a streaming mean/variance accumulator (Welford's
// algorithm), used for abort-count statistics.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Observe records one sample.
func (w *Welford) Observe(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of samples.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
