package metrics

import (
	"sync/atomic"
	"time"
)

// AtomicHistogram is a concurrency-safe collector over the Histogram
// bucket layout: the same 64 log2 buckets, but each bucket is an
// atomic counter so any goroutine can Observe without coordination.
// Observe costs two uncontended atomic adds; Snapshot reconstructs a
// plain Histogram (count, quantiles, approximate extrema) without
// stopping writers. The zero value is ready to use.
//
// It lives here rather than in internal/obs so that low-level packages
// (internal/stm keeps one per session for commit latency) can use it
// without depending on the exposition layer — obs aliases it as
// obs.Histogram for its registry API.
type AtomicHistogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64
}

// Observe records one duration (clamped at zero).
func (h *AtomicHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[BucketOf(d)].Add(1)
	h.sum.Add(int64(d))
}

// ObserveSince records the time elapsed since t0.
func (h *AtomicHistogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// ObserveN records a raw unit-less value (a batch size, an attempt
// count) in the same bucket layout.
func (h *AtomicHistogram) ObserveN(v int64) { h.Observe(time.Duration(v)) }

// Snapshot returns a point-in-time Histogram. Concurrent Observes may
// be partially included (a bucket increment without its sum, or vice
// versa); counts are never lost, only split across snapshots.
func (h *AtomicHistogram) Snapshot() *Histogram {
	var counts [NumBuckets]uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return FromBuckets(counts[:], time.Duration(h.sum.Load()))
}
