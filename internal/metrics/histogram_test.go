package metrics_test

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
)

func TestHistogramEmpty(t *testing.T) {
	var h metrics.Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not all-zero: %s", h.String())
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h metrics.Histogram
	h.Observe(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 100*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != h.Max() || h.Min() != 100*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// The quantile is an upper bound within 2x.
	q := h.Quantile(0.5)
	if q < 100*time.Microsecond || q > 200*time.Microsecond {
		t.Fatalf("p50 = %v, want within [100us, 200us]", q)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h metrics.Histogram
	h.Observe(-5 * time.Second)
	if h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative observation mishandled: %s", h.String())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h metrics.Histogram
	rng := rand.New(rand.NewPCG(4, 2))
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(rng.Int64N(int64(time.Second))))
	}
	last := time.Duration(0)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantile not monotone at %g: %v < %v", q, v, last)
		}
		last = v
	}
	if h.Quantile(1) < h.Quantile(0.999) {
		t.Fatal("p100 below p99.9")
	}
}

func TestHistogramQuantileWithinFactorTwo(t *testing.T) {
	// All mass at one value: every quantile must be within [v, 2v].
	var h metrics.Histogram
	v := 777 * time.Microsecond
	for i := 0; i < 100; i++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got < v || got > 2*v {
			t.Fatalf("quantile(%g) = %v outside [v, 2v] for v=%v", q, got, v)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b metrics.Histogram
	a.Observe(time.Millisecond)
	a.Observe(2 * time.Millisecond)
	b.Observe(4 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	if a.Max() != 4*time.Millisecond {
		t.Fatalf("merged max = %v", a.Max())
	}
	if a.Min() != time.Millisecond {
		t.Fatalf("merged min = %v", a.Min())
	}
	var empty metrics.Histogram
	a.Merge(&empty) // merging empty is a no-op
	if a.Count() != 3 {
		t.Fatalf("merge with empty changed count to %d", a.Count())
	}
}

// TestQuickHistogramInvariants: for arbitrary observation sets, count
// and extrema are exact and quantiles bracket the data.
func TestQuickHistogramInvariants(t *testing.T) {
	property := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h metrics.Histogram
		min := time.Duration(math.MaxInt64)
		max := time.Duration(0)
		for _, r := range raw {
			d := time.Duration(r)
			h.Observe(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		if h.Count() != uint64(len(raw)) {
			return false
		}
		if h.Min() != min || h.Max() != max {
			return false
		}
		// Every quantile lies within [min, max] (upper-bound estimate
		// clamped at max).
		for _, q := range []float64{0, 0.5, 1} {
			v := h.Quantile(q)
			if v < min && v < max { // v may exceed min due to bucket upper edge
				return false
			}
			if v > max && max > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramAllZeroObservations(t *testing.T) {
	// All observations are zero: every quantile is exactly zero, not
	// the upper edge of bucket 0. (A previous version returned 2ns.)
	var h metrics.Histogram
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("quantile(%g) = %v, want 0", q, v)
		}
	}
}

func TestHistogramHugeDuration(t *testing.T) {
	// Observations in the top buckets must not overflow the bucket
	// upper edge into a negative duration. (A previous version computed
	// 1<<63 for bucket 62.)
	var h metrics.Histogram
	huge := time.Duration(math.MaxInt64)
	h.Observe(huge)
	h.Observe(huge / 2)
	for _, q := range []float64{0.5, 1} {
		v := h.Quantile(q)
		if v <= 0 {
			t.Fatalf("quantile(%g) = %v, want positive", q, v)
		}
		if v > huge {
			t.Fatalf("quantile(%g) = %v exceeds max", q, v)
		}
	}
	if h.Quantile(1) != huge {
		t.Fatalf("p100 = %v, want clamp to observed max %v", h.Quantile(1), huge)
	}
}

func TestHistogramMergeQuantileMonotone(t *testing.T) {
	// Merging histograms whose mass lives in different buckets must
	// keep quantiles monotone in q and bracketed by the merged extrema.
	var lo, hi metrics.Histogram
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 500; i++ {
		lo.Observe(time.Duration(1 + rng.Int64N(int64(time.Microsecond))))
		hi.Observe(time.Second + time.Duration(rng.Int64N(int64(time.Second))))
	}
	lo.Merge(&hi)
	if lo.Count() != 1000 {
		t.Fatalf("merged count = %d", lo.Count())
	}
	last := time.Duration(0)
	for _, q := range []float64{0, 0.1, 0.4, 0.5, 0.6, 0.9, 0.99, 1} {
		v := lo.Quantile(q)
		if v < last {
			t.Fatalf("merged quantile not monotone at %g: %v < %v", q, v, last)
		}
		if v < lo.Min() || v > lo.Max() {
			t.Fatalf("merged quantile(%g) = %v outside [%v, %v]", q, v, lo.Min(), lo.Max())
		}
		last = v
	}
	// Half the mass is sub-microsecond, half is super-second: p25 must
	// be tiny and p75 must be huge.
	if p := lo.Quantile(0.25); p > 2*time.Microsecond {
		t.Fatalf("p25 = %v, want sub-2us", p)
	}
	if p := lo.Quantile(0.75); p < time.Second {
		t.Fatalf("p75 = %v, want >= 1s", p)
	}
}

func TestBucketHelpers(t *testing.T) {
	if metrics.BucketOf(0) != 0 || metrics.BucketOf(-time.Second) != 0 {
		t.Fatal("non-positive durations must land in bucket 0")
	}
	if metrics.BucketOf(1) != 0 || metrics.BucketOf(2) != 1 || metrics.BucketOf(3) != 1 {
		t.Fatal("small-bucket boundaries wrong")
	}
	if metrics.BucketUpper(0) != 2 {
		t.Fatalf("BucketUpper(0) = %v", metrics.BucketUpper(0))
	}
	for i := 0; i < metrics.NumBuckets; i++ {
		if metrics.BucketUpper(i) <= 0 {
			t.Fatalf("BucketUpper(%d) = %v, not positive", i, metrics.BucketUpper(i))
		}
	}
}

func TestFromBuckets(t *testing.T) {
	var h metrics.Histogram
	for _, d := range []time.Duration{time.Microsecond, 3 * time.Microsecond, time.Millisecond} {
		h.Observe(d)
	}
	counts := h.Counts()
	got := metrics.FromBuckets(counts[:], h.Sum())
	if got.Count() != h.Count() || got.Sum() != h.Sum() {
		t.Fatalf("round-trip count/sum = %d/%v, want %d/%v", got.Count(), got.Sum(), h.Count(), h.Sum())
	}
	if got.Counts() != counts {
		t.Fatal("round-trip bucket counts differ")
	}
	// Extrema are bucket-edge approximations bracketing the real ones.
	if got.Min() > h.Min() || got.Max() < h.Max() {
		t.Fatalf("approx extrema [%v, %v] don't bracket exact [%v, %v]",
			got.Min(), got.Max(), h.Min(), h.Max())
	}
	// Quantiles stay within the factor-of-two contract.
	for _, q := range []float64{0.5, 1} {
		v, exact := got.Quantile(q), h.Quantile(q)
		if v < exact/2 || v > 2*exact {
			t.Fatalf("reconstructed quantile(%g) = %v vs exact %v", q, v, exact)
		}
	}
	if empty := metrics.FromBuckets(nil, 0); empty.Count() != 0 || empty.Quantile(0.5) != 0 {
		t.Fatal("FromBuckets(nil) not empty")
	}
}

func TestWelford(t *testing.T) {
	var w metrics.Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %g, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; unbiased sample
	// variance is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %g, want %g", w.Variance(), 32.0/7.0)
	}
	if math.Abs(w.StdDev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("stddev = %g", w.StdDev())
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w metrics.Welford
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty accumulator variance not zero")
	}
	w.Observe(3)
	if w.Variance() != 0 {
		t.Fatal("single sample variance not zero")
	}
	if w.Mean() != 3 {
		t.Fatalf("mean = %g", w.Mean())
	}
}
