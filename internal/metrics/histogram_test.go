package metrics_test

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
)

func TestHistogramEmpty(t *testing.T) {
	var h metrics.Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not all-zero: %s", h.String())
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h metrics.Histogram
	h.Observe(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 100*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != h.Max() || h.Min() != 100*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// The quantile is an upper bound within 2x.
	q := h.Quantile(0.5)
	if q < 100*time.Microsecond || q > 200*time.Microsecond {
		t.Fatalf("p50 = %v, want within [100us, 200us]", q)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h metrics.Histogram
	h.Observe(-5 * time.Second)
	if h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative observation mishandled: %s", h.String())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h metrics.Histogram
	rng := rand.New(rand.NewPCG(4, 2))
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(rng.Int64N(int64(time.Second))))
	}
	last := time.Duration(0)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantile not monotone at %g: %v < %v", q, v, last)
		}
		last = v
	}
	if h.Quantile(1) < h.Quantile(0.999) {
		t.Fatal("p100 below p99.9")
	}
}

func TestHistogramQuantileWithinFactorTwo(t *testing.T) {
	// All mass at one value: every quantile must be within [v, 2v].
	var h metrics.Histogram
	v := 777 * time.Microsecond
	for i := 0; i < 100; i++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got < v || got > 2*v {
			t.Fatalf("quantile(%g) = %v outside [v, 2v] for v=%v", q, got, v)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b metrics.Histogram
	a.Observe(time.Millisecond)
	a.Observe(2 * time.Millisecond)
	b.Observe(4 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	if a.Max() != 4*time.Millisecond {
		t.Fatalf("merged max = %v", a.Max())
	}
	if a.Min() != time.Millisecond {
		t.Fatalf("merged min = %v", a.Min())
	}
	var empty metrics.Histogram
	a.Merge(&empty) // merging empty is a no-op
	if a.Count() != 3 {
		t.Fatalf("merge with empty changed count to %d", a.Count())
	}
}

// TestQuickHistogramInvariants: for arbitrary observation sets, count
// and extrema are exact and quantiles bracket the data.
func TestQuickHistogramInvariants(t *testing.T) {
	property := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h metrics.Histogram
		min := time.Duration(math.MaxInt64)
		max := time.Duration(0)
		for _, r := range raw {
			d := time.Duration(r)
			h.Observe(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		if h.Count() != uint64(len(raw)) {
			return false
		}
		if h.Min() != min || h.Max() != max {
			return false
		}
		// Every quantile lies within [min, max] (upper-bound estimate
		// clamped at max).
		for _, q := range []float64{0, 0.5, 1} {
			v := h.Quantile(q)
			if v < min && v < max { // v may exceed min due to bucket upper edge
				return false
			}
			if v > max && max > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelford(t *testing.T) {
	var w metrics.Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %g, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; unbiased sample
	// variance is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %g, want %g", w.Variance(), 32.0/7.0)
	}
	if math.Abs(w.StdDev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("stddev = %g", w.StdDev())
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w metrics.Welford
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty accumulator variance not zero")
	}
	w.Observe(3)
	if w.Variance() != 0 {
		t.Fatal("single sample variance not zero")
	}
	if w.Mean() != 3 {
		t.Fatalf("mean = %g", w.Mean())
	}
}
