package plot

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Span is one labelled interval of a Gantt chart: a transaction's
// continuous running interval in a simulator trace.
type Span struct {
	// Row groups spans onto one line (one row per transaction).
	Row string
	// Start and End are the tick interval [Start, End).
	Start, End int
	// Glyph fills the span's cells: '=' running-to-commit, 'x'
	// running-to-abort, '.' waiting — callers choose.
	Glyph byte
}

// Gantt renders rows of spans against a shared tick axis. Rows are
// ordered by first appearance; overlapping spans in one row keep the
// later glyph (traces do not overlap in practice).
func Gantt(w io.Writer, title string, spans []Span) error {
	if len(spans) == 0 {
		return fmt.Errorf("plot: no spans")
	}
	horizon := 0
	rowOrder := []string{}
	rows := map[string][]Span{}
	for _, s := range spans {
		if s.End <= s.Start {
			continue
		}
		if s.End > horizon {
			horizon = s.End
		}
		if _, ok := rows[s.Row]; !ok {
			rowOrder = append(rowOrder, s.Row)
		}
		rows[s.Row] = append(rows[s.Row], s)
	}
	if horizon == 0 {
		return fmt.Errorf("plot: all spans empty")
	}
	sort.SliceStable(rowOrder, func(i, j int) bool {
		return firstStart(rows[rowOrder[i]]) < firstStart(rows[rowOrder[j]])
	})

	labelWidth := 6
	for _, r := range rowOrder {
		if len(r) > labelWidth {
			labelWidth = len(r)
		}
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for _, r := range rowOrder {
		line := make([]byte, horizon)
		for i := range line {
			line[i] = ' '
		}
		for _, s := range rows[r] {
			for t := s.Start; t < s.End && t < horizon; t++ {
				if t >= 0 {
					line[t] = s.Glyph
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelWidth, r, line); err != nil {
			return err
		}
	}
	axis := strings.Repeat("-", horizon)
	if _, err := fmt.Fprintf(w, "%-*s +%s+\n", labelWidth, "", axis); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%-*s  0%*d (ticks)\n", labelWidth, "", horizon-1, horizon)
	return err
}

func firstStart(spans []Span) int {
	first := int(^uint(0) >> 1)
	for _, s := range spans {
		if s.Start < first {
			first = s.Start
		}
	}
	return first
}
