// Package plot renders ASCII line charts for the benchmark figures:
// committed transactions per second as a function of the number of
// threads, one marker per contention manager — a terminal rendition of
// the paper's Figures 1–4.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are the data points; they must have equal length.
	X []float64
	// Y values.
	Y []float64
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Options control the chart's size and labels.
type Options struct {
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel name the axes.
	XLabel string
	YLabel string
	// Width and Height are the plot-area size in characters
	// (default 64x20).
	Width  int
	Height int
}

// Render draws the series onto w. Points are scaled linearly into the
// plot area; collisions keep the earlier series' marker.
func Render(w io.Writer, series []Series, opts Options) error {
	if opts.Width <= 0 {
		opts.Width = 64
	}
	if opts.Height <= 0 {
		opts.Height = 20
	}
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	if len(series) > len(markers) {
		return fmt.Errorf("plot: at most %d series supported, got %d", len(markers), len(series))
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // the throughput axis starts at 0, as in the paper
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			points++
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		return fmt.Errorf("plot: series contain no points")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		for i := range s.X {
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(opts.Width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(opts.Height-1)))
			r := opts.Height - 1 - row
			if r >= 0 && r < opts.Height && col >= 0 && col < opts.Width && grid[r][col] == ' ' {
				grid[r][col] = markers[si]
			}
		}
	}

	if opts.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", opts.Title); err != nil {
			return err
		}
	}
	yLabelWidth := 10
	for r, line := range grid {
		label := strings.Repeat(" ", yLabelWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*.0f", yLabelWidth, maxY)
		case opts.Height - 1:
			label = fmt.Sprintf("%*.0f", yLabelWidth, minY)
		case (opts.Height - 1) / 2:
			label = fmt.Sprintf("%*.0f", yLabelWidth, (maxY+minY)/2)
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, line); err != nil {
			return err
		}
	}
	axis := strings.Repeat("-", opts.Width)
	if _, err := fmt.Fprintf(w, "%s +%s+\n", strings.Repeat(" ", yLabelWidth), axis); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-8.0f%s%8.0f\n",
		strings.Repeat(" ", yLabelWidth), minX,
		centerText(opts.XLabel, opts.Width-16), maxX); err != nil {
		return err
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si], s.Name))
	}
	if _, err := fmt.Fprintf(w, "%s  legend: %s", strings.Repeat(" ", yLabelWidth), strings.Join(legend, "   ")); err != nil {
		return err
	}
	if opts.YLabel != "" {
		if _, err := fmt.Fprintf(w, "   (y: %s)", opts.YLabel); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// centerText pads s to width, centred; long strings are returned
// unchanged.
func centerText(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", width-len(s)-left)
}
