package plot_test

import (
	"strings"
	"testing"

	"repro/internal/plot"
)

func render(t *testing.T, series []plot.Series, opts plot.Options) string {
	t.Helper()
	var sb strings.Builder
	if err := plot.Render(&sb, series, opts); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRenderBasicChart(t *testing.T) {
	out := render(t, []plot.Series{
		{Name: "greedy", X: []float64{1, 2, 4}, Y: []float64{100, 80, 60}},
		{Name: "karma", X: []float64{1, 2, 4}, Y: []float64{50, 55, 58}},
	}, plot.Options{Title: "Figure 1: List", XLabel: "threads", YLabel: "commits/s"})

	for _, want := range []string{"Figure 1: List", "greedy", "karma", "threads", "commits/s", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Axis labels: max Y and min Y appear.
	if !strings.Contains(out, "100") {
		t.Fatalf("chart missing max-Y label:\n%s", out)
	}
}

func TestRenderHighestPointTopRow(t *testing.T) {
	out := render(t, []plot.Series{
		{Name: "s", X: []float64{0, 1}, Y: []float64{0, 100}},
	}, plot.Options{Width: 20, Height: 5})
	lines := strings.Split(out, "\n")
	// First grid row must contain the marker for y=100 at the right
	// edge.
	if !strings.Contains(lines[0], "*") {
		t.Fatalf("top row missing highest point:\n%s", out)
	}
	// Rows 0..4 are the grid (Height 5); the lowest point y=0 sits on
	// the last grid row.
	if !strings.Contains(lines[4], "*") {
		t.Fatalf("bottom row missing lowest point:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	var sb strings.Builder
	if err := plot.Render(&sb, nil, plot.Options{}); err == nil {
		t.Error("no series accepted")
	}
	if err := plot.Render(&sb, []plot.Series{{Name: "bad", X: []float64{1}, Y: []float64{}}}, plot.Options{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := plot.Render(&sb, []plot.Series{{Name: "empty"}}, plot.Options{}); err == nil {
		t.Error("empty series accepted")
	}
	many := make([]plot.Series, 9)
	for i := range many {
		many[i] = plot.Series{Name: "s", X: []float64{1}, Y: []float64{1}}
	}
	if err := plot.Render(&sb, many, plot.Options{}); err == nil {
		t.Error("9 series accepted; only 8 markers exist")
	}
}

func TestGanttBasic(t *testing.T) {
	var sb strings.Builder
	err := plot.Gantt(&sb, "trace", []plot.Span{
		{Row: "T0", Start: 0, End: 3, Glyph: 'x'},
		{Row: "T0", Start: 3, End: 5, Glyph: '='},
		{Row: "T1", Start: 0, End: 2, Glyph: '='},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"trace", "T0", "T1", "xxx==", "==", "(ticks)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	// Rows ordered by first start; T0 and T1 both start at 0, order
	// of first appearance wins.
	if strings.Index(out, "T0") > strings.Index(out, "T1") {
		t.Fatalf("row order wrong:\n%s", out)
	}
}

func TestGanttErrors(t *testing.T) {
	var sb strings.Builder
	if err := plot.Gantt(&sb, "", nil); err == nil {
		t.Error("empty span list accepted")
	}
	if err := plot.Gantt(&sb, "", []plot.Span{{Row: "T0", Start: 5, End: 5, Glyph: '='}}); err == nil {
		t.Error("all-empty spans accepted")
	}
}

func TestGanttSkipsEmptySpans(t *testing.T) {
	var sb strings.Builder
	err := plot.Gantt(&sb, "", []plot.Span{
		{Row: "T0", Start: 2, End: 2, Glyph: 'x'}, // empty, skipped
		{Row: "T1", Start: 0, End: 1, Glyph: '='},
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "T0") {
		t.Fatalf("empty-span row rendered:\n%s", sb.String())
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges (single x, constant y) must not divide by
	// zero.
	out := render(t, []plot.Series{
		{Name: "flat", X: []float64{5}, Y: []float64{42}},
	}, plot.Options{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Fatalf("flat chart missing its point:\n%s", out)
	}
}
