package harness

import (
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"

	"repro/internal/container"
	"repro/internal/intset"
	"repro/internal/kv"
	"repro/internal/stm"
	"repro/internal/wal"
	"repro/internal/workload"
)

// app is one benchmark application: a structure plus the rules for
// seeding it, drawing one operation, and auditing it afterwards. The
// paper's four intset structures and the container subsystem both
// implement it, so the measurement loop is shared.
//
// Drawing and executing are split (draw outside the transaction, step
// inside) so that retries replay identical choices and the worker
// loop can reuse one transactional closure for its whole run — no
// per-operation allocation inside the measured window.
type app interface {
	// seed pre-populates the structure to roughly half occupancy so
	// inserts and removes both do real work from the first measured
	// transaction.
	seed(s *stm.STM, rng *rand.Rand) error
	// draw samples one operation outside the transaction.
	draw(rng *rand.Rand) opDesc
	// step runs the drawn operation inside tx; it must be retry-safe.
	step(tx *stm.Tx, d opDesc) error
	// after runs between transactions, after a committed operation —
	// the post-commit maintenance slot (the kv store drains its shard
	// resize signals here). Implementations must be cheap when there
	// is nothing to do; most apps are no-ops via noMaintenance.
	after(s *stm.STM) error
	// mixName reports the op-mix label for measured points: the mix's
	// name for apps that honour it, empty for fixed-workload apps.
	mixName() string
	// audit verifies structural integrity after the run.
	audit(s *stm.STM) error
}

// noMaintenance is the after hook of apps with no between-transaction
// upkeep.
type noMaintenance struct{}

func (noMaintenance) after(*stm.STM) error { return nil }

// closer is the optional cleanup hook an app may implement when a run
// leaves external state behind (files, goroutines); Run invokes it
// after the measurement completes.
type closer interface{ close() error }

// labeler is the optional attribution hook: an app that implements it
// names each drawn operation with an interned transaction label (see
// stm.InternLabel), so a traced run's conflict matrix shows which
// operation kinds wait on which. Labels must be interned at setup,
// never per draw — label runs inside the measured loop.
type labeler interface{ label(d opDesc) stm.Label }

// seedHalf pre-populates a structure to half the key range, one
// insert transaction per sampled key — the shared seeding policy of
// every app.
func seedHalf(s *stm.STM, cfg Config, keys workload.KeyDist, rng *rand.Rand, insert func(tx *stm.Tx, key int) error) error {
	for i := 0; i < cfg.KeyRange/2; i++ {
		key := keys.Sample(rng)
		if err := s.Atomically(func(tx *stm.Tx) error { return insert(tx, key) }); err != nil {
			return err
		}
	}
	return nil
}

// opDesc is one drawn operation: everything step needs, fixed before
// the transaction starts so aborts replay the same choices.
type opDesc struct {
	op     workload.Op
	key    int
	insert bool    // intset: insert vs remove
	all    bool    // forest: update all trees
	tree   int     // forest: target tree
	now    int64   // kv: clock instant, sampled outside the transaction
	verb   int     // jobs: pipeline stage (submit/promote/complete/query)
	id     string  // jobs: job id, formatted outside the transaction
	score  float64 // jobs: priority for the promotion ZADD
}

// ContainerStructures are the structure names served by
// internal/container, in the order they were added.
var ContainerStructures = []string{"hashset", "queue", "omap"}

// KVStructures are the structure names served by internal/kv: the
// sharded string-keyed store behind cmd/stmkv, in-memory ("kv"), with
// write-ahead logging attached ("kvwal"), and the cross-type job
// pipeline over the container kinds ("jobs").
var KVStructures = []string{"kv", "kvwal", "jobs"}

// Structures returns every structure name the harness can run: the
// paper's four intset applications, the container subsystem's three,
// and the kv store.
func Structures() []string {
	out := append([]string{}, intset.Structures...)
	out = append(out, ContainerStructures...)
	return append(out, KVStructures...)
}

// newApp builds the application for cfg.Structure.
func newApp(cfg Config, keys workload.KeyDist, mix workload.OpMix) (app, error) {
	switch cfg.Structure {
	case "hashset":
		return &hashsetApp{set: container.NewHashSet[int](cfg.Buckets), keys: keys, mix: mix, cfg: cfg}, nil
	case "queue":
		return &queueApp{q: container.NewQueue[int](), keys: keys, mix: mix, cfg: cfg}, nil
	case "omap":
		return &omapApp{m: container.NewOMap[int, int](), keys: keys, mix: mix, cfg: cfg}, nil
	case "kv":
		return newKVApp(cfg, keys, mix), nil
	case "kvwal":
		return &kvwalApp{kvApp: newKVApp(cfg, keys, mix)}, nil
	case "jobs":
		return &jobsApp{keys: keys, cfg: cfg}, nil
	default:
		set, err := intset.NewByName(cfg.Structure)
		if err != nil {
			return nil, fmt.Errorf("%w (harness structures: %v)", err, Structures())
		}
		forest, _ := set.(*intset.RBForest)
		return &intsetApp{set: set, forest: forest, keys: keys, cfg: cfg}, nil
	}
}

// intsetApp is the paper's workload: continuous random inserts and
// removes on a small key range (100% updates, half and half), with the
// forest's one-or-all variant. The op mix is fixed by the paper, so
// cfg.Mix does not apply here.
type intsetApp struct {
	noMaintenance
	set intset.Set
	// forest is non-nil when set is the red-black forest, hoisting the
	// type assertion out of the per-operation path.
	forest *intset.RBForest
	keys   workload.KeyDist
	cfg    Config
}

func (a *intsetApp) seed(s *stm.STM, rng *rand.Rand) error {
	return seedHalf(s, a.cfg, a.keys, rng, func(tx *stm.Tx, key int) error {
		_, err := a.set.Insert(tx, key)
		return err
	})
}

// mixName is empty: the intset apps run the paper's fixed workload,
// not a configurable mix.
func (a *intsetApp) mixName() string { return "" }

func (a *intsetApp) draw(rng *rand.Rand) opDesc {
	d := opDesc{
		key:    a.keys.Sample(rng),
		insert: rng.Int64N(2) == 0, // 100% updates, half insert half remove
	}
	if a.forest != nil {
		d.all = rng.Float64() < a.cfg.ForestAllProb
		d.tree = int(rng.Int64N(int64(a.forest.Size())))
	}
	return d
}

func (a *intsetApp) step(tx *stm.Tx, d opDesc) error {
	var err error
	switch {
	case a.forest != nil && d.all && d.insert:
		_, err = a.forest.InsertAll(tx, d.key)
	case a.forest != nil && d.all:
		_, err = a.forest.RemoveAll(tx, d.key)
	case a.forest != nil && d.insert:
		_, err = a.forest.InsertOne(tx, d.tree, d.key)
	case a.forest != nil:
		_, err = a.forest.RemoveOne(tx, d.tree, d.key)
	case d.insert:
		_, err = a.set.Insert(tx, d.key)
	default:
		_, err = a.set.Remove(tx, d.key)
	}
	return err
}

func (a *intsetApp) audit(s *stm.STM) error {
	keys, err := stm.Atomic(s, func(tx *stm.Tx) ([]int, error) {
		return a.set.Keys(tx)
	})
	if err != nil {
		return fmt.Errorf("harness: audit keys: %w", err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return fmt.Errorf("harness: audit: keys not strictly ascending at %d: %v", i, keys[i-1:i+1])
		}
	}
	switch v := a.set.(type) {
	case *intset.RBTree:
		if err := s.Atomically(v.CheckInvariants); err != nil {
			return fmt.Errorf("harness: audit rbtree: %w", err)
		}
	case *intset.RBForest:
		for i := 0; i < v.Size(); i++ {
			if err := s.Atomically(v.Tree(i).CheckInvariants); err != nil {
				return fmt.Errorf("harness: audit forest tree %d: %w", i, err)
			}
		}
	}
	return nil
}

// hashsetApp drives container.HashSet: point ops hash to one bucket
// (mostly disjoint under the default 64 buckets), and the mix's range
// op is a consistent whole-set Len — the long read-only scan that
// conflicts with every concurrent writer.
type hashsetApp struct {
	noMaintenance
	set  *container.HashSet[int]
	keys workload.KeyDist
	mix  workload.OpMix
	cfg  Config
}

func (a *hashsetApp) seed(s *stm.STM, rng *rand.Rand) error {
	return seedHalf(s, a.cfg, a.keys, rng, func(tx *stm.Tx, key int) error {
		_, err := a.set.Add(tx, key)
		return err
	})
}

func (a *hashsetApp) mixName() string { return a.mix.Name() }

func (a *hashsetApp) draw(rng *rand.Rand) opDesc {
	return opDesc{op: a.mix.Sample(rng), key: a.keys.Sample(rng)}
}

func (a *hashsetApp) step(tx *stm.Tx, d opDesc) error {
	var err error
	switch d.op {
	case workload.OpInsert:
		_, err = a.set.Add(tx, d.key)
	case workload.OpDelete:
		_, err = a.set.Remove(tx, d.key)
	case workload.OpRange:
		_, err = a.set.Len(tx)
	default:
		_, err = a.set.Contains(tx, d.key)
	}
	return err
}

func (a *hashsetApp) audit(s *stm.STM) error {
	if err := s.Atomically(a.set.CheckInvariants); err != nil {
		return fmt.Errorf("harness: audit hashset: %w", err)
	}
	return nil
}

// queueApp drives container.Queue: inserts enqueue, deletes dequeue,
// lookups peek, and the mix's range op snapshots the first RangeSpan
// items. A dequeue that finds the queue empty enqueues the drawn key
// instead: under a symmetric mix the queue length is a random walk
// whose excursions exceed any fixed seed within a measurement window,
// and without the fallback a drained queue turns half the measured
// commits into cheap two-read no-ops, inflating throughput. With it,
// every committed operation does real queue work. Every producer
// conflicts with every producer at the tail and every consumer with
// every consumer at the head, whatever the key distribution — the
// keys only supply the enqueued values.
type queueApp struct {
	noMaintenance
	q    *container.Queue[int]
	keys workload.KeyDist
	mix  workload.OpMix
	cfg  Config
}

func (a *queueApp) seed(s *stm.STM, rng *rand.Rand) error {
	return seedHalf(s, a.cfg, a.keys, rng, func(tx *stm.Tx, key int) error {
		return a.q.Enqueue(tx, key)
	})
}

func (a *queueApp) mixName() string { return a.mix.Name() }

func (a *queueApp) draw(rng *rand.Rand) opDesc {
	return opDesc{op: a.mix.Sample(rng), key: a.keys.Sample(rng)}
}

func (a *queueApp) step(tx *stm.Tx, d opDesc) error {
	var err error
	switch d.op {
	case workload.OpInsert:
		err = a.q.Enqueue(tx, d.key)
	case workload.OpDelete:
		var ok bool
		_, ok, err = a.q.Dequeue(tx)
		if err == nil && !ok {
			err = a.q.Enqueue(tx, d.key) // empty: refill instead of no-op
		}
	case workload.OpRange:
		_, err = a.q.PeekN(tx, a.cfg.RangeSpan)
	default:
		_, _, err = a.q.Peek(tx)
	}
	return err
}

func (a *queueApp) audit(s *stm.STM) error {
	if err := s.Atomically(a.q.CheckInvariants); err != nil {
		return fmt.Errorf("harness: audit queue: %w", err)
	}
	return nil
}

// omapApp drives container.OMap with keys doubling as values: point
// ops walk the tower path, and the mix's range op scans
// [key, key+RangeSpan) as one consistent read set.
type omapApp struct {
	noMaintenance
	m    *container.OMap[int, int]
	keys workload.KeyDist
	mix  workload.OpMix
	cfg  Config
}

func (a *omapApp) seed(s *stm.STM, rng *rand.Rand) error {
	return seedHalf(s, a.cfg, a.keys, rng, func(tx *stm.Tx, key int) error {
		_, _, err := a.m.Put(tx, key, key)
		return err
	})
}

func (a *omapApp) mixName() string { return a.mix.Name() }

func (a *omapApp) draw(rng *rand.Rand) opDesc {
	return opDesc{op: a.mix.Sample(rng), key: a.keys.Sample(rng)}
}

func (a *omapApp) step(tx *stm.Tx, d opDesc) error {
	var err error
	switch d.op {
	case workload.OpInsert:
		_, _, err = a.m.Put(tx, d.key, d.key)
	case workload.OpDelete:
		_, _, err = a.m.Delete(tx, d.key)
	case workload.OpRange:
		_, err = a.m.Range(tx, d.key, d.key+a.cfg.RangeSpan)
	default:
		_, _, err = a.m.Get(tx, d.key)
	}
	return err
}

func (a *omapApp) audit(s *stm.STM) error {
	if err := s.Atomically(a.m.CheckInvariants); err != nil {
		return fmt.Errorf("harness: audit omap: %w", err)
	}
	return nil
}

// kvApp drives the internal/kv store — the first string-keyed
// application in the harness: the integer keys drawn from the
// distribution index a precomputed name table ("key:000042"), so the
// measured loop samples skew without formatting costs. Point ops map
// to Get/Set/Del; the mix's range op is a consistent MGet over
// RangeSpan consecutive names. The store's shard tables grow under
// load: writes that walk an over-long chain raise the resize signal,
// and the worker drains it in the after hook — a resize is one more
// transaction racing the measured traffic, exactly as in cmd/stmkv.
type kvApp struct {
	store *kv.Store
	names []string
	keys  workload.KeyDist
	mix   workload.OpMix
	cfg   Config
}

// kvShards is the shard count of the harness's kv store: small enough
// that whole-shard scans (resize, audit) stay cheap, large enough that
// point traffic spreads.
const kvShards = 8

func newKVApp(cfg Config, keys workload.KeyDist, mix workload.OpMix) *kvApp {
	names := make([]string, cfg.KeyRange)
	for i := range names {
		if cfg.BinaryKeys {
			names[i] = binName(i)
		} else {
			names[i] = fmt.Sprintf("key:%06d", i)
		}
	}
	return &kvApp{names: names, keys: keys, mix: mix, cfg: cfg}
}

// binName builds a binary-hostile key name — NULs, CRLFs, high bytes
// plus the index — so a -binkeys sweep proves the whole measured path
// (hashing, chains, WAL encoding) is length-prefixed, not
// delimiter-based.
func binName(i int) string {
	return string([]byte{
		0x00, 0xff, '\r', '\n', 0x80, 'k',
		byte(i >> 16), byte(i >> 8), byte(i),
	})
}

func (a *kvApp) seed(s *stm.STM, rng *rand.Rand) error {
	// The store binds to the run's STM, so it is built at seed time
	// (newApp runs before the STM exists). Initial buckets are kept
	// small relative to the key range: the seeding pass itself drives
	// the first resizes, and the measured window inherits a table at
	// its natural load factor.
	buckets := a.cfg.Buckets / kvShards
	if buckets < 2 {
		buckets = 2
	}
	a.store = kv.New(s, kv.WithShards(kvShards), kv.WithBuckets(buckets))
	for i := 0; i < a.cfg.KeyRange/2; i++ {
		key := a.keys.Sample(rng)
		if err := a.store.Set(a.names[key], strconv.Itoa(key)); err != nil {
			return err
		}
	}
	return nil
}

func (a *kvApp) mixName() string { return a.mix.Name() }

func (a *kvApp) draw(rng *rand.Rand) opDesc {
	return opDesc{op: a.mix.Sample(rng), key: a.keys.Sample(rng), now: a.store.Now()}
}

func (a *kvApp) step(tx *stm.Tx, d opDesc) error {
	switch d.op {
	case workload.OpInsert:
		return a.store.SetTx(tx, d.now, a.names[d.key], a.names[d.key], 0)
	case workload.OpDelete:
		_, err := a.store.DelTx(tx, d.now, a.names[d.key])
		return err
	case workload.OpRange:
		// Consistent multi-key read over RangeSpan consecutive names —
		// the MGET shape, crossing shard boundaries on purpose.
		for j := d.key; j < d.key+a.cfg.RangeSpan; j++ {
			if _, _, err := a.store.GetTx(tx, d.now, a.names[j%len(a.names)]); err != nil {
				return err
			}
		}
		return nil
	default:
		_, _, err := a.store.GetTx(tx, d.now, a.names[d.key])
		return err
	}
}

// after drains pending shard-resize signals — the serving layer's
// between-transaction grooming, here so a measured run exercises
// transactional resize under whatever manager the figure sweeps.
func (a *kvApp) after(s *stm.STM) error { return a.store.Groom() }

func (a *kvApp) audit(s *stm.STM) error {
	if err := a.store.CheckInvariants(); err != nil {
		return fmt.Errorf("harness: audit kv: %w", err)
	}
	return nil
}

// jobsApp drives the kv store's container kinds through one shared
// pipeline — the Figure 10 application. Every job lives in exactly
// one of three typed keys: a pending list ("jobs:pending"), an active
// sorted set ("jobs:active", keyed by priority), and a done marker
// counted in a stats hash. The measured verbs are the pipeline's
// stages, each a single transaction spanning two container kinds:
//
//	submit   RPUSH pending + HINCRBY stats submitted:<shard>
//	promote  LPOP pending → ZADD active + HINCRBY stats promoted:<shard>
//	complete ZRANGE active 0 0 → ZREM + HINCRBY stats done:<shard>
//	query    LLEN + ZCARD + one stats field — the consistent read
//
// Promote and complete fall back to submit when their source is empty
// so every committed transaction does real cross-type work; the stats
// counters are sharded four ways (key&3) so the hash is contended but
// not a single hot field. Conservation — every submitted job is
// pending, active, or done — is the audit invariant.
type jobsApp struct {
	store *kv.Store
	keys  workload.KeyDist
	cfg   Config
}

const (
	jobsPending = "jobs:pending"
	jobsActive  = "jobs:active"
	jobsStats   = "jobs:stats"
	jobsShards  = 4
)

// jobsVerbLabels name the pipeline's verbs for the flight recorder,
// indexed by opDesc.verb. Interned once at package init: InternLabel
// takes a process-wide mutex, which must never sit on the drawn path.
var jobsVerbLabels = [4]stm.Label{
	stm.InternLabel("jobs:submit"),
	stm.InternLabel("jobs:promote"),
	stm.InternLabel("jobs:complete"),
	stm.InternLabel("jobs:query"),
}

// label implements labeler: a traced Figure 10 run attributes its
// convoy by verb ("promote waits on complete") instead of showing one
// anonymous pile-up.
func (a *jobsApp) label(d opDesc) stm.Label {
	if d.verb < 0 || d.verb >= len(jobsVerbLabels) {
		return jobsVerbLabels[0]
	}
	return jobsVerbLabels[d.verb]
}

func (a *jobsApp) seed(s *stm.STM, rng *rand.Rand) error {
	buckets := a.cfg.Buckets / kvShards
	if buckets < 2 {
		buckets = 2
	}
	a.store = kv.New(s, kv.WithShards(kvShards), kv.WithBuckets(buckets))
	// Seed a backlog so promote and complete do real work from the
	// first measured transaction: half the key range pending, a quarter
	// already active.
	now := a.store.Now()
	for i := 0; i < a.cfg.KeyRange/2; i++ {
		d := a.drawFor(rng, 0)
		if err := s.Atomically(func(tx *stm.Tx) error { return a.step(tx, d) }); err != nil {
			return err
		}
	}
	for i := 0; i < a.cfg.KeyRange/4; i++ {
		// Draw the score before entering the transaction: a retry must
		// replay the same decision, not advance the RNG again (txpure).
		score := rng.Float64() * 100
		err := s.Atomically(func(tx *stm.Tx) error {
			job, ok, err := a.store.LPopTx(tx, now, jobsPending)
			if err != nil || !ok {
				return err
			}
			_, err = a.store.ZAddTx(tx, now, jobsActive, job, score)
			return err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (a *jobsApp) mixName() string { return "" }

// drawFor fixes one operation with the given verb; draw samples the
// verb from the pipeline mix: 40% submit, 30% promote, 20% complete,
// 10% query.
func (a *jobsApp) drawFor(rng *rand.Rand, verb int) opDesc {
	return opDesc{
		verb:  verb,
		key:   a.keys.Sample(rng),
		id:    strconv.FormatUint(rng.Uint64(), 36),
		score: rng.Float64() * 100,
		now:   a.store.Now(),
	}
}

func (a *jobsApp) draw(rng *rand.Rand) opDesc {
	verb := 0
	switch p := rng.Float64(); {
	case p < 0.40:
		verb = 0 // submit
	case p < 0.70:
		verb = 1 // promote
	case p < 0.90:
		verb = 2 // complete
	default:
		verb = 3 // query
	}
	return a.drawFor(rng, verb)
}

// submit is the shared push+count step; promote and complete fall
// back to it when their source container is empty.
func (a *jobsApp) submit(tx *stm.Tx, d opDesc) error {
	if _, err := a.store.RPushTx(tx, d.now, jobsPending, d.id); err != nil {
		return err
	}
	_, err := a.store.HIncrTx(tx, d.now, jobsStats, "submitted:"+strconv.Itoa(d.key&(jobsShards-1)), 1)
	return err
}

func (a *jobsApp) step(tx *stm.Tx, d opDesc) error {
	shard := strconv.Itoa(d.key & (jobsShards - 1))
	switch d.verb {
	case 1: // promote: pending list → active zset, one transaction
		job, ok, err := a.store.LPopTx(tx, d.now, jobsPending)
		if err != nil {
			return err
		}
		if !ok {
			return a.submit(tx, d)
		}
		if _, err := a.store.ZAddTx(tx, d.now, jobsActive, job, d.score); err != nil {
			return err
		}
		_, err = a.store.HIncrTx(tx, d.now, jobsStats, "promoted:"+shard, 1)
		return err
	case 2: // complete: best active job → done counter
		entries, err := a.store.ZRangeTx(tx, d.now, jobsActive, 0, 0)
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			return a.submit(tx, d)
		}
		if _, err := a.store.ZRemTx(tx, d.now, jobsActive, entries[0].Member); err != nil {
			return err
		}
		_, err = a.store.HIncrTx(tx, d.now, jobsStats, "done:"+shard, 1)
		return err
	case 3: // query: consistent snapshot across all three kinds
		if _, err := a.store.LLenTx(tx, d.now, jobsPending); err != nil {
			return err
		}
		if _, err := a.store.ZCardTx(tx, d.now, jobsActive); err != nil {
			return err
		}
		_, _, err := a.store.HGetTx(tx, d.now, jobsStats, "submitted:"+shard)
		return err
	default:
		return a.submit(tx, d)
	}
}

func (a *jobsApp) after(s *stm.STM) error { return a.store.Groom() }

// audit checks conservation in one consistent transaction: every
// submitted job is pending, active, or done — nothing lost, nothing
// duplicated — then runs the store's structural invariants.
func (a *jobsApp) audit(s *stm.STM) error {
	now := a.store.Now()
	err := s.Atomically(func(tx *stm.Tx) error {
		pending, err := a.store.LLenTx(tx, now, jobsPending)
		if err != nil {
			return err
		}
		active, err := a.store.ZCardTx(tx, now, jobsActive)
		if err != nil {
			return err
		}
		stats, err := a.store.HGetAllTx(tx, now, jobsStats)
		if err != nil {
			return err
		}
		var submitted, done int64
		for _, f := range stats {
			n, err := strconv.ParseInt(f.V, 10, 64)
			if err != nil {
				return fmt.Errorf("stats field %s=%q: %w", f.K, f.V, err)
			}
			switch {
			case len(f.K) > 10 && f.K[:10] == "submitted:":
				submitted += n
			case len(f.K) > 5 && f.K[:5] == "done:":
				done += n
			}
		}
		if submitted != int64(pending+active)+done {
			return fmt.Errorf("conservation broken: submitted %d != pending %d + active %d + done %d",
				submitted, pending, active, done)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("harness: audit jobs: %w", err)
	}
	if err := a.store.CheckInvariants(); err != nil {
		return fmt.Errorf("harness: audit jobs: %w", err)
	}
	return nil
}

// kvwalApp is the kv application with a write-ahead log attached
// (Figure 9): every measured write transaction additionally captures
// its write set and enqueues it from the commit hook, so the figure
// prices the logging path — capture, stripe-held enqueue, group-commit
// handoff — against Figure 8's in-memory baseline. Records are logged
// without a durability ack (kv.Store.SealLogAsync): workers measure
// logging overhead, not the disk's fsync latency, which the group
// commit amortizes off the commit path anyway.
type kvwalApp struct {
	*kvApp
	walDir string
	log    *wal.Log
}

func (a *kvwalApp) seed(s *stm.STM, rng *rand.Rand) error {
	dir, err := os.MkdirTemp("", "stmbench-wal-")
	if err != nil {
		return fmt.Errorf("harness: wal dir: %w", err)
	}
	a.walDir = dir
	// Seeding runs without the log attached: the figure measures
	// steady-state logging, not the seeding burst.
	if err := a.kvApp.seed(s, rng); err != nil {
		return err
	}
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return fmt.Errorf("harness: wal open: %w", err)
	}
	a.log = l
	a.store.AttachWAL(l)
	return nil
}

func (a *kvwalApp) step(tx *stm.Tx, d opDesc) error {
	a.store.ArmLog(tx)
	if err := a.kvApp.step(tx, d); err != nil {
		return err
	}
	a.store.SealLogAsync(tx)
	return nil
}

// close releases the run's log and scratch directory; the harness
// calls it through the optional closer interface after the run.
func (a *kvwalApp) close() error {
	var err error
	if a.log != nil {
		err = a.log.Close()
	}
	if a.walDir != "" {
		if rerr := os.RemoveAll(a.walDir); err == nil {
			err = rerr
		}
	}
	return err
}
