package harness_test

import (
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/workload"
)

func TestRunContainerStructures(t *testing.T) {
	for _, structure := range harness.ContainerStructures {
		structure := structure
		t.Run(structure, func(t *testing.T) {
			point, err := harness.Run(quickCfg(structure, "greedy", 2))
			if err != nil {
				t.Fatal(err)
			}
			if point.Commits <= 0 {
				t.Fatalf("no commits measured: %+v", point)
			}
			if point.Structure != structure || point.Manager != "greedy" || point.Threads != 2 {
				t.Fatalf("point mislabelled: %+v", point)
			}
			if point.Mix != "update" {
				t.Fatalf("container point carries mix %q, want %q", point.Mix, "update")
			}
		})
	}
}

func TestRunContainerMixes(t *testing.T) {
	for _, mix := range []string{"readheavy", "mixed", "rangeheavy"} {
		mix := mix
		t.Run(mix, func(t *testing.T) {
			for _, structure := range harness.ContainerStructures {
				cfg := quickCfg(structure, "karma", 2)
				cfg.Mix = mix
				point, err := harness.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if point.Commits <= 0 {
					t.Fatalf("%s/%s: no commits measured", structure, mix)
				}
				if point.Mix != mix {
					t.Fatalf("%s: point carries mix %q, want %q", structure, point.Mix, mix)
				}
			}
		})
	}
}

func TestRunContainerZipf(t *testing.T) {
	cfg := quickCfg("omap", "greedy", 4)
	cfg.KeyDist = "zipf:1.2"
	cfg.Mix = "mixed"
	point, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if point.Commits <= 0 {
		t.Fatalf("no commits under zipf keys: %+v", point)
	}
}

// TestRunKVStructure runs the kv application — the harness's first
// string-keyed workload — under both key distributions, with the
// audit on so the store's shard/bucket invariants are verified after
// the run, and checks the point records its distribution (empty for
// uniform, named for skew).
func TestRunKVStructure(t *testing.T) {
	cfg := quickCfg("kv", "greedy", 4)
	cfg.Mix = "mixed"
	cfg.Audit = true
	point, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if point.Commits <= 0 {
		t.Fatalf("no commits measured: %+v", point)
	}
	if point.KeyDist != "" {
		t.Fatalf("uniform point carries key_dist %q, want empty", point.KeyDist)
	}
	cfg.KeyDist = "zipf"
	point, err = harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if point.Commits <= 0 {
		t.Fatalf("no commits under zipf: %+v", point)
	}
	if point.KeyDist != "zipf(1.1)" {
		t.Fatalf("zipf point carries key_dist %q, want %q", point.KeyDist, "zipf(1.1)")
	}
}

// TestRunKVWALStructure runs the durable kv application (Figure 9's
// workload): every measured write is captured and logged to a real
// write-ahead log in a scratch directory, with binary-hostile keys so
// the whole measured path — hashing, chains, WAL framing — handles
// arbitrary bytes, and the audit on. The closer hook removes the
// scratch directory after the run.
func TestRunKVWALStructure(t *testing.T) {
	cfg := quickCfg("kvwal", "greedy", 4)
	cfg.Mix = "mixed"
	cfg.KeyDist = "zipf"
	cfg.BinaryKeys = true
	cfg.Audit = true
	point, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if point.Commits <= 0 {
		t.Fatalf("no commits measured: %+v", point)
	}
	if point.Structure != "kvwal" {
		t.Fatalf("point structure %q, want kvwal", point.Structure)
	}
}

// TestRunJobsStructure runs the cross-type pipeline (Figure 10's
// workload): every measured transaction spans at least two container
// kinds, and the audit checks job conservation — submitted == pending
// + active + done — in one consistent snapshot plus the store's
// structural invariants.
func TestRunJobsStructure(t *testing.T) {
	cfg := quickCfg("jobs", "greedy", 4)
	cfg.Audit = true
	point, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if point.Commits <= 0 {
		t.Fatalf("no commits measured: %+v", point)
	}
	if point.Structure != "jobs" {
		t.Fatalf("point structure %q, want jobs", point.Structure)
	}
	if point.Mix != "" {
		t.Fatalf("jobs point carries mix %q, want empty (fixed pipeline mix)", point.Mix)
	}
}

// TestJobsFigureSweep runs Figure 10 across two managers and checks
// labelling, with the conservation audit on at every point.
func TestJobsFigureSweep(t *testing.T) {
	fig, err := harness.FigureByID(10)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Structure != "jobs" {
		t.Fatalf("figure 10 = %+v, want jobs", fig)
	}
	points, err := harness.RunFigure(fig, harness.FigureOptions{
		Duration: 25 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Threads:  []int{1, 4},
		Managers: []string{"greedy", "karma"},
		Audit:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("sweep produced %d points, want 4", len(points))
	}
	for _, p := range points {
		if p.Figure != 10 || p.Structure != "jobs" {
			t.Fatalf("point mislabelled: %+v", p)
		}
		if p.CommitsPerSec <= 0 {
			t.Fatalf("no throughput at %+v", p)
		}
	}
}

// TestKVFigureDefaultsToSkew: figure 8 runs zipf unless the caller
// overrides, and an explicit override wins.
func TestKVFigureDefaultsToSkew(t *testing.T) {
	fig, err := harness.FigureByID(8)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Structure != "kv" || fig.KeyDist != "zipf" {
		t.Fatalf("figure 8 = %+v, want kv/zipf", fig)
	}
	points, err := harness.RunFigure(fig, harness.FigureOptions{
		Duration: 25 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Threads:  []int{2},
		Managers: []string{"greedy"},
		Audit:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].KeyDist != "zipf(1.1)" {
		t.Fatalf("figure 8 points = %+v, want one zipf(1.1) point", points)
	}
	points, err = harness.RunFigure(fig, harness.FigureOptions{
		Duration: 25 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Threads:  []int{2},
		Managers: []string{"greedy"},
		KeyDist:  "uniform",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].KeyDist != "" {
		t.Fatalf("override points = %+v, want one uniform point", points)
	}
}

func TestRunRejectsBadMix(t *testing.T) {
	cfg := quickCfg("hashset", "greedy", 1)
	cfg.Mix = "writeonly"
	if _, err := harness.Run(cfg); err == nil {
		t.Fatal("unknown op mix accepted")
	}
}

func TestIntsetIgnoresMixLabel(t *testing.T) {
	cfg := quickCfg("list", "greedy", 1)
	cfg.Mix = "readheavy"
	point, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if point.Mix != "" {
		t.Fatalf("intset point carries mix %q, want empty (fixed paper workload)", point.Mix)
	}
}

func TestStructuresListsEverything(t *testing.T) {
	got := harness.Structures()
	want := []string{"list", "skiplist", "rbtree", "rbforest", "hashset", "queue", "omap", "kv", "kvwal", "jobs"}
	if len(got) != len(want) {
		t.Fatalf("Structures() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Structures()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestStructureFigure(t *testing.T) {
	for _, structure := range harness.Structures() {
		fig, err := harness.StructureFigure(structure)
		if err != nil {
			t.Fatalf("StructureFigure(%q): %v", structure, err)
		}
		if fig.ID != 0 || fig.Structure != structure {
			t.Fatalf("StructureFigure(%q) = %+v", structure, fig)
		}
	}
	if _, err := harness.StructureFigure("btree"); err == nil {
		t.Fatal("unknown structure accepted")
	}
}

func TestContainerFigureSweep(t *testing.T) {
	fig, err := harness.FigureByID(6) // the queue figure
	if err != nil {
		t.Fatal(err)
	}
	points, err := harness.RunFigure(fig, harness.FigureOptions{
		Duration: 25 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Threads:  []int{1, 2},
		Managers: []string{"greedy", "karma"},
		Audit:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("sweep produced %d points, want 4", len(points))
	}
	for _, p := range points {
		if p.Figure != 6 || p.Structure != "queue" {
			t.Fatalf("point mislabelled: %+v", p)
		}
		if p.CommitsPerSec <= 0 {
			t.Fatalf("no throughput at %+v", p)
		}
	}
}

// TestMixPresetsExported pins the preset names the harness documents
// to what workload actually exports.
func TestMixPresetsExported(t *testing.T) {
	for _, m := range []workload.OpMix{workload.UpdateMix, workload.ReadHeavyMix, workload.MixedMix, workload.RangeMix} {
		if _, err := workload.NewOpMix(m.Name()); err != nil {
			t.Fatalf("preset %q not reachable by name: %v", m.Name(), err)
		}
	}
}
