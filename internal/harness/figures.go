package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Figure describes one evaluation figure: which benchmark
// application, which contention scenario, and which manager series to
// plot against the thread count.
type Figure struct {
	// ID is the figure number: 1-4 are the paper's, 5-7 the container
	// extensions, 8-10 the kv-store applications.
	ID int
	// Name is the caption.
	Name string
	// Structure is the benchmark application.
	Structure string
	// Mix is the container op mix (see Config.Mix); empty selects the
	// default update mix, and the intset structures ignore it.
	Mix string
	// KeyDist is the figure's key distribution (see Config.KeyDist);
	// empty selects uniform, the paper's workload. The kv figure runs
	// skewed traffic by default — real key-value traffic concentrates
	// on hot keys.
	KeyDist string
	// TailWork is the uncontended in-transaction tail (Figure 3's low
	// contention scenario); zero elsewhere.
	TailWork int
	// ForestAllProb applies to the forest only.
	ForestAllProb float64
	// Managers are the plotted series.
	Managers []string
	// Threads are the x-axis sample points.
	Threads []int
}

// DefaultThreads samples the paper's 1..32 thread range, extended
// with 64- and 128-goroutine points: the striped commit protocol
// removed the global writer-commit lock that made thread counts past
// 32 meaningless, so the sweeps now measure the post-paper range too.
var DefaultThreads = []int{1, 2, 4, 8, 16, 24, 32, 64, 128}

// Figures are the paper's four evaluation figures (1-4) plus the
// container-subsystem extensions (5-7): the same manager series over
// the contention profiles the paper's structures cannot produce —
// disjoint hash buckets, a two-variable FIFO hot spot, and skip-list
// range scans competing with point writers.
var Figures = []Figure{
	{
		ID:        1,
		Name:      "List application",
		Structure: "list",
		Managers:  core.FigureManagers,
		Threads:   DefaultThreads,
	},
	{
		ID:        2,
		Name:      "Skiplist application",
		Structure: "skiplist",
		Managers:  core.FigureManagers,
		Threads:   DefaultThreads,
	},
	{
		ID:        3,
		Name:      "Red-black application (low contention)",
		Structure: "rbtree",
		TailWork:  4000,
		Managers:  core.FigureManagers,
		Threads:   DefaultThreads,
	},
	{
		ID:            4,
		Name:          "Red-black forest application",
		Structure:     "rbforest",
		ForestAllProb: 0.1,
		Managers:      core.FigureManagers,
		Threads:       DefaultThreads,
	},
	{
		ID:        5,
		Name:      "Hash set application (disjoint buckets)",
		Structure: "hashset",
		Mix:       "update",
		Managers:  core.FigureManagers,
		Threads:   DefaultThreads,
	},
	{
		ID:        6,
		Name:      "FIFO queue application (head/tail hot spots)",
		Structure: "queue",
		Mix:       "update",
		Managers:  core.FigureManagers,
		Threads:   DefaultThreads,
	},
	{
		ID:        7,
		Name:      "Ordered map application (range scans vs point writes)",
		Structure: "omap",
		Mix:       "mixed",
		Managers:  core.FigureManagers,
		Threads:   DefaultThreads,
	},
	{
		ID:        8,
		Name:      "KV store application (string keys, skewed traffic)",
		Structure: "kv",
		Mix:       "mixed",
		KeyDist:   "zipf",
		Managers:  core.FigureManagers,
		Threads:   DefaultThreads,
	},
	{
		ID:        9,
		Name:      "KV store with write-ahead logging (group commit, async ack)",
		Structure: "kvwal",
		Mix:       "mixed",
		KeyDist:   "zipf",
		Managers:  core.FigureManagers,
		Threads:   DefaultThreads,
	},
	{
		ID:        10,
		Name:      "Cross-type job pipeline (list, zset and hash in one transaction)",
		Structure: "jobs",
		Managers:  core.FigureManagers,
		Threads:   DefaultThreads,
	},
}

// StructureFigure returns a synthetic one-structure figure (ID 0) for
// sweeps selected by structure name rather than figure number —
// stmbench's -structure flag. The name must be one of Structures.
func StructureFigure(name string) (Figure, error) {
	for _, s := range Structures() {
		if s != name {
			continue
		}
		fig := Figure{
			Name:      name + " sweep",
			Structure: name,
			Managers:  core.FigureManagers,
			Threads:   DefaultThreads,
		}
		// Inherit the structure's intrinsic parameters from its
		// canonical numbered figure so a -structure sweep stays in
		// lockstep if the figure is ever retuned. TailWork is left at
		// zero and Mix at the default on purpose: those are scenario
		// knobs (Figure 3's low-contention tail, Figure 7's mixed
		// traffic), not properties of the structure.
		for _, f := range Figures {
			if f.Structure == name {
				fig.ForestAllProb = f.ForestAllProb
				break
			}
		}
		return fig, nil
	}
	return Figure{}, fmt.Errorf("harness: unknown structure %q (have %v)", name, Structures())
}

// FigureByID returns the figure definition for the paper's figure
// number.
func FigureByID(id int) (Figure, error) {
	for _, f := range Figures {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("harness: no figure %d (have 1-%d)", id, len(Figures))
}

// FigureOptions tune a figure run without changing what it measures.
type FigureOptions struct {
	// Duration per point (default 300ms).
	Duration time.Duration
	// Warmup per point (default 50ms).
	Warmup time.Duration
	// Threads overrides the figure's thread samples when non-empty.
	Threads []int
	// Managers overrides the figure's manager series when non-empty.
	Managers []string
	// Seed for workload reproducibility.
	Seed uint64
	// Audit structural integrity after every point.
	Audit bool
	// KeyDist overrides the figure's key distribution when non-empty
	// (see Config.KeyDist).
	KeyDist string
	// Mix overrides the figure's container op mix when non-empty (see
	// Config.Mix).
	Mix string
	// BinaryKeys switches the kv applications to a binary-hostile key
	// table (see Config.BinaryKeys).
	BinaryKeys bool
	// TxTrace samples 1 in N transactions into the flight recorder's
	// conflict matrix (see Config.TxTrace); zero disables tracing.
	TxTrace int
	// Progress, when non-nil, receives each point as it completes.
	Progress func(Point)
}

// RunFigure measures every (manager, threads) point of the figure and
// returns the points grouped in manager-major order.
func RunFigure(fig Figure, opts FigureOptions) ([]Point, error) {
	threads := fig.Threads
	if len(opts.Threads) > 0 {
		threads = opts.Threads
	}
	managers := fig.Managers
	if len(opts.Managers) > 0 {
		managers = opts.Managers
	}
	mix := fig.Mix
	if opts.Mix != "" {
		mix = opts.Mix
	}
	keyDist := fig.KeyDist
	if opts.KeyDist != "" {
		keyDist = opts.KeyDist
	}
	var points []Point
	for _, mgr := range managers {
		for _, th := range threads {
			cfg := Config{
				Structure:     fig.Structure,
				Manager:       mgr,
				Threads:       th,
				Duration:      opts.Duration,
				Warmup:        opts.Warmup,
				TailWork:      fig.TailWork,
				ForestAllProb: fig.ForestAllProb,
				Seed:          opts.Seed,
				Audit:         opts.Audit,
				KeyDist:       keyDist,
				Mix:           mix,
				BinaryKeys:    opts.BinaryKeys,
				TxTrace:       opts.TxTrace,
			}
			point, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("figure %d, %s x%d: %w", fig.ID, mgr, th, err)
			}
			point.Figure = fig.ID
			if opts.Progress != nil {
				opts.Progress(point)
			}
			points = append(points, point)
		}
	}
	return points, nil
}
