package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Figure describes one of the paper's evaluation figures: which
// benchmark application, which contention scenario, and which manager
// series to plot against the thread count.
type Figure struct {
	// ID is the paper's figure number (1-4).
	ID int
	// Name is the paper's caption.
	Name string
	// Structure is the benchmark application.
	Structure string
	// TailWork is the uncontended in-transaction tail (Figure 3's low
	// contention scenario); zero elsewhere.
	TailWork int
	// ForestAllProb applies to the forest only.
	ForestAllProb float64
	// Managers are the plotted series.
	Managers []string
	// Threads are the x-axis sample points.
	Threads []int
}

// DefaultThreads samples the paper's 1..32 thread range.
var DefaultThreads = []int{1, 2, 4, 8, 16, 24, 32}

// Figures are the paper's four evaluation figures.
var Figures = []Figure{
	{
		ID:        1,
		Name:      "List application",
		Structure: "list",
		Managers:  core.FigureManagers,
		Threads:   DefaultThreads,
	},
	{
		ID:        2,
		Name:      "Skiplist application",
		Structure: "skiplist",
		Managers:  core.FigureManagers,
		Threads:   DefaultThreads,
	},
	{
		ID:        3,
		Name:      "Red-black application (low contention)",
		Structure: "rbtree",
		TailWork:  4000,
		Managers:  core.FigureManagers,
		Threads:   DefaultThreads,
	},
	{
		ID:            4,
		Name:          "Red-black forest application",
		Structure:     "rbforest",
		ForestAllProb: 0.1,
		Managers:      core.FigureManagers,
		Threads:       DefaultThreads,
	},
}

// FigureByID returns the figure definition for the paper's figure
// number.
func FigureByID(id int) (Figure, error) {
	for _, f := range Figures {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("harness: no figure %d (have 1-%d)", id, len(Figures))
}

// FigureOptions tune a figure run without changing what it measures.
type FigureOptions struct {
	// Duration per point (default 300ms).
	Duration time.Duration
	// Warmup per point (default 50ms).
	Warmup time.Duration
	// Threads overrides the figure's thread samples when non-empty.
	Threads []int
	// Managers overrides the figure's manager series when non-empty.
	Managers []string
	// Seed for workload reproducibility.
	Seed uint64
	// Audit structural integrity after every point.
	Audit bool
	// KeyDist overrides the key distribution (see Config.KeyDist).
	KeyDist string
	// Progress, when non-nil, receives each point as it completes.
	Progress func(Point)
}

// RunFigure measures every (manager, threads) point of the figure and
// returns the points grouped in manager-major order.
func RunFigure(fig Figure, opts FigureOptions) ([]Point, error) {
	threads := fig.Threads
	if len(opts.Threads) > 0 {
		threads = opts.Threads
	}
	managers := fig.Managers
	if len(opts.Managers) > 0 {
		managers = opts.Managers
	}
	var points []Point
	for _, mgr := range managers {
		for _, th := range threads {
			cfg := Config{
				Structure:     fig.Structure,
				Manager:       mgr,
				Threads:       th,
				Duration:      opts.Duration,
				Warmup:        opts.Warmup,
				TailWork:      fig.TailWork,
				ForestAllProb: fig.ForestAllProb,
				Seed:          opts.Seed,
				Audit:         opts.Audit,
				KeyDist:       opts.KeyDist,
			}
			point, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("figure %d, %s x%d: %w", fig.ID, mgr, th, err)
			}
			point.Figure = fig.ID
			if opts.Progress != nil {
				opts.Progress(point)
			}
			points = append(points, point)
		}
	}
	return points, nil
}
