// Package harness drives the benchmark workloads against the STM: a
// configurable number of worker threads continuously operating on a
// shared structure (forcing contention), under a chosen contention
// manager, with committed transactions per second as the reported
// metric. The applications are the paper's four intset structures
// (Figures 1–4) and the container subsystem's hash set, FIFO queue
// and ordered map (Figures 5–7), the latter with configurable
// lookup/insert/delete/range op mixes (see workload.NewOpMix).
package harness

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stm"
	"repro/internal/workload"
)

// Config describes one benchmark run (one point of a figure).
type Config struct {
	// Structure is the benchmark application: one of the paper's four
	// ("list", "skiplist", "rbtree", "rbforest") or a container
	// structure ("hashset", "queue", "omap") — see Structures.
	Structure string
	// Manager is the contention manager's registry name.
	Manager string
	// Threads is the number of worker goroutines (the figures' x
	// axis).
	Threads int
	// Duration is the measurement window.
	Duration time.Duration
	// Warmup runs before measurement starts (populates the structure
	// and lets the scheduler settle).
	Warmup time.Duration
	// KeyRange is the key universe; the paper uses a small set of 256
	// integers to force contention.
	KeyRange int
	// KeyDist names the key distribution: "uniform" (the paper's
	// workload, default), "zipf" or "zipf:<exponent>" for skewed
	// contention concentrated on hot keys.
	KeyDist string
	// Mix names the container op mix (see workload.NewOpMix):
	// "update" (the paper's 50/50 insert/delete, default),
	// "readheavy", "mixed", "rangeheavy" or explicit "w:l,i,d,r"
	// weights. The intset structures always run the paper's fixed
	// update workload; the mix applies to the container structures.
	Mix string
	// RangeSpan is how many keys (omap) or items (queue) a range
	// operation covers; default 16.
	RangeSpan int
	// Buckets is the hashset bucket count; default 64.
	Buckets int
	// TailWork adds an uncontended computation of roughly TailWork
	// arithmetic steps at the end of every transaction, reproducing
	// Figure 3's low-contention scenario ("threads perform
	// computations unrelated to the effective transactions at the
	// end").
	TailWork int
	// ForestAllProb is the probability that a red-black forest
	// operation updates all trees rather than one, producing the
	// high-variance transaction lengths of Figure 4.
	ForestAllProb float64
	// Interleave is the STM's yield period in object opens: on hosts
	// with fewer cores than workers it makes transactions genuinely
	// overlap (see stm.WithInterleavePeriod). Zero selects the default
	// (4); negative disables yielding.
	Interleave int
	// BinaryKeys switches the kv applications' key table to
	// binary-hostile names (NULs, CRLFs, high bytes) — an end-to-end
	// check that nothing in the measured path is delimiter-based. The
	// integer-keyed structures ignore it.
	BinaryKeys bool
	// Seed makes the workload reproducible.
	Seed uint64
	// Audit verifies structural integrity after the run.
	Audit bool
	// TxTrace, when positive, installs the STM flight recorder sampling
	// 1 in TxTrace transactions into a conflict matrix (see
	// obs.Conflicts). The measured Point then carries the top-K hottest
	// variables and who-waits-on-whom decision edges next to its
	// throughput. Zero (the default) leaves tracing compiled out of the
	// measured path entirely — the recorder hooks stay nil-gated.
	TxTrace int
}

// withDefaults fills the zero fields with the paper's parameters.
func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Duration <= 0 {
		c.Duration = 300 * time.Millisecond
	}
	if c.Warmup <= 0 {
		c.Warmup = 50 * time.Millisecond
	}
	if c.KeyRange <= 0 {
		c.KeyRange = 256
	}
	if c.ForestAllProb <= 0 {
		c.ForestAllProb = 0.1
	}
	if c.Interleave == 0 {
		c.Interleave = 4
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	if c.RangeSpan <= 0 {
		c.RangeSpan = 16
	}
	if c.Buckets <= 0 {
		c.Buckets = 64
	}
	return c
}

// Point is one measured datum: a (structure, manager, threads) triple
// with its throughput.
type Point struct {
	Structure string
	Manager   string
	Threads   int
	// Mix is the op mix the point ran (empty for the intset
	// structures, which always run the paper's fixed update workload).
	Mix string
	// KeyDist is the key distribution the point ran, empty for
	// uniform (the paper's default) so historical records compare.
	KeyDist string
	// Figure is the paper figure the point belongs to; zero when the
	// point was run outside a figure sweep (RunFigure stamps it).
	Figure int
	// CommitsPerSec is the figures' y axis: committed transactions
	// per second during the measurement window.
	CommitsPerSec float64
	// Commits is the raw number of commits inside the window.
	Commits int64
	// Aborts, Conflicts and EnemyAborts aggregate the run's totals
	// (window plus warmup).
	Aborts      int64
	Conflicts   int64
	EnemyAborts int64
	// AbortsEnemy, AbortsValidation and AbortsCASRace partition Aborts
	// by cause (see stm.Stats); AbortsUser counts user-error aborts,
	// which are not retried and sit outside the partition. They come
	// from the engine's always-on counters, so they are exact even when
	// TxTrace is off.
	AbortsEnemy      int64
	AbortsValidation int64
	AbortsCASRace    int64
	AbortsUser       int64
	// AbortRate is total aborts / total attempts for the whole run.
	AbortRate float64
	// WaitNs and BackoffNs aggregate the run's time spent waiting on
	// the contention manager's say-so (policy) and in engine-level
	// backoff (mechanism) — see stm.Stats. Wait time is the quantity
	// behind the paper's worst cases: Karma's Figure 10 collapse is
	// threads waiting ~100 resolutions per abort.
	WaitNs    int64
	BackoffNs int64
	// Latency is the distribution of per-transaction wall times
	// (including retries — the paper's Theorem 1 is a statement about
	// exactly this worst case).
	Latency metrics.Histogram
	// CommitLatency is the engine-side distribution of successful
	// Atomically calls (first attempt through commit), merged across
	// the run's sessions. Unlike Latency it excludes the harness's
	// draw/after bookkeeping — the two disagreeing is itself a signal.
	CommitLatency metrics.Histogram
	// HotVars and HotEdges are the flight recorder's attribution: the
	// top-K most conflicted named variables and the hottest
	// aggressor→victim decision edges, from the sampled conflict
	// matrix. Populated only when Config.TxTrace is on; the counts are
	// sample counts, not run totals.
	HotVars  []obs.HotObject
	HotEdges []obs.ConflictEdge
}

// pointTopK is how many hot variables and decision edges a traced
// point keeps — enough to name a convoy, small enough for a CSV cell.
const pointTopK = 5

// Run executes one benchmark configuration.
func Run(cfg Config) (Point, error) {
	cfg = cfg.withDefaults()
	factory, err := core.Factory(cfg.Manager)
	if err != nil {
		return Point{}, err
	}
	keys, err := workload.NewKeyDist(cfg.KeyDist, cfg.KeyRange)
	if err != nil {
		return Point{}, err
	}
	mix, err := workload.NewOpMix(cfg.Mix)
	if err != nil {
		return Point{}, err
	}
	application, err := newApp(cfg, keys, mix)
	if err != nil {
		return Point{}, err
	}
	// Apps holding external resources (the kvwal app's log and scratch
	// directory) release them through the optional closer interface.
	if c, ok := application.(closer); ok {
		defer func() { _ = c.close() }()
	}
	interleave := cfg.Interleave
	if interleave < 0 {
		interleave = 0
	}
	// The STM carries the contention-manager factory; workers are
	// plain goroutines calling s.Atomically, each served by a pooled
	// session with its own manager instance. With cfg.Threads workers
	// in flight the pool holds cfg.Threads sessions, so the
	// manager-per-concurrent-transaction model of the paper's sweeps
	// is preserved without pinning.
	stmOpts := []stm.Option{stm.WithInterleavePeriod(interleave), stm.WithManagerFactory(factory)}
	// The flight recorder is opt-in per run: without it the hook sites
	// stay nil-gated, so an untraced sweep measures exactly what it
	// measured before the recorder existed.
	var conflicts *obs.Conflicts
	if cfg.TxTrace > 0 {
		conflicts = obs.NewConflicts(cfg.Manager)
		stmOpts = append(stmOpts, stm.WithTracer(conflicts, cfg.TxTrace))
	}
	s := stm.New(stmOpts...)

	seedRng := rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15))
	if err := application.seed(s, seedRng); err != nil {
		return Point{}, fmt.Errorf("harness: seeding: %w", err)
	}

	var stop atomic.Bool
	workerErrs := make([]error, cfg.Threads)
	latencies := make([]metrics.Histogram, cfg.Threads)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(w)+1, uint64(w)*0x9e37+1))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerErrs[w] = work(&stop, s, application, rng, cfg, &latencies[w])
		}(w)
	}

	// The atomic per-STM counters make TotalStats safe mid-run, so the
	// measurement window is delimited by two live snapshots instead of
	// per-worker commit counters read at quiescence.
	time.Sleep(cfg.Warmup)
	before := s.TotalStats().Commits
	start := time.Now()
	time.Sleep(cfg.Duration)
	after := s.TotalStats().Commits
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()
	for _, err := range workerErrs {
		if err != nil {
			return Point{}, err
		}
	}

	total := s.TotalStats()
	distName := keys.Name()
	if distName == "uniform" {
		distName = "" // the default; keep point records comparable
	}
	point := Point{
		Structure:     cfg.Structure,
		Manager:       cfg.Manager,
		Threads:       cfg.Threads,
		Mix:           application.mixName(),
		KeyDist:       distName,
		Commits:       after - before,
		CommitsPerSec: float64(after-before) / elapsed.Seconds(),
		Aborts:        total.Aborts,
		Conflicts:     total.Conflicts,
		EnemyAborts:   total.EnemyAborts,
		AbortRate:     total.AbortRate(),
		WaitNs:        total.WaitNs,
		BackoffNs:     total.BackoffNs,

		AbortsEnemy:      total.AbortsEnemy,
		AbortsValidation: total.AbortsValidation,
		AbortsCASRace:    total.AbortsCASRace,
		AbortsUser:       total.AbortsUser,
	}
	if conflicts != nil {
		snap := conflicts.Snapshot(pointTopK)
		point.HotVars = snap.HotObjects
		point.HotEdges = snap.Edges
	}
	for i := range latencies {
		point.Latency.Merge(&latencies[i])
	}
	point.CommitLatency.Merge(s.CommitLatency())
	if cfg.Audit {
		if err := application.audit(s); err != nil {
			return Point{}, err
		}
	}
	return point, nil
}

// errStopped cancels a worker's in-flight operation when the
// measurement window has closed. Without it a livelock-prone manager
// (the paper's "aggressive" can ping-pong aborts forever under
// symmetric load) would leave two workers retrying against each other
// after the run, and the harness would never join them. The sentinel
// is not ErrAborted, so Atomically surfaces it instead of retrying.
var errStopped = errors.New("harness: measurement window closed")

// work is one worker's loop: draw an operation outside the
// transaction (transactional functions must be retry-safe), run it
// through the goroutine-agnostic entry point, record the latency. One
// transactional closure serves the whole run — the drawn operation is
// passed through a captured variable — so the measured loop allocates
// nothing of its own per transaction.
func work(stop *atomic.Bool, s *stm.STM, application app, rng *rand.Rand, cfg Config, lat *metrics.Histogram) error {
	var d opDesc
	// Apps that can name their operations (the jobs pipeline's verbs)
	// label each transaction so the conflict matrix's decision edges
	// read "promote waits on complete" instead of two anonymous rows.
	// The label is an interned id; setting it is one atomic store.
	lb, _ := application.(labeler)
	var lbl stm.Label
	fn := func(tx *stm.Tx) error {
		if stop.Load() {
			return errStopped
		}
		if lb != nil {
			tx.SetLabel(lbl)
		}
		if err := application.step(tx, d); err != nil {
			return err
		}
		spin(cfg.TailWork)
		return nil
	}
	for !stop.Load() {
		opStart := time.Now()
		d = application.draw(rng)
		if lb != nil {
			lbl = lb.label(d)
		}
		err := s.Atomically(fn)
		if errors.Is(err, errStopped) {
			return nil
		}
		if err == nil {
			err = application.after(s)
		}
		if err != nil {
			return fmt.Errorf("harness: worker: %w", err)
		}
		lat.Observe(time.Since(opStart))
	}
	return nil
}

// spinSink defeats dead-code elimination of the tail work.
var spinSink atomic.Uint64

// spin performs n steps of local arithmetic — the uncontended work at
// the end of a transaction in the low-contention scenario.
func spin(n int) {
	if n <= 0 {
		return
	}
	x := uint64(88172645463325252)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink.Store(x)
}
