// Package harness drives the paper's benchmark workloads (Figures
// 1–4) against the STM: a configurable number of worker threads
// continuously inserting and removing random keys from a small key
// range (forcing contention), under a chosen contention manager, with
// committed transactions per second as the reported metric.
package harness

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/metrics"
	"repro/internal/stm"
	"repro/internal/workload"
)

// Config describes one benchmark run (one point of a figure).
type Config struct {
	// Structure is the benchmark application: "list", "skiplist",
	// "rbtree" or "rbforest".
	Structure string
	// Manager is the contention manager's registry name.
	Manager string
	// Threads is the number of worker goroutines (the figures' x
	// axis).
	Threads int
	// Duration is the measurement window.
	Duration time.Duration
	// Warmup runs before measurement starts (populates the structure
	// and lets the scheduler settle).
	Warmup time.Duration
	// KeyRange is the key universe; the paper uses a small set of 256
	// integers to force contention.
	KeyRange int
	// KeyDist names the key distribution: "uniform" (the paper's
	// workload, default), "zipf" or "zipf:<exponent>" for skewed
	// contention concentrated on hot keys.
	KeyDist string
	// TailWork adds an uncontended computation of roughly TailWork
	// arithmetic steps at the end of every transaction, reproducing
	// Figure 3's low-contention scenario ("threads perform
	// computations unrelated to the effective transactions at the
	// end").
	TailWork int
	// ForestAllProb is the probability that a red-black forest
	// operation updates all trees rather than one, producing the
	// high-variance transaction lengths of Figure 4.
	ForestAllProb float64
	// Interleave is the STM's yield period in object opens: on hosts
	// with fewer cores than workers it makes transactions genuinely
	// overlap (see stm.WithInterleavePeriod). Zero selects the default
	// (4); negative disables yielding.
	Interleave int
	// Seed makes the workload reproducible.
	Seed uint64
	// Audit verifies structural integrity after the run.
	Audit bool
}

// withDefaults fills the zero fields with the paper's parameters.
func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Duration <= 0 {
		c.Duration = 300 * time.Millisecond
	}
	if c.Warmup <= 0 {
		c.Warmup = 50 * time.Millisecond
	}
	if c.KeyRange <= 0 {
		c.KeyRange = 256
	}
	if c.ForestAllProb <= 0 {
		c.ForestAllProb = 0.1
	}
	if c.Interleave == 0 {
		c.Interleave = 4
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	return c
}

// Point is one measured datum: a (structure, manager, threads) triple
// with its throughput.
type Point struct {
	Structure string
	Manager   string
	Threads   int
	// Figure is the paper figure the point belongs to; zero when the
	// point was run outside a figure sweep (RunFigure stamps it).
	Figure int
	// CommitsPerSec is the figures' y axis: committed transactions
	// per second during the measurement window.
	CommitsPerSec float64
	// Commits is the raw number of commits inside the window.
	Commits int64
	// Aborts, Conflicts and EnemyAborts aggregate the run's totals
	// (window plus warmup).
	Aborts      int64
	Conflicts   int64
	EnemyAborts int64
	// AbortRate is total aborts / total attempts for the whole run.
	AbortRate float64
	// Latency is the distribution of per-transaction wall times
	// (including retries — the paper's Theorem 1 is a statement about
	// exactly this worst case).
	Latency metrics.Histogram
}

// Run executes one benchmark configuration.
func Run(cfg Config) (Point, error) {
	cfg = cfg.withDefaults()
	factory, err := core.Factory(cfg.Manager)
	if err != nil {
		return Point{}, err
	}
	set, err := intset.NewByName(cfg.Structure)
	if err != nil {
		return Point{}, err
	}
	keys, err := workload.NewKeyDist(cfg.KeyDist, cfg.KeyRange)
	if err != nil {
		return Point{}, err
	}
	interleave := cfg.Interleave
	if interleave < 0 {
		interleave = 0
	}
	// The STM carries the contention-manager factory; workers are
	// plain goroutines calling s.Atomically, each served by a pooled
	// session with its own manager instance. With cfg.Threads workers
	// in flight the pool holds cfg.Threads sessions, so the
	// manager-per-concurrent-transaction model of the paper's sweeps
	// is preserved without pinning.
	s := stm.New(stm.WithInterleavePeriod(interleave), stm.WithManagerFactory(factory))

	// Pre-populate to roughly half occupancy so inserts and removes
	// both do real work from the first measured transaction.
	seedRng := rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15))
	for i := 0; i < cfg.KeyRange/2; i++ {
		key := keys.Sample(seedRng)
		if err := s.Atomically(func(tx *stm.Tx) error {
			_, err := set.Insert(tx, key)
			return err
		}); err != nil {
			return Point{}, fmt.Errorf("harness: seeding: %w", err)
		}
	}

	var stop atomic.Bool
	workerErrs := make([]error, cfg.Threads)
	latencies := make([]metrics.Histogram, cfg.Threads)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(w)+1, uint64(w)*0x9e37+1))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerErrs[w] = work(&stop, s, set, keys, rng, cfg, &latencies[w])
		}(w)
	}

	// The atomic per-STM counters make TotalStats safe mid-run, so the
	// measurement window is delimited by two live snapshots instead of
	// per-worker commit counters read at quiescence.
	time.Sleep(cfg.Warmup)
	before := s.TotalStats().Commits
	start := time.Now()
	time.Sleep(cfg.Duration)
	after := s.TotalStats().Commits
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()
	for _, err := range workerErrs {
		if err != nil {
			return Point{}, err
		}
	}

	total := s.TotalStats()
	point := Point{
		Structure:     cfg.Structure,
		Manager:       cfg.Manager,
		Threads:       cfg.Threads,
		Commits:       after - before,
		CommitsPerSec: float64(after-before) / elapsed.Seconds(),
		Aborts:        total.Aborts,
		Conflicts:     total.Conflicts,
		EnemyAborts:   total.EnemyAborts,
		AbortRate:     total.AbortRate(),
	}
	for i := range latencies {
		point.Latency.Merge(&latencies[i])
	}
	if cfg.Audit {
		if err := audit(s, set, cfg); err != nil {
			return Point{}, err
		}
	}
	return point, nil
}

// errStopped cancels a worker's in-flight operation when the
// measurement window has closed. Without it a livelock-prone manager
// (the paper's "aggressive" can ping-pong aborts forever under
// symmetric load) would leave two workers retrying against each other
// after the run, and the harness would never join them. The sentinel
// is not ErrAborted, so Atomically surfaces it instead of retrying.
var errStopped = errors.New("harness: measurement window closed")

// work is one worker's loop: pick an operation outside the
// transaction (transactional functions must be retry-safe), run it
// through the goroutine-agnostic entry point, record the latency.
func work(stop *atomic.Bool, s *stm.STM, set intset.Set, keys workload.KeyDist, rng *rand.Rand, cfg Config, lat *metrics.Histogram) error {
	forest, isForest := set.(*intset.RBForest)
	for !stop.Load() {
		opStart := time.Now()
		key := keys.Sample(rng)
		insert := rng.Int64N(2) == 0 // 100% updates, half insert half remove
		all := isForest && rng.Float64() < cfg.ForestAllProb
		tree := 0
		if isForest {
			tree = int(rng.Int64N(int64(forest.Size())))
		}
		err := s.Atomically(func(tx *stm.Tx) error {
			if stop.Load() {
				return errStopped
			}
			var err error
			switch {
			case isForest && all && insert:
				_, err = forest.InsertAll(tx, key)
			case isForest && all:
				_, err = forest.RemoveAll(tx, key)
			case isForest && insert:
				_, err = forest.InsertOne(tx, tree, key)
			case isForest:
				_, err = forest.RemoveOne(tx, tree, key)
			case insert:
				_, err = set.Insert(tx, key)
			default:
				_, err = set.Remove(tx, key)
			}
			if err != nil {
				return err
			}
			spin(cfg.TailWork)
			return nil
		})
		if errors.Is(err, errStopped) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("harness: worker: %w", err)
		}
		lat.Observe(time.Since(opStart))
	}
	return nil
}

// spinSink defeats dead-code elimination of the tail work.
var spinSink atomic.Uint64

// spin performs n steps of local arithmetic — the uncontended work at
// the end of a transaction in the low-contention scenario.
func spin(n int) {
	if n <= 0 {
		return
	}
	x := uint64(88172645463325252)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink.Store(x)
}

// audit verifies the structure after a run: keys strictly ascending,
// Contains agreeing with Keys, and red-black invariants where
// applicable.
func audit(s *stm.STM, set intset.Set, cfg Config) error {
	keys, err := stm.Atomic(s, func(tx *stm.Tx) ([]int, error) {
		return set.Keys(tx)
	})
	if err != nil {
		return fmt.Errorf("harness: audit keys: %w", err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return fmt.Errorf("harness: audit: keys not strictly ascending at %d: %v", i, keys[i-1:i+1])
		}
	}
	switch v := set.(type) {
	case *intset.RBTree:
		if err := s.Atomically(v.CheckInvariants); err != nil {
			return fmt.Errorf("harness: audit rbtree: %w", err)
		}
	case *intset.RBForest:
		for i := 0; i < v.Size(); i++ {
			if err := s.Atomically(v.Tree(i).CheckInvariants); err != nil {
				return fmt.Errorf("harness: audit forest tree %d: %w", i, err)
			}
		}
	}
	return nil
}
