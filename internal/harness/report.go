package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// pointJSON is the machine-readable form of a Point for -json output
// and BENCH_*.json trajectory tracking. The latency histogram is
// flattened to its tracked quantiles; Figure carries the paper figure
// the point belongs to (0 when run outside a figure sweep).
type pointJSON struct {
	Figure        int     `json:"figure,omitempty"`
	Structure     string  `json:"structure"`
	Manager       string  `json:"manager"`
	Threads       int     `json:"threads"`
	Mix           string  `json:"mix,omitempty"`
	KeyDist       string  `json:"key_dist,omitempty"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	Commits       int64   `json:"commits"`
	Aborts        int64   `json:"aborts"`
	Conflicts     int64   `json:"conflicts"`
	EnemyAborts   int64   `json:"enemy_aborts"`
	AbortRate     float64 `json:"abort_rate"`
	WaitNs        int64   `json:"wait_ns,omitempty"`
	BackoffNs     int64   `json:"backoff_ns,omitempty"`
	// The per-cause abort partition (always exact; omitted when zero
	// so pre-recorder trajectory records stay byte-comparable).
	AbortsEnemy      int64   `json:"aborts_enemy,omitempty"`
	AbortsValidation int64   `json:"aborts_validation,omitempty"`
	AbortsCASRace    int64   `json:"aborts_cas_race,omitempty"`
	AbortsUser       int64   `json:"aborts_user,omitempty"`
	LatP50Us         float64 `json:"lat_p50_us"`
	LatP99Us         float64 `json:"lat_p99_us"`
	LatMaxUs         float64 `json:"lat_max_us"`
	CommitP50Us      float64 `json:"commit_p50_us,omitempty"`
	CommitP99Us      float64 `json:"commit_p99_us,omitempty"`
	// Flight-recorder attribution, present only on traced runs
	// (Config.TxTrace > 0): top-K hot variables and decision edges.
	HotVars  []obs.HotObject    `json:"hot_vars,omitempty"`
	HotEdges []obs.ConflictEdge `json:"hot_edges,omitempty"`
}

// WriteJSON emits the points as an indented JSON array; each point
// carries the figure it was measured for (Point.Figure, stamped by
// RunFigure), so multi-figure runs stay distinguishable in one stream.
func WriteJSON(w io.Writer, points []Point) error {
	out := make([]pointJSON, len(points))
	for i, p := range points {
		out[i] = pointJSON{
			Figure:        p.Figure,
			Structure:     p.Structure,
			Manager:       p.Manager,
			Threads:       p.Threads,
			Mix:           p.Mix,
			KeyDist:       p.KeyDist,
			CommitsPerSec: p.CommitsPerSec,
			Commits:       p.Commits,
			Aborts:        p.Aborts,
			Conflicts:     p.Conflicts,
			EnemyAborts:   p.EnemyAborts,
			AbortRate:     p.AbortRate,
			WaitNs:        p.WaitNs,
			BackoffNs:     p.BackoffNs,

			AbortsEnemy:      p.AbortsEnemy,
			AbortsValidation: p.AbortsValidation,
			AbortsCASRace:    p.AbortsCASRace,
			AbortsUser:       p.AbortsUser,
			HotVars:          p.HotVars,
			HotEdges:         p.HotEdges,

			LatP50Us:    float64(p.Latency.Quantile(0.50).Nanoseconds()) / 1e3,
			LatP99Us:    float64(p.Latency.Quantile(0.99).Nanoseconds()) / 1e3,
			LatMaxUs:    float64(p.Latency.Max().Nanoseconds()) / 1e3,
			CommitP50Us: float64(p.CommitLatency.Quantile(0.50).Nanoseconds()) / 1e3,
			CommitP99Us: float64(p.CommitLatency.Quantile(0.99).Nanoseconds()) / 1e3,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV emits the points as CSV with a header row, suitable for
// re-plotting the paper's figures.
func WriteCSV(w io.Writer, points []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"structure", "manager", "threads", "commits_per_sec", "commits", "aborts", "conflicts", "abort_rate", "wait_ns", "backoff_ns", "aborts_enemy", "aborts_validation", "aborts_cas_race", "lat_p50_us", "lat_p99_us", "lat_max_us", "commit_p50_us", "commit_p99_us", "hot_vars"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			p.Structure,
			p.Manager,
			strconv.Itoa(p.Threads),
			strconv.FormatFloat(p.CommitsPerSec, 'f', 1, 64),
			strconv.FormatInt(p.Commits, 10),
			strconv.FormatInt(p.Aborts, 10),
			strconv.FormatInt(p.Conflicts, 10),
			strconv.FormatFloat(p.AbortRate, 'f', 4, 64),
			strconv.FormatInt(p.WaitNs, 10),
			strconv.FormatInt(p.BackoffNs, 10),
			strconv.FormatInt(p.AbortsEnemy, 10),
			strconv.FormatInt(p.AbortsValidation, 10),
			strconv.FormatInt(p.AbortsCASRace, 10),
			strconv.FormatFloat(float64(p.Latency.Quantile(0.50).Microseconds()), 'f', 0, 64),
			strconv.FormatFloat(float64(p.Latency.Quantile(0.99).Microseconds()), 'f', 0, 64),
			strconv.FormatFloat(float64(p.Latency.Max().Microseconds()), 'f', 0, 64),
			strconv.FormatFloat(float64(p.CommitLatency.Quantile(0.50).Microseconds()), 'f', 0, 64),
			strconv.FormatFloat(float64(p.CommitLatency.Quantile(0.99).Microseconds()), 'f', 0, 64),
			hotVarsCell(p.HotVars),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// hotVarsCell flattens the traced top-K into one CSV cell:
// "kv:shard:12=143;jobs:pending=88" (object=conflict count). Empty on
// untraced runs, so the column is present but blank.
func hotVarsCell(vars []obs.HotObject) string {
	if len(vars) == 0 {
		return ""
	}
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = v.Obj + "=" + strconv.FormatInt(v.Conflicts, 10)
	}
	return strings.Join(parts, ";")
}

// WriteTable renders the points as the figure's series table: one row
// per manager, one column per thread count, committed transactions per
// second in the cells — the same series the paper plots.
func WriteTable(w io.Writer, title string, points []Point) error {
	threadSet := map[int]bool{}
	managerOrder := []string{}
	seenMgr := map[string]bool{}
	cell := map[string]map[int]float64{}
	for _, p := range points {
		threadSet[p.Threads] = true
		if !seenMgr[p.Manager] {
			seenMgr[p.Manager] = true
			managerOrder = append(managerOrder, p.Manager)
			cell[p.Manager] = map[int]float64{}
		}
		cell[p.Manager][p.Threads] = p.CommitsPerSec
	}
	threads := make([]int, 0, len(threadSet))
	for t := range threadSet {
		threads = append(threads, t)
	}
	sort.Ints(threads)

	if _, err := fmt.Fprintf(w, "%s\ncommitted transactions per second vs number of threads\n\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-14s", "manager"); err != nil {
		return err
	}
	for _, t := range threads {
		if _, err := fmt.Fprintf(w, "%10d", t); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, mgr := range managerOrder {
		if _, err := fmt.Fprintf(w, "%-14s", mgr); err != nil {
			return err
		}
		for _, t := range threads {
			if v, ok := cell[mgr][t]; ok {
				if _, err := fmt.Fprintf(w, "%10.0f", v); err != nil {
					return err
				}
			} else if _, err := fmt.Fprintf(w, "%10s", "-"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
