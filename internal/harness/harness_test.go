package harness_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// quickCfg returns a configuration small enough for CI but large
// enough to exercise real contention.
func quickCfg(structure, manager string, threads int) harness.Config {
	return harness.Config{
		Structure: structure,
		Manager:   manager,
		Threads:   threads,
		Duration:  40 * time.Millisecond,
		Warmup:    10 * time.Millisecond,
		KeyRange:  64,
		Audit:     true,
	}
}

func TestRunProducesThroughput(t *testing.T) {
	for _, structure := range []string{"list", "skiplist", "rbtree"} {
		structure := structure
		t.Run(structure, func(t *testing.T) {
			point, err := harness.Run(quickCfg(structure, "greedy", 2))
			if err != nil {
				t.Fatal(err)
			}
			if point.Commits <= 0 {
				t.Fatalf("no commits measured: %+v", point)
			}
			if point.CommitsPerSec <= 0 {
				t.Fatalf("throughput = %f, want positive", point.CommitsPerSec)
			}
			if point.Structure != structure || point.Manager != "greedy" || point.Threads != 2 {
				t.Fatalf("point mislabelled: %+v", point)
			}
		})
	}
}

func TestRunForestWithAllUpdates(t *testing.T) {
	cfg := quickCfg("rbforest", "greedy", 2)
	cfg.ForestAllProb = 0.3
	cfg.Duration = 60 * time.Millisecond
	point, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if point.Commits <= 0 {
		t.Fatalf("no commits measured: %+v", point)
	}
}

func TestRunEveryFigureManager(t *testing.T) {
	for _, mgr := range []string{"eruption", "greedy", "aggressive", "backoff", "karma"} {
		mgr := mgr
		t.Run(mgr, func(t *testing.T) {
			point, err := harness.Run(quickCfg("list", mgr, 3))
			if err != nil {
				t.Fatal(err)
			}
			if point.Commits <= 0 {
				t.Fatalf("no commits under %s", mgr)
			}
		})
	}
}

func TestRunZipfKeys(t *testing.T) {
	cfg := quickCfg("rbtree", "greedy", 4)
	cfg.KeyDist = "zipf:1.2"
	point, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if point.Commits <= 0 {
		t.Fatalf("no commits under zipf keys: %+v", point)
	}
}

func TestRunRejectsBadKeyDist(t *testing.T) {
	cfg := quickCfg("list", "greedy", 1)
	cfg.KeyDist = "pareto"
	if _, err := harness.Run(cfg); err == nil {
		t.Fatal("unknown key distribution accepted")
	}
}

func TestRunRejectsUnknownInputs(t *testing.T) {
	if _, err := harness.Run(quickCfg("btree", "greedy", 1)); err == nil {
		t.Fatal("unknown structure accepted")
	}
	if _, err := harness.Run(quickCfg("list", "nonexistent", 1)); err == nil {
		t.Fatal("unknown manager accepted")
	}
}

func TestTailWorkLowersThroughput(t *testing.T) {
	fast, err := harness.Run(quickCfg("rbtree", "greedy", 1))
	if err != nil {
		t.Fatal(err)
	}
	slowCfg := quickCfg("rbtree", "greedy", 1)
	slowCfg.TailWork = 20000
	slow, err := harness.Run(slowCfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.CommitsPerSec >= fast.CommitsPerSec {
		t.Fatalf("tail work did not lower throughput: %.0f >= %.0f",
			slow.CommitsPerSec, fast.CommitsPerSec)
	}
}

func TestFigureByID(t *testing.T) {
	for id := 1; id <= 4; id++ {
		fig, err := harness.FigureByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if fig.ID != id {
			t.Fatalf("FigureByID(%d).ID = %d", id, fig.ID)
		}
		if len(fig.Managers) != 5 {
			t.Fatalf("figure %d has %d managers, want the paper's 5", id, len(fig.Managers))
		}
	}
	if _, err := harness.FigureByID(len(harness.Figures) + 1); err == nil {
		t.Fatal("FigureByID past the last figure should fail")
	}
}

func TestRunFigureTinySweep(t *testing.T) {
	fig, err := harness.FigureByID(1)
	if err != nil {
		t.Fatal(err)
	}
	var progressed int
	points, err := harness.RunFigure(fig, harness.FigureOptions{
		Duration: 25 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Threads:  []int{1, 2},
		Managers: []string{"greedy", "aggressive"},
		Progress: func(harness.Point) { progressed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	if progressed != 4 {
		t.Fatalf("progress callback fired %d times, want 4", progressed)
	}
}

func TestWriteCSVAndTable(t *testing.T) {
	points := []harness.Point{
		{Structure: "list", Manager: "greedy", Threads: 1, CommitsPerSec: 1000, Commits: 100},
		{Structure: "list", Manager: "greedy", Threads: 2, CommitsPerSec: 900, Commits: 90},
		{Structure: "list", Manager: "karma", Threads: 1, CommitsPerSec: 800, Commits: 80},
	}
	var csvBuf strings.Builder
	if err := harness.WriteCSV(&csvBuf, points); err != nil {
		t.Fatal(err)
	}
	out := csvBuf.String()
	if !strings.Contains(out, "structure,manager,threads") {
		t.Fatalf("CSV missing header: %q", out)
	}
	if !strings.Contains(out, "list,greedy,1,1000.0") {
		t.Fatalf("CSV missing data row: %q", out)
	}

	var tblBuf strings.Builder
	if err := harness.WriteTable(&tblBuf, "Figure 1: List application", points); err != nil {
		t.Fatal(err)
	}
	tbl := tblBuf.String()
	for _, want := range []string{"Figure 1", "greedy", "karma", "1000"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	// karma has no 2-thread point: the table renders a dash, not a
	// stale or zero cell.
	if !strings.Contains(tbl, "-") {
		t.Fatalf("table missing placeholder for absent cell:\n%s", tbl)
	}
}

func TestWriteCSVIncludesLatencyColumns(t *testing.T) {
	var p harness.Point
	p.Structure, p.Manager, p.Threads = "list", "greedy", 1
	p.Latency.Observe(100 * time.Microsecond)
	var sb strings.Builder
	if err := harness.WriteCSV(&sb, []harness.Point{p}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, col := range []string{"lat_p50_us", "lat_p99_us", "lat_max_us"} {
		if !strings.Contains(out, col) {
			t.Fatalf("CSV missing %q:\n%s", col, out)
		}
	}
}
