package sched

// Adversary builds the paper's Section 4 worst-case instance for the
// greedy manager: transactions T0..Ts over objects X1..Xs (indices
// 0..s-1 here), each of one time unit (m ticks):
//
//   - Ti has an earlier timestamp than Ti-1 (Ts is the oldest);
//   - at time 0, each Ti with 0 <= i < s opens X_{i+1};
//   - at time 1-ε ("the last tick"), each Ti with i >= 1 opens X_i,
//     in turn aborting Ti-1; Ts opens only Xs, at the last tick.
//
// Greedy completes one transaction per round, for a makespan of s+1
// time units, while an optimal list schedule (evens then odds) takes
// 2. The makespan ratio therefore grows linearly in s even though the
// Theorem 9 bound is quadratic; whether the quadratic bound is tight
// is the paper's open problem.
//
// m must be at least 2 so "time 0" and "time 1-ε" are distinct ticks.
func Adversary(s, m int) *Instance {
	if s < 1 {
		s = 1
	}
	if m < 2 {
		m = 2
	}
	specs := make([]TxSpec, s+1)
	for i := 0; i <= s; i++ {
		var accesses []Access
		if i < s {
			accesses = append(accesses, Access{Offset: 0, Object: i}) // X_{i+1}
		}
		if i >= 1 {
			accesses = append(accesses, Access{Offset: m - 1, Object: i - 1}) // X_i
		}
		// Keep offsets sorted (the i < s access has offset 0).
		specs[i] = TxSpec{
			ID:        i,
			Length:    m,
			Timestamp: s - i, // Ts oldest
			Accesses:  accesses,
			Label:     txLabel(i),
		}
	}
	return &Instance{Specs: specs, Objects: s}
}

func txLabel(i int) string {
	return "T" + itoa(i)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// AdversaryTaskSystem is the corresponding Garey–Graham task system
// (Section 4.2's T*_j construction): each transaction becomes a task
// of the same length requiring one unit of every object it touches for
// its whole duration. Its optimal makespan is 2 time units (2m ticks):
// the even-indexed transactions are pairwise disjoint, as are the odd.
func AdversaryTaskSystem(s, m int) *System {
	if s < 1 {
		s = 1
	}
	if m < 2 {
		m = 2
	}
	tasks := make([]Task, s+1)
	for i := 0; i <= s; i++ {
		need := make(map[int]float64)
		if i < s {
			need[i] = 1 // X_{i+1}
		}
		if i >= 1 {
			need[i-1] = 1 // X_i
		}
		tasks[i] = Task{ID: i, Length: m, Need: need}
	}
	return &System{Tasks: tasks, Resources: s}
}

// EvenOddOrder is the list order that achieves the optimal makespan 2
// on the adversary task system: all even transactions, then all odd.
func EvenOddOrder(n int) []int {
	var order []int
	for i := 0; i < n; i += 2 {
		order = append(order, i)
	}
	for i := 1; i < n; i += 2 {
		order = append(order, i)
	}
	return order
}

// LivelockInstance is the two-transaction instance that livelocks an
// always-abort policy: both transactions open the same object at the
// start of an attempt of length m >= 2, so whichever transaction is
// mid-flight is aborted by the other's restart before it can commit,
// forever ("if a contention manager always advises transactions to
// abort one another, then live-lock can happen").
func LivelockInstance(m int) *Instance {
	if m < 2 {
		m = 2
	}
	return &Instance{
		Objects: 1,
		Specs: []TxSpec{
			{
				ID: 0, Length: m, Timestamp: 0, Label: "T0",
				Accesses: []Access{{Offset: 0, Object: 0}},
			},
			{
				ID: 1, Length: m, Timestamp: 1, Label: "T1",
				Accesses: []Access{{Offset: 0, Object: 0}},
			},
		},
	}
}

// CycleInstance is the two-transaction cyclic-conflict instance that
// deadlocks an always-wait policy and livelocks an always-abort one:
// T0 opens A then B, T1 opens B then A, at mirrored offsets.
func CycleInstance(m int) *Instance {
	if m < 2 {
		m = 2
	}
	return &Instance{
		Objects: 2,
		Specs: []TxSpec{
			{
				ID: 0, Length: m, Timestamp: 0, Label: "T0",
				Accesses: []Access{{Offset: 0, Object: 0}, {Offset: m - 1, Object: 1}},
			},
			{
				ID: 1, Length: m, Timestamp: 1, Label: "T1",
				Accesses: []Access{{Offset: 0, Object: 1}, {Offset: m - 1, Object: 0}},
			},
		},
	}
}
