package sched

import "fmt"

// CheckPendingCommit verifies the pending-commit property on a
// simulation trace: at every tick t earlier than the makespan, some
// action running at t is a committing action (its transaction runs
// uninterrupted from t until it commits). This is the property
// Theorem 9 requires of a contention manager, satisfied by greedy
// (the oldest running transaction neither waits nor is aborted) and
// violated by the always-wait and always-abort extremes.
//
// It returns the first violating tick, or -1 if the property holds.
func CheckPendingCommit(res *Result) int {
	if !res.Completed {
		// An incomplete run violates the property somewhere by
		// definition; report the earliest tick not covered.
		return firstUncovered(res, res.Makespan)
	}
	return firstUncovered(res, res.Makespan)
}

func firstUncovered(res *Result, horizon int) int {
	covered := make([]bool, horizon)
	for _, act := range res.Actions {
		if act.Kind != ActionCommit {
			continue
		}
		for t := act.Start; t < act.End && t < horizon; t++ {
			if t >= 0 {
				covered[t] = true
			}
		}
	}
	for t := 0; t < horizon; t++ {
		if !covered[t] {
			return t
		}
	}
	return -1
}

// VerifyPendingCommit wraps CheckPendingCommit with a descriptive
// error.
func VerifyPendingCommit(res *Result) error {
	if t := CheckPendingCommit(res); t >= 0 {
		return fmt.Errorf("sched: pending-commit property violated at tick %d under %s", t, res.Policy)
	}
	return nil
}
