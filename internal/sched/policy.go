package sched

import "math/rand/v2"

// GreedyPolicy is the paper's greedy manager in the simulator: abort
// the holder if it is younger or waiting, else wait.
type GreedyPolicy struct{}

// Name implements Policy.
func (GreedyPolicy) Name() string { return "greedy" }

// OnConflict implements the two greedy rules.
func (GreedyPolicy) OnConflict(attacker, holder *SimTx) SimDecision {
	if holder.Timestamp() > attacker.Timestamp() || holder.Waiting() {
		return SimAbortHolder
	}
	return SimWait
}

// AggressivePolicy always aborts the holder; under symmetric scripted
// conflicts it livelocks (no one ever commits), the behaviour the
// paper cites to motivate bounded managers.
type AggressivePolicy struct{}

// Name implements Policy.
func (AggressivePolicy) Name() string { return "aggressive" }

// OnConflict implements Policy.
func (AggressivePolicy) OnConflict(attacker, holder *SimTx) SimDecision {
	return SimAbortHolder
}

// TimidPolicy always waits; with cyclic conflict patterns it
// deadlocks, the other failure mode the paper cites ("if a contention
// manager never allows one transaction to abort another, then deadlock
// can happen").
type TimidPolicy struct{}

// Name implements Policy.
func (TimidPolicy) Name() string { return "timid" }

// OnConflict implements Policy.
func (TimidPolicy) OnConflict(attacker, holder *SimTx) SimDecision {
	return SimWait
}

// KarmaPolicy mirrors the Karma manager: cumulative acquisitions are
// priority; an attacker aborts the holder once its priority plus the
// ticks it has already stalled on this conflict exceeds the holder's.
type KarmaPolicy struct {
	stalls map[[2]int]int
}

// NewKarmaPolicy returns a simulator Karma policy.
func NewKarmaPolicy() *KarmaPolicy { return &KarmaPolicy{stalls: make(map[[2]int]int)} }

// Name implements Policy.
func (*KarmaPolicy) Name() string { return "karma" }

// OnConflict implements Policy.
func (k *KarmaPolicy) OnConflict(attacker, holder *SimTx) SimDecision {
	key := [2]int{attacker.Spec.ID, holder.Spec.ID}
	k.stalls[key]++
	if int64(attacker.Opens())+int64(k.stalls[key]) > int64(holder.Opens()) {
		delete(k.stalls, key)
		return SimAbortHolder
	}
	return SimWait
}

// RandomizedPolicy flips a (seeded, deterministic) coin per conflict.
type RandomizedPolicy struct {
	rng *rand.Rand
	p   float64
}

// NewRandomizedPolicy returns a simulator coin-flip policy with abort
// probability p and a fixed seed for reproducible runs.
func NewRandomizedPolicy(p float64, seed uint64) *RandomizedPolicy {
	return &RandomizedPolicy{rng: rand.New(rand.NewPCG(seed, seed^0xdeadbeef)), p: p}
}

// Name implements Policy.
func (*RandomizedPolicy) Name() string { return "randomized" }

// OnConflict implements Policy.
func (r *RandomizedPolicy) OnConflict(attacker, holder *SimTx) SimDecision {
	if r.rng.Float64() < r.p {
		return SimAbortHolder
	}
	return SimWait
}
