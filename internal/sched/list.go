package sched

import "fmt"

// ListSchedule runs the Garey–Graham list scheduler: processors scan
// the list front to back and start the first unstarted task whose
// resources are available; tasks run to completion. With at least as
// many processors as tasks (the paper's setting) this reduces to: at
// every tick, start every unstarted task, in list order, that fits in
// the residual resource capacity.
//
// order must be a permutation of task IDs. Any list schedule is within
// a factor of s+1 of optimal (Garey & Graham 1975), and list schedules
// satisfy the list-scheduler property: no task waits while its
// resources are free.
func (sys *System) ListSchedule(order []int) (*Schedule, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := checkPermutation(order, len(sys.Tasks)); err != nil {
		return nil, err
	}
	n := len(sys.Tasks)
	start := make([]int, n)
	finish := make([]int, n)
	started := make([]bool, n)
	for i := range start {
		start[i] = -1
	}
	makespan := 0
	remaining := n
	for t := 0; remaining > 0; t++ {
		if t > sys.TotalWork()+1 {
			return nil, fmt.Errorf("sched: list scheduler failed to place all tasks by tick %d", t)
		}
		// Residual capacity given tasks running at tick t.
		use := make(map[int]float64, sys.Resources)
		for i := range sys.Tasks {
			if started[i] && t >= start[i] && t < finish[i] {
				for r, need := range sys.Tasks[i].Need {
					use[r] += need
				}
			}
		}
		for _, id := range order {
			if started[id] {
				continue
			}
			task := sys.Tasks[id]
			if !fits(use, task.Need) {
				continue
			}
			started[id] = true
			start[id] = t
			finish[id] = t + task.Length
			remaining--
			for r, need := range task.Need {
				use[r] += need
			}
			if finish[id] > makespan {
				makespan = finish[id]
			}
		}
	}
	return &Schedule{Start: start, Makespan: makespan}, nil
}

// BestListSchedule tries every permutation of the task list and
// returns the best list schedule found. Exponential; intended for the
// small instances of the theory experiments. For n above
// bestListLimit it falls back to a handful of natural orders (by ID,
// by decreasing length, by decreasing resource weight).
func (sys *System) BestListSchedule() (*Schedule, error) {
	n := len(sys.Tasks)
	if n == 0 {
		return &Schedule{Start: nil, Makespan: 0}, nil
	}
	if n > bestListLimit {
		return sys.bestHeuristicList()
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var best *Schedule
	err := permute(order, 0, func(perm []int) error {
		sched, err := sys.ListSchedule(perm)
		if err != nil {
			return err
		}
		if best == nil || sched.Makespan < best.Makespan {
			cp := make([]int, len(sched.Start))
			copy(cp, sched.Start)
			best = &Schedule{Start: cp, Makespan: sched.Makespan}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return best, nil
}

// bestListLimit bounds the exhaustive permutation search (8! = 40320
// list schedules).
const bestListLimit = 8

func (sys *System) bestHeuristicList() (*Schedule, error) {
	n := len(sys.Tasks)
	byID := make([]int, n)
	for i := range byID {
		byID[i] = i
	}
	byLength := make([]int, n)
	copy(byLength, byID)
	sortBy(byLength, func(a, b int) bool { return sys.Tasks[a].Length > sys.Tasks[b].Length })
	byWeight := make([]int, n)
	copy(byWeight, byID)
	weight := func(id int) float64 {
		w := 0.0
		for _, need := range sys.Tasks[id].Need {
			w += need
		}
		return w * float64(sys.Tasks[id].Length)
	}
	sortBy(byWeight, func(a, b int) bool { return weight(a) > weight(b) })

	var best *Schedule
	for _, order := range [][]int{byID, byLength, byWeight} {
		sched, err := sys.ListSchedule(order)
		if err != nil {
			return nil, err
		}
		if best == nil || sched.Makespan < best.Makespan {
			best = sched
		}
	}
	return best, nil
}

func fits(use map[int]float64, need map[int]float64) bool {
	for r, n := range need {
		if use[r]+n > 1+resourceEps {
			return false
		}
	}
	return true
}

func checkPermutation(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("sched: order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, id := range order {
		if id < 0 || id >= n {
			return fmt.Errorf("sched: order entry %d out of range [0,%d)", id, n)
		}
		if seen[id] {
			return fmt.Errorf("sched: order repeats task %d", id)
		}
		seen[id] = true
	}
	return nil
}

// permute invokes fn on every permutation of a[k:] in place.
func permute(a []int, k int, fn func([]int) error) error {
	if k == len(a) {
		return fn(a)
	}
	for i := k; i < len(a); i++ {
		a[k], a[i] = a[i], a[k]
		if err := permute(a, k+1, fn); err != nil {
			return err
		}
		a[k], a[i] = a[i], a[k]
	}
	return nil
}

// sortBy is insertion sort with a custom less, avoiding a sort.Slice
// allocation on tiny slices.
func sortBy(a []int, less func(a, b int) bool) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && less(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
