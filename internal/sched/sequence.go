package sched

import "fmt"

// The paper's closing open problem asks for a makespan analysis of
// threads that execute a sequence of transactions instead of just one.
// This file adds the model: an Instance may partition its transactions
// into per-thread sequences; a transaction with a predecessor cannot
// start until the predecessor commits, and (as in the real STM) it
// takes its timestamp when it first starts, not at time zero. The
// analysis stays open — the machinery here measures.

// SequenceInstance builds an instance of `threads` sequences with
// `perThread` transactions each, over s objects. Transaction j of
// thread i has the given length in ticks and touches `touches` objects
// chosen by a deterministic spread (so runs are reproducible without a
// seed). Timestamps are dynamic: -1 until the simulator assigns one at
// first start, which is exactly how Thread.Atomically stamps
// transactions in the STM.
func SequenceInstance(threads, perThread, s, length, touches int) *Instance {
	if threads < 1 {
		threads = 1
	}
	if perThread < 1 {
		perThread = 1
	}
	if s < 1 {
		s = 1
	}
	if length < 1 {
		length = 1
	}
	if touches < 1 {
		touches = 1
	}
	if touches > s {
		touches = s
	}
	var specs []TxSpec
	sequences := make([][]int, threads)
	for th := 0; th < threads; th++ {
		for j := 0; j < perThread; j++ {
			id := len(specs)
			accesses := make([]Access, 0, touches)
			for a := 0; a < touches; a++ {
				obj := (th + j + a*(th+1)) % s
				offset := (a * (length - 1)) / touches
				accesses = append(accesses, Access{Offset: offset, Object: obj})
			}
			// Offsets are non-decreasing by construction; objects may
			// repeat across a, so deduplicate keeping the earliest.
			accesses = dedupeAccesses(accesses)
			specs = append(specs, TxSpec{
				ID:        id,
				Length:    length,
				Timestamp: DynamicTimestamp,
				Accesses:  accesses,
				Label:     fmt.Sprintf("T%d.%d", th, j),
			})
			sequences[th] = append(sequences[th], id)
		}
	}
	return &Instance{Specs: specs, Objects: s, Sequences: sequences}
}

// dedupeAccesses removes repeated objects, keeping the earliest
// offset; input must be sorted by offset.
func dedupeAccesses(accesses []Access) []Access {
	seen := make(map[int]bool, len(accesses))
	out := accesses[:0]
	for _, acc := range accesses {
		if seen[acc.Object] {
			continue
		}
		seen[acc.Object] = true
		out = append(out, acc)
	}
	return out
}

// SequenceReport compares a policy's makespan on a sequence instance
// against the trivial resource-work lower bound (no policy can beat
// the busiest object's total demand).
type SequenceReport struct {
	Policy     string
	Threads    int
	PerThread  int
	Objects    int
	Makespan   int
	LowerBound int
	// Ratio is Makespan / LowerBound, an upper bound on the true
	// competitive ratio (the optimum lies between the two).
	Ratio float64
	// Completed is false on deadlock/livelock.
	Completed bool
}

// MeasureSequences simulates the instance under the policy and
// reports the makespan against the resource-work lower bound.
func MeasureSequences(ins *Instance, policy Policy) (*SequenceReport, error) {
	res, err := Simulate(ins, policy, 0)
	if err != nil {
		return nil, err
	}
	// Lower bound: the busiest object's total exclusive demand, and
	// the longest sequence's serial length.
	demand := make([]int, ins.Objects)
	for _, spec := range ins.Specs {
		for _, acc := range spec.Accesses {
			demand[acc.Object] += spec.Length - acc.Offset
		}
	}
	lower := 0
	for _, d := range demand {
		if d > lower {
			lower = d
		}
	}
	for _, seq := range ins.Sequences {
		serial := 0
		for _, id := range seq {
			serial += ins.Specs[id].Length
		}
		if serial > lower {
			lower = serial
		}
	}
	if lower == 0 {
		lower = 1
	}
	report := &SequenceReport{
		Policy:     res.Policy,
		Threads:    len(ins.Sequences),
		Objects:    ins.Objects,
		Makespan:   res.Makespan,
		LowerBound: lower,
		Ratio:      float64(res.Makespan) / float64(lower),
		Completed:  res.Completed,
	}
	if report.Threads > 0 {
		report.PerThread = len(ins.Specs) / report.Threads
	}
	return report, nil
}
