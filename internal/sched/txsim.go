package sched

import (
	"fmt"
	"math"
)

// Access is one object acquisition in a transaction's script: at
// Offset ticks into each attempt, the transaction opens Object (for
// writing — the simulator models exclusive accesses, the case the
// paper's adversarial analysis uses).
type Access struct {
	// Offset is the tick offset from the attempt's start; 0 <= Offset
	// < Length of the owning spec.
	Offset int
	// Object is the object index in [0, Instance.Objects).
	Object int
}

// TxSpec scripts one transaction for the simulator. If aborted, the
// transaction restarts the same script from the beginning at the next
// tick, keeping its Timestamp — exactly the paper's model.
type TxSpec struct {
	// ID indexes Instance.Specs; same-tick processing follows ID
	// order, which is how the paper's adversarial cascade ("in turn,
	// each Ti opens Xi") is ordered.
	ID int
	// Length is the attempt duration in ticks.
	Length int
	// Timestamp is the priority stamp: smaller is older is higher
	// priority.
	Timestamp int
	// Accesses are the acquisitions, in non-decreasing Offset order.
	Accesses []Access
	// Label annotates traces (optional).
	Label string
}

// DynamicTimestamp marks a transaction whose timestamp is assigned by
// the simulator when the transaction first starts (how the real STM
// stamps transactions in a sequence), rather than fixed in the script.
const DynamicTimestamp = -1

// Instance is a complete simulator input.
type Instance struct {
	Specs   []TxSpec
	Objects int
	// Sequences optionally partitions transactions into per-thread
	// chains: within a chain, a transaction cannot start until its
	// predecessor commits. Nil means all transactions are concurrent
	// from tick 0 (the paper's main model).
	Sequences [][]int
}

// Validate checks the instance's well-formedness.
func (ins *Instance) Validate() error {
	for i, spec := range ins.Specs {
		if spec.ID != i {
			return fmt.Errorf("sched: spec %d has ID %d; IDs must equal indices", i, spec.ID)
		}
		if spec.Timestamp < 0 && spec.Timestamp != DynamicTimestamp {
			return fmt.Errorf("sched: spec %d has invalid timestamp %d", i, spec.Timestamp)
		}
		if spec.Length <= 0 {
			return fmt.Errorf("sched: spec %d has non-positive length", i)
		}
		last := -1
		for _, acc := range spec.Accesses {
			if acc.Offset < 0 || acc.Offset >= spec.Length {
				return fmt.Errorf("sched: spec %d access offset %d outside [0,%d)", i, acc.Offset, spec.Length)
			}
			if acc.Offset < last {
				return fmt.Errorf("sched: spec %d accesses not sorted by offset", i)
			}
			last = acc.Offset
			if acc.Object < 0 || acc.Object >= ins.Objects {
				return fmt.Errorf("sched: spec %d object %d outside [0,%d)", i, acc.Object, ins.Objects)
			}
		}
	}
	if ins.Sequences != nil {
		seen := make(map[int]bool, len(ins.Specs))
		for si, seq := range ins.Sequences {
			for _, id := range seq {
				if id < 0 || id >= len(ins.Specs) {
					return fmt.Errorf("sched: sequence %d references transaction %d out of range", si, id)
				}
				if seen[id] {
					return fmt.Errorf("sched: transaction %d appears in more than one sequence position", id)
				}
				seen[id] = true
			}
		}
		if len(seen) != len(ins.Specs) {
			return fmt.Errorf("sched: sequences cover %d of %d transactions; they must partition all", len(seen), len(ins.Specs))
		}
	}
	return nil
}

// SimTx is the live state of one scripted transaction, exposed to
// policies. Policies must treat it as read-only except through the
// documented mutators.
type SimTx struct {
	Spec TxSpec

	timestamp int // resolved (possibly dynamic) priority stamp
	started   bool
	pred      *SimTx // sequence predecessor, nil if none

	progress  int
	holds     map[int]bool
	waiting   bool
	waitingOn *SimTx
	committed bool
	aborted   bool // true between an abort and the restart tick
	restartAt int
	commitAt  int
	aborts    int
	opens     int   // cumulative acquisitions (Karma's currency)
	priority  int64 // policy-maintained priority
	// attempt bookkeeping for the pending-commit checker
	actionStart int
}

// Timestamp returns the retained priority stamp (smaller = older).
// For DynamicTimestamp specs it is meaningful only once the
// transaction has started.
func (tx *SimTx) Timestamp() int { return tx.timestamp }

// Waiting reports whether the transaction is currently waiting.
func (tx *SimTx) Waiting() bool { return tx.waiting }

// Committed reports whether the transaction has committed.
func (tx *SimTx) Committed() bool { return tx.committed }

// Aborts returns how many times the transaction has been aborted.
func (tx *SimTx) Aborts() int { return tx.aborts }

// Opens returns the cumulative number of acquisitions across attempts.
func (tx *SimTx) Opens() int { return tx.opens }

// Priority returns the policy-maintained priority accumulator.
func (tx *SimTx) Priority() int64 { return tx.priority }

// AddPriority adjusts the policy-maintained priority accumulator.
func (tx *SimTx) AddPriority(d int64) { tx.priority += d }

// SimDecision is a policy's verdict on a simulated conflict.
type SimDecision int

const (
	// SimWait stalls the attacker for this tick.
	SimWait SimDecision = iota
	// SimAbortHolder aborts the transaction holding the object.
	SimAbortHolder
	// SimAbortAttacker aborts the transaction requesting the object.
	SimAbortAttacker
)

// Policy is a contention-management policy for the simulator.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// OnConflict decides a conflict between the attacker, which wants
	// an object, and the holder, which has it. Called once per tick
	// per unresolved conflict.
	OnConflict(attacker, holder *SimTx) SimDecision
}

// ActionKind classifies how a continuous running interval of a
// transaction ended.
type ActionKind int

const (
	// ActionCommit ends an interval with the transaction's commit.
	ActionCommit ActionKind = iota
	// ActionAbort ends an interval with an abort.
	ActionAbort
	// ActionWait ends an interval because the transaction started
	// waiting.
	ActionWait
)

// Action is a maximal interval [Start, End) during which a transaction
// ran continuously; Kind says how it ended. Together the actions of
// all transactions form the execution E of the paper's Section 4.3.
type Action struct {
	Tx    int
	Start int
	End   int
	Kind  ActionKind
}

// Result is a completed simulation.
type Result struct {
	// Policy is the policy's name.
	Policy string
	// Makespan is the tick at which the last commit happened, or the
	// tick limit when the run did not complete.
	Makespan int
	// Completed reports whether every transaction committed within the
	// tick limit; false indicates deadlock or livelock.
	Completed bool
	// CommitTick[i] is the commit tick of transaction i (-1 if none).
	CommitTick []int
	// AbortCount[i] is the number of aborts suffered by transaction i.
	AbortCount []int
	// Actions is the full action trace for analysis.
	Actions []Action
}

// Observer receives simulator events for debugging and detailed
// experiment traces: event is one of "restart", "acquire", "wait",
// "abort" and "commit"; other is the enemy transaction's ID for
// conflict events and -1 otherwise.
type Observer func(tick int, event string, tx, other int)

// Simulate runs the instance under the policy. maxTicks bounds the
// run; a run that exceeds it reports Completed=false (the signature of
// deadlock with always-wait policies or livelock with always-abort
// ones).
func Simulate(ins *Instance, policy Policy, maxTicks int) (*Result, error) {
	return SimulateObserved(ins, policy, maxTicks, nil)
}

// SimulateObserved is Simulate with an event observer.
func SimulateObserved(ins *Instance, policy Policy, maxTicks int, obs Observer) (*Result, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	if maxTicks <= 0 {
		maxTicks = defaultMaxTicks(ins)
	}
	n := len(ins.Specs)
	txs := make([]*SimTx, n)
	for i := range txs {
		txs[i] = &SimTx{Spec: ins.Specs[i], timestamp: ins.Specs[i].Timestamp, holds: make(map[int]bool), commitAt: -1}
	}
	for _, seq := range ins.Sequences {
		for k := 1; k < len(seq); k++ {
			txs[seq[k]].pred = txs[seq[k-1]]
		}
	}
	// Dynamic timestamps are assigned in start order, after every
	// scripted stamp so mixed instances stay coherent.
	nextStamp := 0
	for _, spec := range ins.Specs {
		if spec.Timestamp >= nextStamp {
			nextStamp = spec.Timestamp + 1
		}
	}
	owner := make([]*SimTx, ins.Objects)
	res := &Result{
		Policy:     policy.Name(),
		CommitTick: make([]int, n),
		AbortCount: make([]int, n),
	}
	for i := range res.CommitTick {
		res.CommitTick[i] = -1
	}

	note := func(tick int, event string, tx, other int) {
		if obs != nil {
			obs(tick, event, tx, other)
		}
	}
	abort := func(victim *SimTx, tick int) {
		if victim.committed || victim.aborted {
			return
		}
		note(tick, "abort", victim.Spec.ID, -1)
		wasWaiting := victim.waiting
		victim.aborted = true
		victim.waiting = false // a dead attempt is not waiting
		victim.waitingOn = nil
		victim.aborts++
		victim.restartAt = tick + 1
		// A victim aborted while waiting has no running interval to
		// close: its last action already ended when the wait began.
		if !wasWaiting && victim.actionStart <= tick {
			res.Actions = append(res.Actions, Action{Tx: victim.Spec.ID, Start: victim.actionStart, End: tick + 1, Kind: ActionAbort})
		}
		for obj := range victim.holds {
			owner[obj] = nil
			delete(victim.holds, obj)
		}
	}

	remaining := n
	tick := 0
	stalledNow := make([]bool, n)
	for ; remaining > 0 && tick < maxTicks; tick++ {
		// Pre-pass — clear stale waiting flags. In the paper's
		// continuous model a waiter stops waiting the instant its
		// enemy commits, aborts or starts waiting; if the flag
		// lingered into this tick a younger transaction processed
		// earlier in phase A could abort a transaction that is in
		// fact about to run, violating the pending-commit property
		// the greedy rules guarantee. (The race is real in the STM
		// implementation, where flag updates are not atomic with the
		// enemy's status change; the simulator models the idealized
		// semantics the theory assumes.)
		for _, tx := range txs {
			if tx.waiting && tx.waitingOn != nil {
				h := tx.waitingOn
				if h.committed || h.aborted || h.waiting {
					tx.waiting = false
					tx.waitingOn = nil
					// The resumed running interval starts now; keeping
					// the old start would let a commit action cover
					// ticks spent waiting and the pending-commit
					// checker would over-approve.
					tx.actionStart = tick
				}
			}
		}
		// Phase A — acquisitions. Every transaction's accesses due at
		// its current offset are attempted, in ID order, before any
		// transaction advances. This realizes the paper's cascade
		// timing: accesses "at time 1-ε" strictly precede commits "at
		// time 1" within the same tick.
		for _, tx := range txs {
			stalledNow[tx.Spec.ID] = false
			if tx.committed {
				continue
			}
			if tx.pred != nil && !tx.pred.committed {
				continue // sequence predecessor still running
			}
			if !tx.started {
				tx.started = true
				tx.actionStart = tick
				if tx.timestamp == DynamicTimestamp {
					tx.timestamp = nextStamp
					nextStamp++
				}
				note(tick, "start", tx.Spec.ID, -1)
			}
			if tx.aborted {
				if tick < tx.restartAt {
					continue
				}
				// Restart the attempt from scratch.
				note(tick, "restart", tx.Spec.ID, -1)
				tx.aborted = false
				tx.waiting = false
				tx.progress = 0
				tx.actionStart = tick
			}
			for _, acc := range tx.Spec.Accesses {
				if acc.Offset != tx.progress || tx.holds[acc.Object] {
					continue
				}
				holder := owner[acc.Object]
				if holder != nil && holder != tx && !holder.committed && !holder.aborted {
					switch policy.OnConflict(tx, holder) {
					case SimAbortHolder:
						abort(holder, tick)
					case SimAbortAttacker:
						abort(tx, tick)
					case SimWait:
						note(tick, "wait", tx.Spec.ID, holder.Spec.ID)
						if !tx.waiting {
							// The running interval pauses here.
							if tx.actionStart < tick {
								res.Actions = append(res.Actions, Action{Tx: tx.Spec.ID, Start: tx.actionStart, End: tick, Kind: ActionWait})
							}
							tx.waiting = true
						}
						tx.waitingOn = holder
						stalledNow[tx.Spec.ID] = true
					}
					if tx.aborted || stalledNow[tx.Spec.ID] {
						break
					}
				}
				if h := owner[acc.Object]; h == nil || h.committed || h.aborted {
					owner[acc.Object] = tx
					tx.holds[acc.Object] = true
					tx.opens++
					note(tick, "acquire", tx.Spec.ID, acc.Object)
				}
			}
			// A transaction whose due acquisitions all succeeded is no
			// longer waiting — and must not be seen as waiting by
			// enemies processed later in this same tick, or Rule 1
			// would kill a transaction that is in fact running.
			if !tx.aborted && !stalledNow[tx.Spec.ID] && tx.waiting {
				tx.waiting = false
				tx.waitingOn = nil
				tx.actionStart = tick
			}
		}
		// Phase B — progress and commits.
		for _, tx := range txs {
			if tx.committed || tx.aborted || stalledNow[tx.Spec.ID] || !tx.started {
				continue
			}
			if tx.restartAt > tick {
				continue
			}
			// A transaction with an unsatisfied due acquisition cannot
			// advance even if its conflict was "resolved" by aborting
			// the holder during this tick's phase A; re-check holds.
			due := true
			for _, acc := range tx.Spec.Accesses {
				if acc.Offset == tx.progress && !tx.holds[acc.Object] {
					due = false
					break
				}
			}
			if !due {
				continue
			}
			tx.progress++
			if tx.progress >= tx.Spec.Length {
				note(tick, "commit", tx.Spec.ID, -1)
				tx.committed = true
				tx.commitAt = tick + 1
				res.CommitTick[tx.Spec.ID] = tick + 1
				res.Actions = append(res.Actions, Action{Tx: tx.Spec.ID, Start: tx.actionStart, End: tick + 1, Kind: ActionCommit})
				if tick+1 > res.Makespan {
					res.Makespan = tick + 1
				}
				for obj := range tx.holds {
					owner[obj] = nil
					delete(tx.holds, obj)
				}
				remaining--
			}
		}
	}
	res.Completed = remaining == 0
	if !res.Completed {
		res.Makespan = maxTicks
	}
	for i, tx := range txs {
		res.AbortCount[i] = tx.aborts
	}
	return res, nil
}

func defaultMaxTicks(ins *Instance) int {
	total := 0
	for _, spec := range ins.Specs {
		total += spec.Length
	}
	// Quadratic headroom over the serial schedule: ample for any
	// progress-making policy, finite for livelocking ones.
	if total > math.MaxInt32/total {
		return math.MaxInt32
	}
	return total*total + total + 16
}
