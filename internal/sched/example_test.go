package sched_test

import (
	"fmt"

	"repro/internal/sched"
)

func ExampleSimulate() {
	// The paper's Section 4 adversary with s=2 objects: greedy commits
	// one transaction per round, for a makespan of s+1 = 3 time units.
	ins := sched.Adversary(2, 2)
	res, err := sched.Simulate(ins, sched.GreedyPolicy{}, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", res.Completed)
	fmt.Println("makespan (units):", res.Makespan/2)
	fmt.Println("pending-commit holds:", sched.CheckPendingCommit(res) < 0)
	// Output:
	// completed: true
	// makespan (units): 3
	// pending-commit holds: true
}

func ExampleSystem_Optimal() {
	// Two tasks sharing one resource must serialize; a third disjoint
	// task runs in parallel with them.
	sys := &sched.System{
		Resources: 2,
		Tasks: []sched.Task{
			{ID: 0, Length: 2, Need: map[int]float64{0: 1}},
			{ID: 1, Length: 3, Need: map[int]float64{0: 1}},
			{ID: 2, Length: 4, Need: map[int]float64{1: 1}},
		},
	}
	opt, err := sys.Optimal()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("optimal makespan:", opt.Makespan)
	// Output: optimal makespan: 5
}

func ExampleMeasureRatio() {
	// Theorem 9 on the s=3 adversary: greedy's makespan stays within
	// s(s+1)+2 of the exact optimum.
	ins := sched.Adversary(3, 2)
	report, err := sched.MeasureRatio(ins)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("greedy ticks:", report.GreedyMakespan)
	fmt.Println("optimal ticks:", report.OptimalMakespan)
	fmt.Println("within bound:", report.Ratio <= float64(report.Bound))
	// Output:
	// greedy ticks: 8
	// optimal ticks: 4
	// within bound: true
}
