package sched

import (
	"fmt"
	"math"
	"sort"
)

// Optimal computes an exact minimum-makespan schedule by branch and
// bound. Computing this is NP-complete in general (which is why the
// paper compares against it only analytically); the search here is
// exact and practical for the small instances used by the theory
// experiments (roughly n <= 10 with short integer lengths).
//
// The search branches on which subset of waiting tasks to start at the
// current event time — by the standard left-shift argument, some
// optimal schedule starts tasks only at time 0 or when another task
// finishes, so event-time branching preserves optimality.
func (sys *System) Optimal() (*Schedule, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	n := len(sys.Tasks)
	if n == 0 {
		return &Schedule{Start: nil, Makespan: 0}, nil
	}
	if n > optimalLimit {
		return nil, fmt.Errorf("sched: Optimal supports at most %d tasks, got %d", optimalLimit, n)
	}

	// Seed the bound with the best list schedule, which is also the
	// witness returned if no strictly better schedule exists.
	seed, err := sys.BestListSchedule()
	if err != nil {
		return nil, err
	}
	b := &bnb{
		sys:       sys,
		bestSpan:  seed.Makespan,
		bestStart: append([]int(nil), seed.Start...),
		start:     make([]int, n),
		lower:     sys.LowerBound(),
	}
	for i := range b.start {
		b.start[i] = -1
	}
	b.search(0, 0)
	return &Schedule{Start: b.bestStart, Makespan: b.bestSpan}, nil
}

// optimalLimit bounds the exact search.
const optimalLimit = 12

type bnb struct {
	sys       *System
	bestSpan  int
	bestStart []int
	start     []int
	lower     int
}

// search explores schedules from event time t with the given set of
// already-started tasks encoded in b.start (started[i] => start[i] >=
// 0). spanSoFar is the latest finish among started tasks.
func (b *bnb) search(t, spanSoFar int) {
	if b.bestSpan == b.lower {
		return // provably optimal already
	}
	n := len(b.sys.Tasks)
	// Waiting tasks and residual capacity at time t.
	var waiting []int
	use := make(map[int]float64, b.sys.Resources)
	nextFinish := math.MaxInt
	for i := 0; i < n; i++ {
		if b.start[i] < 0 {
			waiting = append(waiting, i)
			continue
		}
		finish := b.start[i] + b.sys.Tasks[i].Length
		if finish > t {
			for r, need := range b.sys.Tasks[i].Need {
				use[r] += need
			}
			if finish < nextFinish {
				nextFinish = finish
			}
		}
	}
	if len(waiting) == 0 {
		if spanSoFar < b.bestSpan {
			b.bestSpan = spanSoFar
			copy(b.bestStart, b.start)
		}
		return
	}
	// Bound: even if all waiting work ran immediately, the makespan is
	// at least t plus the longest waiting task, and at least the
	// resource-work bound for the remaining demand.
	bound := spanSoFar
	for _, id := range waiting {
		if end := t + b.sys.Tasks[id].Length; end > bound {
			bound = end
		}
	}
	if bound >= b.bestSpan {
		return
	}

	// Branch on every maximal choice of tasks to start now. We
	// enumerate subsets of the feasible waiting tasks; restricting to
	// subsets feasible as a group. To curb the fan-out we enumerate in
	// a fixed order and prune dominated branches (starting a superset
	// never hurts unless it blocks a later start, which the recursion
	// explores through the subset branches).
	feasible := feasibleSubsets(b.sys, waiting, use)
	startedAny := false
	for _, subset := range feasible {
		if len(subset) == 0 {
			continue
		}
		startedAny = true
		span := spanSoFar
		for _, id := range subset {
			b.start[id] = t
			if end := t + b.sys.Tasks[id].Length; end > span {
				span = end
			}
		}
		// Next event: earliest finish among all running tasks.
		next := nextFinish
		for _, id := range subset {
			if end := t + b.sys.Tasks[id].Length; end < next {
				next = end
			}
		}
		b.search(next, span)
		for _, id := range subset {
			b.start[id] = -1
		}
	}
	// Also consider starting nothing and waiting for the next finish
	// (useful when present tasks block a better joint start later).
	if nextFinish != math.MaxInt {
		b.search(nextFinish, spanSoFar)
	} else if !startedAny {
		// Nothing running and nothing fits: infeasible branch (cannot
		// happen for valid systems where each task fits alone).
		return
	}
}

// feasibleSubsets enumerates all subsets of waiting that fit together
// in the residual capacity, returned largest-first so promising
// branches are explored early.
func feasibleSubsets(sys *System, waiting []int, use map[int]float64) [][]int {
	var all [][]int
	m := len(waiting)
	if m > 16 {
		m = 16 // cap the fan-out; instances this large should not use Optimal
	}
	for mask := 1; mask < 1<<m; mask++ {
		trial := make(map[int]float64, len(use))
		for r, u := range use {
			trial[r] = u
		}
		ok := true
		var subset []int
		for bit := 0; bit < m && ok; bit++ {
			if mask&(1<<bit) == 0 {
				continue
			}
			id := waiting[bit]
			for r, need := range sys.Tasks[id].Need {
				trial[r] += need
				if trial[r] > 1+resourceEps {
					ok = false
					break
				}
			}
			subset = append(subset, id)
		}
		if ok {
			all = append(all, subset)
		}
	}
	sort.Slice(all, func(i, j int) bool { return len(all[i]) > len(all[j]) })
	return all
}
