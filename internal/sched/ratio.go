package sched

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Bound returns the paper's Theorem 9 competitive bound s(s+1)+2 for
// s shared objects.
func Bound(s int) int { return s*(s+1) + 2 }

// TaskSystemOf converts a simulator instance into the corresponding
// Garey–Graham task system (Section 4.2): each transaction T_j of
// duration δ_j becomes a task T*_j of the same duration whose resource
// needs equal the transaction's object needs, held for the task's
// whole duration.
func TaskSystemOf(ins *Instance) *System {
	tasks := make([]Task, len(ins.Specs))
	for i, spec := range ins.Specs {
		need := make(map[int]float64)
		for _, acc := range spec.Accesses {
			need[acc.Object] = 1
		}
		tasks[i] = Task{ID: i, Length: spec.Length, Need: need}
	}
	return &System{Tasks: tasks, Resources: ins.Objects}
}

// RatioReport is one data point of the competitive-ratio experiment.
type RatioReport struct {
	// Objects is s, the number of shared objects.
	Objects int
	// Transactions is n.
	Transactions int
	// GreedyMakespan is the simulated greedy makespan in ticks.
	GreedyMakespan int
	// OptimalMakespan is the exact off-line optimum in ticks.
	OptimalMakespan int
	// Ratio is Greedy/Optimal.
	Ratio float64
	// Bound is s(s+1)+2.
	Bound int
	// PendingCommitOK records whether the greedy run satisfied the
	// pending-commit property.
	PendingCommitOK bool
}

// String formats the report as one table row.
func (r RatioReport) String() string {
	return fmt.Sprintf("n=%-2d s=%-2d greedy=%-4d opt=%-4d ratio=%5.2f bound=%d",
		r.Transactions, r.Objects, r.GreedyMakespan, r.OptimalMakespan, r.Ratio, r.Bound)
}

// RandomInstance draws a random simulator instance with n
// transactions over s objects, lengths in [1, maxLen] ticks and one to
// maxAccess distinct object accesses at random offsets. Timestamps are
// a random permutation, modelling arbitrary arrival order.
func RandomInstance(rng *rand.Rand, n, s, maxLen, maxAccess int) *Instance {
	if maxAccess > s {
		maxAccess = s
	}
	stamps := rng.Perm(n)
	specs := make([]TxSpec, n)
	for i := 0; i < n; i++ {
		length := 1 + int(rng.Int64N(int64(maxLen)))
		k := 1 + int(rng.Int64N(int64(maxAccess)))
		objs := rng.Perm(s)[:k]
		accesses := make([]Access, k)
		for j, obj := range objs {
			accesses[j] = Access{Offset: int(rng.Int64N(int64(length))), Object: obj}
		}
		sort.Slice(accesses, func(a, b int) bool { return accesses[a].Offset < accesses[b].Offset })
		specs[i] = TxSpec{ID: i, Length: length, Timestamp: stamps[i], Accesses: accesses}
	}
	return &Instance{Specs: specs, Objects: s}
}

// MeasureRatio simulates the instance under greedy, computes the exact
// optimal task-system makespan, and returns the comparison.
func MeasureRatio(ins *Instance) (*RatioReport, error) {
	res, err := Simulate(ins, GreedyPolicy{}, 0)
	if err != nil {
		return nil, err
	}
	if !res.Completed {
		return nil, fmt.Errorf("sched: greedy failed to complete the instance (bug: greedy always completes)")
	}
	opt, err := TaskSystemOf(ins).Optimal()
	if err != nil {
		return nil, err
	}
	report := &RatioReport{
		Objects:         ins.Objects,
		Transactions:    len(ins.Specs),
		GreedyMakespan:  res.Makespan,
		OptimalMakespan: opt.Makespan,
		Bound:           Bound(ins.Objects),
		PendingCommitOK: CheckPendingCommit(res) < 0,
	}
	if opt.Makespan > 0 {
		report.Ratio = float64(report.GreedyMakespan) / float64(opt.Makespan)
	}
	return report, nil
}

// RatioSweep runs trials random instances for each (n, s) in the given
// lists and returns all reports plus the worst ratio seen. Every
// report must respect Theorem 9: ratio <= s(s+1)+2.
func RatioSweep(seed uint64, ns, ss []int, trials int) ([]RatioReport, float64, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	var reports []RatioReport
	worst := 0.0
	for _, n := range ns {
		for _, s := range ss {
			for trial := 0; trial < trials; trial++ {
				ins := RandomInstance(rng, n, s, 4, 3)
				report, err := MeasureRatio(ins)
				if err != nil {
					return nil, 0, fmt.Errorf("n=%d s=%d trial=%d: %w", n, s, trial, err)
				}
				reports = append(reports, *report)
				if report.Ratio > worst {
					worst = report.Ratio
				}
			}
		}
	}
	return reports, worst, nil
}
