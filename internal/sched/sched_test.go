package sched_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

func unit(id, length int, objects ...int) sched.Task {
	need := make(map[int]float64)
	for _, o := range objects {
		need[o] = 1
	}
	return sched.Task{ID: id, Length: length, Need: need}
}

func TestValidateRejectsBadSystems(t *testing.T) {
	cases := map[string]*sched.System{
		"bad id":         {Tasks: []sched.Task{{ID: 1, Length: 1}}, Resources: 0},
		"zero length":    {Tasks: []sched.Task{{ID: 0, Length: 0}}, Resources: 0},
		"resource range": {Tasks: []sched.Task{unit(0, 1, 3)}, Resources: 2},
		"need over 1":    {Tasks: []sched.Task{{ID: 0, Length: 1, Need: map[int]float64{0: 1.5}}}, Resources: 1},
		"negative need":  {Tasks: []sched.Task{{ID: 0, Length: 1, Need: map[int]float64{0: -0.1}}}, Resources: 1},
	}
	for name, sys := range cases {
		if err := sys.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid system", name)
		}
	}
}

func TestListScheduleIndependentTasksRunTogether(t *testing.T) {
	sys := &sched.System{
		Tasks:     []sched.Task{unit(0, 3, 0), unit(1, 3, 1), unit(2, 3, 2)},
		Resources: 3,
	}
	s, err := sys.ListSchedule([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 3 {
		t.Fatalf("makespan = %d, want 3 (all disjoint tasks in parallel)", s.Makespan)
	}
	if err := sys.Feasible(s); err != nil {
		t.Fatal(err)
	}
}

func TestListScheduleSerializesSharedResource(t *testing.T) {
	sys := &sched.System{
		Tasks:     []sched.Task{unit(0, 2, 0), unit(1, 3, 0), unit(2, 1, 0)},
		Resources: 1,
	}
	s, err := sys.ListSchedule([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 6 {
		t.Fatalf("makespan = %d, want 6 (total serialization)", s.Makespan)
	}
	if err := sys.Feasible(s); err != nil {
		t.Fatal(err)
	}
}

func TestListScheduleRespectsFractionalNeeds(t *testing.T) {
	// Three readers at 1/3 each share the resource; a writer at 1 must
	// wait for all of them.
	sys := &sched.System{
		Resources: 1,
		Tasks: []sched.Task{
			{ID: 0, Length: 2, Need: map[int]float64{0: 1.0 / 3}},
			{ID: 1, Length: 2, Need: map[int]float64{0: 1.0 / 3}},
			{ID: 2, Length: 2, Need: map[int]float64{0: 1.0 / 3}},
			{ID: 3, Length: 2, Need: map[int]float64{0: 1}},
		},
	}
	s, err := sys.ListSchedule([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] != 0 || s.Start[1] != 0 || s.Start[2] != 0 {
		t.Fatalf("readers start at %v, want all 0", s.Start[:3])
	}
	if s.Start[3] != 2 {
		t.Fatalf("writer starts at %d, want 2", s.Start[3])
	}
}

func TestListScheduleRejectsBadOrder(t *testing.T) {
	sys := &sched.System{Tasks: []sched.Task{unit(0, 1), unit(1, 1)}, Resources: 0}
	for _, order := range [][]int{{0}, {0, 0}, {0, 2}} {
		if _, err := sys.ListSchedule(order); err == nil {
			t.Errorf("order %v accepted", order)
		}
	}
}

func TestOptimalMatchesObviousCases(t *testing.T) {
	// Serial chain on one resource: optimal = total work.
	serial := &sched.System{
		Tasks:     []sched.Task{unit(0, 2, 0), unit(1, 3, 0)},
		Resources: 1,
	}
	s, err := serial.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 5 {
		t.Fatalf("serial optimal = %d, want 5", s.Makespan)
	}
	// Disjoint tasks: optimal = longest task.
	disjoint := &sched.System{
		Tasks:     []sched.Task{unit(0, 2, 0), unit(1, 5, 1), unit(2, 3, 2)},
		Resources: 3,
	}
	s, err = disjoint.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 5 {
		t.Fatalf("disjoint optimal = %d, want 5", s.Makespan)
	}
}

func TestOptimalNeverWorseThanBestList(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	for trial := 0; trial < 30; trial++ {
		ins := sched.RandomInstance(rng, 4+int(rng.Int64N(2)), 3, 3, 2)
		sys := sched.TaskSystemOf(ins)
		best, err := sys.BestListSchedule()
		if err != nil {
			t.Fatal(err)
		}
		opt, err := sys.Optimal()
		if err != nil {
			t.Fatal(err)
		}
		if opt.Makespan > best.Makespan {
			t.Fatalf("trial %d: optimal %d worse than best list %d", trial, opt.Makespan, best.Makespan)
		}
		if opt.Makespan < sys.LowerBound() {
			t.Fatalf("trial %d: optimal %d below lower bound %d", trial, opt.Makespan, sys.LowerBound())
		}
		if err := sys.Feasible(opt); err != nil {
			t.Fatalf("trial %d: optimal schedule infeasible: %v", trial, err)
		}
	}
}

// TestGareyGrahamListBound checks the classical (s+1)-competitiveness
// of arbitrary list schedules against the exact optimum on random
// instances.
func TestGareyGrahamListBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 25; trial++ {
		s := 2 + int(rng.Int64N(2))
		ins := sched.RandomInstance(rng, 5, s, 3, 2)
		sys := sched.TaskSystemOf(ins)
		order := rng.Perm(len(sys.Tasks))
		list, err := sys.ListSchedule(order)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := sys.Optimal()
		if err != nil {
			t.Fatal(err)
		}
		if list.Makespan > (s+1)*opt.Makespan {
			t.Fatalf("trial %d: list %d > (s+1)*opt = %d*%d", trial, list.Makespan, s+1, opt.Makespan)
		}
	}
}

// --- The Section 4 adversarial instance ---

func TestAdversaryGreedyMakespanIsSPlusOne(t *testing.T) {
	for _, s := range []int{1, 2, 3, 5, 8} {
		const m = 2
		ins := sched.Adversary(s, m)
		res, err := sched.Simulate(ins, sched.GreedyPolicy{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("s=%d: greedy did not complete", s)
		}
		want := (s + 1) * m
		if res.Makespan != want {
			t.Fatalf("s=%d: greedy makespan = %d ticks, want %d (s+1 time units)", s, res.Makespan, want)
		}
		if err := sched.VerifyPendingCommit(res); err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
	}
}

func TestAdversaryOptimalIsTwo(t *testing.T) {
	for _, s := range []int{2, 3, 5} {
		const m = 2
		sys := sched.AdversaryTaskSystem(s, m)
		list, err := sys.ListSchedule(sched.EvenOddOrder(s + 1))
		if err != nil {
			t.Fatal(err)
		}
		if list.Makespan != 2*m {
			t.Fatalf("s=%d: even-odd list makespan = %d ticks, want %d (2 units)", s, list.Makespan, 2*m)
		}
		opt, err := sys.Optimal()
		if err != nil {
			t.Fatal(err)
		}
		if opt.Makespan != 2*m {
			t.Fatalf("s=%d: optimal = %d ticks, want %d", s, opt.Makespan, 2*m)
		}
	}
}

func TestAdversaryRatioWithinTheorem9(t *testing.T) {
	for _, s := range []int{2, 4, 6} {
		ratio := float64(s+1) / 2
		if bound := float64(sched.Bound(s)); ratio > bound {
			t.Fatalf("s=%d: adversary ratio %.2f exceeds bound %.0f", s, ratio, bound)
		}
	}
}

// TestTheorem1BoundedAborts: under greedy, a transaction is aborted
// only by older transactions, so its abort count is bounded by the
// number of higher-priority transactions (n-1 here, tighter per
// instance).
func TestTheorem1BoundedAborts(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for trial := 0; trial < 40; trial++ {
		n := 3 + int(rng.Int64N(4))
		ins := sched.RandomInstance(rng, n, 3, 3, 2)
		res, err := sched.Simulate(ins, sched.GreedyPolicy{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("trial %d: greedy did not complete", trial)
		}
		for i, aborts := range res.AbortCount {
			older := 0
			for j := range ins.Specs {
				if ins.Specs[j].Timestamp < ins.Specs[i].Timestamp {
					older++
				}
			}
			// Each abort of i is inflicted by a strictly older
			// transaction and each older transaction commits exactly
			// once; in the scripted model an older transaction can
			// abort i at most once per attempt of its own, and it has
			// at most older attempts... The safe instance-level bound
			// used by Theorem 1 is that the oldest transaction is
			// never aborted.
			if older == 0 && aborts != 0 {
				t.Fatalf("trial %d: oldest transaction aborted %d times", trial, aborts)
			}
		}
	}
}

func TestTimidDeadlocksOnCycle(t *testing.T) {
	ins := sched.CycleInstance(2)
	res, err := sched.Simulate(ins, sched.TimidPolicy{}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("always-wait policy completed a cyclic conflict; expected deadlock")
	}
}

func TestAggressiveLivelocksOnSameObject(t *testing.T) {
	ins := sched.LivelockInstance(2)
	res, err := sched.Simulate(ins, sched.AggressivePolicy{}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("always-abort policy completed the same-object instance; expected livelock")
	}
	if tVio := sched.CheckPendingCommit(res); tVio < 0 {
		t.Fatal("livelocked run reported pending-commit as holding")
	}
}

func TestGreedyResolvesLivelockInstance(t *testing.T) {
	ins := sched.LivelockInstance(2)
	res, err := sched.Simulate(ins, sched.GreedyPolicy{}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("greedy failed the same-object instance")
	}
	if err := sched.VerifyPendingCommit(res); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyResolvesCycle(t *testing.T) {
	ins := sched.CycleInstance(2)
	res, err := sched.Simulate(ins, sched.GreedyPolicy{}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("greedy failed to resolve the cyclic conflict")
	}
	if err := sched.VerifyPendingCommit(res); err != nil {
		t.Fatal(err)
	}
}

func TestKarmaCompletesCycle(t *testing.T) {
	ins := sched.CycleInstance(2)
	res, err := sched.Simulate(ins, sched.NewKarmaPolicy(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("karma failed on the cyclic conflict")
	}
}

func TestRandomizedUsuallyCompletes(t *testing.T) {
	ins := sched.CycleInstance(2)
	res, err := sched.Simulate(ins, sched.NewRandomizedPolicy(0.5, 42), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("randomized policy failed on the cyclic conflict within a generous budget")
	}
}

// TestGreedyAlwaysCompletes is the liveness half of Theorem 1 in the
// simulator: greedy completes every random instance.
func TestGreedyAlwaysCompletes(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	for trial := 0; trial < 60; trial++ {
		ins := sched.RandomInstance(rng, 2+int(rng.Int64N(6)), 2+int(rng.Int64N(3)), 4, 3)
		res, err := sched.Simulate(ins, sched.GreedyPolicy{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("trial %d: greedy did not complete", trial)
		}
		if err := sched.VerifyPendingCommit(res); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestQuickTheorem9 is the property-test form of the competitive
// bound: on arbitrary random instances greedy's makespan is within
// s(s+1)+2 of the exact optimum.
func TestQuickTheorem9(t *testing.T) {
	property := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed|1))
		n := 3 + int(rng.Int64N(4))
		s := 2 + int(rng.Int64N(2))
		ins := sched.RandomInstance(rng, n, s, 3, 2)
		report, err := sched.MeasureRatio(ins)
		if err != nil {
			return false
		}
		if !report.PendingCommitOK {
			return false
		}
		return report.Ratio <= float64(report.Bound)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRatioSweepHoldsBound(t *testing.T) {
	reports, worst, err := sched.RatioSweep(7, []int{3, 5}, []int{2, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2*2*5 {
		t.Fatalf("got %d reports, want 20", len(reports))
	}
	for _, r := range reports {
		if r.Ratio > float64(r.Bound) {
			t.Fatalf("report %v exceeds Theorem 9 bound", r)
		}
	}
	if worst <= 0 {
		t.Fatalf("worst ratio = %f, want positive", worst)
	}
}

func TestSimulateValidation(t *testing.T) {
	bad := &sched.Instance{
		Objects: 1,
		Specs:   []sched.TxSpec{{ID: 0, Length: 1, Accesses: []sched.Access{{Offset: 5, Object: 0}}}},
	}
	if _, err := sched.Simulate(bad, sched.GreedyPolicy{}, 0); err == nil {
		t.Fatal("Simulate accepted an access offset beyond the length")
	}
}
