package sched

import "sort"

// The paper's closing open problems ask whether randomization can give
// a contention manager that behaves well with high probability. This
// study measures the empirical side: the distribution of completion
// times of the coin-flip policy on instances that defeat both
// deterministic extremes (always-wait deadlocks on the cycle,
// always-abort livelocks on the same-object clash).

// RandomizedStudy is the empirical completion-time distribution of the
// coin-flip policy over independent runs of one instance.
type RandomizedStudy struct {
	// Trials is the number of independent runs.
	Trials int
	// CompletedFraction is the share of runs that completed within
	// the tick budget.
	CompletedFraction float64
	// P50, P90, P99 are completion-time quantiles in ticks (over the
	// completed runs).
	P50, P90, P99 int
	// Worst is the largest completion time observed.
	Worst int
}

// StudyRandomized runs the instance `trials` times under the coin-flip
// policy with abort probability p and independent seeds, returning the
// completion-time distribution. A budget of maxTicks bounds each run.
func StudyRandomized(ins *Instance, p float64, trials, maxTicks uint) (*RandomizedStudy, error) {
	if trials == 0 {
		trials = 1
	}
	var times []int
	completed := 0
	for trial := uint(0); trial < trials; trial++ {
		policy := NewRandomizedPolicy(p, uint64(trial)+1)
		res, err := Simulate(ins, policy, int(maxTicks))
		if err != nil {
			return nil, err
		}
		if res.Completed {
			completed++
			times = append(times, res.Makespan)
		}
	}
	study := &RandomizedStudy{
		Trials:            int(trials),
		CompletedFraction: float64(completed) / float64(trials),
	}
	if len(times) > 0 {
		sort.Ints(times)
		study.P50 = times[len(times)/2]
		study.P90 = times[len(times)*9/10]
		study.P99 = times[len(times)*99/100]
		study.Worst = times[len(times)-1]
	}
	return study, nil
}
