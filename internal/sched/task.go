// Package sched implements the scheduling-theory half of the paper:
// the Garey–Graham model of tasks sharing limited resources, list
// schedulers, an exact optimal scheduler for small instances, and a
// discrete-time simulator of transactions under on-line contention-
// management policies. Together they reproduce the Section 4 results:
// the adversarial instance on which greedy needs makespan s+1 while an
// optimal (list) schedule needs 2, the pending-commit property, and
// the competitive bound makespan(greedy) <= (s(s+1)+2) * optimal
// (Theorem 9).
//
// Time is discrete: the paper divides each time unit into m ticks and
// observes (after Garey and Graham) that tasks may be assumed to start
// and stop on ticks.
package sched

import (
	"fmt"
	"math"
)

// Task is one non-preemptable task of a Garey–Graham task system: it
// runs for Length ticks and requires Need[r] units of each resource r
// (0 <= Need[r] <= 1, with total usage per resource capped at 1 at any
// instant) for its entire execution.
type Task struct {
	// ID identifies the task; IDs are the indices into System.Tasks.
	ID int
	// Length is the task's duration in ticks; must be positive.
	Length int
	// Need maps resource index to the units of that resource the task
	// occupies while running. Absent resources are unused. A
	// transactional update maps to 1 unit; a read to 1/n.
	Need map[int]float64
}

// resourceEps guards float comparisons of resource sums.
const resourceEps = 1e-9

// System is a task system: n tasks sharing s unit-capacity resources,
// with (as in the paper) at least as many processors as tasks, so only
// the resources constrain parallelism.
type System struct {
	// Tasks are the tasks, indexed by ID.
	Tasks []Task
	// Resources is s, the number of shared resources.
	Resources int
}

// Validate checks the system's well-formedness: positive lengths,
// resource indices in range, needs within [0,1].
func (sys *System) Validate() error {
	for i, task := range sys.Tasks {
		if task.ID != i {
			return fmt.Errorf("sched: task %d has ID %d; IDs must equal indices", i, task.ID)
		}
		if task.Length <= 0 {
			return fmt.Errorf("sched: task %d has non-positive length %d", i, task.Length)
		}
		for r, need := range task.Need {
			if r < 0 || r >= sys.Resources {
				return fmt.Errorf("sched: task %d uses resource %d out of range [0,%d)", i, r, sys.Resources)
			}
			if need < 0 || need > 1+resourceEps {
				return fmt.Errorf("sched: task %d needs %g of resource %d; want [0,1]", i, need, r)
			}
		}
	}
	return nil
}

// TotalWork returns the sum of task lengths in ticks (a trivial lower
// bound on n*makespan, and on makespan when a single resource is fully
// used by every task).
func (sys *System) TotalWork() int {
	total := 0
	for _, task := range sys.Tasks {
		total += task.Length
	}
	return total
}

// LongestTask returns the maximum task length (a lower bound on any
// makespan).
func (sys *System) LongestTask() int {
	longest := 0
	for _, task := range sys.Tasks {
		if task.Length > longest {
			longest = task.Length
		}
	}
	return longest
}

// ResourceWorkBound returns the largest, over resources, of the total
// resource-time demand (sum of need*length), which lower-bounds any
// makespan since a resource supplies at most one unit per tick.
func (sys *System) ResourceWorkBound() int {
	bound := 0.0
	for r := 0; r < sys.Resources; r++ {
		demand := 0.0
		for _, task := range sys.Tasks {
			demand += task.Need[r] * float64(task.Length)
		}
		if demand > bound {
			bound = demand
		}
	}
	return int(math.Ceil(bound - resourceEps))
}

// LowerBound combines the trivial lower bounds.
func (sys *System) LowerBound() int {
	lb := sys.LongestTask()
	if rb := sys.ResourceWorkBound(); rb > lb {
		lb = rb
	}
	return lb
}

// Schedule assigns a start tick to every task.
type Schedule struct {
	// Start[i] is the start tick of task i.
	Start []int
	// Makespan is the tick by which all tasks have finished.
	Makespan int
}

// Feasible checks the schedule against the system's resource
// capacities tick by tick.
func (sys *System) Feasible(sched *Schedule) error {
	if len(sched.Start) != len(sys.Tasks) {
		return fmt.Errorf("sched: schedule covers %d tasks, system has %d", len(sched.Start), len(sys.Tasks))
	}
	horizon := 0
	for i, start := range sched.Start {
		if start < 0 {
			return fmt.Errorf("sched: task %d starts at negative tick %d", i, start)
		}
		if end := start + sys.Tasks[i].Length; end > horizon {
			horizon = end
		}
	}
	if horizon != sched.Makespan {
		return fmt.Errorf("sched: declared makespan %d, computed %d", sched.Makespan, horizon)
	}
	for t := 0; t < horizon; t++ {
		use := make(map[int]float64, sys.Resources)
		for i, start := range sched.Start {
			if t < start || t >= start+sys.Tasks[i].Length {
				continue
			}
			for r, need := range sys.Tasks[i].Need {
				use[r] += need
				if use[r] > 1+resourceEps {
					return fmt.Errorf("sched: resource %d over capacity (%.3f) at tick %d", r, use[r], t)
				}
			}
		}
	}
	return nil
}
