package sched_test

import (
	"testing"

	"repro/internal/sched"
)

func TestSequenceInstanceValidates(t *testing.T) {
	ins := sched.SequenceInstance(3, 4, 4, 3, 2)
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ins.Specs) != 12 {
		t.Fatalf("got %d specs, want 12", len(ins.Specs))
	}
	if len(ins.Sequences) != 3 {
		t.Fatalf("got %d sequences, want 3", len(ins.Sequences))
	}
	for _, spec := range ins.Specs {
		if spec.Timestamp != sched.DynamicTimestamp {
			t.Fatalf("spec %d has static timestamp %d", spec.ID, spec.Timestamp)
		}
	}
}

func TestSequencesRespectOrder(t *testing.T) {
	ins := sched.SequenceInstance(2, 3, 3, 2, 1)
	res, err := sched.Simulate(ins, sched.GreedyPolicy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("sequences did not complete under greedy")
	}
	for _, seq := range ins.Sequences {
		for k := 1; k < len(seq); k++ {
			prev, cur := seq[k-1], seq[k]
			if res.CommitTick[cur] <= res.CommitTick[prev] {
				t.Fatalf("transaction %d committed at %d, not after its predecessor %d (at %d)",
					cur, res.CommitTick[cur], prev, res.CommitTick[prev])
			}
		}
	}
}

func TestSequenceValidationRejects(t *testing.T) {
	base := sched.SequenceInstance(2, 2, 2, 2, 1)
	// Duplicate membership.
	dup := *base
	dup.Sequences = [][]int{{0, 1}, {1, 2, 3}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate sequence membership accepted")
	}
	// Incomplete partition.
	missing := *base
	missing.Sequences = [][]int{{0, 1}, {2}}
	if err := missing.Validate(); err == nil {
		t.Error("incomplete sequence partition accepted")
	}
	// Out of range.
	oor := *base
	oor.Sequences = [][]int{{0, 1}, {2, 9}}
	if err := oor.Validate(); err == nil {
		t.Error("out-of-range sequence member accepted")
	}
}

func TestDynamicTimestampsAssignedInStartOrder(t *testing.T) {
	ins := sched.SequenceInstance(2, 2, 2, 2, 1)
	var starts []int
	_, err := sched.SimulateObserved(ins, sched.GreedyPolicy{}, 0, func(tick int, event string, tx, other int) {
		if event == "start" {
			starts = append(starts, tx)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != len(ins.Specs) {
		t.Fatalf("saw %d starts, want %d", len(starts), len(ins.Specs))
	}
	// The first transaction of each thread starts at tick 0, before
	// any successor.
	first := map[int]bool{}
	for _, seq := range ins.Sequences {
		first[seq[0]] = true
	}
	for i := 0; i < len(ins.Sequences); i++ {
		if !first[starts[i]] {
			t.Fatalf("start %d was %d, which is not a sequence head", i, starts[i])
		}
	}
}

func TestMeasureSequencesGreedyVsKarma(t *testing.T) {
	ins := sched.SequenceInstance(4, 3, 4, 3, 2)
	for _, policy := range []sched.Policy{sched.GreedyPolicy{}, sched.NewKarmaPolicy()} {
		report, err := sched.MeasureSequences(ins, policy)
		if err != nil {
			t.Fatal(err)
		}
		if !report.Completed {
			t.Fatalf("%s did not complete the sequence workload", policy.Name())
		}
		if report.Ratio < 1 {
			t.Fatalf("%s beat the lower bound: %+v", policy.Name(), report)
		}
		if report.Makespan < report.LowerBound {
			t.Fatalf("makespan below lower bound: %+v", report)
		}
	}
}

func TestStudyRandomizedCompletesHardInstances(t *testing.T) {
	for name, ins := range map[string]*sched.Instance{
		"cycle":       sched.CycleInstance(2),
		"same-object": sched.LivelockInstance(2),
	} {
		study, err := sched.StudyRandomized(ins, 0.5, 50, 100_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if study.CompletedFraction < 0.99 {
			t.Fatalf("%s: randomized completed only %.0f%% of runs", name, 100*study.CompletedFraction)
		}
		if study.P50 <= 0 || study.Worst < study.P99 || study.P99 < study.P90 || study.P90 < study.P50 {
			t.Fatalf("%s: quantiles inconsistent: %+v", name, study)
		}
	}
}

func TestStudyRandomizedDegenerateP(t *testing.T) {
	// p=0 is the always-wait policy: the cycle instance must fail.
	study, err := sched.StudyRandomized(sched.CycleInstance(2), 0, 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if study.CompletedFraction != 0 {
		t.Fatalf("p=0 completed %.0f%% of cycle runs; expected deadlock", 100*study.CompletedFraction)
	}
	// p=1 is always-abort: the same-object instance must fail.
	study, err = sched.StudyRandomized(sched.LivelockInstance(2), 1, 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if study.CompletedFraction != 0 {
		t.Fatalf("p=1 completed %.0f%% of same-object runs; expected livelock", 100*study.CompletedFraction)
	}
}

func TestSequencesBackwardCompatibleNil(t *testing.T) {
	// Instances without sequences behave exactly as before: this is
	// the adversary regression re-run through the new code path.
	ins := sched.Adversary(3, 2)
	if ins.Sequences != nil {
		t.Fatal("adversary should not define sequences")
	}
	res, err := sched.Simulate(ins, sched.GreedyPolicy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 8 {
		t.Fatalf("adversary makespan changed: %d", res.Makespan)
	}
}
