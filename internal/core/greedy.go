package core

import (
	"time"

	"repro/internal/stm"
)

// Greedy is the paper's contribution (Section 3). Transactions carry a
// timestamp taken when they first begin and retained across retries;
// an earlier timestamp is higher priority. When transaction A
// conflicts with active transaction B:
//
//	Rule 1: if B is lower priority than A, or B is waiting for another
//	        transaction, A aborts B.
//	Rule 2: if B is higher priority and not waiting, A waits (with its
//	        own waiting flag raised) until B commits, aborts, or starts
//	        waiting — at which point Rule 1 applies.
//
// Greedy satisfies the pending-commit property: at any time the
// running transaction with the earliest timestamp neither waits nor is
// ever aborted, so it runs uninterrupted to commit. Consequently every
// transaction commits within a bounded delay (Theorem 1) and the
// makespan of n concurrent transactions over s objects is within
// s(s+1)+2 of an optimal off-line list schedule (Theorem 9).
type Greedy struct {
	stm.BaseManager
}

// NewGreedy returns a per-thread greedy manager.
func NewGreedy() *Greedy { return &Greedy{} }

// ResolveConflict implements the two greedy rules.
func (g *Greedy) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	if enemy.Timestamp() > me.Timestamp() || enemy.Waiting() {
		return stm.AbortOther
	}
	// Rule 2: enemy is older (higher priority) and running; wait until
	// it commits, aborts or starts waiting. The wait is finite in the
	// paper's model because transaction delays are finite.
	me.SetWaiting(true)
	defer me.SetWaiting(false)
	for spin := 0; enemy.Status() == stm.StatusActive && !enemy.Waiting(); spin++ {
		if me.Status() != stm.StatusActive {
			break // an enemy of ours aborted us while we waited
		}
		stm.Backoff(spin)
	}
	return stm.Wait
}

// GreedyTimeout is the Section 6 extension of Greedy for a model where
// transactions can halt undetectably. Rule 2's wait is bounded by a
// per-enemy timeout; when the timeout expires the waiter aborts the
// enemy even though it is higher priority. Each time that happens the
// timeout for that enemy doubles, so a slow-but-alive high-priority
// transaction is aborted only finitely often, while a crashed one
// cannot block others forever. This mirrors the recovery scheme of
// Scherer and Scott's timestamp manager.
type GreedyTimeout struct {
	stm.BaseManager
	base     time.Duration
	timeouts map[uint64]time.Duration
}

// DefaultGreedyTimeout is the initial per-enemy patience of
// NewGreedyTimeout.
const DefaultGreedyTimeout = 100 * time.Microsecond

// NewGreedyTimeout returns a per-thread greedy manager with halted-
// transaction recovery and the default initial timeout.
func NewGreedyTimeout() *GreedyTimeout {
	return NewGreedyTimeoutWith(DefaultGreedyTimeout)
}

// NewGreedyTimeoutWith returns a GreedyTimeout whose initial per-enemy
// patience is base.
func NewGreedyTimeoutWith(base time.Duration) *GreedyTimeout {
	return &GreedyTimeout{base: base, timeouts: make(map[uint64]time.Duration)}
}

// ResolveConflict implements the greedy rules with bounded waiting.
func (g *GreedyTimeout) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	if enemy.Timestamp() > me.Timestamp() || enemy.Waiting() {
		return stm.AbortOther
	}
	patience, ok := g.timeouts[enemy.ID()]
	if !ok {
		patience = g.base
		if len(g.timeouts) > 1<<12 {
			// The map tracks logical transactions, which are
			// short-lived; prune it rather than grow without bound.
			clear(g.timeouts)
		}
		g.timeouts[enemy.ID()] = patience
	}
	me.SetWaiting(true)
	defer me.SetWaiting(false)
	deadline := time.Now().Add(patience)
	for spin := 0; enemy.Status() == stm.StatusActive && !enemy.Waiting(); spin++ {
		if me.Status() != stm.StatusActive {
			return stm.Wait
		}
		if time.Now().After(deadline) {
			// The enemy may have crashed: abort it and double our
			// patience with it in case it was merely slow.
			g.timeouts[enemy.ID()] = patience * 2
			return stm.AbortOther
		}
		stm.Backoff(spin)
	}
	return stm.Wait
}
