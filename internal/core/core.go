// Package core implements the contention managers studied in
// Guerraoui, Herlihy and Pochon, "Toward a Theory of Transactional
// Contention Managers": the paper's greedy manager and its Section 6
// timeout extension, together with the Scherer–Scott family the paper
// benchmarks against (Aggressive, Polite/Backoff, Randomized,
// Timestamp, Karma, Eruption, Kindergarten, KillBlocked, QueueOnBlock,
// Polka).
//
// A contention manager is the module responsible for progress in an
// obstruction-free STM: whenever transaction A is about to perform an
// access that conflicts with an active transaction B, A's manager
// decides whether to abort B or to pause and give B a chance to
// finish. Managers are per-thread and strictly decentralized — they
// decide using only the two transactions' public state.
//
// The managers comparable in the paper's figures are available through
// the registry (New, Factories, Names).
package core

import (
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// quantum is the basic waiting interval used by managers that wait in
// fixed slices (Karma, Timestamp, KillBlocked, QueueOnBlock). Small
// enough that a waiting episode costs little, large enough to actually
// yield the processor on a loaded host.
const quantum = 5 * time.Microsecond

var rngSeq atomic.Uint64

// newRNG returns a per-manager pseudo-random source. Managers are
// per-thread, so the source needs no locking; distinct managers get
// distinct streams.
func newRNG() *rand.Rand {
	n := rngSeq.Add(1)
	return rand.New(rand.NewPCG(n, n^0x9e3779b97f4a7c15))
}

// episode tracks consecutive ResolveConflict calls against the same
// enemy transaction, so that managers can count how long the current
// stand-off has lasted. The counter resets when the enemy changes or
// when the conflict resolves (the next successful open).
type episode struct {
	enemy    uint64
	attempts int
}

// next bumps and returns the attempt count for a conflict with the
// given enemy logical-transaction id.
func (e *episode) next(enemyID uint64) int {
	if e.enemy != enemyID {
		e.enemy = enemyID
		e.attempts = 0
	}
	e.attempts++
	return e.attempts
}

// reset clears the episode (called once the conflict is resolved).
func (e *episode) reset() { e.enemy, e.attempts = 0, 0 }
