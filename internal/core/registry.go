package core

import (
	"fmt"
	"sort"

	"repro/internal/stm"
)

// factories maps the canonical lower-case manager names to their
// per-session constructors. The five names plotted in the paper's
// figures are greedy, aggressive, backoff (an alias kept for the
// figures' label for Polite), karma and eruption.
var factories = map[string]stm.ManagerFactory{
	"greedy":         func() stm.Manager { return NewGreedy() },
	"greedy-timeout": func() stm.Manager { return NewGreedyTimeout() },
	"aggressive":     func() stm.Manager { return NewAggressive() },
	"polite":         func() stm.Manager { return NewPolite() },
	"backoff":        func() stm.Manager { return NewPolite() },
	"randomized":     func() stm.Manager { return NewRandomized() },
	"timestamp":      func() stm.Manager { return NewTimestamp() },
	"karma":          func() stm.Manager { return NewKarma() },
	"eruption":       func() stm.Manager { return NewEruption() },
	"kindergarten":   func() stm.Manager { return NewKindergarten() },
	"killblocked":    func() stm.Manager { return NewKillBlocked() },
	"queueonblock":   func() stm.Manager { return NewQueueOnBlock() },
	"polka":          func() stm.Manager { return NewPolka() },
}

// FigureManagers are the five series plotted in Figures 1–4 of the
// paper, in legend order.
var FigureManagers = []string{"eruption", "greedy", "aggressive", "backoff", "karma"}

// Names returns all registered manager names, sorted.
func Names() []string {
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Factory returns the constructor for the named manager, for wiring
// into an STM with stm.WithManagerFactory.
func Factory(name string) (stm.ManagerFactory, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown contention manager %q (have %v)", name, Names())
	}
	return f, nil
}

// MustFactory is Factory for compile-time-constant names, panicking on
// unknown ones — for examples and tests where a lookup error is a
// programming mistake, e.g.
//
//	s := stm.New(stm.WithManagerFactory(core.MustFactory("greedy")))
func MustFactory(name string) stm.ManagerFactory {
	f, err := Factory(name)
	if err != nil {
		panic(err)
	}
	return f
}

// New constructs a per-session instance of the named manager.
func New(name string) (stm.Manager, error) {
	f, err := Factory(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}
