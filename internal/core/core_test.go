package core_test

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/stm"
)

// parked starts a transaction on its own thread and parks it holding
// obj open for writing, returning the live *stm.Tx for direct
// ResolveConflict experiments. release unparks it (it then tries to
// commit); wait joins the goroutine.
func parked(t *testing.T, s *stm.STM, obj *stm.Var[int]) (tx *stm.Tx, release, wait func()) {
	t.Helper()
	th := s.NewThread(core.NewGreedy())
	held := make(chan struct{})
	releaseCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = th.Atomically(func(tx *stm.Tx) error {
			if err := stm.Update(tx, obj, func(v int) int { return v + 1 }); err != nil {
				return err
			}
			select {
			case <-held:
			default:
				close(held)
			}
			<-releaseCh
			return nil
		})
	}()
	<-held
	var once sync.Once
	return th.Current(), func() { once.Do(func() { close(releaseCh) }) }, func() { <-done }
}

// twoParked gives two live transactions in timestamp order (older
// first).
func twoParked(t *testing.T) (older, younger *stm.Tx, cleanup func()) {
	t.Helper()
	s := stm.New()
	o1 := stm.NewVar(0)
	o2 := stm.NewVar(0)
	tx1, rel1, wait1 := parked(t, s, o1)
	tx2, rel2, wait2 := parked(t, s, o2)
	if tx1.Timestamp() >= tx2.Timestamp() {
		t.Fatalf("timestamps not monotone: %d then %d", tx1.Timestamp(), tx2.Timestamp())
	}
	return tx1, tx2, func() { rel1(); rel2(); wait1(); wait2() }
}

func TestGreedyAbortsYoungerEnemy(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	g := core.NewGreedy()
	if d := g.ResolveConflict(older, younger); d != stm.AbortOther {
		t.Fatalf("greedy vs younger enemy = %v, want abort-other (Rule 1)", d)
	}
}

func TestGreedyAbortsWaitingEnemy(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	older.SetWaiting(true)
	g := core.NewGreedy()
	if d := g.ResolveConflict(younger, older); d != stm.AbortOther {
		t.Fatalf("greedy vs waiting older enemy = %v, want abort-other (Rule 1)", d)
	}
}

func TestGreedyWaitsForOlderRunningEnemy(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	g := core.NewGreedy()
	// Flip the enemy to waiting shortly, so Rule 2's wait terminates.
	go func() {
		time.Sleep(2 * time.Millisecond)
		older.SetWaiting(true)
	}()
	if d := g.ResolveConflict(younger, older); d != stm.Wait {
		t.Fatalf("greedy vs older running enemy = %v, want wait (Rule 2)", d)
	}
	if younger.Waiting() {
		t.Fatal("waiting flag not cleared after Rule 2 wait returned")
	}
	if older.Status() != stm.StatusActive {
		t.Fatal("greedy aborted a higher-priority enemy")
	}
}

func TestGreedyWaitEndsWhenEnemyCommits(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	g := core.NewGreedy()
	start := make(chan struct{})
	decided := make(chan stm.Decision, 1)
	go func() {
		close(start)
		decided <- g.ResolveConflict(younger, older)
	}()
	<-start
	// Let the waiter spin briefly, then commit the enemy by releasing
	// its parked transaction.
	time.Sleep(time.Millisecond)
	cleanup()
	select {
	case d := <-decided:
		if d != stm.Wait {
			t.Fatalf("decision = %v, want wait", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("greedy Rule 2 wait did not terminate after enemy committed")
	}
}

func TestGreedyTimeoutAbortsHaltedOlderEnemy(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	g := core.NewGreedyTimeoutWith(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		d := g.ResolveConflict(younger, older)
		if d == stm.AbortOther {
			return // recovered from the halted high-priority enemy
		}
		if time.Now().After(deadline) {
			t.Fatal("greedy-timeout never gave up on a halted older enemy")
		}
		runtime.Gosched()
	}
}

func TestGreedyTimeoutStillAbortsYounger(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	g := core.NewGreedyTimeout()
	if d := g.ResolveConflict(older, younger); d != stm.AbortOther {
		t.Fatalf("greedy-timeout vs younger = %v, want abort-other", d)
	}
}

func TestAggressiveAlwaysAborts(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	a := core.NewAggressive()
	if d := a.ResolveConflict(older, younger); d != stm.AbortOther {
		t.Fatalf("aggressive (older) = %v, want abort-other", d)
	}
	if d := a.ResolveConflict(younger, older); d != stm.AbortOther {
		t.Fatalf("aggressive (younger) = %v, want abort-other", d)
	}
}

func TestPoliteBacksOffThenAborts(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	p := core.NewPolite()
	p.MaxTries = 3
	p.Base = time.Microsecond
	for i := 0; i < 3; i++ {
		if d := p.ResolveConflict(younger, older); d != stm.Wait {
			t.Fatalf("polite attempt %d = %v, want wait", i+1, d)
		}
	}
	if d := p.ResolveConflict(younger, older); d != stm.AbortOther {
		t.Fatalf("polite after MaxTries = %v, want abort-other", d)
	}
}

func TestPoliteEpisodeResetsOnOpen(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	p := core.NewPolite()
	p.MaxTries = 2
	p.Base = time.Microsecond
	p.ResolveConflict(younger, older)
	p.Opened(younger, true) // conflict resolved; episode over
	for i := 0; i < 2; i++ {
		if d := p.ResolveConflict(younger, older); d != stm.Wait {
			t.Fatalf("post-reset attempt %d = %v, want wait", i+1, d)
		}
	}
}

func TestRandomizedExtremes(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	always := core.NewRandomized()
	always.P = 1.0
	if d := always.ResolveConflict(older, younger); d != stm.AbortOther {
		t.Fatalf("randomized P=1 = %v, want abort-other", d)
	}
	never := core.NewRandomized()
	never.P = 0.0
	if d := never.ResolveConflict(older, younger); d != stm.Wait {
		t.Fatalf("randomized P=0 = %v, want wait", d)
	}
}

func TestRandomizedMixes(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	r := core.NewRandomized()
	aborts := 0
	const n = 200
	for i := 0; i < n; i++ {
		if r.ResolveConflict(older, younger) == stm.AbortOther {
			aborts++
		}
	}
	if aborts == 0 || aborts == n {
		t.Fatalf("randomized made %d/%d aborts; expected a mixture", aborts, n)
	}
}

func TestKarmaThreshold(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	k := core.NewKarma()
	younger.SetPriority(0)
	older.SetPriority(3)
	// me=younger (karma 0) vs enemy karma 3: attempts 1..3 wait, the
	// 4th attempt (0+4 > 3) kills.
	for i := 1; i <= 3; i++ {
		if d := k.ResolveConflict(younger, older); d != stm.Wait {
			t.Fatalf("karma attempt %d = %v, want wait", i, d)
		}
	}
	if d := k.ResolveConflict(younger, older); d != stm.AbortOther {
		t.Fatalf("karma attempt 4 = %v, want abort-other", d)
	}
}

func TestKarmaRichBeatsPoorImmediately(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	k := core.NewKarma()
	younger.SetPriority(10)
	older.SetPriority(2)
	if d := k.ResolveConflict(younger, older); d != stm.AbortOther {
		t.Fatalf("rich karma vs poor = %v, want abort-other", d)
	}
}

func TestKarmaOpenedAccumulatesPriority(t *testing.T) {
	older, _, cleanup := twoParked(t)
	defer cleanup()
	k := core.NewKarma()
	before := older.Priority()
	k.Opened(older, true)
	k.Opened(older, false)
	if got := older.Priority(); got != before+2 {
		t.Fatalf("priority after 2 opens = %d, want %d", got, before+2)
	}
}

func TestEruptionTransfersMomentum(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	e := core.NewEruption()
	younger.SetPriority(4)
	older.SetPriority(10)
	if d := e.ResolveConflict(younger, older); d != stm.Wait {
		t.Fatalf("eruption first conflict = %v, want wait", d)
	}
	if got := older.Priority(); got != 14 {
		t.Fatalf("enemy priority after transfer = %d, want 14", got)
	}
	// Second call in the same episode must not transfer again.
	e.ResolveConflict(younger, older)
	if got := older.Priority(); got != 14 {
		t.Fatalf("enemy priority after repeat conflict = %d, want 14 (single transfer per episode)", got)
	}
}

func TestPolkaThresholdWithBackoff(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	p := core.NewPolka()
	p.Base = time.Microsecond
	younger.SetPriority(0)
	older.SetPriority(2)
	for i := 1; i <= 2; i++ {
		if d := p.ResolveConflict(younger, older); d != stm.Wait {
			t.Fatalf("polka attempt %d = %v, want wait", i, d)
		}
	}
	if d := p.ResolveConflict(younger, older); d != stm.AbortOther {
		t.Fatalf("polka attempt 3 = %v, want abort-other", d)
	}
}

func TestTimestampKillsYounger(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	ts := core.NewTimestamp()
	if d := ts.ResolveConflict(older, younger); d != stm.AbortOther {
		t.Fatalf("timestamp older-vs-younger = %v, want abort-other", d)
	}
}

func TestTimestampPresumesOlderDeadEventually(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	ts := core.NewTimestamp()
	ts.MaxWaits = 3
	for i := 0; i < 3; i++ {
		if d := ts.ResolveConflict(younger, older); d != stm.Wait {
			t.Fatalf("timestamp wait %d = %v, want wait", i+1, d)
		}
	}
	if d := ts.ResolveConflict(younger, older); d != stm.AbortOther {
		t.Fatalf("timestamp after MaxWaits = %v, want abort-other", d)
	}
}

func TestKillBlockedKillsWaitingEnemy(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	kb := core.NewKillBlocked()
	older.SetWaiting(true)
	if d := kb.ResolveConflict(younger, older); d != stm.AbortOther {
		t.Fatalf("killblocked vs waiting enemy = %v, want abort-other", d)
	}
}

func TestKillBlockedPatienceBound(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	kb := core.NewKillBlocked()
	kb.MaxWaits = 2
	for i := 0; i < 2; i++ {
		if d := kb.ResolveConflict(younger, older); d != stm.Wait {
			t.Fatalf("killblocked wait %d = %v, want wait", i+1, d)
		}
	}
	if d := kb.ResolveConflict(younger, older); d != stm.AbortOther {
		t.Fatalf("killblocked after patience = %v, want abort-other", d)
	}
}

func TestQueueOnBlockTimesOut(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	q := core.NewQueueOnBlock()
	q.MaxWaits = 2
	for i := 0; i < 2; i++ {
		if d := q.ResolveConflict(younger, older); d != stm.Wait {
			t.Fatalf("queueonblock wait %d = %v, want wait", i+1, d)
		}
	}
	if d := q.ResolveConflict(younger, older); d != stm.AbortOther {
		t.Fatalf("queueonblock after timeout = %v, want abort-other", d)
	}
}

func TestKindergartenTakesTurns(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	k := core.NewKindergarten()
	k.Begin(younger)
	if d := k.ResolveConflict(younger, older); d != stm.AbortSelf {
		t.Fatalf("kindergarten first clash = %v, want abort-self (give way)", d)
	}
	k.Begin(younger) // retry of the same logical transaction
	if d := k.ResolveConflict(younger, older); d != stm.AbortOther {
		t.Fatalf("kindergarten second clash = %v, want abort-other (my turn)", d)
	}
}

func TestKindergartenResetsPerTransaction(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	k := core.NewKindergarten()
	k.Begin(younger)
	k.ResolveConflict(younger, older) // yield to older
	k.Begin(older)                    // a different logical transaction begins
	if d := k.ResolveConflict(older, younger); d != stm.AbortSelf {
		t.Fatalf("kindergarten after new transaction = %v, want abort-self (list reset)", d)
	}
}

func TestRegistryNames(t *testing.T) {
	names := core.Names()
	if len(names) < 12 {
		t.Fatalf("registry has %d managers, want >= 12: %v", len(names), names)
	}
	for _, name := range names {
		m, err := core.New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if m == nil {
			t.Fatalf("New(%q) = nil", name)
		}
	}
	if _, err := core.New("nonexistent"); err == nil {
		t.Fatal("New(nonexistent) should fail")
	}
	for _, name := range core.FigureManagers {
		if _, err := core.New(name); err != nil {
			t.Fatalf("figure manager %q missing: %v", name, err)
		}
	}
}

// TestQuickGreedyRules is the property-test form of the two greedy
// rules: for arbitrary waiting-flag states, the decision is AbortOther
// exactly when the enemy is younger or waiting, and Wait otherwise
// (the enemy being flipped to waiting so Rule 2's wait terminates).
func TestQuickGreedyRules(t *testing.T) {
	older, younger, cleanup := twoParked(t)
	defer cleanup()
	g := core.NewGreedy()
	property := func(meIsOlder, enemyWaiting bool) bool {
		me, enemy := older, younger
		if !meIsOlder {
			me, enemy = younger, older
		}
		enemy.SetWaiting(enemyWaiting)
		defer enemy.SetWaiting(false)
		if meIsOlder || enemyWaiting {
			return g.ResolveConflict(me, enemy) == stm.AbortOther
		}
		// Rule 2 would block until the enemy stops running; flip the
		// enemy's flag from another goroutine to terminate the wait.
		done := make(chan stm.Decision, 1)
		go func() { done <- g.ResolveConflict(me, enemy) }()
		time.Sleep(500 * time.Microsecond)
		enemy.SetWaiting(true)
		d := <-done
		enemy.SetWaiting(false)
		return d == stm.Wait
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestLivenessAllManagers runs a small contended counter workload
// under every registered manager: none may deadlock or livelock.
func TestLivenessAllManagers(t *testing.T) {
	for _, name := range core.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			factory, err := core.Factory(name)
			if err != nil {
				t.Fatal(err)
			}
			// The pooled, goroutine-agnostic surface: the factory under
			// test supplies each session's manager.
			s := stm.New(stm.WithManagerFactory(factory))
			obj := stm.NewVar(0)
			const workers, perWorker = 4, 100
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						err := s.Atomically(func(tx *stm.Tx) error {
							return stm.Update(tx, obj, func(v int) int { return v + 1 })
						})
						if err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if got := obj.Peek(); got != workers*perWorker {
				t.Fatalf("counter = %d, want %d", got, workers*perWorker)
			}
		})
	}
}
