package core

import (
	"math/rand/v2"
	"time"

	"repro/internal/stm"
)

// Aggressive always aborts the enemy. It is livelock-prone: two
// transactions repeatedly opening the same objects can abort each
// other forever; no deterministic progress guarantee holds (Section
// 6). It often performs surprisingly well when conflicts are rare
// because it never waits.
type Aggressive struct {
	stm.BaseManager
}

// NewAggressive returns a per-thread aggressive manager.
func NewAggressive() *Aggressive { return &Aggressive{} }

// ResolveConflict implements Manager by always killing the enemy.
func (a *Aggressive) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	return stm.AbortOther
}

// Polite is the exponential-backoff manager (the "Backoff" series of
// the paper's figures). On conflict it spins for a randomized interval
// that doubles with each consecutive clash with the same enemy; after
// a bounded number of backoffs it aborts the enemy. Probabilistically
// well-behaved when transactions have similar lengths, but offers no
// deterministic guarantee, and long transactions suffer against short
// ones.
type Polite struct {
	stm.BaseManager
	rng *rand.Rand
	ep  episode

	// MaxTries is how many randomized backoffs precede aborting the
	// enemy; the default (8) follows Scherer and Scott.
	MaxTries int
	// Base is the first backoff interval; it doubles per attempt.
	Base time.Duration
}

// NewPolite returns a per-thread polite (exponential backoff) manager.
func NewPolite() *Polite {
	return &Polite{rng: newRNG(), MaxTries: 8, Base: 2 * time.Microsecond}
}

// ResolveConflict implements randomized exponential backoff.
func (p *Polite) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	n := p.ep.next(enemy.ID())
	if n > p.MaxTries {
		p.ep.reset()
		return stm.AbortOther
	}
	window := p.Base << uint(n)
	sleepUpTo(p.rng, window)
	return stm.Wait
}

// Opened implements Manager; a successful open ends the episode.
func (p *Polite) Opened(tx *stm.Tx, write bool) { p.ep.reset() }

// Randomized flips a coin on every conflict: abort the enemy with
// probability 1/2, otherwise pause briefly. Simple and livelock-free
// with probability 1, but with no deterministic guarantee and poor
// worst-case behaviour.
type Randomized struct {
	stm.BaseManager
	rng *rand.Rand
	// P is the probability of aborting the enemy on a conflict.
	P float64
}

// NewRandomized returns a per-thread randomized manager with abort
// probability 1/2.
func NewRandomized() *Randomized { return &Randomized{rng: newRNG(), P: 0.5} }

// ResolveConflict implements the coin flip.
func (r *Randomized) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	if r.rng.Float64() < r.P {
		return stm.AbortOther
	}
	sleepUpTo(r.rng, quantum)
	return stm.Wait
}

// sleepUpTo sleeps a uniformly random duration in (0, max], always
// yielding the processor at least once.
func sleepUpTo(rng *rand.Rand, max time.Duration) {
	if max <= 0 {
		max = time.Microsecond
	}
	time.Sleep(time.Duration(1 + rng.Int64N(int64(max))))
}
