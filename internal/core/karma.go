package core

import (
	"math/rand/v2"
	"time"

	"repro/internal/stm"
)

// Karma estimates how much work a transaction has invested — one point
// of priority per object opened, accumulated across aborted attempts —
// and resolves conflicts in favour of the larger investment. A
// conflicting transaction A aborts enemy B once A's priority plus the
// number of attempts A has spent on this conflict exceeds B's
// priority, so even a low-priority transaction eventually wins by
// persistence. Between attempts it waits one quantum.
//
// The paper's Section 6 notes the theoretical weakness: a transaction
// can be starved by a stream of newcomers that each accumulate more
// karma between its retries, so Karma does not satisfy the
// pending-commit property.
type Karma struct {
	stm.BaseManager
	ep episode
}

// NewKarma returns a per-thread karma manager.
func NewKarma() *Karma { return &Karma{} }

// Begin implements Manager. Karma intentionally does not reset
// priority here: accumulated karma survives aborts (that is the whole
// point) and dies with the logical transaction on commit.
func (k *Karma) Begin(tx *stm.Tx) {}

// Opened implements Manager: each opened object is one unit of
// invested work.
func (k *Karma) Opened(tx *stm.Tx, write bool) {
	tx.AddPriority(1)
	k.ep.reset()
}

// ResolveConflict aborts the enemy when our investment plus
// persistence exceeds its investment.
func (k *Karma) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	attempts := k.ep.next(enemy.ID())
	if me.Priority()+int64(attempts) > enemy.Priority() {
		k.ep.reset()
		return stm.AbortOther
	}
	time.Sleep(quantum)
	return stm.Wait
}

// Eruption is Karma with pressure transfer: when a transaction blocks
// behind an enemy it adds its own momentum (priority) to the enemy's,
// so a transaction blocking many others accumulates their weight and
// "erupts" through its own conflicts quickly, unblocking the pile
// behind it.
type Eruption struct {
	stm.BaseManager
	ep          episode
	transferred int64 // momentum already given to the current enemy
}

// NewEruption returns a per-thread eruption manager.
func NewEruption() *Eruption { return &Eruption{} }

// Opened implements Manager: opening gains momentum.
func (e *Eruption) Opened(tx *stm.Tx, write bool) {
	tx.AddPriority(1)
	e.ep.reset()
	e.transferred = 0
}

// ResolveConflict transfers momentum to the blocking enemy, then
// behaves like Karma.
func (e *Eruption) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	attempts := e.ep.next(enemy.ID())
	if attempts == 1 {
		// New stand-off: push our momentum onto the transaction
		// blocking us, once per episode.
		e.transferred = me.Priority()
		enemy.AddPriority(e.transferred)
	}
	if me.Priority()+int64(attempts) > enemy.Priority() {
		e.ep.reset()
		e.transferred = 0
		return stm.AbortOther
	}
	time.Sleep(quantum)
	return stm.Wait
}

// Polka combines Polka's namesakes: POLite + KArma. Priorities are
// Karma's cumulative-opens investment, but instead of fixed quanta the
// loser backs off for randomized exponentially growing intervals, and
// aborts the enemy once its attempts exceed the priority gap.
type Polka struct {
	stm.BaseManager
	rng *rand.Rand
	ep  episode

	// Base is the first backoff interval; it doubles per attempt.
	Base time.Duration
	// MaxExp caps the exponential growth of the backoff window.
	MaxExp int
}

// NewPolka returns a per-thread polka manager.
func NewPolka() *Polka {
	return &Polka{rng: newRNG(), Base: 2 * time.Microsecond, MaxExp: 8}
}

// Opened implements Manager: each opened object is one unit of
// invested work.
func (p *Polka) Opened(tx *stm.Tx, write bool) {
	tx.AddPriority(1)
	p.ep.reset()
}

// ResolveConflict implements Karma's threshold with Polite's backoff.
func (p *Polka) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	attempts := p.ep.next(enemy.ID())
	if me.Priority()+int64(attempts) > enemy.Priority() {
		p.ep.reset()
		return stm.AbortOther
	}
	exp := attempts
	if exp > p.MaxExp {
		exp = p.MaxExp
	}
	sleepUpTo(p.rng, p.Base<<uint(exp))
	return stm.Wait
}
