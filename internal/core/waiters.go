package core

import (
	"time"

	"repro/internal/stm"
)

// Timestamp is Scherer and Scott's timestamp manager. Each transaction
// is stamped when it begins (here: the STM's retained timestamp, which
// strengthens the original — S&S re-stamp on every attempt); on a
// conflict the younger transaction waits for the older one in a series
// of fixed quanta, presuming it dead and aborting it after MaxWaits
// quanta, while an older transaction kills a younger enemy outright.
// Unlike Greedy there is no waiting flag, so chains of waiters may all
// sit out their full patience, and the paper notes only a diminished
// (not zero) livelock probability for the family of timeout-based
// managers.
type Timestamp struct {
	stm.BaseManager
	ep episode
	// MaxWaits is the number of quanta spent waiting for an older
	// enemy before presuming it halted and aborting it.
	MaxWaits int
}

// NewTimestamp returns a per-thread timestamp manager.
func NewTimestamp() *Timestamp { return &Timestamp{MaxWaits: 32} }

// Opened implements Manager; a successful open ends the episode.
func (t *Timestamp) Opened(tx *stm.Tx, write bool) { t.ep.reset() }

// ResolveConflict implements oldest-wins with bounded patience.
func (t *Timestamp) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	if enemy.Timestamp() > me.Timestamp() {
		return stm.AbortOther
	}
	if t.ep.next(enemy.ID()) > t.MaxWaits {
		t.ep.reset()
		return stm.AbortOther
	}
	time.Sleep(quantum)
	return stm.Wait
}

// KillBlocked aborts an enemy as soon as the enemy is itself blocked
// (waiting on a third transaction), and otherwise waits with bounded
// patience before killing it anyway. The insight — waiting
// transactions should not obstruct running ones — is the same one
// Greedy's Rule 1 turns into a provable guarantee.
type KillBlocked struct {
	stm.BaseManager
	ep episode
	// MaxWaits bounds patience with a non-blocked enemy.
	MaxWaits int
}

// NewKillBlocked returns a per-thread killblocked manager.
func NewKillBlocked() *KillBlocked { return &KillBlocked{MaxWaits: 16} }

// Opened implements Manager; a successful open ends the episode.
func (k *KillBlocked) Opened(tx *stm.Tx, write bool) { k.ep.reset() }

// ResolveConflict kills blocked enemies immediately, others after
// MaxWaits quanta.
func (k *KillBlocked) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	if enemy.Waiting() {
		k.ep.reset()
		return stm.AbortOther
	}
	me.SetWaiting(true)
	defer me.SetWaiting(false)
	if k.ep.next(enemy.ID()) > k.MaxWaits {
		k.ep.reset()
		return stm.AbortOther
	}
	time.Sleep(quantum)
	return stm.Wait
}

// QueueOnBlock makes the conflicting transaction wait for the enemy to
// finish, first-come first-served. As Scherer and Scott observe (and
// the paper repeats), pure queueing is prone to dependency cycles —
// A waits for B while B waits for A — so a timeout breaks the cycle by
// aborting the enemy; with the timeout disabled (MaxWaits <= 0) the
// cycle-proneness is directly demonstrable (see the package tests).
type QueueOnBlock struct {
	stm.BaseManager
	ep episode
	// MaxWaits bounds queueing patience; values <= 0 mean wait
	// forever, reproducing the manager's dependency-cycle hazard.
	MaxWaits int
}

// NewQueueOnBlock returns a per-thread queueing manager with a cycle-
// breaking timeout.
func NewQueueOnBlock() *QueueOnBlock { return &QueueOnBlock{MaxWaits: 64} }

// Opened implements Manager; a successful open ends the episode.
func (q *QueueOnBlock) Opened(tx *stm.Tx, write bool) { q.ep.reset() }

// ResolveConflict waits in line behind the enemy.
func (q *QueueOnBlock) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	if q.MaxWaits > 0 && q.ep.next(enemy.ID()) > q.MaxWaits {
		q.ep.reset()
		return stm.AbortOther
	}
	me.SetWaiting(true)
	defer me.SetWaiting(false)
	for spin := 0; enemy.Status() == stm.StatusActive; spin++ {
		if me.Status() != stm.StatusActive {
			break
		}
		if spin >= 4 {
			// Re-enter ResolveConflict so the timeout can count.
			break
		}
		stm.Backoff(spin)
	}
	return stm.Wait
}

// Kindergarten enforces turn-taking ("you went first last time, now I
// go"). Each transaction keeps a list of enemies in whose favour it
// has already stepped aside; on a conflict with a new enemy it aborts
// itself and retries (giving way), while a conflict with an enemy
// already on the list is resolved by aborting the enemy.
type Kindergarten struct {
	stm.BaseManager
	yielded map[uint64]bool
	lastTx  uint64
}

// NewKindergarten returns a per-thread kindergarten manager.
func NewKindergarten() *Kindergarten {
	return &Kindergarten{yielded: make(map[uint64]bool)}
}

// Begin implements Manager: the give-way list is per logical
// transaction, so it resets when a new transaction starts (but not on
// retries of the same one — forgetting past yields would defeat the
// turn-taking).
func (k *Kindergarten) Begin(tx *stm.Tx) {
	if tx.ID() != k.lastTx {
		k.lastTx = tx.ID()
		clear(k.yielded)
	}
}

// ResolveConflict gives way once per enemy, then kills.
func (k *Kindergarten) ResolveConflict(me, enemy *stm.Tx) stm.Decision {
	if k.yielded[enemy.ID()] {
		return stm.AbortOther
	}
	k.yielded[enemy.ID()] = true
	stm.Backoff(1) // step aside briefly before restarting
	return stm.AbortSelf
}
