package intset

import (
	"math"

	"repro/internal/stm"
)

// listNode is one cell of the sorted singly-linked list. next is the
// handle of the following cell; handles are immutable, so the default
// shallow copy taken by the STM is safe.
type listNode struct {
	key  int
	next *stm.Var[listNode] // nil only past the tail sentinel
}

// List is the paper's list application: a sorted singly-linked list
// with head and tail sentinels. Transactions traverse from the head,
// so every update conflicts with every concurrent access to a node at
// or before its position — the highest-contention structure of the
// four benchmarks.
type List struct {
	head *stm.Var[listNode]
}

// NewList returns an empty sorted list.
func NewList() *List {
	tail := stm.NewVar(listNode{key: math.MaxInt})
	head := stm.NewVar(listNode{key: math.MinInt, next: tail})
	return &List{head: head}
}

// locate returns the handle of the rightmost node with key strictly
// less than key (the insertion predecessor) and the value of its
// successor. Reads through the typed API see the transaction's own
// writes, so repeated operations within one transaction compose.
func (l *List) locate(tx *stm.Tx, key int) (prevVar *stm.Var[listNode], next listNode, err error) {
	prevVar = l.head
	prev, err := stm.Read(tx, prevVar)
	if err != nil {
		return nil, listNode{}, err
	}
	for {
		next, err = stm.Read(tx, prev.next)
		if err != nil {
			return nil, listNode{}, err
		}
		if next.key >= key {
			return prevVar, next, nil
		}
		prevVar, prev = prev.next, next
	}
}

// Insert implements Set.
func (l *List) Insert(tx *stm.Tx, key int) (bool, error) {
	prevVar, next, err := l.locate(tx, key)
	if err != nil {
		return false, err
	}
	if next.key == key {
		return false, nil
	}
	// Splice through the predecessor's private copy: the new cell
	// inherits its successor from the version this transaction will
	// commit, which validation guarantees is the version locate saw.
	err = stm.Update(tx, prevVar, func(prev listNode) listNode {
		prev.next = stm.NewVar(listNode{key: key, next: prev.next})
		return prev
	})
	if err != nil {
		return false, err
	}
	return true, nil
}

// Remove implements Set.
func (l *List) Remove(tx *stm.Tx, key int) (bool, error) {
	prevVar, next, err := l.locate(tx, key)
	if err != nil {
		return false, err
	}
	if next.key != key {
		return false, nil
	}
	// Unlink by pointing past the victim. locate's view of the victim
	// is the one this transaction commits against (reads are validated
	// and own writes are visible), so next.next is the right successor.
	err = stm.Update(tx, prevVar, func(prev listNode) listNode {
		prev.next = next.next
		return prev
	})
	if err != nil {
		return false, err
	}
	return true, nil
}

// Contains implements Set.
func (l *List) Contains(tx *stm.Tx, key int) (bool, error) {
	_, next, err := l.locate(tx, key)
	if err != nil {
		return false, err
	}
	return next.key == key, nil
}

// Keys implements Set.
func (l *List) Keys(tx *stm.Tx) ([]int, error) {
	var keys []int
	cur, err := stm.Read(tx, l.head)
	if err != nil {
		return nil, err
	}
	for cur.next != nil {
		next, err := stm.Read(tx, cur.next)
		if err != nil {
			return nil, err
		}
		if next.next == nil { // tail sentinel
			break
		}
		keys = append(keys, next.key)
		cur = next
	}
	return keys, nil
}
