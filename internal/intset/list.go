package intset

import (
	"math"

	"repro/internal/stm"
)

// listNode is one cell of the sorted singly-linked list. next is the
// handle of the following cell's container; handles are immutable, so
// the shallow Clone is safe.
type listNode struct {
	key  int
	next *stm.TObj // holds *listNode; nil handle only past the tail sentinel
}

// Clone implements stm.Value.
func (n *listNode) Clone() stm.Value {
	c := *n
	return &c
}

// List is the paper's list application: a sorted singly-linked list
// with head and tail sentinels. Transactions traverse from the head,
// so every update conflicts with every concurrent access to a node at
// or before its position — the highest-contention structure of the
// four benchmarks.
type List struct {
	head *stm.TObj
}

// NewList returns an empty sorted list.
func NewList() *List {
	tail := stm.NewTObj(&listNode{key: math.MaxInt, next: nil})
	head := stm.NewTObj(&listNode{key: math.MinInt, next: tail})
	return &List{head: head}
}

// locate returns the handle and value of the rightmost node with key
// strictly less than key (the insertion predecessor), plus the value
// of its successor.
func (l *List) locate(tx *stm.Tx, key int) (prevObj *stm.TObj, prev, next *listNode, err error) {
	prevObj = l.head
	v, err := tx.OpenRead(prevObj)
	if err != nil {
		return nil, nil, nil, err
	}
	prev = v.(*listNode)
	for {
		nv, err := tx.OpenRead(prev.next)
		if err != nil {
			return nil, nil, nil, err
		}
		next = nv.(*listNode)
		if next.key >= key {
			return prevObj, prev, next, nil
		}
		prevObj = prev.next
		prev = next
	}
}

// Insert implements Set.
func (l *List) Insert(tx *stm.Tx, key int) (bool, error) {
	prevObj, _, next, err := l.locate(tx, key)
	if err != nil {
		return false, err
	}
	if next.key == key {
		return false, nil
	}
	pv, err := tx.OpenWrite(prevObj)
	if err != nil {
		return false, err
	}
	prev := pv.(*listNode)
	node := stm.NewTObj(&listNode{key: key, next: prev.next})
	prev.next = node
	return true, nil
}

// Remove implements Set.
func (l *List) Remove(tx *stm.Tx, key int) (bool, error) {
	prevObj, _, next, err := l.locate(tx, key)
	if err != nil {
		return false, err
	}
	if next.key != key {
		return false, nil
	}
	pv, err := tx.OpenWrite(prevObj)
	if err != nil {
		return false, err
	}
	prev := pv.(*listNode)
	// Unlink by pointing past the victim; re-read the victim through
	// the current predecessor value in case locate's view moved.
	vv, err := tx.OpenRead(prev.next)
	if err != nil {
		return false, err
	}
	victim := vv.(*listNode)
	if victim.key != key {
		return false, nil
	}
	prev.next = victim.next
	return true, nil
}

// Contains implements Set.
func (l *List) Contains(tx *stm.Tx, key int) (bool, error) {
	_, _, next, err := l.locate(tx, key)
	if err != nil {
		return false, err
	}
	return next.key == key, nil
}

// Keys implements Set.
func (l *List) Keys(tx *stm.Tx) ([]int, error) {
	var keys []int
	v, err := tx.OpenRead(l.head)
	if err != nil {
		return nil, err
	}
	cur := v.(*listNode)
	for cur.next != nil {
		nv, err := tx.OpenRead(cur.next)
		if err != nil {
			return nil, err
		}
		next := nv.(*listNode)
		if next.next == nil { // tail sentinel
			break
		}
		keys = append(keys, next.key)
		cur = next
	}
	return keys, nil
}
