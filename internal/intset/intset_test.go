package intset_test

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/stm"
)

// world wires a fresh STM whose pooled sessions use the greedy
// manager; sequential structure tests drive it through the
// goroutine-agnostic Atomically.
func world(t *testing.T) *stm.STM {
	t.Helper()
	return stm.New(stm.WithManagerFactory(core.MustFactory("greedy")))
}

func mustInsert(t *testing.T, w *stm.STM, s intset.Set, key int) bool {
	t.Helper()
	var ok bool
	err := w.Atomically(func(tx *stm.Tx) error {
		var err error
		ok, err = s.Insert(tx, key)
		return err
	})
	if err != nil {
		t.Fatalf("Insert(%d): %v", key, err)
	}
	return ok
}

func mustRemove(t *testing.T, w *stm.STM, s intset.Set, key int) bool {
	t.Helper()
	var ok bool
	err := w.Atomically(func(tx *stm.Tx) error {
		var err error
		ok, err = s.Remove(tx, key)
		return err
	})
	if err != nil {
		t.Fatalf("Remove(%d): %v", key, err)
	}
	return ok
}

func mustContains(t *testing.T, w *stm.STM, s intset.Set, key int) bool {
	t.Helper()
	var ok bool
	err := w.Atomically(func(tx *stm.Tx) error {
		var err error
		ok, err = s.Contains(tx, key)
		return err
	})
	if err != nil {
		t.Fatalf("Contains(%d): %v", key, err)
	}
	return ok
}

func mustKeys(t *testing.T, w *stm.STM, s intset.Set) []int {
	t.Helper()
	var keys []int
	err := w.Atomically(func(tx *stm.Tx) error {
		var err error
		keys, err = s.Keys(tx)
		return err
	})
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	return keys
}

// eachStructure runs the subtest against every benchmark structure.
func eachStructure(t *testing.T, fn func(t *testing.T, fresh func() intset.Set)) {
	t.Helper()
	cases := map[string]func() intset.Set{
		"list":     func() intset.Set { return intset.NewList() },
		"skiplist": func() intset.Set { return intset.NewSkipList() },
		"rbtree":   func() intset.Set { return intset.NewRBTree() },
		"rbforest": func() intset.Set { return intset.NewRBForest(5) },
	}
	for name, fresh := range cases {
		t.Run(name, func(t *testing.T) { fn(t, fresh) })
	}
}

func TestEmptySet(t *testing.T) {
	eachStructure(t, func(t *testing.T, fresh func() intset.Set) {
		w := world(t)
		s := fresh()
		if mustContains(t, w, s, 7) {
			t.Fatal("empty set contains 7")
		}
		if mustRemove(t, w, s, 7) {
			t.Fatal("removing from empty set reported a change")
		}
		if keys := mustKeys(t, w, s); len(keys) != 0 {
			t.Fatalf("empty set keys = %v", keys)
		}
	})
}

func TestInsertRemoveRoundTrip(t *testing.T) {
	eachStructure(t, func(t *testing.T, fresh func() intset.Set) {
		w := world(t)
		s := fresh()
		if !mustInsert(t, w, s, 42) {
			t.Fatal("first insert reported no change")
		}
		if mustInsert(t, w, s, 42) {
			t.Fatal("duplicate insert reported a change")
		}
		if !mustContains(t, w, s, 42) {
			t.Fatal("set does not contain inserted key")
		}
		if !mustRemove(t, w, s, 42) {
			t.Fatal("remove reported no change")
		}
		if mustContains(t, w, s, 42) {
			t.Fatal("set contains removed key")
		}
	})
}

func TestKeysSortedAscending(t *testing.T) {
	eachStructure(t, func(t *testing.T, fresh func() intset.Set) {
		w := world(t)
		s := fresh()
		for _, k := range []int{5, 1, 9, 3, 7, 0, 8, 2, 6, 4} {
			mustInsert(t, w, s, k)
		}
		want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		if got := mustKeys(t, w, s); !reflect.DeepEqual(got, want) {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	})
}

// TestAgainstModel drives every structure with a scripted random
// sequence and checks each reply and the final contents against a
// map-based model.
func TestAgainstModel(t *testing.T) {
	eachStructure(t, func(t *testing.T, fresh func() intset.Set) {
		w := world(t)
		s := fresh()
		model := make(map[int]bool)
		rng := rand.New(rand.NewPCG(1, 2))
		for i := 0; i < 2000; i++ {
			key := int(rng.Int64N(64))
			switch rng.Int64N(3) {
			case 0:
				want := !model[key]
				model[key] = true
				if got := mustInsert(t, w, s, key); got != want {
					t.Fatalf("op %d: Insert(%d) = %v, want %v", i, key, got, want)
				}
			case 1:
				want := model[key]
				delete(model, key)
				if got := mustRemove(t, w, s, key); got != want {
					t.Fatalf("op %d: Remove(%d) = %v, want %v", i, key, got, want)
				}
			default:
				if got := mustContains(t, w, s, key); got != model[key] {
					t.Fatalf("op %d: Contains(%d) = %v, want %v", i, key, got, model[key])
				}
			}
		}
		var want []int
		for k := range model {
			want = append(want, k)
		}
		sort.Ints(want)
		got := mustKeys(t, w, s)
		if len(got) == 0 && len(want) == 0 {
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("final keys = %v, want %v", got, want)
		}
	})
}

// TestQuickSetSemantics is the property-test version of the model
// check: arbitrary operation strings over a small key space preserve
// set semantics on every structure.
func TestQuickSetSemantics(t *testing.T) {
	eachStructure(t, func(t *testing.T, fresh func() intset.Set) {
		property := func(ops []uint16) bool {
			w := world(t)
			s := fresh()
			model := make(map[int]bool)
			for _, op := range ops {
				key := int(op & 0x1f)
				var got, want bool
				var err error
				txErr := w.Atomically(func(tx *stm.Tx) error {
					switch op >> 14 {
					case 0, 2:
						got, err = s.Insert(tx, key)
					case 1:
						got, err = s.Remove(tx, key)
					default:
						got, err = s.Contains(tx, key)
					}
					return err
				})
				if txErr != nil {
					return false
				}
				switch op >> 14 {
				case 0, 2:
					want = !model[key]
					model[key] = true
				case 1:
					want = model[key]
					delete(model, key)
				default:
					want = model[key]
				}
				if got != want {
					return false
				}
			}
			return true
		}
		if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRBTreeInvariantsUnderRandomOps hammers the red-black tree
// sequentially and audits the invariants after every operation.
func TestRBTreeInvariantsUnderRandomOps(t *testing.T) {
	w := world(t)
	tree := intset.NewRBTree()
	rng := rand.New(rand.NewPCG(7, 11))
	for i := 0; i < 3000; i++ {
		key := int(rng.Int64N(128))
		// Decide the operation before the transaction: a retried body
		// must not re-draw it (txpure) — moot in this sequential test,
		// but the fixture should model the idiom it audits.
		insert := rng.Int64N(2) == 0
		err := w.Atomically(func(tx *stm.Tx) error {
			var err error
			if insert {
				_, err = tree.Insert(tx, key)
			} else {
				_, err = tree.Remove(tx, key)
			}
			if err != nil {
				return err
			}
			return tree.CheckInvariants(tx)
		})
		if err != nil {
			t.Fatalf("op %d (key %d): %v", i, key, err)
		}
	}
}

// TestQuickRBTreeInvariants: arbitrary insert/delete scripts leave a
// valid red-black tree matching a model set.
func TestQuickRBTreeInvariants(t *testing.T) {
	property := func(script []int16) bool {
		w := world(t)
		tree := intset.NewRBTree()
		model := make(map[int]bool)
		for _, op := range script {
			key := int(op & 0xff)
			insert := op >= 0
			err := w.Atomically(func(tx *stm.Tx) error {
				var err error
				if insert {
					_, err = tree.Insert(tx, key)
				} else {
					_, err = tree.Remove(tx, key)
				}
				if err != nil {
					return err
				}
				return tree.CheckInvariants(tx)
			})
			if err != nil {
				return false
			}
			if insert {
				model[key] = true
			} else {
				delete(model, key)
			}
		}
		var want []int
		for k := range model {
			want = append(want, k)
		}
		sort.Ints(want)
		got := mustKeys(t, w, tree)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// runConcurrentAudit stresses a structure with parallel workers under
// the given manager and audits the final contents against the set of
// keys whose last committed operation was an insert. Exact final
// contents cannot be predicted under concurrency, so instead each
// worker tracks its own committed operations and we check agreement of
// the final Keys with a replay that respects commit order per key —
// simplified here to checking structural integrity plus Contains
// consistency for every key in/out of Keys.
func runConcurrentAudit(t *testing.T, fresh func() intset.Set, factory stm.ManagerFactory, workers, ops int) {
	t.Helper()
	s := stm.New(stm.WithManagerFactory(factory))
	set := fresh()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewPCG(uint64(w), 99))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := int(rng.Int64N(48))
				insert := rng.Int64N(2) == 0
				err := s.Atomically(func(tx *stm.Tx) error {
					var err error
					if insert {
						_, err = set.Insert(tx, key)
					} else {
						_, err = set.Remove(tx, key)
					}
					return err
				})
				if err != nil {
					errs <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Structural audit.
	keys := mustKeys(t, s, set)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("final keys not strictly ascending: %v", keys)
		}
	}
	inSet := make(map[int]bool, len(keys))
	for _, k := range keys {
		inSet[k] = true
	}
	for key := 0; key < 48; key++ {
		if got := mustContains(t, s, set, key); got != inSet[key] {
			t.Fatalf("Contains(%d) = %v disagrees with Keys %v", key, got, keys)
		}
	}
	if tree, ok := set.(*intset.RBTree); ok {
		if err := s.Atomically(tree.CheckInvariants); err != nil {
			t.Fatalf("red-black invariants violated after concurrent run: %v", err)
		}
	}
}

func TestConcurrentListGreedy(t *testing.T) {
	runConcurrentAudit(t, func() intset.Set { return intset.NewList() },
		func() stm.Manager { return core.NewGreedy() }, 6, 120)
}

func TestConcurrentSkipListGreedy(t *testing.T) {
	runConcurrentAudit(t, func() intset.Set { return intset.NewSkipList() },
		func() stm.Manager { return core.NewGreedy() }, 6, 120)
}

func TestConcurrentRBTreeGreedy(t *testing.T) {
	runConcurrentAudit(t, func() intset.Set { return intset.NewRBTree() },
		func() stm.Manager { return core.NewGreedy() }, 6, 120)
}

func TestConcurrentRBTreeAggressive(t *testing.T) {
	runConcurrentAudit(t, func() intset.Set { return intset.NewRBTree() },
		func() stm.Manager { return core.NewAggressive() }, 4, 80)
}

func TestConcurrentListKarma(t *testing.T) {
	runConcurrentAudit(t, func() intset.Set { return intset.NewList() },
		func() stm.Manager { return core.NewKarma() }, 4, 80)
}

// TestLazySTMRunsStructures drives every structure on a lazy-mode STM
// (commit-time conflict detection): the structures are detection-mode
// agnostic, and the concurrent audit must still hold.
func TestLazySTMRunsStructures(t *testing.T) {
	eachStructure(t, func(t *testing.T, fresh func() intset.Set) {
		s := stm.New(stm.WithLazyConflicts(), stm.WithInterleavePeriod(4),
			stm.WithManagerFactory(core.MustFactory("greedy")))
		set := fresh()
		var wg sync.WaitGroup
		errs := make(chan error, 4)
		for w := 0; w < 4; w++ {
			rng := rand.New(rand.NewPCG(uint64(w), 3))
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 60; i++ {
					key := int(rng.Int64N(32))
					insert := rng.Int64N(2) == 0
					err := s.Atomically(func(tx *stm.Tx) error {
						var err error
						if insert {
							_, err = set.Insert(tx, key)
						} else {
							_, err = set.Remove(tx, key)
						}
						return err
					})
					if err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		keys := mustKeys(t, s, set)
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("keys not ascending after lazy run: %v", keys)
			}
		}
		if tree, ok := set.(*intset.RBTree); ok {
			if err := s.Atomically(tree.CheckInvariants); err != nil {
				t.Fatalf("lazy rbtree invariants: %v", err)
			}
		}
	})
}

func TestForestOneOrAll(t *testing.T) {
	w := world(t)
	forest := intset.NewRBForest(7)
	// InsertAll plants the key everywhere; RemoveOne carves one tree.
	err := w.Atomically(func(tx *stm.Tx) error {
		if _, err := forest.InsertAll(tx, 5); err != nil {
			return err
		}
		_, err := forest.RemoveOne(tx, 3, 5)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < forest.Size(); i++ {
		var got bool
		err := w.Atomically(func(tx *stm.Tx) error {
			var err error
			got, err = forest.ContainsIn(tx, i, 5)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		want := i != 3
		if got != want {
			t.Fatalf("tree %d contains 5 = %v, want %v", i, got, want)
		}
	}
}

func TestForestIndexOutOfRange(t *testing.T) {
	w := world(t)
	forest := intset.NewRBForest(3)
	err := w.Atomically(func(tx *stm.Tx) error {
		_, err := forest.InsertOne(tx, 9, 1)
		return err
	})
	if err == nil {
		t.Fatal("InsertOne with out-of-range tree index succeeded")
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range intset.Structures {
		s, err := intset.NewByName(name)
		if err != nil {
			t.Fatalf("NewByName(%q): %v", name, err)
		}
		if s == nil {
			t.Fatalf("NewByName(%q) = nil", name)
		}
	}
	if _, err := intset.NewByName("btree"); err == nil {
		t.Fatal("NewByName(btree) should fail")
	}
}
