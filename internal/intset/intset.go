// Package intset provides the transactional integer-set data
// structures used as benchmark applications in the paper's Figures
// 1–4: a sorted linked list, a skiplist, a red-black tree, and a
// red-black forest (fifty red-black trees updated either one at a time
// or all at once, giving transaction lengths high variance).
//
// All structures are built on the typed API of internal/stm: every
// node lives in its own stm.Var, traversals Read nodes and updates
// Update the modified nodes, so the conflict profile seen by the
// contention manager matches the DSTM/SXM benchmarks the paper
// measured (long read chains for lists, short paths for trees,
// root-adjacent write hot spots under rebalancing). The skiplist
// installs an stm.Cloner for its link slices; the list and tree nodes
// are plain data plus immutable handles, covered by the default
// shallow copy.
package intset

import (
	"fmt"

	"repro/internal/stm"
)

// Set is the transactional set-of-integers interface shared by the
// benchmark structures. All methods must be called inside a
// transaction and their errors propagated so the STM can retry.
type Set interface {
	// Insert adds key and reports whether the set changed.
	Insert(tx *stm.Tx, key int) (bool, error)
	// Remove deletes key and reports whether the set changed.
	Remove(tx *stm.Tx, key int) (bool, error)
	// Contains reports whether key is present.
	Contains(tx *stm.Tx, key int) (bool, error)
	// Keys returns the keys in ascending order.
	Keys(tx *stm.Tx) ([]int, error)
}

// NewByName constructs one of the benchmark structures by its name in
// the paper: "list", "skiplist", "rbtree" or "rbforest".
func NewByName(name string) (Set, error) {
	switch name {
	case "list":
		return NewList(), nil
	case "skiplist":
		return NewSkipList(), nil
	case "rbtree":
		return NewRBTree(), nil
	case "rbforest":
		return NewRBForest(DefaultForestSize), nil
	default:
		return nil, fmt.Errorf("intset: unknown structure %q", name)
	}
}

// Structures lists the benchmark structure names in figure order.
var Structures = []string{"list", "skiplist", "rbtree", "rbforest"}
