package intset

import (
	"fmt"

	"repro/internal/stm"
)

// rbRef is a handle to one transactional red-black node; handles are
// immutable and safe to share across versions.
type rbRef = *stm.Var[rbNode]

// rbNode is one node of the red-black tree. Child and parent fields
// are handles; nil-leaf links point at the tree's shared immutable
// sentinel and the root's parent is the tree's header pseudo-node.
// The node is plain data plus handles, so the STM's default shallow
// copy is the correct clone.
type rbNode struct {
	key    int
	red    bool
	left   rbRef
	right  rbRef
	parent rbRef
}

// RBTree is the paper's red-black tree application: a CLRS-style
// red-black tree in which every node is a transactional variable.
// Lookups read a root-to-leaf path; updates additionally write the
// rebalanced region, so concurrent transactions conflict when their
// paths overlap at a written node — rare for a 256-key tree, which is
// what makes this the paper's low-contention benchmark (Figure 3).
//
// Two special handles bracket the structure: a never-written black
// sentinel plays CLRS's T.nil (it is never opened, so it causes no
// conflicts), and a header pseudo-node whose left child is the root
// (so "the root pointer" is itself transactional data).
type RBTree struct {
	header rbRef
	nil_   rbRef
}

// NewRBTree returns an empty red-black tree.
func NewRBTree() *RBTree {
	nilH := stm.NewNamedVar("rb-nil", rbNode{red: false})
	header := stm.NewNamedVar("rb-header", rbNode{left: nilH, right: nilH})
	return &RBTree{header: header, nil_: nilH}
}

// rbOps is a sticky-error view of the tree inside one transaction: the
// first STM error latches and turns every subsequent call into a no-op,
// so the CLRS pseudo-code transcribes without an error check per line.
type rbOps struct {
	t   *RBTree
	tx  *stm.Tx
	err error
}

func (t *RBTree) ops(tx *stm.Tx) *rbOps {
	//stm:escape(rbOps is attempt-scoped: built and dropped inside one transaction body, never stored beyond it)
	return &rbOps{t: t, tx: tx}
}

// node reads h by value. Reads of our own written nodes see the
// private copy, so reads issued after writes are always current.
func (o *rbOps) node(h rbRef) rbNode {
	if o.err != nil {
		return rbNode{}
	}
	if h == o.t.nil_ {
		// The sentinel is immutable: skip the STM so that it never
		// enters any read set.
		return h.Peek()
	}
	n, err := stm.Read(o.tx, h)
	if err != nil {
		o.err = err
		return rbNode{}
	}
	return n
}

// update applies f to h's private copy — the read-modify-write every
// structural mutation below goes through.
func (o *rbOps) update(h rbRef, f func(*rbNode)) {
	if o.err != nil {
		return
	}
	if h == o.t.nil_ {
		o.err = fmt.Errorf("intset: attempt to write the red-black nil sentinel")
		return
	}
	if err := stm.Update(o.tx, h, func(n rbNode) rbNode {
		f(&n)
		return n
	}); err != nil {
		o.err = err
	}
}

func (o *rbOps) isRed(h rbRef) bool {
	if h == o.t.nil_ || h == o.t.header {
		return false
	}
	return o.node(h).red
}

func (o *rbOps) left(h rbRef) rbRef   { return o.node(h).left }
func (o *rbOps) right(h rbRef) rbRef  { return o.node(h).right }
func (o *rbOps) parent(h rbRef) rbRef { return o.node(h).parent }
func (o *rbOps) root() rbRef          { return o.left(o.t.header) }
func (o *rbOps) setRed(h rbRef, red bool) {
	o.update(h, func(n *rbNode) { n.red = red })
}
func (o *rbOps) setLeft(h, c rbRef) {
	o.update(h, func(n *rbNode) { n.left = c })
}
func (o *rbOps) setRight(h, c rbRef) {
	o.update(h, func(n *rbNode) { n.right = c })
}
func (o *rbOps) setParent(h, p rbRef) {
	o.update(h, func(n *rbNode) { n.parent = p })
}

// replaceChild repoints p's link to old so it refers to new. It works
// uniformly for the header (whose left child is the root).
func (o *rbOps) replaceChild(p, old, new rbRef) {
	if o.left(p) == old {
		o.setLeft(p, new)
	} else {
		o.setRight(p, new)
	}
}

// rotateLeft performs the CLRS left rotation about x.
func (o *rbOps) rotateLeft(x rbRef) {
	y := o.right(x)
	yl := o.left(y)
	o.setRight(x, yl)
	if yl != o.t.nil_ {
		o.setParent(yl, x)
	}
	p := o.parent(x)
	o.setParent(y, p)
	o.replaceChild(p, x, y)
	o.setLeft(y, x)
	o.setParent(x, y)
}

// rotateRight performs the mirror rotation about x.
func (o *rbOps) rotateRight(x rbRef) {
	y := o.left(x)
	yr := o.right(y)
	o.setLeft(x, yr)
	if yr != o.t.nil_ {
		o.setParent(yr, x)
	}
	p := o.parent(x)
	o.setParent(y, p)
	o.replaceChild(p, x, y)
	o.setRight(y, x)
	o.setParent(x, y)
}

// search descends to the node holding key, or the sentinel.
func (o *rbOps) search(key int) rbRef {
	h := o.root()
	for h != o.t.nil_ && o.err == nil {
		n := o.node(h)
		switch {
		case key < n.key:
			h = n.left
		case key > n.key:
			h = n.right
		default:
			return h
		}
	}
	return o.t.nil_
}

// minimum descends to the leftmost node of the subtree rooted at h
// (h must not be the sentinel).
func (o *rbOps) minimum(h rbRef) rbRef {
	for o.err == nil {
		l := o.left(h)
		if l == o.t.nil_ {
			return h
		}
		h = l
	}
	return h
}

// Insert implements Set.
func (t *RBTree) Insert(tx *stm.Tx, key int) (bool, error) {
	o := t.ops(tx)
	// Find the insertion parent.
	parent := t.header
	h := o.root()
	for h != t.nil_ && o.err == nil {
		n := o.node(h)
		parent = h
		switch {
		case key < n.key:
			h = n.left
		case key > n.key:
			h = n.right
		default:
			return false, o.err // already present
		}
	}
	if o.err != nil {
		return false, o.err
	}
	z := stm.NewVar(rbNode{key: key, red: true, left: t.nil_, right: t.nil_, parent: parent})
	if parent == t.header {
		o.setLeft(t.header, z)
	} else if key < o.node(parent).key {
		o.setLeft(parent, z)
	} else {
		o.setRight(parent, z)
	}
	o.insertFixup(z)
	if root := o.root(); root != t.nil_ && o.isRed(root) {
		o.setRed(root, false)
	}
	return true, o.err
}

// insertFixup restores the red-black invariants after inserting the
// red node z (CLRS 13.3). The loop never reaches the header: a red
// parent is never the root, so the grandparent is always a real node.
func (o *rbOps) insertFixup(z rbRef) {
	for o.err == nil {
		zp := o.parent(z)
		if zp == o.t.header || !o.isRed(zp) {
			return
		}
		zpp := o.parent(zp)
		if zp == o.left(zpp) {
			uncle := o.right(zpp)
			if o.isRed(uncle) {
				o.setRed(zp, false)
				o.setRed(uncle, false)
				o.setRed(zpp, true)
				z = zpp
				continue
			}
			if z == o.right(zp) {
				z = zp
				o.rotateLeft(z)
				zp = o.parent(z)
				zpp = o.parent(zp)
			}
			o.setRed(zp, false)
			o.setRed(zpp, true)
			o.rotateRight(zpp)
			return
		}
		uncle := o.left(zpp)
		if o.isRed(uncle) {
			o.setRed(zp, false)
			o.setRed(uncle, false)
			o.setRed(zpp, true)
			z = zpp
			continue
		}
		if z == o.left(zp) {
			z = zp
			o.rotateRight(z)
			zp = o.parent(z)
			zpp = o.parent(zp)
		}
		o.setRed(zp, false)
		o.setRed(zpp, true)
		o.rotateLeft(zpp)
		return
	}
}

// transplant replaces the subtree rooted at u with the one rooted at
// v (CLRS 13.4), without ever writing the sentinel's parent link.
func (o *rbOps) transplant(u, v rbRef) {
	p := o.parent(u)
	o.replaceChild(p, u, v)
	if v != o.t.nil_ {
		o.setParent(v, p)
	}
}

// Remove implements Set.
func (t *RBTree) Remove(tx *stm.Tx, key int) (bool, error) {
	o := t.ops(tx)
	z := o.search(key)
	if o.err != nil || z == t.nil_ {
		return false, o.err
	}
	y := z
	yWasRed := o.isRed(y)
	var x, xParent rbRef
	switch {
	case o.left(z) == t.nil_:
		x = o.right(z)
		xParent = o.parent(z)
		o.transplant(z, x)
	case o.right(z) == t.nil_:
		x = o.left(z)
		xParent = o.parent(z)
		o.transplant(z, x)
	default:
		y = o.minimum(o.right(z))
		yWasRed = o.isRed(y)
		x = o.right(y)
		if o.parent(y) == z {
			xParent = y
			if x != t.nil_ {
				o.setParent(x, y)
			}
		} else {
			xParent = o.parent(y)
			o.transplant(y, x)
			o.setRight(y, o.right(z))
			o.setParent(o.right(y), y)
		}
		o.transplant(z, y)
		o.setLeft(y, o.left(z))
		o.setParent(o.left(y), y)
		o.setRed(y, o.isRed(z))
	}
	if o.err == nil && !yWasRed {
		o.deleteFixup(x, xParent)
	}
	return true, o.err
}

// deleteFixup restores the invariants after removing a black node
// (CLRS 13.4 with x's parent threaded explicitly, since x may be the
// unwritable sentinel).
func (o *rbOps) deleteFixup(x, xParent rbRef) {
	for o.err == nil && x != o.root() && !o.isRed(x) {
		if x == o.left(xParent) {
			w := o.right(xParent)
			if o.isRed(w) {
				o.setRed(w, false)
				o.setRed(xParent, true)
				o.rotateLeft(xParent)
				w = o.right(xParent)
			}
			if !o.isRed(o.left(w)) && !o.isRed(o.right(w)) {
				o.setRed(w, true)
				x = xParent
				xParent = o.parent(x)
				continue
			}
			if !o.isRed(o.right(w)) {
				o.setRed(o.left(w), false)
				o.setRed(w, true)
				o.rotateRight(w)
				w = o.right(xParent)
			}
			o.setRed(w, o.isRed(xParent))
			o.setRed(xParent, false)
			o.setRed(o.right(w), false)
			o.rotateLeft(xParent)
			break
		}
		w := o.left(xParent)
		if o.isRed(w) {
			o.setRed(w, false)
			o.setRed(xParent, true)
			o.rotateRight(xParent)
			w = o.left(xParent)
		}
		if !o.isRed(o.left(w)) && !o.isRed(o.right(w)) {
			o.setRed(w, true)
			x = xParent
			xParent = o.parent(x)
			continue
		}
		if !o.isRed(o.left(w)) {
			o.setRed(o.right(w), false)
			o.setRed(w, true)
			o.rotateLeft(w)
			w = o.left(xParent)
		}
		o.setRed(w, o.isRed(xParent))
		o.setRed(xParent, false)
		o.setRed(o.left(w), false)
		o.rotateRight(xParent)
		break
	}
	if o.err == nil && x != o.t.nil_ {
		o.setRed(x, false)
	}
}

// Contains implements Set.
func (t *RBTree) Contains(tx *stm.Tx, key int) (bool, error) {
	o := t.ops(tx)
	h := o.search(key)
	return h != t.nil_ && o.err == nil, o.err
}

// Keys implements Set.
func (t *RBTree) Keys(tx *stm.Tx) ([]int, error) {
	o := t.ops(tx)
	var keys []int
	var walk func(h rbRef)
	walk = func(h rbRef) {
		if h == t.nil_ || o.err != nil {
			return
		}
		n := o.node(h)
		walk(n.left)
		keys = append(keys, n.key)
		walk(n.right)
	}
	walk(o.root())
	return keys, o.err
}

// CheckInvariants verifies (inside tx) the red-black tree properties:
// binary-search order, a black root, no red node with a red child, and
// equal black heights on every path. It returns a descriptive error on
// the first violation. Intended for tests and the benchmark harness's
// post-run audit.
func (t *RBTree) CheckInvariants(tx *stm.Tx) error {
	o := t.ops(tx)
	root := o.root()
	if root != t.nil_ && o.isRed(root) {
		return fmt.Errorf("intset: red root")
	}
	var check func(h rbRef, min, max *int) (int, error)
	check = func(h rbRef, min, max *int) (int, error) {
		if o.err != nil {
			return 0, o.err
		}
		if h == t.nil_ {
			return 1, nil
		}
		n := o.node(h)
		if min != nil && n.key <= *min {
			return 0, fmt.Errorf("intset: BST order violated at key %d (min %d)", n.key, *min)
		}
		if max != nil && n.key >= *max {
			return 0, fmt.Errorf("intset: BST order violated at key %d (max %d)", n.key, *max)
		}
		if n.red && (o.isRed(n.left) || o.isRed(n.right)) {
			return 0, fmt.Errorf("intset: red-red violation at key %d", n.key)
		}
		lh, err := check(n.left, min, &n.key)
		if err != nil {
			return 0, err
		}
		rh, err := check(n.right, &n.key, max)
		if err != nil {
			return 0, err
		}
		if lh != rh {
			return 0, fmt.Errorf("intset: black-height mismatch at key %d (%d vs %d)", n.key, lh, rh)
		}
		if n.red {
			return lh, nil
		}
		return lh + 1, nil
	}
	_, err := check(root, nil, nil)
	if err != nil {
		return err
	}
	return o.err
}
