package intset

import (
	"fmt"

	"repro/internal/stm"
)

// rbNode is one node of the red-black tree. Child and parent fields
// are handles; nil-leaf links point at the tree's shared immutable
// sentinel and the root's parent is the tree's header pseudo-node.
type rbNode struct {
	key    int
	red    bool
	left   *stm.TObj
	right  *stm.TObj
	parent *stm.TObj
}

// Clone implements stm.Value.
func (n *rbNode) Clone() stm.Value {
	c := *n
	return &c
}

// RBTree is the paper's red-black tree application: a CLRS-style
// red-black tree in which every node is a transactional object.
// Lookups read a root-to-leaf path; updates additionally write the
// rebalanced region, so concurrent transactions conflict when their
// paths overlap at a written node — rare for a 256-key tree, which is
// what makes this the paper's low-contention benchmark (Figure 3).
//
// Two special handles bracket the structure: a never-written black
// sentinel plays CLRS's T.nil (it is never opened, so it causes no
// conflicts), and a header pseudo-node whose left child is the root
// (so "the root pointer" is itself transactional data).
type RBTree struct {
	header *stm.TObj
	nil_   *stm.TObj
}

// NewRBTree returns an empty red-black tree.
func NewRBTree() *RBTree {
	nilH := stm.NewNamedTObj("rb-nil", &rbNode{red: false})
	header := stm.NewNamedTObj("rb-header", &rbNode{left: nilH, right: nilH})
	return &RBTree{header: header, nil_: nilH}
}

// rbOps is a sticky-error view of the tree inside one transaction: the
// first STM error latches and turns every subsequent call into a no-op,
// so the CLRS pseudo-code transcribes without an error check per line.
type rbOps struct {
	t   *RBTree
	tx  *stm.Tx
	err error
}

func (t *RBTree) ops(tx *stm.Tx) *rbOps { return &rbOps{t: t, tx: tx} }

// node reads h. Reads of our own written nodes see the private clone,
// so reads issued after writes are always current.
func (o *rbOps) node(h *stm.TObj) *rbNode {
	if o.err != nil {
		return &rbNode{}
	}
	if h == o.t.nil_ {
		// The sentinel is immutable: skip the STM so that it never
		// enters any read set.
		return h.Peek().(*rbNode)
	}
	v, err := o.tx.OpenRead(h)
	if err != nil {
		o.err = err
		return &rbNode{}
	}
	return v.(*rbNode)
}

// mod opens h for writing and returns the private clone.
func (o *rbOps) mod(h *stm.TObj) *rbNode {
	if o.err != nil {
		return &rbNode{}
	}
	if h == o.t.nil_ {
		o.err = fmt.Errorf("intset: attempt to write the red-black nil sentinel")
		return &rbNode{}
	}
	v, err := o.tx.OpenWrite(h)
	if err != nil {
		o.err = err
		return &rbNode{}
	}
	return v.(*rbNode)
}

func (o *rbOps) isRed(h *stm.TObj) bool {
	if h == o.t.nil_ || h == o.t.header {
		return false
	}
	return o.node(h).red
}

func (o *rbOps) left(h *stm.TObj) *stm.TObj   { return o.node(h).left }
func (o *rbOps) right(h *stm.TObj) *stm.TObj  { return o.node(h).right }
func (o *rbOps) parent(h *stm.TObj) *stm.TObj { return o.node(h).parent }
func (o *rbOps) root() *stm.TObj              { return o.left(o.t.header) }
func (o *rbOps) setRed(h *stm.TObj, red bool) { o.mod(h).red = red }
func (o *rbOps) setLeft(h, c *stm.TObj)       { o.mod(h).left = c }
func (o *rbOps) setRight(h, c *stm.TObj)      { o.mod(h).right = c }
func (o *rbOps) setParent(h, p *stm.TObj)     { o.mod(h).parent = p }

// replaceChild repoints p's link to old so it refers to new. It works
// uniformly for the header (whose left child is the root).
func (o *rbOps) replaceChild(p, old, new *stm.TObj) {
	if o.left(p) == old {
		o.setLeft(p, new)
	} else {
		o.setRight(p, new)
	}
}

// rotateLeft performs the CLRS left rotation about x.
func (o *rbOps) rotateLeft(x *stm.TObj) {
	y := o.right(x)
	yl := o.left(y)
	o.setRight(x, yl)
	if yl != o.t.nil_ {
		o.setParent(yl, x)
	}
	p := o.parent(x)
	o.setParent(y, p)
	o.replaceChild(p, x, y)
	o.setLeft(y, x)
	o.setParent(x, y)
}

// rotateRight performs the mirror rotation about x.
func (o *rbOps) rotateRight(x *stm.TObj) {
	y := o.left(x)
	yr := o.right(y)
	o.setLeft(x, yr)
	if yr != o.t.nil_ {
		o.setParent(yr, x)
	}
	p := o.parent(x)
	o.setParent(y, p)
	o.replaceChild(p, x, y)
	o.setRight(y, x)
	o.setParent(x, y)
}

// search descends to the node holding key, or the sentinel.
func (o *rbOps) search(key int) *stm.TObj {
	h := o.root()
	for h != o.t.nil_ && o.err == nil {
		n := o.node(h)
		switch {
		case key < n.key:
			h = n.left
		case key > n.key:
			h = n.right
		default:
			return h
		}
	}
	return o.t.nil_
}

// minimum descends to the leftmost node of the subtree rooted at h
// (h must not be the sentinel).
func (o *rbOps) minimum(h *stm.TObj) *stm.TObj {
	for o.err == nil {
		l := o.left(h)
		if l == o.t.nil_ {
			return h
		}
		h = l
	}
	return h
}

// Insert implements Set.
func (t *RBTree) Insert(tx *stm.Tx, key int) (bool, error) {
	o := t.ops(tx)
	// Find the insertion parent.
	parent := t.header
	h := o.root()
	for h != t.nil_ && o.err == nil {
		n := o.node(h)
		parent = h
		switch {
		case key < n.key:
			h = n.left
		case key > n.key:
			h = n.right
		default:
			return false, o.err // already present
		}
	}
	if o.err != nil {
		return false, o.err
	}
	z := stm.NewTObj(&rbNode{key: key, red: true, left: t.nil_, right: t.nil_, parent: parent})
	if parent == t.header {
		o.setLeft(t.header, z)
	} else if key < o.node(parent).key {
		o.setLeft(parent, z)
	} else {
		o.setRight(parent, z)
	}
	o.insertFixup(z)
	if root := o.root(); root != t.nil_ && o.isRed(root) {
		o.setRed(root, false)
	}
	return true, o.err
}

// insertFixup restores the red-black invariants after inserting the
// red node z (CLRS 13.3). The loop never reaches the header: a red
// parent is never the root, so the grandparent is always a real node.
func (o *rbOps) insertFixup(z *stm.TObj) {
	for o.err == nil {
		zp := o.parent(z)
		if zp == o.t.header || !o.isRed(zp) {
			return
		}
		zpp := o.parent(zp)
		if zp == o.left(zpp) {
			uncle := o.right(zpp)
			if o.isRed(uncle) {
				o.setRed(zp, false)
				o.setRed(uncle, false)
				o.setRed(zpp, true)
				z = zpp
				continue
			}
			if z == o.right(zp) {
				z = zp
				o.rotateLeft(z)
				zp = o.parent(z)
				zpp = o.parent(zp)
			}
			o.setRed(zp, false)
			o.setRed(zpp, true)
			o.rotateRight(zpp)
			return
		}
		uncle := o.left(zpp)
		if o.isRed(uncle) {
			o.setRed(zp, false)
			o.setRed(uncle, false)
			o.setRed(zpp, true)
			z = zpp
			continue
		}
		if z == o.left(zp) {
			z = zp
			o.rotateRight(z)
			zp = o.parent(z)
			zpp = o.parent(zp)
		}
		o.setRed(zp, false)
		o.setRed(zpp, true)
		o.rotateLeft(zpp)
		return
	}
}

// transplant replaces the subtree rooted at u with the one rooted at
// v (CLRS 13.4), without ever writing the sentinel's parent link.
func (o *rbOps) transplant(u, v *stm.TObj) {
	p := o.parent(u)
	o.replaceChild(p, u, v)
	if v != o.t.nil_ {
		o.setParent(v, p)
	}
}

// Remove implements Set.
func (t *RBTree) Remove(tx *stm.Tx, key int) (bool, error) {
	o := t.ops(tx)
	z := o.search(key)
	if o.err != nil || z == t.nil_ {
		return false, o.err
	}
	y := z
	yWasRed := o.isRed(y)
	var x, xParent *stm.TObj
	switch {
	case o.left(z) == t.nil_:
		x = o.right(z)
		xParent = o.parent(z)
		o.transplant(z, x)
	case o.right(z) == t.nil_:
		x = o.left(z)
		xParent = o.parent(z)
		o.transplant(z, x)
	default:
		y = o.minimum(o.right(z))
		yWasRed = o.isRed(y)
		x = o.right(y)
		if o.parent(y) == z {
			xParent = y
			if x != t.nil_ {
				o.setParent(x, y)
			}
		} else {
			xParent = o.parent(y)
			o.transplant(y, x)
			o.setRight(y, o.right(z))
			o.setParent(o.right(y), y)
		}
		o.transplant(z, y)
		o.setLeft(y, o.left(z))
		o.setParent(o.left(y), y)
		o.setRed(y, o.isRed(z))
	}
	if o.err == nil && !yWasRed {
		o.deleteFixup(x, xParent)
	}
	return true, o.err
}

// deleteFixup restores the invariants after removing a black node
// (CLRS 13.4 with x's parent threaded explicitly, since x may be the
// unwritable sentinel).
func (o *rbOps) deleteFixup(x, xParent *stm.TObj) {
	for o.err == nil && x != o.root() && !o.isRed(x) {
		if x == o.left(xParent) {
			w := o.right(xParent)
			if o.isRed(w) {
				o.setRed(w, false)
				o.setRed(xParent, true)
				o.rotateLeft(xParent)
				w = o.right(xParent)
			}
			if !o.isRed(o.left(w)) && !o.isRed(o.right(w)) {
				o.setRed(w, true)
				x = xParent
				xParent = o.parent(x)
				continue
			}
			if !o.isRed(o.right(w)) {
				o.setRed(o.left(w), false)
				o.setRed(w, true)
				o.rotateRight(w)
				w = o.right(xParent)
			}
			o.setRed(w, o.isRed(xParent))
			o.setRed(xParent, false)
			o.setRed(o.right(w), false)
			o.rotateLeft(xParent)
			break
		}
		w := o.left(xParent)
		if o.isRed(w) {
			o.setRed(w, false)
			o.setRed(xParent, true)
			o.rotateRight(xParent)
			w = o.left(xParent)
		}
		if !o.isRed(o.left(w)) && !o.isRed(o.right(w)) {
			o.setRed(w, true)
			x = xParent
			xParent = o.parent(x)
			continue
		}
		if !o.isRed(o.left(w)) {
			o.setRed(o.right(w), false)
			o.setRed(w, true)
			o.rotateLeft(w)
			w = o.left(xParent)
		}
		o.setRed(w, o.isRed(xParent))
		o.setRed(xParent, false)
		o.setRed(o.left(w), false)
		o.rotateRight(xParent)
		break
	}
	if o.err == nil && x != o.t.nil_ {
		o.setRed(x, false)
	}
}

// Contains implements Set.
func (t *RBTree) Contains(tx *stm.Tx, key int) (bool, error) {
	o := t.ops(tx)
	h := o.search(key)
	return h != t.nil_ && o.err == nil, o.err
}

// Keys implements Set.
func (t *RBTree) Keys(tx *stm.Tx) ([]int, error) {
	o := t.ops(tx)
	var keys []int
	var walk func(h *stm.TObj)
	walk = func(h *stm.TObj) {
		if h == t.nil_ || o.err != nil {
			return
		}
		n := o.node(h)
		walk(n.left)
		keys = append(keys, n.key)
		walk(n.right)
	}
	walk(o.root())
	return keys, o.err
}

// CheckInvariants verifies (inside tx) the red-black tree properties:
// binary-search order, a black root, no red node with a red child, and
// equal black heights on every path. It returns a descriptive error on
// the first violation. Intended for tests and the benchmark harness's
// post-run audit.
func (t *RBTree) CheckInvariants(tx *stm.Tx) error {
	o := t.ops(tx)
	root := o.root()
	if root != t.nil_ && o.isRed(root) {
		return fmt.Errorf("intset: red root")
	}
	var check func(h *stm.TObj, min, max *int) (int, error)
	check = func(h *stm.TObj, min, max *int) (int, error) {
		if o.err != nil {
			return 0, o.err
		}
		if h == t.nil_ {
			return 1, nil
		}
		n := o.node(h)
		if min != nil && n.key <= *min {
			return 0, fmt.Errorf("intset: BST order violated at key %d (min %d)", n.key, *min)
		}
		if max != nil && n.key >= *max {
			return 0, fmt.Errorf("intset: BST order violated at key %d (max %d)", n.key, *max)
		}
		if n.red && (o.isRed(n.left) || o.isRed(n.right)) {
			return 0, fmt.Errorf("intset: red-red violation at key %d", n.key)
		}
		lh, err := check(n.left, min, &n.key)
		if err != nil {
			return 0, err
		}
		rh, err := check(n.right, &n.key, max)
		if err != nil {
			return 0, err
		}
		if lh != rh {
			return 0, fmt.Errorf("intset: black-height mismatch at key %d (%d vs %d)", n.key, lh, rh)
		}
		if n.red {
			return lh, nil
		}
		return lh + 1, nil
	}
	_, err := check(root, nil, nil)
	if err != nil {
		return err
	}
	return o.err
}
