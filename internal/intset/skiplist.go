package intset

import (
	"math"

	"repro/internal/stm"
)

// skipMaxLevel bounds tower height; 2^8 = 256 comfortably covers the
// benchmark key range (and far beyond at the usual 1/2 promotion
// rate).
const skipMaxLevel = 8

// skipNode is one tower of the skiplist. next[i] is the handle of the
// successor tower at level i; the slice is re-allocated on Clone so a
// writer's tentative link changes stay private.
type skipNode struct {
	key  int
	next []*stm.TObj
}

// Clone implements stm.Value with a deep copy of the link slice.
func (n *skipNode) Clone() stm.Value {
	c := &skipNode{key: n.key, next: make([]*stm.TObj, len(n.next))}
	copy(c.next, n.next)
	return c
}

// SkipList is the paper's skiplist application, after the benchmark in
// the DSTM paper. Towers shorten the read chains relative to the list,
// so conflicts concentrate near tall towers instead of the head.
//
// Tower heights are a deterministic pseudo-random function of the key
// rather than of a mutable RNG: transactional code may retry, and a
// retry must make the same choices.
type SkipList struct {
	head *stm.TObj
}

// NewSkipList returns an empty skiplist.
func NewSkipList() *SkipList {
	tail := stm.NewTObj(&skipNode{key: math.MaxInt, next: make([]*stm.TObj, skipMaxLevel)})
	links := make([]*stm.TObj, skipMaxLevel)
	for i := range links {
		links[i] = tail
	}
	head := stm.NewTObj(&skipNode{key: math.MinInt, next: links})
	return &SkipList{head: head}
}

// levelFor returns the deterministic tower height for key, geometric
// with rate 1/2, in [1, skipMaxLevel].
func levelFor(key int) int {
	// splitmix64 finalizer as a cheap stateless hash.
	x := uint64(key) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	level := 1
	for level < skipMaxLevel && x&1 == 1 {
		level++
		x >>= 1
	}
	return level
}

// findPreds fills preds with the handle of the rightmost tower whose
// key is strictly less than key at every level, and returns the value
// of the level-0 successor.
func (s *SkipList) findPreds(tx *stm.Tx, key int, preds []*stm.TObj) (*skipNode, error) {
	curObj := s.head
	v, err := tx.OpenRead(curObj)
	if err != nil {
		return nil, err
	}
	cur := v.(*skipNode)
	for level := skipMaxLevel - 1; level >= 0; level-- {
		for {
			nextObj := cur.next[level]
			nv, err := tx.OpenRead(nextObj)
			if err != nil {
				return nil, err
			}
			next := nv.(*skipNode)
			if next.key >= key {
				break
			}
			curObj, cur = nextObj, next
		}
		preds[level] = curObj
	}
	succObj := cur.next[0]
	nv, err := tx.OpenRead(succObj)
	if err != nil {
		return nil, err
	}
	return nv.(*skipNode), nil
}

// Insert implements Set.
func (s *SkipList) Insert(tx *stm.Tx, key int) (bool, error) {
	preds := make([]*stm.TObj, skipMaxLevel)
	succ, err := s.findPreds(tx, key, preds)
	if err != nil {
		return false, err
	}
	if succ.key == key {
		return false, nil
	}
	level := levelFor(key)
	node := &skipNode{key: key, next: make([]*stm.TObj, level)}
	// Read the predecessors' current links first so the new tower can
	// point at the right successors, then splice bottom-up.
	for i := 0; i < level; i++ {
		pv, err := tx.OpenRead(preds[i])
		if err != nil {
			return false, err
		}
		node.next[i] = pv.(*skipNode).next[i]
	}
	nodeObj := stm.NewTObj(node)
	for i := 0; i < level; i++ {
		pv, err := tx.OpenWrite(preds[i])
		if err != nil {
			return false, err
		}
		pv.(*skipNode).next[i] = nodeObj
	}
	return true, nil
}

// Remove implements Set.
func (s *SkipList) Remove(tx *stm.Tx, key int) (bool, error) {
	preds := make([]*stm.TObj, skipMaxLevel)
	succ, err := s.findPreds(tx, key, preds)
	if err != nil {
		return false, err
	}
	if succ.key != key {
		return false, nil
	}
	level := len(succ.next)
	for i := 0; i < level; i++ {
		pv, err := tx.OpenWrite(preds[i])
		if err != nil {
			return false, err
		}
		pred := pv.(*skipNode)
		// The predecessor links to the victim at level i only if the
		// victim's tower reaches it (it does: level = len(succ.next)),
		// and pred is the rightmost key < victim, so the link is to
		// the victim unless a duplicate key intervened (impossible).
		pred.next[i] = succ.next[i]
	}
	return true, nil
}

// Contains implements Set.
func (s *SkipList) Contains(tx *stm.Tx, key int) (bool, error) {
	preds := make([]*stm.TObj, skipMaxLevel)
	succ, err := s.findPreds(tx, key, preds)
	if err != nil {
		return false, err
	}
	return succ.key == key, nil
}

// Keys implements Set.
func (s *SkipList) Keys(tx *stm.Tx) ([]int, error) {
	var keys []int
	v, err := tx.OpenRead(s.head)
	if err != nil {
		return nil, err
	}
	cur := v.(*skipNode)
	for {
		nextObj := cur.next[0]
		nv, err := tx.OpenRead(nextObj)
		if err != nil {
			return nil, err
		}
		next := nv.(*skipNode)
		if next.key == math.MaxInt {
			return keys, nil
		}
		keys = append(keys, next.key)
		cur = next
	}
}
