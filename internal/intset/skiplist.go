package intset

import (
	"math"

	"repro/internal/stm"
)

// skipMaxLevel bounds tower height; 2^8 = 256 comfortably covers the
// benchmark key range (and far beyond at the usual 1/2 promotion
// rate).
const skipMaxLevel = 8

// skipNode is one tower of the skiplist. next[i] is the handle of the
// successor tower at level i. The link slice is mutable state reached
// through the value, so skiplist variables install a Cloner that
// re-allocates it: a writer's tentative link changes stay private.
type skipNode struct {
	key  int
	next []*stm.Var[skipNode]
}

// cloneSkipNode is the skiplist's stm.Cloner: a deep copy of the link
// slice (the handles themselves are immutable and shared).
func cloneSkipNode(n skipNode) skipNode {
	next := make([]*stm.Var[skipNode], len(n.next))
	copy(next, n.next)
	n.next = next
	return n
}

// newSkipVar wraps a tower in a transactional variable with the deep
// link-slice clone.
func newSkipVar(n skipNode) *stm.Var[skipNode] {
	return stm.NewVarCloner(n, cloneSkipNode)
}

// SkipList is the paper's skiplist application, after the benchmark in
// the DSTM paper. Towers shorten the read chains relative to the list,
// so conflicts concentrate near tall towers instead of the head.
//
// Tower heights are a deterministic pseudo-random function of the key
// rather than of a mutable RNG: transactional code may retry, and a
// retry must make the same choices.
type SkipList struct {
	head *stm.Var[skipNode]
}

// NewSkipList returns an empty skiplist.
func NewSkipList() *SkipList {
	tail := newSkipVar(skipNode{key: math.MaxInt, next: make([]*stm.Var[skipNode], skipMaxLevel)})
	links := make([]*stm.Var[skipNode], skipMaxLevel)
	for i := range links {
		links[i] = tail
	}
	head := newSkipVar(skipNode{key: math.MinInt, next: links})
	return &SkipList{head: head}
}

// levelFor returns the deterministic tower height for key, geometric
// with rate 1/2, in [1, skipMaxLevel].
func levelFor(key int) int {
	// splitmix64 finalizer as a cheap stateless hash.
	x := uint64(key) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	level := 1
	for level < skipMaxLevel && x&1 == 1 {
		level++
		x >>= 1
	}
	return level
}

// findPreds fills preds with the handle of the rightmost tower whose
// key is strictly less than key at every level, and returns the value
// of the level-0 successor.
func (s *SkipList) findPreds(tx *stm.Tx, key int, preds []*stm.Var[skipNode]) (skipNode, error) {
	curVar := s.head
	cur, err := stm.Read(tx, curVar)
	if err != nil {
		return skipNode{}, err
	}
	for level := skipMaxLevel - 1; level >= 0; level-- {
		for {
			nextVar := cur.next[level]
			next, err := stm.Read(tx, nextVar)
			if err != nil {
				return skipNode{}, err
			}
			if next.key >= key {
				break
			}
			curVar, cur = nextVar, next
		}
		preds[level] = curVar
	}
	return stm.Read(tx, cur.next[0])
}

// Insert implements Set.
func (s *SkipList) Insert(tx *stm.Tx, key int) (bool, error) {
	preds := make([]*stm.Var[skipNode], skipMaxLevel)
	succ, err := s.findPreds(tx, key, preds)
	if err != nil {
		return false, err
	}
	if succ.key == key {
		return false, nil
	}
	level := levelFor(key)
	node := skipNode{key: key, next: make([]*stm.Var[skipNode], level)}
	// Read the predecessors' current links first so the new tower can
	// point at the right successors, then splice bottom-up.
	for i := 0; i < level; i++ {
		pred, err := stm.Read(tx, preds[i])
		if err != nil {
			return false, err
		}
		node.next[i] = pred.next[i]
	}
	nodeVar := newSkipVar(node)
	for i := 0; i < level; i++ {
		// The writer's copy carries a deep-cloned link slice, so the
		// in-place splice stays private until commit.
		err := stm.Update(tx, preds[i], func(pred skipNode) skipNode {
			pred.next[i] = nodeVar
			return pred
		})
		if err != nil {
			return false, err
		}
	}
	return true, nil
}

// Remove implements Set.
func (s *SkipList) Remove(tx *stm.Tx, key int) (bool, error) {
	preds := make([]*stm.Var[skipNode], skipMaxLevel)
	succ, err := s.findPreds(tx, key, preds)
	if err != nil {
		return false, err
	}
	if succ.key != key {
		return false, nil
	}
	level := len(succ.next)
	for i := 0; i < level; i++ {
		// The predecessor links to the victim at level i only if the
		// victim's tower reaches it (it does: level = len(succ.next)),
		// and pred is the rightmost key < victim, so the link is to
		// the victim unless a duplicate key intervened (impossible).
		err := stm.Update(tx, preds[i], func(pred skipNode) skipNode {
			pred.next[i] = succ.next[i]
			return pred
		})
		if err != nil {
			return false, err
		}
	}
	return true, nil
}

// Contains implements Set.
func (s *SkipList) Contains(tx *stm.Tx, key int) (bool, error) {
	preds := make([]*stm.Var[skipNode], skipMaxLevel)
	succ, err := s.findPreds(tx, key, preds)
	if err != nil {
		return false, err
	}
	return succ.key == key, nil
}

// Keys implements Set.
func (s *SkipList) Keys(tx *stm.Tx) ([]int, error) {
	var keys []int
	cur, err := stm.Read(tx, s.head)
	if err != nil {
		return nil, err
	}
	for {
		next, err := stm.Read(tx, cur.next[0])
		if err != nil {
			return nil, err
		}
		if next.key == math.MaxInt {
			return keys, nil
		}
		keys = append(keys, next.key)
		cur = next
	}
}
