package intset

import (
	"fmt"

	"repro/internal/stm"
)

// DefaultForestSize is the number of trees in the paper's red-black
// forest benchmark ("a data structure made of fifty red-black trees").
const DefaultForestSize = 50

// RBForest is the paper's fourth benchmark application: a bank of
// red-black trees in which an update touches either one random tree or
// all of them. The one-or-all choice gives the produced transactions a
// length distribution with very high variance, the property Figure 4
// stresses contention managers with.
//
// The choice of tree (and of one-vs-all) is the caller's: transactional
// functions may retry and so must not draw randomness themselves. The
// harness draws (key, tree, all) before starting the transaction.
type RBForest struct {
	trees []*RBTree
}

// NewRBForest returns a forest of n empty red-black trees.
func NewRBForest(n int) *RBForest {
	if n <= 0 {
		n = DefaultForestSize
	}
	trees := make([]*RBTree, n)
	for i := range trees {
		trees[i] = NewRBTree()
	}
	return &RBForest{trees: trees}
}

// Size returns the number of trees.
func (f *RBForest) Size() int { return len(f.trees) }

// Tree returns the i-th tree.
func (f *RBForest) Tree(i int) *RBTree { return f.trees[i] }

// InsertOne inserts key into the tree-th tree.
func (f *RBForest) InsertOne(tx *stm.Tx, tree, key int) (bool, error) {
	if err := f.check(tree); err != nil {
		return false, err
	}
	return f.trees[tree].Insert(tx, key)
}

// RemoveOne removes key from the tree-th tree.
func (f *RBForest) RemoveOne(tx *stm.Tx, tree, key int) (bool, error) {
	if err := f.check(tree); err != nil {
		return false, err
	}
	return f.trees[tree].Remove(tx, key)
}

// InsertAll inserts key into every tree and reports whether any tree
// changed. A single long transaction, as in the paper's benchmark.
func (f *RBForest) InsertAll(tx *stm.Tx, key int) (bool, error) {
	changed := false
	for _, t := range f.trees {
		ok, err := t.Insert(tx, key)
		if err != nil {
			return false, err
		}
		changed = changed || ok
	}
	return changed, nil
}

// RemoveAll removes key from every tree and reports whether any tree
// changed.
func (f *RBForest) RemoveAll(tx *stm.Tx, key int) (bool, error) {
	changed := false
	for _, t := range f.trees {
		ok, err := t.Remove(tx, key)
		if err != nil {
			return false, err
		}
		changed = changed || ok
	}
	return changed, nil
}

// ContainsIn reports whether key is in the tree-th tree.
func (f *RBForest) ContainsIn(tx *stm.Tx, tree, key int) (bool, error) {
	if err := f.check(tree); err != nil {
		return false, err
	}
	return f.trees[tree].Contains(tx, key)
}

func (f *RBForest) check(tree int) error {
	if tree < 0 || tree >= len(f.trees) {
		return fmt.Errorf("intset: tree index %d out of range [0,%d)", tree, len(f.trees))
	}
	return nil
}

// Set adapter: the plain Set view of a forest routes single-key
// operations to tree key%Size and lets Keys report tree 0, so the
// forest can stand in wherever a Set is expected (e.g. smoke tests).
// The benchmark harness uses the One/All methods directly instead.

// Insert implements Set on tree key mod Size.
func (f *RBForest) Insert(tx *stm.Tx, key int) (bool, error) {
	return f.InsertOne(tx, f.treeFor(key), key)
}

// Remove implements Set on tree key mod Size.
func (f *RBForest) Remove(tx *stm.Tx, key int) (bool, error) {
	return f.RemoveOne(tx, f.treeFor(key), key)
}

// Contains implements Set on tree key mod Size.
func (f *RBForest) Contains(tx *stm.Tx, key int) (bool, error) {
	return f.ContainsIn(tx, f.treeFor(key), key)
}

// Keys implements Set: the union of all trees' keys, deduplicated and
// sorted (trees hold disjoint responsibilities under the Set view, but
// One/All usage may overlap them).
func (f *RBForest) Keys(tx *stm.Tx) ([]int, error) {
	seen := make(map[int]bool)
	var keys []int
	for _, t := range f.trees {
		ks, err := t.Keys(tx)
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sortInts(keys)
	return keys, nil
}

func (f *RBForest) treeFor(key int) int {
	k := key % len(f.trees)
	if k < 0 {
		k += len(f.trees)
	}
	return k
}

// sortInts is insertion sort; key sets in tests are small and this
// avoids importing sort for one call site.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
