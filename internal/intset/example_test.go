package intset_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/stm"
)

func ExampleRBTree() {
	world := stm.New(stm.WithManagerFactory(core.MustFactory("greedy")))
	tree := intset.NewRBTree()

	err := world.Atomically(func(tx *stm.Tx) error {
		for _, k := range []int{5, 1, 9, 3} {
			if _, err := tree.Insert(tx, k); err != nil {
				return err
			}
		}
		if _, err := tree.Remove(tx, 9); err != nil {
			return err
		}
		return tree.CheckInvariants(tx)
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	keys, err := stm.Atomic(world, func(tx *stm.Tx) ([]int, error) {
		return tree.Keys(tx)
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("keys:", keys)
	// Output: keys: [1 3 5]
}

func ExampleRBForest() {
	world := stm.New(stm.WithManagerFactory(core.MustFactory("karma")))
	forest := intset.NewRBForest(3)

	// One transaction updates every tree — the long transactions that
	// give Figure 4 its high length variance.
	err := world.Atomically(func(tx *stm.Tx) error {
		_, err := forest.InsertAll(tx, 7)
		return err
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var in0, in2 bool
	err = world.Atomically(func(tx *stm.Tx) error {
		var err error
		if in0, err = forest.ContainsIn(tx, 0, 7); err != nil {
			return err
		}
		in2, err = forest.ContainsIn(tx, 2, 7)
		return err
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("tree 0 has 7:", in0)
	fmt.Println("tree 2 has 7:", in2)
	// Output:
	// tree 0 has 7: true
	// tree 2 has 7: true
}
