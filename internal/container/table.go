package container

import (
	"fmt"
	"hash/maphash"
	"sync/atomic"

	"repro/internal/stm"
)

// Table is the shared growable-bucket mechanism behind HashSet and the
// kv store's shards: an array of bucket variables whose array *itself*
// lives in a Var, so a resize is just another transaction racing
// ordinary operations. Every operation reads the array variable first
// (one read-set entry) and then its bucket; a grow builds a fresh
// array of fresh bucket variables, rehashes the chains into it, and
// writes the array variable — serializability of the whole store then
// falls out of the STM: a grow that commits invalidates every
// concurrent operation still reading the old array, and an operation
// that commits first forces the grow to retry against the new chains.
//
// The element type E is one bucket's whole content (an immutable chain
// head, in both current callers); the Table never inspects it, so
// walking chains for counting and rehashing is the caller's job via
// the callbacks on MaybeGrow.
type Table[E any] struct {
	seed  maphash.Seed
	state *stm.Var[tableState[E]]
	// name, when non-empty, labels the table's variables (state and
	// every bucket, including buckets minted by a resize) for the STM
	// flight recorder, so conflict attribution names the table instead
	// of an anonymous stripe. All buckets share the one label: the
	// recorder aggregates by name, and "which table convoys" is the
	// question it answers.
	name string

	// growth is the advisory resize signal. Operations that walk an
	// over-long chain set it from inside their transaction — a plain
	// atomic store is retry-safe where a transactional counter would
	// not be (and would serialize every writer on one hot variable) —
	// and the structure's owner drains it between transactions with
	// MaybeGrow, which recounts exactly before committing to a resize,
	// so a signal raised by an attempt that later aborted costs one
	// cheap no-op transaction, never a wrong-sized table.
	growth atomic.Bool
}

// tableState is one committed version of the bucket array. The slice
// is immutable after construction (a grow installs a brand-new slice),
// so the Var's default shallow clone is a correct private copy.
type tableState[E any] struct {
	buckets []*stm.Var[E]
}

// Buckets is a transaction's view of a table's bucket array: a
// consistent snapshot of the array variable (not of the buckets'
// contents — reading those adds them to the read set one by one).
type Buckets[E any] struct {
	vars []*stm.Var[E]
}

// Len is the bucket count of this version of the array.
func (b Buckets[E]) Len() int { return len(b.vars) }

// At returns bucket i's variable.
func (b Buckets[E]) At(i int) *stm.Var[E] { return b.vars[i] }

// NewTable returns a table with n buckets (minimum 1), each holding
// E's zero value.
func NewTable[E any](n int) *Table[E] { return NewNamedTable[E]("", n) }

// NewNamedTable is NewTable with a flight-recorder label on every
// variable the table creates (see the name field). An empty name is
// NewTable.
func NewNamedTable[E any](name string, n int) *Table[E] {
	if n < 1 {
		n = 1
	}
	t := &Table[E]{seed: maphash.MakeSeed(), name: name}
	vars := make([]*stm.Var[E], n)
	for i := range vars {
		vars[i] = t.newBucket()
	}
	t.state = t.newStateVar(tableState[E]{buckets: vars})
	return t
}

// newBucket mints one bucket variable, labelled when the table is.
func (t *Table[E]) newBucket() *stm.Var[E] {
	var zero E
	if t.name == "" {
		return stm.NewVar(zero)
	}
	return stm.NewNamedVar(t.name, zero)
}

// newStateVar mints the bucket-array variable, labelled when the
// table is.
func (t *Table[E]) newStateVar(st tableState[E]) *stm.Var[tableState[E]] {
	if t.name == "" {
		return stm.NewVar(st)
	}
	return stm.NewNamedVar(t.name, st)
}

// Seed is the table's hash seed, fixed at construction so the
// key-to-bucket mapping is stable across transaction retries and
// resizes (a grow re-buckets with the same seed, modulo the new
// length).
func (t *Table[E]) Seed() maphash.Seed { return t.seed }

// Buckets reads the current bucket array inside tx. The array variable
// joins the read set, so a concurrent grow that commits aborts this
// transaction — the mechanism that makes resize serializable against
// every ordinary operation.
func (t *Table[E]) Buckets(tx *stm.Tx) (Buckets[E], error) {
	st, err := stm.Read(tx, t.state)
	if err != nil {
		return Buckets[E]{}, err
	}
	return Buckets[E]{vars: st.buckets}, nil
}

// PeekLen returns the committed bucket count outside any transaction —
// a single-variable snapshot for reports and tests.
func (t *Table[E]) PeekLen() int { return len(t.state.Peek().buckets) }

// PeekBuckets returns the committed bucket array outside any
// transaction. Like Var.Peek it is a single-variable snapshot: the
// array is the one committed at some instant during the call, but
// reading the buckets' contents afterwards observes each bucket
// independently. For observability (key counts, chain-depth probes),
// not for invariant-carrying reads.
func (t *Table[E]) PeekBuckets() Buckets[E] { return Buckets[E]{vars: t.state.Peek().buckets} }

// SignalGrowth raises the advisory resize flag. Safe to call from
// inside a transaction (it is not a transactional effect and is
// harmless on attempts that abort); the owner drains it with
// MaybeGrow.
func (t *Table[E]) SignalGrowth() { t.growth.Store(true) }

// GrowthSignalled reports (without consuming) the advisory flag.
func (t *Table[E]) GrowthSignalled() bool { return t.growth.Load() }

// maxLoad is the shared grow policy: a table is resized when its
// element count exceeds maxLoad per bucket, doubling until it does
// not. Chains stay short without resizing on every excursion.
const maxLoad = 2

// GrowChain is the companion signalling policy: callers raise the
// advisory resize signal when a write walks a chain at least this
// long. One constant for every Table client (HashSet, the kv store's
// shards), so the two halves of the grow policy cannot drift apart.
const GrowChain = 6

// MaybeGrow consumes the advisory growth signal and, if an exact count
// confirms the table is over maxLoad elements per bucket, doubles the
// bucket array (repeatedly, if needed) inside one transaction:
// count(tx, old) tallies the elements, rehash(tx, old, neu) moves
// every chain into the fresh array. It reports whether a resize
// committed. With no signal pending it is one atomic load — cheap
// enough to call after every operation.
func (t *Table[E]) MaybeGrow(
	s *stm.STM,
	count func(tx *stm.Tx, b Buckets[E]) (int, error),
	rehash func(tx *stm.Tx, old, neu Buckets[E]) error,
) (bool, error) {
	if !t.growth.CompareAndSwap(true, false) {
		return false, nil
	}
	grown := false
	err := s.Atomically(func(tx *stm.Tx) error {
		var err error
		grown, err = t.GrowTx(tx, count, rehash)
		return err
	})
	if err != nil {
		// The signal was consumed but the resize never committed; re-arm
		// it so the growth is retried rather than lost, and let the
		// caller decide how loudly to fail.
		t.growth.Store(true)
		return false, fmt.Errorf("container: table grow: %w", err)
	}
	return grown, nil
}

// GrowTx is the resize body of MaybeGrow exposed for callers already
// inside a transaction: count exactly, double the bucket array until
// the load factor holds, rehash, install. Per-key container tables
// (the kv store's hashes and zset member indexes) use it directly —
// the transaction that walked an over-long chain grows the table it
// is about to mutate, and the grow commits or aborts with the
// mutation, so no advisory signal or out-of-band owner is needed.
// Reports whether a resize was installed in tx.
func (t *Table[E]) GrowTx(
	tx *stm.Tx,
	count func(tx *stm.Tx, b Buckets[E]) (int, error),
	rehash func(tx *stm.Tx, old, neu Buckets[E]) error,
) (bool, error) {
	old, err := t.Buckets(tx)
	if err != nil {
		return false, err
	}
	n, err := count(tx, old)
	if err != nil {
		return false, err
	}
	target := old.Len()
	for n > target*maxLoad {
		target *= 2
	}
	if target == old.Len() {
		return false, nil
	}
	neu := Buckets[E]{vars: make([]*stm.Var[E], target)}
	for i := range neu.vars {
		neu.vars[i] = t.newBucket()
	}
	if err := rehash(tx, old, neu); err != nil {
		return false, err
	}
	if err := stm.Write(tx, t.state, tableState[E]{buckets: neu.vars}); err != nil {
		return false, err
	}
	return true, nil
}
