package container

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/stm"
)

// TestDequeBasic exercises the single-threaded contract: both ends
// push and pop in the right order, peeks do not consume, Len tracks,
// and the link/counter invariants hold throughout.
func TestDequeBasic(t *testing.T) {
	s := stm.New()
	d := NewDeque[int]()
	if _, ok, _ := stm.Atomic2(s, d.PopFront); ok {
		t.Fatal("PopFront on empty deque reported an element")
	}
	if _, ok, _ := stm.Atomic2(s, d.PopBack); ok {
		t.Fatal("PopBack on empty deque reported an element")
	}
	// Build 3,2,1 | 4,5: PushFront 1..3, PushBack 4..5.
	for i := 1; i <= 3; i++ {
		if err := s.Atomically(func(tx *stm.Tx) error { return d.PushFront(tx, i) }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i <= 5; i++ {
		if err := s.Atomically(func(tx *stm.Tx) error { return d.PushBack(tx, i) }); err != nil {
			t.Fatal(err)
		}
	}
	items, err := stm.Atomic(s, d.Items)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 1, 4, 5}
	if fmt.Sprint(items) != fmt.Sprint(want) {
		t.Fatalf("Items = %v, want %v", items, want)
	}
	if n, _ := stm.Atomic(s, d.Len); n != 5 {
		t.Fatalf("Len = %d, want 5", n)
	}
	if v, ok, _ := stm.Atomic2(s, d.PeekFront); !ok || v != 3 {
		t.Fatalf("PeekFront = %d, %v; want 3, true", v, ok)
	}
	if v, ok, _ := stm.Atomic2(s, d.PeekBack); !ok || v != 5 {
		t.Fatalf("PeekBack = %d, %v; want 5, true", v, ok)
	}
	prefix, err := stm.Atomic(s, func(tx *stm.Tx) ([]int, error) { return d.PeekFrontN(tx, 2) })
	if err != nil || len(prefix) != 2 || prefix[0] != 3 || prefix[1] != 2 {
		t.Fatalf("PeekFrontN(2) = %v, %v; want [3 2]", prefix, err)
	}
	if err := s.Atomically(d.CheckInvariants); err != nil {
		t.Fatal(err)
	}
	// Drain alternately and check order: front 3,2 back 5,4 front 1.
	for _, step := range []struct {
		front bool
		want  int
	}{{true, 3}, {true, 2}, {false, 5}, {false, 4}, {true, 1}} {
		pop := d.PopFront
		if !step.front {
			pop = d.PopBack
		}
		v, ok, err := stm.Atomic2(s, pop)
		if err != nil || !ok || v != step.want {
			t.Fatalf("pop(front=%v) = %d, %v, %v; want %d", step.front, v, ok, err, step.want)
		}
	}
	if n, _ := stm.Atomic(s, d.Len); n != 0 {
		t.Fatalf("Len after drain = %d, want 0", n)
	}
	if err := s.Atomically(d.CheckInvariants); err != nil {
		t.Fatal(err)
	}
}

// errDequeFuse is the hammer's livelock fuse. A ≤1-element deque makes
// front and back operations splice against opposite sentinels, so the
// two ends acquire the boundary Vars in opposite orders — an ABBA
// stand-off that unbounded-patience managers (karma, eruption) resolve
// pathologically slowly under symmetric load: each abort adds karma,
// widening the priority gap the next waiter must out-wait. As in the
// kv transfer hammer, an operation gives up after a bounded number of
// attempts instead of hanging the test; a fused push or pop simply
// never happened, so the conservation checks stay exact (only values
// whose push committed are expected back out).
var errDequeFuse = errors.New("container: deque hammer livelock fuse blew")

// TestDequeHammer drives 32 goroutines — 8 per operation (PushFront,
// PushBack, PopFront, PopBack) — through the deque's two end hot
// spots under every registry manager, in both eager and lazy conflict
// modes, checking conservation: every popped value was pushed exactly
// once, the leftovers are exactly the never-popped pushes, and the
// link/counter invariants hold.
func TestDequeHammer(t *testing.T) {
	const perOp = 8
	ops := hammerOps(t)
	for _, mode := range []string{"eager", "lazy"} {
		t.Run(mode, func(t *testing.T) {
			for _, mgr := range core.Names() {
				t.Run(mgr, func(t *testing.T) {
					opts := []stm.Option{
						stm.WithManagerFactory(core.MustFactory(mgr)),
						stm.WithInterleavePeriod(4),
					}
					if mode == "lazy" {
						opts = append(opts, stm.WithLazyConflicts())
					}
					s := stm.New(opts...)
					d := NewDeque[int]()
					var mu sync.Mutex
					pushed := make(map[int]bool)
					popped := make(map[int]int)
					var wg sync.WaitGroup
					errs := make([]error, 4*perOp)
					for g := 0; g < 4*perOp; g++ {
						wg.Add(1)
						go func(g int) {
							defer wg.Done()
							for i := 0; i < ops; i++ {
								val := g*1_000_000 + i
								var err error
								attempts := 0
								fuse := func() error {
									if attempts++; attempts > 500 {
										return errDequeFuse
									}
									return nil
								}
								switch g / perOp {
								case 0, 1:
									push := d.PushFront
									if g/perOp == 1 {
										push = d.PushBack
									}
									err = s.Atomically(func(tx *stm.Tx) error {
										if err := fuse(); err != nil {
											return err
										}
										return push(tx, val)
									})
									if err == nil {
										mu.Lock()
										pushed[val] = true
										mu.Unlock()
									}
								default:
									pop := d.PopFront
									if g/perOp == 3 {
										pop = d.PopBack
									}
									var v int
									var ok bool
									v, ok, err = stm.Atomic2(s, func(tx *stm.Tx) (int, bool, error) {
										if err := fuse(); err != nil {
											return 0, false, err
										}
										return pop(tx)
									})
									if err == nil && ok {
										mu.Lock()
										popped[v]++
										mu.Unlock()
									}
								}
								if err != nil && !errors.Is(err, errDequeFuse) {
									errs[g] = err
									return
								}
							}
						}(g)
					}
					wg.Wait()
					for _, err := range errs {
						if err != nil {
							t.Fatal(err)
						}
					}
					if err := s.Atomically(d.CheckInvariants); err != nil {
						t.Fatal(err)
					}
					left, err := stm.Atomic(s, d.Items)
					if err != nil {
						t.Fatal(err)
					}
					seen := make(map[int]int, len(popped)+len(left))
					for v, n := range popped {
						if n != 1 {
							t.Fatalf("value %d popped %d times", v, n)
						}
						seen[v]++
					}
					for _, v := range left {
						seen[v]++
					}
					if len(seen) != len(pushed) {
						t.Fatalf("pushed %d distinct values, accounted for %d", len(pushed), len(seen))
					}
					for v, n := range seen {
						if n != 1 {
							t.Fatalf("value %d accounted %d times", v, n)
						}
						if !pushed[v] {
							t.Fatalf("value %d was never pushed", v)
						}
					}
				})
			}
		})
	}
}
