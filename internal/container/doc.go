// Package container provides typed transactional data structures
// composed from the stm.Var facade, widening the benchmark suite
// beyond the paper's four integer-set applications with the container
// shapes real key-value systems are built from:
//
//   - HashSet[T]: a growable bucket array of variables, each holding
//     an immutable chain — operations on different buckets are
//     disjoint, so contention scales with bucket occupancy rather than
//     structure size (the friendliest profile for every manager); the
//     array itself lives in a Var (Table, the resize mechanism shared
//     with internal/kv), so growing it is an ordinary transaction
//     racing the writers;
//   - Queue[T]: a Michael–Scott-style two-variable FIFO whose head and
//     tail are permanent hot spots — every producer conflicts with
//     every producer and every consumer with every consumer, the
//     adversarial inverse of the hash set;
//   - Deque[T]: the Queue generalized to push and pop at both ends
//     (two sentinels, per-node prev/next Vars, per-end net-push
//     counters giving an O(1) Len that does not re-couple the ends) —
//     the kv store's list kind, so LPUSH and RPUSH on one hot key
//     commit in parallel;
//   - OMap[K, V]: an ordered map over a transactional skip list
//     (generalizing intset.SkipList to arbitrary ordered keys and
//     values), whose Range runs as a consistent multi-variable read —
//     a long read-only scan competing with point writers, the pattern
//     the paper notes backoff-style managers handle poorly.
//
// Every operation takes a *stm.Tx and composes inside larger
// transactions: a dequeue-then-put across a Queue and an OMap in one
// transaction is atomic, and its conflicts are arbitrated by the same
// contention manager as any other. Run operations through
// STM.Atomically / stm.Atomic from any goroutine.
package container
