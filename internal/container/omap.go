package container

import (
	"cmp"
	"fmt"
	"hash/maphash"

	"repro/internal/stm"
)

// omapMaxLevel bounds tower height; 2^12 comfortably covers the
// benchmark key universes at the 1/2 promotion rate.
const omapMaxLevel = 12

// omKind distinguishes the sentinels from interior nodes: generic
// ordered keys have no MinInt/MaxInt to borrow, so the head and tail
// carry a kind tag instead of extreme keys.
type omKind int8

const (
	omInterior omKind = iota
	omHead
	omTail
)

// omNode is one tower of the ordered map's skip list — the
// generalization of intset.skipNode to arbitrary ordered keys and
// values. next[i] is the handle of the successor tower at level i. The
// link slice is mutable state reached through the value, so map
// variables install a Cloner that re-allocates it: a writer's
// tentative link changes stay private. The value is copied at the top
// level only; values with mutable indirect state must be treated as
// immutable (replace, don't mutate), per the stm.Var contract.
type omNode[K cmp.Ordered, V any] struct {
	kind omKind
	key  K
	val  V
	next []*stm.Var[omNode[K, V]]
}

// before reports whether the node sorts strictly before key: the head
// sorts before everything, the tail after everything.
func (n omNode[K, V]) before(key K) bool {
	switch n.kind {
	case omHead:
		return true
	case omTail:
		return false
	default:
		return n.key < key
	}
}

// is reports whether the node holds key.
func (n omNode[K, V]) is(key K) bool { return n.kind == omInterior && n.key == key }

// cloneOMNode is the map's stm.Cloner: a deep copy of the link slice
// (the handles themselves are immutable and shared).
func cloneOMNode[K cmp.Ordered, V any](n omNode[K, V]) omNode[K, V] {
	next := make([]*stm.Var[omNode[K, V]], len(n.next))
	copy(next, n.next)
	n.next = next
	return n
}

// newOMVar wraps a tower in a transactional variable with the deep
// link-slice clone.
func newOMVar[K cmp.Ordered, V any](n omNode[K, V]) *stm.Var[omNode[K, V]] {
	return stm.NewVarCloner(n, cloneOMNode[K, V])
}

// KV is one key-value pair returned by OMap.Range.
type KV[K cmp.Ordered, V any] struct {
	Key K
	Val V
}

// OMap is a transactional ordered map over a skip-list layout. Point
// operations (Get, Put, Delete) read a logarithmic tower path and
// write only the spliced predecessors, so conflicts concentrate near
// tall towers; Range runs as a consistent multi-variable read — a
// scan competing with point writers, validated at one serialization
// point like every transactional read set.
//
// Tower heights are a deterministic pseudo-random function of the key
// (seeded per map) rather than of a mutable RNG: transactional code
// may retry, and a retry must make the same choices.
type OMap[K cmp.Ordered, V any] struct {
	seed maphash.Seed
	head *stm.Var[omNode[K, V]]
	// name, when non-empty, labels every tower variable the map mints
	// (sentinels and inserted towers) for the STM flight recorder, so
	// conflict attribution names the map instead of an anonymous
	// stripe.
	name string
}

// NewOMap returns an empty ordered map.
func NewOMap[K cmp.Ordered, V any]() *OMap[K, V] { return NewNamedOMap[K, V]("") }

// NewNamedOMap is NewOMap with a flight-recorder label on every
// variable the map creates. An empty name is NewOMap.
func NewNamedOMap[K cmp.Ordered, V any](name string) *OMap[K, V] {
	m := &OMap[K, V]{seed: maphash.MakeSeed(), name: name}
	tail := m.newVar(omNode[K, V]{kind: omTail, next: make([]*stm.Var[omNode[K, V]], omapMaxLevel)})
	links := make([]*stm.Var[omNode[K, V]], omapMaxLevel)
	for i := range links {
		links[i] = tail
	}
	m.head = m.newVar(omNode[K, V]{kind: omHead, next: links})
	return m
}

// newVar wraps a tower in a transactional variable, labelled when the
// map is.
func (m *OMap[K, V]) newVar(n omNode[K, V]) *stm.Var[omNode[K, V]] {
	if m.name == "" {
		return newOMVar(n)
	}
	return stm.NewNamedVarCloner(m.name, n, cloneOMNode[K, V])
}

// levelFor returns the deterministic tower height for key, geometric
// with rate 1/2, in [1, omapMaxLevel].
func (m *OMap[K, V]) levelFor(key K) int {
	x := maphash.Comparable(m.seed, key)
	level := 1
	for level < omapMaxLevel && x&1 == 1 {
		level++
		x >>= 1
	}
	return level
}

// findPreds fills preds with the handle of the rightmost tower sorting
// strictly before key at every level, and returns the level-0
// successor's handle and value.
func (m *OMap[K, V]) findPreds(tx *stm.Tx, key K, preds []*stm.Var[omNode[K, V]]) (*stm.Var[omNode[K, V]], omNode[K, V], error) {
	curVar := m.head
	cur, err := stm.Read(tx, curVar)
	if err != nil {
		return nil, omNode[K, V]{}, err
	}
	for level := omapMaxLevel - 1; level >= 0; level-- {
		for {
			nextVar := cur.next[level]
			next, err := stm.Read(tx, nextVar)
			if err != nil {
				return nil, omNode[K, V]{}, err
			}
			if !next.before(key) {
				break
			}
			curVar, cur = nextVar, next
		}
		preds[level] = curVar
	}
	succVar := cur.next[0]
	succ, err := stm.Read(tx, succVar)
	if err != nil {
		return nil, omNode[K, V]{}, err
	}
	return succVar, succ, nil
}

// Get returns the value stored under key and whether it is present.
func (m *OMap[K, V]) Get(tx *stm.Tx, key K) (V, bool, error) {
	var preds [omapMaxLevel]*stm.Var[omNode[K, V]]
	_, succ, err := m.findPreds(tx, key, preds[:])
	if err != nil || !succ.is(key) {
		var zero V
		return zero, false, err
	}
	return succ.val, true, nil
}

// Put stores val under key, returning the previous value and whether
// the key was already present. An existing tower is updated in place
// (one variable written); a new key splices a fresh tower bottom-up,
// exactly like the intset skip list.
func (m *OMap[K, V]) Put(tx *stm.Tx, key K, val V) (V, bool, error) {
	var prev V
	var preds [omapMaxLevel]*stm.Var[omNode[K, V]]
	succVar, succ, err := m.findPreds(tx, key, preds[:])
	if err != nil {
		return prev, false, err
	}
	if succ.is(key) {
		prev = succ.val
		err := stm.Update(tx, succVar, func(n omNode[K, V]) omNode[K, V] {
			n.val = val
			return n
		})
		return prev, true, err
	}
	level := m.levelFor(key)
	node := omNode[K, V]{key: key, val: val, next: make([]*stm.Var[omNode[K, V]], level)}
	// Read the predecessors' current links first so the new tower can
	// point at the right successors, then splice bottom-up.
	for i := 0; i < level; i++ {
		pred, err := stm.Read(tx, preds[i])
		if err != nil {
			return prev, false, err
		}
		node.next[i] = pred.next[i]
	}
	nodeVar := m.newVar(node)
	for i := 0; i < level; i++ {
		// The writer's copy carries a deep-cloned link slice, so the
		// in-place splice stays private until commit.
		err := stm.Update(tx, preds[i], func(pred omNode[K, V]) omNode[K, V] {
			pred.next[i] = nodeVar
			return pred
		})
		if err != nil {
			return prev, false, err
		}
	}
	return prev, false, nil
}

// Delete removes key, returning the value it held and whether the map
// changed.
func (m *OMap[K, V]) Delete(tx *stm.Tx, key K) (V, bool, error) {
	var prev V
	var preds [omapMaxLevel]*stm.Var[omNode[K, V]]
	_, succ, err := m.findPreds(tx, key, preds[:])
	if err != nil {
		return prev, false, err
	}
	if !succ.is(key) {
		return prev, false, nil
	}
	for i := 0; i < len(succ.next); i++ {
		err := stm.Update(tx, preds[i], func(pred omNode[K, V]) omNode[K, V] {
			pred.next[i] = succ.next[i]
			return pred
		})
		if err != nil {
			return prev, false, err
		}
	}
	return succ.val, true, nil
}

// Range returns the pairs with from <= key < to in ascending key
// order. The whole scan is one read set, so the returned pairs were
// simultaneously valid at the transaction's serialization point — a
// consistent range read, not a best-effort iteration.
func (m *OMap[K, V]) Range(tx *stm.Tx, from, to K) ([]KV[K, V], error) {
	var preds [omapMaxLevel]*stm.Var[omNode[K, V]]
	_, cur, err := m.findPreds(tx, from, preds[:])
	if err != nil {
		return nil, err
	}
	var out []KV[K, V]
	for cur.kind == omInterior && cur.key < to {
		out = append(out, KV[K, V]{Key: cur.key, Val: cur.val})
		cur, err = stm.Read(tx, cur.next[0])
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Keys returns every key in ascending order.
func (m *OMap[K, V]) Keys(tx *stm.Tx) ([]K, error) {
	var keys []K
	cur, err := stm.Read(tx, m.head)
	if err != nil {
		return nil, err
	}
	for {
		next, err := stm.Read(tx, cur.next[0])
		if err != nil {
			return nil, err
		}
		if next.kind == omTail {
			return keys, nil
		}
		keys = append(keys, next.key)
		cur = next
	}
}

// Len counts the stored pairs — a consistent walk of the level-0
// chain, without materializing the keys.
func (m *OMap[K, V]) Len(tx *stm.Tx) (int, error) {
	cur, err := stm.Read(tx, m.head)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		next, err := stm.Read(tx, cur.next[0])
		if err != nil {
			return 0, err
		}
		if next.kind == omTail {
			return n, nil
		}
		n++
		cur = next
	}
}

// CheckInvariants verifies the skip-list invariants inside tx: keys
// strictly ascending at every level, and every tower reachable at a
// higher level also present in the level-0 chain. It is the audit hook
// the harness runs after a benchmark point.
func (m *OMap[K, V]) CheckInvariants(tx *stm.Tx) error {
	level0 := make(map[K]bool)
	keys, err := m.Keys(tx)
	if err != nil {
		return err
	}
	for i, k := range keys {
		if i > 0 && keys[i-1] >= k {
			return fmt.Errorf("container: omap level-0 keys not strictly ascending at %d", i)
		}
		level0[k] = true
	}
	for level := 1; level < omapMaxLevel; level++ {
		cur, err := stm.Read(tx, m.head)
		if err != nil {
			return err
		}
		var prevKey K
		first := true
		for {
			next, err := stm.Read(tx, cur.next[level])
			if err != nil {
				return err
			}
			if next.kind == omTail {
				break
			}
			if !level0[next.key] {
				return fmt.Errorf("container: omap key %v at level %d missing from level 0", next.key, level)
			}
			if !first && prevKey >= next.key {
				return fmt.Errorf("container: omap level-%d keys not strictly ascending", level)
			}
			prevKey, first = next.key, false
			cur = next
		}
	}
	return nil
}
