package container

import (
	"fmt"

	"repro/internal/stm"
)

// dNode is one deque link. Like qNode, the struct is immutable after
// construction — both neighbour pointers live behind their own stm.Var
// — so nodes are shared freely between transactions and the default
// shallow clone of *dNode is correct.
type dNode[T any] struct {
	val  T
	prev *stm.Var[*dNode[T]]
	next *stm.Var[*dNode[T]]
}

// Deque is a transactional double-ended queue: Queue[T] generalized so
// both ends push and pop. Two permanent sentinel nodes bracket the
// elements (left.next is the front, right.prev is the back), so every
// operation is the same two link writes whether the deque is empty or
// not — no nil special cases, and the only transaction that touches
// *both* sentinels is one against an empty or single-element deque.
// Under load the two ends are therefore independent hot spots: front
// pushers conflict with front pushers and poppers, back with back,
// and a contention manager sees two queue-like convoys instead of one.
//
// Each end also keeps a net-push counter (pushes minus pops at that
// end, so either may go negative). Their sum is the length, giving
// Len a two-variable consistent read that does not walk the chain —
// and, because front operations write only the front counter and back
// operations only the back one, counting does not re-couple the ends.
type Deque[T any] struct {
	left  *dNode[T]
	right *dNode[T]
	fcnt  *stm.Var[int]
	bcnt  *stm.Var[int]
	// name, when non-empty, labels every link variable the deque mints
	// (sentinel links, counters, and the links of pushed nodes) for
	// the STM flight recorder — conflict attribution then names the
	// deque ("list(jobs:pending)") instead of an anonymous stripe.
	name string
}

// NewDeque returns an empty deque.
func NewDeque[T any]() *Deque[T] { return NewNamedDeque[T]("") }

// NewNamedDeque is NewDeque with a flight-recorder label on every
// variable the deque creates. An empty name is NewDeque.
func NewNamedDeque[T any](name string) *Deque[T] {
	d := &Deque[T]{name: name}
	l := &dNode[T]{}
	r := &dNode[T]{}
	l.next = d.newLink(r)
	r.prev = d.newLink(l)
	d.left, d.right = l, r
	d.fcnt = d.newCnt()
	d.bcnt = d.newCnt()
	return d
}

// newLink mints one link variable, labelled when the deque is.
func (d *Deque[T]) newLink(v *dNode[T]) *stm.Var[*dNode[T]] {
	if d.name == "" {
		return stm.NewVar(v)
	}
	return stm.NewNamedVar(d.name, v)
}

// newCnt mints one end counter, labelled when the deque is.
func (d *Deque[T]) newCnt() *stm.Var[int] {
	if d.name == "" {
		return stm.NewVar(0)
	}
	return stm.NewNamedVar(d.name, 0)
}

// PushFront inserts v at the front.
func (d *Deque[T]) PushFront(tx *stm.Tx, v T) error {
	f, err := stm.Read(tx, d.left.next)
	if err != nil {
		return err
	}
	node := &dNode[T]{val: v, prev: d.newLink(d.left), next: d.newLink(f)}
	if err := stm.Write(tx, d.left.next, node); err != nil {
		return err
	}
	if err := stm.Write(tx, f.prev, node); err != nil {
		return err
	}
	return stm.Update(tx, d.fcnt, func(c int) int { return c + 1 })
}

// PushBack inserts v at the back.
func (d *Deque[T]) PushBack(tx *stm.Tx, v T) error {
	b, err := stm.Read(tx, d.right.prev)
	if err != nil {
		return err
	}
	node := &dNode[T]{val: v, prev: d.newLink(b), next: d.newLink(d.right)}
	if err := stm.Write(tx, d.right.prev, node); err != nil {
		return err
	}
	if err := stm.Write(tx, b.next, node); err != nil {
		return err
	}
	return stm.Update(tx, d.bcnt, func(c int) int { return c + 1 })
}

// PopFront removes and returns the front element; ok is false (and the
// deque unchanged) when the deque is empty.
func (d *Deque[T]) PopFront(tx *stm.Tx) (v T, ok bool, err error) {
	f, err := stm.Read(tx, d.left.next)
	if err != nil {
		return v, false, err
	}
	if f == d.right {
		return v, false, nil
	}
	succ, err := stm.Read(tx, f.next)
	if err != nil {
		return v, false, err
	}
	if err := stm.Write(tx, d.left.next, succ); err != nil {
		return v, false, err
	}
	if err := stm.Write(tx, succ.prev, d.left); err != nil {
		return v, false, err
	}
	if err := stm.Update(tx, d.fcnt, func(c int) int { return c - 1 }); err != nil {
		return v, false, err
	}
	return f.val, true, nil
}

// PopBack removes and returns the back element; ok is false (and the
// deque unchanged) when the deque is empty.
func (d *Deque[T]) PopBack(tx *stm.Tx) (v T, ok bool, err error) {
	b, err := stm.Read(tx, d.right.prev)
	if err != nil {
		return v, false, err
	}
	if b == d.left {
		return v, false, nil
	}
	pred, err := stm.Read(tx, b.prev)
	if err != nil {
		return v, false, err
	}
	if err := stm.Write(tx, d.right.prev, pred); err != nil {
		return v, false, err
	}
	if err := stm.Write(tx, pred.next, d.right); err != nil {
		return v, false, err
	}
	if err := stm.Update(tx, d.bcnt, func(c int) int { return c - 1 }); err != nil {
		return v, false, err
	}
	return b.val, true, nil
}

// PeekFront returns the front element without removing it; ok is false
// when the deque is empty.
func (d *Deque[T]) PeekFront(tx *stm.Tx) (v T, ok bool, err error) {
	f, err := stm.Read(tx, d.left.next)
	if err != nil {
		return v, false, err
	}
	if f == d.right {
		return v, false, nil
	}
	return f.val, true, nil
}

// PeekBack returns the back element without removing it; ok is false
// when the deque is empty.
func (d *Deque[T]) PeekBack(tx *stm.Tx) (v T, ok bool, err error) {
	b, err := stm.Read(tx, d.right.prev)
	if err != nil {
		return v, false, err
	}
	if b == d.left {
		return v, false, nil
	}
	return b.val, true, nil
}

// PeekFrontN returns up to n front elements without removing them — a
// bounded consistent prefix whose read set covers only the links
// walked.
func (d *Deque[T]) PeekFrontN(tx *stm.Tx, n int) ([]T, error) {
	var out []T
	for cur := d.left; len(out) < n; {
		next, err := stm.Read(tx, cur.next)
		if err != nil {
			return nil, err
		}
		if next == d.right {
			break
		}
		out = append(out, next.val)
		cur = next
	}
	return out, nil
}

// Len returns the element count from the two end counters — a
// consistent two-variable read, independent of deque length.
func (d *Deque[T]) Len(tx *stm.Tx) (int, error) {
	f, err := stm.Read(tx, d.fcnt)
	if err != nil {
		return 0, err
	}
	b, err := stm.Read(tx, d.bcnt)
	if err != nil {
		return 0, err
	}
	return f + b, nil
}

// Items returns the elements front to back — a consistent snapshot of
// the whole deque.
func (d *Deque[T]) Items(tx *stm.Tx) ([]T, error) {
	var out []T
	for cur := d.left; ; {
		next, err := stm.Read(tx, cur.next)
		if err != nil {
			return nil, err
		}
		if next == d.right {
			return out, nil
		}
		out = append(out, next.val)
		cur = next
	}
}

// CheckInvariants verifies the deque's structural invariants inside
// tx: the forward walk and the backward walk visit the same nodes in
// mirror order (every prev pointer agrees with the next pointer that
// reached the node), and the end counters sum to the walked length.
// It is the audit hook the harness and the kv store run.
func (d *Deque[T]) CheckInvariants(tx *stm.Tx) error {
	var fwd []*dNode[T]
	for cur := d.left; ; {
		next, err := stm.Read(tx, cur.next)
		if err != nil {
			return err
		}
		if next == d.right {
			break
		}
		fwd = append(fwd, next)
		cur = next
	}
	i := len(fwd)
	for cur := d.right; ; {
		prev, err := stm.Read(tx, cur.prev)
		if err != nil {
			return err
		}
		if prev == d.left {
			break
		}
		i--
		if i < 0 || fwd[i] != prev {
			return fmt.Errorf("container: deque prev chain disagrees with next chain")
		}
		cur = prev
	}
	if i != 0 {
		return fmt.Errorf("container: deque backward walk saw %d fewer nodes", i)
	}
	n, err := d.Len(tx)
	if err != nil {
		return err
	}
	if n != len(fwd) {
		return fmt.Errorf("container: deque counters say %d elements, walk found %d", n, len(fwd))
	}
	return nil
}
