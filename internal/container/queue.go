package container

import (
	"fmt"

	"repro/internal/stm"
)

// qNode is one queue link. The struct itself is immutable after
// construction — the mutable successor pointer lives behind its own
// stm.Var — so nodes are shared freely between transactions and the
// default shallow clone of *qNode is correct.
type qNode[T any] struct {
	val  T
	next *stm.Var[*qNode[T]]
}

// Queue is a transactional FIFO in the Michael–Scott layout: a head
// variable pointing at a sentinel node (whose successor is the front
// element) and a tail variable pointing at the last node. Enqueue
// writes the tail variable and the last node's successor; dequeue
// writes the head variable after reading the sentinel's successor. The
// two variables are permanent hot spots: every producer conflicts with
// every producer and every consumer with every consumer, regardless of
// queue length — the opposite contention profile of the hash set's
// disjoint buckets, and a very different stress on contention managers
// than any of the paper's four structures.
type Queue[T any] struct {
	head *stm.Var[*qNode[T]]
	tail *stm.Var[*qNode[T]]
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] {
	sentinel := &qNode[T]{next: stm.NewVar[*qNode[T]](nil)}
	return &Queue[T]{
		head: stm.NewVar(sentinel),
		tail: stm.NewVar(sentinel),
	}
}

// Enqueue appends v at the tail.
func (q *Queue[T]) Enqueue(tx *stm.Tx, v T) error {
	node := &qNode[T]{val: v, next: stm.NewVar[*qNode[T]](nil)}
	last, err := stm.Read(tx, q.tail)
	if err != nil {
		return err
	}
	if err := stm.Write(tx, last.next, node); err != nil {
		return err
	}
	return stm.Write(tx, q.tail, node)
}

// Dequeue removes and returns the front element; ok is false (and the
// queue unchanged) when the queue is empty. The dequeued node becomes
// the new sentinel, as in the Michael–Scott queue.
func (q *Queue[T]) Dequeue(tx *stm.Tx) (v T, ok bool, err error) {
	sentinel, err := stm.Read(tx, q.head)
	if err != nil {
		return v, false, err
	}
	front, err := stm.Read(tx, sentinel.next)
	if err != nil {
		return v, false, err
	}
	if front == nil {
		return v, false, nil
	}
	if err := stm.Write(tx, q.head, front); err != nil {
		return v, false, err
	}
	return front.val, true, nil
}

// Peek returns the front element without removing it; ok is false when
// the queue is empty.
func (q *Queue[T]) Peek(tx *stm.Tx) (v T, ok bool, err error) {
	sentinel, err := stm.Read(tx, q.head)
	if err != nil {
		return v, false, err
	}
	front, err := stm.Read(tx, sentinel.next)
	if err != nil {
		return v, false, err
	}
	if front == nil {
		return v, false, nil
	}
	return front.val, true, nil
}

// PeekN returns up to n front elements without removing them — a
// bounded consistent prefix snapshot whose read set covers only the
// nodes walked.
func (q *Queue[T]) PeekN(tx *stm.Tx, n int) ([]T, error) {
	sentinel, err := stm.Read(tx, q.head)
	if err != nil {
		return nil, err
	}
	var out []T
	for cur := sentinel; len(out) < n; {
		next, err := stm.Read(tx, cur.next)
		if err != nil {
			return nil, err
		}
		if next == nil {
			break
		}
		out = append(out, next.val)
		cur = next
	}
	return out, nil
}

// Len counts the queued elements by walking the chain — a consistent
// multi-variable read from head to tail, without materializing the
// items.
func (q *Queue[T]) Len(tx *stm.Tx) (int, error) {
	sentinel, err := stm.Read(tx, q.head)
	if err != nil {
		return 0, err
	}
	n := 0
	for cur := sentinel; ; {
		next, err := stm.Read(tx, cur.next)
		if err != nil {
			return 0, err
		}
		if next == nil {
			return n, nil
		}
		n++
		cur = next
	}
}

// Items returns the queued elements front to back — a consistent
// snapshot of the whole queue.
func (q *Queue[T]) Items(tx *stm.Tx) ([]T, error) {
	sentinel, err := stm.Read(tx, q.head)
	if err != nil {
		return nil, err
	}
	var out []T
	for cur := sentinel; ; {
		next, err := stm.Read(tx, cur.next)
		if err != nil {
			return nil, err
		}
		if next == nil {
			return out, nil
		}
		out = append(out, next.val)
		cur = next
	}
}

// CheckInvariants verifies the queue's structural invariants inside
// tx: the tail is reachable from the head and is the last node (its
// successor is nil). It is the audit hook the harness runs after a
// benchmark point.
func (q *Queue[T]) CheckInvariants(tx *stm.Tx) error {
	sentinel, err := stm.Read(tx, q.head)
	if err != nil {
		return err
	}
	last, err := stm.Read(tx, q.tail)
	if err != nil {
		return err
	}
	found := false
	for cur := sentinel; ; {
		if cur == last {
			found = true
		}
		next, err := stm.Read(tx, cur.next)
		if err != nil {
			return err
		}
		if next == nil {
			if cur != last {
				return fmt.Errorf("container: queue tail is not the last node")
			}
			break
		}
		cur = next
	}
	if !found {
		return fmt.Errorf("container: queue tail not reachable from head")
	}
	return nil
}
