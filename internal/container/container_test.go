package container

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/stm"
)

// TestHashSetBasic exercises the single-threaded contract: add,
// duplicate add, contains, remove, and the bucket invariants.
func TestHashSetBasic(t *testing.T) {
	s := stm.New()
	h := NewHashSet[int](4) // few buckets => real chains
	for i := 0; i < 32; i++ {
		changed, err := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Add(tx, i) })
		if err != nil || !changed {
			t.Fatalf("Add(%d) = %v, %v; want true, nil", i, changed, err)
		}
	}
	changed, err := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Add(tx, 7) })
	if err != nil || changed {
		t.Fatalf("duplicate Add = %v, %v; want false, nil", changed, err)
	}
	for i := 0; i < 32; i++ {
		ok, err := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Contains(tx, i) })
		if err != nil || !ok {
			t.Fatalf("Contains(%d) = %v, %v; want true, nil", i, ok, err)
		}
	}
	if ok, _ := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Contains(tx, 99) }); ok {
		t.Fatal("Contains(99) on absent key = true")
	}
	for i := 0; i < 32; i += 2 {
		changed, err := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Remove(tx, i) })
		if err != nil || !changed {
			t.Fatalf("Remove(%d) = %v, %v; want true, nil", i, changed, err)
		}
	}
	if changed, _ := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Remove(tx, 2) }); changed {
		t.Fatal("Remove of absent key reported a change")
	}
	n, err := stm.Atomic(s, func(tx *stm.Tx) (int, error) { return h.Len(tx) })
	if err != nil || n != 16 {
		t.Fatalf("Len = %d, %v; want 16, nil", n, err)
	}
	if err := s.Atomically(h.CheckInvariants); err != nil {
		t.Fatal(err)
	}
}

// TestHashSetGrow loads a tiny table far past the load factor and
// checks that MaybeGrow doubles the bucket array (repeatedly if
// needed), preserves every element, and is a no-op when nothing is
// pending.
func TestHashSetGrow(t *testing.T) {
	s := stm.New()
	h := NewHashSet[int](2)
	if grown, err := h.MaybeGrow(s); err != nil || grown {
		t.Fatalf("MaybeGrow with no signal = %v, %v; want false, nil", grown, err)
	}
	const n = 128
	for i := 0; i < n; i++ {
		if _, err := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Add(tx, i) }); err != nil {
			t.Fatal(err)
		}
	}
	grown, err := h.MaybeGrow(s)
	if err != nil || !grown {
		t.Fatalf("MaybeGrow after overload = %v, %v; want true, nil", grown, err)
	}
	if got := h.Buckets(); got < n/4 {
		t.Fatalf("buckets after grow = %d; want >= %d (load factor honoured)", got, n/4)
	}
	elems, err := stm.Atomic(s, func(tx *stm.Tx) ([]int, error) { return h.Elems(tx) })
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(elems)
	if len(elems) != n {
		t.Fatalf("grow lost elements: %d, want %d", len(elems), n)
	}
	for i, v := range elems {
		if v != i {
			t.Fatalf("element set damaged at %d: got %d", i, v)
		}
	}
	if err := s.Atomically(h.CheckInvariants); err != nil {
		t.Fatal(err)
	}
}

// TestHashSetGrowUnderWriters races transactional resizes against 32
// writer goroutines: each goroutine inserts a disjoint key range while
// one maintenance goroutine drains the growth signal, so grows commit
// mid-storm. Afterwards every inserted key must be present, the array
// must have grown, and the bucket invariants must hold — the
// resize-vs-writers contract of the Table mechanism.
func TestHashSetGrowUnderWriters(t *testing.T) {
	const writers = 32
	perWriter := hammerOps(t)
	s := stm.New(stm.WithManagerFactory(core.MustFactory("greedy")), stm.WithInterleavePeriod(4))
	h := NewHashSet[int](2) // tiny: every writer drives chains past the signal
	errs := make([]error, writers+1)
	stop := make(chan struct{})
	var maint sync.WaitGroup
	maint.Add(1)
	go func() { // maintenance: drain grow signals while writers run
		defer maint.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := h.MaybeGrow(s); err != nil {
				errs[writers] = err
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := g*perWriter + i
				changed, err := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Add(tx, key) })
				if err != nil {
					errs[g] = err
					return
				}
				if !changed {
					errs[g] = fmt.Errorf("disjoint key %d already present", key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	maint.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// One final drain so a signal raised by the last inserts is acted on.
	if _, err := h.MaybeGrow(s); err != nil {
		t.Fatal(err)
	}
	if got := h.Buckets(); got <= 2 {
		t.Fatalf("bucket array never grew (still %d)", got)
	}
	elems, err := stm.Atomic(s, func(tx *stm.Tx) ([]int, error) { return h.Elems(tx) })
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != writers*perWriter {
		t.Fatalf("lost keys across resizes: %d, want %d", len(elems), writers*perWriter)
	}
	sort.Ints(elems)
	for i, v := range elems {
		if v != i {
			t.Fatalf("key set damaged at %d: got %d", i, v)
		}
	}
	if err := s.Atomically(h.CheckInvariants); err != nil {
		t.Fatal(err)
	}
}

// TestQueueBasic exercises FIFO order, empty dequeues, Peek and the
// structural invariants.
func TestQueueBasic(t *testing.T) {
	s := stm.New()
	q := NewQueue[string]()
	if _, ok, err := stm.Atomic2(s, q.Dequeue); err != nil || ok {
		t.Fatalf("dequeue on empty = ok=%v, err=%v; want false, nil", ok, err)
	}
	for _, v := range []string{"a", "b", "c"} {
		if err := s.Atomically(func(tx *stm.Tx) error { return q.Enqueue(tx, v) }); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok, err := stm.Atomic2(s, q.Peek); err != nil || !ok || v != "a" {
		t.Fatalf("Peek = %q, %v, %v; want \"a\", true, nil", v, ok, err)
	}
	for _, want := range []string{"a", "b", "c"} {
		v, ok, err := stm.Atomic2(s, q.Dequeue)
		if err != nil || !ok || v != want {
			t.Fatalf("Dequeue = %q, %v, %v; want %q, true, nil", v, ok, err, want)
		}
	}
	if _, ok, _ := stm.Atomic2(s, q.Dequeue); ok {
		t.Fatal("dequeue on drained queue succeeded")
	}
	if err := s.Atomically(q.CheckInvariants); err != nil {
		t.Fatal(err)
	}
}

// TestOMapBasic exercises get/put/delete/range and the skip-list
// invariants on a permuted key load.
func TestOMapBasic(t *testing.T) {
	s := stm.New()
	m := NewOMap[int, string]()
	rng := rand.New(rand.NewPCG(1, 2))
	for _, k := range rng.Perm(128) {
		_, existed, err := stm.Atomic2(s, func(tx *stm.Tx) (string, bool, error) {
			return m.Put(tx, k, fmt.Sprintf("v%d", k))
		})
		if err != nil || existed {
			t.Fatalf("fresh Put(%d): existed=%v, err=%v", k, existed, err)
		}
	}
	// Overwrite returns the previous value.
	prev, existed, err := stm.Atomic2(s, func(tx *stm.Tx) (string, bool, error) {
		return m.Put(tx, 5, "new")
	})
	if err != nil || !existed || prev != "v5" {
		t.Fatalf("overwrite Put = %q, %v, %v; want \"v5\", true, nil", prev, existed, err)
	}
	v, ok, err := stm.Atomic2(s, func(tx *stm.Tx) (string, bool, error) { return m.Get(tx, 5) })
	if err != nil || !ok || v != "new" {
		t.Fatalf("Get(5) = %q, %v, %v; want \"new\", true, nil", v, ok, err)
	}
	if _, ok, _ := stm.Atomic2(s, func(tx *stm.Tx) (string, bool, error) { return m.Get(tx, 999) }); ok {
		t.Fatal("Get of absent key reported present")
	}
	// Range [20, 30) sees exactly those keys, ascending.
	pairs, err := stm.Atomic(s, func(tx *stm.Tx) ([]KV[int, string], error) { return m.Range(tx, 20, 30) })
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 {
		t.Fatalf("Range[20,30) returned %d pairs, want 10", len(pairs))
	}
	for i, kv := range pairs {
		if kv.Key != 20+i || kv.Val != fmt.Sprintf("v%d", kv.Key) {
			t.Fatalf("Range pair %d = %+v", i, kv)
		}
	}
	// Delete returns the stored value and shrinks the map.
	dv, ok, err := stm.Atomic2(s, func(tx *stm.Tx) (string, bool, error) { return m.Delete(tx, 5) })
	if err != nil || !ok || dv != "new" {
		t.Fatalf("Delete(5) = %q, %v, %v; want \"new\", true, nil", dv, ok, err)
	}
	if _, ok, _ := stm.Atomic2(s, func(tx *stm.Tx) (string, bool, error) { return m.Delete(tx, 5) }); ok {
		t.Fatal("second Delete(5) reported a change")
	}
	n, err := stm.Atomic(s, func(tx *stm.Tx) (int, error) { return m.Len(tx) })
	if err != nil || n != 127 {
		t.Fatalf("Len = %d, %v; want 127, nil", n, err)
	}
	if err := s.Atomically(m.CheckInvariants); err != nil {
		t.Fatal(err)
	}
}

// hammer runs goroutines against fn until each has executed ops
// operations, then runs check.
func hammer(t *testing.T, mgr string, goroutines, ops int, fn func(s *stm.STM, g, i int, rng *rand.Rand) error, check func(s *stm.STM) error) {
	t.Helper()
	s := stm.New(stm.WithManagerFactory(core.MustFactory(mgr)), stm.WithInterleavePeriod(4))
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		rng := rand.New(rand.NewPCG(uint64(g)+1, 42))
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if err := fn(s, g, i, rng); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := check(s); err != nil {
		t.Fatal(err)
	}
}

// hammerOps picks the per-goroutine operation count: enough to force
// real conflicts, trimmed under -short so the full manager sweep stays
// fast in CI's race run.
func hammerOps(t *testing.T) int {
	if testing.Short() {
		return 60
	}
	return 250
}

// TestHashSetHammer drives 32 goroutines of mixed add/remove/contains
// traffic on a small bucket array under every registry manager, then
// audits the bucket invariants.
func TestHashSetHammer(t *testing.T) {
	const goroutines = 32
	ops := hammerOps(t)
	for _, mgr := range core.Names() {
		t.Run(mgr, func(t *testing.T) {
			h := NewHashSet[int](8)
			fn := func(s *stm.STM, g, i int, rng *rand.Rand) error {
				key := int(rng.Int64N(64))
				switch rng.Int64N(3) {
				case 0:
					_, err := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Add(tx, key) })
					return err
				case 1:
					_, err := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Remove(tx, key) })
					return err
				default:
					_, err := stm.Atomic(s, func(tx *stm.Tx) (bool, error) { return h.Contains(tx, key) })
					return err
				}
			}
			hammer(t, mgr, goroutines, ops, fn, func(s *stm.STM) error {
				return s.Atomically(h.CheckInvariants)
			})
		})
	}
}

// TestQueueHammer drives 16 producers and 16 consumers through the
// queue's head/tail hot spots under every registry manager, checking
// conservation: everything dequeued was enqueued exactly once, and the
// leftovers match.
func TestQueueHammer(t *testing.T) {
	const producers, consumers = 16, 16
	ops := hammerOps(t)
	for _, mgr := range core.Names() {
		t.Run(mgr, func(t *testing.T) {
			q := NewQueue[int]()
			var mu sync.Mutex
			consumed := make(map[int]int)
			fn := func(s *stm.STM, g, i int, rng *rand.Rand) error {
				if g < producers {
					return s.Atomically(func(tx *stm.Tx) error {
						return q.Enqueue(tx, g*1_000_000+i)
					})
				}
				v, ok, err := stm.Atomic2(s, q.Dequeue)
				if err != nil {
					return err
				}
				if ok {
					mu.Lock()
					consumed[v]++
					mu.Unlock()
				}
				return nil
			}
			hammer(t, mgr, producers+consumers, ops, fn, func(s *stm.STM) error {
				left, err := stm.Atomic(s, func(tx *stm.Tx) ([]int, error) { return q.Items(tx) })
				if err != nil {
					return err
				}
				for v, n := range consumed {
					if n != 1 {
						return fmt.Errorf("value %d consumed %d times", v, n)
					}
				}
				for _, v := range left {
					if consumed[v] != 0 {
						return fmt.Errorf("value %d both consumed and still queued", v)
					}
				}
				if got := len(consumed) + len(left); got != producers*ops {
					return fmt.Errorf("conservation broken: %d consumed + %d queued != %d produced",
						len(consumed), len(left), producers*ops)
				}
				return s.Atomically(q.CheckInvariants)
			})
		})
	}
}

// TestOMapHammer drives 32 goroutines of put/delete/get/range traffic
// on a small key range under every registry manager, then audits the
// skip-list invariants.
func TestOMapHammer(t *testing.T) {
	const goroutines = 32
	ops := hammerOps(t)
	for _, mgr := range core.Names() {
		t.Run(mgr, func(t *testing.T) {
			m := NewOMap[int, int]()
			fn := func(s *stm.STM, g, i int, rng *rand.Rand) error {
				key := int(rng.Int64N(64))
				switch rng.Int64N(4) {
				case 0:
					_, _, err := stm.Atomic2(s, func(tx *stm.Tx) (int, bool, error) { return m.Put(tx, key, g) })
					return err
				case 1:
					_, _, err := stm.Atomic2(s, func(tx *stm.Tx) (int, bool, error) { return m.Delete(tx, key) })
					return err
				case 2:
					_, _, err := stm.Atomic2(s, func(tx *stm.Tx) (int, bool, error) { return m.Get(tx, key) })
					return err
				default:
					pairs, err := stm.Atomic(s, func(tx *stm.Tx) ([]KV[int, int], error) {
						return m.Range(tx, key, key+8)
					})
					for i := 1; i < len(pairs); i++ {
						if pairs[i-1].Key >= pairs[i].Key {
							return fmt.Errorf("range not ascending: %v", pairs)
						}
					}
					return err
				}
			}
			hammer(t, mgr, goroutines, ops, fn, func(s *stm.STM) error {
				return s.Atomically(m.CheckInvariants)
			})
		})
	}
}

// TestComposedCrossContainer moves items from a queue into an ordered
// map and a hash set inside single transactions — the dequeue-then-put
// composition — while a concurrent auditor takes consistent
// multi-container reads. The invariant: each item is in exactly one
// container at every serialization point, so the three sizes always
// sum to the initial load.
func TestComposedCrossContainer(t *testing.T) {
	const items = 64
	const movers = 16
	// Greedy, not a karma-family manager: the auditor's huge read-set
	// priority would let karma abort movers relentlessly, inflating
	// every mover's accumulated priority and with it the quantum-sleep
	// gaps between them — the starvation regime the paper documents in
	// Section 6, pathological under the race detector. Greedy's
	// timestamp order guarantees progress.
	s := stm.New(stm.WithManagerFactory(core.MustFactory("greedy")), stm.WithInterleavePeriod(4))
	q := NewQueue[int]()
	m := NewOMap[int, int]()
	h := NewHashSet[int](8)
	for i := 0; i < items; i++ {
		if err := s.Atomically(func(tx *stm.Tx) error { return q.Enqueue(tx, i) }); err != nil {
			t.Fatal(err)
		}
	}
	count := func(tx *stm.Tx) (int, error) {
		qn, err := q.Len(tx)
		if err != nil {
			return 0, err
		}
		mn, err := m.Len(tx)
		if err != nil {
			return 0, err
		}
		hn, err := h.Len(tx)
		if err != nil {
			return 0, err
		}
		return qn + mn + hn, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, movers+1)
	for g := 0; g < movers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < items/movers*2; i++ {
				// One transaction: dequeue, then place the item in the
				// map (even) or the set (odd). Empty queue is a no-op.
				errs[g] = s.Atomically(func(tx *stm.Tx) error {
					v, ok, err := q.Dequeue(tx)
					if err != nil || !ok {
						return err
					}
					if v%2 == 0 {
						_, _, err = m.Put(tx, v, g)
						return err
					}
					_, err = h.Add(tx, v)
					return err
				})
				if errs[g] != nil {
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			n, err := stm.Atomic(s, count)
			if err != nil {
				errs[movers] = err
				return
			}
			if n != items {
				errs[movers] = fmt.Errorf("auditor saw %d items, want %d", n, items)
				return
			}
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Everything moved: map holds the evens, set holds the odds.
	keys, err := stm.Atomic(s, func(tx *stm.Tx) ([]int, error) { return m.Keys(tx) })
	if err != nil {
		t.Fatal(err)
	}
	elems, err := stm.Atomic(s, func(tx *stm.Tx) ([]int, error) { return h.Elems(tx) })
	if err != nil {
		t.Fatal(err)
	}
	qn, err := stm.Atomic(s, func(tx *stm.Tx) (int, error) { return q.Len(tx) })
	if err != nil {
		t.Fatal(err)
	}
	if qn != 0 {
		t.Fatalf("queue still holds %d items", qn)
	}
	got := append(append([]int{}, keys...), elems...)
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("item set damaged at %d: %v", i, got)
		}
	}
	for _, k := range keys {
		if k%2 != 0 {
			t.Fatalf("odd key %d landed in the map", k)
		}
	}
	for _, e := range elems {
		if e%2 != 1 {
			t.Fatalf("even element %d landed in the set", e)
		}
	}
}
