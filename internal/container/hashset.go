package container

import (
	"fmt"
	"hash/maphash"

	"repro/internal/stm"
)

// hsNode is one link of a bucket chain. Chains are immutable by
// construction: Add and Remove build new nodes for the changed prefix
// and share the unchanged suffix, so the Var's default shallow clone
// (of the head pointer) is a correct private copy and a transaction's
// tentative chain never aliases mutable committed state.
type hsNode[T comparable] struct {
	elem T
	next *hsNode[T]
}

// HashSet is a transactional hash set: a growable array of buckets,
// each a single stm.Var holding the bucket's chain head. Conflict
// granularity is the bucket — transactions touching different buckets
// are disjoint and never consult the contention manager, while
// collisions within a bucket conflict whole-chain. The bucket array
// itself lives in a Var (see Table), so resizing is a transaction
// racing ordinary operations: inserts that walk an over-long chain
// raise an advisory signal, and the owner drains it with MaybeGrow
// between transactions.
type HashSet[T comparable] struct {
	table *Table[*hsNode[T]]
}

// NewHashSet returns an empty set with the given initial number of
// buckets (minimum 1). More buckets mean more disjoint parallelism;
// fewer mean hotter chains — until MaybeGrow doubles the array.
func NewHashSet[T comparable](buckets int) *HashSet[T] {
	return &HashSet[T]{table: NewTable[*hsNode[T]](buckets)}
}

// Buckets returns the committed bucket count (a non-transactional
// snapshot; it changes only when MaybeGrow commits a resize).
func (h *HashSet[T]) Buckets() int { return h.table.PeekLen() }

// bucket hashes x to its bucket variable within the array version b.
// The seed is fixed at construction, so the mapping is stable across
// transaction retries; only the modulus changes when the table grows.
func (h *HashSet[T]) bucket(b Buckets[*hsNode[T]], x T) *stm.Var[*hsNode[T]] {
	return b.At(int(maphash.Comparable(h.table.Seed(), x) % uint64(b.Len())))
}

// Contains reports whether x is in the set.
func (h *HashSet[T]) Contains(tx *stm.Tx, x T) (bool, error) {
	b, err := h.table.Buckets(tx)
	if err != nil {
		return false, err
	}
	head, err := stm.Read(tx, h.bucket(b, x))
	if err != nil {
		return false, err
	}
	for n := head; n != nil; n = n.next {
		if n.elem == x {
			return true, nil
		}
	}
	return false, nil
}

// Add inserts x and reports whether the set changed. Walking a chain
// already growChain long raises the table's resize signal — an atomic
// flag, not a transactional effect, so retries stay safe — for the
// owner to act on with MaybeGrow.
func (h *HashSet[T]) Add(tx *stm.Tx, x T) (bool, error) {
	b, err := h.table.Buckets(tx)
	if err != nil {
		return false, err
	}
	bv := h.bucket(b, x)
	head, err := stm.Read(tx, bv)
	if err != nil {
		return false, err
	}
	chain := 0
	for n := head; n != nil; n = n.next {
		if n.elem == x {
			return false, nil
		}
		chain++
	}
	if chain >= GrowChain {
		h.table.SignalGrowth()
	}
	return true, stm.Write(tx, bv, &hsNode[T]{elem: x, next: head})
}

// Remove deletes x and reports whether the set changed. The nodes
// before x are rebuilt (chains are immutable); the suffix is shared.
func (h *HashSet[T]) Remove(tx *stm.Tx, x T) (bool, error) {
	b, err := h.table.Buckets(tx)
	if err != nil {
		return false, err
	}
	bv := h.bucket(b, x)
	head, err := stm.Read(tx, bv)
	if err != nil {
		return false, err
	}
	var prefix []T
	for n := head; n != nil; n = n.next {
		if n.elem != x {
			prefix = append(prefix, n.elem)
			continue
		}
		rebuilt := n.next
		for i := len(prefix) - 1; i >= 0; i-- {
			rebuilt = &hsNode[T]{elem: prefix[i], next: rebuilt}
		}
		return true, stm.Write(tx, bv, rebuilt)
	}
	return false, nil
}

// MaybeGrow drains the advisory resize signal: if a pending signal's
// exact recount confirms the load factor, the bucket array is doubled
// in one transaction that rehashes every chain (see Table.MaybeGrow).
// Call it between transactions — after an Add that might have
// signalled, or periodically from a maintenance loop; with no signal
// pending it is one atomic load. It reports whether a resize
// committed.
func (h *HashSet[T]) MaybeGrow(s *stm.STM) (bool, error) {
	return h.table.MaybeGrow(s,
		func(tx *stm.Tx, b Buckets[*hsNode[T]]) (int, error) {
			total := 0
			for i := 0; i < b.Len(); i++ {
				head, err := stm.Read(tx, b.At(i))
				if err != nil {
					return 0, err
				}
				for n := head; n != nil; n = n.next {
					total++
				}
			}
			return total, nil
		},
		func(tx *stm.Tx, old, neu Buckets[*hsNode[T]]) error {
			heads := make([]*hsNode[T], neu.Len())
			for i := 0; i < old.Len(); i++ {
				head, err := stm.Read(tx, old.At(i))
				if err != nil {
					return err
				}
				for n := head; n != nil; n = n.next {
					j := int(maphash.Comparable(h.table.Seed(), n.elem) % uint64(neu.Len()))
					heads[j] = &hsNode[T]{elem: n.elem, next: heads[j]}
				}
			}
			for j, head := range heads {
				if head == nil {
					continue // fresh buckets already hold nil
				}
				if err := stm.Write(tx, neu.At(j), head); err != nil {
					return err
				}
			}
			return nil
		})
}

// Len counts the elements — a consistent multi-variable read over
// every bucket, so it conflicts with all concurrent writers (the long
// read-only scan the paper's bank-auditor scenario stresses).
func (h *HashSet[T]) Len(tx *stm.Tx) (int, error) {
	b, err := h.table.Buckets(tx)
	if err != nil {
		return 0, err
	}
	total := 0
	for i := 0; i < b.Len(); i++ {
		head, err := stm.Read(tx, b.At(i))
		if err != nil {
			return 0, err
		}
		for n := head; n != nil; n = n.next {
			total++
		}
	}
	return total, nil
}

// Elems returns every element, grouped by bucket in chain order — a
// consistent snapshot of the whole set.
func (h *HashSet[T]) Elems(tx *stm.Tx) ([]T, error) {
	b, err := h.table.Buckets(tx)
	if err != nil {
		return nil, err
	}
	var out []T
	for i := 0; i < b.Len(); i++ {
		head, err := stm.Read(tx, b.At(i))
		if err != nil {
			return nil, err
		}
		for n := head; n != nil; n = n.next {
			out = append(out, n.elem)
		}
	}
	return out, nil
}

// CheckInvariants verifies the set's structural invariants inside tx:
// every element hashes to the bucket that holds it (under the current
// array version), and no element appears twice. It is the audit hook
// the harness runs after a benchmark point.
func (h *HashSet[T]) CheckInvariants(tx *stm.Tx) error {
	b, err := h.table.Buckets(tx)
	if err != nil {
		return err
	}
	seen := make(map[T]bool)
	for i := 0; i < b.Len(); i++ {
		head, err := stm.Read(tx, b.At(i))
		if err != nil {
			return err
		}
		for n := head; n != nil; n = n.next {
			if want := h.bucket(b, n.elem); want != b.At(i) {
				return fmt.Errorf("container: hashset element %v in bucket %d, hashes elsewhere", n.elem, i)
			}
			if seen[n.elem] {
				return fmt.Errorf("container: hashset element %v duplicated", n.elem)
			}
			seen[n.elem] = true
		}
	}
	return nil
}
