package container

import (
	"fmt"
	"hash/maphash"

	"repro/internal/stm"
)

// hsNode is one link of a bucket chain. Chains are immutable by
// construction: Add and Remove build new nodes for the changed prefix
// and share the unchanged suffix, so the Var's default shallow clone
// (of the head pointer) is a correct private copy and a transaction's
// tentative chain never aliases mutable committed state.
type hsNode[T comparable] struct {
	elem T
	next *hsNode[T]
}

// HashSet is a transactional hash set: a fixed array of buckets, each
// a single stm.Var holding the bucket's chain head. Conflict
// granularity is the bucket — transactions touching different buckets
// are disjoint and never consult the contention manager, while
// collisions within a bucket conflict whole-chain. The bucket count is
// fixed at construction (no transactional resize), which keeps the
// disjointness profile stable across a benchmark run.
type HashSet[T comparable] struct {
	seed    maphash.Seed
	buckets []*stm.Var[*hsNode[T]]
}

// NewHashSet returns an empty set with the given number of buckets
// (minimum 1). More buckets mean more disjoint parallelism; fewer mean
// hotter chains.
func NewHashSet[T comparable](buckets int) *HashSet[T] {
	if buckets < 1 {
		buckets = 1
	}
	h := &HashSet[T]{
		seed:    maphash.MakeSeed(),
		buckets: make([]*stm.Var[*hsNode[T]], buckets),
	}
	for i := range h.buckets {
		h.buckets[i] = stm.NewVar[*hsNode[T]](nil)
	}
	return h
}

// Buckets returns the fixed bucket count.
func (h *HashSet[T]) Buckets() int { return len(h.buckets) }

// bucket hashes x to its bucket variable. The seed is fixed at
// construction, so the mapping is stable across transaction retries.
func (h *HashSet[T]) bucket(x T) *stm.Var[*hsNode[T]] {
	return h.buckets[maphash.Comparable(h.seed, x)%uint64(len(h.buckets))]
}

// Contains reports whether x is in the set.
func (h *HashSet[T]) Contains(tx *stm.Tx, x T) (bool, error) {
	head, err := stm.Read(tx, h.bucket(x))
	if err != nil {
		return false, err
	}
	for n := head; n != nil; n = n.next {
		if n.elem == x {
			return true, nil
		}
	}
	return false, nil
}

// Add inserts x and reports whether the set changed.
func (h *HashSet[T]) Add(tx *stm.Tx, x T) (bool, error) {
	b := h.bucket(x)
	head, err := stm.Read(tx, b)
	if err != nil {
		return false, err
	}
	for n := head; n != nil; n = n.next {
		if n.elem == x {
			return false, nil
		}
	}
	return true, stm.Write(tx, b, &hsNode[T]{elem: x, next: head})
}

// Remove deletes x and reports whether the set changed. The nodes
// before x are rebuilt (chains are immutable); the suffix is shared.
func (h *HashSet[T]) Remove(tx *stm.Tx, x T) (bool, error) {
	b := h.bucket(x)
	head, err := stm.Read(tx, b)
	if err != nil {
		return false, err
	}
	var prefix []T
	for n := head; n != nil; n = n.next {
		if n.elem != x {
			prefix = append(prefix, n.elem)
			continue
		}
		rebuilt := n.next
		for i := len(prefix) - 1; i >= 0; i-- {
			rebuilt = &hsNode[T]{elem: prefix[i], next: rebuilt}
		}
		return true, stm.Write(tx, b, rebuilt)
	}
	return false, nil
}

// Len counts the elements — a consistent multi-variable read over
// every bucket, so it conflicts with all concurrent writers (the long
// read-only scan the paper's bank-auditor scenario stresses).
func (h *HashSet[T]) Len(tx *stm.Tx) (int, error) {
	total := 0
	for _, b := range h.buckets {
		head, err := stm.Read(tx, b)
		if err != nil {
			return 0, err
		}
		for n := head; n != nil; n = n.next {
			total++
		}
	}
	return total, nil
}

// Elems returns every element, grouped by bucket in chain order — a
// consistent snapshot of the whole set.
func (h *HashSet[T]) Elems(tx *stm.Tx) ([]T, error) {
	var out []T
	for _, b := range h.buckets {
		head, err := stm.Read(tx, b)
		if err != nil {
			return nil, err
		}
		for n := head; n != nil; n = n.next {
			out = append(out, n.elem)
		}
	}
	return out, nil
}

// CheckInvariants verifies the set's structural invariants inside tx:
// every element hashes to the bucket that holds it, and no element
// appears twice. It is the audit hook the harness runs after a
// benchmark point.
func (h *HashSet[T]) CheckInvariants(tx *stm.Tx) error {
	seen := make(map[T]bool)
	for i, b := range h.buckets {
		head, err := stm.Read(tx, b)
		if err != nil {
			return err
		}
		for n := head; n != nil; n = n.next {
			if want := h.bucket(n.elem); want != b {
				return fmt.Errorf("container: hashset element %v in bucket %d, hashes elsewhere", n.elem, i)
			}
			if seen[n.elem] {
				return fmt.Errorf("container: hashset element %v duplicated", n.elem)
			}
			seen[n.elem] = true
		}
	}
	return nil
}
